// tfslurm shows what the SlurmClusterResolver derives from a Slurm
// environment: the ClusterSpec, this process's job/task identity, and its
// GPU exposure. With -synthetic it fabricates an allocation first, which is
// how the virtual-platform experiments configure themselves.
//
//	tfslurm -jobs ps:1,worker:4 -synthetic -nodes 2 -tasks-per-node 2 -gpus 2 -proc 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tfhpc/internal/cluster"
	"tfhpc/internal/slurm"
)

func main() {
	jobsFlag := flag.String("jobs", "ps:1,worker:2", "comma-separated job:tasks list, in slot order")
	synthetic := flag.Bool("synthetic", true, "fabricate a Slurm allocation instead of reading the environment")
	nodes := flag.Int("nodes", 3, "synthetic: node count")
	tasksPerNode := flag.Int("tasks-per-node", 1, "synthetic: tasks per node")
	gpus := flag.Int("gpus", 1, "synthetic: GPUs per node")
	proc := flag.Int("proc", 0, "synthetic: which SLURM_PROCID to resolve as")
	prefix := flag.String("prefix", "t03n", "synthetic: node name prefix")
	flag.Parse()

	var jobs []cluster.JobSpec
	for _, part := range strings.Split(*jobsFlag, ",") {
		name, count, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			fatal(fmt.Errorf("bad -jobs entry %q", part))
		}
		n, err := strconv.Atoi(count)
		if err != nil {
			fatal(fmt.Errorf("bad task count in %q", part))
		}
		jobs = append(jobs, cluster.JobSpec{Name: name, Tasks: n})
	}

	env := map[string]string{}
	if *synthetic {
		alloc := slurm.NewAllocation(4242, *prefix, *nodes, *tasksPerNode, *gpus)
		var err error
		env, err = alloc.Env(*proc)
		if err != nil {
			fatal(err)
		}
	} else {
		for _, key := range []string{
			"SLURM_JOB_ID", "SLURM_JOB_NODELIST", "SLURM_NTASKS",
			"SLURM_PROCID", "SLURM_GPUS_ON_NODE",
		} {
			env[key] = os.Getenv(key)
		}
	}

	resolver := &cluster.SlurmResolver{Jobs: jobs}
	res, err := resolver.Resolve(env)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("nodelist:     %s\n", env["SLURM_JOB_NODELIST"])
	fmt.Printf("cluster spec: %s\n", res.Spec)
	fmt.Printf("this process: /job:%s/task:%d on %s, GPUs %v\n",
		res.Job, res.Task, res.Node, res.GPUs)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tfslurm: %v\n", err)
	os.Exit(1)
}
