// tfbench regenerates the paper's evaluation tables and figures on the
// virtual platform and runs the real-mode engine sweeps on this host.
//
// Usage:
//
//	tfbench                                   # everything: figures + host sweeps
//	tfbench -exp figures                      # the paper tables/figures only
//	tfbench -exp fig8                         # one experiment
//	tfbench -exp gemm,fft,collective          # several, in order
//	tfbench -exp collective -json out.json    # also write machine-readable results
//	tfbench -exp serving                      # micro-batching throughput/latency sweep
//	tfbench -exp rollout                      # canary rollout under open-loop load
//	tfbench -exp generate                     # continuous batching vs flush-and-refill
//
// Experiments: table1 fig7 fig8 fig9 fig10 fig11 gemm fft collective serving
// rollout generate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tfhpc/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: all|figures|table1|fig7|fig8|fig9|fig10|fig11|gemm|fft|collective|serving|rollout|generate")
	jsonPath := flag.String("json", "", "also write a machine-readable report (tfhpc-bench/v1) to this path")
	flag.Parse()

	exps := strings.Split(*exp, ",")
	for i := range exps {
		exps[i] = strings.TrimSpace(exps[i])
	}
	report, text, err := bench.Run(exps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(text)
	if *jsonPath != "" {
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tfbench: wrote %s\n", *jsonPath)
	}
}
