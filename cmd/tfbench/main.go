// tfbench regenerates the paper's evaluation tables and figures on the
// virtual platform.
//
// Usage:
//
//	tfbench                 # everything, in paper order
//	tfbench -exp fig8       # one experiment: table1 fig7 fig8 fig9 fig10 fig11
//	tfbench -exp gemm       # real-mode GEMM engine sweep on this host
//	tfbench -exp fft        # real-mode FFT engine sweep on this host
package main

import (
	"flag"
	"fmt"
	"os"

	"tfhpc/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all|table1|fig7|fig8|fig9|fig10|fig11|gemm|fft")
	flag.Parse()

	var out string
	var err error
	switch *exp {
	case "all":
		out, err = bench.All()
	case "table1":
		out = bench.TableI()
	case "fig7":
		out, err = bench.Fig7()
	case "fig8":
		out, err = bench.Fig8()
	case "fig9":
		out = bench.Fig9()
	case "fig10":
		out, err = bench.Fig10()
	case "fig11":
		out, err = bench.Fig11()
	case "gemm":
		out = bench.Gemm()
	case "fft":
		out = bench.Fft()
	default:
		fmt.Fprintf(os.Stderr, "tfbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
