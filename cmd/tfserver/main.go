// tfserver runs one standalone task server — the tf.train.Server analogue.
// Point workers at it with a ClusterSpec; it hosts variables and queues and
// executes ops sent over the wire.
//
//	tfserver -job ps -task 0 -listen 127.0.0.1:8888
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tfhpc/internal/cluster"
)

func main() {
	job := flag.String("job", "ps", "job name this task belongs to")
	task := flag.Int("task", 0, "task index within the job")
	listen := flag.String("listen", "127.0.0.1:8888", "listen address")
	flag.Parse()

	srv := cluster.NewServer(*job, *task)
	addr, err := srv.Start(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("tfserver: /job:%s/task:%d serving on %s\n", *job, *task, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
	fmt.Println("tfserver: shut down")
}
