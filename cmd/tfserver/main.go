// tfserver runs one standalone task server — the tf.train.Server analogue.
// Point workers at it with a ClusterSpec; it hosts variables, queues and
// collective-group memberships, and executes ops sent over the wire.
//
//	tfserver -job ps -task 0 -listen 127.0.0.1:8888
//
// When the listen address is not the address peers should dial (binding
// 0.0.0.0, NAT, or a port-forwarded container), -advertise names the
// external address; it is what the server reports and what cluster specs
// should carry.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tfhpc/internal/cluster"
	"tfhpc/internal/pprofsrv"
	"tfhpc/internal/telemetry"
)

func main() {
	job := flag.String("job", "ps", "job name this task belongs to")
	task := flag.Int("task", 0, "task index within the job")
	listen := flag.String("listen", "127.0.0.1:8888", "listen address")
	advertise := flag.String("advertise", "", "address peers should dial (default: the bound listen address)")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof and /metricz on this address (off when empty)")
	traceOut := flag.String("trace-out", "", "record spans and write a Chrome/Perfetto trace here at shutdown (TFHPC_TRACE_OUT also works)")
	flag.Parse()

	telemetry.SetProcessName(fmt.Sprintf("tfserver-%s-%d", *job, *task))
	if *traceOut != "" {
		telemetry.SetTraceOut(*traceOut)
	}
	if *pprofAddr != "" {
		bound, err := pprofsrv.Serve(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfserver: pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("tfserver: debug server on http://%s (pprof, /metricz)\n", bound)
	}

	srv := cluster.NewServer(*job, *task)
	addr, err := srv.Start(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfserver: %v\n", err)
		os.Exit(1)
	}
	srv.SetAdvertise(*advertise)
	fmt.Printf("tfserver: /job:%s/task:%d serving on %s (advertised %s)\n", *job, *task, addr, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
	if path, err := telemetry.DumpConfigured(); err != nil {
		fmt.Fprintf(os.Stderr, "tfserver: trace dump: %v\n", err)
	} else if path != "" {
		fmt.Printf("tfserver: trace written to %s\n", path)
	}
	fmt.Println("tfserver: shut down")
}
