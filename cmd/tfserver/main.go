// tfserver runs one standalone task server — the tf.train.Server analogue.
// Point workers at it with a ClusterSpec; it hosts variables, queues and
// collective-group memberships, and executes ops sent over the wire.
//
//	tfserver -job ps -task 0 -listen 127.0.0.1:8888
//
// When the listen address is not the address peers should dial (binding
// 0.0.0.0, NAT, or a port-forwarded container), -advertise names the
// external address; it is what the server reports and what cluster specs
// should carry.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tfhpc/internal/cluster"
	"tfhpc/internal/pprofsrv"
)

func main() {
	job := flag.String("job", "ps", "job name this task belongs to")
	task := flag.Int("task", 0, "task index within the job")
	listen := flag.String("listen", "127.0.0.1:8888", "listen address")
	advertise := flag.String("advertise", "", "address peers should dial (default: the bound listen address)")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on this address (off when empty)")
	flag.Parse()

	if *pprofAddr != "" {
		bound, err := pprofsrv.Serve(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfserver: pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("tfserver: pprof on http://%s/debug/pprof/\n", bound)
	}

	srv := cluster.NewServer(*job, *task)
	addr, err := srv.Start(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfserver: %v\n", err)
		os.Exit(1)
	}
	srv.SetAdvertise(*advertise)
	fmt.Printf("tfserver: /job:%s/task:%d serving on %s (advertised %s)\n", *job, *task, addr, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
	fmt.Println("tfserver: shut down")
}
