// tfmatmul runs the tiled matrix-matrix multiplication application.
//
// Real mode computes an actual product through the tile-file map-reduce
// pipeline and verifies it; sim mode evaluates a paper-scale configuration
// on the virtual platform.
package main

import (
	"flag"
	"fmt"
	"os"

	"tfhpc/apps/matmul"
	"tfhpc/internal/hw"
	"tfhpc/internal/ops"
	"tfhpc/internal/tensor"
)

func main() {
	mode := flag.String("mode", "real", "real|sim")
	n := flag.Int("n", 256, "matrix dimension")
	tile := flag.Int("tile", 64, "tile dimension")
	workers := flag.Int("workers", 4, "worker count (GPUs)")
	reducers := flag.Int("reducers", 2, "reducer count")
	dir := flag.String("dir", "", "tile directory (default: temp)")
	clusterName := flag.String("cluster", "tegner", "sim: tegner|kebnekaise")
	node := flag.String("node", "k80", "sim: node type")
	verify := flag.Bool("verify", true, "real: check against direct product")
	flag.Parse()

	cfg := matmul.Config{N: *n, Tile: *tile, Workers: *workers, Reducers: *reducers}
	switch *mode {
	case "real":
		d := *dir
		if d == "" {
			var err error
			if d, err = os.MkdirTemp("", "tfmatmul"); err != nil {
				fatal(err)
			}
			defer os.RemoveAll(d)
		}
		a := tensor.RandomUniform(tensor.Float32, 1, *n, *n)
		b := tensor.RandomUniform(tensor.Float32, 2, *n, *n)
		res, err := matmul.RunReal(d, cfg, a, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("matmul real: N=%d tile=%d workers=%d reducers=%d: %.3fs, %.1f Gflop/s\n",
			*n, *tile, *workers, *reducers, res.Seconds, res.Gflops)
		if *verify {
			want, err := ops.Run("MatMul", &ops.Context{}, []*tensor.Tensor{a, b})
			if err != nil {
				fatal(err)
			}
			if !res.C.ApproxEqual(want, 1e-3) {
				fatal(fmt.Errorf("verification FAILED"))
			}
			fmt.Println("verification: OK (pipeline matches direct product)")
		}
	case "sim":
		c, nt, err := hw.NodeTypeByName(*clusterName, *node)
		if err != nil {
			fatal(err)
		}
		res, err := matmul.RunSim(matmul.SimConfig{Cluster: c, NodeType: nt, Config: cfg})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("matmul sim: %s N=%d tile=%d %d GPUs + %d reducers: %.1fs, %.0f Gflop/s (gpu util %.0f%%)\n",
			nt.Name, *n, *tile, *workers, *reducers, res.Seconds, res.Gflops, 100*res.GPUUtil)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tfmatmul: %v\n", err)
	os.Exit(1)
}
