// tfcg runs the distributed Conjugate Gradient solver.
//
// Real mode solves a random SPD system through the queue-reduction
// formulation, optionally checkpointing and resuming, and can emit a
// TensorFlow-Timeline-style trace; sim mode evaluates a paper-scale
// configuration on the virtual platform.
package main

import (
	"flag"
	"fmt"
	"os"

	"tfhpc/apps/cg"
	"tfhpc/internal/hw"
	"tfhpc/internal/tensor"
)

func main() {
	mode := flag.String("mode", "real", "real|sim")
	n := flag.Int("n", 512, "matrix dimension")
	workers := flag.Int("workers", 4, "worker count (GPUs)")
	iters := flag.Int("iters", 500, "max iterations")
	tol := flag.Float64("tol", 1e-8, "residual tolerance (0 = run all iterations)")
	ckpt := flag.String("checkpoint", "", "checkpoint file path")
	every := flag.Int("checkpoint-every", 0, "checkpoint cadence in iterations")
	resume := flag.Bool("resume", false, "resume from the checkpoint file")
	clusterName := flag.String("cluster", "kebnekaise", "sim: tegner|kebnekaise")
	node := flag.String("node", "v100", "sim: node type")
	flag.Parse()

	switch *mode {
	case "real":
		cfg := cg.Config{N: *n, Workers: *workers, MaxIters: *iters, Tol: *tol}
		a := cg.SPDMatrix(*n, 42)
		b := tensor.RandomUniform(tensor.Float64, 43, *n)
		res, err := cg.RunReal(cfg, a, b, cg.RealOptions{
			CheckpointPath:  *ckpt,
			CheckpointEvery: *every,
			Resume:          *resume,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cg real: N=%d workers=%d: converged to ‖r‖=%.3g in %d iterations, %.3fs, %.2f Gflop/s\n",
			*n, *workers, res.ResidualNorm, res.Iters, res.Seconds, res.Gflops)
	case "sim":
		c, nt, err := hw.NodeTypeByName(*clusterName, *node)
		if err != nil {
			fatal(err)
		}
		res, err := cg.RunSim(cg.SimConfig{Cluster: c, NodeType: nt, N: *n, GPUs: *workers, Iters: *iters})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cg sim: %s N=%d %d GPUs, %d iters: %.2fs (%.2f ms/iter), %.0f Gflop/s\n",
			nt.Name, *n, *workers, *iters, res.Seconds, 1e3*res.PerIter, res.Gflops)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tfcg: %v\n", err)
	os.Exit(1)
}
