// tfcg runs the distributed Conjugate Gradient solver.
//
// Real mode solves a random SPD system in-process through the ring-collective
// formulation, optionally checkpointing and resuming; cluster mode drives the
// same solve over running tfserver tasks (collectives ring over TCP between
// the tasks); sim mode evaluates a paper-scale configuration on the virtual
// platform.
//
//	tfcg -mode real -n 1024 -workers 4
//	tfcg -mode cluster -spec 127.0.0.1:7000,127.0.0.1:7001 -workers 2
//	tfcg -mode sim -cluster kebnekaise -node v100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tfhpc/apps/cg"
	"tfhpc/internal/cluster"
	"tfhpc/internal/hw"
	"tfhpc/internal/tensor"
)

func main() {
	mode := flag.String("mode", "real", "real|cluster|sim")
	n := flag.Int("n", 512, "matrix dimension")
	workers := flag.Int("workers", 4, "worker count (GPUs)")
	iters := flag.Int("iters", 500, "max iterations")
	tol := flag.Float64("tol", 1e-8, "residual tolerance (0 = run all iterations)")
	ckpt := flag.String("checkpoint", "", "checkpoint file path")
	every := flag.Int("checkpoint-every", 0, "checkpoint cadence in iterations")
	resume := flag.Bool("resume", false, "resume from the checkpoint file")
	spec := flag.String("spec", "", "cluster: comma-separated worker addresses host:port,...")
	job := flag.String("job", "worker", "cluster: worker job name")
	clusterName := flag.String("cluster", "kebnekaise", "sim: tegner|kebnekaise")
	node := flag.String("node", "v100", "sim: node type")
	flag.Parse()

	switch *mode {
	case "real":
		cfg := cg.Config{N: *n, Workers: *workers, MaxIters: *iters, Tol: *tol}
		a := cg.SPDMatrix(*n, 42)
		b := tensor.RandomUniform(tensor.Float64, 43, *n)
		res, err := cg.RunReal(cfg, a, b, cg.RealOptions{
			CheckpointPath:  *ckpt,
			CheckpointEvery: *every,
			Resume:          *resume,
		})
		if err != nil {
			fatal(err)
		}
		report("real", *n, *workers, res)
		checkTol(res, *tol)
	case "cluster":
		if *spec == "" {
			fatal(fmt.Errorf("cluster mode needs -spec host:port,host:port,..."))
		}
		addrs := strings.Split(*spec, ",")
		peers := cluster.NewPeers(cluster.Spec{*job: addrs})
		defer peers.Close()
		cfg := cg.Config{N: *n, Workers: *workers, MaxIters: *iters, Tol: *tol}
		a := cg.SPDMatrix(*n, 42)
		b := tensor.RandomUniform(tensor.Float64, 43, *n)
		res, err := cg.RunCluster(cfg, a, b, peers, cg.ClusterOptions{Job: *job})
		if err != nil {
			fatal(err)
		}
		report("cluster", *n, *workers, res)
		checkTol(res, *tol)
	case "sim":
		c, nt, err := hw.NodeTypeByName(*clusterName, *node)
		if err != nil {
			fatal(err)
		}
		res, err := cg.RunSim(cg.SimConfig{Cluster: c, NodeType: nt, N: *n, GPUs: *workers, Iters: *iters})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cg sim: %s N=%d %d GPUs, %d iters: %.2fs (%.2f ms/iter), %.0f Gflop/s\n",
			nt.Name, *n, *workers, *iters, res.Seconds, 1e3*res.PerIter, res.Gflops)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func report(mode string, n, workers int, res *cg.RealResult) {
	fmt.Printf("cg %s: N=%d workers=%d: converged to ‖r‖=%.3g in %d iterations, %.3fs, %.2f Gflop/s\n",
		mode, n, workers, res.ResidualNorm, res.Iters, res.Seconds, res.Gflops)
}

// checkTol turns a missed tolerance into a nonzero exit — the contract the
// CI smoke job relies on.
func checkTol(res *cg.RealResult, tol float64) {
	if tol > 0 && res.ResidualNorm > tol {
		fatal(fmt.Errorf("residual %.3g above tolerance %.3g", res.ResidualNorm, tol))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tfcg: %v\n", err)
	os.Exit(1)
}
