// tfsgd trains a synthetic linear model with data-parallel synchronous SGD —
// the paper's Horovod scenario: full weight replicas, per-step gradient
// allreduce over ring collectives, no parameter server.
//
// Real mode runs all replicas in-process over a loopback fabric; cluster
// mode places one replica per running tfserver task with the allreduce
// running over TCP between the tasks (algorithm picked per call: recursive
// doubling below the payload threshold, ring above); sim mode prices a
// deployment on the virtual platform and reports the ring-vs-central
// communication comparison. -param-tensors splits the weights into several
// parameter tensors (one gradient allreduce each, loss double-buffered
// through async handles) and -fuse coalesces those allreduces through the
// fusion buffer — bit-identical results, one collective pass per step.
//
// Elastic mode is cluster mode that survives rank loss: checkpoints every
// -ckpt-every steps, shrinks the group around a dead task, resumes from the
// checkpoint, and folds a restarted task back in at the next boundary. It
// prints a machine-parseable summary line for CI.
//
//	tfsgd -mode real -features 4096 -rows 1024 -workers 4 -steps 50
//	tfsgd -mode cluster -spec 127.0.0.1:7000,127.0.0.1:7001 -workers 2
//	tfsgd -mode cluster -spec ... -workers 4 -param-tensors 8 -fuse
//	tfsgd -mode elastic -spec ... -workers 4 -ckpt-file sgd.ckpt -step-delay 50ms
//	tfsgd -mode sim -cluster kebnekaise -node v100 -proto rdma -features 1048576
//	tfsgd -mode real -features 256 -checkpoint model.ckpt   # then: tfserve -model m=model.ckpt
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"tfhpc/apps/sgd"
	"tfhpc/internal/cluster"
	"tfhpc/internal/hw"
	"tfhpc/internal/serving"
	"tfhpc/internal/simnet"
)

func main() {
	mode := flag.String("mode", "real", "real|cluster|elastic|sim")
	features := flag.Int("features", 1024, "model dimension")
	rows := flag.Int("rows", 512, "samples per worker shard")
	workers := flag.Int("workers", 4, "data-parallel replicas")
	steps := flag.Int("steps", 50, "gradient steps")
	lr := flag.Float64("lr", 0.3, "learning rate")
	seed := flag.Uint64("seed", 42, "data seed")
	noise := flag.Float64("noise", 0.01, "label noise amplitude")
	spec := flag.String("spec", "", "cluster: comma-separated worker addresses host:port,...")
	job := flag.String("job", "worker", "cluster: worker job name")
	clusterName := flag.String("cluster", "kebnekaise", "sim: tegner|kebnekaise")
	node := flag.String("node", "v100", "sim: node type")
	proto := flag.String("proto", "rdma", "sim: grpc|mpi|rdma")
	ckpt := flag.String("checkpoint", "", "save the trained weights as a servable linear-model checkpoint (tfserve -model)")
	genCkpt := flag.String("gen-checkpoint", "", "save the trained weights as a servable generative (autoregressive) checkpoint (tfserve -genmodel)")
	paramTensors := flag.Int("param-tensors", 1, "split the weights into this many parameter tensors (Horovod shape: one gradient allreduce each, loss double-buffered async)")
	fuse := flag.Bool("fuse", false, "coalesce the per-tensor gradient allreduces through the fusion buffer (bit-identical to unfused)")
	ckptFile := flag.String("ckpt-file", "", "elastic: training checkpoint path (atomic, CRC-trailered; resume source after rank loss)")
	ckptEvery := flag.Int("ckpt-every", 5, "elastic: checkpoint every K steps")
	minWorkers := flag.Int("min-workers", 1, "elastic: fail the run when live tasks drop below this")
	stepDelay := flag.Duration("step-delay", 0, "elastic: sleep before each step (widens the window an external kill must land in)")
	flag.Parse()

	cfg := sgd.Config{
		Features:      *features,
		RowsPerWorker: *rows,
		Workers:       *workers,
		Steps:         *steps,
		LR:            *lr,
		Seed:          *seed,
		Noise:         *noise,
		ParamTensors:  *paramTensors,
		Fuse:          *fuse,
	}

	switch *mode {
	case "real":
		res, err := sgd.RunReal(cfg)
		if err != nil {
			fatal(err)
		}
		report("real", cfg, res)
		check(res)
		saveCheckpoint(*ckpt, *genCkpt, cfg, res)
	case "cluster":
		if *spec == "" {
			fatal(fmt.Errorf("cluster mode needs -spec host:port,host:port,..."))
		}
		addrs := strings.Split(*spec, ",")
		peers := cluster.NewPeers(cluster.Spec{*job: addrs})
		defer peers.Close()
		res, err := sgd.RunCluster(cfg, peers, sgd.ClusterOptions{Job: *job})
		if err != nil {
			fatal(err)
		}
		report("cluster", cfg, res)
		check(res)
		saveCheckpoint(*ckpt, *genCkpt, cfg, res)
	case "elastic":
		if *spec == "" {
			fatal(fmt.Errorf("elastic mode needs -spec host:port,host:port,..."))
		}
		addrs := strings.Split(*spec, ",")
		peers := cluster.NewPeers(cluster.Spec{*job: addrs})
		defer peers.Close()
		res, err := sgd.RunElasticCluster(cfg, peers, sgd.ClusterOptions{Job: *job}, sgd.ElasticOptions{
			CkptPath:   *ckptFile,
			CkptEvery:  *ckptEvery,
			MinWorkers: *minWorkers,
			StepDelay:  *stepDelay,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		report("elastic", cfg, &res.Result)
		check(&res.Result)
		// Machine-parseable for the CI smoke harness.
		fmt.Printf("sgd elastic: final_loss=%.9g shrinks=%d grows=%d rebuilds=%d resumes=%d workers=%d\n",
			res.FinalLoss, res.Shrinks, res.Grows, res.Rebuilds, res.Resumes, res.FinalWorkers)
		saveCheckpoint(*ckpt, *genCkpt, cfg, &res.Result)
	case "sim":
		c, nt, err := hw.NodeTypeByName(*clusterName, *node)
		if err != nil {
			fatal(err)
		}
		pr, err := simnet.ParseProtocol(*proto)
		if err != nil {
			fatal(err)
		}
		res, err := sgd.RunSim(sgd.SimConfig{Cluster: c, NodeType: nt, Protocol: pr, Config: cfg})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sgd sim: %s %s d=%d p=%d: %.3f ms/step (compute %.3f ms, ring allreduce %.3f ms)\n",
			nt.Name, pr, cfg.Features, cfg.Workers,
			1e3*res.StepSeconds, 1e3*res.ComputeSeconds, 1e3*res.RingSeconds)
		fmt.Printf("sgd sim: ring vs gather-to-root: %.3f ms vs %.3f ms (%.1fx)\n",
			1e3*res.RingSeconds, 1e3*res.NaiveSeconds, res.RingSpeedup)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func report(mode string, cfg sgd.Config, res *sgd.Result) {
	fmt.Printf("sgd %s: d=%d rows=%d p=%d: loss %.4g -> %.4g in %d steps, ‖w-w*‖/‖w*‖=%.3g, %.3fs (%.2f ms/step)\n",
		mode, cfg.Features, cfg.RowsPerWorker, cfg.Workers,
		res.InitialLoss, res.FinalLoss, res.Steps, res.WeightErr,
		res.Seconds, 1e3*res.StepSeconds)
	if !res.ReplicasEqual {
		fmt.Println("sgd: WARNING: replicas diverged")
	}
}

// check turns a broken run into a nonzero exit — the CI smoke contract:
// training must reduce the loss, keep it finite, and keep replicas equal.
// (Losses are sampled before each update, so a 1-step run has nothing to
// compare yet and only the finiteness and replica checks apply.)
func check(res *sgd.Result) {
	switch {
	case math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0):
		fatal(fmt.Errorf("loss diverged to %g", res.FinalLoss))
	case res.Steps > 1 && res.FinalLoss >= res.InitialLoss:
		fatal(fmt.Errorf("loss did not decrease: %g -> %g", res.InitialLoss, res.FinalLoss))
	case !res.ReplicasEqual:
		fatal(fmt.Errorf("weight replicas diverged"))
	}
}

// saveCheckpoint writes the trained weights in the requested servable
// formats — the handoff from training to tfserve (train → checkpoint →
// serve). The same weight vector serves both ways: as a one-shot linear
// predictor, or as the autoregressive decode step of a generative model.
func saveCheckpoint(path, genPath string, cfg sgd.Config, res *sgd.Result) {
	if path == "" && genPath == "" {
		return
	}
	if res.Weights == nil {
		fatal(fmt.Errorf("no trained weights to checkpoint"))
	}
	if path != "" {
		if err := serving.SaveLinear(path, int64(cfg.Steps), res.Weights); err != nil {
			fatal(err)
		}
		fmt.Printf("sgd: checkpointed trained model to %s (d=%d, servable as a linear model)\n",
			path, cfg.Features)
	}
	if genPath != "" {
		if err := serving.SaveGenerative(genPath, int64(cfg.Steps), res.Weights); err != nil {
			fatal(err)
		}
		fmt.Printf("sgd: checkpointed trained model to %s (d=%d, servable as a generative model)\n",
			genPath, cfg.Features)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tfsgd: %v\n", err)
	os.Exit(1)
}
