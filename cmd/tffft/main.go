// tffft runs the distributed 1-D FFT application.
//
// Real mode transforms a synthetic signal through the interleaved-tile
// pipeline and verifies it against a direct FFT; sim mode evaluates a
// paper-scale configuration on the virtual platform.
package main

import (
	"flag"
	"fmt"
	"math/cmplx"
	"os"

	"time"

	appfft "tfhpc/apps/fft"
	"tfhpc/internal/core"
	"tfhpc/internal/fft"
	"tfhpc/internal/hw"
	"tfhpc/internal/tensor"
)

func main() {
	mode := flag.String("mode", "real", "real|sim")
	logN := flag.Int("logn", 14, "log2 of the signal length")
	tiles := flag.Int("tiles", 8, "interleaved tile count")
	workers := flag.Int("workers", 4, "worker count (GPUs)")
	dir := flag.String("dir", "", "tile directory (default: temp)")
	node := flag.String("node", "k80", "sim: Tegner node type (k420|k80)")
	verify := flag.Bool("verify", true, "real: check against direct FFT")
	flag.Parse()

	n := 1 << *logN
	cfg := appfft.Config{N: n, Tiles: *tiles, Workers: *workers}
	switch *mode {
	case "real":
		d := *dir
		if d == "" {
			var err error
			if d, err = os.MkdirTemp("", "tffft"); err != nil {
				fatal(err)
			}
			defer os.RemoveAll(d)
		}
		r := tensor.NewRNG(7)
		signal := make([]complex128, n)
		for i := range signal {
			signal[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
		}
		res, err := appfft.RunReal(d, cfg, signal)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fft real: N=2^%d tiles=%d workers=%d: collect %.3fs (%.2f Gflop/s), merge %.3fs\n",
			*logN, *tiles, *workers, res.CollectSeconds, res.Gflops, res.MergeSeconds)
		if *verify {
			want := append([]complex128(nil), signal...)
			start := time.Now()
			if err := fft.Forward(want); err != nil {
				fatal(err)
			}
			engine := time.Since(start).Seconds()
			for i := range want {
				if cmplx.Abs(res.X[i]-want[i]) > 1e-7*float64(n) {
					fatal(fmt.Errorf("verification FAILED at sample %d", i))
				}
			}
			fmt.Printf("verification: OK (pipeline matches the planned engine: %.3fs, %.2f Gflop/s single-shot)\n",
				engine, core.Gflops(core.FFTFlops(n), engine))
		}
	case "sim":
		c, nt, err := hw.NodeTypeByName("tegner", *node)
		if err != nil {
			fatal(err)
		}
		res, err := appfft.RunSim(appfft.SimConfig{Cluster: c, NodeType: nt, Config: cfg})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fft sim: %s N=2^%d tiles=%d %d GPUs: collect %.1fs, %.1f Gflop/s (est. host merge %.1fs)\n",
			nt.Name, *logN, *tiles, *workers, res.Seconds, res.Gflops, res.EstMergeSeconds)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tffft: %v\n", err)
	os.Exit(1)
}
