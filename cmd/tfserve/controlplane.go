// Control-plane wiring: -autoscale turns tfserve from a single process into
// a self-managed fleet — an in-process replica set behind the router, an
// autoscaler closing the loop from live load to replica count, and (with
// -canary) a rollout controller driving SLO-gated traffic splits. The
// /controlz endpoints expose status and accept rollout requests.
package main

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tfhpc/internal/serving"
	"tfhpc/internal/serving/controlplane"
)

// splitKVs parses "k1=v1,k2=v2,..." flag specs.
func splitKVs(flagName, spec string) ([][2]string, error) {
	var out [][2]string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("-%s: want key=value, got %q", flagName, part)
		}
		out = append(out, [2]string{k, v})
	}
	return out, nil
}

// parseAutoscale reads the -autoscale spec:
//
//	min=1,max=4,target=8,tick=250ms,up-cooldown=250ms,down-cooldown=3s,
//	p99-ceiling=100ms,hysteresis=0.25,ewma=0.3
//
// Unset keys take the autoscaler's defaults.
func parseAutoscale(spec string) (controlplane.AutoscalerConfig, error) {
	var cfg controlplane.AutoscalerConfig
	kvs, err := splitKVs("autoscale", spec)
	if err != nil {
		return cfg, err
	}
	for _, kv := range kvs {
		k, v := kv[0], kv[1]
		switch k {
		case "min":
			cfg.Min, err = strconv.Atoi(v)
		case "max":
			cfg.Max, err = strconv.Atoi(v)
		case "target":
			cfg.TargetOutstanding, err = strconv.ParseFloat(v, 64)
		case "tick":
			cfg.Tick, err = time.ParseDuration(v)
		case "up-cooldown":
			cfg.UpCooldown, err = time.ParseDuration(v)
		case "down-cooldown":
			cfg.DownCooldown, err = time.ParseDuration(v)
		case "p99-ceiling":
			cfg.P99Ceiling, err = time.ParseDuration(v)
		case "hysteresis":
			cfg.Hysteresis, err = strconv.ParseFloat(v, 64)
		case "ewma":
			cfg.EwmaAlpha, err = strconv.ParseFloat(v, 64)
		default:
			return cfg, fmt.Errorf("-autoscale: unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("-autoscale: bad %s=%s: %v", k, v, err)
		}
	}
	return cfg, nil
}

// parseCanary reads the -canary spec:
//
//	steps=10;50;100,hold=2s,maxp99=250ms,maxerr=0.01,min-samples=20,
//	grace=6s,remove-grace=500ms
//
// steps are semicolon-separated percentages ending the rollout at 100.
func parseCanary(spec string) (controlplane.RolloutConfig, error) {
	var cfg controlplane.RolloutConfig
	kvs, err := splitKVs("canary", spec)
	if err != nil {
		return cfg, err
	}
	for _, kv := range kvs {
		k, v := kv[0], kv[1]
		switch k {
		case "steps":
			for _, s := range strings.Split(v, ";") {
				pct, perr := strconv.Atoi(strings.TrimSpace(s))
				if perr != nil || pct <= 0 || pct > 100 {
					return cfg, fmt.Errorf("-canary: bad step %q (want 1..100)", s)
				}
				cfg.Steps = append(cfg.Steps, pct)
			}
		case "hold":
			cfg.Hold, err = time.ParseDuration(v)
		case "maxp99":
			cfg.MaxP99, err = time.ParseDuration(v)
		case "maxerr":
			cfg.MaxErrorRate, err = strconv.ParseFloat(v, 64)
		case "min-samples":
			cfg.MinSamples, err = strconv.Atoi(v)
		case "grace":
			cfg.SampleGrace, err = time.ParseDuration(v)
		case "remove-grace":
			cfg.RemoveGrace, err = time.ParseDuration(v)
		default:
			return cfg, fmt.Errorf("-canary: unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("-canary: bad %s=%s: %v", k, v, err)
		}
	}
	return cfg, nil
}

// startControlPlane assembles and boots the fleet: parse the pacing specs,
// install every -model/-synthetic deployment, scale to the floor and start
// the autoscaler loop.
func startControlPlane(models modelFlags, synthetic string, features, steps int,
	batch serving.BatchOptions, deadline, window time.Duration,
	autoscaleSpec, canarySpec string) (*controlplane.ControlPlane, error) {

	ascfg, err := parseAutoscale(autoscaleSpec)
	if err != nil {
		return nil, err
	}
	rocfg := controlplane.RolloutConfig{}
	if canarySpec != "" {
		if rocfg, err = parseCanary(canarySpec); err != nil {
			return nil, err
		}
	}
	cp, err := controlplane.New(controlplane.Config{
		Batch:      batch,
		Router:     serving.RouterOptions{DefaultDeadline: deadline},
		Autoscaler: ascfg,
		Rollout:    rocfg,
		Window:     window,
	})
	if err != nil {
		return nil, err
	}
	for _, m := range models {
		// Load once up front: it validates the checkpoint and pins the
		// served version to its step, so every backend agrees.
		mv, lerr := serving.LoadLinear(m.name, 0, m.path)
		if lerr != nil {
			cp.Close()
			return nil, lerr
		}
		if serr := cp.Fleet().SetModel(m.name, mv.Version(), controlplane.CheckpointSource(m.path)); serr != nil {
			cp.Close()
			return nil, serr
		}
		fmt.Printf("tfserve: fleet model %s v%d from %s (d=%d)\n",
			m.name, mv.Version(), m.path, mv.Signature().Features)
	}
	if synthetic != "" {
		w, terr := trainSyntheticWeights(features, steps)
		if terr != nil {
			cp.Close()
			return nil, terr
		}
		if serr := cp.Fleet().SetModel(synthetic, steps, controlplane.LinearSource(w)); serr != nil {
			cp.Close()
			return nil, serr
		}
		fmt.Printf("tfserve: fleet synthetic %s v%d (d=%d)\n", synthetic, steps, features)
	}
	if len(models) == 0 && synthetic == "" {
		cp.Close()
		return nil, fmt.Errorf("-autoscale needs at least one -model or -synthetic deployment")
	}
	if err := cp.Start(); err != nil {
		cp.Close()
		return nil, err
	}
	return cp, nil
}

// checkpointLoader validates a rollout request's checkpoint eagerly (a bad
// path fails the POST, not the fleet) and hands back the per-backend source.
func checkpointLoader(path string) (controlplane.ModelSource, error) {
	if _, err := serving.LoadLinear("canary-probe", 0, path); err != nil {
		return nil, err
	}
	return controlplane.CheckpointSource(path), nil
}

// controlPlaneMux composes the serving front-end with the control-plane
// endpoints: /controlz[...] hits the control plane, everything else the
// router's predict surface.
func controlPlaneMux(cp *controlplane.ControlPlane) http.Handler {
	h := cp.Handler(checkpointLoader)
	mux := http.NewServeMux()
	mux.Handle("/controlz", h)
	mux.Handle("/controlz/", h)
	mux.Handle("/", serving.NewHTTPHandler(cp.Router()))
	return mux
}
