// tfserve is the model server: it loads checkpointed models into the
// versioned serving registry and answers online predict traffic over a
// KServe-style HTTP/JSON API and (optionally) the framed binary RPC
// endpoint, with dynamic micro-batching and admission control in front of
// every model.
//
//	tfserve -listen 127.0.0.1:8500 -model prices=model.ckpt
//	tfserve -listen 127.0.0.1:8500 -genmodel gen=gen.ckpt   # POST /v1/models/gen:generate (SSE)
//	tfserve -listen 127.0.0.1:8500 -rpc 127.0.0.1:8501 -model a=a.ckpt -model b=b.ckpt
//	tfserve -listen 127.0.0.1:8500 -synthetic demo -features 256
//	tfserve -listen 127.0.0.1:8500 -route 127.0.0.1:8501,127.0.0.1:8502
//	tfserve -listen 127.0.0.1:8500 -model prices=model.ckpt \
//	        -autoscale min=1,max=4,target=8 -canary steps=10;50;100,hold=2s
//
// -model name=path serves a checkpoint written by tfsgd -checkpoint (or any
// servable linear checkpoint). -synthetic trains a small SGD linear model
// in-process and serves it — the zero-setup demo. -route makes this process
// a front router spreading requests over replica tfserve/tfserver tasks
// (least-loaded, failure-aware) instead of hosting models itself.
// -autoscale runs the serving control plane: an in-process replica fleet
// behind the router, sized by live load, with /controlz status and (with
// -canary) SLO-gated canary rollouts via POST /controlz/rollout.
//
//	curl -s localhost:8500/v1/models
//	curl -s -X POST localhost:8500/v1/models/demo:predict \
//	     -d '{"instances": [[0.1, 0.2, 0.3, ...]]}'
//	curl -s localhost:8500/statsz
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tfhpc/apps/sgd"
	"tfhpc/internal/pprofsrv"
	"tfhpc/internal/rpc"
	"tfhpc/internal/serving"
	"tfhpc/internal/serving/generate"
	"tfhpc/internal/telemetry"
	"tfhpc/internal/tensor"
)

// modelFlags collects repeated -model name=path pairs.
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string { return fmt.Sprintf("%d models", len(*m)) }

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want -model name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var models, genModels modelFlags
	listen := flag.String("listen", "127.0.0.1:8500", "HTTP predictor listen address")
	rpcAddr := flag.String("rpc", "", "also serve the framed binary endpoint on this address (replicas need this)")
	flag.Var(&models, "model", "serve a checkpoint: name=path (repeatable)")
	flag.Var(&genModels, "genmodel", "serve a generative checkpoint (tfsgd -gen-checkpoint) with continuous batching: name=path (repeatable)")
	genSlots := flag.Int("gen-slots", 8, "generative: concurrent decode slots per model")
	genQueue := flag.Int("gen-queue", 64, "generative: admission queue depth per model")
	genMaxTokens := flag.Int("gen-max-tokens", 4096, "generative: per-sequence token budget cap")
	synthetic := flag.String("synthetic", "", "train a synthetic SGD linear model in-process and serve it under this name")
	features := flag.Int("features", 256, "synthetic model dimension")
	steps := flag.Int("steps", 40, "synthetic model training steps")
	route := flag.String("route", "", "route to replica addresses host:port,... instead of hosting models")
	autoscale := flag.String("autoscale", "", `run the serving control plane over an in-process replica fleet: "min=1,max=4,target=8[,tick=250ms,up-cooldown=...,down-cooldown=...,p99-ceiling=...,hysteresis=...,ewma=...]"`)
	canary := flag.String("canary", "", `canary rollout pacing (needs -autoscale): "steps=10;50;100[,hold=2s,maxp99=250ms,maxerr=0.01,min-samples=20,grace=...,remove-grace=...]"`)
	sloWindow := flag.Duration("slo-window", 30*time.Second, "SLO monitor window for autoscale/canary decisions")
	maxBatch := flag.Int("max-batch", 32, "micro-batcher flush threshold (1 disables batching)")
	batchTimeout := flag.Duration("batch-timeout", 2*time.Millisecond, "micro-batcher coalescing window")
	queueDepth := flag.Int("queue", 1024, "per-model admission queue depth")
	deadline := flag.Duration("deadline", time.Second, "default per-request deadline")
	runners := flag.Int("runners", 2, "concurrent batch executors per model")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof and /metricz on this address (off when empty)")
	traceOut := flag.String("trace-out", "", "record spans and write a Chrome/Perfetto trace here at shutdown (TFHPC_TRACE_OUT also works)")
	flag.Parse()

	telemetry.SetProcessName("tfserve")
	if *traceOut != "" {
		telemetry.SetTraceOut(*traceOut)
	}
	if *pprofAddr != "" {
		bound, err := pprofsrv.Serve(*pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof: %w", err))
		}
		fmt.Printf("tfserve: debug server on http://%s (pprof, /metricz)\n", bound)
	}

	batch := serving.BatchOptions{
		MaxBatch:        *maxBatch,
		Timeout:         *batchTimeout,
		QueueDepth:      *queueDepth,
		DefaultDeadline: *deadline,
		Runners:         *runners,
	}

	var predictor serving.Predictor
	var cleanup func()
	var handler http.Handler
	if *canary != "" && *autoscale == "" {
		fatal(fmt.Errorf("-canary needs -autoscale (the rollout controller lives in the control plane)"))
	}
	if *autoscale != "" {
		if *route != "" {
			fatal(fmt.Errorf("-autoscale excludes -route (the control plane runs its own router)"))
		}
		if len(genModels) > 0 {
			fatal(fmt.Errorf("-autoscale does not host -genmodel (serve generative models directly or behind -route)"))
		}
		cp, err := startControlPlane(models, *synthetic, *features, *steps,
			batch, *deadline, *sloWindow, *autoscale, *canary)
		if err != nil {
			fatal(err)
		}
		predictor = cp.Router()
		cleanup = cp.Close
		handler = controlPlaneMux(cp)
		fmt.Printf("tfserve: control plane up, replicas %s\n",
			strings.Join(cp.Fleet().Addrs(), ","))
	} else if *route != "" {
		if len(models) > 0 || len(genModels) > 0 || *synthetic != "" {
			fatal(fmt.Errorf("-route excludes -model/-genmodel/-synthetic (a router hosts no models)"))
		}
		r, err := serving.NewRouter(strings.Split(*route, ","), serving.RouterOptions{
			DefaultDeadline: *deadline,
		})
		if err != nil {
			fatal(err)
		}
		predictor = r
		cleanup = r.Close
		fmt.Printf("tfserve: routing over replicas %s\n", *route)
	} else {
		svc := serving.NewService(serving.NewRegistry(), batch)
		for _, m := range models {
			mv, err := serving.LoadLinear(m.name, 0, m.path)
			if err != nil {
				fatal(err)
			}
			if _, err := svc.ServeModel(mv); err != nil {
				fatal(err)
			}
			fmt.Printf("tfserve: serving %s v%d from %s (d=%d)\n",
				m.name, mv.Version(), m.path, mv.Signature().Features)
		}
		for _, m := range genModels {
			w, version, err := serving.LoadGenerative(m.path, 0)
			if err != nil {
				fatal(err)
			}
			if err := svc.ServeGenerative(m.name, version, w, generate.Options{
				MaxSlots:        *genSlots,
				QueueDepth:      *genQueue,
				MaxTokens:       *genMaxTokens,
				DefaultDeadline: *deadline,
			}); err != nil {
				fatal(err)
			}
			fmt.Printf("tfserve: serving generative %s v%d from %s (d=%d, %d slots)\n",
				m.name, version, m.path, w.Shape()[0], *genSlots)
		}
		if *synthetic != "" {
			mv, err := trainSynthetic(*synthetic, *features, *steps)
			if err != nil {
				fatal(err)
			}
			if _, err := svc.ServeModel(mv); err != nil {
				fatal(err)
			}
			fmt.Printf("tfserve: serving synthetic %s v%d (d=%d, trained %d steps)\n",
				*synthetic, mv.Version(), *features, *steps)
		}
		if len(svc.Models()) == 0 {
			fatal(fmt.Errorf("nothing to serve: give -model, -genmodel, -synthetic or -route"))
		}
		predictor = svc
		cleanup = svc.Close
	}

	// Binary endpoint (the router's replica-facing surface). Health answers
	// the cluster liveness probe — a fleet's ReapDead/UnbenchRecovered can
	// treat a plain tfserve replica like any cluster task.
	var rpcSrv *rpc.Server
	if *rpcAddr != "" {
		rpcSrv = rpc.NewServer()
		rpcSrv.Handle("Health", func([]byte) ([]byte, error) { return []byte("ok"), nil })
		serving.Attach(rpcSrv, predictor)
		bound, err := rpcSrv.Listen(*rpcAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("tfserve: binary endpoint on %s\n", bound)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	if handler == nil {
		handler = serving.NewHTTPHandler(predictor)
	}
	httpSrv := &http.Server{Handler: handler}
	go httpSrv.Serve(ln)
	fmt.Printf("tfserve: HTTP predictor on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	httpSrv.Close()
	if rpcSrv != nil {
		rpcSrv.Close()
	}
	cleanup()
	if path, err := telemetry.DumpConfigured(); err != nil {
		fmt.Fprintf(os.Stderr, "tfserve: trace dump: %v\n", err)
	} else if path != "" {
		fmt.Printf("tfserve: trace written to %s\n", path)
	}
	fmt.Println("tfserve: shut down")
}

// trainSynthetic trains the apps/sgd linear model in-process and wraps the
// learned weights as a servable version — train → serve with no file in
// between.
func trainSynthetic(name string, features, steps int) (*serving.ModelVersion, error) {
	w, err := trainSyntheticWeights(features, steps)
	if err != nil {
		return nil, err
	}
	return serving.NewLinear(name, steps, w)
}

// trainSyntheticWeights is the trainable half of -synthetic: the control
// plane reuses the learned weights as a ModelSource for every backend.
func trainSyntheticWeights(features, steps int) (*tensor.Tensor, error) {
	res, err := sgd.RunReal(sgd.Config{
		Features:      features,
		RowsPerWorker: 4 * features,
		Workers:       2,
		Steps:         steps,
		LR:            0.3,
		Seed:          42,
		Noise:         0.01,
	})
	if err != nil {
		return nil, err
	}
	return res.Weights, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tfserve: %v\n", err)
	os.Exit(1)
}
