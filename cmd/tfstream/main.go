// tfstream runs the STREAM bandwidth micro-benchmark.
//
// Real mode moves float32 tensors between a worker and a parameter server
// over loopback TCP; sim mode evaluates a chosen platform/protocol on the
// virtual hardware.
package main

import (
	"flag"
	"fmt"
	"os"

	"tfhpc/apps/stream"
	"tfhpc/internal/hw"
	"tfhpc/internal/simnet"
)

func main() {
	mode := flag.String("mode", "real", "real|sim")
	sizeMB := flag.Int("size", 16, "transfer size in MB")
	iters := flag.Int("iters", 100, "number of assign_add invocations")
	clusterName := flag.String("cluster", "tegner", "sim: tegner|kebnekaise")
	node := flag.String("node", "k420", "sim: node type (k420|k80|v100)")
	proto := flag.String("protocol", "rdma", "sim: grpc|mpi|rdma")
	place := flag.String("placement", "gpu", "sim: cpu|gpu")
	flag.Parse()

	switch *mode {
	case "real":
		res, err := stream.RunReal(stream.RealConfig{
			Elements: *sizeMB << 20 / 4,
			Iters:    *iters,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("STREAM real: %d x %d MB over loopback TCP: %.1f MB/s (%.3fs)\n",
			*iters, *sizeMB, res.MBps, res.Seconds)
	case "sim":
		c, nt, err := hw.NodeTypeByName(*clusterName, *node)
		if err != nil {
			fatal(err)
		}
		p, err := simnet.ParseProtocol(*proto)
		if err != nil {
			fatal(err)
		}
		placement := simnet.OnGPU
		if *place == "cpu" {
			placement = simnet.OnCPU
		}
		res, err := stream.RunSim(stream.SimConfig{
			Cluster:   c,
			NodeType:  nt,
			Protocol:  p,
			Placement: placement,
			SizeBytes: int64(*sizeMB) << 20,
			Iters:     *iters,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("STREAM sim: %s %s %s tensors on %s, %d x %d MB: %.0f MB/s\n",
			c.Name, nt.Name, placement, p, *iters, *sizeMB, res.MBps)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tfstream: %v\n", err)
	os.Exit(1)
}
