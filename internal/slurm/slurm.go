// Package slurm emulates the pieces of the Slurm workload manager that the
// paper's ClusterResolver consumes: job allocations, the environment
// variables Slurm exports to each task, the `scontrol show hostnames`
// expansion, and task-to-node distribution. On a real system these values
// come from Slurm itself; here a synthetic Allocation produces
// byte-compatible values so the resolver code path is identical.
package slurm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tfhpc/internal/hostlist"
)

// Allocation describes one synthetic Slurm job allocation.
type Allocation struct {
	JobID        int
	Nodes        []string // expanded node names, in allocation order
	TasksPerNode int
	GPUsPerNode  int
}

// NewAllocation creates an allocation of n homogeneous nodes named with the
// given prefix (e.g. "t03n" yields t03n01, t03n02, ...).
func NewAllocation(jobID int, prefix string, n, tasksPerNode, gpusPerNode int) *Allocation {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("%s%02d", prefix, i+1)
	}
	return &Allocation{JobID: jobID, Nodes: nodes, TasksPerNode: tasksPerNode, GPUsPerNode: gpusPerNode}
}

// NumTasks returns the total task count of the allocation.
func (a *Allocation) NumTasks() int { return len(a.Nodes) * a.TasksPerNode }

// Hostlist returns the compressed SLURM_JOB_NODELIST expression.
func (a *Allocation) Hostlist() string { return hostlist.Compress(a.Nodes) }

// TasksPerNodeString renders Slurm's run-length format, e.g. "2(x3)" for
// two tasks on each of three nodes.
func (a *Allocation) TasksPerNodeString() string {
	if len(a.Nodes) == 1 {
		return strconv.Itoa(a.TasksPerNode)
	}
	return fmt.Sprintf("%d(x%d)", a.TasksPerNode, len(a.Nodes))
}

// Placement locates one task within the allocation.
type Placement struct {
	ProcID  int    // global rank
	Node    string // host name
	LocalID int    // rank within the node
}

// Distribute assigns tasks to nodes with Slurm's default block ("plane")
// distribution: ranks fill node 0 first, then node 1, and so on — the
// distribution the paper's resolver supports.
func (a *Allocation) Distribute() []Placement {
	out := make([]Placement, 0, a.NumTasks())
	for proc := 0; proc < a.NumTasks(); proc++ {
		out = append(out, Placement{
			ProcID:  proc,
			Node:    a.Nodes[proc/a.TasksPerNode],
			LocalID: proc % a.TasksPerNode,
		})
	}
	return out
}

// Env returns the environment Slurm would export to the given task,
// restricted to the variables the resolver reads.
func (a *Allocation) Env(procID int) (map[string]string, error) {
	if procID < 0 || procID >= a.NumTasks() {
		return nil, fmt.Errorf("slurm: proc %d out of %d tasks", procID, a.NumTasks())
	}
	p := a.Distribute()[procID]
	return map[string]string{
		"SLURM_JOB_ID":          strconv.Itoa(a.JobID),
		"SLURM_JOB_NODELIST":    a.Hostlist(),
		"SLURM_JOB_NUM_NODES":   strconv.Itoa(len(a.Nodes)),
		"SLURM_NTASKS":          strconv.Itoa(a.NumTasks()),
		"SLURM_NTASKS_PER_NODE": strconv.Itoa(a.TasksPerNode),
		"SLURM_TASKS_PER_NODE":  a.TasksPerNodeString(),
		"SLURM_PROCID":          strconv.Itoa(p.ProcID),
		"SLURM_LOCALID":         strconv.Itoa(p.LocalID),
		"SLURMD_NODENAME":       p.Node,
		"SLURM_GPUS_ON_NODE":    strconv.Itoa(a.GPUsPerNode),
	}, nil
}

// ScontrolShowHostnames mimics `scontrol show hostnames <nodelist>`: it
// expands a compressed node list, one host per line.
func ScontrolShowHostnames(nodelist string) (string, error) {
	hosts, err := hostlist.Expand(nodelist)
	if err != nil {
		return "", err
	}
	return strings.Join(hosts, "\n"), nil
}

// ParseEnv reconstructs an Allocation view from a Slurm environment (the
// inverse of Env, up to field coverage). It is what the resolver calls.
func ParseEnv(env map[string]string) (*Allocation, *Placement, error) {
	get := func(key string) (string, error) {
		v, ok := env[key]
		if !ok || v == "" {
			return "", fmt.Errorf("slurm: environment missing %s", key)
		}
		return v, nil
	}
	nodelist, err := get("SLURM_JOB_NODELIST")
	if err != nil {
		return nil, nil, err
	}
	nodes, err := hostlist.Expand(nodelist)
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(nodes)
	ntasksStr, err := get("SLURM_NTASKS")
	if err != nil {
		return nil, nil, err
	}
	ntasks, err := strconv.Atoi(ntasksStr)
	if err != nil || ntasks <= 0 {
		return nil, nil, fmt.Errorf("slurm: bad SLURM_NTASKS %q", ntasksStr)
	}
	if ntasks%len(nodes) != 0 {
		return nil, nil, fmt.Errorf("slurm: %d tasks do not divide evenly over %d nodes (homogeneous allocations only)", ntasks, len(nodes))
	}
	a := &Allocation{
		Nodes:        nodes,
		TasksPerNode: ntasks / len(nodes),
	}
	if v, ok := env["SLURM_JOB_ID"]; ok {
		a.JobID, _ = strconv.Atoi(v)
	}
	if v, ok := env["SLURM_GPUS_ON_NODE"]; ok {
		a.GPUsPerNode, _ = strconv.Atoi(v)
	}
	procStr, err := get("SLURM_PROCID")
	if err != nil {
		return nil, nil, err
	}
	proc, err := strconv.Atoi(procStr)
	if err != nil || proc < 0 || proc >= ntasks {
		return nil, nil, fmt.Errorf("slurm: bad SLURM_PROCID %q", procStr)
	}
	p := a.Distribute()[proc]
	return a, &p, nil
}
