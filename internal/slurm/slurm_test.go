package slurm

import (
	"strings"
	"testing"
)

func TestAllocationBasics(t *testing.T) {
	a := NewAllocation(4242, "t03n", 3, 2, 2)
	if a.NumTasks() != 6 {
		t.Fatalf("NumTasks = %d", a.NumTasks())
	}
	if a.Hostlist() != "t03n[01-03]" {
		t.Fatalf("hostlist = %q", a.Hostlist())
	}
	if a.TasksPerNodeString() != "2(x3)" {
		t.Fatalf("tasks per node = %q", a.TasksPerNodeString())
	}
	single := NewAllocation(1, "n", 1, 4, 4)
	if single.TasksPerNodeString() != "4" {
		t.Fatalf("single-node format = %q", single.TasksPerNodeString())
	}
}

func TestDistributeBlockOrder(t *testing.T) {
	a := NewAllocation(1, "n", 2, 2, 2)
	p := a.Distribute()
	want := []struct {
		node    string
		localID int
	}{
		{"n01", 0}, {"n01", 1}, {"n02", 0}, {"n02", 1},
	}
	for i, w := range want {
		if p[i].Node != w.node || p[i].LocalID != w.localID || p[i].ProcID != i {
			t.Fatalf("placement[%d] = %+v, want %+v", i, p[i], w)
		}
	}
}

func TestEnvFields(t *testing.T) {
	a := NewAllocation(777, "t03n", 2, 2, 2)
	env, err := a.Env(3)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]string{
		"SLURM_JOB_ID":         "777",
		"SLURM_JOB_NODELIST":   "t03n[01-02]",
		"SLURM_NTASKS":         "4",
		"SLURM_TASKS_PER_NODE": "2(x2)",
		"SLURM_PROCID":         "3",
		"SLURM_LOCALID":        "1",
		"SLURMD_NODENAME":      "t03n02",
		"SLURM_GPUS_ON_NODE":   "2",
	}
	for k, want := range checks {
		if env[k] != want {
			t.Errorf("%s = %q, want %q", k, env[k], want)
		}
	}
	if _, err := a.Env(99); err == nil {
		t.Fatal("out-of-range proc should error")
	}
}

func TestScontrolShowHostnames(t *testing.T) {
	out, err := ScontrolShowHostnames("t03n[01-03],t04n07")
	if err != nil {
		t.Fatal(err)
	}
	want := "t03n01\nt03n02\nt03n03\nt04n07"
	if out != want {
		t.Fatalf("scontrol output:\n%s\nwant:\n%s", out, want)
	}
	if _, err := ScontrolShowHostnames("bad["); err == nil {
		t.Fatal("bad nodelist should error")
	}
}

func TestParseEnvRoundTrip(t *testing.T) {
	a := NewAllocation(55, "gpu", 4, 2, 4)
	for proc := 0; proc < a.NumTasks(); proc++ {
		env, _ := a.Env(proc)
		got, place, err := ParseEnv(env)
		if err != nil {
			t.Fatalf("proc %d: %v", proc, err)
		}
		if len(got.Nodes) != 4 || got.TasksPerNode != 2 || got.GPUsPerNode != 4 || got.JobID != 55 {
			t.Fatalf("proc %d: allocation %+v", proc, got)
		}
		if place.ProcID != proc {
			t.Fatalf("proc %d: placement %+v", proc, place)
		}
		wantNode := a.Nodes[proc/2]
		if place.Node != wantNode {
			t.Fatalf("proc %d on %q, want %q", proc, place.Node, wantNode)
		}
	}
}

func TestParseEnvErrors(t *testing.T) {
	base, _ := NewAllocation(1, "n", 2, 2, 0).Env(0)
	for _, drop := range []string{"SLURM_JOB_NODELIST", "SLURM_NTASKS", "SLURM_PROCID"} {
		env := map[string]string{}
		for k, v := range base {
			env[k] = v
		}
		delete(env, drop)
		if _, _, err := ParseEnv(env); err == nil || !strings.Contains(err.Error(), drop) {
			t.Errorf("dropping %s: err = %v", drop, err)
		}
	}
	env := map[string]string{}
	for k, v := range base {
		env[k] = v
	}
	env["SLURM_NTASKS"] = "3" // does not divide 2 nodes
	if _, _, err := ParseEnv(env); err == nil {
		t.Error("non-homogeneous task count should error")
	}
}
