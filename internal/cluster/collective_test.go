package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// TestInitCollectiveAndRemoteAllReduce stands up a 4-task cluster, joins the
// tasks into a TCP collective group, and drives an AllReduce graph op on
// each task from client-side sessions — the full distributed path the CG and
// SGD apps use.
func TestInitCollectiveAndRemoteAllReduce(t *testing.T) {
	const p = 4
	lc, err := StartLocal(map[string]int{"worker": p})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	if err := peers.WaitHealthy("worker", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := peers.InitCollective("worker", "grp", CollectiveOptions{
		ChunkBytes:  64,
		RecvTimeout: 10 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	n := 33
	var wg sync.WaitGroup
	outs := make([]*tensor.Tensor, p)
	errs := make([]error, p)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := graph.New()
			g.WithDevice(fmt.Sprintf("/job:worker/task:%d", w), func() {
				v := make([]float64, n)
				for i := range v {
					v[i] = float64(w + i)
				}
				in := g.Const(tensor.FromF64(tensor.Shape{n}, v))
				g.AddNamedOp("sum", "AllReduce", graph.Attrs{"group": "grp"}, in)
			})
			sess, err := session.New(g, nil, session.Options{
				LocalJob: "client", Remote: peers,
			})
			if err != nil {
				errs[w] = err
				return
			}
			out, err := sess.Run(nil, []string{"sum"}, nil)
			if err != nil {
				errs[w] = err
				return
			}
			outs[w] = out[0]
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 0; w < p; w++ {
		for i := 0; i < n; i++ {
			want := float64(0+1+2+3) + float64(p*i)
			if got := outs[w].F64()[i]; got != want {
				t.Fatalf("worker %d elem %d = %g, want %g", w, i, got, want)
			}
		}
	}
}

// TestCollInitReplacesGroup re-initialises the same group name and checks
// the new membership works (drivers that restart must be able to rebuild
// their rings on living servers).
func TestCollInitReplacesGroup(t *testing.T) {
	const p = 2
	lc, err := StartLocal(map[string]int{"worker": p})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	for round := 0; round < 2; round++ {
		if err := peers.InitCollective("worker", "grp", CollectiveOptions{RecvTimeout: 5 * time.Second}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var wg sync.WaitGroup
		errs := make([]error, p)
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h, err := lc.Server("worker", w).Res.Colls.Get("grp")
				if err != nil {
					errs[w] = err
					return
				}
				out, err := h.AllReduce("k", tensor.ScalarF64(1), "sum")
				if err == nil && out.ScalarFloat() != float64(p) {
					err = fmt.Errorf("sum = %g, want %d", out.ScalarFloat(), p)
				}
				errs[w] = err
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("round %d worker %d: %v", round, w, err)
			}
		}
	}
}

// TestAbortCollectiveUnblocksRanks: a driver that fails mid-run aborts the
// group; ranks blocked inside a collective must error out promptly instead
// of waiting for the receive timeout.
func TestAbortCollectiveUnblocksRanks(t *testing.T) {
	const p = 2
	lc, err := StartLocal(map[string]int{"worker": p})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	if err := peers.InitCollective("worker", "grp", CollectiveOptions{RecvTimeout: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// Task 0 enters the collective alone (task 1's driver "failed").
	done := make(chan error, 1)
	go func() {
		h, err := lc.Server("worker", 0).Res.Colls.Get("grp")
		if err != nil {
			done <- err
			return
		}
		_, err = h.AllReduce("k", tensor.ScalarF64(1), "sum")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	peers.AbortCollective("worker", "grp")
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted collective succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not unblock the collective")
	}
}

// TestServerCloseUnblocksCollective: closing a server while a peer is mid
// collective must error the peer out (drain would otherwise deadlock on the
// blocked RunOp).
func TestServerCloseUnblocksCollective(t *testing.T) {
	const p = 2
	lc, err := StartLocal(map[string]int{"worker": p})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	if err := peers.InitCollective("worker", "grp", CollectiveOptions{RecvTimeout: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// Task 0 enters the collective alone; task 1 never joins. Closing task 0
	// must surface an error instead of hanging until the recv timeout.
	done := make(chan error, 1)
	go func() {
		h, err := lc.Server("worker", 0).Res.Colls.Get("grp")
		if err != nil {
			done <- err
			return
		}
		_, err = h.AllReduce("k", tensor.ScalarF64(1), "sum")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		lc.Server("worker", 0).Close()
		close(closed)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("lone collective succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("collective hung through server close")
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("server close hung")
	}
}
