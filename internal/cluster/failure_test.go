package cluster

import (
	"strings"
	"testing"

	"tfhpc/internal/graph"
	"tfhpc/internal/tensor"
)

// Failure injection: the behaviours a distributed runtime must get right
// when tasks disappear or requests are malformed.

func TestPeersAgainstDeadServer(t *testing.T) {
	lc, err := StartLocal(map[string]int{"ps": 1})
	if err != nil {
		t.Fatal(err)
	}
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	// Kill the task, then call it.
	lc.Close()
	dev := graph.MustParseDevice("/job:ps/task:0")
	if _, err := peers.RunRemoteOp(dev, "Variable", "r", graph.Attrs{"var_name": "w"}, nil, nil); err == nil {
		t.Fatal("call to a dead task should error")
	}
	if err := peers.Health("ps", 0); err == nil {
		t.Fatal("health check of a dead task should error")
	}
}

func TestPeersUnknownJobAndTask(t *testing.T) {
	lc, err := StartLocal(map[string]int{"ps": 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	if _, err := peers.RunRemoteOp(graph.MustParseDevice("/job:ghost/task:0"),
		"NoOp", "n", nil, nil, nil); err == nil {
		t.Fatal("unknown job should error")
	}
	if _, err := peers.RunRemoteOp(graph.MustParseDevice("/job:ps/task:9"),
		"NoOp", "n", nil, nil, nil); err == nil {
		t.Fatal("out-of-range task should error")
	}
}

func TestRemoteUnknownOp(t *testing.T) {
	lc, err := StartLocal(map[string]int{"ps": 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	_, err = peers.RunRemoteOp(graph.MustParseDevice("/job:ps/task:0"),
		"NotARealOp", "n", nil, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteKernelErrorSurvivesConnection(t *testing.T) {
	lc, err := StartLocal(map[string]int{"ps": 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	dev := graph.MustParseDevice("/job:ps/task:0")
	// Reading an uninitialized variable errors remotely...
	if _, err := peers.RunRemoteOp(dev, "Variable", "r",
		graph.Attrs{"var_name": "nope"}, nil, nil); err == nil {
		t.Fatal("uninitialized read should error")
	}
	// ...and the connection remains usable afterwards.
	if _, err := peers.RunRemoteOp(dev, "Assign", "a",
		graph.Attrs{"var_name": "nope"}, []string{"c"},
		[]*tensor.Tensor{tensor.ScalarF64(1)}); err != nil {
		t.Fatalf("connection broken after remote error: %v", err)
	}
}

func TestServerRestartFromSnapshot(t *testing.T) {
	srv := NewServer("ps", 0)
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	srv.Res.Vars.Get("w").Assign(tensor.ScalarF64(5))
	snap := srv.Res.Vars.Snapshot()
	srv.Close()

	// A restarted task restores its state from the snapshot (the
	// checkpoint-restart flow the paper highlights).
	srv2 := NewServer("ps", 0)
	if err := srv2.Res.Vars.Restore(snap); err != nil {
		t.Fatal(err)
	}
	addr2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	peers := NewPeers(Spec{"ps": []string{addr2}})
	defer peers.Close()
	got, err := peers.RunRemoteOp(graph.MustParseDevice("/job:ps/task:0"),
		"Variable", "r", graph.Attrs{"var_name": "w"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.ScalarFloat() != 5 {
		t.Fatal("state lost across restart")
	}
}
