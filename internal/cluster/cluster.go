// Package cluster implements the distributed runtime: ClusterSpecs naming
// jobs and tasks ("ps", "worker", "reducer"), per-task Servers that host
// devices, variables and queues and execute ops over RPC, and the
// SlurmClusterResolver that — like the paper's tf.contrib.cluster_resolver
// extension — turns a Slurm allocation into a ready-to-use cluster.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/graph"
	"tfhpc/internal/ops"
	"tfhpc/internal/rpc"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
	"tfhpc/internal/wire"
)

// Spec maps job names to their tasks' addresses, mirroring
// tf.train.ClusterSpec (Listing 2 of the paper).
type Spec map[string][]string

// Jobs returns the job names in sorted order.
func (s Spec) Jobs() []string {
	out := make([]string, 0, len(s))
	for j := range s {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}

// NumTasks returns how many tasks a job has.
func (s Spec) NumTasks(job string) int { return len(s[job]) }

// Address resolves a job/task pair.
func (s Spec) Address(job string, task int) (string, error) {
	tasks, ok := s[job]
	if !ok {
		return "", fmt.Errorf("cluster: unknown job %q", job)
	}
	if task < 0 || task >= len(tasks) {
		return "", fmt.Errorf("cluster: job %q has %d tasks, task %d requested", job, len(tasks), task)
	}
	return tasks[task], nil
}

// String renders the spec in the paper's Listing-2 style.
func (s Spec) String() string {
	var sb strings.Builder
	sb.WriteString("{")
	for i, job := range s.Jobs() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%q: [%s]", job, strings.Join(s[job], ", "))
	}
	sb.WriteString("}")
	return sb.String()
}

// Server is one TensorFlow-server analogue: a task that owns local
// resources and executes ops on request. Create with NewServer, then Start.
// Every server also hosts a collective Hub, so tasks can run ring
// collectives among themselves once a client (or peer) calls CollInit.
type Server struct {
	Job  string
	Task int
	Res  *session.Resources
	Hub  *collective.Hub

	srv       *rpc.Server
	inbox     *collective.ShmInbox
	addr      string
	advertise string
	shmAddrs  []string
	mu        sync.Mutex
}

// NewServer creates a task server with fresh resources.
func NewServer(job string, task int) *Server {
	s := &Server{Job: job, Task: task, Res: session.NewResources(), Hub: collective.NewHub(), inbox: collective.NewShmInbox()}
	s.srv = rpc.NewServer()
	s.srv.Handle("RunOp", s.handleRunOp)
	s.srv.Handle("CollSend", s.Hub.HandleSend)
	s.srv.HandleStream(collective.StreamMethod, s.Hub.HandleStream)
	s.srv.Handle("CollInit", s.handleCollInit)
	s.srv.Handle("CollClose", s.handleCollClose)
	s.srv.Handle("Health", func([]byte) ([]byte, error) { return []byte("ok"), nil })
	return s
}

// HandleCtx registers an additional RPC method on this task's server — the
// hook other subsystems use to co-host endpoints on cluster worker tasks
// (model serving attaches its predict/stats methods this way, so a worker
// can train a replica and serve it from the same process).
func (s *Server) HandleCtx(method string, h rpc.CtxHandler) { s.srv.HandleCtx(method, h) }

// HandleStream registers an additional streaming method — the same co-host
// hook for stream endpoints (serving's streaming predict rides on it).
func (s *Server) HandleStream(method string, h rpc.StreamHandler) { s.srv.HandleStream(method, h) }

// Start binds addr ("host:0" allocates a port) and begins serving; returns
// the bound address. The task's shared-memory inbox is published under the
// bound address, so groups whose peers live in this process skip the TCP
// stack entirely (see collective.RegisterShm).
func (s *Server) Start(addr string) (string, error) {
	bound, err := s.srv.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.addr = bound
	s.registerShmLocked(bound)
	s.mu.Unlock()
	return bound, nil
}

// registerShmLocked publishes the inbox under addr (idempotent).
func (s *Server) registerShmLocked(addr string) {
	if addr == "" {
		return
	}
	for _, a := range s.shmAddrs {
		if a == addr {
			return
		}
	}
	collective.RegisterShm(addr, s.inbox)
	s.shmAddrs = append(s.shmAddrs, addr)
}

// SetAdvertise overrides the address this task reports as its identity —
// needed when the bind address (0.0.0.0, a container port-map) is not what
// peers should dial. Cluster specs should carry the advertised address.
func (s *Server) SetAdvertise(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if addr != "" {
		s.advertise = addr
		// Peers dial the advertised form, so shm discovery must find the
		// inbox under it too.
		if s.addr != "" {
			s.registerShmLocked(addr)
		}
	}
}

// Addr returns the dialable address: the advertised one when set, otherwise
// the bound listen address (empty before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.advertise != "" {
		return s.advertise
	}
	return s.addr
}

// Close tears the task down in dependency order: collective memberships and
// the hub first (so ops blocked inside a ring fail fast instead of pinning
// in-flight RPCs), then the RPC server, which drains active calls before
// closing the listener and connections.
func (s *Server) Close() error {
	s.mu.Lock()
	addrs := s.shmAddrs
	s.shmAddrs = nil
	s.mu.Unlock()
	for _, a := range addrs {
		collective.UnregisterShm(a, s.inbox)
	}
	s.inbox.Close()
	s.Res.Colls.CloseAll()
	s.Hub.Close()
	return s.srv.Close()
}

// CollInit request encoding:
//
//	1 group, 2 rank, 4 repeated peer address, 5 chunk bytes, 6 timeout ms,
//	7 epoch, 8 algorithm, 9 switch bytes, 10 fusion flush bytes,
//	11 fusion flush tensors, 12 fusion flush interval µs
func encodeCollInit(group string, rank int, addrs []string, opts CollectiveOptions, epoch uint64) []byte {
	e := wire.NewEncoder()
	e.String(1, group)
	e.Int(2, int64(rank))
	for _, a := range addrs {
		e.String(4, a)
	}
	e.Int(5, int64(opts.ChunkBytes))
	e.Int(6, int64(opts.RecvTimeout/time.Millisecond))
	e.Uint(7, epoch)
	if opts.Algorithm != "" {
		e.String(8, opts.Algorithm)
	}
	e.Int(9, int64(opts.SwitchBytes))
	e.Int(10, opts.Fusion.FlushBytes)
	e.Int(11, int64(opts.Fusion.FlushTensors))
	e.Int(12, int64(opts.Fusion.FlushInterval/time.Microsecond))
	return e.Bytes()
}

// handleCollInit joins this task to a TCP collective group: it builds the
// transport endpoint over the advertised peer addresses and registers the
// group membership in the task's resources under the group name, replacing
// (and closing) any previous membership.
func (s *Server) handleCollInit(req []byte) ([]byte, error) {
	var group string
	var rank int
	var addrs []string
	var opts CollectiveOptions
	var epoch uint64
	d := wire.NewDecoder(req)
	for d.More() {
		f, wt, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			if group, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 2:
			v, err := d.Int()
			if err != nil {
				return nil, err
			}
			rank = int(v)
		case 4:
			a, err := d.StringVal()
			if err != nil {
				return nil, err
			}
			addrs = append(addrs, a)
		case 5:
			v, err := d.Int()
			if err != nil {
				return nil, err
			}
			opts.ChunkBytes = int(v)
		case 6:
			v, err := d.Int()
			if err != nil {
				return nil, err
			}
			opts.RecvTimeout = time.Duration(v) * time.Millisecond
		case 7:
			if epoch, err = d.Uint(); err != nil {
				return nil, err
			}
		case 8:
			if opts.Algorithm, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 9:
			v, err := d.Int()
			if err != nil {
				return nil, err
			}
			opts.SwitchBytes = int(v)
		case 10:
			if opts.Fusion.FlushBytes, err = d.Int(); err != nil {
				return nil, err
			}
		case 11:
			v, err := d.Int()
			if err != nil {
				return nil, err
			}
			opts.Fusion.FlushTensors = int(v)
		case 12:
			v, err := d.Int()
			if err != nil {
				return nil, err
			}
			opts.Fusion.FlushInterval = time.Duration(v) * time.Microsecond
		default:
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
		}
	}
	if group == "" || len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: malformed CollInit")
	}
	tr, err := collective.NewTCPTransport(group, rank, addrs, s.Hub, opts.RecvTimeout, epoch)
	if err != nil {
		return nil, err
	}
	s.Res.Colls.Register(group, collective.NewGroup(tr, collective.Options{
		ChunkBytes:  opts.ChunkBytes,
		Algorithm:   opts.Algorithm,
		SwitchBytes: opts.SwitchBytes,
		Fusion:      opts.Fusion,
	}))
	return []byte("ok"), nil
}

// handleCollClose aborts a group: the membership is closed, which poisons
// the local inbox so any op blocked inside one of the group's collectives
// errors out. Request encoding: 1 group.
func (s *Server) handleCollClose(req []byte) ([]byte, error) {
	var group string
	d := wire.NewDecoder(req)
	for d.More() {
		f, wt, err := d.Next()
		if err != nil {
			return nil, err
		}
		if f == 1 {
			if group, err = d.StringVal(); err != nil {
				return nil, err
			}
			continue
		}
		if err := d.Skip(wt); err != nil {
			return nil, err
		}
	}
	if group == "" {
		return nil, fmt.Errorf("cluster: malformed CollClose")
	}
	s.Res.Colls.Close(group)
	s.Hub.CloseGroup(group)
	return []byte("ok"), nil
}

// RunOp request encoding:
//
//	1 op, 2 nodeName, 3 attr bytes, 4 repeated input name,
//	5 repeated input tensor bytes
//
// Response: tensor bytes.
func encodeRunOp(op, nodeName string, attrs graph.Attrs, inputNames []string, inputs []*tensor.Tensor) ([]byte, error) {
	ab, err := graph.MarshalAttrs(attrs)
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder()
	e.String(1, op)
	e.String(2, nodeName)
	e.BytesField(3, ab)
	for _, n := range inputNames {
		e.String(4, n)
	}
	for _, t := range inputs {
		tb, err := t.Encode(nil)
		if err != nil {
			return nil, err
		}
		e.BytesField(5, tb)
	}
	return e.Bytes(), nil
}

func (s *Server) handleRunOp(req []byte) ([]byte, error) {
	var op, nodeName string
	var attrs graph.Attrs
	var inputNames []string
	var inputs []*tensor.Tensor
	d := wire.NewDecoder(req)
	for d.More() {
		f, wt, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			if op, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 2:
			if nodeName, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 3:
			ab, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			if attrs, err = graph.UnmarshalAttrs(ab); err != nil {
				return nil, err
			}
		case 4:
			n, err := d.StringVal()
			if err != nil {
				return nil, err
			}
			inputNames = append(inputNames, n)
		case 5:
			tb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			t, _, err := tensor.Decode(tb)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, t)
		default:
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
		}
	}
	ctx := &ops.Context{
		NodeName:   nodeName,
		Attrs:      attrs,
		InputNames: inputNames,
		Resources:  s.Res,
		Scratch:    ops.NewScratch(),
	}
	out, err := ops.Run(op, ctx, inputs)
	if err != nil {
		return nil, err
	}
	return out.Encode(nil)
}

// Peers is the client side of a cluster: it forwards ops to remote tasks
// and implements session.RemoteRunner.
type Peers struct {
	spec Spec

	mu      sync.Mutex
	clients map[string]*rpc.Client
}

// NewPeers creates a client set over a spec.
func NewPeers(spec Spec) *Peers {
	return &Peers{spec: spec, clients: make(map[string]*rpc.Client)}
}

// Spec returns the cluster spec.
func (p *Peers) Spec() Spec { return p.spec }

func (p *Peers) client(job string, task int) (*rpc.Client, error) {
	addr, err := p.spec.Address(job, task)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.clients[addr]
	if !ok {
		c = rpc.Dial(addr)
		p.clients[addr] = c
	}
	return c, nil
}

// RunRemoteOp implements session.RemoteRunner by forwarding the op to the
// task named in the device spec.
func (p *Peers) RunRemoteOp(device graph.DeviceSpec, op, nodeName string, attrs graph.Attrs,
	inputNames []string, inputs []*tensor.Tensor) (*tensor.Tensor, error) {
	task := device.Task
	if task < 0 {
		task = 0
	}
	c, err := p.client(device.Job, task)
	if err != nil {
		return nil, err
	}
	req, err := encodeRunOp(op, nodeName, attrs, inputNames, inputs)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call("RunOp", req)
	if err != nil {
		return nil, err
	}
	out, _, err := tensor.Decode(resp)
	return out, err
}

// Health pings a task.
func (p *Peers) Health(job string, task int) error {
	c, err := p.client(job, task)
	if err != nil {
		return err
	}
	_, err = c.Call("Health", nil)
	return err
}

// HealthRetry pings a task under a retry policy: transient connection
// failures (the task is mid-restart) back off and retry, handler errors and
// context expiry are final. The elastic coordinator's liveness probe.
func (p *Peers) HealthRetry(ctx context.Context, job string, task int, pol rpc.RetryPolicy) error {
	c, err := p.client(job, task)
	if err != nil {
		return err
	}
	_, err = c.CallRetry(ctx, "Health", nil, pol)
	return err
}

// WaitHealthy waits for every task of a job to answer Health, retrying
// transient failures with exponential backoff + jitter until the deadline —
// the client-side readiness gate for clusters whose tasks are separate
// processes racing the driver (CI boots them with &).
func (p *Peers) WaitHealthy(job string, deadline time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	pol := rpc.RetryPolicy{Attempts: 1 << 20, Base: 20 * time.Millisecond, Max: 500 * time.Millisecond}
	for task := 0; task < p.spec.NumTasks(job); task++ {
		if err := p.HealthRetry(ctx, job, task, pol); err != nil {
			return fmt.Errorf("cluster: task /job:%s/task:%d not healthy after %v: %w", job, task, deadline, err)
		}
	}
	return nil
}

// CollectiveOptions tune InitCollective. Algorithm/SwitchBytes/Fusion map
// onto collective.Options and ship to every task, so the whole ring agrees
// on the message pattern.
type CollectiveOptions struct {
	// ChunkBytes is the ring pipelining granularity (0 = engine default).
	ChunkBytes int
	// RecvTimeout bounds each receive on the servers (0 = engine default).
	RecvTimeout time.Duration
	// Algorithm forces one allreduce/broadcast algorithm ("" = auto picker).
	Algorithm string
	// SwitchBytes is the picker's bytes/p threshold (0 = engine default).
	SwitchBytes int
	// Fusion tunes each task's fusion buffer (AllReduceFused ops).
	Fusion collective.FusionOptions
}

// InitCollective joins every task of a job into one TCP collective group:
// task i becomes rank i over the job's advertised addresses. Re-initialising
// an existing group name replaces (and closes) the old membership, so a
// restarted driver can rebuild its rings.
func (p *Peers) InitCollective(job, group string, opts CollectiveOptions) error {
	if _, ok := p.spec[job]; !ok {
		return fmt.Errorf("cluster: unknown job %q", job)
	}
	tasks := make([]int, p.spec.NumTasks(job))
	for i := range tasks {
		tasks[i] = i
	}
	// One epoch per incarnation: every rank's transport fences its traffic
	// with it, so chunks still in flight from an aborted predecessor can
	// never be reduced into this membership's collectives.
	return p.InitCollectiveTasks(job, group, tasks, opts, uint64(time.Now().UnixNano()))
}

// InitCollectiveTasks joins a subset of a job's tasks into one collective
// group: the i-th entry of tasks becomes rank i, over that subset's
// addresses. This is the elastic rebuild primitive — after a task loss the
// coordinator re-runs it over the survivors with a higher epoch (shrink),
// and again over the full set when a replacement answers probes (grow).
// The epoch must be strictly greater than the group's previous one; every
// task's transport fences out traffic from older incarnations.
func (p *Peers) InitCollectiveTasks(job, group string, tasks []int, opts CollectiveOptions, epoch uint64) error {
	if len(tasks) == 0 {
		return fmt.Errorf("cluster: InitCollectiveTasks %q with no tasks", group)
	}
	addrs := make([]string, len(tasks))
	for i, task := range tasks {
		a, err := p.spec.Address(job, task)
		if err != nil {
			return err
		}
		addrs[i] = a
	}
	for i, task := range tasks {
		c, err := p.client(job, task)
		if err != nil {
			return err
		}
		req := encodeCollInit(group, i, addrs, opts, epoch)
		if _, err := c.Call("CollInit", req); err != nil {
			return fmt.Errorf("cluster: CollInit on /job:%s/task:%d: %w", job, task, err)
		}
	}
	return nil
}

// AbortCollective poisons the named group on every reachable task of a job:
// ranks blocked inside one of the group's collectives error out instead of
// waiting for the receive timeout. Best-effort — unreachable tasks are
// skipped (they are likely the reason for the abort).
func (p *Peers) AbortCollective(job, group string) {
	e := wire.NewEncoder()
	e.String(1, group)
	req := e.Bytes()
	for task := 0; task < p.spec.NumTasks(job); task++ {
		if c, err := p.client(job, task); err == nil {
			c.Call("CollClose", req)
		}
	}
}

// Close releases all connections.
func (p *Peers) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.clients {
		c.Close()
	}
	p.clients = map[string]*rpc.Client{}
}

// Local is an in-process cluster: one Server per task of every job, all
// bound to loopback ports — the harness tests and examples use it to stand
// up multi-task topologies in one process.
type Local struct {
	SpecV   Spec
	Servers map[string][]*Server
}

// StartLocal boots count tasks for each named job on 127.0.0.1.
func StartLocal(jobs map[string]int) (*Local, error) {
	l := &Local{SpecV: Spec{}, Servers: map[string][]*Server{}}
	for job, n := range jobs {
		for t := 0; t < n; t++ {
			srv := NewServer(job, t)
			addr, err := srv.Start("127.0.0.1:0")
			if err != nil {
				l.Close()
				return nil, err
			}
			l.SpecV[job] = append(l.SpecV[job], addr)
			l.Servers[job] = append(l.Servers[job], srv)
		}
	}
	return l, nil
}

// Spec returns the running cluster's spec.
func (l *Local) Spec() Spec { return l.SpecV }

// Server returns the given task's server.
func (l *Local) Server(job string, task int) *Server { return l.Servers[job][task] }

// Close shuts every task down.
func (l *Local) Close() {
	for _, srvs := range l.Servers {
		for _, s := range srvs {
			s.Close()
		}
	}
}
