package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tfhpc/internal/tensor"
)

// TestCoordinatorEpochMonotonic: every Init issues a strictly larger epoch.
func TestCoordinatorEpochMonotonic(t *testing.T) {
	const p = 2
	lc, err := StartLocal(map[string]int{"worker": p})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	coord := NewCoordinator(peers, "worker")

	var last uint64
	for i := 0; i < 3; i++ {
		epoch, err := coord.Init("grp", []int{0, 1}, CollectiveOptions{RecvTimeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("init %d: %v", i, err)
		}
		if epoch <= last {
			t.Fatalf("init %d: epoch %d did not advance past %d", i, epoch, last)
		}
		if coord.Epoch() != epoch {
			t.Fatalf("Epoch() = %d, want %d", coord.Epoch(), epoch)
		}
		last = epoch
	}
	if _, err := coord.Init("grp", nil, CollectiveOptions{}); err == nil {
		t.Fatal("init over zero tasks succeeded")
	}
}

// TestCoordinatorSurvivorsAndRebuild kills one task of three, lets the
// coordinator find the survivors, and rebuilds the group over them — the
// shrink half of the elastic protocol, down at the membership layer.
func TestCoordinatorSurvivorsAndRebuild(t *testing.T) {
	const p = 3
	lc, err := StartLocal(map[string]int{"worker": p})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	if err := peers.WaitHealthy("worker", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(peers, "worker")
	// Keep probes of the dead task short; a refused connection is the answer
	// here, not a transient to ride out.
	coord.ProbeTimeout = time.Second
	coord.ProbePolicy.Attempts = 2
	coord.ProbePolicy.Base = 5 * time.Millisecond

	lc.Server("worker", 1).Close()
	alive := coord.Survivors([]int{0, 1, 2})
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 2 {
		t.Fatalf("survivors = %v, want [0 2]", alive)
	}

	if _, err := coord.Init("grp", alive, CollectiveOptions{RecvTimeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// The i-th survivor is rank i of the rebuilt group: an allreduce over the
	// two-task group must see width 2, not 3.
	var wg sync.WaitGroup
	errs := make([]error, len(alive))
	for i, task := range alive {
		wg.Add(1)
		go func(i, task int) {
			defer wg.Done()
			h, err := lc.Server("worker", task).Res.Colls.Get("grp")
			if err != nil {
				errs[i] = err
				return
			}
			out, err := h.AllReduce("k", tensor.ScalarF64(1), "sum")
			if err == nil && out.ScalarFloat() != 2 {
				err = fmt.Errorf("sum = %g, want 2", out.ScalarFloat())
			}
			errs[i] = err
		}(i, task)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
	}
}
