package cluster

import (
	"strings"
	"sync"
	"testing"

	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/slurm"
	"tfhpc/internal/tensor"
)

func TestSpecBasics(t *testing.T) {
	spec := Spec{
		"ps":     []string{"t01n01:8888"},
		"worker": []string{"t01n02:8888", "t01n03:8888"},
	}
	if got := spec.NumTasks("worker"); got != 2 {
		t.Fatalf("NumTasks = %d", got)
	}
	addr, err := spec.Address("worker", 1)
	if err != nil || addr != "t01n03:8888" {
		t.Fatalf("Address = %q, %v", addr, err)
	}
	if _, err := spec.Address("worker", 5); err == nil {
		t.Fatal("out-of-range task should error")
	}
	if _, err := spec.Address("gpuq", 0); err == nil {
		t.Fatal("unknown job should error")
	}
	s := spec.String()
	if !strings.Contains(s, `"ps": [t01n01:8888]`) {
		t.Fatalf("spec string %q", s)
	}
}

func TestLocalClusterHealthAndRemoteOps(t *testing.T) {
	lc, err := StartLocal(map[string]int{"ps": 1, "worker": 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()

	if err := peers.Health("ps", 0); err != nil {
		t.Fatal(err)
	}
	if err := peers.Health("worker", 1); err != nil {
		t.Fatal(err)
	}

	// Remote variable ops against the ps task.
	dev := graph.MustParseDevice("/job:ps/task:0")
	val := tensor.FromF64(tensor.Shape{3}, []float64{1, 2, 3})
	if _, err := peers.RunRemoteOp(dev, "Assign", "a0", graph.Attrs{"var_name": "w"},
		[]string{"c"}, []*tensor.Tensor{val}); err != nil {
		t.Fatal(err)
	}
	if _, err := peers.RunRemoteOp(dev, "AssignAdd", "a1", graph.Attrs{"var_name": "w"},
		[]string{"c"}, []*tensor.Tensor{val}); err != nil {
		t.Fatal(err)
	}
	got, err := peers.RunRemoteOp(dev, "Variable", "r", graph.Attrs{"var_name": "w"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.F64()[2] != 6 {
		t.Fatalf("remote variable = %v", got.F64())
	}
	// The variable lives on ps, not on workers.
	wdev := graph.MustParseDevice("/job:worker/task:0")
	if _, err := peers.RunRemoteOp(wdev, "Variable", "r2", graph.Attrs{"var_name": "w"}, nil, nil); err == nil {
		t.Fatal("variable should not exist on worker")
	}
}

func TestRemoteQueueDataflow(t *testing.T) {
	lc, err := StartLocal(map[string]int{"reducer": 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()
	dev := graph.MustParseDevice("/job:reducer/task:0")
	attrs := graph.Attrs{"queue": "partials", "capacity": 8}

	// Two concurrent "workers" push partial scalars; a dequeue drains them.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			_, err := peers.RunRemoteOp(dev, "QueueEnqueue", "enq", attrs,
				[]string{"c"}, []*tensor.Tensor{tensor.ScalarF64(v)})
			if err != nil {
				t.Error(err)
			}
		}(float64(i + 1))
	}
	wg.Wait()
	sum := 0.0
	for i := 0; i < 2; i++ {
		got, err := peers.RunRemoteOp(dev, "QueueDequeue", "deq", attrs, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum += got.ScalarFloat()
	}
	if sum != 3 {
		t.Fatalf("sum of partials = %v", sum)
	}
}

// A distributed session: worker-local compute with a variable pinned to ps,
// exercising the session->Peers->Server path end to end over TCP.
func TestDistributedSessionThroughPeers(t *testing.T) {
	lc, err := StartLocal(map[string]int{"ps": 1, "worker": 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := NewPeers(lc.Spec())
	defer peers.Close()

	g := graph.New()
	var local, push *graph.Node
	g.WithDevice("/job:worker/task:0", func() {
		local = g.AddOp("RandomUniform", graph.Attrs{
			"dtype": tensor.Float64, "shape": tensor.Shape{4}, "seed": 1})
	})
	g.WithDevice("/job:ps/task:0", func() {
		init := g.AddNamedOp("init", "Assign", graph.Attrs{"var_name": "acc"},
			g.Const(tensor.New(tensor.Float64, 4)))
		push = g.AddNamedOp("push", "AssignAdd", graph.Attrs{"var_name": "acc"}, local)
		push.AddControlDep(init)
	})

	sess, err := session.New(g, nil, session.Options{
		LocalJob: "worker", LocalTask: 0, Remote: peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run(nil, []string{push.Name()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Shape().Equal(tensor.Shape{4}) {
		t.Fatalf("shape %v", out[0].Shape())
	}
	// The accumulated value lives on the ps server, not locally.
	psStore := lc.Server("ps", 0).Res.Vars
	got, err := psStore.Get("acc").Read()
	if err != nil {
		t.Fatalf("acc not on ps: %v", err)
	}
	if !got.Equal(out[0]) {
		t.Fatal("ps state disagrees with fetched value")
	}
}

func TestResolverTegnerStyle(t *testing.T) {
	// 3 nodes, 1 task each (Tegner K420 per Table I): 1 ps + 2 workers.
	alloc := slurm.NewAllocation(100, "t03n", 3, 1, 1)
	r := &SlurmResolver{Jobs: []JobSpec{{"ps", 1}, {"worker", 2}}}
	env, _ := alloc.Env(0)
	res, err := r.Resolve(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Job != "ps" || res.Task != 0 {
		t.Fatalf("proc 0 resolved to %s:%d", res.Job, res.Task)
	}
	if got := res.Spec["ps"][0]; got != "t03n01:8888" {
		t.Fatalf("ps address %q", got)
	}
	if got := res.Spec["worker"][1]; got != "t03n03:8888" {
		t.Fatalf("worker 1 address %q", got)
	}
	// Worker proc sees the same spec but its own identity.
	env2, _ := alloc.Env(2)
	res2, err := r.Resolve(env2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Job != "worker" || res2.Task != 1 {
		t.Fatalf("proc 2 resolved to %s:%d", res2.Job, res2.Task)
	}
	if len(res2.GPUs) != 1 || res2.GPUs[0] != 0 {
		t.Fatalf("GPU exposure %v", res2.GPUs)
	}
}

// Table I: Kebnekaise K80 nodes run 4 instances, each seeing one GK210.
func TestResolverKebnekaiseK80GPUExposure(t *testing.T) {
	alloc := slurm.NewAllocation(7, "b-cn", 2, 4, 4)
	r := &SlurmResolver{Jobs: []JobSpec{{"ps", 1}, {"worker", 7}}}
	seenGPU := map[string]map[int]bool{}
	for proc := 0; proc < 8; proc++ {
		env, _ := alloc.Env(proc)
		res, err := r.Resolve(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.GPUs) != 1 {
			t.Fatalf("proc %d exposed %v, want exactly one engine", proc, res.GPUs)
		}
		if seenGPU[res.Node] == nil {
			seenGPU[res.Node] = map[int]bool{}
		}
		if seenGPU[res.Node][res.GPUs[0]] {
			t.Fatalf("GPU %d on %s assigned twice", res.GPUs[0], res.Node)
		}
		seenGPU[res.Node][res.GPUs[0]] = true
	}
	// Every node's 4 engines each went to exactly one task.
	for node, gpus := range seenGPU {
		if len(gpus) != 4 {
			t.Fatalf("node %s exposed %d distinct engines, want 4", node, len(gpus))
		}
	}
	// Ports distinguish co-located tasks.
	env, _ := alloc.Env(0)
	res, _ := r.Resolve(env)
	if res.Spec["worker"][0] == res.Spec["ps"][0] {
		t.Fatal("co-located tasks must differ in port")
	}
}

func TestResolverErrors(t *testing.T) {
	alloc := slurm.NewAllocation(1, "n", 1, 1, 0)
	env, _ := alloc.Env(0)
	r := &SlurmResolver{Jobs: []JobSpec{{"ps", 1}, {"worker", 4}}}
	if _, err := r.Resolve(env); err == nil {
		t.Fatal("oversubscribed jobs should error")
	}
	if _, err := (&SlurmResolver{}).Resolve(env); err == nil {
		t.Fatal("no jobs should error")
	}
	if _, err := (&SlurmResolver{Jobs: []JobSpec{{"w", 0}}}).Resolve(env); err == nil {
		t.Fatal("zero tasks should error")
	}
}

// GPU sharing: more tasks than GPUs round-robins engines (memory sharing
// case from Section II.A of the paper).
func TestResolverGPUSharing(t *testing.T) {
	alloc := slurm.NewAllocation(1, "n", 1, 4, 2)
	r := &SlurmResolver{Jobs: []JobSpec{{"worker", 4}}}
	counts := map[int]int{}
	for proc := 0; proc < 4; proc++ {
		env, _ := alloc.Env(proc)
		res, err := r.Resolve(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.GPUs) != 1 {
			t.Fatalf("want one shared GPU, got %v", res.GPUs)
		}
		counts[res.GPUs[0]]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("sharing unbalanced: %v", counts)
	}
}
