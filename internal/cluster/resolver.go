package cluster

import (
	"fmt"

	"tfhpc/internal/slurm"
)

// JobSpec asks the resolver for a job with a number of tasks.
type JobSpec struct {
	Name  string
	Tasks int
}

// SlurmResolver builds a ClusterSpec from a Slurm allocation — the paper's
// contribution in Section III. Task slots are consumed in the allocation's
// block ("plane") order: the first job's tasks land on the first slots, and
// so on. GPUs on each node are divided between the node's co-located tasks
// (the CUDA_VISIBLE_DEVICES exposure the paper automates).
type SlurmResolver struct {
	// Jobs in slot order, e.g. ps:1 then worker:4.
	Jobs []JobSpec
	// PortBase numbers the listening ports; co-located tasks get consecutive
	// ports (default 8888).
	PortBase int
}

// Resolved is the resolver's answer for one process.
type Resolved struct {
	// Spec addresses every task of every job.
	Spec Spec
	// Job and Task identify the calling process (from SLURM_PROCID).
	Job  string
	Task int
	// Node is the host the process runs on.
	Node string
	// GPUs lists the device indices exposed to this process.
	GPUs []int
}

// Resolve consumes a Slurm environment (e.g. from slurm.Allocation.Env or
// the real process environment) and computes the cluster layout.
func (r *SlurmResolver) Resolve(env map[string]string) (*Resolved, error) {
	if len(r.Jobs) == 0 {
		return nil, fmt.Errorf("cluster: resolver needs at least one job")
	}
	alloc, self, err := slurm.ParseEnv(env)
	if err != nil {
		return nil, err
	}
	portBase := r.PortBase
	if portBase == 0 {
		portBase = 8888
	}
	total := 0
	for _, j := range r.Jobs {
		if j.Tasks <= 0 {
			return nil, fmt.Errorf("cluster: job %q needs a positive task count", j.Name)
		}
		total += j.Tasks
	}
	if total > alloc.NumTasks() {
		return nil, fmt.Errorf("cluster: jobs need %d tasks but the allocation has only %d (%d nodes × %d)",
			total, alloc.NumTasks(), len(alloc.Nodes), alloc.TasksPerNode)
	}

	placements := alloc.Distribute()
	spec := Spec{}
	out := &Resolved{Spec: spec, Job: "", Task: -1, Node: self.Node}
	slot := 0
	for _, j := range r.Jobs {
		for t := 0; t < j.Tasks; t++ {
			p := placements[slot]
			addr := fmt.Sprintf("%s:%d", p.Node, portBase+p.LocalID)
			spec[j.Name] = append(spec[j.Name], addr)
			if p.ProcID == self.ProcID {
				out.Job = j.Name
				out.Task = t
			}
			slot++
		}
	}
	if out.Task < 0 {
		return nil, fmt.Errorf("cluster: SLURM_PROCID %d has no job slot (only %d requested)", self.ProcID, total)
	}
	// GPU exposure: divide the node's GPUs evenly among its co-located
	// tasks, assigning each task a contiguous range by local id.
	if alloc.GPUsPerNode > 0 {
		per := alloc.GPUsPerNode / alloc.TasksPerNode
		if per == 0 {
			// More tasks than GPUs: tasks share by round-robin (memory
			// sharing must then be configured, as the paper notes).
			out.GPUs = []int{self.LocalID % alloc.GPUsPerNode}
		} else {
			for g := self.LocalID * per; g < (self.LocalID+1)*per; g++ {
				out.GPUs = append(out.GPUs, g)
			}
		}
	}
	return out, nil
}
