package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"tfhpc/internal/rpc"
)

// Elastic membership. The coordinator is the driver-side half of the
// Horovod-elastic protocol on our own engine: it probes task liveness,
// decides the current membership, and rebuilds collective groups over the
// survivors with a strictly increasing epoch. The transports do the other
// half — every tier fences traffic from older epochs with a typed
// StaleEpochError — so a zombie rank that missed its own eviction cannot
// corrupt the group that replaced it. Checkpoint-resume and data resharding
// live with the workload (apps/sgd); this type only answers "who is alive"
// and "rebuild the group around them".

// Coordinator tracks live tasks of one job and issues epoch-fenced group
// rebuilds. Safe for use from one driver goroutine; the epoch counter is
// internally locked so probes may run concurrently.
type Coordinator struct {
	peers *Peers
	job   string

	// ProbePolicy bounds each liveness probe (HealthRetry). The zero value
	// applies a short default suited to in-process restarts; CI-scale
	// process restarts want a longer Max.
	ProbePolicy rpc.RetryPolicy
	// ProbeTimeout caps one Probe call end to end.
	ProbeTimeout time.Duration

	mu    sync.Mutex
	epoch uint64
}

// NewCoordinator tracks the given job's tasks. The epoch sequence is seeded
// from the wall clock so a restarted driver still supersedes groups built by
// its predecessor.
func NewCoordinator(peers *Peers, job string) *Coordinator {
	return &Coordinator{
		peers:        peers,
		job:          job,
		ProbePolicy:  rpc.RetryPolicy{Attempts: 4, Base: 25 * time.Millisecond, Max: 250 * time.Millisecond},
		ProbeTimeout: 3 * time.Second,
		epoch:        uint64(time.Now().UnixNano()),
	}
}

// Epoch returns the last epoch issued by Init.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// nextEpoch returns a fresh epoch, strictly greater than every previous one
// and never behind the wall clock (so it also supersedes groups built by
// plain InitCollective, which stamps UnixNano directly).
func (c *Coordinator) nextEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := uint64(time.Now().UnixNano())
	if e <= c.epoch {
		e = c.epoch + 1
	}
	c.epoch = e
	return e
}

// Probe checks one task's liveness, retrying transient connection failures
// under ProbePolicy within ProbeTimeout. nil means the task answered.
func (c *Coordinator) Probe(task int) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.ProbeTimeout)
	defer cancel()
	return c.peers.HealthRetry(ctx, c.job, task, c.ProbePolicy)
}

// ProbeOnce checks one task's liveness with a single ping and no retries —
// the cheap form for "has the dead task come back yet" polling, where a
// refused connection is the expected answer, not a transient to ride out.
func (c *Coordinator) ProbeOnce(task int) error {
	return c.peers.Health(c.job, task)
}

// Survivors probes every listed task and returns the ones that answered, in
// the given order. The complement of the result is the casualty list.
func (c *Coordinator) Survivors(tasks []int) []int {
	alive := make([]int, 0, len(tasks))
	for _, t := range tasks {
		if c.Probe(t) == nil {
			alive = append(alive, t)
		}
	}
	return alive
}

// Init (re)builds the named collective group over the given tasks — the
// i-th becomes rank i — under a fresh epoch, which it returns. Stale
// incarnations on every member are superseded and fenced as a side effect
// of the epoch bump.
func (c *Coordinator) Init(group string, tasks []int, opts CollectiveOptions) (uint64, error) {
	if len(tasks) == 0 {
		return 0, fmt.Errorf("cluster: elastic init of %q with no live tasks", group)
	}
	epoch := c.nextEpoch()
	if err := c.peers.InitCollectiveTasks(c.job, group, tasks, opts, epoch); err != nil {
		return 0, err
	}
	return epoch, nil
}

// Abort poisons the named group on every reachable task, unblocking ranks
// stuck inside a collective whose peer died. Best-effort.
func (c *Coordinator) Abort(group string) {
	c.peers.AbortCollective(c.job, group)
}
