package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tfhpc/internal/tensor"
	"tfhpc/internal/vars"
)

func populated() *vars.Store {
	s := vars.NewStore()
	s.Get("x").Assign(tensor.FromF64(tensor.Shape{4}, []float64{1, 2, 3, 4}))
	s.Get("r").Assign(tensor.FromF64(tensor.Shape{2}, []float64{-1, -2}))
	s.Get("step_scale").Assign(tensor.ScalarF64(0.5))
	return s
}

func TestCaptureEncodeDecodeApply(t *testing.T) {
	src := populated()
	ck := Capture("cg:v1", 250, src)
	buf, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GraphID != "cg:v1" || got.Step != 250 {
		t.Fatalf("metadata: %q step %d", got.GraphID, got.Step)
	}
	if len(got.Vars) != 3 {
		t.Fatalf("vars count %d", len(got.Vars))
	}
	dst := vars.NewStore()
	if err := got.Apply(dst); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x", "r", "step_scale"} {
		a, _ := src.Get(name).Read()
		b, err := dst.Get(name).Read()
		if err != nil || !a.Equal(b) {
			t.Fatalf("variable %q not restored bit-exactly", name)
		}
	}
}

func TestSaveLoadRestoreFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	src := populated()
	if err := Capture("cg:v1", 100, src).Save(path); err != nil {
		t.Fatal(err)
	}
	dst := vars.NewStore()
	step, err := Restore(path, "cg:v1", dst)
	if err != nil {
		t.Fatal(err)
	}
	if step != 100 {
		t.Fatalf("step = %d", step)
	}
	got, _ := dst.Get("x").Read()
	if got.F64()[3] != 4 {
		t.Fatal("restore lost data")
	}
}

func TestRestoreGraphMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	Capture("fft:v2", 1, populated()).Save(path)
	if _, err := Restore(path, "cg:v1", vars.NewStore()); err == nil {
		t.Fatal("graph mismatch should error")
	}
	// Empty expected id skips the check.
	if _, err := Restore(path, "", vars.NewStore()); err != nil {
		t.Fatal(err)
	}
}

func TestRestartContinuesBitExact(t *testing.T) {
	// Simulate: run 3 accumulation steps, checkpoint, run 2 more; versus
	// restore from the checkpoint and run the same 2. States must agree.
	dir := t.TempDir()
	path := filepath.Join(dir, "ck")

	step := func(s *vars.Store) {
		v := s.Get("acc")
		cur, _ := v.Read()
		next, _ := cur.Reshape(cur.Shape()...)
		_ = next
		v.AssignAdd(tensor.FromF64(tensor.Shape{2}, []float64{0.1, 0.2}))
	}
	a := vars.NewStore()
	a.Get("acc").Assign(tensor.FromF64(tensor.Shape{2}, []float64{0, 0}))
	for i := 0; i < 3; i++ {
		step(a)
	}
	Capture("acc:v1", 3, a).Save(path)
	for i := 0; i < 2; i++ {
		step(a)
	}

	b := vars.NewStore()
	n, err := Restore(path, "acc:v1", b)
	if err != nil || n != 3 {
		t.Fatalf("restore: %v step %d", err, n)
	}
	for i := 0; i < 2; i++ {
		step(b)
	}
	av, _ := a.Get("acc").Read()
	bv, _ := b.Get("acc").Read()
	if !av.Equal(bv) {
		t.Fatal("restart diverged from continuous run")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte{0xFF, 0xFF, 0x01}); err == nil {
		t.Fatal("garbage should error")
	}
}

func TestDecodeCorruptTyped(t *testing.T) {
	buf, err := Capture("cg:v1", 7, populated()).Encode()
	if err != nil {
		t.Fatal(err)
	}

	// A single flipped payload bit must trip the CRC with the typed error.
	for _, pos := range []int{0, len(buf) / 2, len(buf) - 9} {
		bad := append([]byte(nil), buf...)
		bad[pos] ^= 0x40
		_, err := Decode(bad)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", pos, err)
		}
	}

	// Truncation anywhere — inside the payload or the trailer — is corrupt.
	for _, n := range []int{0, 3, 7, len(buf) - 1, len(buf) - 4, len(buf) / 2} {
		_, err := Decode(buf[:n])
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}

	// The intact encoding still decodes.
	if _, err := Decode(buf); err != nil {
		t.Fatalf("intact checkpoint: %v", err)
	}
}

func TestRestoreCorruptFileFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := Capture("cg:v1", 42, populated()).Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Restore(path, "cg:v1", vars.NewStore())
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("restore of corrupt file: err = %v, want ErrCorrupt", err)
	}
}

func TestSaveLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	for i := 0; i < 3; i++ {
		if err := Capture("cg:v1", int64(i), populated()).Save(path); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "model.ckpt" {
			t.Fatalf("stray file %q after save", e.Name())
		}
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("%d files in checkpoint dir, want 1", len(ents))
	}
}

func TestSaveRelativePath(t *testing.T) {
	// A bare filename (no directory component) must still save atomically.
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := Capture("cg:v1", 1, populated()).Save("bare.ckpt"); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore("bare.ckpt", "cg:v1", vars.NewStore()); err != nil {
		t.Fatal(err)
	}
}
