// Package checkpoint saves and restores variable state — the
// checkpoint-restart capability the paper highlights for its CG solver
// ("our distributed CG solver with checkpoint-restart capability only
// consists of less than 300 lines of code"). A checkpoint records the graph
// structure identification, a step counter, and every variable's tensor.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"tfhpc/internal/tensor"
	"tfhpc/internal/vars"
	"tfhpc/internal/wire"
)

// ErrCorrupt marks integrity failures: truncated files, missing trailers,
// CRC mismatches. Every such error wraps it, so callers distinguish "this
// checkpoint is damaged — fall back to an older one or fail the restore"
// from transient I/O errors with errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("checkpoint: corrupt")

// Trailer layout appended to every encoded checkpoint: CRC32-Castagnoli of
// the payload (4 bytes little-endian) followed by a magic tag. A crash
// mid-write leaves either no file (saves are temp+rename) or — if an
// external copy truncates — a payload whose trailer is missing or whose CRC
// disagrees; both fail loudly at Decode.
const trailerMagic = "TFCK"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checkpoint is an in-memory snapshot.
type Checkpoint struct {
	// GraphID identifies the producing graph (e.g. a name + node count) so
	// restores onto mismatched programs fail loudly.
	GraphID string
	// Step is the application-defined resume point (e.g. CG iteration).
	Step int64
	// Vars maps variable names to their values.
	Vars map[string]*tensor.Tensor
}

// Capture snapshots a variable store.
func Capture(graphID string, step int64, store *vars.Store) *Checkpoint {
	return &Checkpoint{GraphID: graphID, Step: step, Vars: store.Snapshot()}
}

// Apply restores the snapshot into a store.
func (c *Checkpoint) Apply(store *vars.Store) error {
	return store.Restore(c.Vars)
}

// Encode serializes the checkpoint:
//
//	field 1: graph id (string)
//	field 2: step (varint)
//	field 3: repeated entry { 1: name, 2: tensor bytes }
//
// followed by the integrity trailer (payload CRC32C + magic).
func (c *Checkpoint) Encode() ([]byte, error) {
	e := wire.NewEncoder()
	e.String(1, c.GraphID)
	e.Uint(2, uint64(c.Step))
	// Deterministic order for reproducible files.
	names := make([]string, 0, len(c.Vars))
	for n := range c.Vars {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		buf, err := c.Vars[name].Encode(nil)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: variable %q: %w", name, err)
		}
		e.Message(3, func(ve *wire.Encoder) {
			ve.String(1, name)
			ve.BytesField(2, buf)
		})
	}
	payload := e.Bytes()
	out := make([]byte, len(payload), len(payload)+8)
	copy(out, payload)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, trailerMagic...), nil
}

// Decode verifies the integrity trailer and parses the payload. Trailer
// failures wrap ErrCorrupt.
func Decode(buf []byte) (*Checkpoint, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the trailer", ErrCorrupt, len(buf))
	}
	if string(buf[len(buf)-4:]) != trailerMagic {
		return nil, fmt.Errorf("%w: missing %q trailer (truncated or not a checkpoint)", ErrCorrupt, trailerMagic)
	}
	payload := buf[:len(buf)-8]
	want := binary.LittleEndian.Uint32(buf[len(buf)-8:])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (file %08x, payload %08x)", ErrCorrupt, want, got)
	}
	buf = payload
	c := &Checkpoint{Vars: make(map[string]*tensor.Tensor)}
	d := wire.NewDecoder(buf)
	for {
		field, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch field {
		case 1:
			if c.GraphID, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 2:
			v, err := d.Uint()
			if err != nil {
				return nil, err
			}
			c.Step = int64(v)
		case 3:
			eb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			ed := wire.NewDecoder(eb)
			var name string
			var t *tensor.Tensor
			for {
				f, w, err := ed.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, err
				}
				switch f {
				case 1:
					if name, err = ed.StringVal(); err != nil {
						return nil, err
					}
				case 2:
					tb, err := ed.Bytes()
					if err != nil {
						return nil, err
					}
					if t, _, err = tensor.Decode(tb); err != nil {
						return nil, err
					}
				default:
					if err := ed.Skip(w); err != nil {
						return nil, err
					}
				}
			}
			if name == "" || t == nil {
				return nil, fmt.Errorf("checkpoint: malformed variable entry")
			}
			c.Vars[name] = t
		default:
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// Save writes the checkpoint to path atomically: encode, write to a fresh
// temp file in the same directory, fsync, rename. A crash at any point
// leaves either the previous checkpoint or the new one — never a partial
// file under the final name.
func (c *Checkpoint) Save(path string) error {
	buf, err := c.Encode()
	if err != nil {
		return err
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(buf)
	serr := f.Sync()
	cerr := f.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads a checkpoint from path.
func Load(path string) (*Checkpoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}

// Restore loads path and applies it to the store after verifying GraphID.
func Restore(path, graphID string, store *vars.Store) (step int64, err error) {
	c, err := Load(path)
	if err != nil {
		return 0, err
	}
	if graphID != "" && c.GraphID != graphID {
		return 0, fmt.Errorf("checkpoint: graph mismatch: file has %q, want %q", c.GraphID, graphID)
	}
	if err := c.Apply(store); err != nil {
		return 0, err
	}
	return c.Step, nil
}
