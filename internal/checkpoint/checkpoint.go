// Package checkpoint saves and restores variable state — the
// checkpoint-restart capability the paper highlights for its CG solver
// ("our distributed CG solver with checkpoint-restart capability only
// consists of less than 300 lines of code"). A checkpoint records the graph
// structure identification, a step counter, and every variable's tensor.
package checkpoint

import (
	"fmt"
	"io"
	"os"

	"tfhpc/internal/tensor"
	"tfhpc/internal/vars"
	"tfhpc/internal/wire"
)

// Checkpoint is an in-memory snapshot.
type Checkpoint struct {
	// GraphID identifies the producing graph (e.g. a name + node count) so
	// restores onto mismatched programs fail loudly.
	GraphID string
	// Step is the application-defined resume point (e.g. CG iteration).
	Step int64
	// Vars maps variable names to their values.
	Vars map[string]*tensor.Tensor
}

// Capture snapshots a variable store.
func Capture(graphID string, step int64, store *vars.Store) *Checkpoint {
	return &Checkpoint{GraphID: graphID, Step: step, Vars: store.Snapshot()}
}

// Apply restores the snapshot into a store.
func (c *Checkpoint) Apply(store *vars.Store) error {
	return store.Restore(c.Vars)
}

// Encode serializes the checkpoint:
//
//	field 1: graph id (string)
//	field 2: step (varint)
//	field 3: repeated entry { 1: name, 2: tensor bytes }
func (c *Checkpoint) Encode() ([]byte, error) {
	e := wire.NewEncoder()
	e.String(1, c.GraphID)
	e.Uint(2, uint64(c.Step))
	// Deterministic order for reproducible files.
	names := make([]string, 0, len(c.Vars))
	for n := range c.Vars {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		buf, err := c.Vars[name].Encode(nil)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: variable %q: %w", name, err)
		}
		e.Message(3, func(ve *wire.Encoder) {
			ve.String(1, name)
			ve.BytesField(2, buf)
		})
	}
	return e.Bytes(), nil
}

// Decode parses an encoded checkpoint.
func Decode(buf []byte) (*Checkpoint, error) {
	c := &Checkpoint{Vars: make(map[string]*tensor.Tensor)}
	d := wire.NewDecoder(buf)
	for {
		field, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch field {
		case 1:
			if c.GraphID, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 2:
			v, err := d.Uint()
			if err != nil {
				return nil, err
			}
			c.Step = int64(v)
		case 3:
			eb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			ed := wire.NewDecoder(eb)
			var name string
			var t *tensor.Tensor
			for {
				f, w, err := ed.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, err
				}
				switch f {
				case 1:
					if name, err = ed.StringVal(); err != nil {
						return nil, err
					}
				case 2:
					tb, err := ed.Bytes()
					if err != nil {
						return nil, err
					}
					if t, _, err = tensor.Decode(tb); err != nil {
						return nil, err
					}
				default:
					if err := ed.Skip(w); err != nil {
						return nil, err
					}
				}
			}
			if name == "" || t == nil {
				return nil, fmt.Errorf("checkpoint: malformed variable entry")
			}
			c.Vars[name] = t
		default:
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// Save writes the checkpoint to path atomically (temp file + rename).
func (c *Checkpoint) Save(path string) error {
	buf, err := c.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a checkpoint from path.
func Load(path string) (*Checkpoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}

// Restore loads path and applies it to the store after verifying GraphID.
func Restore(path, graphID string, store *vars.Store) (step int64, err error) {
	c, err := Load(path)
	if err != nil {
		return 0, err
	}
	if graphID != "" && c.GraphID != graphID {
		return 0, fmt.Errorf("checkpoint: graph mismatch: file has %q, want %q", c.GraphID, graphID)
	}
	if err := c.Apply(store); err != nil {
		return 0, err
	}
	return c.Step, nil
}
