package core

import (
	"fmt"
	"os"
	"path/filepath"

	"tfhpc/internal/npy"
	"tfhpc/internal/tensor"
)

// TileStore manages the .npy tile files of one square matrix, named
// Tile_<prefix>_<i>_<j>.npy as in Fig. 4 of the paper.
type TileStore struct {
	Dir         string
	Prefix      string
	N           int // full matrix dimension
	Tile        int // tile dimension
	TilesPerDim int
}

// SaveMatrixTiles splits an N×N matrix into tile×tile blocks and writes one
// .npy file per block (the paper's pre-processing step).
func SaveMatrixTiles(dir, prefix string, mat *tensor.Tensor, tile int) (*TileStore, error) {
	if mat.Rank() != 2 || mat.Shape()[0] != mat.Shape()[1] {
		return nil, fmt.Errorf("core: need a square matrix, got %v", mat.Shape())
	}
	n := mat.Shape()[0]
	if tile <= 0 || n%tile != 0 {
		return nil, fmt.Errorf("core: tile %d must divide matrix dimension %d", tile, n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ts := &TileStore{Dir: dir, Prefix: prefix, N: n, Tile: tile, TilesPerDim: n / tile}
	for ti := 0; ti < ts.TilesPerDim; ti++ {
		for tj := 0; tj < ts.TilesPerDim; tj++ {
			block := tensor.New(mat.DType(), tile, tile)
			switch mat.DType() {
			case tensor.Float32:
				src, dst := mat.F32(), block.F32()
				for r := 0; r < tile; r++ {
					copy(dst[r*tile:(r+1)*tile], src[(ti*tile+r)*n+tj*tile:(ti*tile+r)*n+tj*tile+tile])
				}
			case tensor.Float64:
				src, dst := mat.F64(), block.F64()
				for r := 0; r < tile; r++ {
					copy(dst[r*tile:(r+1)*tile], src[(ti*tile+r)*n+tj*tile:(ti*tile+r)*n+tj*tile+tile])
				}
			default:
				return nil, fmt.Errorf("core: unsupported tile dtype %v", mat.DType())
			}
			if err := npy.Save(ts.Path(ti, tj), block); err != nil {
				return nil, err
			}
		}
	}
	return ts, nil
}

// Path returns the file name of tile (i, j).
func (ts *TileStore) Path(i, j int) string {
	return filepath.Join(ts.Dir, fmt.Sprintf("Tile_%s_%d_%d.npy", ts.Prefix, i, j))
}

// LoadTile reads tile (i, j) back from disk.
func (ts *TileStore) LoadTile(i, j int) (*tensor.Tensor, error) {
	if i < 0 || i >= ts.TilesPerDim || j < 0 || j >= ts.TilesPerDim {
		return nil, fmt.Errorf("core: tile (%d,%d) out of %d per dim", i, j, ts.TilesPerDim)
	}
	return npy.Load(ts.Path(i, j))
}

// Assemble reconstructs the full matrix from tiles (test/verification aid).
func (ts *TileStore) Assemble(dt tensor.DType) (*tensor.Tensor, error) {
	out := tensor.New(dt, ts.N, ts.N)
	for ti := 0; ti < ts.TilesPerDim; ti++ {
		for tj := 0; tj < ts.TilesPerDim; tj++ {
			block, err := ts.LoadTile(ti, tj)
			if err != nil {
				return nil, err
			}
			switch dt {
			case tensor.Float32:
				src, dst := block.F32(), out.F32()
				for r := 0; r < ts.Tile; r++ {
					copy(dst[(ti*ts.Tile+r)*ts.N+tj*ts.Tile:(ti*ts.Tile+r)*ts.N+tj*ts.Tile+ts.Tile],
						src[r*ts.Tile:(r+1)*ts.Tile])
				}
			case tensor.Float64:
				src, dst := block.F64(), out.F64()
				for r := 0; r < ts.Tile; r++ {
					copy(dst[(ti*ts.Tile+r)*ts.N+tj*ts.Tile:(ti*ts.Tile+r)*ts.N+tj*ts.Tile+ts.Tile],
						src[r*ts.Tile:(r+1)*ts.Tile])
				}
			default:
				return nil, fmt.Errorf("core: unsupported dtype %v", dt)
			}
		}
	}
	return out, nil
}

// SaveInterleavedTiles splits a length-N complex vector into `tiles`
// interleaved chunks (chunk t holds elements t, t+tiles, t+2·tiles, ...) and
// writes each as a .npy file — the FFT application's decimation-in-time
// layout (Fig. 6).
func SaveInterleavedTiles(dir, prefix string, vec []complex128, tiles int) ([]string, error) {
	n := len(vec)
	if tiles <= 0 || n%tiles != 0 {
		return nil, fmt.Errorf("core: %d tiles must divide vector length %d", tiles, n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	chunk := n / tiles
	paths := make([]string, tiles)
	for t := 0; t < tiles; t++ {
		data := make([]complex128, chunk)
		for i := 0; i < chunk; i++ {
			data[i] = vec[t+i*tiles]
		}
		paths[t] = filepath.Join(dir, fmt.Sprintf("Tile_%s_%d.npy", prefix, t))
		if err := npy.Save(paths[t], tensor.FromC128(tensor.Shape{chunk}, data)); err != nil {
			return nil, err
		}
	}
	return paths, nil
}
