package core

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"tfhpc/internal/tensor"
)

// runRing executes a full collective across p goroutine workers.
func runRing(t *testing.T, p, n int, seedBase uint64) ([][]float64, []float64) {
	t.Helper()
	ring := NewRingAllReduce(p)
	defer ring.Close()
	inputs := make([][]float64, p)
	want := make([]float64, n)
	for w := 0; w < p; w++ {
		r := tensor.NewRNG(seedBase + uint64(w))
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = r.Float64()*2 - 1
			want[i] += vec[i]
		}
		inputs[w] = vec
	}
	outs := make([][]float64, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := tensor.FromF64(tensor.Shape{n}, append([]float64(nil), inputs[w]...))
			out, err := ring.Reduce(w, in)
			if err != nil {
				t.Errorf("rank %d: %v", w, err)
				return
			}
			outs[w] = out.F64()
		}(w)
	}
	wg.Wait()
	return outs, want
}

func TestRingAllReduceSums(t *testing.T) {
	for _, tc := range []struct{ p, n int }{
		{1, 5}, {2, 8}, {3, 7}, {4, 16}, {5, 23}, {8, 64},
	} {
		outs, want := runRing(t, tc.p, tc.n, 100)
		for w, got := range outs {
			if got == nil {
				t.Fatalf("p=%d n=%d: rank %d produced nothing", tc.p, tc.n, w)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12*float64(tc.p) {
					t.Fatalf("p=%d n=%d rank=%d elem=%d: %v != %v",
						tc.p, tc.n, w, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRingAllReduceDoesNotMutateInput(t *testing.T) {
	ring := NewRingAllReduce(2)
	defer ring.Close()
	a := tensor.FromF64(tensor.Shape{4}, []float64{1, 2, 3, 4})
	b := tensor.FromF64(tensor.Shape{4}, []float64{10, 20, 30, 40})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ring.Reduce(0, a) }()
	go func() { defer wg.Done(); ring.Reduce(1, b) }()
	wg.Wait()
	if a.F64()[0] != 1 || b.F64()[3] != 40 {
		t.Fatal("inputs were mutated")
	}
}

func TestRingAllReduceValidation(t *testing.T) {
	ring := NewRingAllReduce(2)
	defer ring.Close()
	if _, err := ring.Reduce(5, tensor.FromF64(tensor.Shape{2}, []float64{1, 2})); err == nil {
		t.Fatal("bad rank should error")
	}
	if _, err := ring.Reduce(0, tensor.FromF32(tensor.Shape{2}, []float32{1, 2})); err == nil {
		t.Fatal("wrong dtype should error")
	}
}

func TestRingAllReduceMultipleRounds(t *testing.T) {
	const p, n, rounds = 3, 12, 5
	ring := NewRingAllReduce(p)
	defer ring.Close()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				in := tensor.FromF64(tensor.Shape{n}, make([]float64, n))
				for i := range in.F64() {
					in.F64()[i] = float64(w + round)
				}
				out, err := ring.Reduce(w, in)
				if err != nil {
					t.Errorf("rank %d round %d: %v", w, round, err)
					return
				}
				// Sum over w of (w+round) = 0+1+2 + 3*round.
				want := float64(3 + 3*round)
				if out.F64()[0] != want {
					t.Errorf("rank %d round %d: got %v want %v", w, round, out.F64()[0], want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestChunkBoundsPartition(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw%8) + 1
		covered := 0
		prevHi := 0
		for c := 0; c < p; c++ {
			lo, hi := chunkBounds(n, p, c)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The ring must agree with the two-queue Reducer on the same inputs — the
// ablation of centralised vs decentralised reduction.
func TestRingMatchesCentralReducer(t *testing.T) {
	const p, n = 4, 10
	outsRing, _ := runRing(t, p, n, 7)

	red := NewReducer(p, nil)
	defer red.Close()
	var wg sync.WaitGroup
	outsCentral := make([][]float64, p)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := tensor.NewRNG(7 + uint64(w))
			vec := make([]float64, n)
			for i := range vec {
				vec[i] = r.Float64()*2 - 1
			}
			out, err := red.Reduce(w, tensor.FromF64(tensor.Shape{n}, vec))
			if err != nil {
				t.Error(err)
				return
			}
			outsCentral[w] = out.F64()
		}(w)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if math.Abs(outsRing[0][i]-outsCentral[0][i]) > 1e-12 {
			t.Fatalf("ring and central reducer disagree at %d: %v vs %v",
				i, outsRing[0][i], outsCentral[0][i])
		}
	}
}
