// Package core is the data-driven HPC programming layer — the paper's
// primary contribution, factored out of its four applications: queue-based
// reduction services (Fig. 5), tiled-matrix stores streamed from .npy files
// (Fig. 4), virtual-platform placements that realise Table I, and the
// strong-scaling result bookkeeping every experiment shares.
package core

import (
	"fmt"

	"tfhpc/internal/hw"
	"tfhpc/internal/ops"
	"tfhpc/internal/queue"
	"tfhpc/internal/tensor"
)

// Reducer is the paper's two-queue data-driven reduction service (Fig. 5):
// workers push partial values into the incoming queue and block on an
// outgoing queue; the reducer combines one value per worker per round and
// publishes one copy of the result per worker. It generalises the
// token-queue pattern of TensorFlow's SyncReplicasOptimizer.
//
// Unlike the figure's single outgoing queue, each worker dequeues from its
// own outgoing lane: with one shared queue a fast worker could consume a
// slower worker's copy as its own next-round value, corrupting rounds and
// deadlocking the service (workers may race one full round ahead, so
// partials must also be matched to rounds by worker identity).
type Reducer struct {
	workers int
	in      *queue.FIFO
	out     []*queue.FIFO
	combine func(a, b *tensor.Tensor) (*tensor.Tensor, error)
	done    chan error
}

// SumCombiner adds two partials (any numeric dtype the Add kernel accepts).
func SumCombiner(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	return ops.Run("Add", &ops.Context{NodeName: "reduce"}, []*tensor.Tensor{a, b})
}

// NewReducer starts the reduction service for the given worker count. It
// serves rounds until Close is called: each round consumes exactly one
// partial from every worker and emits one copy of the combined value per
// worker.
func NewReducer(workers int, combine func(a, b *tensor.Tensor) (*tensor.Tensor, error)) *Reducer {
	if workers <= 0 {
		panic("core: reducer needs at least one worker")
	}
	if combine == nil {
		combine = SumCombiner
	}
	r := &Reducer{
		workers: workers,
		in:      queue.New(0),
		out:     make([]*queue.FIFO, workers),
		combine: combine,
		done:    make(chan error, 1),
	}
	for w := range r.out {
		r.out[w] = queue.New(0)
	}
	go r.serve()
	return r
}

func (r *Reducer) serve() {
	closeAll := func() {
		for _, q := range r.out {
			q.Close()
		}
	}
	// Workers may run up to one round ahead; buffer early partials per
	// worker so every round combines exactly one value from each.
	pending := make([][]*tensor.Tensor, r.workers)
	for {
		var result *tensor.Tensor
		contributed := make([]bool, r.workers)
		have := 0
		for have < r.workers {
			progressed := false
			for w := 0; w < r.workers; w++ {
				if contributed[w] || len(pending[w]) == 0 {
					continue
				}
				v := pending[w][0]
				pending[w] = pending[w][1:]
				contributed[w] = true
				if result == nil {
					result = v
				} else {
					var err error
					if result, err = r.combine(result, v); err != nil {
						r.done <- err
						closeAll()
						return
					}
				}
				have++
				progressed = true
			}
			if have >= r.workers {
				break
			}
			if !progressed {
				item, err := r.in.Dequeue()
				if err == queue.ErrClosed && have == 0 {
					closeAll()
					r.done <- nil
					return
				}
				if err != nil {
					r.done <- fmt.Errorf("core: reducer lost workers mid-round: %w", err)
					closeAll()
					return
				}
				w := int(item[0].ScalarInt())
				if w < 0 || w >= r.workers {
					r.done <- fmt.Errorf("core: reducer got partial from unknown worker %d", w)
					closeAll()
					return
				}
				pending[w] = append(pending[w], item[1])
			}
		}
		for w := 0; w < r.workers; w++ {
			if err := r.out[w].Enqueue(queue.Item{result}); err != nil {
				r.done <- err
				return
			}
		}
	}
}

// Reduce is worker w's call: push a partial, wait for the round's combined
// value.
func (r *Reducer) Reduce(w int, partial *tensor.Tensor) (*tensor.Tensor, error) {
	if w < 0 || w >= r.workers {
		return nil, fmt.Errorf("core: worker %d out of %d", w, r.workers)
	}
	if err := r.in.Enqueue(queue.Item{tensor.ScalarI64(int64(w)), partial}); err != nil {
		return nil, err
	}
	item, err := r.out[w].Dequeue()
	if err != nil {
		return nil, err
	}
	return item[0], nil
}

// Close shuts the service down after the current round and waits for the
// serving goroutine to exit.
func (r *Reducer) Close() error {
	r.in.Close()
	return <-r.done
}

// Placement realises Table I on the virtual platform: it assigns gpus GPU
// engines to TensorFlow instances packed onto as few nodes as the node
// type's InstancesPerNode allows, and records which node and NUMA island
// each instance lands on (Fig. 9 topology effects follow from this).
type Placement struct {
	Cluster  *hw.Cluster
	NodeType *hw.NodeType
	// Instance i runs on Node[i] using GPU engine EngineOf[i] of that node,
	// which sits on NUMA island IslandOf[i].
	Node     []int
	EngineOf []int
	IslandOf []int
	NumNodes int
}

// NewPlacement packs `instances` TensorFlow instances (one GPU engine each)
// onto nodes of the given type.
func NewPlacement(c *hw.Cluster, nt *hw.NodeType, instances int) (*Placement, error) {
	if instances <= 0 {
		return nil, fmt.Errorf("core: need a positive instance count")
	}
	per := nt.InstancesPerNode
	p := &Placement{Cluster: c, NodeType: nt}
	for i := 0; i < instances; i++ {
		node := i / per
		local := i % per
		engine := local % nt.GPUEngines
		p.Node = append(p.Node, node)
		p.EngineOf = append(p.EngineOf, engine)
		p.IslandOf = append(p.IslandOf, nt.GPUIslandOf[engine])
	}
	p.NumNodes = (instances + per - 1) / per
	return p, nil
}

// Gflops converts (flops, seconds) to the Gflop/s the paper reports.
func Gflops(flops float64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return flops / seconds / 1e9
}

// MatMulFlops is the paper's estimate for an N×N matmul: 2N³ − N².
func MatMulFlops(n int) float64 {
	fn := float64(n)
	return 2*fn*fn*fn - fn*fn
}

// CGFlops is the paper's estimate for the CG solver: iters × 2 × N².
func CGFlops(n, iters int) float64 {
	fn := float64(n)
	return float64(iters) * 2 * fn * fn
}

// FFTFlops is the paper's estimate for an N-point FFT: 5 N log₂ N.
func FFTFlops(n int) float64 {
	fn := float64(n)
	log2 := 0.0
	for v := n; v > 1; v >>= 1 {
		log2++
	}
	return 5 * fn * log2
}

// ScalingPoint is one (GPUs, Gflop/s) measurement of a strong-scaling curve.
type ScalingPoint struct {
	GPUs   int
	Gflops float64
}

// Speedup returns the ratio between consecutive scaling points, e.g. the
// paper's "2× from two to four GPUs".
func Speedup(points []ScalingPoint, fromGPUs, toGPUs int) (float64, error) {
	var from, to float64
	for _, p := range points {
		if p.GPUs == fromGPUs {
			from = p.Gflops
		}
		if p.GPUs == toGPUs {
			to = p.Gflops
		}
	}
	if from == 0 || to == 0 {
		return 0, fmt.Errorf("core: missing scaling points %d->%d", fromGPUs, toGPUs)
	}
	return to / from, nil
}
