package core

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"tfhpc/internal/hw"
	"tfhpc/internal/npy"
	"tfhpc/internal/tensor"
)

func TestReducerSumsScalarsAcrossWorkers(t *testing.T) {
	const workers = 4
	r := NewReducer(workers, nil)
	var wg sync.WaitGroup
	results := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got, err := r.Reduce(w, tensor.ScalarF64(float64(w+1)))
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			results[w] = got.ScalarFloat()
		}(w)
	}
	wg.Wait()
	for w, v := range results {
		if v != 10 { // 1+2+3+4
			t.Fatalf("worker %d got %v, want 10", w, v)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReducerMultipleRounds(t *testing.T) {
	const workers, rounds = 3, 10
	r := NewReducer(workers, nil)
	defer r.Close()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				got, err := r.Reduce(w, tensor.ScalarF64(1))
				if err != nil {
					t.Errorf("round %d: %v", round, err)
					return
				}
				if got.ScalarFloat() != workers {
					t.Errorf("round %d: got %v", round, got.ScalarFloat())
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestReducerVectorCombine(t *testing.T) {
	r := NewReducer(2, nil)
	defer r.Close()
	var wg sync.WaitGroup
	var got *tensor.Tensor
	wg.Add(2)
	go func() {
		defer wg.Done()
		got, _ = r.Reduce(0, tensor.FromF64(tensor.Shape{2}, []float64{1, 2}))
	}()
	go func() {
		defer wg.Done()
		r.Reduce(1, tensor.FromF64(tensor.Shape{2}, []float64{10, 20}))
	}()
	wg.Wait()
	if got.F64()[0] != 11 || got.F64()[1] != 22 {
		t.Fatalf("vector reduce = %v", got.F64())
	}
}

func TestReducerCustomCombiner(t *testing.T) {
	maxCombine := func(a, b *tensor.Tensor) (*tensor.Tensor, error) {
		if a.ScalarFloat() >= b.ScalarFloat() {
			return a, nil
		}
		return b, nil
	}
	r := NewReducer(2, maxCombine)
	defer r.Close()
	var wg sync.WaitGroup
	vals := make([]float64, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got, _ := r.Reduce(w, tensor.ScalarF64(float64((w+1)*7)))
			vals[w] = got.ScalarFloat()
		}(w)
	}
	wg.Wait()
	if vals[0] != 14 || vals[1] != 14 {
		t.Fatalf("max reduce = %v", vals)
	}
}

func TestPlacementTableI(t *testing.T) {
	cases := []struct {
		cluster   *hw.Cluster
		node      string
		gpus      int
		wantNodes int
	}{
		{hw.Tegner, "k420", 4, 4},     // 1 instance/node
		{hw.Tegner, "k80", 4, 2},      // 2 instances/node
		{hw.Kebnekaise, "k80", 16, 4}, // 4 instances/node
		{hw.Kebnekaise, "v100", 8, 4}, // 2 instances/node
	}
	for _, c := range cases {
		p, err := NewPlacement(c.cluster, c.cluster.NodeTypes[c.node], c.gpus)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumNodes != c.wantNodes {
			t.Errorf("%s/%s %d GPUs -> %d nodes, want %d",
				c.cluster.Name, c.node, c.gpus, p.NumNodes, c.wantNodes)
		}
	}
	// Kebnekaise K80: instances 0,1 on island 0; 2,3 on island 1 (Fig. 9).
	p, _ := NewPlacement(hw.Kebnekaise, hw.Kebnekaise.NodeTypes["k80"], 4)
	want := []int{0, 0, 1, 1}
	for i, isle := range p.IslandOf {
		if isle != want[i] {
			t.Fatalf("instance %d on island %d, want %d", i, isle, want[i])
		}
	}
	if _, err := NewPlacement(hw.Tegner, hw.Tegner.NodeTypes["k420"], 0); err == nil {
		t.Fatal("zero instances should error")
	}
}

func TestFlopFormulas(t *testing.T) {
	if got := MatMulFlops(4); got != 2*64-16 {
		t.Fatalf("MatMulFlops(4) = %v", got)
	}
	if got := CGFlops(100, 500); got != 500*2*100*100 {
		t.Fatalf("CGFlops = %v", got)
	}
	if got := FFTFlops(8); got != 5*8*3 {
		t.Fatalf("FFTFlops(8) = %v", got)
	}
	if Gflops(2e9, 2) != 1 {
		t.Fatal("Gflops wrong")
	}
	if Gflops(1, 0) != 0 {
		t.Fatal("Gflops zero-time guard")
	}
}

func TestSpeedup(t *testing.T) {
	pts := []ScalingPoint{{2, 100}, {4, 180}, {8, 300}}
	s, err := Speedup(pts, 2, 4)
	if err != nil || math.Abs(s-1.8) > 1e-12 {
		t.Fatalf("speedup = %v, %v", s, err)
	}
	if _, err := Speedup(pts, 2, 16); err == nil {
		t.Fatal("missing point should error")
	}
}

func TestTileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n, tile := 16, 4
	mat := tensor.RandomUniform(tensor.Float32, 5, n, n)
	ts, err := SaveMatrixTiles(dir, "A", mat, tile)
	if err != nil {
		t.Fatal(err)
	}
	if ts.TilesPerDim != 4 {
		t.Fatalf("tiles per dim %d", ts.TilesPerDim)
	}
	back, err := ts.Assemble(tensor.Float32)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(mat) {
		t.Fatal("assemble(tiles) != original")
	}
	// Spot-check one tile's content.
	blk, err := ts.LoadTile(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if blk.F32()[0] != mat.F32()[(1*tile)*n+2*tile] {
		t.Fatal("tile origin wrong")
	}
	if _, err := ts.LoadTile(9, 0); err == nil {
		t.Fatal("out-of-range tile should error")
	}
	if _, err := SaveMatrixTiles(dir, "B", mat, 5); err == nil {
		t.Fatal("non-dividing tile should error")
	}
	if filepath.Base(ts.Path(1, 2)) != "Tile_A_1_2.npy" {
		t.Fatalf("tile name %q", ts.Path(1, 2))
	}
}

func TestInterleavedTilesLayout(t *testing.T) {
	dir := t.TempDir()
	n, tiles := 16, 4
	vec := make([]complex128, n)
	for i := range vec {
		vec[i] = complex(float64(i), 0)
	}
	paths, err := SaveInterleavedTiles(dir, "x", vec, tiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != tiles {
		t.Fatalf("paths %d", len(paths))
	}
	// Tile t must hold elements t, t+4, t+8, t+12.
	for tIdx, p := range paths {
		tt, err := loadC128(p)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range tt {
			want := complex(float64(tIdx+i*tiles), 0)
			if v != want {
				t.Fatalf("tile %d[%d] = %v, want %v", tIdx, i, v, want)
			}
		}
	}
	if _, err := SaveInterleavedTiles(dir, "y", vec, 5); err == nil {
		t.Fatal("non-dividing tile count should error")
	}
}

func loadC128(path string) ([]complex128, error) {
	t, err := npy.Load(path)
	if err != nil {
		return nil, err
	}
	return t.C128(), nil
}
