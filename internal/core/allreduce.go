package core

import (
	"fmt"

	"tfhpc/internal/queue"
	"tfhpc/internal/tensor"
)

// RingAllReduce is the extension Section VIII of the paper points to: the
// MPI-style allreduce of Uber's Horovod and Cray's ML plugin, which removes
// the dedicated parameter-server/reducer tasks that "hamper the scalability
// of large scale deployment". Workers form a ring; each of the 2(p−1) steps
// moves one chunk to the right neighbour, first reduce-scattering and then
// allgathering, so every worker ends with the full sum and no central task
// ever sees all the data.
//
// The implementation is pure dataflow: the ring's edges are FIFO queues,
// matching the paper's queue-based formulation of collective operations.
type RingAllReduce struct {
	workers int
	links   []*queue.FIFO // links[i]: worker i -> worker (i+1) mod p
}

// NewRingAllReduce wires a ring of p workers.
func NewRingAllReduce(p int) *RingAllReduce {
	if p <= 0 {
		panic("core: ring needs at least one worker")
	}
	links := make([]*queue.FIFO, p)
	for i := range links {
		links[i] = queue.New(2)
	}
	return &RingAllReduce{workers: p, links: links}
}

// Workers returns the ring size.
func (r *RingAllReduce) Workers() int { return r.workers }

// Close shuts down the ring's links.
func (r *RingAllReduce) Close() {
	for _, l := range r.links {
		l.Close()
	}
}

// chunkBounds splits n elements into p contiguous chunks.
func chunkBounds(n, p, c int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = c*base + min(c, rem)
	size := base
	if c < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Reduce runs the collective for worker `rank` with its float64 vector
// contribution; every worker must call it concurrently with equal-length
// vectors. The input is not mutated; the summed vector is returned.
func (r *RingAllReduce) Reduce(rank int, in *tensor.Tensor) (*tensor.Tensor, error) {
	if rank < 0 || rank >= r.workers {
		return nil, fmt.Errorf("core: rank %d out of %d", rank, r.workers)
	}
	if in.DType() != tensor.Float64 || in.Rank() != 1 {
		return nil, fmt.Errorf("core: ring allreduce wants rank-1 float64, got %v%v", in.DType(), in.Shape())
	}
	p := r.workers
	acc := in.Clone()
	if p == 1 {
		return acc, nil
	}
	n := acc.NumElements()
	data := acc.F64()
	send := r.links[rank]
	recv := r.links[(rank-1+p)%p]

	sendChunk := func(c int) error {
		lo, hi := chunkBounds(n, p, c)
		payload := tensor.FromF64(tensor.Shape{hi - lo}, append([]float64(nil), data[lo:hi]...))
		return send.Enqueue(queue.Item{tensor.ScalarI64(int64(c)), payload})
	}
	recvChunk := func(wantC int) ([]float64, error) {
		item, err := recv.Dequeue()
		if err != nil {
			return nil, err
		}
		if got := int(item[0].ScalarInt()); got != wantC {
			return nil, fmt.Errorf("core: ring protocol error: got chunk %d, want %d", got, wantC)
		}
		return item[1].F64(), nil
	}

	// Reduce-scatter: after p-1 steps, worker `rank` holds the full sum of
	// chunk (rank+1) mod p.
	for step := 0; step < p-1; step++ {
		sc := (rank - step + p) % p
		rc := (rank - step - 1 + p) % p
		if err := sendChunk(sc); err != nil {
			return nil, err
		}
		chunk, err := recvChunk(rc)
		if err != nil {
			return nil, err
		}
		lo, _ := chunkBounds(n, p, rc)
		for i, v := range chunk {
			data[lo+i] += v
		}
	}
	// Allgather: circulate the completed chunks.
	for step := 0; step < p-1; step++ {
		sc := (rank + 1 - step + p) % p
		rc := (rank - step + p) % p
		if err := sendChunk(sc); err != nil {
			return nil, err
		}
		chunk, err := recvChunk(rc)
		if err != nil {
			return nil, err
		}
		lo, _ := chunkBounds(n, p, rc)
		copy(data[lo:lo+len(chunk)], chunk)
	}
	return acc, nil
}
