// Package eager provides imperative op execution — the "eager mode" the
// paper notes "will likely become the default execution mode in future
// releases of TensorFlow". Operations run immediately against a private
// resource context, with no graph or session, which is convenient for
// interactive exploration and for writing the host-side fringes of an
// application (the role Python/Numpy plays in the paper's FFT merger).
package eager

import (
	"fmt"

	"tfhpc/internal/ops"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// Context owns the state (variables, queues) eager ops touch.
type Context struct {
	res *session.Resources
	seq int
}

// NewContext returns an empty eager context.
func NewContext() *Context {
	return &Context{res: session.NewResources()}
}

// Resources exposes the backing state (shared with sessions if desired).
func (c *Context) Resources() *session.Resources { return c.res }

// Exec runs one op immediately and returns its output.
func (c *Context) Exec(op string, attrs map[string]any, inputs ...*tensor.Tensor) (*tensor.Tensor, error) {
	c.seq++
	ctx := &ops.Context{
		NodeName:  fmt.Sprintf("eager_%s_%d", op, c.seq),
		Attrs:     attrs,
		Resources: c.res,
		Scratch:   ops.NewScratch(),
	}
	return ops.Run(op, ctx, inputs)
}

// MustExec is Exec that panics on error, for quick scripts and tests.
func (c *Context) MustExec(op string, attrs map[string]any, inputs ...*tensor.Tensor) *tensor.Tensor {
	out, err := c.Exec(op, attrs, inputs...)
	if err != nil {
		panic(err)
	}
	return out
}

// Convenience wrappers for the common arithmetic.

// Add returns a+b elementwise.
func (c *Context) Add(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	return c.Exec("Add", nil, a, b)
}

// MatMul returns a·b.
func (c *Context) MatMul(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	return c.Exec("MatMul", nil, a, b)
}

// Dot returns the inner product of two vectors.
func (c *Context) Dot(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	return c.Exec("Dot", nil, a, b)
}

// FFT returns the discrete Fourier transform of a complex128 vector.
func (c *Context) FFT(a *tensor.Tensor) (*tensor.Tensor, error) {
	return c.Exec("FFT", nil, a)
}
