package eager

import (
	"strings"
	"testing"

	"tfhpc/internal/tensor"
)

func TestExecArithmetic(t *testing.T) {
	c := NewContext()
	a := tensor.FromF64(tensor.Shape{2}, []float64{1, 2})
	b := tensor.FromF64(tensor.Shape{2}, []float64{10, 20})
	out, err := c.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.F64()[1] != 22 {
		t.Fatalf("Add = %v", out.F64())
	}
	d, err := c.Dot(a, b)
	if err != nil || d.ScalarFloat() != 50 {
		t.Fatalf("Dot = %v, %v", d, err)
	}
}

func TestExecMatMulAndFFT(t *testing.T) {
	c := NewContext()
	eye := tensor.FromF64(tensor.Shape{2, 2}, []float64{1, 0, 0, 1})
	m := tensor.FromF64(tensor.Shape{2, 2}, []float64{1, 2, 3, 4})
	out, err := c.MatMul(m, eye)
	if err != nil || !out.Equal(m) {
		t.Fatalf("MatMul with identity: %v, %v", out, err)
	}
	sig := tensor.FromC128(tensor.Shape{4}, []complex128{1, 0, 0, 0})
	f, err := c.FFT(sig)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f.C128() {
		if v != 1 {
			t.Fatalf("impulse FFT = %v", f.C128())
		}
	}
}

func TestEagerStatePersists(t *testing.T) {
	c := NewContext()
	attrs := map[string]any{"var_name": "w"}
	if _, err := c.Exec("Assign", attrs, tensor.ScalarF64(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Exec("AssignAdd", attrs, tensor.ScalarF64(2)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := c.Exec("Variable", attrs)
	if err != nil || out.ScalarFloat() != 7 {
		t.Fatalf("variable = %v, %v", out, err)
	}
}

func TestEagerErrors(t *testing.T) {
	c := NewContext()
	if _, err := c.Exec("NotAnOp", nil); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("err = %v", err)
	}
	a := tensor.FromF64(tensor.Shape{2}, []float64{1, 2})
	b := tensor.FromF64(tensor.Shape{3}, []float64{1, 2, 3})
	if _, err := c.Add(a, b); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestMustExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewContext().MustExec("NotAnOp", nil)
}

func TestEagerQueues(t *testing.T) {
	c := NewContext()
	attrs := map[string]any{"queue": "q", "capacity": 4}
	if _, err := c.Exec("QueueEnqueue", attrs, tensor.ScalarI64(5)); err != nil {
		t.Fatal(err)
	}
	out, err := c.Exec("QueueDequeue", attrs)
	if err != nil || out.ScalarInt() != 5 {
		t.Fatalf("dequeue = %v, %v", out, err)
	}
}
