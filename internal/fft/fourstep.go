package fft

import "tfhpc/internal/gemm"

// fourStep runs the four-step (Bailey) decomposition: the length-n
// transform becomes n2 column FFTs of size n1, a twiddle multiply, and n1
// row FFTs of size n2, with blocked transposes keeping every sub-FFT
// contiguous and cache-resident. Writing the input index j = n2·j1 + j2 and
// the output index k = k1 + n1·k2,
//
//	X[k1 + n1·k2] = Σ_{j2} [ w_n^{j2·k1} · Σ_{j1} x[n2·j1+j2] w_{n1}^{j1·k1} ] w_{n2}^{j2·k2}
//
// Both sub-FFT sweeps and the transposes fan out over the shared
// internal/gemm worker pool, so one large transform scales with GOMAXPROCS.
func (p *Plan) fourStep(a []complex128, inverse bool) {
	n1 := 1 << ((p.log2n + 1) / 2)
	n2 := p.n / n1
	p1, p2 := mustPlan(n1), mustPlan(n2)
	roots := p.roots
	if inverse {
		roots = p.rootsInv
	}
	w := workPool.get(p.n)

	// Step 1: transpose so each column (stride n2) becomes a contiguous row.
	transpose(w, a, n1, n2)

	// Step 2: size-n1 FFT per row, then the twiddle multiply w_n^{j2·k1}.
	// The twiddle advances incrementally (one complex multiply per point,
	// instead of a strided gather across the n/2-entry root table) and
	// resyncs from the table every 32 steps to keep rounding error flat.
	// j2·k1 < n, so the full circle is the root table and its negation.
	half := p.n / 2
	rootAt := func(m int) complex128 {
		if m < half {
			return roots[m]
		}
		return -roots[m-half]
	}
	gemm.ParallelFor(n2, 1, func(lo, hi int) {
		for j2 := lo; j2 < hi; j2++ {
			row := w[j2*n1 : (j2+1)*n1]
			p1.transform(row, inverse)
			if j2 == 0 {
				continue // twiddles are all 1
			}
			step := rootAt(j2)
			wk := step
			for k1 := 1; k1 < n1; k1++ {
				row[k1] *= wk
				if k1&31 == 0 {
					wk = rootAt(j2 * (k1 + 1))
				} else {
					wk *= step
				}
			}
		}
	})

	// Steps 3-4: transpose back and run the size-n2 FFTs along rows.
	transpose(a, w, n2, n1)
	gemm.ParallelFor(n1, 1, func(lo, hi int) {
		for k1 := lo; k1 < hi; k1++ {
			p2.transform(a[k1*n2:(k1+1)*n2], inverse)
		}
	})

	// Final transpose realises the k = k1 + n1·k2 output ordering.
	transpose(w, a, n1, n2)
	copy(a, w)
	workPool.put(w)
}

// transposeBlock is the tile edge of the blocked transpose: 32×32
// complex128 tiles (16 KB source + 16 KB destination) stay L1/L2-friendly
// on both the read and the scattered-write side.
const transposeBlock = 32

// transpose writes the cols×rows transpose of src (a rows×cols row-major
// matrix) into dst, in parallel over tiles. dst and src must not overlap.
func transpose(dst, src []complex128, rows, cols int) {
	if rows == 1 || cols == 1 {
		copy(dst, src)
		return
	}
	rb := (rows + transposeBlock - 1) / transposeBlock
	cb := (cols + transposeBlock - 1) / transposeBlock
	gemm.ParallelFor(rb*cb, 4, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			i0 := (t / cb) * transposeBlock
			j0 := (t % cb) * transposeBlock
			imax := min(i0+transposeBlock, rows)
			jmax := min(j0+transposeBlock, cols)
			for i := i0; i < imax; i++ {
				for j := j0; j < jmax; j++ {
					dst[j*rows+i] = src[i*cols+j]
				}
			}
		}
	})
}
