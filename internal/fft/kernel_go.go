package fft

// Kernel selection, mirroring internal/gemm: on amd64 hosts whose GEMM
// engine selected the AVX+FMA micro-kernels (CPUID-gated, disabled by
// TFHPC_NOSIMD=1), the radix-8 butterfly pass runs a hand-written
// vectorised kernel over per-stage packed twiddle tables; everywhere else
// the portable complex-arithmetic passes in kernels.go are used.
var (
	// radix8Vec, when non-nil, runs one radix-8 butterfly pass over
	// `blocks` blocks of 8·q points using the stage's packed twiddle table
	// (see Plan.buildStageTables); conj selects the inverse transform.
	radix8Vec  func(a []complex128, blocks, q int, tw []complex128, conj bool)
	kernelName = "portable-go"
)

// KernelName identifies the butterfly kernel implementation selected at
// init ("avx-fma" on capable amd64 hosts, "portable-go" otherwise).
func KernelName() string { return kernelName }

// buildStageTables packs, for every vectorisable radix-8 pass, the seven
// twiddle families of each butterfly into one contiguous stream in
// evaluation order: [w1 w2a w2b w3a w3b w3c w3d] as (j, j+1) pairs, so the
// vector kernel reads 224 bytes sequentially per butterfly pair instead of
// gathering strided root-table entries. Only plans on the in-cache direct
// path (< fourStepMin) carry tables; the four-step path reaches them
// through its sub-plans.
func (p *Plan) buildStageTables() {
	p.stages = make([][]complex128, len(p.schedule))
	q := 1
	for i, radix := range p.schedule {
		if radix == 8 && q >= 2 {
			s2, s4, s8 := p.n/(2*q), p.n/(4*q), p.n/(8*q)
			tbl := make([]complex128, 14*(q/2))
			idx := 0
			for j := 0; j < q; j += 2 {
				for _, f := range [7][2]int{
					{j, s2},
					{j, s4}, {j + q, s4},
					{j, s8}, {j + q, s8}, {j + 2*q, s8}, {j + 3*q, s8},
				} {
					tbl[idx] = p.roots[f[0]*f[1]]
					tbl[idx+1] = p.roots[(f[0]+1)*f[1]]
					idx += 2
				}
			}
			p.stages[i] = tbl
		}
		q *= radix
	}
}
