//go:build amd64

package fft

import "tfhpc/internal/gemm"

// Implemented in kernel_amd64.s.
//
//go:noescape
func fftRadix8AVX(a *complex128, blocks, q int64, tw *complex128, conj int64)

func radix8AVX(a []complex128, blocks, q int, tw []complex128, conj bool) {
	c := int64(0)
	if conj {
		c = 1
	}
	fftRadix8AVX(&a[0], int64(blocks), int64(q), &tw[0], c)
}

func init() {
	// The GEMM engine already CPUID-gates AVX+FMA and honours
	// TFHPC_NOSIMD=1; the FFT butterflies need exactly the same features.
	if gemm.KernelName() == "avx-fma" {
		radix8Vec = radix8AVX
		kernelName = "avx-fma"
	}
}
