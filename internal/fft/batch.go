package fft

import (
	"fmt"

	"tfhpc/internal/gemm"
)

// TransformBatch transforms many packed rows in one call: a holds
// len(a)/Len() consecutive signals of Len() points each, transformed
// independently and in parallel across the worker pool. This is the shape
// batched op kernels and the distributed-FFT workers feed: one plan lookup
// and one pool dispatch for the whole batch.
func (p *Plan) TransformBatch(a []complex128, inverse bool) error {
	if len(a)%p.n != 0 {
		return fmt.Errorf("fft: batch length %d is not a multiple of plan size %d", len(a), p.n)
	}
	rows := len(a) / p.n
	if rows <= 1 {
		if rows == 1 {
			p.transform(a, inverse)
		}
		return nil
	}
	if p.n >= fourStepMin {
		// Each row already saturates the pool through the four-step path.
		for r := 0; r < rows; r++ {
			p.transform(a[r*p.n:(r+1)*p.n], inverse)
		}
		return nil
	}
	// Small rows: parallelise across rows, batching tiny ones so each chunk
	// amortises its dispatch.
	grain := 1
	if p.n < 1<<13 {
		grain = (1 << 13) / p.n
	}
	gemm.ParallelFor(rows, grain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			p.direct(a[r*p.n:(r+1)*p.n], inverse)
		}
	})
	return nil
}

// FFT2D runs an in-place 2-D transform over a rows×cols row-major array: a
// batched pass along rows, a blocked transpose, a batched pass along
// columns, and a transpose back. The inverse includes the full
// 1/(rows·cols) normalisation. Both dimensions must be powers of two.
func FFT2D(a []complex128, rows, cols int, inverse bool) error {
	if rows <= 0 || cols <= 0 || rows*cols != len(a) {
		return fmt.Errorf("fft: 2-D shape %dx%d does not match data length %d", rows, cols, len(a))
	}
	pc, err := PlanFor(cols)
	if err != nil {
		return err
	}
	pr, err := PlanFor(rows)
	if err != nil {
		return err
	}
	if err := pc.TransformBatch(a, inverse); err != nil {
		return err
	}
	if rows == 1 {
		return nil
	}
	w := workPool.get(len(a))
	transpose(w, a, rows, cols)
	if err := pr.TransformBatch(w, inverse); err != nil {
		workPool.put(w)
		return err
	}
	transpose(a, w, cols, rows)
	workPool.put(w)
	return nil
}
