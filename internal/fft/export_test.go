package fft

// White-box hooks: the four-step path normally engages only above
// fourStepMin, so tests drive it directly at naive-DFT-checkable sizes.

// FourStep runs the four-step decomposition regardless of size thresholds.
func (p *Plan) FourStep(a []complex128, inverse bool) { p.fourStep(a, inverse) }

// Direct runs the in-cache butterfly path regardless of size thresholds.
func (p *Plan) Direct(a []complex128, inverse bool) { p.direct(a, inverse) }

// Schedule exposes the butterfly pass schedule.
func (p *Plan) Schedule() []int { return p.schedule }

// FourStepMin exposes the path-selection threshold to tests.
const FourStepMin = fourStepMin
