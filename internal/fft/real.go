package fft

import (
	"fmt"
	"math"
	"sync"
)

// RPlan is the real-input counterpart of Plan: an n-point RFFT runs an
// n/2-point complex transform over the packed signal z[k] = x[2k] +
// i·x[2k+1] and unpacks the half-spectrum with a precomputed table of
// exp(-2πi·k/n) — roughly 2× the throughput of a complex FFT of the same
// real signal. Plans are cached per size and safe for concurrent use.
type RPlan struct {
	n    int   // real signal length, power of two ≥ 2
	half *Plan // complex plan for the packed length n/2
	tw   []complex128
}

var rplans sync.Map // int -> *RPlan

// RPlanFor returns the cached real-transform plan for n real samples. n
// must be a power of two and at least 2.
func RPlanFor(n int) (*RPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: real length %d is not a power of two ≥ 2", n)
	}
	if p, ok := rplans.Load(n); ok {
		return p.(*RPlan), nil
	}
	h := n / 2
	p := &RPlan{n: n, half: mustPlan(h), tw: make([]complex128, h+1)}
	for k := range p.tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.tw[k] = complex(c, s)
	}
	if prev, loaded := rplans.LoadOrStore(n, p); loaded {
		return prev.(*RPlan), nil
	}
	return p, nil
}

// Len reports the real signal length the plan was built for.
func (p *RPlan) Len() int { return p.n }

// SpectrumLen is the half-spectrum length n/2+1 produced by Transform.
func (p *RPlan) SpectrumLen() int { return p.n/2 + 1 }

// Transform computes the forward half-spectrum of the real signal x into
// dst: dst[k] = Σ_j x[j]·exp(-2πi·jk/n) for k ≤ n/2. The remaining bins
// follow from conjugate symmetry, X[n-k] = conj(X[k]). len(x) must be
// Len(), len(dst) must be SpectrumLen(); x is left untouched.
func (p *RPlan) Transform(dst []complex128, x []float64) error {
	if len(x) != p.n {
		return fmt.Errorf("fft: real input length %d does not match plan size %d", len(x), p.n)
	}
	if len(dst) != p.SpectrumLen() {
		return fmt.Errorf("fft: spectrum length %d, want %d", len(dst), p.SpectrumLen())
	}
	h := p.n / 2
	z := workPool.get(h)
	for k := 0; k < h; k++ {
		z[k] = complex(x[2*k], x[2*k+1])
	}
	p.half.transform(z, false)
	// Unpack: with E/O the DFTs of the even/odd subsequences,
	//   E[k] = (Z[k] + conj(Z[h-k]))/2,  O[k] = -i·(Z[k] - conj(Z[h-k]))/2,
	//   X[k] = E[k] + exp(-2πi·k/n)·O[k],  Z[h] ≡ Z[0].
	z0 := z[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[h] = complex(real(z0)-imag(z0), 0)
	for k := 1; k < h; k++ {
		zk, zr := z[k], cconj(z[h-k])
		e := (zk + zr) * 0.5
		o := (zk - zr) * complex(0, -0.5)
		dst[k] = e + p.tw[k]*o
	}
	workPool.put(z)
	return nil
}

// Inverse reconstructs the real signal from its half-spectrum: the exact
// inverse of Transform, including the 1/n normalisation. len(spec) must be
// SpectrumLen(), len(dst) must be Len(); spec is left untouched.
func (p *RPlan) Inverse(dst []float64, spec []complex128) error {
	if len(spec) != p.SpectrumLen() {
		return fmt.Errorf("fft: spectrum length %d, want %d", len(spec), p.SpectrumLen())
	}
	if len(dst) != p.n {
		return fmt.Errorf("fft: real output length %d does not match plan size %d", len(dst), p.n)
	}
	h := p.n / 2
	z := workPool.get(h)
	// Repack: E[k] = (X[k] + conj(X[h-k]))/2, O[k] = conj(w^k)·(X[k] -
	// conj(X[h-k]))/2, Z[k] = E[k] + i·O[k].
	for k := 0; k < h; k++ {
		xk, xr := spec[k], cconj(spec[h-k])
		e := (xk + xr) * 0.5
		o := cconj(p.tw[k]) * (xk - xr) * 0.5
		z[k] = e + o*complex(0, 1)
	}
	p.half.transform(z, true)
	for k := 0; k < h; k++ {
		dst[2*k] = real(z[k])
		dst[2*k+1] = imag(z[k])
	}
	workPool.put(z)
	return nil
}

func cconj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// RFFT computes the half-spectrum of a real signal through the plan cache,
// allocating the n/2+1 output. See RPlan.Transform.
func RFFT(x []float64) ([]complex128, error) {
	p, err := RPlanFor(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, p.SpectrumLen())
	if err := p.Transform(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// IRFFT reconstructs n real samples from an n/2+1 half-spectrum through the
// plan cache, allocating the output. See RPlan.Inverse.
func IRFFT(spec []complex128, n int) ([]float64, error) {
	p, err := RPlanFor(n)
	if err != nil {
		return nil, err
	}
	if len(spec) != p.SpectrumLen() {
		return nil, fmt.Errorf("fft: spectrum length %d, want %d for n=%d", len(spec), p.SpectrumLen(), n)
	}
	out := make([]float64, n)
	if err := p.Inverse(out, spec); err != nil {
		return nil, err
	}
	return out, nil
}
