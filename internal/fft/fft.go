// Package fft is the spectral-compute engine behind the runtime's FFT
// kernels, mirroring the internal/gemm architecture: cached per-size plans
// (bit-reversal permutation + twiddle tables, computed once and shared
// through a concurrent plan cache) feed fused radix-4/radix-8 butterfly
// passes with a radix-2 cleanup stage, and large transforms switch to a
// four-step (Bailey) decomposition — √n×√n sub-FFTs, a twiddle multiply and
// blocked transposes — whose row passes fan out across the shared
// internal/gemm worker pool.
//
// On top of the core complex transform the package offers batched
// transforms (many rows in one call), 2-D transforms, and real-input
// RFFT/IRFFT via the packed-complex trick (~2× over a complex FFT of the
// same real signal).
//
// All lengths are powers of two, matching the paper's FFT workload.
package fft

import (
	"fmt"
	"math"
	"sync"

	"tfhpc/internal/gemm"
)

// fourStepMin is the transform length at which the engine switches from the
// in-cache butterfly passes to the four-step decomposition: 2^17 complex128
// values (2 MB) is where the working set outgrows typical L2 caches and
// where splitting into √n-sized cache-resident sub-transforms (which also
// parallelise across the worker pool) starts to win.
const fourStepMin = 1 << 17

// Plan holds everything precomputed for one transform size: the
// bit-reversal permutation, forward and inverse twiddle tables, and the
// butterfly pass schedule. Plans are immutable after construction and safe
// for concurrent use; obtain them from PlanFor so each size is built once.
type Plan struct {
	n     int
	log2n int
	// roots[k] = exp(-2πi·k/n) for k < n/2; rootsInv holds the conjugates.
	roots    []complex128
	rootsInv []complex128
	// schedule lists the radix of each butterfly pass, first to last. The
	// cleanup radix-2 or radix-4 pass (if any) runs first, while blocks are
	// shortest; every later pass is radix-8.
	schedule []int
	// stages[i], when non-nil, is pass i's packed twiddle table for the
	// vector kernel (built only when one is selected; see kernel_go.go).
	stages [][]complex128
	// perm is the bit-reversal permutation, built lazily: plans above
	// fourStepMin only ever run the four-step path, which permutes inside
	// its sub-plans and never at the top level.
	permOnce sync.Once
	perm     []int32
}

// plans caches one *Plan per size; PlanFor is the only constructor.
var plans sync.Map // int -> *Plan

// PlanFor returns the cached plan for an n-point transform, building it on
// first use. n must be a positive power of two.
func PlanFor(n int) (*Plan, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a positive power of two", n)
	}
	if p, ok := plans.Load(n); ok {
		return p.(*Plan), nil
	}
	p := newPlan(n)
	if prev, loaded := plans.LoadOrStore(n, p); loaded {
		return prev.(*Plan), nil
	}
	return p, nil
}

// mustPlan is PlanFor for lengths already known to be powers of two.
func mustPlan(n int) *Plan {
	p, err := PlanFor(n)
	if err != nil {
		panic(err)
	}
	return p
}

func newPlan(n int) *Plan {
	p := &Plan{n: n}
	for v := n; v > 1; v >>= 1 {
		p.log2n++
	}
	p.roots = make([]complex128, n/2)
	p.rootsInv = make([]complex128, n/2)
	for k := range p.roots {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.roots[k] = complex(c, s)
		p.rootsInv[k] = complex(c, -s)
	}
	// Pass schedule: radix-8 does three butterfly levels per memory pass,
	// so prefer it; a single radix-2 or radix-4 cleanup pass first absorbs
	// log2(n) mod 3.
	t := p.log2n
	switch t % 3 {
	case 1:
		p.schedule = append(p.schedule, 2)
		t--
	case 2:
		p.schedule = append(p.schedule, 4)
		t -= 2
	}
	for ; t > 0; t -= 3 {
		p.schedule = append(p.schedule, 8)
	}
	if radix8Vec != nil {
		p.buildStageTables()
	}
	return p
}

// Len reports the transform size the plan was built for.
func (p *Plan) Len() int { return p.n }

// ForwardTwiddles returns the table w[k] = exp(-2πi·k/n) for k < n/2, for
// any n ≥ 2. Consumers that combine sub-transforms (the distributed-FFT
// tile merge) index it instead of recomputing trigonometry per element.
// The table is shared from the plan cache when a plan for n already exists
// and built standalone otherwise — twiddle-only consumers must not force
// full plans (inverse tables, packed kernel stage tables) into the
// process-wide cache for sizes nothing ever transforms. The returned slice
// may be shared and must not be modified.
func ForwardTwiddles(n int) []complex128 {
	if p, ok := plans.Load(n); ok {
		return p.(*Plan).roots
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	return tw
}

// bitrev builds (once) and returns the bit-reversal permutation.
func (p *Plan) bitrev() []int32 {
	p.permOnce.Do(func() {
		perm := make([]int32, p.n)
		for i, j := 0, 0; i < p.n; i++ {
			perm[i] = int32(j)
			mask := p.n >> 1
			for ; j&mask != 0; mask >>= 1 {
				j &^= mask
			}
			j |= mask
		}
		p.perm = perm
	})
	return p.perm
}

// Transform runs the planned in-place transform over a, forward or inverse.
// The inverse includes the 1/n normalisation. len(a) must equal Len().
func (p *Plan) Transform(a []complex128, inverse bool) error {
	if len(a) != p.n {
		return fmt.Errorf("fft: input length %d does not match plan size %d", len(a), p.n)
	}
	p.transform(a, inverse)
	return nil
}

func (p *Plan) transform(a []complex128, inverse bool) {
	if p.n == 1 {
		return
	}
	// The four-step decomposition is the parallel path: its transposes and
	// per-row sub-FFTs spread across the worker pool, but on a single
	// worker that extra data movement only costs, so large transforms stay
	// on the in-cache butterfly passes there.
	if p.n >= fourStepMin && gemm.Workers() > 1 {
		p.fourStep(a, inverse)
		return
	}
	p.direct(a, inverse)
}

// direct is the in-cache path: bit-reversal permutation followed by the
// scheduled butterfly passes.
func (p *Plan) direct(a []complex128, inverse bool) {
	roots := p.roots
	if inverse {
		roots = p.rootsInv
	}
	perm := p.bitrev()
	for i, r := range perm {
		if int32(i) < r {
			a[i], a[r] = a[r], a[i]
		}
	}
	q := 1
	for i, radix := range p.schedule {
		switch radix {
		case 2:
			radix2Pass(a, q, roots, p.n)
		case 4:
			radix4Pass(a, q, roots, p.n)
		case 8:
			if p.stages != nil && p.stages[i] != nil {
				radix8Vec(a, p.n/(8*q), q, p.stages[i], inverse)
			} else {
				radix8Pass(a, q, roots, p.n)
			}
		}
		q *= radix
	}
	if inverse {
		scale(a, 1/float64(p.n))
	}
}

func scale(a []complex128, s float64) {
	c := complex(s, 0)
	for i := range a {
		a[i] *= c
	}
}

// Forward runs an in-place forward transform through the plan cache.
func Forward(a []complex128) error {
	if len(a) == 0 {
		return nil
	}
	p, err := PlanFor(len(a))
	if err != nil {
		return err
	}
	return p.Transform(a, false)
}

// Inverse runs an in-place inverse transform (with 1/n normalisation)
// through the plan cache.
func Inverse(a []complex128) error {
	if len(a) == 0 {
		return nil
	}
	p, err := PlanFor(len(a))
	if err != nil {
		return err
	}
	return p.Transform(a, true)
}

// bufPool recycles scratch buffers across transforms and workers (the
// four-step work array, transpose targets, packed real inputs).
type bufPool[T any] struct{ p sync.Pool }

func (b *bufPool[T]) get(n int) []T {
	if v := b.p.Get(); v != nil {
		if s := v.([]T); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]T, n)
}

func (b *bufPool[T]) put(s []T) { b.p.Put(s) }

var workPool bufPool[complex128]
