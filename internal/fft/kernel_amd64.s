//go:build amd64

#include "textflag.h"

// func fftRadix8AVX(a *complex128, blocks, q int64, tw *complex128, conj int64)
//
// One radix-8 butterfly pass: `blocks` blocks of 8·q complex128 points,
// each combining its eight length-q sub-DFTs in three fused
// decimation-in-time levels. Butterflies are processed two at a time
// (j, j+1): a 256-bit register holds two complex128 values, a complex
// multiply is VPERMILPD + VMULPD + VFMADDSUB231PD against the re-dup and
// im-dup of the twiddle pair, and the seven twiddle families stream
// sequentially from the packed stage table (224 bytes per butterfly pair,
// layout in Plan.buildStageTables). conj≠0 negates the twiddle imaginary
// parts (via the Y15 mask), turning the pass into its inverse counterpart.
//
// Requires AVX2 (VPBROADCASTQ) and FMA; q must be even and ≥ 2.
TEXT ·fftRadix8AVX(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), DI
	MOVQ blocks+8(FP), R8
	MOVQ q+16(FP), R9
	MOVQ tw+24(FP), R10
	MOVQ conj+32(FP), CX

	// Byte strides between the eight length-q sub-blocks.
	MOVQ R9, R11
	SHLQ $4, R11                 // R11 = 16·q
	LEAQ (R11)(R11*2), R15       // R15 = 48·q
	LEAQ (R11)(R11*4), AX        // AX  = 80·q
	LEAQ (R15)(R11*4), BX        // BX  = 112·q

	// Y15: sign mask applied to twiddle imaginary parts (all lanes -0.0
	// when conjugating, zero otherwise).
	VXORPD Y15, Y15, Y15
	TESTQ  CX, CX
	JZ     noconj
	MOVQ   $0x8000000000000000, CX
	VMOVQ  CX, X15
	VPBROADCASTQ X15, Y15

noconj:
	TESTQ R8, R8
	JZ    done

blockloop:
	MOVQ R10, R12                // stage table, restarted per block
	MOVQ DI, R14                 // &block[j]
	MOVQ R9, R13
	SHRQ $1, R13                 // butterfly pairs in this block

pairloop:
	VMOVUPD (R14), Y0            // B0[j:j+2]
	VMOVUPD (R14)(R11*1), Y1     // B1
	VMOVUPD (R14)(R11*2), Y2     // B2
	VMOVUPD (R14)(R15*1), Y3     // B3
	VMOVUPD (R14)(R11*4), Y4     // B4
	VMOVUPD (R14)(AX*1), Y5      // B5
	VMOVUPD (R14)(R15*2), Y6     // B6
	VMOVUPD (R14)(BX*1), Y7      // B7

	// Level 1: (B0,B1) (B2,B3) (B4,B5) (B6,B7), all with w1.
	VMOVUPD   (R12), Y8
	VPERMILPD $0x0, Y8, Y9       // w1 re-dup
	VPERMILPD $0xF, Y8, Y10      // w1 im-dup
	VXORPD    Y15, Y10, Y10

	VPERMILPD      $0x5, Y1, Y11
	VMULPD         Y10, Y11, Y12
	VFMADDSUB231PD Y1, Y9, Y12   // Y12 = w1·B1
	VSUBPD         Y12, Y0, Y1
	VADDPD         Y12, Y0, Y0

	VPERMILPD      $0x5, Y3, Y11
	VMULPD         Y10, Y11, Y12
	VFMADDSUB231PD Y3, Y9, Y12
	VSUBPD         Y12, Y2, Y3
	VADDPD         Y12, Y2, Y2

	VPERMILPD      $0x5, Y5, Y11
	VMULPD         Y10, Y11, Y12
	VFMADDSUB231PD Y5, Y9, Y12
	VSUBPD         Y12, Y4, Y5
	VADDPD         Y12, Y4, Y4

	VPERMILPD      $0x5, Y7, Y11
	VMULPD         Y10, Y11, Y12
	VFMADDSUB231PD Y7, Y9, Y12
	VSUBPD         Y12, Y6, Y7
	VADDPD         Y12, Y6, Y6

	// Level 2: (Y0,Y2) (Y4,Y6) with w2a; (Y1,Y3) (Y5,Y7) with w2b.
	VMOVUPD   32(R12), Y8
	VPERMILPD $0x0, Y8, Y9       // w2a
	VPERMILPD $0xF, Y8, Y10
	VXORPD    Y15, Y10, Y10
	VMOVUPD   64(R12), Y8
	VPERMILPD $0x0, Y8, Y13      // w2b
	VPERMILPD $0xF, Y8, Y14
	VXORPD    Y15, Y14, Y14

	VPERMILPD      $0x5, Y2, Y11
	VMULPD         Y10, Y11, Y12
	VFMADDSUB231PD Y2, Y9, Y12
	VSUBPD         Y12, Y0, Y2
	VADDPD         Y12, Y0, Y0

	VPERMILPD      $0x5, Y6, Y11
	VMULPD         Y10, Y11, Y12
	VFMADDSUB231PD Y6, Y9, Y12
	VSUBPD         Y12, Y4, Y6
	VADDPD         Y12, Y4, Y4

	VPERMILPD      $0x5, Y3, Y11
	VMULPD         Y14, Y11, Y12
	VFMADDSUB231PD Y3, Y13, Y12
	VSUBPD         Y12, Y1, Y3
	VADDPD         Y12, Y1, Y1

	VPERMILPD      $0x5, Y7, Y11
	VMULPD         Y14, Y11, Y12
	VFMADDSUB231PD Y7, Y13, Y12
	VSUBPD         Y12, Y5, Y7
	VADDPD         Y12, Y5, Y5

	// Level 3: (Y0,Y4) w3a, (Y1,Y5) w3b, (Y2,Y6) w3c, (Y3,Y7) w3d.
	VMOVUPD   96(R12), Y8
	VPERMILPD $0x0, Y8, Y9
	VPERMILPD $0xF, Y8, Y10
	VXORPD    Y15, Y10, Y10
	VPERMILPD      $0x5, Y4, Y11
	VMULPD         Y10, Y11, Y12
	VFMADDSUB231PD Y4, Y9, Y12
	VSUBPD         Y12, Y0, Y4
	VADDPD         Y12, Y0, Y0

	VMOVUPD   128(R12), Y8
	VPERMILPD $0x0, Y8, Y9
	VPERMILPD $0xF, Y8, Y10
	VXORPD    Y15, Y10, Y10
	VPERMILPD      $0x5, Y5, Y11
	VMULPD         Y10, Y11, Y12
	VFMADDSUB231PD Y5, Y9, Y12
	VSUBPD         Y12, Y1, Y5
	VADDPD         Y12, Y1, Y1

	VMOVUPD   160(R12), Y8
	VPERMILPD $0x0, Y8, Y9
	VPERMILPD $0xF, Y8, Y10
	VXORPD    Y15, Y10, Y10
	VPERMILPD      $0x5, Y6, Y11
	VMULPD         Y10, Y11, Y12
	VFMADDSUB231PD Y6, Y9, Y12
	VSUBPD         Y12, Y2, Y6
	VADDPD         Y12, Y2, Y2

	VMOVUPD   192(R12), Y8
	VPERMILPD $0x0, Y8, Y9
	VPERMILPD $0xF, Y8, Y10
	VXORPD    Y15, Y10, Y10
	VPERMILPD      $0x5, Y7, Y11
	VMULPD         Y10, Y11, Y12
	VFMADDSUB231PD Y7, Y9, Y12
	VSUBPD         Y12, Y3, Y7
	VADDPD         Y12, Y3, Y3

	VMOVUPD Y0, (R14)
	VMOVUPD Y1, (R14)(R11*1)
	VMOVUPD Y2, (R14)(R11*2)
	VMOVUPD Y3, (R14)(R15*1)
	VMOVUPD Y4, (R14)(R11*4)
	VMOVUPD Y5, (R14)(AX*1)
	VMOVUPD Y6, (R14)(R15*2)
	VMOVUPD Y7, (R14)(BX*1)

	ADDQ $224, R12               // next twiddle group
	ADDQ $32, R14                // next butterfly pair
	DECQ R13
	JNZ  pairloop

	LEAQ (DI)(R11*8), DI         // next block
	DECQ R8
	JNZ  blockloop

done:
	VZEROUPPER
	RET
