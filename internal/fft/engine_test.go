// Black-box property tests for the FFT engine, checked against the O(n²)
// reference DFT in internal/ops (an external test package, so the
// ops → fft dependency does not cycle).
package fft_test

import (
	"math/cmplx"
	"sync"
	"testing"

	"tfhpc/internal/fft"
	"tfhpc/internal/ops"
	"tfhpc/internal/tensor"
)

func randComplex(seed uint64, n int) []complex128 {
	r := tensor.NewRNG(seed)
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
	}
	return out
}

func randReal(seed uint64, n int) []float64 {
	r := tensor.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()*2 - 1
	}
	return out
}

// TestForwardMatchesNaiveDFT covers every schedule shape the radix-2/4/8
// kernels produce: n = 2 and 4 (single cleanup pass), 8 (single radix-8),
// 16/32/64 (cleanup + radix-8 combinations) up through 4096.
func TestForwardMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096} {
		x := randComplex(uint64(n)+1, n)
		got := append([]complex128(nil), x...)
		if err := fft.Forward(got); err != nil {
			t.Fatal(err)
		}
		want := ops.NaiveDFT(x, false)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestInverseMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{2, 8, 64, 512} {
		x := randComplex(uint64(n)+2, n)
		got := append([]complex128(nil), x...)
		if err := fft.Inverse(got); err != nil {
			t.Fatal(err)
		}
		want := ops.NaiveDFT(x, true)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d: IFFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestRoundTrip checks ifft(fft(x)) ≈ x through the production paths,
// including a four-step-sized transform, with an accuracy bound that grows
// only logarithmically with n.
func TestRoundTrip(t *testing.T) {
	for _, n := range []int{2, 64, 4096, fft.FourStepMin, 1 << 18} {
		x := randComplex(uint64(n)+3, n)
		a := append([]complex128(nil), x...)
		if err := fft.Forward(a); err != nil {
			t.Fatal(err)
		}
		if err := fft.Inverse(a); err != nil {
			t.Fatal(err)
		}
		logn := 0
		for v := n; v > 1; v >>= 1 {
			logn++
		}
		tol := 1e-13 * float64(logn+1)
		for i := range x {
			if cmplx.Abs(a[i]-x[i]) > tol {
				t.Fatalf("n=%d: round trip off at %d: |Δ|=%g > %g", n, i, cmplx.Abs(a[i]-x[i]), tol)
			}
		}
	}
}

// TestTransformBatchMatchesPerRow checks the batched entry point against
// row-at-a-time transforms.
func TestTransformBatchMatchesPerRow(t *testing.T) {
	const n, rows = 128, 9
	p, err := fft.PlanFor(n)
	if err != nil {
		t.Fatal(err)
	}
	x := randComplex(11, n*rows)
	batch := append([]complex128(nil), x...)
	if err := p.TransformBatch(batch, false); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		row := append([]complex128(nil), x[r*n:(r+1)*n]...)
		if err := p.Transform(row, false); err != nil {
			t.Fatal(err)
		}
		for i := range row {
			if batch[r*n+i] != row[i] {
				t.Fatalf("batch row %d differs at %d", r, i)
			}
		}
	}
	if err := p.TransformBatch(make([]complex128, n+1), false); err == nil {
		t.Fatal("ragged batch should error")
	}
}

// TestRFFTMatchesComplexFFT checks the packed-real fast path against the
// complex transform of the same signal, down to the radix edge sizes.
func TestRFFTMatchesComplexFFT(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 256, 2048} {
		x := randReal(uint64(n)+4, n)
		spec, err := fft.RFFT(x)
		if err != nil {
			t.Fatal(err)
		}
		if len(spec) != n/2+1 {
			t.Fatalf("n=%d: spectrum length %d, want %d", n, len(spec), n/2+1)
		}
		full := make([]complex128, n)
		for i, v := range x {
			full[i] = complex(v, 0)
		}
		want := ops.NaiveDFT(full, false)
		for k := 0; k <= n/2; k++ {
			if cmplx.Abs(spec[k]-want[k]) > 1e-10*float64(n) {
				t.Fatalf("n=%d: RFFT[%d] = %v, want %v", n, k, spec[k], want[k])
			}
		}
	}
}

func TestIRFFTRoundTrip(t *testing.T) {
	for _, n := range []int{2, 8, 128, 1 << 12} {
		x := randReal(uint64(n)+5, n)
		spec, err := fft.RFFT(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := fft.IRFFT(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if d := back[i] - x[i]; d > 1e-12 || d < -1e-12 {
				t.Fatalf("n=%d: IRFFT round trip off at %d by %g", n, i, d)
			}
		}
	}
	if _, err := fft.RFFT(make([]float64, 12)); err == nil {
		t.Fatal("non-power-of-two real length should error")
	}
	if _, err := fft.IRFFT(make([]complex128, 4), 8); err == nil {
		t.Fatal("mismatched spectrum length should error")
	}
}

// TestFFT2DMatchesNaive checks the 2-D transform against row-then-column
// naive DFTs, including non-square shapes.
func TestFFT2DMatchesNaive(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{1, 8}, {8, 1}, {4, 4}, {8, 16}, {32, 8}} {
		x := randComplex(uint64(tc.r*tc.c)+6, tc.r*tc.c)
		got := append([]complex128(nil), x...)
		if err := fft.FFT2D(got, tc.r, tc.c, false); err != nil {
			t.Fatal(err)
		}
		// Reference: naive DFT along rows, then along columns.
		want := make([]complex128, len(x))
		for i := 0; i < tc.r; i++ {
			copy(want[i*tc.c:(i+1)*tc.c], ops.NaiveDFT(x[i*tc.c:(i+1)*tc.c], false))
		}
		col := make([]complex128, tc.r)
		for j := 0; j < tc.c; j++ {
			for i := 0; i < tc.r; i++ {
				col[i] = want[i*tc.c+j]
			}
			for i, v := range ops.NaiveDFT(col, false) {
				want[i*tc.c+j] = v
			}
		}
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(len(x)) {
				t.Fatalf("%dx%d: FFT2D[%d] = %v, want %v", tc.r, tc.c, i, got[i], want[i])
			}
		}
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	const r, c = 64, 128
	x := randComplex(9, r*c)
	a := append([]complex128(nil), x...)
	if err := fft.FFT2D(a, r, c, false); err != nil {
		t.Fatal(err)
	}
	if err := fft.FFT2D(a, r, c, true); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(a[i]-x[i]) > 1e-12 {
			t.Fatalf("2-D round trip off at %d", i)
		}
	}
	if err := fft.FFT2D(a, 3, c, false); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

// TestConcurrentTransforms hammers one shared plan (and the pooled
// four-step path) from many goroutines; `go test -race` turns this into
// the engine's data-race check.
func TestConcurrentTransforms(t *testing.T) {
	p, err := fft.PlanFor(fft.FourStepMin)
	if err != nil {
		t.Fatal(err)
	}
	x := randComplex(10, p.Len())
	want := append([]complex128(nil), x...)
	if err := p.Transform(want, false); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := append([]complex128(nil), x...)
			if err := p.Transform(a, false); err != nil {
				errs <- err
				return
			}
			for i := range a {
				if a[i] != want[i] {
					errs <- &mismatchError{i}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

type mismatchError struct{ i int }

func (e *mismatchError) Error() string { return "concurrent transform mismatch" }

func TestPlanForRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-1, 0, 3, 12, 1000} {
		if _, err := fft.PlanFor(n); err == nil {
			t.Fatalf("PlanFor(%d) should error", n)
		}
	}
	if err := fft.Forward(make([]complex128, 5)); err == nil {
		t.Fatal("Forward on non-power-of-two should error")
	}
	p, err := fft.PlanFor(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(make([]complex128, 4), false); err == nil {
		t.Fatal("length mismatch should error")
	}
}
