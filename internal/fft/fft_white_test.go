package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

// naiveDFT is a local O(n²) reference (ops.NaiveDFT cannot be imported from
// an in-package test: ops depends on this package).
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func randSignal(seed uint64, n int) []complex128 {
	state := seed
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53)*2 - 1
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(next(), next())
	}
	return out
}

// TestScheduleCoversAllStages checks the radix schedule multiplies out to n
// and uses at most one non-radix-8 cleanup pass, run first.
func TestScheduleCoversAllStages(t *testing.T) {
	for n := 2; n <= 1<<20; n <<= 1 {
		p := mustPlan(n)
		prod := 1
		for i, r := range p.Schedule() {
			if r != 8 && i != 0 {
				t.Fatalf("n=%d: cleanup radix %d at pass %d, want first", n, r, i)
			}
			prod *= r
		}
		if prod != n {
			t.Fatalf("n=%d: schedule %v covers %d", n, p.Schedule(), prod)
		}
	}
}

// TestFourStepMatchesNaiveDFT drives the four-step path directly at sizes
// far below its production threshold, both parities of log2(n), forward and
// inverse.
func TestFourStepMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64, 256, 1024} {
		for _, inverse := range []bool{false, true} {
			x := randSignal(uint64(n), n)
			got := append([]complex128(nil), x...)
			mustPlan(n).FourStep(got, inverse)
			want := naiveDFT(x, inverse)
			for i := range want {
				if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
					t.Fatalf("n=%d inverse=%v: fourStep[%d] = %v, want %v", n, inverse, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFourStepMatchesDirectLarge cross-checks the two paths at a
// production-scale size where the naive reference is unaffordable.
func TestFourStepMatchesDirectLarge(t *testing.T) {
	n := 1 << 15
	x := randSignal(7, n)
	viaFour := append([]complex128(nil), x...)
	mustPlan(n).FourStep(viaFour, false)
	viaDirect := append([]complex128(nil), x...)
	mustPlan(n).Direct(viaDirect, false)
	for i := range viaFour {
		if cmplx.Abs(viaFour[i]-viaDirect[i]) > 1e-8*float64(n) {
			t.Fatalf("paths diverge at %d: %v vs %v", i, viaFour[i], viaDirect[i])
		}
	}
}

// TestTranspose checks the blocked parallel transpose on shapes around the
// tile edge.
func TestTranspose(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{1, 8}, {8, 1}, {4, 16}, {32, 32}, {33, 65}, {128, 64}} {
		src := randSignal(uint64(tc.r*tc.c), tc.r*tc.c)
		dst := make([]complex128, len(src))
		transpose(dst, src, tc.r, tc.c)
		for i := 0; i < tc.r; i++ {
			for j := 0; j < tc.c; j++ {
				if dst[j*tc.r+i] != src[i*tc.c+j] {
					t.Fatalf("%dx%d: transpose wrong at (%d,%d)", tc.r, tc.c, i, j)
				}
			}
		}
	}
}
