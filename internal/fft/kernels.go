package fft

// Butterfly passes for the in-cache transform path. Each pass combines
// adjacent length-q sub-DFTs (laid out by the bit-reversal permutation)
// into length radix·q sub-DFTs. The radix-4 and radix-8 passes fuse two and
// three decimation-in-time levels into one sweep over the data, so a full
// transform touches memory ~log8(n) times instead of log2(n) — the same
// traffic-per-pass economics as the GEMM engine's register blocking.
//
// Twiddles come from the plan's shared root table: w_m^j = roots[j·(n/m)].
// The inverse transform passes the conjugate table; the kernels are
// sign-agnostic.

// radix2Pass combines pairs of length-q sub-DFTs: the cleanup stage when
// log2(n) ≡ 1 (mod 3).
func radix2Pass(a []complex128, q int, roots []complex128, n int) {
	s := n / (2 * q)
	for start := 0; start < len(a); start += 2 * q {
		for j := 0; j < q; j++ {
			w := roots[j*s]
			u := a[start+j]
			v := a[start+q+j] * w
			a[start+j] = u + v
			a[start+q+j] = u - v
		}
	}
}

// radix4Pass fuses two radix-2 levels: four length-q sub-DFTs become one
// length-4q sub-DFT in a single read-modify-write of the block.
func radix4Pass(a []complex128, q int, roots []complex128, n int) {
	s2 := n / (2 * q) // level 1: q → 2q
	s4 := n / (4 * q) // level 2: 2q → 4q
	for start := 0; start < len(a); start += 4 * q {
		for j := 0; j < q; j++ {
			w1 := roots[j*s2]
			w2a := roots[j*s4]
			w2b := roots[(j+q)*s4]
			a0, a1 := a[start+j], a[start+q+j]
			a2, a3 := a[start+2*q+j], a[start+3*q+j]
			t0 := w1 * a1
			t1 := w1 * a3
			e0, e1 := a0+t0, a0-t0
			o0, o1 := a2+t1, a2-t1
			u0 := w2a * o0
			u1 := w2b * o1
			a[start+j] = e0 + u0
			a[start+q+j] = e1 + u1
			a[start+2*q+j] = e0 - u0
			a[start+3*q+j] = e1 - u1
		}
	}
}

// radix8Pass fuses three radix-2 levels: eight length-q sub-DFTs become one
// length-8q sub-DFT per block sweep. With the schedule's single cleanup
// pass, almost all butterflies run through this kernel.
func radix8Pass(a []complex128, q int, roots []complex128, n int) {
	s2 := n / (2 * q) // level 1: q → 2q
	s4 := n / (4 * q) // level 2: 2q → 4q
	s8 := n / (8 * q) // level 3: 4q → 8q
	for start := 0; start < len(a); start += 8 * q {
		for j := 0; j < q; j++ {
			w1 := roots[j*s2]
			w2a := roots[j*s4]
			w2b := roots[(j+q)*s4]
			w3a := roots[j*s8]
			w3b := roots[(j+q)*s8]
			w3c := roots[(j+2*q)*s8]
			w3d := roots[(j+3*q)*s8]

			// Level 1: four independent radix-2 butterflies.
			a0, a1 := a[start+j], a[start+q+j]
			a2, a3 := a[start+2*q+j], a[start+3*q+j]
			a4, a5 := a[start+4*q+j], a[start+5*q+j]
			a6, a7 := a[start+6*q+j], a[start+7*q+j]
			t0 := w1 * a1
			t1 := w1 * a3
			t2 := w1 * a5
			t3 := w1 * a7
			c00, c01 := a0+t0, a0-t0
			c10, c11 := a2+t1, a2-t1
			c20, c21 := a4+t2, a4-t2
			c30, c31 := a6+t3, a6-t3

			// Level 2: two radix-4 halves (each two radix-2 butterflies).
			u0 := w2a * c10
			u1 := w2b * c11
			d00, d02 := c00+u0, c00-u0 // D0[j], D0[j+2q]
			d01, d03 := c01+u1, c01-u1 // D0[j+q], D0[j+3q]
			u2 := w2a * c30
			u3 := w2b * c31
			d10, d12 := c20+u2, c20-u2
			d11, d13 := c21+u3, c21-u3

			// Level 3: combine the two length-4q halves.
			v0 := w3a * d10
			v1 := w3b * d11
			v2 := w3c * d12
			v3 := w3d * d13
			a[start+j] = d00 + v0
			a[start+q+j] = d01 + v1
			a[start+2*q+j] = d02 + v2
			a[start+3*q+j] = d03 + v3
			a[start+4*q+j] = d00 - v0
			a[start+5*q+j] = d01 - v1
			a[start+6*q+j] = d02 - v2
			a[start+7*q+j] = d03 - v3
		}
	}
}
