package hostlist

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestExpandBasic(t *testing.T) {
	cases := []struct {
		expr string
		want []string
	}{
		{"t01n01", []string{"t01n01"}},
		{"t01n[01-03]", []string{"t01n01", "t01n02", "t01n03"}},
		{"t01n[01-02,05]", []string{"t01n01", "t01n02", "t01n05"}},
		{"a,b,c", []string{"a", "b", "c"}},
		{"t01n[01-02],t02n07", []string{"t01n01", "t01n02", "t02n07"}},
		{"gpu[1-3]", []string{"gpu1", "gpu2", "gpu3"}},
		{"gpu[8-11]", []string{"gpu8", "gpu9", "gpu10", "gpu11"}},
		{"gpu[08-11]", []string{"gpu08", "gpu09", "gpu10", "gpu11"}},
		{"r[1-2]n[01-02]", []string{"r1n01", "r1n02", "r2n01", "r2n02"}},
		{"n[5]", []string{"n5"}},
		{" a , b ", []string{"a", "b"}},
	}
	for _, c := range cases {
		got, err := Expand(c.expr)
		if err != nil {
			t.Errorf("Expand(%q): %v", c.expr, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Expand(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestExpandErrors(t *testing.T) {
	for _, expr := range []string{
		"t01n[01-",
		"t01n01]",
		"t01n[]",
		"t01n[a-b]",
		"t01n[5-3]",
		"x[1-9999999999]",
	} {
		if _, err := Expand(expr); err == nil {
			t.Errorf("Expand(%q) should fail", expr)
		}
	}
}

func TestCompressBasic(t *testing.T) {
	cases := []struct {
		hosts []string
		want  string
	}{
		{[]string{"t01n01", "t01n02", "t01n03"}, "t01n[01-03]"},
		{[]string{"t01n01", "t01n03"}, "t01n[01,03]"},
		{[]string{"a"}, "a"},
		{[]string{"gpu1", "gpu2", "gpu3", "gpu7"}, "gpu[1-3,7]"},
		{[]string{"n1"}, "n1"},
	}
	for _, c := range cases {
		if got := Compress(c.hosts); got != c.want {
			t.Errorf("Compress(%v) = %q, want %q", c.hosts, got, c.want)
		}
	}
}

func TestCompressExpandRoundTrip(t *testing.T) {
	sets := [][]string{
		{"t01n01", "t01n02", "t01n05", "t02n01"},
		{"a", "b9", "b10", "b11"},
		{"kebnekaise-g01", "kebnekaise-g02"},
		{"x01", "x02", "x3"}, // mixed padding widths stay separate
	}
	for _, hosts := range sets {
		expr := Compress(hosts)
		got, err := Expand(expr)
		if err != nil {
			t.Fatalf("Expand(Compress(%v)=%q): %v", hosts, expr, err)
		}
		wantSorted := append([]string(nil), hosts...)
		sort.Strings(wantSorted)
		gotSorted := append([]string(nil), got...)
		sort.Strings(gotSorted)
		if !reflect.DeepEqual(gotSorted, wantSorted) {
			t.Errorf("round trip %v -> %q -> %v", hosts, expr, got)
		}
	}
}

// Property: expand(compress(S)) == S as a set, for arbitrary generated node
// names of the Slurm style used on Tegner and Kebnekaise.
func TestCompressExpandQuick(t *testing.T) {
	f := func(rack uint8, ids []uint8) bool {
		if len(ids) == 0 {
			return true
		}
		seen := map[string]bool{}
		var hosts []string
		for _, id := range ids {
			h := fmt.Sprintf("t%02dn%02d", rack%10, id%30)
			if !seen[h] {
				seen[h] = true
				hosts = append(hosts, h)
			}
		}
		expr := Compress(hosts)
		got, err := Expand(expr)
		if err != nil {
			return false
		}
		if len(got) != len(hosts) {
			return false
		}
		gotSet := map[string]bool{}
		for _, h := range got {
			gotSet[h] = true
		}
		for _, h := range hosts {
			if !gotSet[h] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandLargeRange(t *testing.T) {
	got, err := Expand("n[1-128]")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 128 || got[0] != "n1" || got[127] != "n128" {
		t.Fatalf("bad expansion: len=%d", len(got))
	}
}
