// Package hostlist parses and generates Slurm hostlist expressions such as
// "t01n[01-03,05],gpu07". The SlurmClusterResolver uses it to expand
// SLURM_JOB_NODELIST into individual node names, exactly as the paper's
// resolver does via scontrol.
package hostlist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Expand converts a hostlist expression into the full slice of host names.
// Supported grammar (a practical subset of Slurm's):
//
//	list    := entry ("," entry)*
//	entry   := text (range-group text?)*
//	group   := "[" range ("," range)* "]"
//	range   := number | number "-" number        (zero padding preserved)
//
// Multiple bracket groups per entry are supported ("r[1-2]n[01-02]" expands
// to the cross product).
func Expand(expr string) ([]string, error) {
	entries, err := splitTop(expr)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		hosts, err := expandEntry(e)
		if err != nil {
			return nil, err
		}
		out = append(out, hosts...)
	}
	return out, nil
}

// splitTop splits on commas that are not inside brackets.
func splitTop(expr string) ([]string, error) {
	var parts []string
	depth := 0
	start := 0
	for i, c := range expr {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("hostlist: unbalanced ']' at %d in %q", i, expr)
			}
		case ',':
			if depth == 0 {
				parts = append(parts, expr[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("hostlist: unbalanced '[' in %q", expr)
	}
	parts = append(parts, expr[start:])
	var clean []string
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			clean = append(clean, p)
		}
	}
	return clean, nil
}

func expandEntry(entry string) ([]string, error) {
	open := strings.IndexByte(entry, '[')
	if open < 0 {
		if strings.ContainsAny(entry, "]") {
			return nil, fmt.Errorf("hostlist: stray ']' in %q", entry)
		}
		return []string{entry}, nil
	}
	closeIdx := strings.IndexByte(entry[open:], ']')
	if closeIdx < 0 {
		return nil, fmt.Errorf("hostlist: missing ']' in %q", entry)
	}
	closeIdx += open
	prefix := entry[:open]
	group := entry[open+1 : closeIdx]
	rest := entry[closeIdx+1:]

	nums, err := expandGroup(group)
	if err != nil {
		return nil, fmt.Errorf("hostlist: %q: %w", entry, err)
	}
	suffixes, err := expandEntry(rest)
	if err != nil {
		return nil, err
	}
	if rest == "" {
		suffixes = []string{""}
	}
	out := make([]string, 0, len(nums)*len(suffixes))
	for _, n := range nums {
		for _, s := range suffixes {
			out = append(out, prefix+n+s)
		}
	}
	return out, nil
}

func expandGroup(group string) ([]string, error) {
	if group == "" {
		return nil, fmt.Errorf("empty range group")
	}
	var out []string
	for _, r := range strings.Split(group, ",") {
		r = strings.TrimSpace(r)
		lo, hi, ok := strings.Cut(r, "-")
		if !ok {
			if _, err := strconv.Atoi(lo); err != nil {
				return nil, fmt.Errorf("bad number %q", lo)
			}
			out = append(out, lo)
			continue
		}
		loV, err1 := strconv.Atoi(lo)
		hiV, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad range %q", r)
		}
		if hiV < loV {
			return nil, fmt.Errorf("descending range %q", r)
		}
		if hiV-loV > 1<<20 {
			return nil, fmt.Errorf("range %q too large", r)
		}
		width := 0
		if len(lo) > 1 && lo[0] == '0' {
			width = len(lo)
		}
		for v := loV; v <= hiV; v++ {
			if width > 0 {
				out = append(out, fmt.Sprintf("%0*d", width, v))
			} else {
				out = append(out, strconv.Itoa(v))
			}
		}
	}
	return out, nil
}

// Compress produces a compact hostlist expression for the given hosts,
// grouping runs of numerically consecutive suffixes that share a prefix and
// zero-padding width. Expand(Compress(hosts)) returns the hosts in sorted
// order.
func Compress(hosts []string) string {
	type key struct {
		prefix string
		width  int
	}
	groups := make(map[key][]int)
	var loners []string
	var orderedKeys []key
	seen := make(map[key]bool)

	for _, h := range hosts {
		// Split into prefix + trailing digits.
		i := len(h)
		for i > 0 && h[i-1] >= '0' && h[i-1] <= '9' {
			i--
		}
		if i == len(h) {
			loners = append(loners, h)
			continue
		}
		numStr := h[i:]
		n, _ := strconv.Atoi(numStr)
		width := 0
		if len(numStr) > 1 && numStr[0] == '0' {
			width = len(numStr)
		}
		k := key{prefix: h[:i], width: width}
		if !seen[k] {
			seen[k] = true
			orderedKeys = append(orderedKeys, k)
		}
		groups[k] = append(groups[k], n)
	}

	sort.Slice(orderedKeys, func(i, j int) bool {
		if orderedKeys[i].prefix != orderedKeys[j].prefix {
			return orderedKeys[i].prefix < orderedKeys[j].prefix
		}
		return orderedKeys[i].width < orderedKeys[j].width
	})
	sort.Strings(loners)

	var parts []string
	for _, k := range orderedKeys {
		nums := groups[k]
		sort.Ints(nums)
		nums = dedupInts(nums)
		var ranges []string
		for i := 0; i < len(nums); {
			j := i
			for j+1 < len(nums) && nums[j+1] == nums[j]+1 {
				j++
			}
			lo := formatNum(nums[i], k.width)
			if j == i {
				ranges = append(ranges, lo)
			} else {
				ranges = append(ranges, lo+"-"+formatNum(nums[j], k.width))
			}
			i = j + 1
		}
		if len(ranges) == 1 && !strings.Contains(ranges[0], "-") {
			parts = append(parts, k.prefix+ranges[0])
		} else {
			parts = append(parts, k.prefix+"["+strings.Join(ranges, ",")+"]")
		}
	}
	parts = append(parts, loners...)
	return strings.Join(parts, ",")
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func formatNum(n, width int) string {
	if width > 0 {
		return fmt.Sprintf("%0*d", width, n)
	}
	return strconv.Itoa(n)
}
