package rpc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// startCtxServer boots a server with a "slow" method that blocks until its
// handler context expires (reporting whether a deadline arrived at all) and
// an "echo" method.
func startCtxServer(t *testing.T) (addr string, srv *Server) {
	t.Helper()
	srv = NewServer()
	srv.HandleCtx("slow", func(ctx context.Context, req []byte) ([]byte, error) {
		if _, ok := ctx.Deadline(); !ok {
			return []byte("no-deadline"), nil
		}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	srv.Handle("echo", func(req []byte) ([]byte, error) { return req, nil })
	srv.Handle("hang", func(req []byte) ([]byte, error) {
		time.Sleep(1500 * time.Millisecond) // Server.Close drains this, keep it short
		return []byte("late"), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func TestCallContextDeadlineUnblocksClient(t *testing.T) {
	addr, _ := startCtxServer(t)
	c := Dial(addr)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.CallContext(ctx, "slow", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not unblock the call: took %v", elapsed)
	}
}

func TestCallContextDeadlineReachesHandler(t *testing.T) {
	addr, _ := startCtxServer(t)
	c := Dial(addr)
	defer c.Close()

	// Without a deadline the slow handler answers immediately, proving the
	// budget field is what arms it.
	resp, err := c.Call("slow", nil)
	if err != nil || string(resp) != "no-deadline" {
		t.Fatalf("want no-deadline, got %q err=%v", resp, err)
	}

	// With a deadline the handler blocks until its context expires and
	// returns the context error over the wire; a generous client budget
	// (2x) keeps the failure on the server side.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = c.CallContext(ctx, "slow", nil)
	if err == nil {
		t.Fatalf("want an error from the deadline-armed handler")
	}
}

func TestCallContextCancelMidCall(t *testing.T) {
	addr, _ := startCtxServer(t)
	c := Dial(addr)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.CallContext(ctx, "hang", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancel did not unblock the call: took %v", elapsed)
	}
}

func TestCallContextExpiredBeforeSend(t *testing.T) {
	addr, _ := startCtxServer(t)
	c := Dial(addr)
	defer c.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := c.CallContext(ctx, "echo", []byte("x")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestCallContextPoolReuseAfterSuccess(t *testing.T) {
	addr, _ := startCtxServer(t)
	c := Dial(addr)
	defer c.Close()

	// A successful deadline-bearing call must clear the conn deadline before
	// pooling, or the next (slow but legitimate) call on the reused conn
	// would be killed by the stale timer.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	if _, err := c.CallContext(ctx, "echo", []byte("a")); err != nil {
		t.Fatalf("first call: %v", err)
	}
	cancel()
	time.Sleep(250 * time.Millisecond) // let the stale deadline (if any) pass
	if resp, err := c.Call("echo", []byte("b")); err != nil || string(resp) != "b" {
		t.Fatalf("pooled reuse: got %q err=%v", resp, err)
	}
}
