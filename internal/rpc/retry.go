package rpc

import (
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"net"
	"syscall"
	"time"
)

// Bounded retry with exponential backoff for transient transport errors.
// The elastic training path leans on this: a task that was kill -9'd and
// restarted answers on its old address after a short gap, during which every
// dial gets ECONNREFUSED. Retrying those — and only those — lets health
// probes and re-init RPCs ride through the gap without masking real
// failures: a handler error (RemoteError) or a cancelled context is final on
// the first attempt.

// RetryPolicy bounds a retry loop: at most Attempts tries, sleeping an
// exponentially growing, jittered backoff (Base doubling per attempt, capped
// at Max) between them.
type RetryPolicy struct {
	Attempts int
	Base     time.Duration
	Max      time.Duration
}

// DefaultRetry is the policy used when a zero RetryPolicy is supplied:
// 5 attempts spanning roughly half a second of backoff.
var DefaultRetry = RetryPolicy{Attempts: 5, Base: 25 * time.Millisecond, Max: 2 * time.Second}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetry.Attempts
	}
	if p.Base <= 0 {
		p.Base = DefaultRetry.Base
	}
	if p.Max <= 0 {
		p.Max = DefaultRetry.Max
	}
	return p
}

// Backoff returns the sleep before retry `attempt` (1-based: the sleep after
// the attempt-th failure): Base << (attempt-1), capped at Max, with uniform
// jitter in [0.5, 1.0) of the capped value so synchronised probers de-phase.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base
	for i := 1; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	return d/2 + rand.N(d/2)
}

// IsTransient reports whether err is worth retrying: connection-level
// failures that a restarting peer produces (refused, reset, broken pipe,
// timeouts, torn connections). Handler-level errors (RemoteError) and
// context cancellation are never transient — the call reached a live server
// or the caller gave up.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if IsRemote(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// CallRetry issues CallContext under the policy, retrying transient errors
// with backoff until the attempts run out or ctx ends. The last error is
// returned; non-transient errors return immediately.
func (c *Client) CallRetry(ctx context.Context, method string, req []byte, pol RetryPolicy) ([]byte, error) {
	pol = pol.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		var resp []byte
		resp, err = c.CallContext(ctx, method, req)
		if err == nil || !IsTransient(err) || attempt >= pol.Attempts {
			return resp, err
		}
		select {
		case <-time.After(pol.Backoff(attempt)):
		case <-ctx.Done():
			return nil, err
		}
	}
}
