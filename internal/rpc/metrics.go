package rpc

import "tfhpc/internal/telemetry"

// Registry handles for the transport tier, resolved once at package init so
// the per-call and per-frame paths pay one atomic op each — the stream
// credit-stall pair is only touched on the already-blocked branch of Send,
// keeping the chunk-relay AllocsPerRun==0 gate intact.
var (
	mCalls = telemetry.NewCounter("tfhpc_rpc_calls_total",
		"Client rpc calls issued (per attempt, including pooled-conn retries).")
	mCallErrors = telemetry.NewCounter("tfhpc_rpc_call_errors_total",
		"Client rpc calls that returned an error (transport or remote).")
	mServed = telemetry.NewCounter("tfhpc_rpc_served_total",
		"Calls dispatched by the rpc server.")
	mCreditStalls = telemetry.NewCounter("tfhpc_stream_credit_stalls_total",
		"Stream sends that blocked on an exhausted flow-control window.")
	mCreditStallSeconds = telemetry.NewHistogram("tfhpc_stream_credit_stall_seconds",
		"Time stream sends spent blocked waiting for credit.", telemetry.DurationBuckets)
)
