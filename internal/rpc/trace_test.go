package rpc

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"tfhpc/internal/telemetry"
)

// TestTraceIDsRideTheFrame round-trips the request encoding with and
// without a span context (wire-format compatibility: untraced frames carry
// no trace fields at all).
func TestTraceIDsRideTheFrame(t *testing.T) {
	sc := telemetry.SpanContext{Trace: 0xabc, Span: 0xdef}
	frame := encodeRequest("M", []byte("payload"), 5*time.Millisecond, sc)
	method, req, budget, got, err := decodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if method != "M" || string(req) != "payload" || budget != 5*time.Millisecond {
		t.Fatalf("frame fields corrupted: %q %q %v", method, req, budget)
	}
	if got != sc {
		t.Fatalf("span context %+v, want %+v", got, sc)
	}

	bare := encodeRequest("M", nil, 0, telemetry.SpanContext{})
	if len(bare) >= len(frame) {
		t.Fatal("untraced frame is not smaller — trace fields written unconditionally")
	}
	if _, _, _, got, err = decodeRequest(bare); err != nil || got.Valid() {
		t.Fatalf("untraced frame decoded sc=%+v err=%v", got, err)
	}
}

// TestTracePropagationTwoProcesses proves the ids survive a real process
// boundary: a helper process (this test binary re-exec'd) serves an rpc
// method whose handler reports the span context it observed; the parent
// calls it with tracing enabled and requires the handler's span to be in
// the caller's trace with a non-zero parent.
func TestTracePropagationTwoProcesses(t *testing.T) {
	if os.Getenv("TFHPC_RPC_TRACE_HELPER") == "1" {
		runTraceHelper()
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "TestTracePropagationTwoProcesses$")
	cmd.Env = append(os.Environ(), "TFHPC_RPC_TRACE_HELPER=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		stdin.Close()
		cmd.Wait()
	}()

	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "HELPER_ADDR "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatal("helper never reported its address")
	}

	telemetry.Enable()
	root := telemetry.StartRoot("client_request")
	defer root.End()
	ctx, cancel := context.WithTimeout(telemetry.ContextWith(context.Background(), root), 5*time.Second)
	defer cancel()

	c := Dial(addr)
	defer c.Close()
	resp, err := c.CallContext(ctx, "TraceProbe", nil)
	if err != nil {
		t.Fatal(err)
	}
	var gotTrace, gotSpan, gotParent uint64
	if _, err := fmt.Sscanf(string(resp), "%d %d %d", &gotTrace, &gotSpan, &gotParent); err != nil {
		t.Fatalf("bad helper response %q: %v", resp, err)
	}
	if gotTrace != root.Context().Trace {
		t.Fatalf("server saw trace %#x, caller's is %#x — ids did not cross the process boundary", gotTrace, root.Context().Trace)
	}
	if gotSpan == 0 || gotSpan == root.Context().Span {
		t.Fatalf("server span id %#x invalid (root %#x)", gotSpan, root.Context().Span)
	}
	if gotParent == 0 {
		t.Fatal("server span has no parent — the call span id was dropped on the wire")
	}
}

// runTraceHelper is the child-process half: an rpc server whose handler
// echoes the span context it received. It exits when stdin closes.
func runTraceHelper() {
	telemetry.Enable()
	srv := NewServer()
	srv.HandleCtx("TraceProbe", func(ctx context.Context, _ []byte) ([]byte, error) {
		s := telemetry.SpanFromContext(ctx)
		sc := s.Context()
		return []byte(fmt.Sprintf("%d %d %d", sc.Trace, sc.Span, s.Parent())), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("HELPER_ADDR %s\n", addr)
	// Block until the parent hangs up.
	buf := make([]byte, 1)
	for {
		if _, err := os.Stdin.Read(buf); err != nil {
			break
		}
	}
	srv.Close()
	os.Exit(0)
}
