package rpc

import (
	"net"
	"sync"
	"testing"
	"time"
)

// TestClientCloseAbortsInFlightCall: a call blocked on a peer that never
// responds must fail when the client closes, not hang — the collective
// teardown path cascades failures through exactly this.
func TestClientCloseAbortsInFlightCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and stay silent
		}
	}()
	c := Dial(ln.Addr().String())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call("Never", nil)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call to a silent peer succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Client.Close did not abort the in-flight call")
	}
}

// TestCloseDrainsInFlight: a call running when Close begins must finish and
// get its response; Close returns only after it.
func TestCloseDrainsInFlight(t *testing.T) {
	s := NewServer()
	started := make(chan struct{})
	release := make(chan struct{})
	s.Handle("Slow", func([]byte) ([]byte, error) {
		close(started)
		<-release
		return []byte("done"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	defer c.Close()

	type result struct {
		resp []byte
		err  error
	}
	callDone := make(chan result, 1)
	go func() {
		resp, err := c.Call("Slow", nil)
		callDone <- result{resp, err}
	}()
	<-started

	closeDone := make(chan struct{})
	go func() {
		s.Close()
		close(closeDone)
	}()
	// Close must be draining, not done, while the handler is blocked.
	select {
	case <-closeDone:
		t.Fatal("Close returned while a call was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case r := <-callDone:
		if r.err != nil {
			t.Fatalf("in-flight call failed during drain: %v", r.err)
		}
		if string(r.resp) != "done" {
			t.Fatalf("in-flight call got %q", r.resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed")
	}
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after drain")
	}
}

// TestCloseWithIdleClientConns: clients pool idle keepalive connections;
// Close must cut them instead of waiting for the peer to hang up.
func TestCloseWithIdleClientConns(t *testing.T) {
	s := NewServer()
	s.Handle("Ping", func([]byte) ([]byte, error) { return []byte("pong"), nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	defer c.Close()
	if _, err := c.Call("Ping", nil); err != nil {
		t.Fatal(err)
	}
	// The connection is now idle in the client pool; Close must still return.
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an idle pooled connection")
	}
}

// TestCallsAfterCloseRejected: calls racing shutdown get an error, not a
// hang, and concurrent traffic never panics the server.
func TestCallsAfterCloseRejected(t *testing.T) {
	s := NewServer()
	s.Handle("Ping", func([]byte) ([]byte, error) { return []byte("pong"), nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := Dial(addr)
			defer c.Close()
			for j := 0; j < 50; j++ {
				if _, err := c.Call("Ping", nil); err != nil {
					return // shutdown reached this client
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	s.Close()
	wg.Wait()
	if _, err := Dial(addr).Call("Ping", nil); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}
