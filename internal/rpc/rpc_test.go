package rpc

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func startEcho(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	s.Handle("Echo", func(req []byte) ([]byte, error) {
		return req, nil
	})
	s.Handle("Fail", func(req []byte) ([]byte, error) {
		return nil, fmt.Errorf("deliberate failure: %s", req)
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := Dial(addr)
	t.Cleanup(c.Close)
	return s, c
}

func TestEchoRoundTrip(t *testing.T) {
	_, c := startEcho(t)
	payload := []byte("hello tensors")
	got, err := c.Call("Echo", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo = %q", got)
	}
	// Empty payload.
	got, err = c.Call("Echo", nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty echo: %v %v", got, err)
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	_, c := startEcho(t)
	_, err := c.Call("Fail", []byte("because"))
	if err == nil || !strings.Contains(err.Error(), "deliberate failure: because") {
		t.Fatalf("err = %v", err)
	}
	// Connection still usable after a remote error.
	if _, err := c.Call("Echo", []byte("x")); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, c := startEcho(t)
	_, err := c.Call("Nope", nil)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, c := startEcho(t)
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			got, err := c.Call("Echo", msg)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- fmt.Errorf("mismatch: %q vs %q", got, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLargePayload(t *testing.T) {
	_, c := startEcho(t)
	big := bytes.Repeat([]byte{0xAB}, 8<<20) // 8 MB
	got, err := c.Call("Echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large payload corrupted")
	}
}

func TestMultipleClients(t *testing.T) {
	s := NewServer()
	var mu sync.Mutex
	count := 0
	s.Handle("Inc", func([]byte) ([]byte, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		c := Dial(addr)
		if _, err := c.Call("Inc", nil); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
}

func TestCallAfterClose(t *testing.T) {
	_, c := startEcho(t)
	c.Close()
	if _, err := c.Call("Echo", nil); err == nil {
		t.Fatal("call after close should error")
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewServer()
	s.Handle("X", func([]byte) ([]byte, error) { return nil, nil })
	s.Handle("X", func([]byte) ([]byte, error) { return nil, nil })
}
