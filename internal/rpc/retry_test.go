package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	pol := RetryPolicy{Attempts: 8, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	prevCap := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		want := pol.Base << (attempt - 1)
		if want > pol.Max {
			want = pol.Max
		}
		for i := 0; i < 32; i++ {
			d := pol.Backoff(attempt)
			if d < want/2 || d >= want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, want/2, want)
			}
		}
		if want < prevCap {
			t.Fatalf("attempt %d: cap %v shrank from %v", attempt, want, prevCap)
		}
		prevCap = want
	}
}

func TestIsTransient(t *testing.T) {
	transient := []error{
		syscall.ECONNREFUSED,
		syscall.ECONNRESET,
		syscall.EPIPE,
		io.EOF,
		io.ErrUnexpectedEOF,
		&net.OpError{Op: "dial", Err: errors.New("no route")},
		fmt.Errorf("rpc: wrapped: %w", syscall.ECONNREFUSED),
	}
	for _, err := range transient {
		if !IsTransient(err) {
			t.Errorf("IsTransient(%v) = false, want true", err)
		}
	}
	final := []error{
		nil,
		&RemoteError{Msg: "no such method"},
		context.Canceled,
		context.DeadlineExceeded,
		errors.New("some application error"),
	}
	for _, err := range final {
		if IsTransient(err) {
			t.Errorf("IsTransient(%v) = true, want false", err)
		}
	}
}

// TestCallRetryRidesThroughRestart is the elastic scenario: the server is
// not listening when the first calls go out (connection refused), comes up
// shortly after, and the retrying call succeeds without caller-side polling.
func TestCallRetryRidesThroughRestart(t *testing.T) {
	// Reserve an address, then close it so the first dials are refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	srv := NewServer()
	srv.Handle("Echo", func(req []byte) ([]byte, error) { return req, nil })
	go func() {
		time.Sleep(60 * time.Millisecond)
		srv.Listen(addr) // port raced away → the call below fails the test
	}()
	defer srv.Close()

	c := Dial(addr)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := c.CallRetry(ctx, "Echo", []byte("ping"), RetryPolicy{Attempts: 10, Base: 20 * time.Millisecond, Max: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("CallRetry: %v", err)
	}
	if string(resp) != "ping" {
		t.Fatalf("CallRetry = %q, want %q", resp, "ping")
	}
}

// TestCallRetryStopsOnRemoteError: handler errors reached a live server and
// must not be retried.
func TestCallRetryStopsOnRemoteError(t *testing.T) {
	srv := NewServer()
	calls := 0
	srv.Handle("Fail", func(req []byte) ([]byte, error) {
		calls++
		return nil, errors.New("boom")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := Dial(addr)
	defer c.Close()
	_, err = c.CallRetry(context.Background(), "Fail", nil, RetryPolicy{Attempts: 5, Base: time.Millisecond, Max: time.Millisecond})
	if !IsRemote(err) {
		t.Fatalf("err = %v, want remote error", err)
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1 (no retry on remote error)", calls)
	}
}

// TestCallRetryGivesUp: attempts are bounded when the peer never appears.
func TestCallRetryGivesUp(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	c := Dial(addr)
	defer c.Close()
	start := time.Now()
	_, err = c.CallRetry(context.Background(), "Echo", nil, RetryPolicy{Attempts: 3, Base: 5 * time.Millisecond, Max: 10 * time.Millisecond})
	if err == nil {
		t.Fatal("CallRetry succeeded against a dead address")
	}
	if !IsTransient(err) {
		t.Fatalf("final error %v should still be the transient dial failure", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("bounded retry took %v", el)
	}
}
