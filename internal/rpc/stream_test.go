package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer registers a stream echo handler and returns the server, its
// address, and a connected client.
func echoServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer()
	srv.HandleStream("echo", func(s *Stream) error {
		var buf []byte
		for {
			b, err := s.Recv(buf)
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			buf = b
			if err := s.Send(b); err != nil {
				return err
			}
		}
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	return srv, c
}

func TestStreamEcho(t *testing.T) {
	_, c := echoServer(t)
	st, err := c.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	var recv []byte
	for i := 0; i < 100; i++ {
		msg := []byte(fmt.Sprintf("message %d with some padding", i))
		if err := st.Send(msg); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		recv, err = st.Recv(recv)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(recv, msg) {
			t.Fatalf("echo %d mismatch: got %q want %q", i, recv, msg)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(nil); err != io.EOF {
		t.Fatalf("after half-close: recv err = %v, want EOF", err)
	}
}

// TestStreamLargeFrames pushes frames from sub-credit counts through
// multiples of the flow-control window, with payloads crossing buffer size
// classes.
func TestStreamLargeFrames(t *testing.T) {
	_, c := echoServer(t)
	st, err := c.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{0, 1, 255, 256, 4096, 1 << 16, 1 << 20}
	var recv []byte
	for i, n := range sizes {
		msg := bytes.Repeat([]byte{byte(i + 1)}, n)
		if err := st.Send(msg); err != nil {
			t.Fatalf("send %d bytes: %v", n, err)
		}
		recv, err = st.Recv(recv)
		if err != nil {
			t.Fatalf("recv %d bytes: %v", n, err)
		}
		if !bytes.Equal(recv, msg) {
			t.Fatalf("payload %d bytes corrupted", n)
		}
	}
}

// TestStreamFlowControl: a sender must be able to put far more than one
// credit window in flight while the receiver drains slowly, without loss,
// reordering, or deadlock.
func TestStreamFlowControl(t *testing.T) {
	srv := NewServer()
	const total = 10 * streamWindow
	srv.HandleStream("drip", func(s *Stream) error {
		var buf []byte
		for i := 0; i < total; i++ {
			b, err := s.Recv(buf)
			if err != nil {
				return err
			}
			buf = b
			if len(b) != 8 || b[0] != byte(i) {
				return fmt.Errorf("frame %d: got len %d first byte %d", i, len(b), b[0])
			}
			if i%streamWindow == 0 {
				time.Sleep(time.Millisecond) // keep the window closing
			}
		}
		return s.Send([]byte("done"))
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := Dial(addr)
	defer c.Close()
	st, err := c.OpenStream("drip")
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 8)
	for i := 0; i < total; i++ {
		msg[0] = byte(i)
		if err := st.Send(msg); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	out, err := st.Recv(nil)
	if err != nil || string(out) != "done" {
		t.Fatalf("final recv = %q, %v", out, err)
	}
}

// TestStreamConcurrent runs many streams over one client (hence one shared
// connection) in parallel; each must see only its own frames.
func TestStreamConcurrent(t *testing.T) {
	_, c := echoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st, err := c.OpenStream("echo")
			if err != nil {
				errs <- err
				return
			}
			defer st.Close()
			var recv []byte
			for i := 0; i < 50; i++ {
				msg := []byte(fmt.Sprintf("g%d/i%d", g, i))
				if err := st.Send(msg); err != nil {
					errs <- err
					return
				}
				recv, err = st.Recv(recv)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(recv, msg) {
					errs <- fmt.Errorf("stream %d: cross-talk: got %q want %q", g, recv, msg)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStreamHandlerError: a handler returning an error resets the stream
// and the text reaches the peer.
func TestStreamHandlerError(t *testing.T) {
	srv := NewServer()
	srv.HandleStream("fail", func(s *Stream) error {
		if _, err := s.Recv(nil); err != nil {
			return err
		}
		return errors.New("deliberate failure")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := Dial(addr)
	defer c.Close()
	st, err := c.OpenStream("fail")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send([]byte("go")); err != nil {
		t.Fatal(err)
	}
	_, err = st.Recv(nil)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("recv err = %v, want the handler's reset text", err)
	}
	// The send side fails too.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err = st.Send([]byte("x")); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("send kept succeeding after reset")
	}
}

// TestStreamNoHandler: opening an unregistered method resets promptly.
func TestStreamNoHandler(t *testing.T) {
	_, c := echoServer(t)
	st, err := c.OpenStream("nosuch")
	if err != nil {
		t.Fatal(err) // OPEN is async; the reset arrives on first use
	}
	if _, err := st.Recv(nil); err == nil || !strings.Contains(err.Error(), "no stream handler") {
		t.Fatalf("recv err = %v, want no-handler reset", err)
	}
}

// TestStreamRecvDeadline: a Recv with nothing arriving must time out, and
// the stream must still deliver frames that arrive afterwards.
func TestStreamRecvDeadline(t *testing.T) {
	srv := NewServer()
	release := make(chan struct{})
	srv.HandleStream("slow", func(s *Stream) error {
		<-release
		return s.Send([]byte("late"))
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := Dial(addr)
	defer c.Close()
	st, err := c.OpenStream("slow")
	if err != nil {
		t.Fatal(err)
	}
	st.SetRecvDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := st.Recv(nil); err != ErrStreamTimeout {
		t.Fatalf("recv err = %v, want ErrStreamTimeout", err)
	}
	close(release)
	st.SetRecvDeadline(time.Now().Add(5 * time.Second))
	out, err := st.Recv(nil)
	if err != nil || string(out) != "late" {
		t.Fatalf("post-timeout recv = %q, %v", out, err)
	}
}

// TestStreamServerClose: closing the server unblocks clients mid-recv with
// an error rather than hanging them.
func TestStreamServerClose(t *testing.T) {
	srv := NewServer()
	srv.HandleStream("hang", func(s *Stream) error {
		_, err := s.Recv(nil) // never fed; blocks until teardown
		return err
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := Dial(addr)
	defer c.Close()
	st, err := c.OpenStream("hang")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := st.Recv(nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("recv returned nil after server close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("recv hung through server close")
	}
}

// TestStreamReopenAfterConnLoss: after the mux connection dies, the next
// OpenStream on the same client must transparently re-dial.
func TestStreamReopenAfterConnLoss(t *testing.T) {
	srv, c := echoServer(t)
	st, err := c.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	// Kill every server-side conn out from under the client.
	srv.mu.Lock()
	for conn := range srv.conns {
		conn.Close()
	}
	srv.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := st.Send([]byte("x")); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st2, err := c.OpenStream("echo")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := st2.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	out, err := st2.Recv(nil)
	if err != nil || string(out) != "hello" {
		t.Fatalf("post-redial echo = %q, %v", out, err)
	}
}

// TestStreamCallsCoexist: ordinary calls on the same client keep working
// while streams are active (they use separate pooled connections).
func TestStreamCallsCoexist(t *testing.T) {
	srv, c := echoServer(t)
	srv.Handle("ping", func(req []byte) ([]byte, error) { return req, nil })
	st, err := c.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send([]byte("s")); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Call("ping", []byte("c"))
	if err != nil || string(resp) != "c" {
		t.Fatalf("call = %q, %v", resp, err)
	}
	out, err := st.Recv(nil)
	if err != nil || string(out) != "s" {
		t.Fatalf("stream echo = %q, %v", out, err)
	}
}

// TestStreamEchoAllocs is the zero-alloc gate on the rpc layer itself: a
// steady-state Send/Recv round-trip (client and server loops both hot) must
// not allocate on either side.
func TestStreamEchoAllocs(t *testing.T) {
	_, c := echoServer(t)
	st, err := c.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 1024)
	recv := make([]byte, 0, 2048)
	// Warm up: fill buffer pools, grow scratch, settle credit exchange.
	for i := 0; i < 3*streamWindow; i++ {
		if err := st.Send(msg); err != nil {
			t.Fatal(err)
		}
		if recv, err = st.Recv(recv); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := st.Send(msg); err != nil {
			t.Fatal(err)
		}
		recv, err = st.Recv(recv)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("stream echo round-trip allocates %.2f/op, want 0", allocs)
	}
}

// BenchmarkStreamEcho and BenchmarkCallEcho compare one message round-trip
// over a persistent stream against a pooled-connection call — the per-chunk
// cost the collective transport pays in each mode.
func BenchmarkStreamEcho(b *testing.B) {
	srv := NewServer()
	srv.HandleStream("echo", func(s *Stream) error {
		var buf []byte
		for {
			bb, err := s.Recv(buf)
			if err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
			buf = bb
			if err := s.Send(bb); err != nil {
				return err
			}
		}
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := Dial(addr)
	defer c.Close()
	st, err := c.OpenStream("echo")
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 4096)
	var recv []byte
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := st.Send(msg); err != nil {
			b.Fatal(err)
		}
		if recv, err = st.Recv(recv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallEcho(b *testing.B) {
	srv := NewServer()
	srv.Handle("echo", func(req []byte) ([]byte, error) { return req, nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := Dial(addr)
	defer c.Close()
	msg := make([]byte, 4096)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("echo", msg); err != nil {
			b.Fatal(err)
		}
	}
}
