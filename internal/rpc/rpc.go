// Package rpc is the runtime's service-client layer: length-framed binary
// messages (internal/wire) over TCP, with a method-dispatching server and a
// connection-pooling client. It fills the role gRPC plays in TensorFlow —
// including staying responsible for "administrative purposes" (connection
// establishment, health checks) even when tensor payloads notionally ride a
// faster transport, exactly as the paper describes.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tfhpc/internal/telemetry"
	"tfhpc/internal/wire"
)

// Handler serves one method: decode request, act, encode response.
type Handler func(req []byte) ([]byte, error)

// CtxHandler is a deadline-aware handler: ctx carries the caller's remaining
// per-call budget (propagated in the request frame), so slow work can stop
// instead of computing an answer nobody is waiting for.
type CtxHandler func(ctx context.Context, req []byte) ([]byte, error)

// Server listens on a TCP address and dispatches framed calls to handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[string]CtxHandler
	streams  map[string]StreamHandler
	ln       net.Listener
	closed   bool
	wg       sync.WaitGroup
	conns    map[net.Conn]struct{}
	inflight sync.WaitGroup // calls between request decode and response write
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]CtxHandler),
		streams:  make(map[string]StreamHandler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Handle registers a method. Must be called before Serve.
func (s *Server) Handle(method string, h Handler) {
	s.HandleCtx(method, func(_ context.Context, req []byte) ([]byte, error) { return h(req) })
}

// HandleCtx registers a deadline-aware method: the handler's context expires
// when the caller's per-call deadline (CallContext) does.
func (s *Server) HandleCtx(method string, h CtxHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler %q", method))
	}
	s.handlers[method] = h
}

// Listen binds the address (use "127.0.0.1:0" for tests) and starts the
// accept loop in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles calls sequentially per connection (clients open one
// connection per in-flight call stream).
func (s *Server) serveConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		// Register the call as in-flight (unless shutdown already started,
		// in which case it is rejected) so Close can drain active work —
		// including the response write — before tearing connections down.
		s.mu.Lock()
		rejected := s.closed
		if !rejected {
			s.inflight.Add(1)
		}
		s.mu.Unlock()
		var resp []byte
		var callErr error
		if rejected {
			callErr = errors.New("rpc: server shutting down")
		} else {
			method, req, budget, sc, err := decodeRequest(frame)
			if err != nil {
				callErr = err
			} else if method == muxMethod {
				// Stream handshake: acknowledge, then hand the connection to
				// the multiplexer for the rest of its life.
				werr := wire.WriteFrame(conn, encodeResponse(nil, nil))
				s.inflight.Done()
				if werr != nil {
					return
				}
				newMux(conn, s).readLoop()
				return
			} else {
				s.mu.Lock()
				h, ok := s.handlers[method]
				s.mu.Unlock()
				if !ok {
					callErr = fmt.Errorf("rpc: no handler for %q", method)
				} else {
					mServed.Inc()
					ctx := context.Background()
					// A caller that propagated trace ids gets a server-side
					// span parented to its call span; the handler's context
					// carries it so nested calls extend the same trace.
					var span *telemetry.Span
					if sc.Valid() {
						span = telemetry.StartChild(sc, "rpc_serve").Arg("method", method)
						span.FlowIn(sc.Span)
						ctx = telemetry.ContextWith(ctx, span)
					}
					if budget > 0 {
						var cancel context.CancelFunc
						ctx, cancel = context.WithTimeout(ctx, budget)
						resp, callErr = invoke(h, ctx, req)
						cancel()
					} else {
						resp, callErr = invoke(h, ctx, req)
					}
					span.End()
				}
			}
		}
		err = wire.WriteFrame(conn, encodeResponse(resp, callErr))
		if !rejected {
			s.inflight.Done()
		}
		if err != nil {
			return
		}
	}
}

// invoke runs one handler, converting a panic into a call error: a server
// hosts many subsystems' methods (ops, collectives, serving), and one
// malformed request must fail its own call, not the whole task.
func invoke(h CtxHandler, ctx context.Context, req []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rpc: handler panic: %v", r)
		}
	}()
	return h(ctx, req)
}

// Close drains then stops the server: it closes the listener, rejects calls
// that arrive from here on, waits for every in-flight call to finish and
// have its response written, then force-closes the connections (clients
// pool idle keepalives, so waiting for them to hang up would block forever)
// and joins the serving goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.inflight.Wait()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Request frame: field 1 = method, field 2 = payload, field 3 = remaining
// per-call budget in microseconds (0/absent = no deadline), fields 4/5 =
// trace and span id of the caller's span (absent when untraced). The budget
// is a duration, not an absolute time, so peers need no clock agreement;
// the trace ids ride the frame the same way, so one request renders as one
// cross-process trace.
func encodeRequest(method string, req []byte, budget time.Duration, sc telemetry.SpanContext) []byte {
	e := wire.NewEncoder()
	e.String(1, method)
	e.BytesField(2, req)
	if budget > 0 {
		e.Uint(3, uint64(budget/time.Microsecond))
	}
	if sc.Valid() {
		e.Uint(4, sc.Trace)
		e.Uint(5, sc.Span)
	}
	return e.Bytes()
}

func decodeRequest(frame []byte) (method string, req []byte, budget time.Duration, sc telemetry.SpanContext, err error) {
	d := wire.NewDecoder(frame)
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", nil, 0, sc, err
		}
		switch f {
		case 1:
			if method, err = d.StringVal(); err != nil {
				return "", nil, 0, sc, err
			}
		case 2:
			if req, err = d.Bytes(); err != nil {
				return "", nil, 0, sc, err
			}
		case 3:
			us, err := d.Uint()
			if err != nil {
				return "", nil, 0, sc, err
			}
			budget = time.Duration(us) * time.Microsecond
		case 4:
			if sc.Trace, err = d.Uint(); err != nil {
				return "", nil, 0, sc, err
			}
		case 5:
			if sc.Span, err = d.Uint(); err != nil {
				return "", nil, 0, sc, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return "", nil, 0, sc, err
			}
		}
	}
	if method == "" {
		return "", nil, 0, sc, errors.New("rpc: request missing method")
	}
	return method, req, budget, sc, nil
}

// Response frame: field 1 = error string (empty = ok), field 2 = payload.
func encodeResponse(resp []byte, err error) []byte {
	e := wire.NewEncoder()
	if err != nil {
		e.String(1, err.Error())
	}
	e.BytesField(2, resp)
	return e.Bytes()
}

func decodeResponse(frame []byte) ([]byte, error) {
	d := wire.NewDecoder(frame)
	var payload []byte
	var remoteErr string
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			if remoteErr, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 2:
			if payload, err = d.Bytes(); err != nil {
				return nil, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
		}
	}
	if remoteErr != "" {
		return nil, &RemoteError{Msg: remoteErr}
	}
	return payload, nil
}

// RemoteError is an application-level failure reported by the remote
// handler: the transport round-trip succeeded, so retrying the same request
// on another replica of the same service will fail the same way. Callers
// (the serving router) use this to separate failover-worthy transport
// errors from deterministic application errors.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// IsRemote reports whether err is (or wraps) a remote application error.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Client issues calls to one server address. Connections are pooled so
// concurrent calls (e.g. a blocking Dequeue alongside an Enqueue) each get
// their own stream. Close aborts in-flight calls too: every open connection
// — idle or mid-call — is tracked and torn down, so a Call blocked on an
// unresponsive peer returns an error instead of pinning its caller (the
// collective teardown path relies on this to cascade failures).
type Client struct {
	addr string
	mu   sync.Mutex
	idle []net.Conn
	live map[net.Conn]struct{}
	smux *mux // lazily established stream multiplexer (stream.go)
	down bool
}

// Dial creates a client for the address; connections open lazily.
func Dial(addr string) *Client {
	return &Client{addr: addr, live: make(map[net.Conn]struct{})}
}

// Call sends one request and waits for the response (no deadline).
func (c *Client) Call(method string, req []byte) ([]byte, error) {
	return c.CallContext(context.Background(), method, req)
}

// CallContext sends one request bounded by ctx: the remaining budget rides
// in the frame header (so the server's handler context expires with ours)
// and, if ctx fires before the response lands, the connection is torn down —
// unblocking the pending read — and ctx's error is returned. This is how
// serving request timeouts propagate instead of blocking forever on a
// stuck or partitioned peer.
func (c *Client) CallContext(ctx context.Context, method string, req []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var budget time.Duration
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			return nil, context.DeadlineExceeded
		}
	}
	for {
		resp, retry, err := c.callOnce(ctx, method, req, budget)
		if retry && ctx.Err() == nil {
			continue
		}
		return resp, err
	}
}

// callOnce performs one request exchange. retry=true means the request never
// left this process because a pooled connection turned out dead (its peer
// restarted since the pool filled) — the caller re-issues on a fresh dial.
func (c *Client) callOnce(ctx context.Context, method string, req []byte, budget time.Duration) (resp []byte, retry bool, err error) {
	mCalls.Inc()
	defer func() {
		if err != nil {
			mCallErrors.Inc()
		}
	}()
	// When the caller's context carries a span, this attempt becomes a child
	// whose ids ride the frame; the server parents its handler span to it,
	// and the flow pair draws the cross-process arrow.
	span := telemetry.SpanFromContext(ctx).Child("rpc_call").Arg("method", method)
	defer span.End()
	sc := span.Context()
	conn, pooled, err := c.conn(ctx)
	if err != nil {
		return nil, false, err
	}
	// The exchange owns conn exclusively, so interrupting it via the conn's
	// I/O deadline is race-free (closing it would race with the pool). A
	// watcher pokes the deadline into the past on early cancellation.
	if budget > 0 {
		if err := conn.SetDeadline(time.Now().Add(budget)); err != nil {
			c.discard(conn)
			return nil, false, fmt.Errorf("rpc: arm call deadline: %w", err)
		}
	}
	var stop, wdone chan struct{}
	if ctx.Done() != nil {
		stop, wdone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(wdone)
			select {
			case <-ctx.Done():
				if err := conn.SetDeadline(time.Unix(1, 0)); err != nil {
					// Can't interrupt via deadline (conn already dying);
					// close it so the blocked read unblocks regardless.
					conn.Close()
				}
			case <-stop:
			}
		}()
	}
	wrote := false
	span.FlowOut(sc.Span)
	frame, ioErr := func() ([]byte, error) {
		if err := wire.WriteFrame(conn, encodeRequest(method, req, budget, sc)); err != nil {
			return nil, err
		}
		wrote = true
		return wire.ReadFrame(conn)
	}()
	if stop != nil {
		close(stop)
		<-wdone
	}
	if ioErr != nil {
		// A half-done stream cannot be reused.
		c.discard(conn)
		if pooled {
			// A dead pooled conn means the peer went away since the pool
			// filled; its siblings in the pool are from the same incarnation
			// and just as dead. Flush them so the next attempt dials fresh
			// instead of burning one corpse per call.
			c.flushIdle()
		}
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		if budget > 0 {
			if ne, ok := ioErr.(net.Error); ok && ne.Timeout() {
				return nil, false, context.DeadlineExceeded
			}
		}
		return nil, pooled && !wrote, ioErr
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		// The response is in hand but the conn can't be re-armed: answer the
		// call, just don't pool the connection.
		c.discard(conn)
	} else {
		c.put(conn)
	}
	resp, err = decodeResponse(frame)
	return resp, false, err
}

func (c *Client) conn(ctx context.Context) (net.Conn, bool, error) {
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return nil, false, errors.New("rpc: client closed")
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, true, nil
	}
	c.mu.Unlock()
	// DialContext so the per-call deadline bounds connection establishment
	// too — a SYN-blackholing peer must fail the call at the deadline, not
	// after the OS connect timeout.
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		conn.Close()
		return nil, false, errors.New("rpc: client closed")
	}
	c.live[conn] = struct{}{}
	c.mu.Unlock()
	return conn, false, nil
}

// flushIdle closes every pooled connection. Called when one of them turns
// out dead mid-call: the rest were opened to the same (gone) incarnation.
func (c *Client) flushIdle() {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	for _, conn := range idle {
		delete(c.live, conn)
	}
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
}

// discard drops a broken connection from tracking and closes it.
func (c *Client) discard(conn net.Conn) {
	c.mu.Lock()
	delete(c.live, conn)
	c.mu.Unlock()
	conn.Close()
}

func (c *Client) put(conn net.Conn) {
	c.mu.Lock()
	if c.down || len(c.idle) >= 8 {
		delete(c.live, conn)
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
}

// Close tears every connection down — idle and in-use alike, so blocked
// calls fail fast.
func (c *Client) Close() {
	c.mu.Lock()
	c.down = true
	live := c.live
	c.live = make(map[net.Conn]struct{})
	c.idle = nil
	m := c.smux
	c.smux = nil
	c.mu.Unlock()
	for conn := range live {
		conn.Close()
	}
	if m != nil {
		m.fail(errors.New("rpc: client closed"))
	}
}
