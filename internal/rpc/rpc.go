// Package rpc is the runtime's service-client layer: length-framed binary
// messages (internal/wire) over TCP, with a method-dispatching server and a
// connection-pooling client. It fills the role gRPC plays in TensorFlow —
// including staying responsible for "administrative purposes" (connection
// establishment, health checks) even when tensor payloads notionally ride a
// faster transport, exactly as the paper describes.
package rpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"tfhpc/internal/wire"
)

// Handler serves one method: decode request, act, encode response.
type Handler func(req []byte) ([]byte, error)

// Server listens on a TCP address and dispatches framed calls to handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[string]Handler
	ln       net.Listener
	closed   bool
	wg       sync.WaitGroup
	conns    map[net.Conn]struct{}
	inflight sync.WaitGroup // calls between request decode and response write
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]struct{})}
}

// Handle registers a method. Must be called before Serve.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler %q", method))
	}
	s.handlers[method] = h
}

// Listen binds the address (use "127.0.0.1:0" for tests) and starts the
// accept loop in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles calls sequentially per connection (clients open one
// connection per in-flight call stream).
func (s *Server) serveConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		// Register the call as in-flight (unless shutdown already started,
		// in which case it is rejected) so Close can drain active work —
		// including the response write — before tearing connections down.
		s.mu.Lock()
		rejected := s.closed
		if !rejected {
			s.inflight.Add(1)
		}
		s.mu.Unlock()
		var resp []byte
		var callErr error
		if rejected {
			callErr = errors.New("rpc: server shutting down")
		} else {
			method, req, err := decodeRequest(frame)
			if err != nil {
				callErr = err
			} else {
				s.mu.Lock()
				h, ok := s.handlers[method]
				s.mu.Unlock()
				if !ok {
					callErr = fmt.Errorf("rpc: no handler for %q", method)
				} else {
					resp, callErr = h(req)
				}
			}
		}
		err = wire.WriteFrame(conn, encodeResponse(resp, callErr))
		if !rejected {
			s.inflight.Done()
		}
		if err != nil {
			return
		}
	}
}

// Close drains then stops the server: it closes the listener, rejects calls
// that arrive from here on, waits for every in-flight call to finish and
// have its response written, then force-closes the connections (clients
// pool idle keepalives, so waiting for them to hang up would block forever)
// and joins the serving goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.inflight.Wait()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Request frame: field 1 = method, field 2 = payload.
func encodeRequest(method string, req []byte) []byte {
	e := wire.NewEncoder()
	e.String(1, method)
	e.BytesField(2, req)
	return e.Bytes()
}

func decodeRequest(frame []byte) (method string, req []byte, err error) {
	d := wire.NewDecoder(frame)
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", nil, err
		}
		switch f {
		case 1:
			if method, err = d.StringVal(); err != nil {
				return "", nil, err
			}
		case 2:
			if req, err = d.Bytes(); err != nil {
				return "", nil, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return "", nil, err
			}
		}
	}
	if method == "" {
		return "", nil, errors.New("rpc: request missing method")
	}
	return method, req, nil
}

// Response frame: field 1 = error string (empty = ok), field 2 = payload.
func encodeResponse(resp []byte, err error) []byte {
	e := wire.NewEncoder()
	if err != nil {
		e.String(1, err.Error())
	}
	e.BytesField(2, resp)
	return e.Bytes()
}

func decodeResponse(frame []byte) ([]byte, error) {
	d := wire.NewDecoder(frame)
	var payload []byte
	var remoteErr string
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			if remoteErr, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 2:
			if payload, err = d.Bytes(); err != nil {
				return nil, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
		}
	}
	if remoteErr != "" {
		return nil, fmt.Errorf("rpc: remote error: %s", remoteErr)
	}
	return payload, nil
}

// Client issues calls to one server address. Connections are pooled so
// concurrent calls (e.g. a blocking Dequeue alongside an Enqueue) each get
// their own stream. Close aborts in-flight calls too: every open connection
// — idle or mid-call — is tracked and torn down, so a Call blocked on an
// unresponsive peer returns an error instead of pinning its caller (the
// collective teardown path relies on this to cascade failures).
type Client struct {
	addr string
	mu   sync.Mutex
	idle []net.Conn
	live map[net.Conn]struct{}
	down bool
}

// Dial creates a client for the address; connections open lazily.
func Dial(addr string) *Client {
	return &Client{addr: addr, live: make(map[net.Conn]struct{})}
}

// Call sends one request and waits for the response.
func (c *Client) Call(method string, req []byte) ([]byte, error) {
	conn, err := c.conn()
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, encodeRequest(method, req)); err != nil {
		c.discard(conn)
		return nil, err
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		c.discard(conn)
		return nil, err
	}
	c.put(conn)
	return decodeResponse(frame)
}

func (c *Client) conn() (net.Conn, error) {
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return nil, errors.New("rpc: client closed")
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		conn.Close()
		return nil, errors.New("rpc: client closed")
	}
	c.live[conn] = struct{}{}
	c.mu.Unlock()
	return conn, nil
}

// discard drops a broken connection from tracking and closes it.
func (c *Client) discard(conn net.Conn) {
	c.mu.Lock()
	delete(c.live, conn)
	c.mu.Unlock()
	conn.Close()
}

func (c *Client) put(conn net.Conn) {
	c.mu.Lock()
	if c.down || len(c.idle) >= 8 {
		delete(c.live, conn)
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
}

// Close tears every connection down — idle and in-use alike, so blocked
// calls fail fast.
func (c *Client) Close() {
	c.mu.Lock()
	c.down = true
	live := c.live
	c.live = make(map[net.Conn]struct{})
	c.idle = nil
	c.mu.Unlock()
	for conn := range live {
		conn.Close()
	}
}
