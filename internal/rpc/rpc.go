// Package rpc is the runtime's service-client layer: length-framed binary
// messages (internal/wire) over TCP, with a method-dispatching server and a
// connection-pooling client. It fills the role gRPC plays in TensorFlow —
// including staying responsible for "administrative purposes" (connection
// establishment, health checks) even when tensor payloads notionally ride a
// faster transport, exactly as the paper describes.
package rpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"tfhpc/internal/wire"
)

// Handler serves one method: decode request, act, encode response.
type Handler func(req []byte) ([]byte, error)

// Server listens on a TCP address and dispatches framed calls to handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[string]Handler
	ln       net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler)}
}

// Handle registers a method. Must be called before Serve.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler %q", method))
	}
	s.handlers[method] = h
}

// Listen binds the address (use "127.0.0.1:0" for tests) and starts the
// accept loop in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles calls sequentially per connection (clients open one
// connection per in-flight call stream).
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		method, req, err := decodeRequest(frame)
		var resp []byte
		var callErr error
		if err != nil {
			callErr = err
		} else {
			s.mu.Lock()
			h, ok := s.handlers[method]
			s.mu.Unlock()
			if !ok {
				callErr = fmt.Errorf("rpc: no handler for %q", method)
			} else {
				resp, callErr = h(req)
			}
		}
		if err := wire.WriteFrame(conn, encodeResponse(resp, callErr)); err != nil {
			return
		}
	}
}

// Close stops the listener and waits for active connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Request frame: field 1 = method, field 2 = payload.
func encodeRequest(method string, req []byte) []byte {
	e := wire.NewEncoder()
	e.String(1, method)
	e.BytesField(2, req)
	return e.Bytes()
}

func decodeRequest(frame []byte) (method string, req []byte, err error) {
	d := wire.NewDecoder(frame)
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", nil, err
		}
		switch f {
		case 1:
			if method, err = d.StringVal(); err != nil {
				return "", nil, err
			}
		case 2:
			if req, err = d.Bytes(); err != nil {
				return "", nil, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return "", nil, err
			}
		}
	}
	if method == "" {
		return "", nil, errors.New("rpc: request missing method")
	}
	return method, req, nil
}

// Response frame: field 1 = error string (empty = ok), field 2 = payload.
func encodeResponse(resp []byte, err error) []byte {
	e := wire.NewEncoder()
	if err != nil {
		e.String(1, err.Error())
	}
	e.BytesField(2, resp)
	return e.Bytes()
}

func decodeResponse(frame []byte) ([]byte, error) {
	d := wire.NewDecoder(frame)
	var payload []byte
	var remoteErr string
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			if remoteErr, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 2:
			if payload, err = d.Bytes(); err != nil {
				return nil, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
		}
	}
	if remoteErr != "" {
		return nil, fmt.Errorf("rpc: remote error: %s", remoteErr)
	}
	return payload, nil
}

// Client issues calls to one server address. Connections are pooled so
// concurrent calls (e.g. a blocking Dequeue alongside an Enqueue) each get
// their own stream.
type Client struct {
	addr string
	mu   sync.Mutex
	idle []net.Conn
	down bool
}

// Dial creates a client for the address; connections open lazily.
func Dial(addr string) *Client {
	return &Client{addr: addr}
}

// Call sends one request and waits for the response.
func (c *Client) Call(method string, req []byte) ([]byte, error) {
	conn, err := c.conn()
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, encodeRequest(method, req)); err != nil {
		conn.Close()
		return nil, err
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.put(conn)
	return decodeResponse(frame)
}

func (c *Client) conn() (net.Conn, error) {
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return nil, errors.New("rpc: client closed")
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return net.Dial("tcp", c.addr)
}

func (c *Client) put(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down || len(c.idle) >= 8 {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// Close releases pooled connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
}
