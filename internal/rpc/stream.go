// Streaming edges: persistent, multiplexed, credit-flow-controlled byte
// streams over the same length-framed connections the call layer uses. A
// client switches one dedicated connection into mux mode with a reserved
// handshake call; after that every wire frame on the connection carries a
// stream id and a kind byte, so many streams (collective ring edges,
// serving predict channels) share the connection without per-message
// request/response round-trips — the persistent-channel design the
// TensorFlow whitepaper adopts for tensor traffic.
//
// Flow control is credit-based per stream and direction: a sender may have
// streamWindow data frames outstanding; the receiver re-grants credit as
// the application consumes frames, so one slow stream backpressures its
// sender without stalling the connection for its siblings.
//
// Buffer ownership: frames are read into pooled buffers (wire.GetBuf) owned
// by the mux until delivery; Stream.Recv copies the payload into the
// caller's buffer and recycles the frame immediately, so callers own what
// Recv returns and must not retain transport buffers. Send fully writes the
// payload before returning, so callers may reuse their buffer at once.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tfhpc/internal/telemetry"
	"tfhpc/internal/wire"
)

// muxMethod is the reserved method name whose call switches a connection
// from call/response framing into stream multiplexing.
const muxMethod = "_stream.mux"

// Stream frame layout, inside one wire length-prefixed frame:
//
//	uvarint stream id | kind byte | payload
const (
	kindOpen   = 1 // payload = method name; client opens a stream
	kindData   = 2 // payload = application bytes
	kindClose  = 3 // graceful end of the sender's direction
	kindReset  = 4 // payload = error text; aborts both directions
	kindCredit = 5 // payload = uvarint count of data frames granted
)

// streamWindow is the per-stream, per-direction flow-control window in data
// frames. Receivers re-grant after consuming half a window, so a steadily
// drained stream never stalls.
const streamWindow = 64

// ErrStreamTimeout reports an expired Recv deadline. The frame may still
// arrive later, so after a timeout the caller should either keep receiving
// or tear the stream down — not treat the stream as positioned.
var ErrStreamTimeout = errors.New("rpc: stream receive timed out")

// ErrStreamClosed reports use of a stream after local close.
var ErrStreamClosed = errors.New("rpc: stream closed")

// StreamHandler serves one inbound stream. Returning nil ends the server
// side gracefully (the peer's Recv sees io.EOF); returning an error resets
// the stream, surfacing the text to the peer.
type StreamHandler func(s *Stream) error

// HandleStream registers a streaming method. Must be called before clients
// open streams for it.
func (s *Server) HandleStream(method string, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.streams[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate stream handler %q", method))
	}
	s.streams[method] = h
}

func (s *Server) streamHandler(method string) StreamHandler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[method]
}

// OpenStream opens a stream to the server's handler for method. All of a
// client's streams multiplex over one dedicated connection, dialed and
// switched to mux mode on first use (and re-dialed after a failure).
func (c *Client) OpenStream(method string) (*Stream, error) {
	m, err := c.streamMux()
	if err != nil {
		return nil, err
	}
	st, err := m.open(method)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// streamMux returns the client's live multiplexer, establishing one if
// needed: dial, handshake via the reserved method, then start the read
// loop.
func (c *Client) streamMux() (*mux, error) {
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return nil, errors.New("rpc: client closed")
	}
	if m := c.smux; m != nil && m.alive() {
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()

	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, encodeRequest(muxMethod, nil, 0, telemetry.SpanContext{})); err != nil {
		conn.Close()
		return nil, err
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := decodeResponse(frame); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: stream handshake rejected: %w", err)
	}
	m := newMux(conn, nil)

	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		conn.Close()
		return nil, errors.New("rpc: client closed")
	}
	if prev := c.smux; prev != nil && prev.alive() {
		// Lost the establishment race; use the winner.
		c.mu.Unlock()
		conn.Close()
		return prev, nil
	}
	c.smux = m
	c.mu.Unlock()
	go m.readLoop()
	return m, nil
}

// mux multiplexes streams over one connection. The server side (srv != nil)
// accepts OPEN frames and spawns handlers; the client side originates them.
type mux struct {
	conn net.Conn
	srv  *Server

	// Write path: one frame at a time under wmu. whdr and warr are
	// persistent scratch so the vectored write allocates nothing.
	wmu   sync.Mutex
	whdr  []byte
	warr  [2][]byte
	wbufs net.Buffers

	mu      sync.Mutex
	streams map[uint64]*Stream
	nextID  uint64
	failed  error
}

func newMux(conn net.Conn, srv *Server) *mux {
	return &mux{conn: conn, srv: srv, streams: make(map[uint64]*Stream)}
}

func (m *mux) alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed == nil
}

func (m *mux) open(method string) (*Stream, error) {
	m.mu.Lock()
	if m.failed != nil {
		err := m.failed
		m.mu.Unlock()
		return nil, err
	}
	m.nextID++
	st := newStream(m, m.nextID, method)
	m.streams[st.id] = st
	m.mu.Unlock()
	if err := m.writeFrame(st.id, kindOpen, []byte(method)); err != nil {
		m.fail(err)
		return nil, err
	}
	return st, nil
}

// writeFrame frames and writes one stream frame: wire length prefix, then
// uvarint id, kind byte, payload. Header and payload go out in one vectored
// write through persistent buffers.
func (m *mux) writeFrame(id uint64, kind byte, payload []byte) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	hdr := append(m.whdr[:0], 0, 0, 0, 0)
	hdr = binary.AppendUvarint(hdr, id)
	hdr = append(hdr, kind)
	m.whdr = hdr[:0]
	n := int64(len(hdr) - 4 + len(payload))
	if n > wire.MaxMessageSize {
		return wire.ErrMessageTooLarge
	}
	binary.BigEndian.PutUint32(hdr, uint32(n))
	if len(payload) == 0 {
		_, err := m.conn.Write(hdr)
		return err
	}
	m.warr[0], m.warr[1] = hdr, payload
	m.wbufs = net.Buffers(m.warr[:2])
	_, err := m.wbufs.WriteTo(m.conn)
	m.warr[0], m.warr[1] = nil, nil
	return err
}

// writeCredit builds the whole credit frame in the persistent header
// scratch (a stack-side payload would escape through the vectored-write
// fields and put an allocation on the steady-state receive path).
func (m *mux) writeCredit(id uint64, grant int) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	hdr := append(m.whdr[:0], 0, 0, 0, 0)
	hdr = binary.AppendUvarint(hdr, id)
	hdr = append(hdr, kindCredit)
	hdr = binary.AppendUvarint(hdr, uint64(grant))
	m.whdr = hdr[:0]
	binary.BigEndian.PutUint32(hdr, uint32(len(hdr)-4))
	_, err := m.conn.Write(hdr)
	return err
}

func (m *mux) lookup(id uint64) *Stream {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.streams[id]
}

func (m *mux) remove(id uint64) {
	m.mu.Lock()
	delete(m.streams, id)
	m.mu.Unlock()
}

// fail marks the connection dead and aborts every stream on it.
func (m *mux) fail(err error) {
	m.mu.Lock()
	if m.failed != nil {
		m.mu.Unlock()
		return
	}
	m.failed = err
	streams := make([]*Stream, 0, len(m.streams))
	for _, st := range m.streams {
		streams = append(streams, st)
	}
	m.mu.Unlock()
	m.conn.Close()
	for _, st := range streams {
		st.remoteClose(err)
	}
}

// readLoop pulls frames off the connection and routes them until the
// connection dies. Runs on the serveConn goroutine server-side and on a
// dedicated goroutine client-side.
func (m *mux) readLoop() {
	for {
		buf, err := wire.ReadFramePooled(m.conn)
		if err != nil {
			m.fail(fmt.Errorf("rpc: stream connection lost: %w", err))
			return
		}
		if err := m.dispatch(buf); err != nil {
			m.fail(err)
			return
		}
	}
}

// dispatch routes one frame. It takes ownership of buf (pooled).
func (m *mux) dispatch(buf []byte) error {
	id, n := binary.Uvarint(buf)
	if n <= 0 || n >= len(buf) {
		wire.PutBuf(buf)
		return errors.New("rpc: malformed stream frame")
	}
	kind := buf[n]
	payload := buf[n+1:]
	switch kind {
	case kindOpen:
		method := string(payload)
		wire.PutBuf(buf)
		return m.accept(id, method)
	case kindData:
		if st := m.lookup(id); st != nil {
			st.deliver(buf, payload)
		} else {
			wire.PutBuf(buf) // stream already gone; drop
		}
	case kindCredit:
		grant, k := binary.Uvarint(payload)
		wire.PutBuf(buf)
		if k <= 0 {
			return errors.New("rpc: malformed stream credit frame")
		}
		if st := m.lookup(id); st != nil {
			st.addCredit(int(grant))
		}
	case kindClose:
		st := m.lookup(id)
		wire.PutBuf(buf)
		if st != nil {
			st.remoteClose(nil)
		}
	case kindReset:
		var err error
		if len(payload) > 0 {
			err = fmt.Errorf("rpc: stream reset by peer: %s", payload)
		} else {
			err = errors.New("rpc: stream reset by peer")
		}
		wire.PutBuf(buf)
		if st := m.lookup(id); st != nil {
			st.remoteClose(err)
		}
	default:
		wire.PutBuf(buf)
		return fmt.Errorf("rpc: unknown stream frame kind %d", kind)
	}
	return nil
}

// accept handles an OPEN on the server side: register the stream and run
// its handler on its own goroutine (tracked by the server waitgroup — the
// goroutine calling Add holds the connection's own count, so it cannot race
// a finishing Close.Wait).
func (m *mux) accept(id uint64, method string) error {
	if m.srv == nil {
		return errors.New("rpc: unexpected stream OPEN from server")
	}
	h := m.srv.streamHandler(method)
	m.mu.Lock()
	if m.failed != nil {
		m.mu.Unlock()
		return nil
	}
	if _, dup := m.streams[id]; dup {
		m.mu.Unlock()
		return fmt.Errorf("rpc: duplicate stream id %d", id)
	}
	st := newStream(m, id, method)
	m.streams[id] = st
	m.mu.Unlock()
	if h == nil {
		st.finish(fmt.Errorf("rpc: no stream handler for %q", method))
		return nil
	}
	m.srv.wg.Add(1)
	go func() {
		defer m.srv.wg.Done()
		st.finish(invokeStream(h, st))
	}()
	return nil
}

// invokeStream runs a stream handler, converting panics into resets.
func invokeStream(h StreamHandler, st *Stream) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rpc: stream handler panic: %v", r)
		}
	}()
	return h(st)
}

// rframe is one delivered data frame: the pooled backing buffer plus the
// payload view into it.
type rframe struct{ buf, payload []byte }

// Stream is one bidirectional byte-message stream over a mux.
type Stream struct {
	m      *mux
	id     uint64
	method string

	mu    sync.Mutex
	rcond sync.Cond // receive side: frame arrival, close, deadline
	scond sync.Cond // send side: credit arrival, close

	// Receive state. rq[rhead:] are undelivered frames.
	rq         []rframe
	rhead      int
	consumed   int // frames consumed since the last credit re-grant
	recvErr    error
	recvEOF    bool
	recvClosed bool // peer finished its direction (CLOSE, RESET or conn loss)
	deadline   time.Time
	dlTimer    *time.Timer

	// Send state.
	credit    int
	sendErr   error
	sentClose bool
	removed   bool
}

func newStream(m *mux, id uint64, method string) *Stream {
	st := &Stream{m: m, id: id, method: method, credit: streamWindow}
	st.rcond.L = &st.mu
	st.scond.L = &st.mu
	return st
}

// Method returns the stream's method name.
func (s *Stream) Method() string { return s.method }

// Send ships one data frame, blocking while the peer's flow-control window
// is exhausted. The payload is fully written before return; the caller may
// reuse p immediately.
func (s *Stream) Send(p []byte) error {
	s.mu.Lock()
	if s.credit == 0 && s.sendErr == nil && !s.sentClose {
		// The stall branch only: an unconstrained send costs nothing here,
		// and the AllocsPerRun==0 chunk-relay gate covers that path.
		mCreditStalls.Inc()
		stallStart := time.Now()
		span := telemetry.StartRoot("stream_credit_stall")
		for s.credit == 0 && s.sendErr == nil && !s.sentClose {
			s.scond.Wait()
		}
		span.End()
		mCreditStallSeconds.ObserveSince(stallStart)
	}
	if s.sendErr != nil {
		err := s.sendErr
		s.mu.Unlock()
		return err
	}
	if s.sentClose {
		s.mu.Unlock()
		return ErrStreamClosed
	}
	s.credit--
	s.mu.Unlock()
	if err := s.m.writeFrame(s.id, kindData, p); err != nil {
		s.m.fail(err)
		return err
	}
	return nil
}

// Recv waits for the next data frame and returns its payload copied into
// buf (grown as needed); the caller owns the result, the transport recycles
// its frame buffer before returning. io.EOF reports a graceful close by the
// peer.
func (s *Stream) Recv(buf []byte) ([]byte, error) {
	s.mu.Lock()
	for s.rhead == len(s.rq) {
		if s.recvErr != nil {
			err := s.recvErr
			s.mu.Unlock()
			return nil, err
		}
		if s.recvEOF {
			s.mu.Unlock()
			return nil, io.EOF
		}
		if !s.deadline.IsZero() {
			if !time.Now().Before(s.deadline) {
				s.mu.Unlock()
				return nil, ErrStreamTimeout
			}
			s.armTimerLocked()
		}
		s.rcond.Wait()
	}
	f := s.rq[s.rhead]
	s.rq[s.rhead] = rframe{}
	s.rhead++
	if s.rhead == len(s.rq) {
		s.rq = s.rq[:0]
		s.rhead = 0
	}
	s.consumed++
	grant := 0
	if s.consumed >= streamWindow/2 {
		grant, s.consumed = s.consumed, 0
	}
	s.mu.Unlock()

	out := append(buf[:0], f.payload...)
	wire.PutBuf(f.buf)
	if grant > 0 {
		if err := s.m.writeCredit(s.id, grant); err != nil {
			s.m.fail(err)
		}
	}
	return out, nil
}

// SetRecvDeadline bounds subsequent Recv calls; the zero time clears the
// bound.
func (s *Stream) SetRecvDeadline(t time.Time) {
	s.mu.Lock()
	s.deadline = t
	if t.IsZero() && s.dlTimer != nil {
		s.dlTimer.Stop()
	}
	s.mu.Unlock()
	if !t.IsZero() {
		s.rcond.Broadcast() // waiters re-arm against the new deadline
	}
}

// armTimerLocked (re)points the stream's single reusable timer at the
// current deadline, so waiting never allocates a timer per call.
func (s *Stream) armTimerLocked() {
	d := time.Until(s.deadline)
	if s.dlTimer == nil {
		s.dlTimer = time.AfterFunc(d, s.onDeadline)
	} else {
		s.dlTimer.Reset(d)
	}
}

func (s *Stream) onDeadline() {
	s.rcond.Broadcast() // waiters check the wall clock themselves
}

// deliver hands an arrived data frame to the stream, taking ownership of
// the pooled buf.
func (s *Stream) deliver(buf, payload []byte) {
	s.mu.Lock()
	if s.recvErr != nil || s.recvEOF {
		s.mu.Unlock()
		wire.PutBuf(buf) // receiver gone; drop
		return
	}
	if s.rhead > 0 && s.rhead == len(s.rq) {
		s.rq = s.rq[:0]
		s.rhead = 0
	} else if s.rhead > 4*streamWindow {
		n := copy(s.rq, s.rq[s.rhead:])
		s.rq = s.rq[:n]
		s.rhead = 0
	}
	s.rq = append(s.rq, rframe{buf: buf, payload: payload})
	s.mu.Unlock()
	s.rcond.Signal()
}

func (s *Stream) addCredit(n int) {
	s.mu.Lock()
	s.credit += n
	s.mu.Unlock()
	s.scond.Broadcast()
}

// CloseSend half-closes the stream: the peer's Recv sees io.EOF once the
// frames in flight drain. Receiving stays possible.
func (s *Stream) CloseSend() error {
	s.mu.Lock()
	if s.sentClose || s.sendErr != nil {
		s.mu.Unlock()
		return nil
	}
	s.sentClose = true
	s.mu.Unlock()
	s.scond.Broadcast()
	err := s.m.writeFrame(s.id, kindClose, nil)
	s.maybeRemove()
	return err
}

var resetByCaller = []byte("closed by caller")

// Close aborts the stream in both directions: the peer sees a reset, local
// Send and Recv fail with ErrStreamClosed.
func (s *Stream) Close() error {
	s.mu.Lock()
	sendReset := !s.sentClose && s.sendErr == nil
	s.sentClose = true
	if s.recvErr == nil {
		s.recvErr = ErrStreamClosed
	}
	s.drainLocked()
	s.mu.Unlock()
	s.rcond.Broadcast()
	s.scond.Broadcast()
	var err error
	if sendReset {
		err = s.m.writeFrame(s.id, kindReset, resetByCaller)
	}
	s.maybeRemove()
	return err
}

// remoteClose records the peer finishing its direction: gracefully
// (err == nil, Recv drains then reports io.EOF) or abnormally (both
// directions fail with err).
func (s *Stream) remoteClose(err error) {
	s.mu.Lock()
	s.recvClosed = true
	switch {
	case err == nil:
		s.recvEOF = true
	case s.recvEOF:
		// The peer already half-closed gracefully; a later error (the
		// connection being torn down after the CLOSE) must not clobber the
		// clean EOF or drop frames still queued ahead of it. Only sending is
		// dead.
		if s.sendErr == nil {
			s.sendErr = err
		}
	default:
		if s.recvErr == nil {
			s.recvErr = err
		}
		if s.sendErr == nil {
			s.sendErr = err
		}
		s.drainLocked()
	}
	s.mu.Unlock()
	s.rcond.Broadcast()
	s.scond.Broadcast()
	s.maybeRemove()
}

// finish ends the server side after its handler returns: nil closes
// gracefully, an error resets with its text. Inbound frames still queued
// are dropped.
func (s *Stream) finish(err error) {
	s.mu.Lock()
	var needClose, needReset bool
	if !s.sentClose && s.sendErr == nil {
		if err != nil {
			needReset = true
		} else {
			needClose = true
		}
	}
	s.sentClose = true
	if s.recvErr == nil {
		s.recvErr = ErrStreamClosed
	}
	s.drainLocked()
	s.mu.Unlock()
	s.rcond.Broadcast()
	s.scond.Broadcast()
	if needReset {
		_ = s.m.writeFrame(s.id, kindReset, []byte(err.Error()))
	} else if needClose {
		_ = s.m.writeFrame(s.id, kindClose, nil)
	}
	s.maybeRemove()
}

// drainLocked recycles every undelivered frame.
func (s *Stream) drainLocked() {
	for i := s.rhead; i < len(s.rq); i++ {
		wire.PutBuf(s.rq[i].buf)
		s.rq[i] = rframe{}
	}
	s.rq = s.rq[:0]
	s.rhead = 0
}

// maybeRemove unregisters the stream from the mux once both directions are
// finished, so ids don't leak on long-lived connections.
func (s *Stream) maybeRemove() {
	s.mu.Lock()
	done := (s.sentClose || s.sendErr != nil) && (s.recvClosed || s.recvErr != nil)
	already := s.removed
	if done {
		s.removed = true
	}
	s.mu.Unlock()
	if done && !already {
		s.m.remove(s.id)
	}
}
