package simnet

import "testing"

func TestFaultPlanInactiveByDefault(t *testing.T) {
	plan := NewFaultPlan()
	for rank := 0; rank < 4; rank++ {
		for n := 0; n < 10; n++ {
			if plan.ShouldDrop(rank, n) || plan.ShouldDropRecv(rank, n) {
				t.Fatalf("inactive plan drops rank %d at count %d", rank, n)
			}
		}
	}
	for step := 0; step < 10; step++ {
		if plan.CrashTaskAt(step) != NoRank {
			t.Fatalf("inactive plan crashes a task at step %d", step)
		}
	}
}

func TestFaultPlanRecvDrop(t *testing.T) {
	plan := NewFaultPlan()
	plan.RecvDropRank = 2
	plan.RecvDropAfter = 3
	if plan.ShouldDropRecv(2, 3) {
		t.Fatal("dropped within budget")
	}
	if !plan.ShouldDropRecv(2, 4) {
		t.Fatal("did not drop past budget")
	}
	if plan.ShouldDropRecv(1, 100) {
		t.Fatal("dropped the wrong rank")
	}
	if plan.ShouldDrop(2, 100) {
		t.Fatal("recv-side plan leaked into the send-side budget")
	}
}

func TestFaultPlanCrashAtStep(t *testing.T) {
	plan := NewFaultPlan()
	plan.CrashRank = 1
	plan.CrashAtStep = 5
	for step := 0; step < 10; step++ {
		want := NoRank
		if step == 5 {
			want = 1
		}
		if got := plan.CrashTaskAt(step); got != want {
			t.Fatalf("step %d: crash task %d, want %d", step, got, want)
		}
	}
}
