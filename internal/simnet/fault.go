package simnet

import (
	"time"

	"tfhpc/internal/hw"
)

// FaultPlan describes deterministic fault injection for distributed-runtime
// tests: uniform added link latency, one straggler whose sends are further
// delayed, and one task that drops out after a fixed number of sends. The
// zero value (with the rank fields set to NoRank) injects nothing.
//
// Plans are consumed by transport wrappers (internal/collective) so that the
// collectives can be driven through the same degradations the paper's
// Fig. 7 protocols exhibit — latency-bound small transfers, slow peers
// serialising a ring, and mid-collective task loss.
type FaultPlan struct {
	// LinkDelay is added to every message delivery.
	LinkDelay time.Duration
	// SlowRank's sends incur SlowBy of extra delay (straggler). NoRank
	// disables.
	SlowRank int
	SlowBy   time.Duration
	// DropRank's endpoint closes after DropAfterSends sends, simulating a
	// task dying mid-collective. NoRank disables.
	DropRank       int
	DropAfterSends int
	// RecvDropRank's endpoint closes after RecvDropAfter receives — the
	// recv-side mirror of DropRank, so tests can kill a rank while it is
	// blocked waiting on inbound traffic. NoRank disables.
	RecvDropRank  int
	RecvDropAfter int
	// CrashRank's task crashes at the start of training step CrashAtStep
	// (0-based), for deterministic crash-at-step elastic tests. Consumed by
	// training drivers via CrashTaskAt, not by transport wrappers. NoRank
	// disables.
	CrashRank   int
	CrashAtStep int
}

// NoRank marks a fault's rank field as unused.
const NoRank = -1

// NewFaultPlan returns an inactive plan (every rank field NoRank).
func NewFaultPlan() FaultPlan {
	return FaultPlan{SlowRank: NoRank, DropRank: NoRank, RecvDropRank: NoRank, CrashRank: NoRank}
}

// SendDelay is the injected latency for one send by `rank`.
func (f FaultPlan) SendDelay(rank int) time.Duration {
	d := f.LinkDelay
	if rank == f.SlowRank {
		d += f.SlowBy
	}
	return d
}

// ShouldDrop reports whether `rank` must fail its sendCount-th send (1-based).
func (f FaultPlan) ShouldDrop(rank, sendCount int) bool {
	return rank == f.DropRank && sendCount > f.DropAfterSends
}

// ShouldDropRecv reports whether `rank` must fail its recvCount-th receive
// (1-based).
func (f FaultPlan) ShouldDropRecv(rank, recvCount int) bool {
	return rank == f.RecvDropRank && recvCount > f.RecvDropAfter
}

// CrashTaskAt returns the task that must crash at the start of `step`
// (0-based), or NoRank when none does.
func (f FaultPlan) CrashTaskAt(step int) int {
	if f.CrashRank != NoRank && step == f.CrashAtStep {
		return f.CrashRank
	}
	return NoRank
}

// ModelLinkDelay derives a per-message delay from the platform model: the
// modelled transfer time of one `bytes`-sized host tensor under the given
// protocol, scaled by `scale` so tests can compress simulated seconds into
// real milliseconds.
func ModelLinkDelay(c *hw.Cluster, nt *hw.NodeType, proto Protocol, bytes int64, scale float64) time.Duration {
	return time.Duration(scale * TransferTime(c, nt, proto, OnCPU, OnCPU, bytes) * float64(time.Second))
}
