package simnet

import (
	"testing"

	"tfhpc/internal/hw"
)

const mb = 1 << 20

func bwFor(c *hw.Cluster, node string, proto Protocol, place Placement, bytes int64) float64 {
	nt := c.NodeTypes[node]
	dt := TransferTime(c, nt, proto, place, place, bytes)
	return BandwidthMBps(bytes, dt)
}

// Fig. 7 calibration: orderings and saturation levels from Section VI.A.
func TestFig7RDMAOrderingAndLevels(t *testing.T) {
	// Tegner CPU RDMA peaks above 6000 MB/s (>50% of 12.5 GB/s EDR).
	got := bwFor(hw.Tegner, "k420", RDMA, OnCPU, 128*mb)
	if got < 6000 || got > 7000 {
		t.Fatalf("Tegner CPU RDMA 128MB = %.0f MB/s, want ~6000-6500", got)
	}
	// Tegner GPU RDMA saturates around 1300 MB/s.
	got = bwFor(hw.Tegner, "k420", RDMA, OnGPU, 128*mb)
	if got < 1200 || got > 1450 {
		t.Fatalf("Tegner GPU RDMA 128MB = %.0f MB/s, want ~1300", got)
	}
	// Kebnekaise GPU RDMA saturates below 2300 MB/s.
	got = bwFor(hw.Kebnekaise, "k80", RDMA, OnGPU, 128*mb)
	if got < 2000 || got > 2300 {
		t.Fatalf("Kebnekaise GPU RDMA 128MB = %.0f MB/s, want just below 2300", got)
	}
}

func TestFig7MPILevels(t *testing.T) {
	// ~318 MB/s on Tegner K420 GPUs.
	got := bwFor(hw.Tegner, "k420", MPI, OnGPU, 128*mb)
	if got < 280 || got > 360 {
		t.Fatalf("Tegner GPU MPI = %.0f MB/s, want ~318", got)
	}
	// ~480 MB/s on Kebnekaise K80 GPUs.
	got = bwFor(hw.Kebnekaise, "k80", MPI, OnGPU, 128*mb)
	if got < 430 || got > 530 {
		t.Fatalf("Kebnekaise GPU MPI = %.0f MB/s, want ~480", got)
	}
}

func TestFig7GRPCLowestOnTegner(t *testing.T) {
	// gRPC resolves over gigabit Ethernet on Tegner: the slowest by far.
	for _, place := range []Placement{OnCPU, OnGPU} {
		grpc := bwFor(hw.Tegner, "k420", GRPC, place, 128*mb)
		mpi := bwFor(hw.Tegner, "k420", MPI, place, 128*mb)
		rdma := bwFor(hw.Tegner, "k420", RDMA, place, 128*mb)
		if !(grpc < mpi && mpi < rdma) {
			t.Fatalf("Tegner %v ordering: grpc=%.0f mpi=%.0f rdma=%.0f", place, grpc, mpi, rdma)
		}
		if grpc > 150 {
			t.Fatalf("Tegner gRPC = %.0f MB/s, should be Ethernet-bound (~110)", grpc)
		}
	}
}

func TestFig7GRPCSimilarToMPIOnKebnekaise(t *testing.T) {
	grpc := bwFor(hw.Kebnekaise, "k80", GRPC, OnGPU, 128*mb)
	mpi := bwFor(hw.Kebnekaise, "k80", MPI, OnGPU, 128*mb)
	ratio := grpc / mpi
	if ratio < 0.6 || ratio > 1.4 {
		t.Fatalf("Kebnekaise gRPC/MPI = %.2f (grpc=%.0f, mpi=%.0f), want similar", ratio, grpc, mpi)
	}
}

func TestBandwidthGrowsWithMessageSize(t *testing.T) {
	// Fig. 7 annotates 2, 16, 128 MB per bar: bigger messages amortise setup.
	for _, proto := range []Protocol{GRPC, MPI, RDMA} {
		prev := 0.0
		for _, size := range []int64{2 * mb, 16 * mb, 128 * mb} {
			got := bwFor(hw.Tegner, "k420", proto, OnCPU, size)
			if got < prev {
				t.Fatalf("%v: bandwidth fell from %.0f to %.0f as size grew", proto, prev, got)
			}
			prev = got
		}
	}
}

func TestPathStructure(t *testing.T) {
	// GPU endpoints add PCIe staging hops.
	cpu := TransferPath(hw.Tegner, hw.Tegner.NodeTypes["k420"], RDMA, OnCPU, OnCPU)
	gpu := TransferPath(hw.Tegner, hw.Tegner.NodeTypes["k420"], RDMA, OnGPU, OnGPU)
	if len(gpu) != len(cpu)+2 {
		t.Fatalf("GPU path should add 2 staging hops: cpu=%d gpu=%d", len(cpu), len(gpu))
	}
	if gpu.Bottleneck() >= cpu.Bottleneck() {
		t.Fatal("PCIe staging should lower the bottleneck bandwidth")
	}
}

func TestSerialSlowerThanPipelined(t *testing.T) {
	p := TransferPath(hw.Kebnekaise, hw.Kebnekaise.NodeTypes["k80"], MPI, OnGPU, OnGPU)
	n := int64(64 * mb)
	if p.SerialTime(n) <= p.PipelinedTime(n) {
		t.Fatal("store-and-forward must be slower than pipelined")
	}
}

func TestParseProtocol(t *testing.T) {
	for _, c := range []struct {
		s    string
		want Protocol
	}{{"grpc", GRPC}, {"mpi", MPI}, {"rdma", RDMA}, {"shm", SHM}, {"shmdirect", SHMDirect}} {
		got, err := ParseProtocol(c.s)
		if err != nil || got != c.want {
			t.Fatalf("ParseProtocol(%q) = %v, %v", c.s, got, err)
		}
		if got.String() != c.s {
			t.Fatalf("String round trip %q", c.s)
		}
	}
	if _, err := ParseProtocol("tcp"); err == nil {
		t.Fatal("bad protocol should error")
	}
}

// TestShmBeatsEveryWireOnHost checks the same-host model: a shared-memory
// hop must outrun every network protocol at every size — the property the
// real transport tier's auto-selection relies on — and the zero-copy
// variant must beat the two-copy ring.
func TestShmBeatsEveryWireOnHost(t *testing.T) {
	for _, c := range []*hw.Cluster{hw.Tegner, hw.Kebnekaise} {
		for name := range c.NodeTypes {
			for _, size := range []int64{4 << 10, 64 << 10, 2 * mb, 128 * mb} {
				shm := bwFor(c, name, SHM, OnCPU, size)
				direct := bwFor(c, name, SHMDirect, OnCPU, size)
				for _, wire := range []Protocol{GRPC, MPI, RDMA} {
					if net := bwFor(c, name, wire, OnCPU, size); shm <= net {
						t.Fatalf("%s/%s %dB: shm %.0f MB/s <= %v %.0f MB/s",
							c.Name, name, size, shm, wire, net)
					}
				}
				if direct <= shm {
					t.Fatalf("%s/%s %dB: zero-copy %.0f MB/s <= ring %.0f MB/s",
						c.Name, name, size, direct, shm)
				}
			}
		}
	}
}

// TestShmRingBottleneckIsHalfHostBW pins the two-copy contention model.
func TestShmRingBottleneckIsHalfHostBW(t *testing.T) {
	nt := hw.Tegner.NodeTypes["k420"]
	p := TransferPath(hw.Tegner, nt, SHM, OnCPU, OnCPU)
	if len(p) != 2 {
		t.Fatalf("shm CPU path has %d hops, want 2", len(p))
	}
	if p.Bottleneck() != nt.HostMemBW/2 {
		t.Fatalf("shm bottleneck %.0f, want HostMemBW/2 = %.0f", p.Bottleneck(), nt.HostMemBW/2)
	}
}

func TestBandwidthMBps(t *testing.T) {
	if got := BandwidthMBps(1e6, 1); got != 1 {
		t.Fatalf("1 MB in 1 s = %v MB/s", got)
	}
	if got := BandwidthMBps(100, 0); got != 0 {
		t.Fatalf("zero time should yield 0, got %v", got)
	}
}
