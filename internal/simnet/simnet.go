// Package simnet models the three tensor-transfer protocols the paper
// benchmarks with its STREAM application — gRPC, MPI and InfiniBand Verbs
// RDMA — on top of the hardware catalogue in internal/hw. Each transfer is
// decomposed into the staging hops the real stacks take, and each hop is a
// (latency, bandwidth) segment; the slowest segment pipeline-limits the
// sustained rate while setup latencies add up.
//
// The decompositions follow Section VI.A of the paper:
//
//   - RDMA (verbs): GPU tensors are staged over PCIe to registered host
//     buffers (GPUDirect is unavailable on both platforms, as in the paper),
//     then the HCA moves them at RDMAEff × wire bandwidth.
//   - MPI: the TensorFlow MPI module first copies and *serializes* tensors
//     into host protobufs (the paper's explanation for its low rates), then
//     sends over the fabric.
//   - gRPC: serialization plus whatever network gRPC resolves to — gigabit
//     Ethernet on Tegner, IPoIB on Kebnekaise (again matching the paper).
package simnet

import (
	"fmt"

	"tfhpc/internal/hw"
)

// Protocol selects the tensor transport, mirroring the paper's three builds.
type Protocol int

const (
	GRPC Protocol = iota
	MPI
	RDMA
	// SHM models the same-host shared-memory ring the real transport tier
	// auto-selects for co-located tasks: sender memcpy into the ring,
	// receiver memcpy out. The copies pipeline through the ring but share
	// the node's memory system.
	SHM
	// SHMDirect is the RDMA-style zero-copy variant: the payload is handed
	// over by mapping, one effective traversal of host memory bandwidth —
	// the same single-copy discipline the verbs path applies to the wire.
	SHMDirect
)

var protoNames = [...]string{"grpc", "mpi", "rdma", "shm", "shmdirect"}

func (p Protocol) String() string {
	if int(p) < len(protoNames) {
		return protoNames[p]
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// ParseProtocol converts a flag value into a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	for i, n := range protoNames {
		if n == s {
			return Protocol(i), nil
		}
	}
	return 0, fmt.Errorf("simnet: unknown protocol %q (want grpc|mpi|rdma|shm|shmdirect)", s)
}

// Placement says which memory a tensor endpoint lives in.
type Placement int

const (
	OnCPU Placement = iota
	OnGPU
)

func (p Placement) String() string {
	if p == OnGPU {
		return "GPU"
	}
	return "CPU"
}

// Segment is one hop of a transfer path.
type Segment struct {
	Name    string
	Latency float64 // seconds of setup
	BW      float64 // bytes/s sustained
}

// Path is an ordered list of segments between two tensors.
type Path []Segment

// PipelinedTime returns the duration for moving n bytes when hops overlap
// (chunked staging, as the verbs module does): the sum of hop latencies plus
// n divided by the bottleneck bandwidth.
func (p Path) PipelinedTime(n int64) float64 {
	if len(p) == 0 {
		return 0
	}
	lat := 0.0
	bottleneck := p[0].BW
	for _, s := range p {
		lat += s.Latency
		if s.BW < bottleneck {
			bottleneck = s.BW
		}
	}
	return lat + float64(n)/bottleneck
}

// SerialTime returns the duration when each hop must finish before the next
// starts (store-and-forward, as the MPI and gRPC modules behave: the full
// tensor is copied off the GPU, fully serialized into a protobuf, then
// sent): the sum over hops of latency + n/bandwidth.
func (p Path) SerialTime(n int64) float64 {
	t := 0.0
	for _, s := range p {
		t += s.Latency + float64(n)/s.BW
	}
	return t
}

// Bottleneck returns the slowest segment's bandwidth.
func (p Path) Bottleneck() float64 {
	if len(p) == 0 {
		return 0
	}
	b := p[0].BW
	for _, s := range p {
		if s.BW < b {
			b = s.BW
		}
	}
	return b
}

// TransferPath builds the hop list for moving one tensor between two nodes
// of the given type on the given cluster with the given protocol. src and
// dst say whether each endpoint tensor lives in GPU or host memory.
func TransferPath(c *hw.Cluster, nt *hw.NodeType, proto Protocol, src, dst Placement) Path {
	var path Path

	stageOut := func(tag string) {
		path = append(path, Segment{
			Name:    tag + " PCIe D2H",
			Latency: 10e-6,
			BW:      nt.GPU.PCIeBW,
		})
	}
	stageIn := func(tag string) {
		path = append(path, Segment{
			Name:    tag + " PCIe H2D",
			Latency: 10e-6,
			BW:      nt.GPU.PCIeBW,
		})
	}

	switch proto {
	case SHM:
		if src == OnGPU {
			stageOut("src")
		}
		// Both ring copies run concurrently in steady state and contend for
		// the one memory controller, so each sustains about half the node's
		// memory bandwidth. Latency is a futex-style wakeup, not a NIC.
		path = append(path, Segment{
			Name:    "shm ring write",
			Latency: 1e-6,
			BW:      nt.HostMemBW / 2,
		})
		path = append(path, Segment{
			Name:    "shm ring read",
			Latency: 1e-6,
			BW:      nt.HostMemBW / 2,
		})
		if dst == OnGPU {
			stageIn("dst")
		}
	case SHMDirect:
		if src == OnGPU {
			stageOut("src")
		}
		path = append(path, Segment{
			Name:    "shm zero-copy handoff",
			Latency: 2e-6,
			BW:      nt.HostMemBW,
		})
		if dst == OnGPU {
			stageIn("dst")
		}
	case RDMA:
		if src == OnGPU {
			stageOut("src")
		}
		// The per-op latency covers the rendezvous the TF RDMA module runs
		// over its gRPC administrative channel before each tensor write.
		path = append(path, Segment{
			Name:    "verbs " + c.Wire.Name,
			Latency: c.Wire.Latency + 200e-6,
			BW:      c.RDMAEff * c.Wire.BW,
		})
		if dst == OnGPU {
			stageIn("dst")
		}
	case MPI:
		if src == OnGPU {
			stageOut("src")
		}
		// TensorFlow's MPI module copies + serializes through host memory
		// (the paper's stated reason GPU Direct rates are unreachable).
		path = append(path, Segment{
			Name:    "protobuf serialize",
			Latency: 40e-6,
			BW:      nt.SerializeBW,
		})
		path = append(path, Segment{
			Name:    "MPI over " + c.Wire.Name,
			Latency: c.Wire.Latency + 15e-6,
			BW:      0.85 * c.Wire.BW,
		})
		if dst == OnGPU {
			stageIn("dst")
		}
	case GRPC:
		if src == OnGPU {
			stageOut("src")
		}
		path = append(path, Segment{
			Name:    "protobuf serialize",
			Latency: 60e-6,
			BW:      nt.SerializeBW,
		})
		net := c.Ethernet
		path = append(path, Segment{
			Name:    "gRPC over " + net.Name,
			Latency: net.Latency + 100e-6,
			BW:      0.96 * net.BW,
		})
		if dst == OnGPU {
			stageIn("dst")
		}
	}
	return path
}

// TransferTime returns the modelled duration of one tensor transfer. RDMA
// and the shared-memory paths pipeline their hops (chunked staging through
// ring or registered buffers); MPI and gRPC are store-and-forward through
// host serialization buffers.
func TransferTime(c *hw.Cluster, nt *hw.NodeType, proto Protocol, src, dst Placement, bytes int64) float64 {
	p := TransferPath(c, nt, proto, src, dst)
	if proto == RDMA || proto == SHM || proto == SHMDirect {
		return p.PipelinedTime(bytes)
	}
	return p.SerialTime(bytes)
}

// BandwidthMBps converts (bytes, seconds) to the MB/s the paper reports
// (decimal megabytes).
func BandwidthMBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e6
}
