package gemm

// Panel packing: the blocked GEMM copies panels of A and B into contiguous
// buffers laid out exactly in the order the micro-kernel consumes them, so
// the innermost loop runs at unit stride regardless of the operands'
// transposition. Short strips are zero-padded to the full micro-kernel
// width; the padding multiplies into C rows/columns that are discarded, so
// it never affects results (including NaN/Inf inputs).

// packA32 packs op(A)[ic:ic+mc][pc:pc+kc] into mr-row micro-panels:
// ap[s*kc*mr + p*mr + r] = op(A)[ic+s*mr+r][pc+p].
func packA32(ap, a []float32, lda int, trans bool, ic, mc, pc, kc, mr int) {
	iStrips := (mc + mr - 1) / mr
	for s := 0; s < iStrips; s++ {
		dst := ap[s*kc*mr : (s+1)*kc*mr]
		rows := min(mr, mc-s*mr)
		base := ic + s*mr
		if trans {
			// op(A)[i][p] reads a[(pc+p)*lda+i]: contiguous in i.
			for p := 0; p < kc; p++ {
				src := a[(pc+p)*lda+base : (pc+p)*lda+base+rows]
				d := dst[p*mr : p*mr+mr]
				copy(d, src)
				for r := rows; r < mr; r++ {
					d[r] = 0
				}
			}
		} else {
			// Walk stored rows so reads are sequential; writes stride by mr.
			for r := 0; r < rows; r++ {
				src := a[(base+r)*lda+pc : (base+r)*lda+pc+kc]
				for p, v := range src {
					dst[p*mr+r] = v
				}
			}
			for r := rows; r < mr; r++ {
				for p := 0; p < kc; p++ {
					dst[p*mr+r] = 0
				}
			}
		}
	}
}

// packB32 packs op(B)[pc:pc+kc][0:n] into nr-column micro-panels:
// bp[t*kc*nr + p*nr + c] = op(B)[pc+p][t*nr+c]. Strips pack in parallel on
// the worker pool (packing is the only serial stage of the blocked loop).
func packB32(bp, b []float32, ldb int, trans bool, pc, kc, n, nr int) {
	nStrips := (n + nr - 1) / nr
	ParallelFor(nStrips, 16, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dst := bp[t*kc*nr : (t+1)*kc*nr]
			cols := min(nr, n-t*nr)
			if !trans {
				for p := 0; p < kc; p++ {
					src := b[(pc+p)*ldb+t*nr : (pc+p)*ldb+t*nr+cols]
					d := dst[p*nr : p*nr+nr]
					copy(d, src)
					for c := cols; c < nr; c++ {
						d[c] = 0
					}
				}
			} else {
				// op(B)[p][j] reads b[j*ldb+pc+p]: walk stored rows (j).
				for c := 0; c < cols; c++ {
					src := b[(t*nr+c)*ldb+pc : (t*nr+c)*ldb+pc+kc]
					for p, v := range src {
						dst[p*nr+c] = v
					}
				}
				for c := cols; c < nr; c++ {
					for p := 0; p < kc; p++ {
						dst[p*nr+c] = 0
					}
				}
			}
		}
	})
}

// packA64 is the float64 twin of packA32.
func packA64(ap, a []float64, lda int, trans bool, ic, mc, pc, kc, mr int) {
	iStrips := (mc + mr - 1) / mr
	for s := 0; s < iStrips; s++ {
		dst := ap[s*kc*mr : (s+1)*kc*mr]
		rows := min(mr, mc-s*mr)
		base := ic + s*mr
		if trans {
			for p := 0; p < kc; p++ {
				src := a[(pc+p)*lda+base : (pc+p)*lda+base+rows]
				d := dst[p*mr : p*mr+mr]
				copy(d, src)
				for r := rows; r < mr; r++ {
					d[r] = 0
				}
			}
		} else {
			for r := 0; r < rows; r++ {
				src := a[(base+r)*lda+pc : (base+r)*lda+pc+kc]
				for p, v := range src {
					dst[p*mr+r] = v
				}
			}
			for r := rows; r < mr; r++ {
				for p := 0; p < kc; p++ {
					dst[p*mr+r] = 0
				}
			}
		}
	}
}

// packB64 is the float64 twin of packB32.
func packB64(bp, b []float64, ldb int, trans bool, pc, kc, n, nr int) {
	nStrips := (n + nr - 1) / nr
	ParallelFor(nStrips, 16, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dst := bp[t*kc*nr : (t+1)*kc*nr]
			cols := min(nr, n-t*nr)
			if !trans {
				for p := 0; p < kc; p++ {
					src := b[(pc+p)*ldb+t*nr : (pc+p)*ldb+t*nr+cols]
					d := dst[p*nr : p*nr+nr]
					copy(d, src)
					for c := cols; c < nr; c++ {
						d[c] = 0
					}
				}
			} else {
				for c := 0; c < cols; c++ {
					src := b[(t*nr+c)*ldb+pc : (t*nr+c)*ldb+pc+kc]
					for p, v := range src {
						dst[p*nr+c] = v
					}
				}
				for c := cols; c < nr; c++ {
					for p := 0; p < kc; p++ {
						dst[p*nr+c] = 0
					}
				}
			}
		}
	})
}
