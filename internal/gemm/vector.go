package gemm

// BLAS-1/2 style kernels used by the op layer and the CG solver's dense
// products. Matrix-vector products parallelize over row blocks on the
// shared pool; dot products stay serial (they reduce to a scalar and are
// called on per-worker block sizes) but use split accumulators for ILP.
// float32 reductions accumulate in float64 for stability, matching the
// behaviour the solver layers were built against.

// MatVec32 computes y = A·x for row-major A (m×n, leading dimension lda).
func MatVec32(m, n int, a []float32, lda int, x, y []float32) {
	ParallelFor(m, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a[i*lda : i*lda+n]
			var s0, s1, s2, s3 float64
			p := 0
			for ; p+4 <= n; p += 4 {
				s0 += float64(row[p]) * float64(x[p])
				s1 += float64(row[p+1]) * float64(x[p+1])
				s2 += float64(row[p+2]) * float64(x[p+2])
				s3 += float64(row[p+3]) * float64(x[p+3])
			}
			for ; p < n; p++ {
				s0 += float64(row[p]) * float64(x[p])
			}
			y[i] = float32(s0 + s1 + s2 + s3)
		}
	})
}

// MatVec64 computes y = A·x for row-major A (m×n, leading dimension lda).
func MatVec64(m, n int, a []float64, lda int, x, y []float64) {
	ParallelFor(m, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a[i*lda : i*lda+n]
			var s0, s1, s2, s3 float64
			p := 0
			for ; p+4 <= n; p += 4 {
				s0 += row[p] * x[p]
				s1 += row[p+1] * x[p+1]
				s2 += row[p+2] * x[p+2]
				s3 += row[p+3] * x[p+3]
			}
			for ; p < n; p++ {
				s0 += row[p] * x[p]
			}
			y[i] = s0 + s1 + s2 + s3
		}
	})
}

// Dot32 returns x·y accumulated in float64.
func Dot32(x, y []float32) float64 {
	var s0, s1, s2, s3 float64
	p := 0
	for ; p+4 <= len(x); p += 4 {
		s0 += float64(x[p]) * float64(y[p])
		s1 += float64(x[p+1]) * float64(y[p+1])
		s2 += float64(x[p+2]) * float64(y[p+2])
		s3 += float64(x[p+3]) * float64(y[p+3])
	}
	for ; p < len(x); p++ {
		s0 += float64(x[p]) * float64(y[p])
	}
	return s0 + s1 + s2 + s3
}

// Dot64 returns x·y.
func Dot64(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	p := 0
	for ; p+4 <= len(x); p += 4 {
		s0 += x[p] * y[p]
		s1 += x[p+1] * y[p+1]
		s2 += x[p+2] * y[p+2]
		s3 += x[p+3] * y[p+3]
	}
	for ; p < len(x); p++ {
		s0 += x[p] * y[p]
	}
	return s0 + s1 + s2 + s3
}

// Axpy32 computes z = alpha·x + y element-wise.
func Axpy32(alpha float32, x, y, z []float32) {
	ParallelFor(len(z), 1<<14, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			z[i] = alpha*x[i] + y[i]
		}
	})
}

// Axpy64 computes z = alpha·x + y element-wise.
func Axpy64(alpha float64, x, y, z []float64) {
	ParallelFor(len(z), 1<<14, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			z[i] = alpha*x[i] + y[i]
		}
	})
}

// Add32 accumulates src into dst element-wise (dst += src).
func Add32(dst, src []float32) {
	ParallelFor(len(dst), 1<<14, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += src[i]
		}
	})
}

// Add64 accumulates src into dst element-wise (dst += src).
func Add64(dst, src []float64) {
	ParallelFor(len(dst), 1<<14, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += src[i]
		}
	})
}

// transposeBlk is the square cache block of the out-of-place transpose.
const transposeBlk = 32

// Transpose32 writes dst = srcᵀ for row-major src (m×n); dst is n×m.
// Row-blocks of the source transpose in parallel.
func Transpose32(m, n int, src, dst []float32) {
	mBlocks := (m + transposeBlk - 1) / transposeBlk
	ParallelFor(mBlocks, 1, func(lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			ii := blk * transposeBlk
			iMax := min(ii+transposeBlk, m)
			for jj := 0; jj < n; jj += transposeBlk {
				jMax := min(jj+transposeBlk, n)
				for i := ii; i < iMax; i++ {
					for j := jj; j < jMax; j++ {
						dst[j*m+i] = src[i*n+j]
					}
				}
			}
		}
	})
}

// Transpose64 writes dst = srcᵀ for row-major src (m×n); dst is n×m.
func Transpose64(m, n int, src, dst []float64) {
	mBlocks := (m + transposeBlk - 1) / transposeBlk
	ParallelFor(mBlocks, 1, func(lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			ii := blk * transposeBlk
			iMax := min(ii+transposeBlk, m)
			for jj := 0; jj < n; jj += transposeBlk {
				jMax := min(jj+transposeBlk, n)
				for i := ii; i < iMax; i++ {
					for j := jj; j < jMax; j++ {
						dst[j*m+i] = src[i*n+j]
					}
				}
			}
		}
	})
}
