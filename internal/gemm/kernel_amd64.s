//go:build amd64

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func sgemm6x16(kc int64, ap, bp, c *float32, ldc int64)
//
// C[0:6][0:16] += Ap·Bp over kc steps. Ap is packed 6 floats per step
// (column of the A micro-panel), Bp 16 floats per step (row of the B
// micro-panel), C has row stride ldc floats. Twelve ymm accumulators hold
// the 6×16 tile; each step is 2 B loads, 6 A broadcasts and 12 FMAs.
TEXT ·sgemm6x16(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), AX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ c+24(FP), CX
	MOVQ ldc+32(FP), DX
	SHLQ $2, DX                  // row stride in bytes

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

	TESTQ AX, AX
	JZ    sdone

sloop:
	VMOVUPS (BX), Y12            // B[p][0:8]
	VMOVUPS 32(BX), Y13          // B[p][8:16]

	VBROADCASTSS (SI), Y14
	VFMADD231PS  Y12, Y14, Y0
	VFMADD231PS  Y13, Y14, Y1
	VBROADCASTSS 4(SI), Y14
	VFMADD231PS  Y12, Y14, Y2
	VFMADD231PS  Y13, Y14, Y3
	VBROADCASTSS 8(SI), Y14
	VFMADD231PS  Y12, Y14, Y4
	VFMADD231PS  Y13, Y14, Y5
	VBROADCASTSS 12(SI), Y14
	VFMADD231PS  Y12, Y14, Y6
	VFMADD231PS  Y13, Y14, Y7
	VBROADCASTSS 16(SI), Y14
	VFMADD231PS  Y12, Y14, Y8
	VFMADD231PS  Y13, Y14, Y9
	VBROADCASTSS 20(SI), Y14
	VFMADD231PS  Y12, Y14, Y10
	VFMADD231PS  Y13, Y14, Y11

	ADDQ $24, SI
	ADDQ $64, BX
	DECQ AX
	JNZ  sloop

sdone:
	VADDPS  (CX), Y0, Y0         // C += accumulators, row by row
	VMOVUPS Y0, (CX)
	VADDPS  32(CX), Y1, Y1
	VMOVUPS Y1, 32(CX)
	ADDQ    DX, CX
	VADDPS  (CX), Y2, Y2
	VMOVUPS Y2, (CX)
	VADDPS  32(CX), Y3, Y3
	VMOVUPS Y3, 32(CX)
	ADDQ    DX, CX
	VADDPS  (CX), Y4, Y4
	VMOVUPS Y4, (CX)
	VADDPS  32(CX), Y5, Y5
	VMOVUPS Y5, 32(CX)
	ADDQ    DX, CX
	VADDPS  (CX), Y6, Y6
	VMOVUPS Y6, (CX)
	VADDPS  32(CX), Y7, Y7
	VMOVUPS Y7, 32(CX)
	ADDQ    DX, CX
	VADDPS  (CX), Y8, Y8
	VMOVUPS Y8, (CX)
	VADDPS  32(CX), Y9, Y9
	VMOVUPS Y9, 32(CX)
	ADDQ    DX, CX
	VADDPS  (CX), Y10, Y10
	VMOVUPS Y10, (CX)
	VADDPS  32(CX), Y11, Y11
	VMOVUPS Y11, 32(CX)
	VZEROUPPER
	RET

// func dgemm6x8(kc int64, ap, bp, c *float64, ldc int64)
//
// C[0:6][0:8] += Ap·Bp over kc steps, float64. Same structure as the
// float32 kernel: 12 accumulators, 2 B loads, 6 broadcasts, 12 FMAs per
// step.
TEXT ·dgemm6x8(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), AX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ c+24(FP), CX
	MOVQ ldc+32(FP), DX
	SHLQ $3, DX                  // row stride in bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

	TESTQ AX, AX
	JZ    ddone

dloop:
	VMOVUPD (BX), Y12            // B[p][0:4]
	VMOVUPD 32(BX), Y13          // B[p][4:8]

	VBROADCASTSD (SI), Y14
	VFMADD231PD  Y12, Y14, Y0
	VFMADD231PD  Y13, Y14, Y1
	VBROADCASTSD 8(SI), Y14
	VFMADD231PD  Y12, Y14, Y2
	VFMADD231PD  Y13, Y14, Y3
	VBROADCASTSD 16(SI), Y14
	VFMADD231PD  Y12, Y14, Y4
	VFMADD231PD  Y13, Y14, Y5
	VBROADCASTSD 24(SI), Y14
	VFMADD231PD  Y12, Y14, Y6
	VFMADD231PD  Y13, Y14, Y7
	VBROADCASTSD 32(SI), Y14
	VFMADD231PD  Y12, Y14, Y8
	VFMADD231PD  Y13, Y14, Y9
	VBROADCASTSD 40(SI), Y14
	VFMADD231PD  Y12, Y14, Y10
	VFMADD231PD  Y13, Y14, Y11

	ADDQ $48, SI
	ADDQ $64, BX
	DECQ AX
	JNZ  dloop

ddone:
	VADDPD  (CX), Y0, Y0
	VMOVUPD Y0, (CX)
	VADDPD  32(CX), Y1, Y1
	VMOVUPD Y1, 32(CX)
	ADDQ    DX, CX
	VADDPD  (CX), Y2, Y2
	VMOVUPD Y2, (CX)
	VADDPD  32(CX), Y3, Y3
	VMOVUPD Y3, 32(CX)
	ADDQ    DX, CX
	VADDPD  (CX), Y4, Y4
	VMOVUPD Y4, (CX)
	VADDPD  32(CX), Y5, Y5
	VMOVUPD Y5, 32(CX)
	ADDQ    DX, CX
	VADDPD  (CX), Y6, Y6
	VMOVUPD Y6, (CX)
	VADDPD  32(CX), Y7, Y7
	VMOVUPD Y7, 32(CX)
	ADDQ    DX, CX
	VADDPD  (CX), Y8, Y8
	VMOVUPD Y8, (CX)
	VADDPD  32(CX), Y9, Y9
	VMOVUPD Y9, 32(CX)
	ADDQ    DX, CX
	VADDPD  (CX), Y10, Y10
	VMOVUPD Y10, (CX)
	VADDPD  32(CX), Y11, Y11
	VMOVUPD Y11, 32(CX)
	VZEROUPPER
	RET
