package gemm

import "sync"

// Cache blocking parameters (elements, not bytes). kcBlock keeps one packed
// B micro-panel (kc×nr) plus one A micro-panel (mr×kc) L1-resident; mcBlock
// sizes the packed A panel (mc×kc) for L2. mcBlock is a common multiple of
// both micro-kernel heights (4 and 6) so full blocks decompose into whole
// micro-panels.
const (
	kcBlock = 256
	mcBlock = 72
)

// bufPool recycles packing buffers across GEMM calls and workers.
type bufPool[T any] struct{ p sync.Pool }

func (b *bufPool[T]) get(n int) []T {
	if v := b.p.Get(); v != nil {
		if s := v.([]T); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]T, n)
}

func (b *bufPool[T]) put(s []T) { b.p.Put(s) }

// Per-role pools: packed-B panels are several MB while packed-A blocks are
// tens of KB, so mixing them in one pool would let the small buffers evict
// the large ones from reuse.
var (
	apPool32 bufPool[float32]
	bpPool32 bufPool[float32]
	apPool64 bufPool[float64]
	bpPool64 bufPool[float64]
)

// Gemm32 computes C += op(A)·op(B) in float32, where op optionally
// transposes its argument. op(A) is m×k, op(B) is k×n, C is m×n. Matrices
// are row-major with leading dimensions lda/ldb/ldc (the stride between
// stored rows, which must be at least the stored row length). C must not
// alias A or B.
//
// The engine packs panels of A and B into contiguous cache-blocked buffers
// and drives a register-blocked micro-kernel over them; row-panels of C are
// computed in parallel on the shared worker pool.
func Gemm32(transA, transB bool, m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	mr, nr := mr32, nr32
	kern := kern32
	nStrips := (n + nr - 1) / nr
	for pc := 0; pc < k; pc += kcBlock {
		kc := min(kcBlock, k-pc)
		bp := bpPool32.get(nStrips * kc * nr)
		packB32(bp, b, ldb, transB, pc, kc, n, nr)
		mBlocks := (m + mcBlock - 1) / mcBlock
		ParallelFor(mBlocks, 1, func(lo, hi int) {
			ap := apPool32.get(mcBlock * kc)
			var tmpArr [6 * 16]float32 // spill tile, large enough for any mr×nr
			tmp := tmpArr[:mr*nr]
			for blk := lo; blk < hi; blk++ {
				ic := blk * mcBlock
				mc := min(mcBlock, m-ic)
				packA32(ap, a, lda, transA, ic, mc, pc, kc, mr)
				iStrips := (mc + mr - 1) / mr
				for js := 0; js < nStrips; js++ {
					bs := bp[js*kc*nr:]
					jn := min(nr, n-js*nr)
					for is := 0; is < iStrips; is++ {
						as := ap[is*kc*mr:]
						im := min(mr, mc-is*mr)
						ci, cj := ic+is*mr, js*nr
						if im == mr && jn == nr {
							kern(kc, as, bs, c[ci*ldc+cj:], ldc)
						} else {
							// Edge tile: compute into a spill buffer, then
							// accumulate only the valid region into C.
							clear(tmp)
							kern(kc, as, bs, tmp, nr)
							for r := 0; r < im; r++ {
								dst := c[(ci+r)*ldc+cj : (ci+r)*ldc+cj+jn]
								src := tmp[r*nr : r*nr+jn]
								for x := range dst {
									dst[x] += src[x]
								}
							}
						}
					}
				}
			}
			apPool32.put(ap)
		})
		bpPool32.put(bp)
	}
}

// Gemm64 computes C += op(A)·op(B) in float64. See Gemm32 for conventions.
func Gemm64(transA, transB bool, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	mr, nr := mr64, nr64
	kern := kern64
	nStrips := (n + nr - 1) / nr
	for pc := 0; pc < k; pc += kcBlock {
		kc := min(kcBlock, k-pc)
		bp := bpPool64.get(nStrips * kc * nr)
		packB64(bp, b, ldb, transB, pc, kc, n, nr)
		mBlocks := (m + mcBlock - 1) / mcBlock
		ParallelFor(mBlocks, 1, func(lo, hi int) {
			ap := apPool64.get(mcBlock * kc)
			var tmpArr [6 * 8]float64 // spill tile, large enough for any mr×nr
			tmp := tmpArr[:mr*nr]
			for blk := lo; blk < hi; blk++ {
				ic := blk * mcBlock
				mc := min(mcBlock, m-ic)
				packA64(ap, a, lda, transA, ic, mc, pc, kc, mr)
				iStrips := (mc + mr - 1) / mr
				for js := 0; js < nStrips; js++ {
					bs := bp[js*kc*nr:]
					jn := min(nr, n-js*nr)
					for is := 0; is < iStrips; is++ {
						as := ap[is*kc*mr:]
						im := min(mr, mc-is*mr)
						ci, cj := ic+is*mr, js*nr
						if im == mr && jn == nr {
							kern(kc, as, bs, c[ci*ldc+cj:], ldc)
						} else {
							clear(tmp)
							kern(kc, as, bs, tmp, nr)
							for r := 0; r < im; r++ {
								dst := c[(ci+r)*ldc+cj : (ci+r)*ldc+cj+jn]
								src := tmp[r*nr : r*nr+jn]
								for x := range dst {
									dst[x] += src[x]
								}
							}
						}
					}
				}
			}
			apPool64.put(ap)
		})
		bpPool64.put(bp)
	}
}

// Flops returns the floating point operations of an m×k by k×n GEMM.
func Flops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }
