package gemm

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// refGemm is the reference O(mnk) triple loop in float64, with explicit
// transposition.
func refGemm(transA, transB bool, m, n, k int, a, b []float64) []float64 {
	at := func(i, p int) float64 {
		if transA {
			return a[p*m+i]
		}
		return a[i*k+p]
	}
	bt := func(p, j int) float64 {
		if transB {
			return b[j*k+p]
		}
		return b[p*n+j]
	}
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			c[i*n+j] = s
		}
	}
	return c
}

func fillRand(dst []float64, seed uint64) {
	s := seed
	for i := range dst {
		s = s*6364136223846793005 + 1442695040888963407
		dst[i] = float64(s>>11)/float64(1<<53)*2 - 1
	}
}

// forceGoKernels switches the engine to the portable 4×4 kernels for the
// duration of the test, so both code paths run under the same suite.
func forceGoKernels(t *testing.T) {
	t.Helper()
	omr32, onr32, ok32 := mr32, nr32, kern32
	omr64, onr64, ok64 := mr64, nr64, kern64
	mr32, nr32, kern32 = 4, 4, kernelGo32
	mr64, nr64, kern64 = 4, 4, kernelGo64
	t.Cleanup(func() {
		mr32, nr32, kern32 = omr32, onr32, ok32
		mr64, nr64, kern64 = omr64, onr64, ok64
	})
}

// shapes covers degenerate, prime and non-divisible dimensions well below,
// at and above every blocking boundary.
var shapes = [][3]int{
	{1, 1, 1}, {1, 7, 1}, {7, 1, 13}, {2, 3, 4}, {5, 5, 5},
	{17, 31, 13}, {31, 17, 29}, {64, 64, 64}, {73, 89, 97},
	{6, 16, 256}, {12, 32, 257}, {100, 3, 300}, {1, 97, 260},
}

func checkGemm32(t *testing.T, transA, transB bool, m, n, k int) {
	t.Helper()
	ref := make([]float64, m*k)
	rbf := make([]float64, k*n)
	fillRand(ref, uint64(m*1000003+n*1009+k))
	fillRand(rbf, uint64(m*31+n*37+k*41+7))
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i, v := range ref {
		a[i] = float32(v)
	}
	for i, v := range rbf {
		b[i] = float32(v)
	}
	// Re-round through float32 so the reference sees the same inputs.
	for i, v := range a {
		ref[i] = float64(v)
	}
	for i, v := range b {
		rbf[i] = float64(v)
	}
	lda, ldb := k, n
	if transA {
		lda = m
	}
	if transB {
		ldb = k
	}
	c := make([]float32, m*n)
	Gemm32(transA, transB, m, n, k, a, lda, b, ldb, c, n)
	want := refGemm(transA, transB, m, n, k, ref, rbf)
	for i := range want {
		diff := math.Abs(float64(c[i]) - want[i])
		tol := 1e-4 * math.Max(1, math.Abs(want[i])) * math.Max(1, float64(k)/64)
		if diff > tol {
			t.Fatalf("ta=%v tb=%v m=%d n=%d k=%d: c[%d]=%v want %v", transA, transB, m, n, k, i, c[i], want[i])
		}
	}
}

func checkGemm64(t *testing.T, transA, transB bool, m, n, k int) {
	t.Helper()
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	fillRand(a, uint64(m*131+n*137+k*139))
	fillRand(b, uint64(m*17+n*19+k*23+3))
	lda, ldb := k, n
	if transA {
		lda = m
	}
	if transB {
		ldb = k
	}
	c := make([]float64, m*n)
	Gemm64(transA, transB, m, n, k, a, lda, b, ldb, c, n)
	want := refGemm(transA, transB, m, n, k, a, b)
	for i := range want {
		diff := math.Abs(c[i] - want[i])
		if diff > 1e-10*math.Max(1, math.Abs(want[i]))*float64(k) {
			t.Fatalf("ta=%v tb=%v m=%d n=%d k=%d: c[%d]=%v want %v", transA, transB, m, n, k, i, c[i], want[i])
		}
	}
}

func runGemmSuite(t *testing.T) {
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				checkGemm32(t, ta, tb, m, n, k)
				checkGemm64(t, ta, tb, m, n, k)
			}
		}
	}
}

func TestGemmAgainstReference(t *testing.T) { runGemmSuite(t) }
func TestGemmAgainstReferenceGoKernels(t *testing.T) {
	forceGoKernels(t)
	runGemmSuite(t)
}

// Property: random shapes up to a few blocking boundaries agree with the
// reference for every transpose combination.
func TestGemmRandomShapesProperty(t *testing.T) {
	f := func(mRaw, nRaw, kRaw uint8, ta, tb bool) bool {
		m, n, k := 1+int(mRaw)%90, 1+int(nRaw)%90, 1+int(kRaw)%90
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		fillRand(a, uint64(m)<<16|uint64(n)<<8|uint64(k))
		fillRand(b, uint64(k)<<16|uint64(m)<<8|uint64(n)+1)
		lda, ldb := k, n
		if ta {
			lda = m
		}
		if tb {
			ldb = k
		}
		c := make([]float64, m*n)
		Gemm64(ta, tb, m, n, k, a, lda, b, ldb, c, n)
		want := refGemm(ta, tb, m, n, k, a, b)
		for i := range want {
			if math.Abs(c[i]-want[i]) > 1e-10*math.Max(1, math.Abs(want[i]))*float64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Gemm accumulates into C (C += A·B): two calls must sum.
func TestGemmAccumulates(t *testing.T) {
	m, n, k := 9, 11, 7
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	fillRand(a, 1)
	fillRand(b, 2)
	c := make([]float64, m*n)
	Gemm64(false, false, m, n, k, a, k, b, n, c, n)
	Gemm64(false, false, m, n, k, a, k, b, n, c, n)
	want := refGemm(false, false, m, n, k, a, b)
	for i := range want {
		if math.Abs(c[i]-2*want[i]) > 1e-9 {
			t.Fatalf("c[%d]=%v want %v", i, c[i], 2*want[i])
		}
	}
}

// IEEE propagation: a zero multiplicand must not short-circuit NaN or Inf
// (0·NaN = NaN, 0·Inf = NaN) — the seed's naive kernel skipped zero A
// elements and silently dropped both.
func TestGemmNaNInfPropagation(t *testing.T) {
	check := func(t *testing.T) {
		t.Helper()
		for _, special := range []float64{math.NaN(), math.Inf(1)} {
			m, n, k := 7, 9, 11
			// A is all zeros; B carries the special value in one column.
			a64 := make([]float64, m*k)
			b64 := make([]float64, k*n)
			for p := 0; p < k; p++ {
				b64[p*n+4] = special
			}
			c64 := make([]float64, m*n)
			Gemm64(false, false, m, n, k, a64, k, b64, n, c64, n)
			for i := 0; i < m; i++ {
				if !math.IsNaN(c64[i*n+4]) {
					t.Fatalf("f64: C[%d][4] = %v, want NaN from 0·%v", i, c64[i*n+4], special)
				}
				if c64[i*n+0] != 0 {
					t.Fatalf("f64: C[%d][0] = %v, want 0", i, c64[i*n+0])
				}
			}
			a32 := make([]float32, m*k)
			b32 := make([]float32, k*n)
			for p := 0; p < k; p++ {
				b32[p*n+4] = float32(special)
			}
			c32 := make([]float32, m*n)
			Gemm32(false, false, m, n, k, a32, k, b32, n, c32, n)
			for i := 0; i < m; i++ {
				if !math.IsNaN(float64(c32[i*n+4])) {
					t.Fatalf("f32: C[%d][4] = %v, want NaN from 0·%v", i, c32[i*n+4], special)
				}
			}
		}
	}
	t.Run("active", check)
	t.Run("go-kernels", func(t *testing.T) {
		forceGoKernels(t)
		check(t)
	})
}

// NaN in A must reach every output it participates in.
func TestGemmNaNInA(t *testing.T) {
	m, n, k := 5, 6, 8
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	fillRand(b, 3)
	a[2*k+3] = math.NaN() // row 2 of op(A)
	c := make([]float64, m*n)
	Gemm64(false, false, m, n, k, a, k, b, n, c, n)
	for j := 0; j < n; j++ {
		if !math.IsNaN(c[2*n+j]) {
			t.Fatalf("C[2][%d] = %v, want NaN", j, c[2*n+j])
		}
	}
	for j := 0; j < n; j++ {
		if math.IsNaN(c[0*n+j]) {
			t.Fatalf("C[0][%d] is NaN but row 0 of A has none", j)
		}
	}
}

func TestMatVecAgainstReference(t *testing.T) {
	for _, sh := range [][2]int{{1, 1}, {5, 3}, {17, 31}, {64, 64}, {129, 200}} {
		m, n := sh[0], sh[1]
		a := make([]float64, m*n)
		x := make([]float64, n)
		fillRand(a, uint64(m*7+n))
		fillRand(x, uint64(n*13+m))
		y := make([]float64, m)
		MatVec64(m, n, a, n, x, y)
		for i := 0; i < m; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += a[i*n+j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-10*math.Max(1, math.Abs(want))*float64(n) {
				t.Fatalf("m=%d n=%d: y[%d]=%v want %v", m, n, i, y[i], want)
			}
		}
		a32 := make([]float32, m*n)
		x32 := make([]float32, n)
		for i, v := range a {
			a32[i] = float32(v)
		}
		for i, v := range x {
			x32[i] = float32(v)
		}
		y32 := make([]float32, m)
		MatVec32(m, n, a32, n, x32, y32)
		for i := 0; i < m; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += float64(a32[i*n+j]) * float64(x32[j])
			}
			if math.Abs(float64(y32[i])-want) > 1e-4*math.Max(1, math.Abs(want)) {
				t.Fatalf("f32 m=%d n=%d: y[%d]=%v want %v", m, n, i, y32[i], want)
			}
		}
	}
}

func TestDotAxpyAdd(t *testing.T) {
	n := 1037
	x := make([]float64, n)
	y := make([]float64, n)
	fillRand(x, 11)
	fillRand(y, 12)
	var want float64
	for i := range x {
		want += x[i] * y[i]
	}
	if got := Dot64(x, y); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Dot64 = %v, want %v", got, want)
	}
	x32 := make([]float32, n)
	y32 := make([]float32, n)
	for i := range x {
		x32[i], y32[i] = float32(x[i]), float32(y[i])
	}
	want = 0
	for i := range x32 {
		want += float64(x32[i]) * float64(y32[i])
	}
	if got := Dot32(x32, y32); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Dot32 = %v, want %v", got, want)
	}

	z := make([]float64, n)
	Axpy64(2.5, x, y, z)
	for i := range z {
		if math.Abs(z[i]-(2.5*x[i]+y[i])) > 1e-12 {
			t.Fatalf("Axpy64[%d]", i)
		}
	}
	dst := append([]float64(nil), x...)
	Add64(dst, y)
	for i := range dst {
		if math.Abs(dst[i]-(x[i]+y[i])) > 1e-12 {
			t.Fatalf("Add64[%d]", i)
		}
	}
	z32 := make([]float32, n)
	Axpy32(0.5, x32, y32, z32)
	for i := range z32 {
		if z32[i] != 0.5*x32[i]+y32[i] {
			t.Fatalf("Axpy32[%d]", i)
		}
	}
	dst32 := append([]float32(nil), x32...)
	Add32(dst32, y32)
	for i := range dst32 {
		if dst32[i] != x32[i]+y32[i] {
			t.Fatalf("Add32[%d]", i)
		}
	}
}

func TestTranspose(t *testing.T) {
	for _, sh := range [][2]int{{1, 1}, {3, 7}, {32, 32}, {33, 65}, {100, 13}} {
		m, n := sh[0], sh[1]
		src := make([]float64, m*n)
		fillRand(src, uint64(m+n))
		dst := make([]float64, m*n)
		Transpose64(m, n, src, dst)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if dst[j*m+i] != src[i*n+j] {
					t.Fatalf("T64 %dx%d mismatch at %d,%d", m, n, i, j)
				}
			}
		}
		src32 := make([]float32, m*n)
		for i, v := range src {
			src32[i] = float32(v)
		}
		dst32 := make([]float32, m*n)
		Transpose32(m, n, src32, dst32)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if dst32[j*m+i] != src32[i*n+j] {
					t.Fatalf("T32 %dx%d mismatch at %d,%d", m, n, i, j)
				}
			}
		}
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	f := func(nRaw uint16, grainRaw uint8) bool {
		n := int(nRaw % 5000)
		hits := make([]int32, n)
		ParallelFor(n, int(grainRaw), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Nested ParallelFor must complete (the pool's help-first wait prevents
// worker starvation) and cover every element exactly once.
func TestParallelForNested(t *testing.T) {
	outer, inner := 37, 211
	hits := make([]int32, outer*inner)
	ParallelFor(outer, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			i := i
			ParallelFor(inner, 8, func(jlo, jhi int) {
				for j := jlo; j < jhi; j++ {
					atomic.AddInt32(&hits[i*inner+j], 1)
				}
			})
		}
	})
	for idx, h := range hits {
		if h != 1 {
			t.Fatalf("element %d covered %d times", idx, h)
		}
	}
}

// The parallelism bound must follow GOMAXPROCS at call time.
func TestParallelForFollowsGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	var concurrent, maxSeen int32
	ParallelFor(64, 1, func(lo, hi int) {
		cur := atomic.AddInt32(&concurrent, 1)
		for {
			prev := atomic.LoadInt32(&maxSeen)
			if cur <= prev || atomic.CompareAndSwapInt32(&maxSeen, prev, cur) {
				break
			}
		}
		atomic.AddInt32(&concurrent, -1)
	})
	if maxSeen > 1 {
		t.Fatalf("GOMAXPROCS(1) but saw %d concurrent chunks", maxSeen)
	}
	if Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", Workers())
	}
}

// The full engine must be race-clean when many goroutines multiply
// concurrently (exercised under -race in CI).
func TestGemmConcurrentCallers(t *testing.T) {
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			m, n, k := 65, 47, 129
			a := make([]float64, m*k)
			b := make([]float64, k*n)
			fillRand(a, uint64(g*2+1))
			fillRand(b, uint64(g*2+2))
			c := make([]float64, m*n)
			Gemm64(false, false, m, n, k, a, k, b, n, c, n)
			want := refGemm(false, false, m, n, k, a, b)
			for i := range want {
				if math.Abs(c[i]-want[i]) > 1e-9 {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errString("concurrent gemm mismatch")

type errString string

func (e errString) Error() string { return string(e) }
