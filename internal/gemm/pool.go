// Package gemm is the dense-compute engine behind the runtime's linear
// algebra kernels: a packed, register-blocked GEMM (BLAS-3 style blocking
// over M/N/K with cache-resident panels and an unrolled micro-kernel),
// matrix-vector and fused vector kernels, and the persistent worker pool
// every op kernel shares.
//
// On amd64 hosts with AVX and FMA the micro-kernels are hand-written
// assembly (6×16 float32, 6×8 float64); everywhere else a portable 4×4
// register-blocked Go kernel is used. Selection happens once at init and
// can be forced to the portable path with TFHPC_NOSIMD=1.
//
// All kernels follow IEEE semantics: no value-dependent shortcuts, so NaN
// and Inf propagate exactly as a naive triple loop would.
package gemm

import (
	"runtime"
	"sync"
)

// poolTask is one contiguous chunk of a ParallelFor dispatched to the pool.
type poolTask struct {
	body   func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolMu      sync.Mutex
	poolStarted int           // workers spawned so far (they never exit)
	poolTasks   chan poolTask // shared run queue; never closed
)

// ensureWorkers grows the persistent pool to at least n workers. Workers
// park on the shared queue between calls, so steady-state ParallelFor does
// no goroutine creation. The pool only ever grows; when GOMAXPROCS shrinks,
// ParallelFor simply dispatches fewer chunks and the extra workers idle.
func ensureWorkers(n int) chan poolTask {
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolTasks == nil {
		poolTasks = make(chan poolTask, 1024)
	}
	for poolStarted < n {
		poolStarted++
		go func() {
			for t := range poolTasks {
				t.body(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
	return poolTasks
}

// Workers returns the current parallelism bound. It follows
// runtime.GOMAXPROCS(0) on every call, so tests and operators can bound
// kernel parallelism at runtime.
func Workers() int { return runtime.GOMAXPROCS(0) }

// ParallelFor splits [0, n) into contiguous chunks of at least grain
// iterations and runs body(lo, hi) across the persistent worker pool. The
// caller executes the final chunk itself and, while waiting, helps drain
// the queue — so nested ParallelFor calls cannot deadlock the pool. Small
// ranges run inline to avoid dispatch overhead.
func ParallelFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := n / grain
	if max := Workers(); chunks > max {
		chunks = max
	}
	if chunks <= 1 {
		body(0, n)
		return
	}
	tasks := ensureWorkers(chunks - 1)
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	lo := 0
	for lo+size < n {
		wg.Add(1)
		t := poolTask{body: body, lo: lo, hi: lo + size, wg: &wg}
		select {
		case tasks <- t:
		default: // queue full: run inline rather than block
			body(t.lo, t.hi)
			wg.Done()
		}
		lo += size
	}
	body(lo, n)
	// Help-first wait: drain queued tasks (ours or anyone's) until the
	// queue is empty, then block. Any task we still wait on is running on
	// another goroutine, so progress is guaranteed.
	for {
		select {
		case t := <-tasks:
			t.body(t.lo, t.hi)
			t.wg.Done()
		default:
			wg.Wait()
			return
		}
	}
}
