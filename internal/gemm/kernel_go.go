package gemm

// Portable register-blocked micro-kernels: 4×4 tiles held in sixteen scalar
// accumulators, fully unrolled over the tile so the inner loop does 16
// multiply-adds per 8 loads with no stores to C until the end. These are
// the fallback when no SIMD kernel is available for the host. There is
// deliberately no value-dependent shortcut (e.g. skipping zero
// multiplicands): 0·NaN must stay NaN.

// Micro-kernel geometry and implementation, selected at init. A kernel
// computes C[0:mr][0:nr] += Ap·Bp from packed micro-panels, where
// Ap[p*mr+r] = op(A)[r][p] and Bp[p*nr+c] = op(B)[p][c], and C has row
// stride ldc.
var (
	mr32, nr32 = 4, 4
	mr64, nr64 = 4, 4
	kern32     = kernelGo32
	kern64     = kernelGo64
	kernelName = "portable-go"
)

// KernelName identifies the micro-kernel implementation selected at init
// ("avx-fma" on capable amd64 hosts, "portable-go" otherwise).
func KernelName() string { return kernelName }

func kernelGo32(kc int, ap, bp []float32, c []float32, ldc int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	for p := 0; p < kc; p++ {
		a := ap[4*p : 4*p+4 : 4*p+4]
		b := bp[4*p : 4*p+4 : 4*p+4]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	r0 := c[0*ldc : 0*ldc+4 : 0*ldc+4]
	r0[0] += c00
	r0[1] += c01
	r0[2] += c02
	r0[3] += c03
	r1 := c[1*ldc : 1*ldc+4 : 1*ldc+4]
	r1[0] += c10
	r1[1] += c11
	r1[2] += c12
	r1[3] += c13
	r2 := c[2*ldc : 2*ldc+4 : 2*ldc+4]
	r2[0] += c20
	r2[1] += c21
	r2[2] += c22
	r2[3] += c23
	r3 := c[3*ldc : 3*ldc+4 : 3*ldc+4]
	r3[0] += c30
	r3[1] += c31
	r3[2] += c32
	r3[3] += c33
}

func kernelGo64(kc int, ap, bp []float64, c []float64, ldc int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for p := 0; p < kc; p++ {
		a := ap[4*p : 4*p+4 : 4*p+4]
		b := bp[4*p : 4*p+4 : 4*p+4]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	r0 := c[0*ldc : 0*ldc+4 : 0*ldc+4]
	r0[0] += c00
	r0[1] += c01
	r0[2] += c02
	r0[3] += c03
	r1 := c[1*ldc : 1*ldc+4 : 1*ldc+4]
	r1[0] += c10
	r1[1] += c11
	r1[2] += c12
	r1[3] += c13
	r2 := c[2*ldc : 2*ldc+4 : 2*ldc+4]
	r2[0] += c20
	r2[1] += c21
	r2[2] += c22
	r2[3] += c23
	r3 := c[3*ldc : 3*ldc+4 : 3*ldc+4]
	r3[0] += c30
	r3[1] += c31
	r3[2] += c32
	r3[3] += c33
}
