//go:build amd64

package gemm

import "os"

// CPUID leaf 1 ECX feature bits and XCR0 state bits used to gate the AVX
// micro-kernels.
const (
	cpuidFMA     = 1 << 12
	cpuidOSXSAVE = 1 << 27
	cpuidAVX     = 1 << 28
	xcr0SSE      = 1 << 1
	xcr0AVX      = 1 << 2
)

// Implemented in kernel_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

//go:noescape
func sgemm6x16(kc int64, ap, bp, c *float32, ldc int64)

//go:noescape
func dgemm6x8(kc int64, ap, bp, c *float64, ldc int64)

// hasAVXFMA reports whether the host CPU supports the AVX+FMA micro-kernels
// and the OS preserves ymm state across context switches.
func hasAVXFMA() bool {
	_, _, ecx, _ := cpuid(1, 0)
	if ecx&cpuidFMA == 0 || ecx&cpuidAVX == 0 || ecx&cpuidOSXSAVE == 0 {
		return false
	}
	lo, _ := xgetbv()
	return lo&(xcr0SSE|xcr0AVX) == xcr0SSE|xcr0AVX
}

func kernelAVX32(kc int, ap, bp []float32, c []float32, ldc int) {
	sgemm6x16(int64(kc), &ap[0], &bp[0], &c[0], int64(ldc))
}

func kernelAVX64(kc int, ap, bp []float64, c []float64, ldc int) {
	dgemm6x8(int64(kc), &ap[0], &bp[0], &c[0], int64(ldc))
}

func init() {
	if os.Getenv("TFHPC_NOSIMD") != "" || !hasAVXFMA() {
		return
	}
	mr32, nr32, kern32 = 6, 16, kernelAVX32
	mr64, nr64, kern64 = 6, 8, kernelAVX64
	kernelName = "avx-fma"
}
