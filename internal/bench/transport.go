package bench

import (
	"os"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/rpc"
	"tfhpc/internal/tensor"
)

// The real-transport fabrics run the same ring allreduce the loopback
// sweep times, but over actual rpc servers on TCP loopback — once with a
// full Call round trip per chunk ("tcp-call", the pre-streaming
// transport), once over one persistent stream per edge ("tcp-stream"),
// and once over the in-process shared-memory rings ("shm"). The rows land
// in the same collective lattice, so bench_diff gates each fabric's bus
// bandwidth independently: a streaming edge that stops beating the call
// path, or an shm ring that stops beating TCP loopback on small payloads,
// regresses its own row.

// netFabric builds p collective groups whose edges run over real rpc
// servers on 127.0.0.1, wired for the named fabric. The returned cleanup
// closes groups, servers, and shm registrations.
func netFabric(p int, fabric string, opts collective.Options) ([]*collective.Group, func(), error) {
	hubs := make([]*collective.Hub, p)
	servers := make([]*rpc.Server, p)
	inboxes := make([]*collective.ShmInbox, p)
	groups := make([]*collective.Group, p)
	addrs := make([]string, p)
	cleanup := func() {
		for _, g := range groups {
			if g != nil {
				g.Close()
			}
		}
		for i := range servers {
			if inboxes[i] != nil {
				collective.UnregisterShm(addrs[i], inboxes[i])
				inboxes[i].Close()
			}
			if servers[i] != nil {
				servers[i].Close()
			}
		}
	}
	for i := 0; i < p; i++ {
		hubs[i] = collective.NewHub()
		servers[i] = rpc.NewServer()
		servers[i].Handle("CollSend", hubs[i].HandleSend)
		servers[i].HandleStream(collective.StreamMethod, hubs[i].HandleStream)
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		addrs[i] = addr
		if fabric == "shm" {
			inboxes[i] = collective.NewShmInbox()
			collective.RegisterShm(addr, inboxes[i])
		}
	}
	cfg := collective.TransportConfig{DisableShm: fabric != "shm"}
	if fabric == "tcp-call" {
		cfg.Mode = collective.ModeCall
	}
	for i := 0; i < p; i++ {
		tr, err := collective.NewNetTransport("bench", i, addrs, hubs[i], 30*time.Second, 1, cfg)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		groups[i] = collective.NewGroup(tr, opts)
	}
	return groups, cleanup, nil
}

// transportRows sweeps the ring allreduce at p=4 over the real fabrics,
// from latency-bound 1 KiB tensors to bandwidth-bound 1 MiB. The shm rows
// are skipped under TFHPC_NO_SHM (the fabric is then unbuildable, which
// should read as a missing feature, not a zero-bandwidth measurement).
func transportRows() ([]CollectiveRow, error) {
	const p = 4
	cases := []struct{ elems, reps int }{
		{1 << 7, 7},  // 1 KiB
		{1 << 10, 5}, // 8 KiB
		{1 << 13, 4}, // 64 KiB
		{1 << 17, 2}, // 1 MiB
	}
	fabrics := []string{"tcp-call", "tcp-stream"}
	if os.Getenv("TFHPC_NO_SHM") == "" {
		fabrics = append(fabrics, "shm")
	}
	var rows []CollectiveRow
	for _, fabric := range fabrics {
		for _, c := range cases {
			secs, err := timeNetFabric(fabric, p, c.elems, c.reps)
			if err != nil {
				return nil, err
			}
			rows = append(rows, CollectiveRow{
				Fabric:  fabric,
				Tasks:   p,
				Elems:   c.elems,
				DType:   tensor.Float64.String(),
				Algo:    "ring",
				Seconds: secs,
				BusMBps: busMBps(p, c.elems, tensor.Float64, secs),
			})
		}
	}
	return rows, nil
}

// timeNetFabric measures one (fabric, payload) point on fresh groups, so
// no lane or pool state leaks between points.
func timeNetFabric(fabric string, p, elems, reps int) (float64, error) {
	groups, cleanup, err := netFabric(p, fabric, collective.Options{})
	if err != nil {
		return 0, err
	}
	defer cleanup()
	ins := fillInputs(p, elems, tensor.Float64)
	return timeCollective(groups, ins, reps, allReduceTimer("ring"))
}
