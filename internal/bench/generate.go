package bench

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tfhpc/internal/serving/generate"
	"tfhpc/internal/tensor"
)

// GenerateRow is one measured generative-serving configuration: a scheduler
// mode (continuous = per-step admission into the in-flight batch; naive =
// flush-and-refill, the whole batch decodes to completion before anything
// new is admitted) under one load regime. Both modes run the same model,
// the same prompts, and the same mixed sequence lengths, so every
// difference is scheduling.
//
// On a serial compute-bound decoder both schedulers saturate the core, so
// the continuous-batching win is not throughput — it is admission latency.
// SpeedupVsNaive therefore means two different guarantees:
//
//   - closed-loop continuous row: continuous tokens/s over naive tokens/s.
//     Expected ≈ 1.0 — the engine's per-step scheduling (admission checks,
//     wakeups, histograms) costs nothing against a bare decode loop. The
//     gate on this row is an overhead regression tripwire.
//   - open-loop continuous row: naive TTFT p99 over continuous TTFT p99.
//     Expected well above 1 — an arrival joins the in-flight batch at the
//     next step instead of waiting out the current flush. This is the
//     number the continuous-batching thesis stands on.
type GenerateRow struct {
	Mode           string         `json:"mode"` // "continuous" | "naive"
	Load           string         `json:"load"` // "closed" | "open"
	Slots          int            `json:"slots"`
	Clients        int            `json:"clients,omitempty"`
	TargetRps      float64        `json:"target_rps,omitempty"`
	Features       int            `json:"features"`
	Requests       int            `json:"requests"`
	Tokens         int64          `json:"tokens"`
	Seconds        float64        `json:"seconds"`
	TokensPerSec   float64        `json:"tokens_per_sec"`
	TTFT           LatencySummary `json:"ttft"`
	InterToken     LatencySummary `json:"intertoken"`
	SpeedupVsNaive float64        `json:"speedup_vs_naive,omitempty"`
}

// tokenStream is the consumed surface shared by both schedulers.
type tokenStream interface {
	Next() (generate.Token, bool)
}

// genBackend is one scheduler under test.
type genBackend interface {
	submit(prompt []float64, maxTokens int) (tokenStream, error)
	close()
}

// continuousBackend is the real engine.
type continuousBackend struct {
	eng *generate.Engine
}

func newContinuousBackend(m *generate.Model, slots int) *continuousBackend {
	return &continuousBackend{eng: generate.NewEngine(m, generate.Options{
		MaxSlots:        slots,
		QueueDepth:      4096,
		DefaultDeadline: 30 * time.Second,
	})}
}

func (b *continuousBackend) submit(prompt []float64, maxTokens int) (tokenStream, error) {
	return b.eng.Submit(generate.Request{Prompt: prompt, MaxTokens: maxTokens})
}

func (b *continuousBackend) close() { b.eng.Close() }

// naiveBackend is the batch-per-step baseline: collect up to `slots`
// requests, decode the whole batch in lockstep until every member finishes,
// then refill. A short sequence's slot idles until the batch's longest
// member is done — the waste continuous admission removes.
type naiveBackend struct {
	m     *generate.Model
	slots int
	admit chan *naiveSeq
	quit  chan struct{}
	done  chan struct{}
}

type naiveSeq struct {
	prompt    []float64
	maxTokens int
	tokens    chan generate.Token
}

func (s *naiveSeq) Next() (generate.Token, bool) {
	t, ok := <-s.tokens
	return t, ok
}

func newNaiveBackend(m *generate.Model, slots int) *naiveBackend {
	b := &naiveBackend{
		m:     m,
		slots: slots,
		admit: make(chan *naiveSeq, 4096),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go b.run()
	return b
}

func (b *naiveBackend) submit(prompt []float64, maxTokens int) (tokenStream, error) {
	s := &naiveSeq{
		prompt:    prompt,
		maxTokens: maxTokens,
		// The buffer covers the whole sequence: the baseline models no
		// backpressure, so a slow consumer cannot distort its timing.
		tokens: make(chan generate.Token, maxTokens),
	}
	select {
	case b.admit <- s:
		return s, nil
	default:
		return nil, generate.ErrOverloaded
	}
}

func (b *naiveBackend) close() {
	close(b.quit)
	<-b.done
}

func (b *naiveBackend) run() {
	defer close(b.done)
	var step uint64
	for {
		// Flush: wait for a first request, then fill the batch from what is
		// already queued.
		var batch []*naiveSeq
		select {
		case <-b.quit:
			return
		case s := <-b.admit:
			batch = append(batch, s)
		}
	fill:
		for len(batch) < b.slots {
			select {
			case s := <-b.admit:
				batch = append(batch, s)
			default:
				break fill
			}
		}
		// Decode the whole batch to completion before the next admission.
		states := make([][]float64, len(batch))
		emitted := make([]int, len(batch))
		for i, s := range batch {
			states[i] = append([]float64(nil), s.prompt...)
		}
		remaining := len(batch)
		for remaining > 0 {
			select {
			case <-b.quit:
				for i, s := range batch {
					if s != nil {
						close(s.tokens)
						batch[i] = nil
					}
				}
				return
			default:
			}
			step++
			for i, s := range batch {
				if s == nil {
					continue
				}
				y := b.m.Step(states[i])
				s.tokens <- generate.Token{Index: emitted[i], Value: y, Step: step}
				emitted[i]++
				if emitted[i] >= s.maxTokens {
					close(s.tokens)
					batch[i] = nil
					remaining--
				}
			}
		}
	}
}

// genPrompts builds a reusable prompt pool.
func genPrompts(d, n int) [][]float64 {
	r := tensor.NewRNG(11)
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, d)
		for j := range p {
			p[j] = r.Float64()*2 - 1
		}
		out[i] = p
	}
	return out
}

// drainTimed consumes one stream, recording TTFT against t0 and the gaps
// between consecutive tokens.
func drainTimed(st tokenStream, t0 time.Time, ttft, inter *LatencyHist) int64 {
	var n int64
	last := t0
	for {
		_, ok := st.Next()
		if !ok {
			return n
		}
		now := time.Now()
		if n == 0 {
			if ttft != nil {
				ttft.Record(now.Sub(t0))
			}
		} else if inter != nil {
			inter.Record(now.Sub(last))
		}
		last = now
		n++
	}
}

// genClosedLoop drives `clients` concurrent callers, each submitting its
// next sequence as soon as the previous one finished, until `total`
// sequences are done. Sequence lengths cycle through `lengths` by global
// request index, so every backend sees the identical workload.
func genClosedLoop(be genBackend, prompts [][]float64, lengths []int, clients, total int,
	ttft, inter *LatencyHist) (tokens int64, elapsed float64, err error) {
	var next atomic.Int64
	var tok atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				t0 := time.Now()
				st, serr := be.submit(prompts[i%len(prompts)], lengths[i%len(lengths)])
				if serr != nil {
					firstErr.CompareAndSwap(nil, serr)
					return
				}
				tok.Add(drainTimed(st, t0, ttft, inter))
			}
		}()
	}
	wg.Wait()
	elapsed = time.Since(start).Seconds()
	if e, ok := firstErr.Load().(error); ok {
		return 0, 0, e
	}
	return tok.Load(), elapsed, nil
}

// genOpenLoop fires sequence requests at a fixed arrival rate for dur,
// regardless of completions — TTFT under this regime is where continuous
// admission visibly beats flush-and-refill: an arrival joins the in-flight
// batch at the next step instead of waiting out the current flush.
func genOpenLoop(be genBackend, prompts [][]float64, lengths []int, rate float64, dur time.Duration,
	ttft, inter *LatencyHist) (tokens int64, sent int, elapsed float64) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var tok atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for t := time.Duration(0); t < dur; t += interval {
		if d := time.Until(start.Add(t)); d > 0 {
			time.Sleep(d)
		}
		i := sent
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			st, err := be.submit(prompts[i%len(prompts)], lengths[i%len(lengths)])
			if err != nil {
				return // overload drops are not latency samples
			}
			tok.Add(drainTimed(st, t0, ttft, inter))
		}()
	}
	wg.Wait()
	return tok.Load(), sent, time.Since(start).Seconds()
}

// GenerateRows measures generative serving on this host: the continuous-
// batching engine against the flush-and-refill baseline, closed loop for
// sustained tokens/s and open loop for TTFT / inter-token tails. Mixed
// sequence lengths (128..1024 tokens) are the regime where flush-and-refill
// pays: a naive flush runs multiple milliseconds, and every arrival during
// it waits the remainder out before its first token.
func GenerateRows() ([]GenerateRow, error) {
	const (
		d        = 2048
		slots    = 4
		clients  = 16
		requests = 96
	)
	lengths := []int{128, 256, 512, 1024}
	avgLen := 0.0
	for _, l := range lengths {
		avgLen += float64(l)
	}
	avgLen /= float64(len(lengths))

	w := make([]float64, d)
	for i := range w {
		w[i] = 0.1 + 0.05*float64(i%7)
	}
	model, err := generate.NewModel("bench", w)
	if err != nil {
		return nil, err
	}
	prompts := genPrompts(d, 64)

	backends := func(mode string) genBackend {
		if mode == "continuous" {
			return newContinuousBackend(model, slots)
		}
		return newNaiveBackend(model, slots)
	}

	var rows []GenerateRow
	closedTokensPerSec := map[string]float64{}
	for _, mode := range []string{"naive", "continuous"} {
		// Warmup (uncounted), then best-of-3 measured trials by tokens/s —
		// sustained throughput on a shared single-core host is what the
		// scheduler can reach, so the best trial is the signal and the
		// others are host noise.
		var best GenerateRow
		for trial := 0; trial < 3; trial++ {
			be := backends(mode)
			if _, _, err := genClosedLoop(be, prompts, lengths, clients, requests/4, nil, nil); err != nil {
				be.close()
				return nil, err
			}
			ttft, inter := NewLatencyHist(), NewLatencyHist()
			tokens, elapsed, err := genClosedLoop(be, prompts, lengths, clients, requests, ttft, inter)
			be.close()
			if err != nil {
				return nil, err
			}
			row := GenerateRow{
				Mode: mode, Load: "closed", Slots: slots, Clients: clients,
				Features: d, Requests: requests, Tokens: tokens, Seconds: elapsed,
				TokensPerSec: float64(tokens) / elapsed,
				TTFT:         ttft.Summary(), InterToken: inter.Summary(),
			}
			if trial == 0 || row.TokensPerSec > best.TokensPerSec {
				best = row
			}
		}
		closedTokensPerSec[mode] = best.TokensPerSec
		if mode == "continuous" && closedTokensPerSec["naive"] > 0 {
			best.SpeedupVsNaive = best.TokensPerSec / closedTokensPerSec["naive"]
		}
		rows = append(rows, best)
	}

	// Open loop at ~45% of the closed-loop sequence capacity: a rate both
	// schedulers sustain with headroom, so the TTFT difference is pure
	// scheduling (join-next-step vs wait-out-the-flush), not queueing
	// collapse. Each mode runs best-of-3 trials keeping the one with the
	// lowest TTFT p99 — single-core tail measurements carry Go-scheduler
	// jitter that one bad trial would otherwise smear into the gate, the
	// same reason the collective rows measure best-of-N.
	rate := 0.45 * closedTokensPerSec["continuous"] / avgLen
	if rate < 20 {
		rate = 20
	}
	naiveTTFTp99 := 0.0
	for _, mode := range []string{"naive", "continuous"} {
		var best GenerateRow
		for trial := 0; trial < 3; trial++ {
			be := backends(mode)
			ttft, inter := NewLatencyHist(), NewLatencyHist()
			tokens, sent, elapsed := genOpenLoop(be, prompts, lengths, rate, 1200*time.Millisecond, ttft, inter)
			be.close()
			row := GenerateRow{
				Mode: mode, Load: "open", Slots: slots, TargetRps: rate,
				Features: d, Requests: sent, Tokens: tokens, Seconds: elapsed,
				TokensPerSec: float64(tokens) / elapsed,
				TTFT:         ttft.Summary(), InterToken: inter.Summary(),
			}
			if trial == 0 || row.TTFT.P99Ms < best.TTFT.P99Ms {
				best = row
			}
		}
		if mode == "naive" {
			naiveTTFTp99 = best.TTFT.P99Ms
		} else if best.TTFT.P99Ms > 0 {
			// Clamp both tails to a 1ms measurement floor before the ratio:
			// sub-millisecond p99s on this host are scheduler-noise
			// resolution (the same argument behind the diff gate's latency
			// slack), and dividing by one would make the speedup a noise
			// amplifier instead of a gateable number.
			const ttftFloorMs = 1.0
			best.SpeedupVsNaive = math.Max(naiveTTFTp99, ttftFloorMs) / math.Max(best.TTFT.P99Ms, ttftFloorMs)
		}
		rows = append(rows, best)
	}
	return rows, nil
}

// Generate renders the generative serving benchmark table.
func Generate() (string, error) {
	rows, err := GenerateRows()
	if err != nil {
		return "", err
	}
	return renderGenerate(rows), nil
}

func renderGenerate(rows []GenerateRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Generative serving: continuous batching vs flush-and-refill, %d features, %d slots, mixed lengths 128..1024\n",
		rows[0].Features, rows[0].Slots)
	sb.WriteString(fmt.Sprintf("%-11s %-7s %-8s %10s %10s %10s %10s %10s\n",
		"mode", "load", "arrive", "tok/s", "ttft-p50", "ttft-p99", "itok-p50", "itok-p99"))
	for _, r := range rows {
		load := fmt.Sprintf("%dc", r.Clients)
		if r.Load == "open" {
			load = fmt.Sprintf("%.0f/s", r.TargetRps)
		}
		speed := ""
		if r.SpeedupVsNaive > 0 {
			what := "tok/s"
			if r.Load == "open" {
				what = "ttft"
			}
			speed = fmt.Sprintf("  %s %.2fx vs naive", what, r.SpeedupVsNaive)
		}
		sb.WriteString(fmt.Sprintf("%-11s %-7s %-8s %10.0f %9.3fms %9.3fms %9.3fms %9.3fms%s\n",
			r.Mode, r.Load, load, r.TokensPerSec,
			r.TTFT.P50Ms, r.TTFT.P99Ms, r.InterToken.P50Ms, r.InterToken.P99Ms, speed))
	}
	return sb.String()
}
