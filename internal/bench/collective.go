package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/gemm"
	"tfhpc/internal/hw"
	"tfhpc/internal/simnet"
	"tfhpc/internal/tensor"
)

// CollectiveRow is one measured allreduce configuration: ring vs the
// gather-to-root baseline over the same fabric.
type CollectiveRow struct {
	// Fabric is "host" (raw in-process loopback: real memory system, no
	// wire) or a modelled interconnect ("kebnekaise-mpi", "tegner-grpc"):
	// loopback plus simnet wire occupancy per message, reductions still
	// real. On the modelled fabrics the ring's decentralisation shows up on
	// any host; on "host" it needs real cores to spread the reduction over.
	Fabric string `json:"fabric"`
	Tasks  int    `json:"tasks"`
	Elems  int    `json:"elems"`
	DType  string `json:"dtype"`
	// Bus bandwidth uses the Horovod convention 2(p−1)/p · bytes / t: the
	// per-rank wire traffic of an optimal allreduce, so algorithms are
	// comparable at any p.
	RingSeconds  float64 `json:"ring_seconds"`
	RingBusMBps  float64 `json:"ring_bus_mbps"`
	NaiveSeconds float64 `json:"naive_seconds"`
	NaiveBusMBps float64 `json:"naive_bus_mbps"`
	Speedup      float64 `json:"speedup"`
}

// timeCollective runs the operation on every rank concurrently and returns
// the best-of-reps wall time of the whole collective (one warmup rep first).
func timeCollective(groups []*collective.Group, ins []*tensor.Tensor, reps int,
	run func(g *collective.Group, in *tensor.Tensor, key string) error) (float64, error) {
	best := 0.0
	for rep := -1; rep < reps; rep++ {
		errs := make([]error, len(groups))
		start := time.Now()
		var wg sync.WaitGroup
		for r := range groups {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = run(groups[r], ins[r], fmt.Sprintf("k%d", rep))
			}(r)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		if rep >= 0 && (best == 0 || elapsed < best) {
			best = elapsed
		}
	}
	return best, nil
}

// fabricSpec builds the transports of one benchmark fabric.
type fabricSpec struct {
	name string
	// wire returns the per-message wire cost, nil for the raw host fabric.
	wire func(bytes int64) time.Duration
}

// modeledWire prices one message on a paper platform with GPU-resident
// tensors (the Horovod scenario): PCIe staging + serialization + fabric, the
// same decomposition Fig. 7 measures.
func modeledWire(c *hw.Cluster, node string, proto simnet.Protocol) func(int64) time.Duration {
	nt := c.NodeTypes[node]
	return func(bytes int64) time.Duration {
		return time.Duration(simnet.TransferTime(c, nt, proto, simnet.OnGPU, simnet.OnGPU, bytes) *
			float64(time.Second))
	}
}

func buildGroups(p int, spec fabricSpec) []*collective.Group {
	eps := collective.NewLoopback(p)
	groups := make([]*collective.Group, p)
	for i, ep := range eps {
		var tr collective.Transport = ep
		if spec.wire != nil {
			tr = collective.NewMetered(ep, spec.wire)
		}
		groups[i] = collective.NewGroup(tr, collective.Options{})
	}
	return groups
}

// CollectiveRows measures ring allreduce against the gather-to-root baseline
// on simulated tasks: in-process ranks over the raw host memory system and
// over simnet-modelled interconnects. Both algorithms move real bytes and
// reduce with the same kernels, so each row isolates the algorithmic
// difference — the serialised root versus the balanced ring.
func CollectiveRows() ([]CollectiveRow, error) {
	cases := []struct {
		fabric fabricSpec
		p      int
		elems  int
		dt     tensor.DType
		reps   int
	}{
		{fabricSpec{name: "host"}, 4, 1 << 21, tensor.Float64, 5},
		{fabricSpec{name: "host"}, 8, 1 << 21, tensor.Float64, 5},
		{fabricSpec{"kebnekaise-mpi", modeledWire(hw.Kebnekaise, "k80", simnet.MPI)}, 4, 1 << 20, tensor.Float64, 2},
		{fabricSpec{"kebnekaise-mpi", modeledWire(hw.Kebnekaise, "k80", simnet.MPI)}, 8, 1 << 20, tensor.Float64, 2},
		{fabricSpec{"tegner-grpc", modeledWire(hw.Tegner, "k420", simnet.GRPC)}, 4, 1 << 18, tensor.Float32, 2},
		{fabricSpec{"tegner-grpc", modeledWire(hw.Tegner, "k420", simnet.GRPC)}, 8, 1 << 18, tensor.Float32, 2},
	}
	var rows []CollectiveRow
	for _, c := range cases {
		groups := buildGroups(c.p, c.fabric)
		ins := make([]*tensor.Tensor, c.p)
		for r := range ins {
			t := tensor.New(c.dt, c.elems)
			switch c.dt {
			case tensor.Float64:
				d := t.F64()
				for i := range d {
					d[i] = float64((i+r)%251) * 0.017
				}
			case tensor.Float32:
				d := t.F32()
				for i := range d {
					d[i] = float32((i+r)%251) * 0.017
				}
			}
			ins[r] = t
		}
		ring, err := timeCollective(groups, ins, c.reps, func(g *collective.Group, in *tensor.Tensor, key string) error {
			_, err := g.AllReduce("ring/"+key, in, collective.OpSum)
			return err
		})
		if err != nil {
			return nil, err
		}
		naive, err := timeCollective(groups, ins, c.reps, func(g *collective.Group, in *tensor.Tensor, key string) error {
			_, err := g.NaiveAllReduce("naive/"+key, in, collective.OpSum)
			return err
		})
		if err != nil {
			return nil, err
		}
		for _, grp := range groups {
			grp.Close()
		}
		bytes := float64(c.elems) * float64(c.dt.Size())
		bus := 2 * float64(c.p-1) / float64(c.p) * bytes
		rows = append(rows, CollectiveRow{
			Fabric:       c.fabric.name,
			Tasks:        c.p,
			Elems:        c.elems,
			DType:        c.dt.String(),
			RingSeconds:  ring,
			RingBusMBps:  bus / ring / 1e6,
			NaiveSeconds: naive,
			NaiveBusMBps: bus / naive / 1e6,
			Speedup:      naive / ring,
		})
	}
	return rows, nil
}

// Collective renders the allreduce comparison table.
func Collective() (string, error) {
	rows, err := CollectiveRows()
	if err != nil {
		return "", err
	}
	return renderCollective(rows), nil
}

func renderCollective(rows []CollectiveRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ring allreduce vs gather-to-root, simulated tasks (%d pool workers) [bus MB/s]\n",
		gemm.Workers())
	sb.WriteString(fmt.Sprintf("%-16s %-6s %-9s %-9s %10s %10s %9s\n",
		"fabric", "tasks", "elems", "dtype", "ring", "gather", "speedup"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-16s %-6d %-9d %-9s %10.1f %10.1f %8.1fx\n",
			r.Fabric, r.Tasks, r.Elems, r.DType, r.RingBusMBps, r.NaiveBusMBps, r.Speedup))
	}
	return sb.String()
}
