package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/gemm"
	"tfhpc/internal/hw"
	"tfhpc/internal/simnet"
	"tfhpc/internal/tensor"
)

// CollectiveRow is one measured allreduce configuration: a single
// (fabric, group size, payload, algorithm) point, so the report gates each
// algorithm independently.
type CollectiveRow struct {
	// Fabric is "host" (raw in-process loopback: real memory system, no
	// wire) or a modelled interconnect ("kebnekaise-mpi", "tegner-grpc"):
	// loopback plus simnet wire occupancy per message, reductions still
	// real. On the modelled fabrics the balanced algorithms' decentralised
	// traffic shows up on any host; on "host" the ring needs real cores to
	// spread the reduction over, while doubling's fewer steps win on
	// latency alone.
	Fabric string `json:"fabric"`
	Tasks  int    `json:"tasks"`
	// Elems is the per-tensor element count; fusion rows post Tensors such
	// tensors per rank per pass.
	Elems   int     `json:"elems"`
	DType   string  `json:"dtype"`
	Algo    string  `json:"algo"` // ring|doubling|auto|naive|fused|unfused
	Tensors int     `json:"tensors,omitempty"`
	Seconds float64 `json:"seconds"`
	// Bus bandwidth uses the Horovod convention 2(p−1)/p · bytes / t: the
	// per-rank wire traffic of an optimal allreduce, so algorithms are
	// comparable at any p and payload.
	BusMBps float64 `json:"bus_mbps"`
}

// CollectiveResult is the collective experiment's report: the sweep rows
// plus the measured ring/doubling crossover that justifies the picker's
// default threshold.
type CollectiveResult struct {
	Rows []CollectiveRow `json:"rows"`
	// CrossoverBytes is the smallest swept per-rank payload (bytes/p,
	// loopback, p=4, f64) at which the ring was at least as fast as
	// recursive doubling; payloads below it are doubling territory.
	CrossoverBytes int64 `json:"crossover_bytes"`
	// SwitchBytes is the engine's default picker threshold, committed here
	// so the baseline records the tuning the numbers were taken under.
	SwitchBytes int `json:"switch_bytes"`
}

// timeCollective runs the operation on every rank concurrently and returns
// the best-of-reps wall time of the whole collective (one warmup rep first).
func timeCollective(groups []*collective.Group, ins []*tensor.Tensor, reps int,
	run func(g *collective.Group, in *tensor.Tensor, key string) error) (float64, error) {
	best := 0.0
	for rep := -1; rep < reps; rep++ {
		errs := make([]error, len(groups))
		start := time.Now()
		var wg sync.WaitGroup
		for r := range groups {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = run(groups[r], ins[r], fmt.Sprintf("k%d", rep))
			}(r)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		if rep >= 0 && (best == 0 || elapsed < best) {
			best = elapsed
		}
	}
	return best, nil
}

// fabricSpec builds the transports of one benchmark fabric.
type fabricSpec struct {
	name string
	// wire returns the per-message wire cost, nil for the raw host fabric.
	wire func(bytes int64) time.Duration
}

// modeledWire prices one message on a paper platform with GPU-resident
// tensors (the Horovod scenario): PCIe staging + serialization + fabric, the
// same decomposition Fig. 7 measures.
func modeledWire(c *hw.Cluster, node string, proto simnet.Protocol) func(int64) time.Duration {
	nt := c.NodeTypes[node]
	return func(bytes int64) time.Duration {
		return time.Duration(simnet.TransferTime(c, nt, proto, simnet.OnGPU, simnet.OnGPU, bytes) *
			float64(time.Second))
	}
}

func buildGroups(p int, spec fabricSpec, opts collective.Options) []*collective.Group {
	eps := collective.NewLoopback(p)
	groups := make([]*collective.Group, p)
	for i, ep := range eps {
		var tr collective.Transport = ep
		if spec.wire != nil {
			tr = collective.NewMetered(ep, spec.wire)
		}
		groups[i] = collective.NewGroup(tr, opts)
	}
	return groups
}

func fillInputs(p, elems int, dt tensor.DType) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, p)
	for r := range ins {
		t := tensor.New(dt, elems)
		switch dt {
		case tensor.Float64:
			d := t.F64()
			for i := range d {
				d[i] = float64((i+r)%251) * 0.017
			}
		case tensor.Float32:
			d := t.F32()
			for i := range d {
				d[i] = float32((i+r)%251) * 0.017
			}
		}
		ins[r] = t
	}
	return ins
}

func busMBps(p, elems int, dt tensor.DType, seconds float64) float64 {
	bytes := float64(elems) * float64(dt.Size())
	return 2 * float64(p-1) / float64(p) * bytes / seconds / 1e6
}

// allReduceTimer returns a timeCollective runner for one algorithm name
// ("naive" selects the gather-to-root strawman).
func allReduceTimer(algo string) func(g *collective.Group, in *tensor.Tensor, key string) error {
	return func(g *collective.Group, in *tensor.Tensor, key string) error {
		var err error
		if algo == "naive" {
			_, err = g.NaiveAllReduce(algo+"/"+key, in, collective.OpSum)
		} else {
			_, err = g.AllReduceAlg(algo+"/"+key, in, collective.OpSum, algo)
		}
		return err
	}
}

// sweepCase is one (fabric, p, payload) point of the algorithm sweep.
type sweepCase struct {
	fabric fabricSpec
	p      int
	elems  int
	dt     tensor.DType
	reps   int
	algos  []string
}

// CollectiveRows measures the allreduce algorithms against each other and
// the gather-to-root baseline on simulated tasks: in-process ranks over the
// raw host memory system and over simnet-modelled interconnects, payloads
// from latency-bound (KiB) to bandwidth-bound (MiB). Every algorithm moves
// real bytes and reduces with the same kernels, so each row isolates the
// algorithmic difference. The "auto" rows show what the per-call picker
// actually delivers; "fused"/"unfused" rows post many small tensors through
// the fusion buffer versus one plain allreduce each.
func CollectiveRows() (*CollectiveResult, error) {
	allAlgos := []string{"ring", "doubling", "auto", "naive"}
	fast := []string{"ring", "doubling", "auto"}
	host := fabricSpec{name: "host"}
	kebne := fabricSpec{"kebnekaise-mpi", modeledWire(hw.Kebnekaise, "k80", simnet.MPI)}
	tegner := fabricSpec{"tegner-grpc", modeledWire(hw.Tegner, "k420", simnet.GRPC)}
	cases := []sweepCase{
		// Loopback payload sweep at p=4: the crossover scan (f64; 512
		// elems = 4 KiB payload = 1 KiB/rank, up to 16 MiB).
		{host, 4, 1 << 9, tensor.Float64, 9, allAlgos},
		{host, 4, 1 << 11, tensor.Float64, 9, allAlgos},
		{host, 4, 1 << 13, tensor.Float64, 7, fast},
		{host, 4, 1 << 15, tensor.Float64, 5, fast},
		{host, 4, 1 << 17, tensor.Float64, 5, fast},
		{host, 4, 1 << 21, tensor.Float64, 3, allAlgos},
		// Non-power-of-two and larger groups: the doubling fold/unfold and
		// the ring's step growth.
		{host, 5, 1 << 11, tensor.Float64, 7, fast},
		{host, 8, 1 << 11, tensor.Float64, 7, fast},
		{host, 8, 1 << 21, tensor.Float64, 3, allAlgos},
		// Modelled fabrics: small payloads where algorithm latency
		// dominates, large where bandwidth does.
		{kebne, 4, 1 << 9, tensor.Float64, 3, fast},
		{kebne, 4, 1 << 20, tensor.Float64, 2, allAlgos},
		{kebne, 8, 1 << 20, tensor.Float64, 2, allAlgos},
		{tegner, 4, 1 << 9, tensor.Float32, 3, fast},
		{tegner, 4, 1 << 18, tensor.Float32, 2, allAlgos},
		{tegner, 8, 1 << 18, tensor.Float32, 2, allAlgos},
	}
	result := &CollectiveResult{SwitchBytes: collective.DefaultSwitchBytes}
	for _, c := range cases {
		groups := buildGroups(c.p, c.fabric, collective.Options{})
		ins := fillInputs(c.p, c.elems, c.dt)
		for _, algo := range c.algos {
			secs, err := timeCollective(groups, ins, c.reps, allReduceTimer(algo))
			if err != nil {
				return nil, err
			}
			result.Rows = append(result.Rows, CollectiveRow{
				Fabric:  c.fabric.name,
				Tasks:   c.p,
				Elems:   c.elems,
				DType:   c.dt.String(),
				Algo:    algo,
				Seconds: secs,
				BusMBps: busMBps(c.p, c.elems, c.dt, secs),
			})
		}
		for _, grp := range groups {
			grp.Close()
		}
	}
	result.CrossoverBytes = measureCrossover(result.Rows)

	// Real-transport fabrics: the same ring over actual rpc servers on TCP
	// loopback (per-chunk calls vs persistent streams) and over the
	// shared-memory rings — the transport tier's own trajectory rows.
	trRows, err := transportRows()
	if err != nil {
		return nil, err
	}
	result.Rows = append(result.Rows, trRows...)

	// Fusion rows on both fabric classes: raw loopback exposes the
	// negotiation overhead honestly (per-message cost is near zero there,
	// so coalescing buys little), while the modelled interconnect is the
	// regime fusion exists for — per-message wire latency dominates tiny
	// tensors, and one fused pass replaces K of them.
	for _, spec := range []fabricSpec{host, tegner} {
		fusedRows, err := fusionRows(spec)
		if err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, fusedRows...)
	}
	return result, nil
}

// measureCrossover scans the loopback p=4 f64 sweep for the smallest
// per-rank payload at which the ring matched or beat doubling.
func measureCrossover(rows []CollectiveRow) int64 {
	times := map[int]map[string]float64{}
	for _, r := range rows {
		if r.Fabric != "host" || r.Tasks != 4 || r.DType != "float64" || r.Tensors > 0 {
			continue
		}
		if times[r.Elems] == nil {
			times[r.Elems] = map[string]float64{}
		}
		times[r.Elems][r.Algo] = r.Seconds
	}
	elems := make([]int, 0, len(times))
	for e := range times {
		elems = append(elems, e)
	}
	sort.Ints(elems)
	for _, e := range elems {
		ring, okR := times[e]["ring"]
		dbl, okD := times[e]["doubling"]
		if okR && okD && ring <= dbl {
			return int64(e) * 8 / 4 // bytes per rank at p=4
		}
	}
	if len(elems) == 0 {
		return 0
	}
	// Ring never caught up inside the sweep: report the top as a floor.
	return int64(elems[len(elems)-1]) * 8 / 4
}

// fusionRows measures the small-tensor regime the fusion buffer exists
// for: K tiny gradients per rank per step, posted concurrently through the
// buffer (fused) versus reduced one by one (unfused).
func fusionRows(spec fabricSpec) ([]CollectiveRow, error) {
	const p, K, elems = 4, 32, 1 << 7
	reps := 5
	if spec.wire != nil {
		reps = 2 // modelled wire time makes each rep expensive
	}
	dt := tensor.Float64

	run := func(fused bool) (float64, error) {
		opts := collective.Options{}
		if fused {
			opts.Fusion = collective.FusionOptions{FlushTensors: K}
		}
		groups := buildGroups(p, spec, opts)
		defer func() {
			for _, g := range groups {
				g.Close()
			}
		}()
		ins := fillInputs(p, elems, dt)
		best := 0.0
		for rep := -1; rep < reps; rep++ {
			errs := make([]error, p)
			start := time.Now()
			var wg sync.WaitGroup
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					// Both sides post their K tensors concurrently — the shape
					// the executor produces for K independent allreduce nodes —
					// so the rows compare coalescing, not concurrency.
					var inner sync.WaitGroup
					ferrs := make([]error, K)
					for k := 0; k < K; k++ {
						inner.Add(1)
						go func(k int) {
							defer inner.Done()
							if fused {
								_, ferrs[k] = groups[r].AllReduceFused(
									fmt.Sprintf("f%d/%d", rep, k), ins[r], collective.OpSum)
							} else {
								_, ferrs[k] = groups[r].AllReduce(
									fmt.Sprintf("u%d/%d", rep, k), ins[r], collective.OpSum)
							}
						}(k)
					}
					inner.Wait()
					for _, err := range ferrs {
						if err != nil {
							errs[r] = err
							return
						}
					}
				}(r)
			}
			wg.Wait()
			elapsed := time.Since(start).Seconds()
			for _, err := range errs {
				if err != nil {
					return 0, err
				}
			}
			if rep >= 0 && (best == 0 || elapsed < best) {
				best = elapsed
			}
		}
		return best, nil
	}

	fusedSecs, err := run(true)
	if err != nil {
		return nil, err
	}
	unfusedSecs, err := run(false)
	if err != nil {
		return nil, err
	}
	row := func(algo string, secs float64) CollectiveRow {
		return CollectiveRow{
			Fabric:  spec.name,
			Tasks:   p,
			Elems:   elems,
			DType:   dt.String(),
			Algo:    algo,
			Tensors: K,
			Seconds: secs,
			BusMBps: busMBps(p, K*elems, dt, secs),
		}
	}
	return []CollectiveRow{row("fused", fusedSecs), row("unfused", unfusedSecs)}, nil
}

// Collective renders the allreduce comparison table.
func Collective() (string, error) {
	res, err := CollectiveRows()
	if err != nil {
		return "", err
	}
	return renderCollective(res), nil
}

func renderCollective(res *CollectiveResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Allreduce algorithms on simulated tasks (%d pool workers) [bus MB/s]\n",
		gemm.Workers())
	sb.WriteString(fmt.Sprintf("%-16s %-6s %-9s %-9s %-9s %8s %12s\n",
		"fabric", "tasks", "elems", "dtype", "algo", "tensors", "bus MB/s"))
	for _, r := range res.Rows {
		tensors := "-"
		if r.Tensors > 0 {
			tensors = fmt.Sprintf("%d", r.Tensors)
		}
		sb.WriteString(fmt.Sprintf("%-16s %-6d %-9d %-9s %-9s %8s %12.1f\n",
			r.Fabric, r.Tasks, r.Elems, r.DType, r.Algo, tensors, r.BusMBps))
	}
	fmt.Fprintf(&sb, "ring/doubling crossover: %d bytes/rank (picker threshold %d)\n",
		res.CrossoverBytes, res.SwitchBytes)
	return sb.String()
}
