package bench

import (
	"os"
	"testing"
)

// TestTransportFabricOrdering pins the two properties the transport
// rewrite claims: persistent streams are at least as fast as the
// per-chunk call path at every payload, and the shared-memory rings beat
// TCP loopback on sub-64KiB payloads. Wall-clock comparisons on a shared
// host are noisy even best-of-N, so a failing comparison is re-measured
// twice before it counts, and the faster side only has to come within
// the slack factor — the real margins are multiples, not percents.
func TestTransportFabricOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("real-transport timing sweep")
	}
	const p, reps, slack = 4, 5, 1.25
	measure := func(fabric string, elems int) float64 {
		secs, err := timeNetFabric(fabric, p, elems, reps)
		if err != nil {
			t.Fatalf("%s e%d: %v", fabric, elems, err)
		}
		return secs
	}
	check := func(fast, slow string, elems int) {
		for attempt := 0; ; attempt++ {
			f, s := measure(fast, elems), measure(slow, elems)
			if f <= s*slack {
				return
			}
			if attempt == 2 {
				t.Errorf("e%d: %s (%.0fµs) did not keep up with %s (%.0fµs)",
					elems, fast, f*1e6, slow, s*1e6)
				return
			}
		}
	}

	for _, elems := range []int{1 << 7, 1 << 10, 1 << 13} {
		check("tcp-stream", "tcp-call", elems)
	}
	if os.Getenv("TFHPC_NO_SHM") != "" {
		t.Log("TFHPC_NO_SHM set; skipping shm comparisons")
		return
	}
	for _, elems := range []int{1 << 7, 1 << 10} { // sub-64KiB payloads
		check("shm", "tcp-stream", elems)
	}
}
