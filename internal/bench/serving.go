package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tfhpc/internal/serving"
	"tfhpc/internal/tensor"
)

// ServingRow is one measured serving configuration: a load-generation mode
// (closed loop = fixed concurrency, each client waits for its answer; open
// loop = fixed arrival rate regardless of completions) against one
// micro-batcher setting. SpeedupVsNoBatch relates a batched closed-loop row
// to the MaxBatch=1 row at the same concurrency — the number the batching
// thesis stands on.
type ServingRow struct {
	Mode             string         `json:"mode"` // "closed" | "open"
	Clients          int            `json:"clients,omitempty"`
	TargetRps        float64        `json:"target_rps,omitempty"`
	MaxBatch         int            `json:"max_batch"`
	Features         int            `json:"features"`
	Requests         int            `json:"requests"`
	Seconds          float64        `json:"seconds"`
	ThroughputRps    float64        `json:"throughput_rps"`
	MeanBatch        float64        `json:"mean_batch"`
	MaxBatchSeen     int64          `json:"max_batch_seen"`
	Rejected         int64          `json:"rejected"`
	Expired          int64          `json:"expired"`
	Latency          LatencySummary `json:"latency"`
	SpeedupVsNoBatch float64        `json:"speedup_vs_nobatch,omitempty"`
}

// servingFixture is one servable linear model plus a pool of request rows.
type servingFixture struct {
	svc  *serving.Service
	rows []*tensor.Tensor
}

func newServingFixture(d, maxBatch int) (*servingFixture, error) {
	svc := serving.NewService(serving.NewRegistry(), serving.BatchOptions{
		MaxBatch: maxBatch,
		Timeout:  2 * time.Millisecond,
		// Runners follow the machine so MaxBatch=1 measures true concurrent
		// single-row serving, not an artificial runner bottleneck.
		Runners:         runtime.GOMAXPROCS(0),
		QueueDepth:      4096,
		DefaultDeadline: 10 * time.Second,
	})
	w := make([]float64, d)
	for i := range w {
		w[i] = 0.25 + float64(i%31)*0.0625
	}
	mv, err := serving.NewLinear("bench", 1, tensor.FromF64(tensor.Shape{d}, w))
	if err != nil {
		return nil, err
	}
	if _, err := svc.ServeModel(mv); err != nil {
		return nil, err
	}
	rows := make([]*tensor.Tensor, 256)
	r := tensor.NewRNG(7)
	for i := range rows {
		buf := make([]float64, d)
		for j := range buf {
			buf[j] = r.Float64()*2 - 1
		}
		rows[i] = tensor.FromF64(tensor.Shape{d}, buf)
	}
	return &servingFixture{svc: svc, rows: rows}, nil
}

// closedLoop drives `clients` concurrent callers, each issuing its next
// request as soon as the previous one answers, until `total` requests are
// done. Returns the wall time and the recorded latency histogram.
func (f *servingFixture) closedLoop(clients, total int, deadline time.Duration, hist *LatencyHist) (float64, error) {
	var next atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if int(i) > total {
					return
				}
				row := f.rows[int(i)%len(f.rows)]
				t0 := time.Now()
				_, err := f.svc.Predict("bench", row, t0.Add(deadline))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if hist != nil {
					hist.Record(time.Since(t0))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if err, ok := firstErr.Load().(error); ok {
		return 0, err
	}
	return elapsed, nil
}

// openLoop fires requests at a fixed arrival rate for dur, regardless of
// completions — the regime where queues actually build and the admission
// control earns its keep. Slow answers don't slow arrivals. Requests are
// dispatched over a pool of `clients` persistent connections: an arrival
// that finds every connection busy queues, and its latency clock runs
// from the scheduled arrival, so connection-pool wait is charged to the
// request like a real front end would.
func (f *servingFixture) openLoop(clients int, rate float64, dur, deadline time.Duration, hist *LatencyHist) (sent int, rejected, expired int64, elapsed float64) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	type arrival struct {
		t0 time.Time
		i  int
	}
	arrivals := make(chan arrival, int(dur/interval)+1)
	var wg sync.WaitGroup
	var rej, exp atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range arrivals {
				_, err := f.svc.Predict("bench", f.rows[a.i%len(f.rows)], a.t0.Add(deadline))
				switch {
				case err == nil:
					hist.Record(time.Since(a.t0))
				case err == serving.ErrOverloaded:
					rej.Add(1)
				case err == serving.ErrDeadline:
					exp.Add(1)
				}
			}
		}()
	}
	start := time.Now()
	for t := time.Duration(0); t < dur; t += interval {
		// Arrival schedule is absolute: sleep to the slot, then fire.
		if d := time.Until(start.Add(t)); d > 0 {
			time.Sleep(d)
		}
		arrivals <- arrival{t0: time.Now(), i: sent}
		sent++
	}
	close(arrivals)
	wg.Wait()
	return sent, rej.Load(), exp.Load(), time.Since(start).Seconds()
}

// ServingRows measures the serving subsystem on this host: closed-loop
// sweeps over micro-batcher settings at fixed concurrency (the batch-vs-
// no-batch comparison) and one open-loop run into overload. Request
// results are bitwise independent of batching, so every configuration
// computes identical answers — the rows isolate scheduling, not numerics.
func ServingRows() ([]ServingRow, error) {
	// d=256 keeps one row's work (a 256-element dot product) far below the
	// fixed per-Run executor cost, which is exactly the regime online
	// feature-vector serving lives in — and where micro-batching pays.
	const (
		d        = 256
		clients  = 64
		requests = 12000
		deadline = 10 * time.Second
	)
	var rows []ServingRow
	var baselineRps float64
	for _, maxBatch := range []int{1, 8, 32, 64} {
		f, err := newServingFixture(d, maxBatch)
		if err != nil {
			return nil, err
		}
		// Warmup (uncounted), then the measured run.
		if _, err := f.closedLoop(clients, requests/8, deadline, nil); err != nil {
			f.svc.Close()
			return nil, err
		}
		pre := snapshotOf(f.svc)
		hist := NewLatencyHist()
		elapsed, err := f.closedLoop(clients, requests, deadline, hist)
		if err != nil {
			f.svc.Close()
			return nil, err
		}
		post := snapshotOf(f.svc)
		row := ServingRow{
			Mode:          "closed",
			Clients:       clients,
			MaxBatch:      maxBatch,
			Features:      d,
			Requests:      requests,
			Seconds:       elapsed,
			ThroughputRps: float64(requests) / elapsed,
			MeanBatch:     meanBatch(pre, post),
			MaxBatchSeen:  post.MaxBatch,
			Rejected:      post.Rejected - pre.Rejected,
			Expired:       post.Expired - pre.Expired,
			Latency:       hist.Summary(),
		}
		if maxBatch == 1 {
			baselineRps = row.ThroughputRps
		} else if baselineRps > 0 {
			row.SpeedupVsNoBatch = row.ThroughputRps / baselineRps
		}
		rows = append(rows, row)
		f.svc.Close()
	}

	// Open loop: arrivals at ~2x the no-batch capacity with tight
	// deadlines — rejections and expiries are the expected outcome. The
	// connection pool is 4x the closed-loop concurrency: the transport
	// tier has to hold tail latency at that fan-in, and the p99 of this
	// row is what the trend gate watches for it.
	const openClients = 4 * clients
	f, err := newServingFixture(d, 32)
	if err != nil {
		return nil, err
	}
	// ~2x the no-batch capacity, capped: the goal is sustained overload,
	// not a goroutine storm.
	rate := 2 * baselineRps
	if rate <= 0 || rate > 30000 {
		rate = 30000
	}
	hist := NewLatencyHist()
	pre := snapshotOf(f.svc)
	sent, rejected, expired, elapsed := f.openLoop(openClients, rate, time.Second, 50*time.Millisecond, hist)
	post := snapshotOf(f.svc)
	rows = append(rows, ServingRow{
		Mode:          "open",
		Clients:       openClients,
		TargetRps:     rate,
		MaxBatch:      32,
		Features:      d,
		Requests:      sent,
		Seconds:       elapsed,
		ThroughputRps: float64(hist.Count()) / elapsed,
		MeanBatch:     meanBatch(pre, post),
		MaxBatchSeen:  post.MaxBatch,
		Rejected:      rejected,
		Expired:       expired,
		Latency:       hist.Summary(),
	})
	f.svc.Close()
	return rows, nil
}

func snapshotOf(svc *serving.Service) serving.StatsSnapshot {
	snaps := svc.Snapshots()
	if len(snaps) == 0 {
		return serving.StatsSnapshot{}
	}
	return snaps[0]
}

func meanBatch(pre, post serving.StatsSnapshot) float64 {
	rows := post.Rows - pre.Rows
	batches := post.Batches - pre.Batches
	if batches <= 0 {
		return 0
	}
	return float64(rows) / float64(batches)
}

// Serving renders the serving benchmark table.
func Serving() (string, error) {
	rows, err := ServingRows()
	if err != nil {
		return "", err
	}
	return renderServing(rows), nil
}

func renderServing(rows []ServingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Model serving: dynamic micro-batching, %d features, linear model (%d pool workers)\n",
		rows[0].Features, runtime.GOMAXPROCS(0))
	sb.WriteString(fmt.Sprintf("%-7s %-8s %-9s %9s %9s %8s %8s %8s %8s %6s %6s\n",
		"mode", "load", "maxbatch", "rps", "meanbat", "p50ms", "p95ms", "p99ms", "maxms", "rej", "exp"))
	for _, r := range rows {
		load := fmt.Sprintf("%dc", r.Clients)
		if r.Mode == "open" {
			load = fmt.Sprintf("%.0f/s", r.TargetRps)
		}
		speed := ""
		if r.SpeedupVsNoBatch > 0 {
			speed = fmt.Sprintf("  %.1fx vs nobatch", r.SpeedupVsNoBatch)
		}
		sb.WriteString(fmt.Sprintf("%-7s %-8s %-9d %9.0f %9.1f %8.3f %8.3f %8.3f %8.2f %6d %6d%s\n",
			r.Mode, load, r.MaxBatch, r.ThroughputRps, r.MeanBatch,
			r.Latency.P50Ms, r.Latency.P95Ms, r.Latency.P99Ms, r.Latency.MaxMs,
			r.Rejected, r.Expired, speed))
	}
	return sb.String()
}
