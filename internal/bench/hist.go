package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LatencyHist accumulates per-request latency samples and summarises them
// as the quantiles an SLO is written against. Safe for concurrent Record;
// Summary is meant for after the run (it snapshots under the lock).
type LatencyHist struct {
	mu      sync.Mutex
	samples []float64 // seconds
}

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist { return &LatencyHist{} }

// Record adds one sample.
func (h *LatencyHist) Record(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d.Seconds())
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Summary computes the latency quantiles (empty histogram → zero summary).
func (h *LatencyHist) Summary() LatencySummary {
	h.mu.Lock()
	s := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	out := LatencySummary{Count: len(s)}
	if len(s) == 0 {
		return out
	}
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	ms := func(sec float64) float64 { return sec * 1e3 }
	out.MeanMs = ms(sum / float64(len(s)))
	out.P50Ms = ms(quantile(s, 0.50))
	out.P95Ms = ms(quantile(s, 0.95))
	out.P99Ms = ms(quantile(s, 0.99))
	out.MaxMs = ms(s[len(s)-1])
	return out
}

// quantile interpolates the q-quantile of sorted samples (nearest-rank with
// linear interpolation, the common "type 7" estimator).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// LatencySummary is the JSON form of a latency distribution, in
// milliseconds — part of the tfhpc-bench report schema.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func (l LatencySummary) String() string {
	return fmt.Sprintf("p50 %.3fms p95 %.3fms p99 %.3fms max %.3fms (n=%d)",
		l.P50Ms, l.P95Ms, l.P99Ms, l.MaxMs, l.Count)
}
