package bench

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestLatencyHistQuantiles(t *testing.T) {
	h := NewLatencyHist()
	// 1..100 ms: quantiles are known in closed form.
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 0.11 {
			t.Errorf("%s: got %.3f want %.3f", name, got, want)
		}
	}
	check("p50", s.P50Ms, 50.5)
	check("p95", s.P95Ms, 95.05)
	check("p99", s.P99Ms, 99.01)
	check("max", s.MaxMs, 100)
	check("mean", s.MeanMs, 50.5)
}

func TestLatencyHistEdgeCases(t *testing.T) {
	if s := NewLatencyHist().Summary(); s.Count != 0 || s.P99Ms != 0 {
		t.Fatalf("empty histogram: %+v", s)
	}
	h := NewLatencyHist()
	h.Record(7 * time.Millisecond)
	s := h.Summary()
	if s.P50Ms != 7 || s.P99Ms != 7 || s.MaxMs != 7 {
		t.Fatalf("single sample: %+v", s)
	}
}

func TestLatencyHistConcurrentRecord(t *testing.T) {
	h := NewLatencyHist()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("lost samples: %d", got)
	}
}
