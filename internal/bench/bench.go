// Package bench regenerates every table and figure of the paper's
// evaluation section on the virtual platform and renders them as the same
// rows/series the paper reports. cmd/tfbench and the repository-level
// benchmarks are thin wrappers around these functions.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tfhpc/apps/cg"
	appfft "tfhpc/apps/fft"
	"tfhpc/apps/matmul"
	"tfhpc/apps/stream"
	"tfhpc/internal/core"
	"tfhpc/internal/fft"
	"tfhpc/internal/gemm"
	"tfhpc/internal/hw"
)

// TableI renders the paper's Table I from the hardware catalogue.
func TableI() string {
	var sb strings.Builder
	sb.WriteString("Table I: TensorFlow instances per node\n")
	sb.WriteString(fmt.Sprintf("%-18s %-14s %s\n", "Type of Node", "GPU Memory", "No. processes per node"))
	rows := []struct {
		cluster *hw.Cluster
		node    string
		mem     string
	}{
		{hw.Tegner, "k420", "1GB"},
		{hw.Tegner, "k80", "12GB x2"},
		{hw.Kebnekaise, "k80", "12GB x2"},
		{hw.Kebnekaise, "v100", "16GB"},
	}
	for _, r := range rows {
		nt := r.cluster.NodeTypes[r.node]
		sb.WriteString(fmt.Sprintf("%-18s %-14s %d\n", nt.Name, r.mem, nt.InstancesPerNode))
	}
	return sb.String()
}

// Fig7 renders the STREAM bandwidth comparison (MB/s per protocol,
// platform and transfer size).
func Fig7() (string, error) {
	rows, err := stream.Fig7()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Fig. 7: STREAM bandwidth between two nodes [MB/s]\n")
	sb.WriteString(fmt.Sprintf("%-8s %-16s %10s %10s %10s\n", "proto", "platform", "2MB", "16MB", "128MB"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-8s %-16s %10.0f %10.0f %10.0f\n",
			r.Protocol, r.Label, r.MBps[2<<20], r.MBps[16<<20], r.MBps[128<<20]))
	}
	return sb.String(), nil
}

// Fig8 renders the tiled matmul strong-scaling curves (Gflop/s).
func Fig8() (string, error) {
	curves, err := matmul.Fig8()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Fig. 8: Tiled matrix multiplication, 2 reducers + N GPUs [Gflop/s]\n")
	sb.WriteString(fmt.Sprintf("%-16s %-7s %-6s", "platform", "size", "tile"))
	for _, g := range []int{2, 4, 8, 16} {
		sb.WriteString(fmt.Sprintf(" %8s", fmt.Sprintf("2+%d", g)))
	}
	sb.WriteString("\n")
	for _, c := range curves {
		sb.WriteString(fmt.Sprintf("%-16s %-7s %-6d", c.Platform, sizeLabel(c.N), c.Tile))
		byGPU := map[int]float64{}
		for _, p := range c.Points {
			byGPU[p.GPUs] = p.Gflops
		}
		for _, g := range []int{2, 4, 8, 16} {
			if v, ok := byGPU[g]; ok {
				sb.WriteString(fmt.Sprintf(" %8.0f", v))
			} else {
				sb.WriteString(fmt.Sprintf(" %8s", "-"))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// Fig9 renders the Kebnekaise GPU node topology.
func Fig9() string {
	return "Fig. 9: Topology of a GPU node on Kebnekaise\n" +
		hw.Kebnekaise.NodeTypes["k80"].TopologyString()
}

// Fig10 renders the CG solver strong-scaling curves (Gflop/s).
func Fig10() (string, error) {
	curves, err := cg.Fig10()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Fig. 10: CG solver, 500 iterations, fp64 [Gflop/s]\n")
	sb.WriteString(fmt.Sprintf("%-16s %-7s", "platform", "size"))
	for _, g := range []int{2, 4, 8, 16} {
		sb.WriteString(fmt.Sprintf(" %8d", g))
	}
	sb.WriteString("\n")
	for _, c := range curves {
		sb.WriteString(fmt.Sprintf("%-16s %-7s", c.Platform, sizeLabel(c.N)))
		byGPU := map[int]float64{}
		for _, p := range c.Points {
			byGPU[p.GPUs] = p.Gflops
		}
		var gpus []int
		for g := range c.Skipped {
			gpus = append(gpus, g)
		}
		sort.Ints(gpus)
		for _, g := range []int{2, 4, 8, 16} {
			if v, ok := byGPU[g]; ok {
				sb.WriteString(fmt.Sprintf(" %8.0f", v))
			} else if _, skipped := c.Skipped[g]; skipped {
				sb.WriteString(fmt.Sprintf(" %8s", "OOM"))
			} else {
				sb.WriteString(fmt.Sprintf(" %8s", "-"))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// Fig11 renders the FFT scaling curves (Gflop/s, timed to tile collection).
func Fig11() (string, error) {
	curves, err := appfft.Fig11()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Fig. 11: 1-D FFT, 1 merger + N GPUs [Gflop/s]\n")
	sb.WriteString(fmt.Sprintf("%-16s %-8s %-7s", "platform", "size", "tiles"))
	for _, g := range []int{2, 4, 8} {
		sb.WriteString(fmt.Sprintf(" %8s", fmt.Sprintf("1+%d", g)))
	}
	sb.WriteString("\n")
	for _, c := range curves {
		sb.WriteString(fmt.Sprintf("%-16s 2^%-6d %-7d", c.Platform, log2(c.N), c.Tiles))
		for _, p := range c.Points {
			sb.WriteString(fmt.Sprintf(" %8.1f", p.Gflops))
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// GemmRow is one measured GEMM size.
type GemmRow struct {
	N         int     `json:"n"`
	F32Gflops float64 `json:"f32_gflops"`
	F64Gflops float64 `json:"f64_gflops"`
}

// GemmRows benchmarks the real GEMM engine on this host — not the virtual
// platform: single node, real numerics, parallelism bounded by the current
// GOMAXPROCS. This is the kernel the MatMul op, the tiled-matmul pipeline
// and the CG solver all bottom out in.
func GemmRows() []GemmRow {
	var rows []GemmRow
	for _, n := range []int{256, 512, 1024} {
		a32 := make([]float32, n*n)
		b32 := make([]float32, n*n)
		c32 := make([]float32, n*n)
		fillSeq32(a32)
		fillSeq32(b32)
		f32 := timeGemm(n, func() {
			gemm.Gemm32(false, false, n, n, n, a32, n, b32, n, c32, n)
		})
		a64 := make([]float64, n*n)
		b64 := make([]float64, n*n)
		c64 := make([]float64, n*n)
		fillSeq64(a64)
		fillSeq64(b64)
		f64 := timeGemm(n, func() {
			gemm.Gemm64(false, false, n, n, n, a64, n, b64, n, c64, n)
		})
		rows = append(rows, GemmRow{N: n, F32Gflops: f32, F64Gflops: f64})
	}
	return rows
}

// Gemm renders the GEMM engine sweep.
func Gemm() string { return renderGemm(GemmRows()) }

func renderGemm(rows []GemmRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "GEMM engine on this host (micro-kernel %s, %d workers) [Gflop/s]\n",
		gemm.KernelName(), gemm.Workers())
	sb.WriteString(fmt.Sprintf("%-8s %10s %10s\n", "size", "float32", "float64"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-8d %10.1f %10.1f\n", r.N, r.F32Gflops, r.F64Gflops))
	}
	return sb.String()
}

// FftRow is one measured 1-D FFT size.
type FftRow struct {
	LogN       int     `json:"log_n"`
	C128Gflops float64 `json:"c128_gflops"`
	RfftGflops float64 `json:"rfft_gflops"`
}

// FftResult is the FFT engine sweep: 1-D sizes plus the 1024² 2-D transform.
type FftResult struct {
	Rows        []FftRow `json:"rows"`
	Fft2DGflops float64  `json:"fft2d_gflops"`
}

// FftRows benchmarks the real FFT engine in internal/fft on this host — not
// the virtual platform: single node, real numerics, parallelism bounded by
// the current GOMAXPROCS. Each timed rep is a forward+inverse pair, so the
// data stays bounded; throughput uses the paper's 5·n·log₂(n) flop
// convention per transform (rfft counted as half, since it runs an
// n/2-point complex transform plus an O(n) unpack).
func FftRows() FftResult {
	var out FftResult
	for _, logn := range []int{16, 18, 20} {
		n := 1 << logn
		a := make([]complex128, n)
		x := make([]float64, n)
		for i := range a {
			v := float64(i%251)*0.013 - 1.6
			a[i] = complex(v, -v)
			x[i] = v
		}
		c128 := timeFlops(2*core.FFTFlops(n), func() {
			if err := fft.Forward(a); err != nil {
				panic(err)
			}
			if err := fft.Inverse(a); err != nil {
				panic(err)
			}
		})
		rp, err := fft.RPlanFor(n)
		if err != nil {
			panic(err)
		}
		spec := make([]complex128, rp.SpectrumLen())
		rfft := timeFlops(core.FFTFlops(n), func() {
			if err := rp.Transform(spec, x); err != nil {
				panic(err)
			}
			if err := rp.Inverse(x, spec); err != nil {
				panic(err)
			}
		})
		out.Rows = append(out.Rows, FftRow{LogN: logn, C128Gflops: c128, RfftGflops: rfft})
	}
	const m = 1024
	b2 := make([]complex128, m*m)
	for i := range b2 {
		b2[i] = complex(float64(i%251)*0.013, 0)
	}
	out.Fft2DGflops = timeFlops(2*2*float64(m)*core.FFTFlops(m), func() {
		if err := fft.FFT2D(b2, m, m, false); err != nil {
			panic(err)
		}
		if err := fft.FFT2D(b2, m, m, true); err != nil {
			panic(err)
		}
	})
	return out
}

// Fft renders the FFT engine sweep.
func Fft() string { return renderFft(FftRows()) }

func renderFft(res FftResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FFT engine on this host (cached plans, radix-4/8 + four-step, %d workers) [Gflop/s]\n",
		gemm.Workers())
	sb.WriteString(fmt.Sprintf("%-8s %12s %12s\n", "size", "complex128", "rfft"))
	for _, r := range res.Rows {
		sb.WriteString(fmt.Sprintf("2^%-6d %12.2f %12.2f\n", r.LogN, r.C128Gflops, r.RfftGflops))
	}
	sb.WriteString(fmt.Sprintf("2-D 1024x1024: %.2f Gflop/s\n", res.Fft2DGflops))
	return sb.String()
}

// timeFlops runs fn repeatedly (at least 3 times, at least ~200ms) and
// returns the best-rep throughput in Gflop/s for the given flop count.
func timeFlops(flops float64, fn func()) float64 {
	best := 0.0
	deadline := time.Now().Add(200 * time.Millisecond)
	for rep := 0; rep < 3 || time.Now().Before(deadline); rep++ {
		start := time.Now()
		fn()
		if s := time.Since(start).Seconds(); s > 0 {
			if g := flops / s / 1e9; g > best {
				best = g
			}
		}
	}
	return best
}

// timeGemm runs fn repeatedly (at least 3 times, at least ~200ms) and
// returns the best-rep throughput in Gflop/s for an n³ product.
func timeGemm(n int, fn func()) float64 {
	best := 0.0
	deadline := time.Now().Add(200 * time.Millisecond)
	for rep := 0; rep < 3 || time.Now().Before(deadline); rep++ {
		start := time.Now()
		fn()
		if s := time.Since(start).Seconds(); s > 0 {
			if g := gemm.Flops(n, n, n) / s / 1e9; g > best {
				best = g
			}
		}
	}
	return best
}

func fillSeq32(s []float32) {
	for i := range s {
		s[i] = float32(i%251) * 0.013
	}
}

func fillSeq64(s []float64) {
	for i := range s {
		s[i] = float64(i%251) * 0.013
	}
}

func sizeLabel(n int) string {
	switch n {
	case 16384:
		return "16k"
	case 32768:
		return "32k"
	case 65536:
		return "65k"
	}
	return fmt.Sprint(n)
}

func log2(n int) int {
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	return k
}
