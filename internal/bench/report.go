package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"tfhpc/internal/gemm"
)

// Report is the machine-readable result of a tfbench invocation — the
// artifact CI uploads on every push so the performance trajectory accrues.
type Report struct {
	Schema      string   `json:"schema"` // "tfhpc-bench/v1"
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	GemmKernel  string   `json:"gemm_kernel"`
	Experiments []string `json:"experiments"`

	Gemm       []GemmRow         `json:"gemm,omitempty"`
	Fft        *FftResult        `json:"fft,omitempty"`
	Collective *CollectiveResult `json:"collective,omitempty"`
	Serving    []ServingRow      `json:"serving,omitempty"`
	Rollout    *RolloutResult    `json:"rollout,omitempty"`
	Generate   []GenerateRow     `json:"generate,omitempty"`
	// Figures holds the rendered text of the paper-figure experiments,
	// which have no natural tabular schema beyond their printed form.
	Figures map[string]string `json:"figures,omitempty"`
}

// FigureNames are the paper-figure experiments (virtual platform, no
// host timing); ExperimentNames additionally includes the real-mode host
// sweeps. "figures" and "all" expand to them respectively.
var (
	FigureNames     = []string{"table1", "fig7", "fig8", "fig9", "fig10", "fig11"}
	ExperimentNames = append(append([]string{}, FigureNames...), "gemm", "fft", "collective", "serving", "rollout", "generate")
)

// Run executes the named experiments in order and returns the combined
// machine-readable report plus the rendered text.
func Run(exps []string) (*Report, string, error) {
	var expanded []string
	for _, e := range exps {
		switch e {
		case "all":
			expanded = append(expanded, ExperimentNames...)
		case "figures":
			expanded = append(expanded, FigureNames...)
		default:
			expanded = append(expanded, e)
		}
	}
	rep := &Report{
		Schema:      "tfhpc-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GemmKernel:  gemm.KernelName(),
		Experiments: expanded,
	}
	var texts []string
	for _, exp := range expanded {
		var text string
		var err error
		switch exp {
		case "table1":
			text = TableI()
			rep.figure("table1", text)
		case "fig7":
			if text, err = Fig7(); err == nil {
				rep.figure("fig7", text)
			}
		case "fig8":
			if text, err = Fig8(); err == nil {
				rep.figure("fig8", text)
			}
		case "fig9":
			text = Fig9()
			rep.figure("fig9", text)
		case "fig10":
			if text, err = Fig10(); err == nil {
				rep.figure("fig10", text)
			}
		case "fig11":
			if text, err = Fig11(); err == nil {
				rep.figure("fig11", text)
			}
		case "gemm":
			rep.Gemm = GemmRows()
			text = renderGemm(rep.Gemm)
		case "fft":
			res := FftRows()
			rep.Fft = &res
			text = renderFft(res)
		case "collective":
			if rep.Collective, err = CollectiveRows(); err == nil {
				text = renderCollective(rep.Collective)
			}
		case "serving":
			if rep.Serving, err = ServingRows(); err == nil {
				text = renderServing(rep.Serving)
			}
		case "rollout":
			if rep.Rollout, err = RolloutRun(); err == nil {
				text = renderRollout(rep.Rollout)
			}
		case "generate":
			if rep.Generate, err = GenerateRows(); err == nil {
				text = renderGenerate(rep.Generate)
			}
		default:
			err = fmt.Errorf("bench: unknown experiment %q (want all|figures|%s)",
				exp, strings.Join(ExperimentNames, "|"))
		}
		if err != nil {
			return nil, "", err
		}
		texts = append(texts, text)
	}
	return rep, strings.Join(texts, "\n"), nil
}

func (r *Report) figure(name, text string) {
	if r.Figures == nil {
		r.Figures = make(map[string]string)
	}
	r.Figures[name] = text
}

// JSON marshals the report with stable indentation.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
