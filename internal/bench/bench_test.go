package bench

import (
	"strings"
	"testing"
)

func TestTableIContainsAllNodeTypes(t *testing.T) {
	out := TableI()
	for _, want := range []string{
		"Tegner-K420", "Tegner-K80", "Kebnekaise-K80", "Kebnekaise-V100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
	// The paper's process counts.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title + header + 4 rows
		t.Fatalf("Table I has %d lines", len(lines))
	}
}

func TestFig7Output(t *testing.T) {
	out, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"grpc", "mpi", "rdma", "Tegner GPU", "Tegner CPU", "Kebnekaise GPU", "128MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 7 missing %q", want)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 11 { // title+header+9 rows
		t.Fatalf("Fig. 7 row count wrong:\n%s", out)
	}
}

func TestFig8Output(t *testing.T) {
	out, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Tegner K420", "Tegner K80", "Kebnekaise K80", "2+16", "65k"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 8 missing %q", want)
		}
	}
	// Tegner rows must not have 16-GPU entries (dash).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Tegner") && !strings.HasSuffix(strings.TrimRight(line, " "), "-") {
			t.Errorf("Tegner row should end with '-' (no 16-GPU point): %q", line)
		}
	}
}

func TestFig9Output(t *testing.T) {
	out := Fig9()
	for _, want := range []string{"island 0", "island 1", "InfiniBand"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 9 missing %q", want)
		}
	}
}

func TestFig10OutputHasOOMGaps(t *testing.T) {
	out, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OOM") {
		t.Fatalf("Fig. 10 should mark the 65k memory gaps:\n%s", out)
	}
	for _, want := range []string{"Tegner K80", "Kebnekaise V100", "16k", "32k", "65k"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 10 missing %q", want)
		}
	}
}

func TestFig11Output(t *testing.T) {
	out, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Tegner K420", "Tegner K80", "2^29", "2^31", "1+8"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 11 missing %q", want)
		}
	}
}

func TestGemmReportRendersAllSizes(t *testing.T) {
	out := Gemm()
	for _, want := range []string{"GEMM engine", "micro-kernel", "float32", "float64", "256", "512", "1024"} {
		if !strings.Contains(out, want) {
			t.Errorf("GEMM report missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresStitchEverything(t *testing.T) {
	_, out, err := Run([]string{"figures"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11"} {
		if !strings.Contains(out, want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}
