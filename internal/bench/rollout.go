package bench

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tfhpc/internal/serving"
	"tfhpc/internal/serving/controlplane"
	"tfhpc/internal/tensor"
)

// RolloutResult measures the serving control plane end to end: a full canary
// rollout (deploy → stepped traffic split → promote) executed under
// sustained open-loop load while the autoscaler grows and shrinks the fleet.
// The claims the CI gate stands on: Drops stays exactly zero (no control
// action ever costs a request) and Latency.P99Ms stays bounded through every
// transition. ColdFirstMs vs WarmFirstMs isolates what the warmup stage buys
// the first real request.
type RolloutResult struct {
	Clients       int            `json:"clients"`
	TargetRps     float64        `json:"target_rps"`
	Seconds       float64        `json:"seconds"`
	Requests      int64          `json:"requests"`
	Drops         int64          `json:"drops"`
	Latency       LatencySummary `json:"latency"`
	CanaryLatency LatencySummary `json:"canary_latency"`
	ScaleUps      int64          `json:"scale_ups"`
	ScaleDowns    int64          `json:"scale_downs"`
	Flaps         int64          `json:"flaps"`
	MaxReplicas   int            `json:"max_replicas"`
	MinReplicas   int            `json:"min_replicas"`
	RolloutState  string         `json:"rollout_state"`
	ColdFirstMs   float64        `json:"cold_first_ms"`
	WarmFirstMs   float64        `json:"warm_first_ms"`
}

// rolloutLoad is a stoppable open-loop generator: arrivals at a fixed rate
// dispatched over a pool of persistent workers, latency charged from the
// scheduled arrival. Any per-request error is a drop — the scenario has no
// acceptable failure mode.
type rolloutLoad struct {
	router *serving.Router
	rows   []*tensor.Tensor
	hist   *LatencyHist

	stop  chan struct{}
	wg    sync.WaitGroup
	sent  atomic.Int64
	drops atomic.Int64
}

func startRolloutLoad(router *serving.Router, d, clients int, rate float64) *rolloutLoad {
	rows := make([]*tensor.Tensor, 64)
	r := tensor.NewRNG(11)
	for i := range rows {
		buf := make([]float64, d)
		for j := range buf {
			buf[j] = r.Float64()*2 - 1
		}
		rows[i] = tensor.FromF64(tensor.Shape{d}, buf)
	}
	l := &rolloutLoad{
		router: router,
		rows:   rows,
		hist:   NewLatencyHist(),
		stop:   make(chan struct{}),
	}
	type arrival struct {
		t0 time.Time
		i  int
	}
	arrivals := make(chan arrival, 4*clients)
	for c := 0; c < clients; c++ {
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			for a := range arrivals {
				_, err := l.router.Predict("bench", l.rows[a.i%len(l.rows)], a.t0.Add(2*time.Second))
				if err != nil {
					l.drops.Add(1)
					continue
				}
				l.hist.Record(time.Since(a.t0))
			}
		}()
	}
	interval := time.Duration(float64(time.Second) / rate)
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		defer close(arrivals)
		start := time.Now()
		for i := 0; ; i++ {
			slot := start.Add(time.Duration(i) * interval)
			if d := time.Until(slot); d > 0 {
				select {
				case <-l.stop:
					return
				case <-time.After(d):
				}
			} else {
				select {
				case <-l.stop:
					return
				default:
				}
			}
			select {
			case arrivals <- arrival{t0: time.Now(), i: i}:
				l.sent.Add(1)
			case <-l.stop:
				return
			}
		}
	}()
	return l
}

// halt stops arrivals and waits for every in-flight request to answer.
func (l *rolloutLoad) halt() {
	close(l.stop)
	l.wg.Wait()
}

// firstRequestMs times the very first Predict on a freshly built version —
// cold (straight from build) or warmed (after the control plane's warmup
// ladder) — isolating the session/buffer costs warmup pre-pays.
func firstRequestMs(d int, warm bool) (float64, error) {
	w := make([]float64, d)
	for i := range w {
		w[i] = 0.5 + float64(i%17)*0.03125
	}
	mv, err := serving.NewLinear("first", 1, tensor.FromF64(tensor.Shape{d}, w))
	if err != nil {
		return 0, err
	}
	if warm {
		if _, err := controlplane.Warm(mv, controlplane.WarmupConfig{}); err != nil {
			return 0, err
		}
	}
	row := make([]float64, d)
	for i := range row {
		row[i] = 0.1 * float64(i%7)
	}
	batch := tensor.FromF64(tensor.Shape{1, d}, row)
	t0 := time.Now()
	if _, err := mv.Predict(batch); err != nil {
		return 0, err
	}
	return float64(time.Since(t0)) / float64(time.Millisecond), nil
}

// RolloutRun drives the scenario: boot a control plane at its floor, put it
// under sustained open-loop load, let the autoscaler grow the fleet, run a
// full stepped canary rollout to promotion, stop the load and wait out the
// scale-down — measuring requests, drops, latency by arm, and the
// autoscaler's trajectory throughout.
func RolloutRun() (*RolloutResult, error) {
	const (
		d       = 256
		clients = 256
		rate    = 2000.0
	)
	canaryHist := NewLatencyHist()
	cp, err := controlplane.New(controlplane.Config{
		Batch: serving.BatchOptions{
			MaxBatch:        32,
			Timeout:         2 * time.Millisecond,
			QueueDepth:      4096,
			Runners:         2,
			DefaultDeadline: 2 * time.Second,
		},
		Router: serving.RouterOptions{
			DefaultDeadline: 2 * time.Second,
			Observer: func(model string, canary bool, latency time.Duration, err error) {
				if canary && err == nil {
					canaryHist.Record(latency)
				}
			},
		},
		Warmup: controlplane.WarmupConfig{Rounds: 1, MaxBatch: 32},
		Autoscaler: controlplane.AutoscalerConfig{
			Min: 1, Max: 4,
			// Target 1 outstanding per replica: at 2000 rps the line builds
			// several in-flight requests, so growth is guaranteed and the
			// rollout runs against a multi-replica fleet.
			TargetOutstanding: 1,
			Tick:              100 * time.Millisecond,
			DownCooldown:      time.Second,
		},
		Window: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer cp.Close()

	w1 := make([]float64, d)
	w2 := make([]float64, d)
	for i := range w1 {
		w1[i] = 0.25 + float64(i%31)*0.0625
		w2[i] = w1[i] * 1.01
	}
	if err := cp.Fleet().SetModel("bench", 1, controlplane.LinearSource(tensor.FromF64(tensor.Shape{d}, w1))); err != nil {
		return nil, err
	}
	if err := cp.Start(); err != nil {
		return nil, err
	}

	// Track the replica-count envelope while the scenario runs.
	maxReplicas := cp.Fleet().Size()
	sizeStop := make(chan struct{})
	sizeDone := make(chan struct{})
	go func() {
		defer close(sizeDone)
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-sizeStop:
				return
			case <-t.C:
				if n := cp.Fleet().Size(); n > maxReplicas {
					maxReplicas = n
				}
			}
		}
	}()

	start := time.Now()
	load := startRolloutLoad(cp.Router(), d, clients, rate)

	// Give the autoscaler a few ticks to see the load before the rollout.
	time.Sleep(600 * time.Millisecond)

	ro, err := cp.StartRollout("bench", 2,
		controlplane.LinearSource(tensor.FromF64(tensor.Shape{d}, w2)),
		controlplane.RolloutConfig{
			Steps:      []int{25, 50, 100},
			Hold:       500 * time.Millisecond,
			MinSamples: 50,
			MaxP99:     time.Second,
		})
	if err != nil {
		load.halt()
		close(sizeStop)
		<-sizeDone
		return nil, err
	}
	<-ro.Done()

	// Hold the load briefly past promotion (the promoted version serves the
	// same traffic), then stop and wait out the scale-down.
	time.Sleep(300 * time.Millisecond)
	load.halt()
	elapsed := time.Since(start).Seconds()

	deadline := time.Now().Add(8 * time.Second)
	for cp.Fleet().Size() > 1 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	close(sizeStop)
	<-sizeDone

	coldMs, err := firstRequestMs(d, false)
	if err != nil {
		return nil, err
	}
	warmMs, err := firstRequestMs(d, true)
	if err != nil {
		return nil, err
	}

	st := cp.Autoscaler().Status()
	roState, _ := ro.Terminal()
	return &RolloutResult{
		Clients:       clients,
		TargetRps:     rate,
		Seconds:       elapsed,
		Requests:      load.sent.Load(),
		Drops:         load.drops.Load(),
		Latency:       load.hist.Summary(),
		CanaryLatency: canaryHist.Summary(),
		ScaleUps:      st.ScaleUps,
		ScaleDowns:    st.ScaleDowns,
		Flaps:         st.Flaps,
		MaxReplicas:   maxReplicas,
		MinReplicas:   cp.Fleet().Size(),
		RolloutState:  roState,
		ColdFirstMs:   coldMs,
		WarmFirstMs:   warmMs,
	}, nil
}

// Rollout renders the control-plane rollout benchmark.
func Rollout() (string, error) {
	res, err := RolloutRun()
	if err != nil {
		return "", err
	}
	return renderRollout(res), nil
}

func renderRollout(r *RolloutResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Control plane: canary rollout under %d-conn open loop @ %.0f rps (%.1fs)\n",
		r.Clients, r.TargetRps, r.Seconds)
	fmt.Fprintf(&sb, "  requests %d  drops %d  rollout %s  replicas %d..%d  scale +%d/-%d  flaps %d\n",
		r.Requests, r.Drops, r.RolloutState, r.MinReplicas, r.MaxReplicas,
		r.ScaleUps, r.ScaleDowns, r.Flaps)
	fmt.Fprintf(&sb, "  latency   p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.2fms\n",
		r.Latency.P50Ms, r.Latency.P95Ms, r.Latency.P99Ms, r.Latency.MaxMs)
	fmt.Fprintf(&sb, "  canary    p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.2fms\n",
		r.CanaryLatency.P50Ms, r.CanaryLatency.P95Ms, r.CanaryLatency.P99Ms, r.CanaryLatency.MaxMs)
	fmt.Fprintf(&sb, "  first request: cold %.3fms  warmed %.3fms\n", r.ColdFirstMs, r.WarmFirstMs)
	return sb.String()
}
