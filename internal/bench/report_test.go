package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestRunReportCheapExperiments exercises the report builder on the
// zero-timing experiments and checks the JSON round-trips.
func TestRunReportCheapExperiments(t *testing.T) {
	rep, text, err := Run([]string{"table1", "fig9"})
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("no rendered text")
	}
	if rep.Schema != "tfhpc-bench/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Figures) != 2 {
		t.Fatalf("figures = %d, want 2", len(rep.Figures))
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.GoVersion == "" || back.GoMaxProcs <= 0 {
		t.Fatalf("host fields missing: %+v", back)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if _, _, err := Run([]string{"fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestCollectiveBenchSmall verifies the allreduce sweep machinery (full
// sweeps run in tfbench, not the test suite).
func TestCollectiveBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	res, err := CollectiveRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	times := map[string]map[string]float64{} // case key -> algo -> seconds
	caseKey := func(r CollectiveRow) string {
		return fmt.Sprintf("%s/p%d/e%d/t%d", r.Fabric, r.Tasks, r.Elems, r.Tensors)
	}
	for _, r := range res.Rows {
		if r.Seconds <= 0 || r.BusMBps <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		if times[caseKey(r)] == nil {
			times[caseKey(r)] = map[string]float64{}
		}
		times[caseKey(r)][r.Algo] = r.Seconds
	}
	// On the modelled fabrics a balanced algorithm must beat gather-to-root
	// at p >= 4 regardless of host core count; the raw host rows
	// additionally need real cores.
	balancedWins := 0
	pickerSane := 0
	for key, algos := range times {
		naive, hasNaive := algos["naive"]
		if hasNaive && !strings.HasPrefix(key, "host/") {
			if ring, ok := algos["ring"]; ok && ring < naive {
				balancedWins++
			}
			if dbl, ok := algos["doubling"]; ok && dbl < naive {
				balancedWins++
			}
		}
		// The picker must never be far worse than the better of its two
		// choices (it IS one of them, modulo run-to-run jitter).
		if auto, ok := algos["auto"]; ok {
			ring, okR := algos["ring"]
			dbl, okD := algos["doubling"]
			if okR && okD && auto <= 2*min(ring, dbl) {
				pickerSane++
			}
		}
	}
	if balancedWins == 0 {
		t.Fatal("no balanced algorithm ever beat the gather-to-root baseline on a modelled fabric")
	}
	if pickerSane == 0 {
		t.Fatal("auto picker never landed near the better algorithm")
	}
	if res.CrossoverBytes <= 0 {
		t.Fatalf("crossover not measured: %d", res.CrossoverBytes)
	}
	fusedRows := 0
	for _, r := range res.Rows {
		if r.Algo == "fused" && r.Tensors > 1 {
			fusedRows++
		}
	}
	if fusedRows == 0 {
		t.Fatal("fusion rows missing from the sweep")
	}
}
