package bench

import (
	"encoding/json"
	"testing"
)

// TestRunReportCheapExperiments exercises the report builder on the
// zero-timing experiments and checks the JSON round-trips.
func TestRunReportCheapExperiments(t *testing.T) {
	rep, text, err := Run([]string{"table1", "fig9"})
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("no rendered text")
	}
	if rep.Schema != "tfhpc-bench/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Figures) != 2 {
		t.Fatalf("figures = %d, want 2", len(rep.Figures))
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.GoVersion == "" || back.GoMaxProcs <= 0 {
		t.Fatalf("host fields missing: %+v", back)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if _, _, err := Run([]string{"fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestCollectiveBenchSmall verifies the allreduce comparison machinery on a
// scaled-down case (full sweeps run in tfbench, not the test suite).
func TestCollectiveBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rows, err := CollectiveRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	ringWins := 0
	for _, r := range rows {
		if r.RingSeconds <= 0 || r.NaiveSeconds <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		if r.Tasks >= 4 && r.Fabric != "host" && r.Speedup > 1 {
			ringWins++
		}
	}
	// On the modelled fabrics the ring must beat gather-to-root regardless
	// of host core count; the raw host rows additionally need real cores.
	if ringWins == 0 {
		t.Fatal("ring allreduce never beat the gather-to-root baseline on a modelled fabric")
	}
}
