package session

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"tfhpc/internal/collective"
	"tfhpc/internal/graph"
	"tfhpc/internal/tensor"
	"tfhpc/internal/timeline"
)

// buildListing1 reproduces the paper's Listing 1: two random matrices
// generated on CPU, multiplied on GPU.
func buildListing1(g *graph.Graph) *graph.Node {
	var a, b, c *graph.Node
	g.WithDevice("/cpu:0", func() {
		a = g.AddOp("RandomUniform", graph.Attrs{
			"dtype": tensor.Float32, "shape": tensor.Shape{3, 3}, "seed": 1})
		b = g.AddOp("RandomUniform", graph.Attrs{
			"dtype": tensor.Float32, "shape": tensor.Shape{3, 3}, "seed": 2})
	})
	g.WithDevice("/gpu:0", func() {
		c = g.AddOp("MatMul", nil, a, b)
	})
	return c
}

func TestListing1MatMul(t *testing.T) {
	g := graph.New()
	c := buildListing1(g)
	sess, err := New(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run(nil, []string{c.Name()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Shape().Equal(tensor.Shape{3, 3}) {
		t.Fatalf("shape %v", out[0].Shape())
	}
	// Product of two matrices with entries in [0,1): every element in [0,3).
	for _, v := range out[0].F32() {
		if v < 0 || v >= 3 {
			t.Fatalf("implausible product element %v", v)
		}
	}
}

func TestFeedsOverrideNodes(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x", tensor.Float64, tensor.Shape{2})
	y := g.Const(tensor.FromF64(tensor.Shape{2}, []float64{10, 20}))
	sum := g.AddOp("Add", nil, x, y)
	sess, _ := New(g, nil, Options{})

	out, err := sess.Run(map[string]*tensor.Tensor{
		"x": tensor.FromF64(tensor.Shape{2}, []float64{1, 2}),
	}, []string{sum.Name()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].F64()[0] != 11 || out[0].F64()[1] != 22 {
		t.Fatalf("sum = %v", out[0].F64())
	}
	// Unfed placeholder errors.
	if _, err := sess.Run(nil, []string{sum.Name()}, nil); err == nil {
		t.Fatal("unfed placeholder should error")
	}
	// Feeding a non-placeholder overrides it too (TF semantics).
	out, err = sess.Run(map[string]*tensor.Tensor{
		"x":      tensor.FromF64(tensor.Shape{2}, []float64{0, 0}),
		y.Name(): tensor.FromF64(tensor.Shape{2}, []float64{5, 5}),
	}, []string{sum.Name()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].F64()[0] != 5 {
		t.Fatalf("fed const: %v", out[0].F64())
	}
}

func TestVariablesPersistAcrossRuns(t *testing.T) {
	g := graph.New()
	init := g.AddNamedOp("init", "Assign", graph.Attrs{"var_name": "counter"},
		g.Const(tensor.ScalarF64(0)))
	inc := g.AddNamedOp("inc", "AssignAdd", graph.Attrs{"var_name": "counter"},
		g.Const(tensor.ScalarF64(1)))
	read := g.AddNamedOp("read", "Variable", graph.Attrs{"var_name": "counter"})

	sess, _ := New(g, nil, Options{})
	if _, err := sess.Run(nil, nil, []string{init.Name()}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sess.Run(nil, nil, []string{inc.Name()}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := sess.Run(nil, []string{read.Name()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ScalarFloat() != 5 {
		t.Fatalf("counter = %v, want 5 (state must persist across runs)", out[0].ScalarFloat())
	}
}

func TestOnlyNeededSubgraphRuns(t *testing.T) {
	g := graph.New()
	a := g.Const(tensor.ScalarF64(1))
	// A poisoned branch: unfed placeholder. Fetching `a` must not touch it.
	ph := g.Placeholder("poison", tensor.Float64, nil)
	g.AddOp("Neg", nil, ph)
	sess, _ := New(g, nil, Options{})
	out, err := sess.Run(nil, []string{a.Name()}, nil)
	if err != nil {
		t.Fatalf("pruning failed: %v", err)
	}
	if out[0].ScalarFloat() != 1 {
		t.Fatal("wrong value")
	}
}

func TestParallelDiamondDependencies(t *testing.T) {
	g := graph.New()
	root := g.Const(tensor.FromF64(tensor.Shape{4}, []float64{1, 2, 3, 4}))
	l := g.AddOp("Scale", nil, g.Const(tensor.ScalarF64(2)), root)
	r := g.AddOp("Scale", nil, g.Const(tensor.ScalarF64(3)), root)
	join := g.AddOp("Add", nil, l, r)
	sess, _ := New(g, nil, Options{})
	out, err := sess.Run(nil, []string{join.Name()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].F64()[3] != 20 {
		t.Fatalf("diamond = %v", out[0].F64())
	}
}

func TestControlDependencyOrdering(t *testing.T) {
	g := graph.New()
	init := g.AddNamedOp("init", "Assign", graph.Attrs{"var_name": "v"},
		g.Const(tensor.ScalarF64(100)))
	read := g.AddNamedOp("read", "Variable", graph.Attrs{"var_name": "v"})
	read.AddControlDep(init)
	sess, _ := New(g, nil, Options{})
	out, err := sess.Run(nil, []string{"read"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ScalarFloat() != 100 {
		t.Fatal("control dep did not order init before read")
	}
}

func TestRunErrors(t *testing.T) {
	g := graph.New()
	g.Const(tensor.ScalarF64(1))
	sess, _ := New(g, nil, Options{})
	if _, err := sess.Run(nil, []string{"nope"}, nil); err == nil {
		t.Fatal("unknown fetch should error")
	}
	if _, err := sess.Run(nil, nil, nil); err == nil {
		t.Fatal("empty run should error")
	}
	if _, err := sess.Run(map[string]*tensor.Tensor{"ghost": tensor.ScalarF64(1)},
		[]string{"nope"}, nil); err == nil {
		t.Fatal("unknown feed should error")
	}
}

func TestKernelErrorPropagates(t *testing.T) {
	g := graph.New()
	a := g.Const(tensor.FromF64(tensor.Shape{2}, []float64{1, 2}))
	b := g.Const(tensor.FromF64(tensor.Shape{3}, []float64{1, 2, 3}))
	bad := g.AddOp("Add", nil, a, b)
	sess, _ := New(g, nil, Options{})
	_, err := sess.Run(nil, []string{bad.Name()}, nil)
	if err == nil || !strings.Contains(err.Error(), "shape mismatch") {
		t.Fatalf("want shape mismatch error, got %v", err)
	}
}

func TestRemoteOpRequiresRunner(t *testing.T) {
	g := graph.New()
	var remote *graph.Node
	g.WithDevice("/job:ps/task:0", func() {
		remote = g.AddOp("Variable", graph.Attrs{"var_name": "w"})
	})
	sess, _ := New(g, nil, Options{LocalJob: "worker", LocalTask: 0})
	if _, err := sess.Run(nil, []string{remote.Name()}, nil); err == nil ||
		!strings.Contains(err.Error(), "no remote runner") {
		t.Fatalf("want remote-runner error, got %v", err)
	}
}

func TestTimelineCollection(t *testing.T) {
	g := graph.New()
	c := buildListing1(g)
	trace := timeline.New()
	sess, _ := New(g, nil, Options{Trace: trace})
	if _, err := sess.Run(nil, []string{c.Name()}, nil); err != nil {
		t.Fatal(err)
	}
	if trace.Len() != 3 {
		t.Fatalf("trace has %d events, want 3", trace.Len())
	}
	events := trace.Events()
	devices := map[string]bool{}
	for _, ev := range events {
		if ev.End < ev.Start {
			t.Fatal("event ends before it starts")
		}
		devices[ev.Device] = true
	}
	if !devices["/device:CPU:0"] || !devices["/device:GPU:0"] {
		t.Fatalf("expected CPU and GPU lanes, got %v", devices)
	}
	b, err := trace.MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "traceEvents") || !strings.Contains(string(b), "MatMul") {
		t.Fatal("chrome JSON missing content")
	}
}

func TestParallelismLimit(t *testing.T) {
	g := graph.New()
	var outs []string
	for i := 0; i < 20; i++ {
		n := g.AddOp("RandomUniform", graph.Attrs{
			"dtype": tensor.Float64, "shape": tensor.Shape{64}, "seed": i})
		outs = append(outs, n.Name())
	}
	sess, _ := New(g, nil, Options{Parallelism: 2})
	res, err := sess.Run(nil, outs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatal("wrong fetch count")
	}
}

// TestExecutorCoalescesFusedAllReduces builds, per rank, a graph holding
// several independent AllReduceFused nodes: the parallel executor
// dispatches them concurrently, so the group's fusion buffer must coalesce
// one Run's posts into a single negotiated pass and still return the exact
// per-key sums.
func TestExecutorCoalescesFusedAllReduces(t *testing.T) {
	const p, K, n = 3, 6, 16
	res := NewResources()
	groups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{FlushTensors: K},
	})
	for r, grp := range groups {
		res.Colls.Register(fmt.Sprintf("fg%d", r), grp)
	}
	defer res.Colls.CloseAll()

	sessions := make([]*Session, p)
	fetches := make([]string, K)
	for r := 0; r < p; r++ {
		g := graph.New()
		for k := 0; k < K; k++ {
			ph := g.Placeholder(fmt.Sprintf("in%d", k), tensor.Float64, tensor.Shape{n})
			node := g.AddNamedOp(fmt.Sprintf("fused%d", k), "AllReduceFused",
				graph.Attrs{"group": fmt.Sprintf("fg%d", r), "key": fmt.Sprintf("k%d", k)}, ph)
			fetches[k] = node.Name()
		}
		sess, err := New(g, res, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sessions[r] = sess
	}

	ins := make([][]*tensor.Tensor, p) // ins[r][k]
	want := make([][]float64, K)
	for k := range want {
		want[k] = make([]float64, n)
	}
	for r := 0; r < p; r++ {
		ins[r] = make([]*tensor.Tensor, K)
		for k := 0; k < K; k++ {
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(100*r + 10*k + i)
				want[k][i] += v[i]
			}
			ins[r][k] = tensor.FromF64(tensor.Shape{n}, v)
		}
	}

	outs := make([][]*tensor.Tensor, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			feeds := map[string]*tensor.Tensor{}
			for k := 0; k < K; k++ {
				feeds[fmt.Sprintf("in%d", k)] = ins[r][k]
			}
			outs[r], errs[r] = sessions[r].Run(feeds, fetches, nil)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		for k := 0; k < K; k++ {
			for i := 0; i < n; i++ {
				if outs[r][k].F64()[i] != want[k][i] {
					t.Fatalf("rank %d key %d elem %d = %g, want %g", r, k, i, outs[r][k].F64()[i], want[k][i])
				}
			}
		}
	}
}

// TestAsyncAllReduceSpansRuns starts a collective in one session Run and
// joins it in a later one — the double-buffered handle contract the SGD
// loss pipeline relies on.
func TestAsyncAllReduceSpansRuns(t *testing.T) {
	const p = 2
	res := NewResources()
	groups := collective.NewLoopbackGroups(p, collective.Options{})
	for r, grp := range groups {
		res.Colls.Register(fmt.Sprintf("ag%d", r), grp)
	}
	defer res.Colls.CloseAll()

	sessions := make([]*Session, p)
	for r := 0; r < p; r++ {
		g := graph.New()
		ph := g.Placeholder("x", tensor.Float64, nil)
		g.AddNamedOp("start", "AllReduceStart",
			graph.Attrs{"group": fmt.Sprintf("ag%d", r), "key": "s", "handle": "h"}, ph)
		g.AddNamedOp("join", "AllReduceJoin",
			graph.Attrs{"group": fmt.Sprintf("ag%d", r), "handle": "h"})
		sess, err := New(g, res, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sessions[r] = sess
	}
	errs := make([]error, p)
	vals := make([]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if _, err := sessions[r].Run(map[string]*tensor.Tensor{"x": tensor.ScalarF64(float64(r + 1))},
				nil, []string{"start"}); err != nil {
				errs[r] = err
				return
			}
			out, err := sessions[r].Run(nil, []string{"join"}, nil)
			if err != nil {
				errs[r] = err
				return
			}
			vals[r] = out[0].ScalarFloat()
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if vals[r] != 3 { // 1 + 2
			t.Fatalf("rank %d: joined %g, want 3", r, vals[r])
		}
	}
}
