// Package session executes dataflow graphs: the tf.Session analogue. A
// session binds a graph to a set of local resources (variables, queues) and
// runs fetch/feed requests through a parallel topological executor that
// dispatches independent ops concurrently — the property the paper
// highlights as a core advantage of dataflow computing.
//
// Ops placed on remote jobs/tasks are forwarded through a RemoteRunner
// (implemented over TCP RPC by internal/cluster), so the same session code
// drives single-process and distributed executions.
package session

import (
	"fmt"
	"io"
	"sync"

	"tfhpc/internal/graph"
	"tfhpc/internal/ops"
	"tfhpc/internal/queue"
	"tfhpc/internal/tensor"
	"tfhpc/internal/timeline"
	"tfhpc/internal/vars"
)

// Resources is the stateful backing of one task: its variables, queues and
// collective-group memberships.
type Resources struct {
	Vars   *vars.Store
	Queues *queue.Registry
	Colls  *CollStore
}

// NewResources allocates empty stores.
func NewResources() *Resources {
	return &Resources{Vars: vars.NewStore(), Queues: queue.NewRegistry(), Colls: NewCollStore()}
}

// Variable implements ops.Resources.
func (r *Resources) Variable(name string) (ops.VariableHandle, error) {
	return r.Vars.Get(name), nil
}

// Queue implements ops.Resources.
func (r *Resources) Queue(name string, capacity int) (ops.QueueHandle, error) {
	return r.Queues.Get(name, capacity), nil
}

// Collective implements ops.Resources.
func (r *Resources) Collective(name string) (ops.CollectiveHandle, error) {
	return r.Colls.Get(name)
}

// CollStore is the task's registry of collective-group memberships. Unlike
// variables and queues, groups are not created on first use: membership
// needs a transport endpoint (rank, peers), so the runtime — cluster servers
// on CollInit, in-process apps directly — registers handles explicitly.
type CollStore struct {
	mu sync.Mutex
	m  map[string]ops.CollectiveHandle
}

// NewCollStore returns an empty registry.
func NewCollStore() *CollStore {
	return &CollStore{m: make(map[string]ops.CollectiveHandle)}
}

// Register installs (or replaces) the named group membership. A replaced
// handle is closed if it implements io.Closer.
func (s *CollStore) Register(name string, h ops.CollectiveHandle) {
	s.mu.Lock()
	old := s.m[name]
	s.m[name] = h
	s.mu.Unlock()
	if c, ok := old.(io.Closer); ok && old != nil {
		c.Close()
	}
}

// Get resolves a registered group membership.
func (s *CollStore) Get(name string) (ops.CollectiveHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.m[name]
	if !ok {
		return nil, fmt.Errorf("session: no collective group %q registered on this task", name)
	}
	return h, nil
}

// Close removes and closes one registered membership (no-op if absent) —
// the remote-abort path: poisoning a group's transport errors out any rank
// blocked inside one of its collectives.
func (s *CollStore) Close(name string) {
	s.mu.Lock()
	h := s.m[name]
	delete(s.m, name)
	s.mu.Unlock()
	if c, ok := h.(io.Closer); ok && h != nil {
		c.Close()
	}
}

// CloseAll closes every registered handle that implements io.Closer and
// empties the store — used at server teardown so ranks blocked inside a
// collective fail fast instead of stalling shutdown.
func (s *CollStore) CloseAll() {
	s.mu.Lock()
	m := s.m
	s.m = make(map[string]ops.CollectiveHandle)
	s.mu.Unlock()
	for _, h := range m {
		if c, ok := h.(io.Closer); ok {
			c.Close()
		}
	}
}

// RemoteRunner executes a single op on a remote task. inputs are already
// evaluated; the remote side applies the kernel against its own resources.
type RemoteRunner interface {
	RunRemoteOp(device graph.DeviceSpec, op, nodeName string, attrs graph.Attrs,
		inputNames []string, inputs []*tensor.Tensor) (*tensor.Tensor, error)
}

// Options configures a session.
type Options struct {
	// LocalJob/LocalTask identify this process within a cluster; ops whose
	// device spec names another job/task are forwarded to Remote. An empty
	// LocalJob treats every op as local.
	LocalJob  string
	LocalTask int
	// Remote forwards non-local ops; required only in distributed runs.
	Remote RemoteRunner
	// Trace, when non-nil, records per-op spans (TensorFlow Timeline).
	Trace *timeline.Trace
	// Parallelism bounds concurrent op dispatch; 0 = unlimited (the executor
	// is already throttled by dependencies; kernels self-limit to NumCPU).
	//
	// Caution: collective kernels (AllReduce, AllReduceFused, ...) block
	// inside the executor until peer ranks issue the matching call, and the
	// executor seeds ready nodes in nondeterministic order — so a graph
	// with K independent collective nodes needs Parallelism 0 or >= K on
	// every rank, or two ranks can each fill all their slots with
	// collectives the other has not dispatched yet and deadlock. Leave it 0
	// for graphs that use collectives (the default everywhere in this
	// repo).
	Parallelism int
}

// Session executes a fixed graph repeatedly.
type Session struct {
	g    *graph.Graph
	res  *Resources
	opts Options
}

// New validates the graph and binds it to resources. A nil res allocates
// fresh local stores.
func New(g *graph.Graph, res *Resources, opts Options) (*Session, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if res == nil {
		res = NewResources()
	}
	return &Session{g: g, res: res, opts: opts}, nil
}

// Resources exposes the session's stateful backing (for checkpointing).
func (s *Session) Resources() *Resources { return s.res }

// Graph returns the bound graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// Run evaluates the named fetches (returned in order) after executing the
// named targets (run for effect only), with feeds overriding node outputs.
// It is the equivalent of sess.run(fetches, feed_dict) — including the
// paper's STREAM trick of passing an op as a target with no fetches so that
// no tensor value is returned to the client.
func (s *Session) Run(feeds map[string]*tensor.Tensor, fetches, targets []string) ([]*tensor.Tensor, error) {
	var roots []*graph.Node
	resolve := func(name string) (*graph.Node, error) {
		n := s.g.Lookup(name)
		if n == nil {
			return nil, fmt.Errorf("session: no node named %q", name)
		}
		return n, nil
	}
	fetchNodes := make([]*graph.Node, len(fetches))
	for i, f := range fetches {
		n, err := resolve(f)
		if err != nil {
			return nil, err
		}
		fetchNodes[i] = n
		roots = append(roots, n)
	}
	for _, t := range targets {
		n, err := resolve(t)
		if err != nil {
			return nil, err
		}
		roots = append(roots, n)
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("session: Run needs at least one fetch or target")
	}
	for name := range feeds {
		if _, err := resolve(name); err != nil {
			return nil, err
		}
	}

	exec := &execution{
		sess:    s,
		needed:  s.g.Subgraph(roots),
		feeds:   feeds,
		results: make(map[int]*tensor.Tensor),
		scratch: ops.NewScratch(),
	}
	if err := exec.run(); err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, len(fetchNodes))
	for i, n := range fetchNodes {
		v, ok := exec.results[n.ID()]
		if !ok || v == nil {
			return nil, fmt.Errorf("session: fetch %q produced no value", n.Name())
		}
		out[i] = v
	}
	return out, nil
}

// execution is the per-Run state of the parallel topological executor.
type execution struct {
	sess    *Session
	needed  map[int]bool
	feeds   map[string]*tensor.Tensor
	scratch *ops.Scratch

	mu      sync.Mutex
	results map[int]*tensor.Tensor
	err     error
}

func (e *execution) setErr(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *execution) run() error {
	g := e.sess.g
	// Build dependency counts restricted to the needed subgraph.
	indeg := make(map[int]int, len(e.needed))
	succs := make(map[int][]*graph.Node, len(e.needed))
	var nodes []*graph.Node
	for id := range e.needed {
		nodes = append(nodes, g.Nodes()[id])
	}
	for _, n := range nodes {
		if _, fed := e.feeds[n.Name()]; fed {
			continue // fed nodes have no dependencies
		}
		deps := 0
		for _, in := range n.Inputs() {
			if e.needed[in.ID()] {
				deps++
				succs[in.ID()] = append(succs[in.ID()], n)
			}
		}
		for _, c := range n.ControlDeps() {
			if e.needed[c.ID()] {
				deps++
				succs[c.ID()] = append(succs[c.ID()], n)
			}
		}
		indeg[n.ID()] = deps
	}

	var wg sync.WaitGroup
	var sem chan struct{}
	if p := e.sess.opts.Parallelism; p > 0 {
		sem = make(chan struct{}, p)
	}
	var schedule func(n *graph.Node)
	dispatch := func(n *graph.Node) {
		defer wg.Done()
		if sem != nil {
			sem <- struct{}{}
			defer func() { <-sem }()
		}
		e.mu.Lock()
		failed := e.err != nil
		e.mu.Unlock()
		if failed {
			return
		}
		out, err := e.evalNode(n)
		if err != nil {
			e.setErr(err)
			return
		}
		e.mu.Lock()
		e.results[n.ID()] = out
		var ready []*graph.Node
		for _, s := range succs[n.ID()] {
			indeg[s.ID()]--
			if indeg[s.ID()] == 0 {
				ready = append(ready, s)
			}
		}
		e.mu.Unlock()
		for _, r := range ready {
			schedule(r)
		}
	}
	schedule = func(n *graph.Node) {
		wg.Add(1)
		go dispatch(n)
	}

	// Seed: fed nodes resolve immediately; then roots with no remaining deps.
	e.mu.Lock()
	var seeds []*graph.Node
	for _, n := range nodes {
		if v, fed := e.feeds[n.Name()]; fed {
			e.results[n.ID()] = v
			for _, s := range succs[n.ID()] {
				indeg[s.ID()]--
			}
		}
	}
	for _, n := range nodes {
		if _, fed := e.feeds[n.Name()]; fed {
			continue
		}
		if indeg[n.ID()] == 0 {
			seeds = append(seeds, n)
		}
	}
	e.mu.Unlock()
	for _, n := range seeds {
		schedule(n)
	}
	wg.Wait()
	return e.err
}

// evalNode runs one node locally or remotely.
func (e *execution) evalNode(n *graph.Node) (*tensor.Tensor, error) {
	inputs := make([]*tensor.Tensor, len(n.Inputs()))
	inputNames := make([]string, len(n.Inputs()))
	e.mu.Lock()
	for i, in := range n.Inputs() {
		inputs[i] = e.results[in.ID()]
		inputNames[i] = in.Name()
	}
	e.mu.Unlock()

	opts := &e.sess.opts
	dev := n.Device()
	local := opts.LocalJob == "" || dev.IsLocalTo(opts.LocalJob, opts.LocalTask)

	var start float64
	if opts.Trace != nil {
		start = opts.Trace.Now()
	}
	var out *tensor.Tensor
	var err error
	if local {
		ctx := &ops.Context{
			NodeName:   n.Name(),
			Attrs:      n.Attrs(),
			InputNames: inputNames,
			Resources:  e.sess.res,
			Scratch:    e.scratch,
		}
		out, err = ops.Run(n.Op(), ctx, inputs)
	} else {
		if opts.Remote == nil {
			return nil, fmt.Errorf("session: node %q placed on %v but no remote runner configured",
				n.Name(), dev)
		}
		out, err = opts.Remote.RunRemoteOp(dev, n.Op(), n.Name(), n.Attrs(), inputNames, inputs)
	}
	if opts.Trace != nil {
		devStr := dev.String()
		if devStr == "" {
			devStr = "/device:CPU:0"
		}
		opts.Trace.AddSpan(n.Name(), n.Op(), devStr, start, opts.Trace.Now())
	}
	return out, err
}
