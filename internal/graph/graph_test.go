package graph

import (
	"strings"
	"testing"

	"tfhpc/internal/tensor"
)

func TestParseDeviceForms(t *testing.T) {
	cases := []struct {
		in   string
		want DeviceSpec
	}{
		{"", UnconstrainedDevice()},
		{"/cpu:0", DeviceSpec{Task: -1, DeviceType: "CPU", DeviceIndex: 0}},
		{"/gpu:1", DeviceSpec{Task: -1, DeviceType: "GPU", DeviceIndex: 1}},
		{"/device:GPU:0", DeviceSpec{Task: -1, DeviceType: "GPU", DeviceIndex: 0}},
		{"/job:ps", DeviceSpec{Job: "ps", Task: -1, DeviceIndex: -1}},
		{"/job:worker/task:1", DeviceSpec{Job: "worker", Task: 1, DeviceIndex: -1}},
		{"/job:worker/task:1/device:GPU:0", DeviceSpec{Job: "worker", Task: 1, DeviceType: "GPU", DeviceIndex: 0}},
		{"/job:worker/replica:0/task:2/device:CPU:0", DeviceSpec{Job: "worker", Task: 2, DeviceType: "CPU", DeviceIndex: 0}},
	}
	for _, c := range cases {
		got, err := ParseDevice(c.in)
		if err != nil {
			t.Fatalf("ParseDevice(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseDevice(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseDeviceErrors(t *testing.T) {
	for _, s := range []string{
		"gpu:0",       // no leading slash
		"/tpu:0",      // unsupported type
		"/task:x",     // bad index
		"/device:GPU", // missing index
		"/gpu:-1",     // negative
		"/banana:1",   // unknown key
		"/job",        // no colon
	} {
		if _, err := ParseDevice(s); err == nil {
			t.Errorf("ParseDevice(%q) should fail", s)
		}
	}
}

func TestDeviceStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"/job:ps/task:0/device:CPU:0",
		"/job:worker/task:3/device:GPU:1",
		"/device:GPU:0",
	} {
		spec := MustParseDevice(s)
		if spec.String() != s {
			t.Errorf("round trip %q -> %q", s, spec.String())
		}
	}
}

func TestDeviceMerge(t *testing.T) {
	inner := MustParseDevice("/gpu:0")
	outer := MustParseDevice("/job:worker/task:1")
	merged := inner.Merge(outer)
	want := "/job:worker/task:1/device:GPU:0"
	if merged.String() != want {
		t.Fatalf("merged = %q, want %q", merged.String(), want)
	}
	// Inner wins on conflict.
	a := MustParseDevice("/job:ps").Merge(MustParseDevice("/job:worker"))
	if a.Job != "ps" {
		t.Fatalf("inner job should win, got %q", a.Job)
	}
}

func TestIsLocalTo(t *testing.T) {
	d := MustParseDevice("/job:worker/task:1/device:GPU:0")
	if !d.IsLocalTo("worker", 1) {
		t.Fatal("should be local to worker:1")
	}
	if d.IsLocalTo("worker", 0) || d.IsLocalTo("ps", 1) {
		t.Fatal("should not be local to other tasks")
	}
	open := MustParseDevice("/cpu:0")
	if !open.IsLocalTo("anything", 5) {
		t.Fatal("job-free spec is local everywhere")
	}
}

func TestGraphBuildAndLookup(t *testing.T) {
	g := New()
	a := g.Const(tensor.ScalarF64(1))
	b := g.Const(tensor.ScalarF64(2))
	c := g.AddOp("Add", nil, a, b)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.Lookup(c.Name()) != c {
		t.Fatal("Lookup failed")
	}
	if c.Inputs()[0] != a || c.Inputs()[1] != b {
		t.Fatal("inputs wrong")
	}
	// Unique auto-names.
	if a.Name() == b.Name() {
		t.Fatal("duplicate auto names")
	}
}

func TestGraphDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New()
	g.AddNamedOp("x", "NoOp", nil)
	g.AddNamedOp("x", "NoOp", nil)
}

func TestWithDeviceScoping(t *testing.T) {
	g := New()
	var inner, outer, both *Node
	g.WithDevice("/job:worker/task:0", func() {
		outer = g.AddOp("NoOp", nil)
		g.WithDevice("/gpu:1", func() {
			both = g.AddOp("NoOp", nil)
		})
	})
	g.WithDevice("/cpu:0", func() {
		inner = g.AddOp("NoOp", nil)
	})
	if outer.Device().String() != "/job:worker/task:0" {
		t.Fatalf("outer device %q", outer.Device().String())
	}
	if both.Device().String() != "/job:worker/task:0/device:GPU:1" {
		t.Fatalf("nested device %q", both.Device().String())
	}
	if inner.Device().String() != "/device:CPU:0" {
		t.Fatalf("inner device %q", inner.Device().String())
	}
	// Scope popped cleanly.
	after := g.AddOp("NoOp", nil)
	if !after.Device().Unconstrained() {
		t.Fatalf("device scope leaked: %q", after.Device().String())
	}
}

func TestTopoSortOrder(t *testing.T) {
	g := New()
	a := g.AddOp("NoOp", nil)
	b := g.AddOp("NoOp", nil, a)
	c := g.AddOp("NoOp", nil, a, b)
	d := g.AddOp("NoOp", nil)
	d.AddControlDep(c)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n.Name()] = i
	}
	if !(pos[a.Name()] < pos[b.Name()] && pos[b.Name()] < pos[c.Name()] && pos[c.Name()] < pos[d.Name()]) {
		t.Fatalf("bad order: %v", pos)
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	a := g.AddOp("NoOp", nil)
	b := g.AddOp("NoOp", nil, a)
	// Force a cycle through control deps.
	a.AddControlDep(b)
	if _, err := g.TopoSort(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should catch the cycle")
	}
}

func TestSubgraph(t *testing.T) {
	g := New()
	a := g.AddOp("NoOp", nil)
	b := g.AddOp("NoOp", nil, a)
	cNode := g.AddOp("NoOp", nil) // unrelated
	needed := g.Subgraph([]*Node{b})
	if !needed[a.ID()] || !needed[b.ID()] {
		t.Fatal("subgraph missing deps")
	}
	if needed[cNode.ID()] {
		t.Fatal("subgraph includes unrelated node")
	}
}

func TestGraphDefRoundTrip(t *testing.T) {
	g := New()
	val := tensor.FromF32(tensor.Shape{2, 2}, []float32{1, 2, 3, 4})
	var c, ph, mm *Node
	g.WithDevice("/job:worker/task:0/device:GPU:0", func() {
		c = g.Const(val)
		ph = g.Placeholder("x", tensor.Float32, tensor.Shape{2, 2})
		mm = g.AddOp("MatMul", Attrs{"transpose_b": true}, c, ph)
	})
	ctl := g.AddOp("NoOp", nil)
	mm.AddControlDep(ctl)

	buf, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := UnmarshalGraph(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatalf("node count %d vs %d", g2.NumNodes(), g.NumNodes())
	}
	mm2 := g2.Lookup(mm.Name())
	if mm2 == nil {
		t.Fatal("MatMul node missing after round trip")
	}
	if mm2.Device().String() != "/job:worker/task:0/device:GPU:0" {
		t.Fatalf("device lost: %q", mm2.Device().String())
	}
	if tb, _ := mm2.Attr("transpose_b").(bool); !tb {
		t.Fatal("bool attr lost")
	}
	if len(mm2.ControlDeps()) != 1 || mm2.ControlDeps()[0].Name() != ctl.Name() {
		t.Fatal("control dep lost")
	}
	c2 := g2.Lookup(c.Name())
	got, _ := c2.Attr("value").(*tensor.Tensor)
	if got == nil || !got.Equal(val) {
		t.Fatal("const tensor attr lost")
	}
	ph2 := g2.Lookup("x")
	if dt, _ := ph2.Attr("dtype").(tensor.DType); dt != tensor.Float32 {
		t.Fatal("dtype attr lost")
	}
	if sh, _ := ph2.Attr("shape").(tensor.Shape); !sh.Equal(tensor.Shape{2, 2}) {
		t.Fatal("shape attr lost")
	}
}

func TestMarshalAttrsRoundTrip(t *testing.T) {
	attrs := Attrs{
		"i":     42,
		"f":     2.5,
		"s":     "queue0",
		"b":     true,
		"dt":    tensor.Float64,
		"shape": tensor.Shape{8, 8},
		"t":     tensor.ScalarI64(7),
	}
	buf, err := MarshalAttrs(attrs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAttrs(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got["i"].(int) != 42 || got["f"].(float64) != 2.5 || got["s"].(string) != "queue0" ||
		got["b"].(bool) != true || got["dt"].(tensor.DType) != tensor.Float64 {
		t.Fatalf("scalar attrs mismatched: %+v", got)
	}
	if !got["shape"].(tensor.Shape).Equal(tensor.Shape{8, 8}) {
		t.Fatal("shape mismatch")
	}
	if got["t"].(*tensor.Tensor).ScalarInt() != 7 {
		t.Fatal("tensor attr mismatch")
	}
}

func TestMarshalUnsupportedAttr(t *testing.T) {
	g := New()
	g.AddOp("NoOp", Attrs{"bad": struct{}{}})
	if _, err := MarshalGraph(g); err == nil {
		t.Fatal("unsupported attr type should error")
	}
}

func TestUnmarshalUnknownInput(t *testing.T) {
	g := New()
	a := g.AddOp("NoOp", nil)
	g.AddOp("NoOp", nil, a)
	buf, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: drop the first node by re-encoding only the second.
	// Simpler: decode full then check error path via fabricated buffer is
	// covered by the resolver test; here just verify success path again.
	if _, err := UnmarshalGraph(buf); err != nil {
		t.Fatal(err)
	}
}
