package graph

import (
	"fmt"
	"io"

	"tfhpc/internal/tensor"
	"tfhpc/internal/wire"
)

// GraphDef serialization. The format is ProtoBuf-style (see internal/wire):
//
//	GraphDef:   repeated field 1: NodeDef
//	NodeDef:    1 name, 2 op, 3 repeated input name, 4 device,
//	            5 repeated control-input name, 6 repeated AttrEntry
//	AttrEntry:  1 key, 2 kind, then one of 3 int, 4 double, 5 string,
//	            6 bool, 7 dtype, 8 shape (repeated varint), 9 tensor bytes
//
// Graphs are language- and platform-independent: a graph built here can be
// written to disk, shipped over RPC and re-opened elsewhere, like the paper
// describes for Python-built graphs reopened from C++. Encoding enforces the
// 2 GiB message ceiling.

const (
	attrKindInt = iota + 1
	attrKindDouble
	attrKindString
	attrKindBool
	attrKindDType
	attrKindShape
	attrKindTensor
)

// MarshalGraph serializes g.
func MarshalGraph(g *Graph) ([]byte, error) {
	e := wire.NewEncoder()
	for _, n := range g.nodes {
		var nodeErr error
		e.Message(1, func(ne *wire.Encoder) {
			ne.String(1, n.name)
			ne.String(2, n.op)
			for _, in := range n.inputs {
				ne.String(3, in.name)
			}
			ne.String(4, n.device.String())
			for _, c := range n.controls {
				ne.String(5, c.name)
			}
			// Deterministic attr order.
			keys := make([]string, 0, len(n.attrs))
			for k := range n.attrs {
				keys = append(keys, k)
			}
			sortStrings(keys)
			for _, k := range keys {
				v := n.attrs[k]
				ne.Message(6, func(ae *wire.Encoder) {
					if err := encodeAttrEntry(ae, k, v); err != nil && nodeErr == nil {
						nodeErr = fmt.Errorf("graph: node %q: %w", n.name, err)
					}
				})
			}
		})
		if nodeErr != nil {
			return nil, nodeErr
		}
		if int64(e.Len()) > wire.MaxMessageSize {
			return nil, fmt.Errorf("graph: GraphDef exceeds 2 GiB at node %q: %w", n.name, wire.ErrMessageTooLarge)
		}
	}
	return e.Bytes(), nil
}

// UnmarshalGraph reconstructs a graph from MarshalGraph output.
func UnmarshalGraph(buf []byte) (*Graph, error) {
	if int64(len(buf)) > wire.MaxMessageSize {
		return nil, wire.ErrMessageTooLarge
	}
	g := New()
	type pending struct {
		node     *Node
		inputs   []string
		controls []string
	}
	var pend []pending
	d := wire.NewDecoder(buf)
	for {
		field, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if field != 1 || wt != wire.TBytes {
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
			continue
		}
		nodeBuf, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		p, err := decodeNode(g, nodeBuf)
		if err != nil {
			return nil, err
		}
		pend = append(pend, p)
	}
	// Resolve edges now that all nodes exist.
	for _, p := range pend {
		for _, name := range p.inputs {
			in := g.Lookup(name)
			if in == nil {
				return nil, fmt.Errorf("graph: node %q references unknown input %q", p.node.name, name)
			}
			p.node.inputs = append(p.node.inputs, in)
		}
		for _, name := range p.controls {
			c := g.Lookup(name)
			if c == nil {
				return nil, fmt.Errorf("graph: node %q references unknown control dep %q", p.node.name, name)
			}
			p.node.controls = append(p.node.controls, c)
		}
	}
	return g, g.Validate()
}

func decodeNode(g *Graph, buf []byte) (struct {
	node     *Node
	inputs   []string
	controls []string
}, error) {
	out := struct {
		node     *Node
		inputs   []string
		controls []string
	}{}
	var name, op, device string
	attrs := Attrs{}
	d := wire.NewDecoder(buf)
	for {
		field, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
		switch field {
		case 1:
			if name, err = d.StringVal(); err != nil {
				return out, err
			}
		case 2:
			if op, err = d.StringVal(); err != nil {
				return out, err
			}
		case 3:
			s, err := d.StringVal()
			if err != nil {
				return out, err
			}
			out.inputs = append(out.inputs, s)
		case 4:
			if device, err = d.StringVal(); err != nil {
				return out, err
			}
		case 5:
			s, err := d.StringVal()
			if err != nil {
				return out, err
			}
			out.controls = append(out.controls, s)
		case 6:
			ab, err := d.Bytes()
			if err != nil {
				return out, err
			}
			k, v, err := decodeAttr(ab)
			if err != nil {
				return out, err
			}
			attrs[k] = v
		default:
			if err := d.Skip(wt); err != nil {
				return out, err
			}
		}
	}
	if name == "" || op == "" {
		return out, fmt.Errorf("graph: node missing name or op")
	}
	spec, err := ParseDevice(device)
	if err != nil {
		return out, err
	}
	n := g.AddNamedOp(name, op, attrs)
	n.device = spec
	out.node = n
	return out, nil
}

// encodeAttrEntry writes key+kind+value of one attribute into an AttrEntry
// message body.
func encodeAttrEntry(ae *wire.Encoder, k string, v any) error {
	ae.String(1, k)
	switch val := v.(type) {
	case int:
		ae.Uint(2, attrKindInt)
		ae.Int(3, int64(val))
	case int64:
		ae.Uint(2, attrKindInt)
		ae.Int(3, val)
	case uint64:
		ae.Uint(2, attrKindInt)
		ae.Int(3, int64(val))
	case float64:
		ae.Uint(2, attrKindDouble)
		ae.Double(4, val)
	case string:
		ae.Uint(2, attrKindString)
		ae.String(5, val)
	case bool:
		ae.Uint(2, attrKindBool)
		ae.Bool(6, val)
	case tensor.DType:
		ae.Uint(2, attrKindDType)
		ae.Uint(7, uint64(val))
	case tensor.Shape:
		ae.Uint(2, attrKindShape)
		ae.Message(8, func(se *wire.Encoder) {
			for _, d := range val {
				se.Uint(1, uint64(d))
			}
		})
	case *tensor.Tensor:
		buf, err := val.Encode(nil)
		if err != nil {
			return fmt.Errorf("attr %q: %w", k, err)
		}
		ae.Uint(2, attrKindTensor)
		ae.BytesField(9, buf)
	default:
		return fmt.Errorf("attr %q has unsupported type %T", k, v)
	}
	return nil
}

// MarshalAttrs serializes an attribute map (repeated field-1 AttrEntry),
// used by the RPC layer to ship node attributes for remote op execution.
func MarshalAttrs(attrs Attrs) ([]byte, error) {
	e := wire.NewEncoder()
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var firstErr error
	for _, k := range keys {
		e.Message(1, func(ae *wire.Encoder) {
			if err := encodeAttrEntry(ae, k, attrs[k]); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	return e.Bytes(), firstErr
}

// UnmarshalAttrs parses MarshalAttrs output.
func UnmarshalAttrs(buf []byte) (Attrs, error) {
	attrs := Attrs{}
	d := wire.NewDecoder(buf)
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if f != 1 {
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
			continue
		}
		ab, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		k, v, err := decodeAttr(ab)
		if err != nil {
			return nil, err
		}
		attrs[k] = v
	}
	return attrs, nil
}

func decodeAttr(buf []byte) (string, any, error) {
	d := wire.NewDecoder(buf)
	var key string
	var kind uint64
	var val any
	for {
		field, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", nil, err
		}
		switch field {
		case 1:
			if key, err = d.StringVal(); err != nil {
				return "", nil, err
			}
		case 2:
			if kind, err = d.Uint(); err != nil {
				return "", nil, err
			}
		case 3:
			v, err := d.Int()
			if err != nil {
				return "", nil, err
			}
			val = int(v)
		case 4:
			v, err := d.Double()
			if err != nil {
				return "", nil, err
			}
			val = v
		case 5:
			v, err := d.StringVal()
			if err != nil {
				return "", nil, err
			}
			val = v
		case 6:
			v, err := d.Bool()
			if err != nil {
				return "", nil, err
			}
			val = v
		case 7:
			v, err := d.Uint()
			if err != nil {
				return "", nil, err
			}
			val = tensor.DType(v)
		case 8:
			sb, err := d.Bytes()
			if err != nil {
				return "", nil, err
			}
			sd := wire.NewDecoder(sb)
			var shape tensor.Shape
			for {
				_, _, err := sd.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return "", nil, err
				}
				dim, err := sd.Uint()
				if err != nil {
					return "", nil, err
				}
				shape = append(shape, int(dim))
			}
			val = shape
		case 9:
			tb, err := d.Bytes()
			if err != nil {
				return "", nil, err
			}
			t, _, err := tensor.Decode(tb)
			if err != nil {
				return "", nil, err
			}
			val = t
		default:
			if err := d.Skip(wt); err != nil {
				return "", nil, err
			}
		}
	}
	if key == "" || kind == 0 {
		return "", nil, fmt.Errorf("graph: attr missing key or kind")
	}
	return key, val, nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
