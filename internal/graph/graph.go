// Package graph implements the dataflow graph at the heart of the runtime:
// named operation nodes connected by tensor-carrying edges, with per-node
// device placement, control dependencies, validation, topological ordering
// and a GraphDef binary serialization bounded by the 2 GiB ProtoBuf limit
// the paper discusses. Graphs are built once and executed many times by a
// Session (deferred execution — "Graph mode").
package graph

import (
	"fmt"
	"sort"

	"tfhpc/internal/tensor"
)

// Attrs carries per-node attributes (dtype, shape, const values, queue
// names, ...). Values must be one of: int, int64, float64, string, bool,
// tensor.DType, tensor.Shape, or *tensor.Tensor.
type Attrs map[string]any

// Node is one operation instance in a graph. Nodes produce a single output
// tensor (multi-output ops are modelled as sibling nodes sharing state).
type Node struct {
	id       int
	name     string
	op       string
	inputs   []*Node
	controls []*Node
	device   DeviceSpec
	attrs    Attrs
}

// ID returns the node's position in graph insertion order.
func (n *Node) ID() int { return n.id }

// Name returns the unique node name.
func (n *Node) Name() string { return n.name }

// Op returns the operation type name (e.g. "MatMul").
func (n *Node) Op() string { return n.op }

// Inputs returns the data-dependency producers of this node.
func (n *Node) Inputs() []*Node { return n.inputs }

// ControlDeps returns the control-dependency predecessors.
func (n *Node) ControlDeps() []*Node { return n.controls }

// Device returns the node's (possibly partial) placement constraint.
func (n *Node) Device() DeviceSpec { return n.device }

// SetDevice overrides the node's placement.
func (n *Node) SetDevice(d DeviceSpec) { n.device = d }

// Attrs returns the node's attribute map (never nil).
func (n *Node) Attrs() Attrs { return n.attrs }

// Attr returns one attribute value, or nil.
func (n *Node) Attr(key string) any { return n.attrs[key] }

// AddControlDep records that n must run after dep in every execution.
func (n *Node) AddControlDep(dep *Node) { n.controls = append(n.controls, dep) }

// Graph is a container of nodes. Not safe for concurrent mutation; build
// fully, then share read-only with any number of sessions.
type Graph struct {
	nodes    []*Node
	byName   map[string]*Node
	deviceSt []DeviceSpec // WithDevice scope stack
	nameSeq  map[string]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]*Node), nameSeq: make(map[string]int)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Nodes returns all nodes in insertion order. Callers must not mutate.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Lookup finds a node by name, or nil.
func (g *Graph) Lookup(name string) *Node { return g.byName[name] }

// uniqueName derives an unused node name from an op type or explicit base.
func (g *Graph) uniqueName(base string) string {
	if _, taken := g.byName[base]; !taken && g.nameSeq[base] == 0 {
		g.nameSeq[base] = 1
		return base
	}
	for {
		g.nameSeq[base]++
		cand := fmt.Sprintf("%s_%d", base, g.nameSeq[base]-1)
		if _, taken := g.byName[cand]; !taken {
			return cand
		}
	}
}

// currentDevice returns the innermost WithDevice scope, or unconstrained.
func (g *Graph) currentDevice() DeviceSpec {
	if len(g.deviceSt) == 0 {
		return UnconstrainedDevice()
	}
	return g.deviceSt[len(g.deviceSt)-1]
}

// WithDevice runs body with the given device string as the default placement
// for every node added inside, composing with any enclosing scope (inner
// constraints win per field). Mirrors tf.device() from Listing 1.
func (g *Graph) WithDevice(device string, body func()) {
	spec := MustParseDevice(device)
	spec = spec.Merge(g.currentDevice())
	g.deviceSt = append(g.deviceSt, spec)
	defer func() { g.deviceSt = g.deviceSt[:len(g.deviceSt)-1] }()
	body()
}

// AddOp appends a node with an auto-generated name.
func (g *Graph) AddOp(op string, attrs Attrs, inputs ...*Node) *Node {
	return g.AddNamedOp(g.uniqueName(op), op, attrs, inputs...)
}

// AddNamedOp appends a node with an explicit unique name.
func (g *Graph) AddNamedOp(name, op string, attrs Attrs, inputs ...*Node) *Node {
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("graph: duplicate node name %q", name))
	}
	if attrs == nil {
		attrs = Attrs{}
	}
	for _, in := range inputs {
		if in == nil {
			panic(fmt.Sprintf("graph: nil input to %q", name))
		}
	}
	n := &Node{
		id:     len(g.nodes),
		name:   name,
		op:     op,
		inputs: inputs,
		device: g.currentDevice(),
		attrs:  attrs,
	}
	g.nodes = append(g.nodes, n)
	g.byName[name] = n
	return n
}

// Const adds a constant node holding the given tensor.
func (g *Graph) Const(t *tensor.Tensor) *Node {
	return g.AddOp("Const", Attrs{"value": t})
}

// Placeholder adds a feed point of the given dtype/shape.
func (g *Graph) Placeholder(name string, dt tensor.DType, shape tensor.Shape) *Node {
	return g.AddNamedOp(name, "Placeholder", Attrs{"dtype": dt, "shape": shape})
}

// TopoSort returns the nodes in a dependency-respecting order (data and
// control edges), or an error naming a cycle participant.
func (g *Graph) TopoSort() ([]*Node, error) {
	indeg := make([]int, len(g.nodes))
	succs := make([][]int, len(g.nodes))
	for _, n := range g.nodes {
		for _, in := range n.inputs {
			succs[in.id] = append(succs[in.id], n.id)
			indeg[n.id]++
		}
		for _, c := range n.controls {
			succs[c.id] = append(succs[c.id], n.id)
			indeg[n.id]++
		}
	}
	// Deterministic order: ready set kept sorted by id.
	var ready []int
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Ints(ready)
	out := make([]*Node, 0, len(g.nodes))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, g.nodes[id])
		for _, s := range succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
		sort.Ints(ready)
	}
	if len(out) != len(g.nodes) {
		for _, n := range g.nodes {
			if indeg[n.id] > 0 {
				return nil, fmt.Errorf("graph: cycle involving node %q", n.name)
			}
		}
	}
	return out, nil
}

// Subgraph returns the set of node ids needed to evaluate the given targets
// (reverse reachability over data and control edges).
func (g *Graph) Subgraph(targets []*Node) map[int]bool {
	needed := make(map[int]bool)
	var visit func(n *Node)
	visit = func(n *Node) {
		if needed[n.id] {
			return
		}
		needed[n.id] = true
		for _, in := range n.inputs {
			visit(in)
		}
		for _, c := range n.controls {
			visit(c)
		}
	}
	for _, t := range targets {
		visit(t)
	}
	return needed
}

// Validate checks structural invariants: unique names, acyclicity, inputs
// belonging to this graph.
func (g *Graph) Validate() error {
	for _, n := range g.nodes {
		for _, in := range n.inputs {
			if g.byName[in.name] != in {
				return fmt.Errorf("graph: node %q has input %q from another graph", n.name, in.name)
			}
		}
	}
	_, err := g.TopoSort()
	return err
}
