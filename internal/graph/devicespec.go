package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// DeviceSpec identifies a device within a distributed cluster, mirroring
// TensorFlow's "/job:worker/task:0/device:GPU:0" strings. Empty fields mean
// "unconstrained" and are filled in by the placer or by merging with a
// scope's default.
type DeviceSpec struct {
	Job         string // "ps", "worker", ... ; "" = local / unconstrained
	Task        int    // task index within the job; -1 = unconstrained
	DeviceType  string // "CPU" or "GPU"; "" = unconstrained
	DeviceIndex int    // -1 = unconstrained
}

// UnconstrainedDevice returns a spec with every field open.
func UnconstrainedDevice() DeviceSpec {
	return DeviceSpec{Task: -1, DeviceIndex: -1}
}

// ParseDevice parses full ("/job:worker/task:1/device:GPU:0") and shorthand
// ("/gpu:0", "/cpu:0", "/device:CPU:0") device strings. An empty string
// parses to the unconstrained spec.
func ParseDevice(s string) (DeviceSpec, error) {
	spec := UnconstrainedDevice()
	if s == "" {
		return spec, nil
	}
	if !strings.HasPrefix(s, "/") {
		return spec, fmt.Errorf("graph: device %q must start with '/'", s)
	}
	for _, part := range strings.Split(strings.TrimPrefix(s, "/"), "/") {
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, ":")
		if !ok {
			return spec, fmt.Errorf("graph: malformed device component %q in %q", part, s)
		}
		switch strings.ToLower(key) {
		case "job":
			spec.Job = val
		case "task":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return spec, fmt.Errorf("graph: bad task index %q in %q", val, s)
			}
			spec.Task = n
		case "replica":
			// Accepted and ignored (single-replica runtime).
		case "device":
			typ, idxStr, ok := strings.Cut(val, ":")
			if !ok {
				return spec, fmt.Errorf("graph: device component needs TYPE:index in %q", s)
			}
			n, err := strconv.Atoi(idxStr)
			if err != nil || n < 0 {
				return spec, fmt.Errorf("graph: bad device index %q in %q", idxStr, s)
			}
			spec.DeviceType = strings.ToUpper(typ)
			spec.DeviceIndex = n
		case "cpu", "gpu":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return spec, fmt.Errorf("graph: bad device index %q in %q", val, s)
			}
			spec.DeviceType = strings.ToUpper(key)
			spec.DeviceIndex = n
		default:
			return spec, fmt.Errorf("graph: unknown device component %q in %q", key, s)
		}
	}
	if spec.DeviceType != "" && spec.DeviceType != "CPU" && spec.DeviceType != "GPU" {
		return spec, fmt.Errorf("graph: unsupported device type %q in %q", spec.DeviceType, s)
	}
	return spec, nil
}

// MustParseDevice is ParseDevice that panics on error, for literals.
func MustParseDevice(s string) DeviceSpec {
	spec, err := ParseDevice(s)
	if err != nil {
		panic(err)
	}
	return spec
}

// String renders the canonical full form, omitting unconstrained fields.
func (d DeviceSpec) String() string {
	var sb strings.Builder
	if d.Job != "" {
		fmt.Fprintf(&sb, "/job:%s", d.Job)
	}
	if d.Task >= 0 {
		fmt.Fprintf(&sb, "/task:%d", d.Task)
	}
	if d.DeviceType != "" {
		idx := d.DeviceIndex
		if idx < 0 {
			idx = 0
		}
		fmt.Fprintf(&sb, "/device:%s:%d", d.DeviceType, idx)
	}
	return sb.String()
}

// Merge fills d's unconstrained fields from other (d's own settings win).
func (d DeviceSpec) Merge(other DeviceSpec) DeviceSpec {
	out := d
	if out.Job == "" {
		out.Job = other.Job
	}
	if out.Task < 0 {
		out.Task = other.Task
	}
	if out.DeviceType == "" {
		out.DeviceType = other.DeviceType
		if out.DeviceIndex < 0 {
			out.DeviceIndex = other.DeviceIndex
		}
	}
	return out
}

// IsLocalTo reports whether the spec addresses the given job/task (specs
// with no job constraint are local to everyone).
func (d DeviceSpec) IsLocalTo(job string, task int) bool {
	if d.Job == "" {
		return true
	}
	if d.Job != job {
		return false
	}
	return d.Task < 0 || d.Task == task
}

// Unconstrained reports whether every field is open.
func (d DeviceSpec) Unconstrained() bool {
	return d.Job == "" && d.Task < 0 && d.DeviceType == "" && d.DeviceIndex < 0
}
