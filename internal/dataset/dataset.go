// Package dataset implements the input-pipeline half of the paper's
// "data-driven" formulation: datasets of tensor tuples that can be built
// from memory or tile files, sharded across workers, transformed, and
// prefetched so data is ready for immediate consumption by the compute
// pipeline (Section II.A of the paper).
package dataset

import (
	"fmt"
	"io"
	"sync"

	"tfhpc/internal/npy"
	"tfhpc/internal/tensor"
)

// Element is one dataset entry: a tuple of tensors.
type Element = []*tensor.Tensor

// Dataset produces independent iterators over a logical sequence.
type Dataset interface {
	Iterator() Iterator
}

// Iterator walks one pass; Next returns io.EOF at the end.
type Iterator interface {
	Next() (Element, error)
}

// --- sources ---

type sliceDataset struct{ elems []Element }

type sliceIterator struct {
	elems []Element
	pos   int
}

// FromElements wraps an in-memory list.
func FromElements(elems ...Element) Dataset {
	return &sliceDataset{elems: elems}
}

func (d *sliceDataset) Iterator() Iterator { return &sliceIterator{elems: d.elems} }

func (it *sliceIterator) Next() (Element, error) {
	if it.pos >= len(it.elems) {
		return nil, io.EOF
	}
	e := it.elems[it.pos]
	it.pos++
	return e, nil
}

// FromFiles lists .npy tile files; each element is (index, tensor) where
// index is the element's position as an int64 scalar — the structure the
// matmul and FFT applications consume. Files load lazily at iteration time.
func FromFiles(paths []string) Dataset {
	return &fileDataset{paths: paths}
}

type fileDataset struct{ paths []string }

type fileIterator struct {
	paths []string
	pos   int
}

func (d *fileDataset) Iterator() Iterator { return &fileIterator{paths: d.paths} }

func (it *fileIterator) Next() (Element, error) {
	if it.pos >= len(it.paths) {
		return nil, io.EOF
	}
	idx := it.pos
	t, err := npy.Load(it.paths[idx])
	it.pos++
	if err != nil {
		return nil, fmt.Errorf("dataset: loading %q: %w", it.paths[idx], err)
	}
	return Element{tensor.ScalarI64(int64(idx)), t}, nil
}

// --- transforms ---

type mapDataset struct {
	src Dataset
	fn  func(Element) (Element, error)
}

type mapIterator struct {
	src Iterator
	fn  func(Element) (Element, error)
}

// Map applies fn lazily to every element.
func Map(src Dataset, fn func(Element) (Element, error)) Dataset {
	return &mapDataset{src: src, fn: fn}
}

func (d *mapDataset) Iterator() Iterator { return &mapIterator{src: d.src.Iterator(), fn: d.fn} }

func (it *mapIterator) Next() (Element, error) {
	e, err := it.src.Next()
	if err != nil {
		return nil, err
	}
	return it.fn(e)
}

type shardDataset struct {
	src   Dataset
	n, id int
}

type shardIterator struct {
	src   Iterator
	n, id int
	pos   int
}

// Shard keeps every n-th element starting at index id — how the workers
// split the shared tile list ("the list is shared by workers and they
// individually load these tiles").
func Shard(src Dataset, n, id int) Dataset {
	if n <= 0 || id < 0 || id >= n {
		panic(fmt.Sprintf("dataset: bad shard %d/%d", id, n))
	}
	return &shardDataset{src: src, n: n, id: id}
}

func (d *shardDataset) Iterator() Iterator {
	return &shardIterator{src: d.src.Iterator(), n: d.n, id: d.id}
}

func (it *shardIterator) Next() (Element, error) {
	for {
		e, err := it.src.Next()
		if err != nil {
			return nil, err
		}
		keep := it.pos%it.n == it.id
		it.pos++
		if keep {
			return e, nil
		}
	}
}

type repeatDataset struct {
	src   Dataset
	count int
}

type repeatIterator struct {
	d     *repeatDataset
	cur   Iterator
	round int
}

// Repeat cycles the source count times (count <= 0 panics; infinite repeat
// is a deadlock hazard in the fixed-size experiments this library targets).
func Repeat(src Dataset, count int) Dataset {
	if count <= 0 {
		panic("dataset: Repeat needs count >= 1")
	}
	return &repeatDataset{src: src, count: count}
}

func (d *repeatDataset) Iterator() Iterator {
	return &repeatIterator{d: d, cur: d.src.Iterator()}
}

func (it *repeatIterator) Next() (Element, error) {
	for {
		e, err := it.cur.Next()
		if err == io.EOF {
			it.round++
			if it.round >= it.d.count {
				return nil, io.EOF
			}
			it.cur = it.d.src.Iterator()
			continue
		}
		return e, err
	}
}

// --- prefetch ---

type prefetchDataset struct {
	src    Dataset
	buffer int
}

type prefetchIterator struct {
	ch   chan prefetched
	once sync.Once
}

type prefetched struct {
	e   Element
	err error
}

// Prefetch decouples production from consumption with a background goroutine
// and a bounded buffer, like tf.data prefetch: I/O overlaps compute.
func Prefetch(src Dataset, buffer int) Dataset {
	if buffer < 1 {
		buffer = 1
	}
	return &prefetchDataset{src: src, buffer: buffer}
}

func (d *prefetchDataset) Iterator() Iterator {
	it := &prefetchIterator{ch: make(chan prefetched, d.buffer)}
	src := d.src.Iterator()
	go func() {
		defer close(it.ch)
		for {
			e, err := src.Next()
			if err == io.EOF {
				return
			}
			it.ch <- prefetched{e: e, err: err}
			if err != nil {
				return
			}
		}
	}()
	return it
}

func (it *prefetchIterator) Next() (Element, error) {
	p, ok := <-it.ch
	if !ok {
		return nil, io.EOF
	}
	return p.e, p.err
}

// Collect drains an iterator into a slice (test/debug helper).
func Collect(it Iterator) ([]Element, error) {
	var out []Element
	for {
		e, err := it.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
