package dataset

import (
	"fmt"
	"path/filepath"
	"testing"

	"tfhpc/internal/npy"
	"tfhpc/internal/tensor"
)

func elemsOf(vals ...int64) []Element {
	out := make([]Element, len(vals))
	for i, v := range vals {
		out[i] = Element{tensor.ScalarI64(v)}
	}
	return out
}

func values(t *testing.T, ds Dataset) []int64 {
	t.Helper()
	es, err := Collect(ds.Iterator())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(es))
	for i, e := range es {
		out[i] = e[0].ScalarInt()
	}
	return out
}

func TestFromElementsOrder(t *testing.T) {
	ds := FromElements(elemsOf(1, 2, 3)...)
	got := values(t, ds)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	// Iterators are independent.
	a, b := ds.Iterator(), ds.Iterator()
	a.Next()
	e, err := b.Next()
	if err != nil || e[0].ScalarInt() != 1 {
		t.Fatal("iterators share state")
	}
}

func TestShardPartitionsExactly(t *testing.T) {
	ds := FromElements(elemsOf(0, 1, 2, 3, 4, 5, 6)...)
	seen := map[int64]int{}
	total := 0
	for id := 0; id < 3; id++ {
		for _, v := range values(t, Shard(ds, 3, id)) {
			seen[v]++
			total++
		}
	}
	if total != 7 {
		t.Fatalf("shards produced %d elements, want 7", total)
	}
	for v, count := range seen {
		if count != 1 {
			t.Fatalf("element %d appeared %d times", v, count)
		}
	}
	// Shard 0 of 3 gets indices 0,3,6.
	got := values(t, Shard(ds, 3, 0))
	if fmt.Sprint(got) != "[0 3 6]" {
		t.Fatalf("shard 0 = %v", got)
	}
}

func TestShardPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Shard(FromElements(), 3, 3)
}

func TestMapTransformsLazily(t *testing.T) {
	calls := 0
	ds := Map(FromElements(elemsOf(1, 2, 3)...), func(e Element) (Element, error) {
		calls++
		return Element{tensor.ScalarI64(e[0].ScalarInt() * 10)}, nil
	})
	if calls != 0 {
		t.Fatal("Map should be lazy")
	}
	got := values(t, ds)
	if got[2] != 30 || calls != 3 {
		t.Fatalf("got %v after %d calls", got, calls)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	ds := Map(FromElements(elemsOf(1)...), func(Element) (Element, error) {
		return nil, fmt.Errorf("boom")
	})
	if _, err := Collect(ds.Iterator()); err == nil {
		t.Fatal("map error lost")
	}
}

func TestRepeatCycles(t *testing.T) {
	ds := Repeat(FromElements(elemsOf(1, 2)...), 3)
	got := values(t, ds)
	if fmt.Sprint(got) != "[1 2 1 2 1 2]" {
		t.Fatalf("repeat = %v", got)
	}
}

func TestPrefetchPreservesOrder(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	ds := Prefetch(FromElements(elemsOf(vals...)...), 8)
	got := values(t, ds)
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("prefetch reordered at %d: %v", i, v)
		}
	}
}

func TestFromFilesLoadsTiles(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("tile_%d.npy", i))
		npy.Save(p, tensor.ScalarF64(float64(i*100)))
		paths = append(paths, p)
	}
	es, err := Collect(FromFiles(paths).Iterator())
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 3 {
		t.Fatalf("%d elements", len(es))
	}
	for i, e := range es {
		if e[0].ScalarInt() != int64(i) {
			t.Fatalf("index %d wrong", i)
		}
		if e[1].ScalarFloat() != float64(i*100) {
			t.Fatalf("payload %d wrong", i)
		}
	}
	// Missing file errors at iteration time.
	bad := FromFiles([]string{filepath.Join(dir, "missing.npy")})
	if _, err := Collect(bad.Iterator()); err == nil {
		t.Fatal("missing file should error")
	}
}

// The composite pipeline the matmul app uses: files -> shard -> prefetch.
func TestPipelineComposition(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 10; i++ {
		p := filepath.Join(dir, fmt.Sprintf("t%d.npy", i))
		npy.Save(p, tensor.ScalarF64(float64(i)))
		paths = append(paths, p)
	}
	ds := Prefetch(Shard(FromFiles(paths), 2, 1), 4)
	es, err := Collect(ds.Iterator())
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 5 {
		t.Fatalf("%d elements", len(es))
	}
	for i, e := range es {
		if e[0].ScalarInt() != int64(2*i+1) {
			t.Fatalf("shard 1 element %d has index %d", i, e[0].ScalarInt())
		}
	}
}
