// Distributed trace spans. A span is one timed interval in one process;
// trace/span ids ride the rpc request frame (fields 4/5, next to the PR 4
// deadline budget in field 3) and the collective stream-edge header (after
// the PR 7 epoch), so one routed predict or one allreduce renders as a
// single cross-process timeline. Export is Chrome trace-event JSON: each
// process dumps its own file (-trace-out on the binaries), the files
// concatenate into one {"traceEvents": [...]} document, and Perfetto draws
// the cross-process edges from flow events ("s"/"f" pairs sharing an id).
//
// Tracing is opt-in (off until Enable or TFHPC_TRACE_OUT); disabled-mode
// span calls are one atomic load returning a nil *Span, and every Span
// method is nil-safe, so instrumented hot paths cost nothing when idle.
package telemetry

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext carries the ids that cross process boundaries.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// Span is one in-flight timed interval. A nil *Span (tracing disabled) is
// valid: every method no-ops.
type Span struct {
	name   string
	sc     SpanContext
	parent uint64
	start  time.Time
	args   [][2]string
}

type traceEvent struct {
	name   string
	ph     byte // 'X' span, 'i' instant, 's'/'f' flow
	ts     time.Time
	dur    time.Duration
	tid    uint32
	flowID uint64
	sc     SpanContext
	parent uint64
	args   [][2]string
}

const maxTraceEvents = 1 << 20

var tracer struct {
	enabled  atomic.Bool
	ids      atomic.Uint64
	mu       sync.Mutex
	events   []traceEvent
	dropped  int64
	procName string
	outPath  string
}

func init() {
	if p := os.Getenv("TFHPC_TRACE_OUT"); p != "" {
		SetTraceOut(p)
	}
}

// Enable turns span recording on. Safe to call more than once.
func Enable() {
	if tracer.enabled.Swap(true) {
		return
	}
	// Seed the id counter so two processes enabled in the same nanosecond
	// still mint disjoint ids: pid in the high bits, wall time below.
	tracer.ids.Store(uint64(os.Getpid())<<40 ^ uint64(time.Now().UnixNano()))
}

// Enabled reports whether spans are being recorded.
func Enabled() bool { return tracer.enabled.Load() }

// SetProcessName labels this process's lane group in the merged trace.
func SetProcessName(name string) {
	tracer.mu.Lock()
	tracer.procName = name
	tracer.mu.Unlock()
}

// SetTraceOut enables tracing and records where DumpConfigured should write.
func SetTraceOut(path string) {
	Enable()
	tracer.mu.Lock()
	tracer.outPath = path
	tracer.mu.Unlock()
}

// TraceOutPath returns the configured dump path ("" when unset).
func TraceOutPath() string {
	tracer.mu.Lock()
	defer tracer.mu.Unlock()
	return tracer.outPath
}

// DumpConfigured writes the trace to the path given to SetTraceOut (or the
// TFHPC_TRACE_OUT environment). It returns the path written, or "" when
// tracing was never configured.
func DumpConfigured() (string, error) {
	path := TraceOutPath()
	if path == "" {
		return "", nil
	}
	return path, WriteTraceFile(path)
}

func newID() uint64 {
	id := tracer.ids.Add(1)
	if id == 0 { // 0 means "no trace" on the wire
		id = tracer.ids.Add(1)
	}
	return id
}

// lane folds a trace id onto a Perfetto thread lane. All spans of one trace
// share a lane inside a process, so nesting renders correctly while
// concurrent traces don't interleave on one track.
func lane(trace uint64) uint32 {
	return uint32(trace%999983) + 1
}

func record(ev traceEvent) {
	tracer.mu.Lock()
	if len(tracer.events) >= maxTraceEvents {
		tracer.dropped++
	} else {
		tracer.events = append(tracer.events, ev)
	}
	tracer.mu.Unlock()
}

// StartRoot begins a new trace in this process. Returns nil when disabled.
func StartRoot(name string) *Span {
	if !tracer.enabled.Load() {
		return nil
	}
	trace := newID()
	return &Span{name: name, sc: SpanContext{Trace: trace, Span: trace}, start: time.Now()}
}

// StartChild begins a span under a (possibly remote) parent. A zero parent
// starts a fresh root. Returns nil when disabled.
func StartChild(parent SpanContext, name string) *Span {
	if !tracer.enabled.Load() {
		return nil
	}
	if !parent.Valid() {
		return StartRoot(name)
	}
	return &Span{name: name, sc: SpanContext{Trace: parent.Trace, Span: newID()}, parent: parent.Span, start: time.Now()}
}

// Child begins a span under s. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return StartChild(s.sc, name)
}

// Arg attaches one key/value annotation. Nil-safe; returns s for chaining.
func (s *Span) Arg(k, v string) *Span {
	if s != nil {
		s.args = append(s.args, [2]string{k, v})
	}
	return s
}

// End records the span. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	record(traceEvent{
		name: s.name, ph: 'X', ts: s.start, dur: time.Since(s.start),
		tid: lane(s.sc.Trace), sc: s.sc, parent: s.parent, args: s.args,
	})
}

// Context returns the span's wire ids (zero when s is nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Parent returns the parent span id (0 for roots or nil spans).
func (s *Span) Parent() uint64 {
	if s == nil {
		return 0
	}
	return s.parent
}

// FlowOut emits the start of a cross-process arrow from inside s. The peer
// calls FlowIn with the same id. Nil-safe.
func (s *Span) FlowOut(id uint64) {
	if s == nil {
		return
	}
	record(traceEvent{name: s.name, ph: 's', ts: time.Now(), tid: lane(s.sc.Trace), flowID: id})
}

// FlowIn terminates a cross-process arrow inside s. Nil-safe.
func (s *Span) FlowIn(id uint64) {
	if s == nil {
		return
	}
	record(traceEvent{name: s.name, ph: 'f', ts: time.Now(), tid: lane(s.sc.Trace), flowID: id})
}

// Instant records an annotated point event (autoscaler decisions, rollout
// state transitions). kvs are alternating key, value pairs. One atomic load
// when disabled.
func Instant(name string, kvs ...string) {
	if !tracer.enabled.Load() {
		return
	}
	var args [][2]string
	for i := 0; i+1 < len(kvs); i += 2 {
		args = append(args, [2]string{kvs[i], kvs[i+1]})
	}
	record(traceEvent{name: name, ph: 'i', ts: time.Now(), tid: 1, args: args})
}

// HashString folds a string onto uint64 (FNV-1a) — for FlowID parts derived
// from collective keys or group names.
func HashString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// FlowID deterministically mixes parts into a flow id (FNV-1a over the
// bytes). Collective ranks derive matching ids on both ends of an edge from
// (group, epoch, tag, from, to) without any extra wire traffic.
func FlowID(parts ...uint64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= (p >> (8 * i)) & 0xff
			h *= prime
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

type spanCtxKey struct{}

// ContextWith returns ctx carrying the span (nil span returns ctx as-is).
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// chromeEvent mirrors the Chrome trace-event JSON schema Perfetto loads.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  uint32            `json:"tid"`
	ID   string            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// MarshalChromeTrace renders everything recorded so far as a Chrome
// trace-event JSON document. Timestamps are absolute wall-clock
// microseconds, so documents from different processes merge on one axis.
func MarshalChromeTrace() ([]byte, error) {
	tracer.mu.Lock()
	events := append([]traceEvent(nil), tracer.events...)
	procName := tracer.procName
	tracer.mu.Unlock()

	pid := os.Getpid()
	out := make([]chromeEvent, 0, len(events)+1)
	if procName == "" {
		procName = "tfhpc"
	}
	out = append(out, chromeEvent{
		Name: "process_name", Cat: "__metadata", Ph: "M", PID: pid,
		Args: map[string]string{"name": procName},
	})
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.name, Cat: "tfhpc", Ph: string(ev.ph),
			Ts:  float64(ev.ts.UnixNano()) / 1e3,
			PID: pid, TID: ev.tid,
		}
		switch ev.ph {
		case 'X':
			ce.Dur = float64(ev.dur.Nanoseconds()) / 1e3
			if ce.Dur <= 0 {
				ce.Dur = 0.001
			}
			ce.Args = map[string]string{
				"trace": hexID(ev.sc.Trace),
				"span":  hexID(ev.sc.Span),
			}
			if ev.parent != 0 {
				ce.Args["parent"] = hexID(ev.parent)
			}
		case 's':
			ce.ID = hexID(ev.flowID)
		case 'f':
			ce.ID = hexID(ev.flowID)
			ce.BP = "e" // bind to the enclosing slice
		case 'i':
			ce.S = "t"
		}
		for _, kv := range ev.args {
			if ce.Args == nil {
				ce.Args = make(map[string]string, len(ev.args))
			}
			ce.Args[kv[0]] = kv[1]
		}
		out = append(out, ce)
	}
	return json.Marshal(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out})
}

// WriteTraceFile dumps the Chrome trace JSON to path.
func WriteTraceFile(path string) error {
	b, err := MarshalChromeTrace()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func hexID(v uint64) string {
	const digits = "0123456789abcdef"
	var b [18]byte
	b[0], b[1] = '0', 'x'
	for i := 0; i < 16; i++ {
		b[2+i] = digits[(v>>(60-4*i))&0xf]
	}
	return string(b[:])
}
