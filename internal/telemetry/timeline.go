// Timeline unification: internal/timeline's per-op events (the paper's
// Fig. 3 tool) become child spans of a distributed-trace parent, so a
// session run's op schedule renders inside the request or training-step
// span that caused it instead of in a disconnected single-process file.
package telemetry

import (
	"time"

	"tfhpc/internal/timeline"
)

// BindTimeline installs an Observer on tr that re-emits every op event as a
// child span of parent. Trace-relative timestamps are rebased onto the
// trace's wall-clock anchor, so virtual-clock (simulation) traces still
// render — offset from the anchor rather than at their true wall time.
// A nil parent (tracing disabled) leaves tr untouched.
func BindTimeline(tr *timeline.Trace, parent *Span) {
	if parent == nil || tr == nil {
		return
	}
	anchor := tr.Start()
	psc := parent.Context()
	tr.Observer = func(ev timeline.Event) {
		if !tracer.enabled.Load() {
			return
		}
		start := anchor.Add(time.Duration(ev.Start * float64(time.Second)))
		dur := time.Duration((ev.End - ev.Start) * float64(time.Second))
		record(traceEvent{
			name: ev.Name, ph: 'X', ts: start, dur: dur,
			tid: lane(psc.Trace),
			sc:  SpanContext{Trace: psc.Trace, Span: newID()}, parent: psc.Span,
			args: [][2]string{{"op", ev.Op}, {"device", ev.Device}},
		})
	}
}
