package telemetry

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryHandlesAndExposition(t *testing.T) {
	c := NewCounter("tfhpc_unittest_events_total", "Unit-test counter.")
	c2 := NewCounter("tfhpc_unittest_events_total", "Unit-test counter.")
	if c != c2 {
		t.Fatalf("duplicate registration returned a different handle")
	}
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}

	g := NewGauge("tfhpc_unittest_depth", "Unit-test gauge.")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := NewHistogram("tfhpc_unittest_latency_seconds", "Unit-test histogram.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 5.555 {
		t.Fatalf("histogram sum = %g, want 5.555", h.Sum())
	}

	lc := NewCounter("tfhpc_unittest_labeled_total", "Labeled unit-test counter.", "algo", "ring")
	ld := NewCounter("tfhpc_unittest_labeled_total", "Labeled unit-test counter.", "algo", "doubling")
	if lc == ld {
		t.Fatalf("distinct label sets shared a handle")
	}
	lc.Inc()

	var buf bytes.Buffer
	if err := WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP tfhpc_unittest_events_total Unit-test counter.",
		"# TYPE tfhpc_unittest_events_total counter",
		"tfhpc_unittest_events_total 3",
		"# TYPE tfhpc_unittest_depth gauge",
		"tfhpc_unittest_depth 5",
		"# TYPE tfhpc_unittest_latency_seconds histogram",
		`tfhpc_unittest_latency_seconds_bucket{le="0.01"} 1`,
		`tfhpc_unittest_latency_seconds_bucket{le="0.1"} 2`,
		`tfhpc_unittest_latency_seconds_bucket{le="1"} 3`,
		`tfhpc_unittest_latency_seconds_bucket{le="+Inf"} 4`,
		"tfhpc_unittest_latency_seconds_sum 5.555",
		"tfhpc_unittest_latency_seconds_count 4",
		`tfhpc_unittest_labeled_total{algo="ring"} 1`,
		`tfhpc_unittest_labeled_total{algo="doubling"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// One HELP header per family, whatever the label-set count.
	if n := strings.Count(text, "# HELP tfhpc_unittest_labeled_total"); n != 1 {
		t.Errorf("labeled family has %d HELP lines, want 1", n)
	}
}

func TestRegistrationValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: registration did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad prefix", func() { NewCounter("batcher_rows_total", "help") })
	mustPanic("digits", func() { NewCounter("tfhpc_p99_seconds", "help") })
	mustPanic("uppercase", func() { NewCounter("tfhpc_Rows_total", "help") })
	mustPanic("no help", func() { NewCounter("tfhpc_unittest_nohelp_total", "") })
	mustPanic("odd labels", func() { NewCounter("tfhpc_unittest_odd_total", "help", "k") })
	mustPanic("kind clash", func() {
		NewGauge("tfhpc_unittest_kindclash_total", "help")
		NewCounter("tfhpc_unittest_kindclash_total", "help")
	})
	mustPanic("unsorted bounds", func() {
		NewHistogram("tfhpc_unittest_bounds_seconds", "help", []float64{1, 0.5})
	})
}

func TestMetricUpdatesAllocationFree(t *testing.T) {
	c := NewCounter("tfhpc_unittest_hot_total", "Alloc-gate counter.")
	g := NewGauge("tfhpc_unittest_hot_depth", "Alloc-gate gauge.")
	h := NewHistogram("tfhpc_unittest_hot_seconds", "Alloc-gate histogram.", DurationBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(4)
		g.Add(-1)
		h.Observe(0.0123)
	}); n != 0 {
		t.Fatalf("metric updates allocated %v per run, want 0", n)
	}
}

func TestHandler(t *testing.T) {
	NewCounter("tfhpc_unittest_handler_total", "Handler test counter.").Inc()
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricz", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metricz = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "tfhpc_unittest_handler_total 1") {
		t.Fatalf("handler output missing counter:\n%s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metricz", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metricz = %d, want 405", rec.Code)
	}
}

func TestMetricsWalk(t *testing.T) {
	NewCounter("tfhpc_unittest_walk_total", "Walk test counter.")
	found := false
	for _, m := range Metrics() {
		if m.Name == "tfhpc_unittest_walk_total" {
			found = true
			if m.Help == "" || m.Kind != KindCounter {
				t.Fatalf("walk row corrupted: %+v", m)
			}
		}
	}
	if !found {
		t.Fatal("registered metric missing from Metrics()")
	}
}
