package telemetry

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"tfhpc/internal/timeline"
)

// resetTracer empties the recorded event buffer between tests. Tracing
// stays enabled once any test enables it — the tracer is process-global —
// so tests assert on deltas over a drained buffer.
func resetTracer() {
	tracer.mu.Lock()
	tracer.events = nil
	tracer.dropped = 0
	tracer.mu.Unlock()
}

func TestNilSpanSafety(t *testing.T) {
	var s *Span
	s.End()
	s.Arg("k", "v")
	s.FlowOut(1)
	s.FlowIn(1)
	if s.Child("x") != nil {
		t.Fatal("nil span spawned a child")
	}
	if s.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	if ContextWith(context.Background(), nil) != context.Background() {
		t.Fatal("nil span changed the context")
	}
}

func TestDisabledFastPath(t *testing.T) {
	if Enabled() {
		t.Skip("tracer already enabled (TFHPC_TRACE_OUT or an earlier test)")
	}
	if s := StartRoot("x"); s != nil {
		t.Fatal("disabled StartRoot returned a span")
	}
	if n := testing.AllocsPerRun(1000, func() {
		s := StartRoot("hot")
		s.Child("child").End()
		s.End()
		Instant("i")
	}); n != 0 {
		t.Fatalf("disabled tracing allocated %v per run, want 0", n)
	}
}

func TestSpanHierarchyAndChrome(t *testing.T) {
	Enable()
	resetTracer()

	root := StartRoot("request")
	if !root.Context().Valid() {
		t.Fatal("root has no context")
	}
	child := root.Child("batch").Arg("size", "4")
	grand := child.Child("session_run")
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	root.FlowOut(42)
	root.End()
	Instant("decision", "dir", "up")

	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child switched trace id")
	}
	if child.Context().Span == root.Context().Span {
		t.Fatal("child reused parent span id")
	}

	b, err := MarshalChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}
	var phases = map[string]int{}
	var batch map[string]any
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
		if ev["name"] == "batch" {
			batch = ev
		}
	}
	if phases["X"] != 3 || phases["s"] != 1 || phases["i"] != 1 || phases["M"] != 1 {
		t.Fatalf("phase counts %v, want 3 X / 1 s / 1 i / 1 M", phases)
	}
	args := batch["args"].(map[string]any)
	if args["parent"] != hexID(root.Context().Span) {
		t.Fatalf("batch parent arg %v, want %s", args["parent"], hexID(root.Context().Span))
	}
	if args["trace"] != hexID(root.Context().Trace) {
		t.Fatalf("batch trace arg %v", args["trace"])
	}
	if args["size"] != "4" {
		t.Fatalf("batch lost its Arg: %v", args)
	}
}

func TestRemoteParentLinksAcrossProcesses(t *testing.T) {
	Enable()
	resetTracer()

	// Client side: span + wire ids out.
	cs := StartRoot("rpc_call")
	sc := cs.Context()
	cs.FlowOut(sc.Span)
	cs.End()

	// "Server" side: rebuild the parent from wire ids (as rpc's serveConn
	// does) and terminate the flow.
	ss := StartChild(SpanContext{Trace: sc.Trace, Span: sc.Span}, "rpc_serve")
	ss.FlowIn(sc.Span)
	ss.End()

	if ss.Context().Trace != sc.Trace {
		t.Fatal("server span not in the caller's trace")
	}
	if ss.parent != sc.Span {
		t.Fatal("server span not parented to the caller's span")
	}
}

func TestContextPropagation(t *testing.T) {
	Enable()
	s := StartRoot("ctxspan")
	defer s.End()
	ctx := ContextWith(context.Background(), s)
	if SpanFromContext(ctx) != s {
		t.Fatal("span lost in context")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context produced a span")
	}
}

func TestFlowIDDeterministicNonzero(t *testing.T) {
	a := FlowID(1, 2, 3)
	if a != FlowID(1, 2, 3) {
		t.Fatal("FlowID not deterministic")
	}
	if a == FlowID(3, 2, 1) {
		t.Fatal("FlowID ignores order")
	}
	if FlowID(0) == 0 || FlowID() == 0 {
		t.Fatal("FlowID minted the reserved zero id")
	}
}

func TestBindTimeline(t *testing.T) {
	Enable()
	resetTracer()

	tr := timeline.New()
	parent := StartRoot("step")
	BindTimeline(tr, parent)
	tr.AddSpan("matmul", "MatMul", "/device:CPU:0", 0.001, 0.002)
	parent.End()

	b, err := MarshalChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["name"] != "matmul" {
			continue
		}
		found = true
		args := ev["args"].(map[string]any)
		if args["parent"] != hexID(parent.Context().Span) {
			t.Fatalf("op span not a child of the step span: %v", args)
		}
		if args["op"] != "MatMul" || args["device"] != "/device:CPU:0" {
			t.Fatalf("op annotations lost: %v", args)
		}
	}
	if !found {
		t.Fatal("timeline op never became a span")
	}

	// Nil parent must leave the trace untouched.
	tr2 := timeline.New()
	BindTimeline(tr2, nil)
	if tr2.Observer != nil {
		t.Fatal("BindTimeline installed an observer for a nil parent")
	}
}
