// Package telemetry is the unified observability tier: a zero-alloc metrics
// registry with Prometheus text exposition (GET /metricz on the server
// binaries) and wire-propagated trace spans that render as one cross-process
// Perfetto timeline (trace.go).
//
// Metrics are resolved to handles at registration time — typically a
// package-level var in the instrumented package:
//
//	var rows = telemetry.NewCounter("tfhpc_batcher_rows_total",
//	    "Rows admitted through the micro-batcher.")
//
// After that the hot path is one atomic op: no map lookup, no interface
// dispatch, no allocation. The AllocsPerRun==0 gates on the chunk-relay and
// streaming-predict paths hold with every counter in this package enabled,
// and metrics_test.go pins Counter/Gauge/Histogram updates at zero
// allocations themselves.
//
// Naming contract (enforced at registration, asserted again by the
// telemetry-lint test): every metric matches
// ^tfhpc_[a-z_]+(_total|_bytes|_seconds)?$ and carries non-empty help text.
// No digits — percentiles are derived from histograms at query time, never
// baked into names.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MetricNamePattern is the naming contract every registered metric must
// match. The lint test re-asserts it over the live registry so a rename that
// slips past registration-time validation still fails CI.
const MetricNamePattern = `^tfhpc_[a-z_]+(_total|_bytes|_seconds)?$`

var nameRE = regexp.MustCompile(MetricNamePattern)

// MetricKind discriminates registry entries for exposition and the lint walk.
type MetricKind int

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one static key=value pair fixed at registration time. Dynamic
// label values are deliberately unsupported: they would force a map lookup
// (and an allocation) on the hot path, which is exactly what handles exist
// to avoid. Register one handle per label value instead.
type Label struct{ Key, Value string }

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative deltas corrupt monotonicity and are
// the caller's bug — Add does not check on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Bounds are set at registration
// and never change; Observe is a linear scan over a handful of float
// compares plus two atomic ops — no allocation.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the common latency
// idiom.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sample sum.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets spans 10µs..2.5s — wide enough for a shm chunk relay and a
// cold serving request on the same scale.
var DurationBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5,
}

// SizeBuckets spans 256 B..16 MiB in powers of four — the payload range the
// collective benches sweep.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

type entry struct {
	name   string
	help   string
	kind   MetricKind
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

var reg struct {
	sync.Mutex
	byKey map[string]*entry
	order []*entry
}

func regKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func parseLabels(name string, kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %q: odd label list %q", name, kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if kv[i] == "" || kv[i+1] == "" {
			panic(fmt.Sprintf("telemetry: metric %q: empty label key or value", name))
		}
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	return labels
}

// register validates and installs (or fetches) one entry. Same name+labels
// returns the existing handle — registration is idempotent so two packages
// (or a test re-import) can share a metric without coordination.
func register(name, help string, kind MetricKind, labels []Label) *entry {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: metric name %q violates %s", name, MetricNamePattern))
	}
	if help == "" {
		panic(fmt.Sprintf("telemetry: metric %q registered without help text", name))
	}
	reg.Lock()
	defer reg.Unlock()
	if reg.byKey == nil {
		reg.byKey = make(map[string]*entry)
	}
	key := regKey(name, labels)
	if e, ok := reg.byKey[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", name, kind, e.kind))
		}
		return e
	}
	// One name, one kind and one help string across all label sets.
	for _, e := range reg.order {
		if e.name == name && (e.kind != kind || e.help != help) {
			panic(fmt.Sprintf("telemetry: metric %q registered twice with conflicting kind or help", name))
		}
	}
	e := &entry{name: name, help: help, kind: kind, labels: labels}
	reg.byKey[key] = e
	reg.order = append(reg.order, e)
	return e
}

// NewCounter registers (or fetches) a counter. labels are alternating
// key, value pairs fixed for the handle's lifetime.
func NewCounter(name, help string, labels ...string) *Counter {
	e := register(name, help, KindCounter, parseLabels(name, labels))
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// NewGauge registers (or fetches) a gauge.
func NewGauge(name, help string, labels ...string) *Gauge {
	e := register(name, help, KindGauge, parseLabels(name, labels))
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// NewHistogram registers (or fetches) a fixed-bucket histogram. bounds must
// be ascending upper bounds; the +Inf bucket is implicit.
func NewHistogram(name, help string, bounds []float64, labels ...string) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: metric %q: bounds not ascending", name))
		}
	}
	e := register(name, help, KindHistogram, parseLabels(name, labels))
	if e.h == nil {
		e.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return e.h
}

// MetricInfo is one registry row, as the lint test and exposition see it.
type MetricInfo struct {
	Name   string
	Help   string
	Kind   MetricKind
	Labels []Label
}

// Metrics snapshots the registry (sorted by name, then label values) — the
// surface the telemetry-lint test walks.
func Metrics() []MetricInfo {
	reg.Lock()
	defer reg.Unlock()
	out := make([]MetricInfo, 0, len(reg.order))
	for _, e := range reg.order {
		out = append(out, MetricInfo{Name: e.name, Help: e.help, Kind: e.kind, Labels: e.labels})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return regKey("", out[i].Labels) < regKey("", out[j].Labels)
	})
	return out
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func appendLabels(b []byte, labels []Label, extra ...Label) []byte {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) == 0 {
		return b
	}
	b = append(b, '{')
	for i, l := range all {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Key...)
		b = append(b, '=', '"')
		b = append(b, labelEscaper.Replace(l.Value)...)
		b = append(b, '"')
	}
	return append(b, '}')
}

func appendFloat(b []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// WriteTo renders the registry in Prometheus text exposition format, sorted
// by metric name with one HELP/TYPE header per family.
func WriteTo(w io.Writer) error {
	reg.Lock()
	entries := append([]*entry(nil), reg.order...)
	reg.Unlock()
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return regKey("", entries[i].labels) < regKey("", entries[j].labels)
	})
	var b []byte
	last := ""
	for _, e := range entries {
		if e.name != last {
			b = append(b, "# HELP "...)
			b = append(b, e.name...)
			b = append(b, ' ')
			b = append(b, e.help...)
			b = append(b, "\n# TYPE "...)
			b = append(b, e.name...)
			b = append(b, ' ')
			b = append(b, e.kind.String()...)
			b = append(b, '\n')
			last = e.name
		}
		switch e.kind {
		case KindCounter:
			b = append(b, e.name...)
			b = appendLabels(b, e.labels)
			b = append(b, ' ')
			b = strconv.AppendInt(b, e.c.Value(), 10)
			b = append(b, '\n')
		case KindGauge:
			b = append(b, e.name...)
			b = appendLabels(b, e.labels)
			b = append(b, ' ')
			b = strconv.AppendInt(b, e.g.Value(), 10)
			b = append(b, '\n')
		case KindHistogram:
			var cum int64
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				le := "+Inf"
				if i < len(e.h.bounds) {
					le = string(appendFloat(nil, e.h.bounds[i]))
				}
				b = append(b, e.name...)
				b = append(b, "_bucket"...)
				b = appendLabels(b, e.labels, Label{Key: "le", Value: le})
				b = append(b, ' ')
				b = strconv.AppendInt(b, cum, 10)
				b = append(b, '\n')
			}
			b = append(b, e.name...)
			b = append(b, "_sum"...)
			b = appendLabels(b, e.labels)
			b = append(b, ' ')
			b = appendFloat(b, e.h.Sum())
			b = append(b, '\n')
			b = append(b, e.name...)
			b = append(b, "_count"...)
			b = appendLabels(b, e.labels)
			b = append(b, ' ')
			b = strconv.AppendInt(b, e.h.Count(), 10)
			b = append(b, '\n')
		}
	}
	_, err := w.Write(b)
	return err
}

// Handler serves the registry as Prometheus text — mount it at /metricz.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteTo(w)
	})
}
