// Package lint is the telemetry-lint CI gate: it blank-imports every
// instrumented tier so each package's metric handles register, then walks the
// live registry and re-asserts the naming contract. Registration-time
// validation panics on a bad name, but only in processes that reach that
// code path — this test makes the whole curated set load in one process and
// face the regexp, so a rename or help-text regression fails `go test`.
package lint

import (
	"regexp"
	"strings"
	"testing"

	"tfhpc/internal/telemetry"

	_ "tfhpc/internal/collective"
	_ "tfhpc/internal/pprofsrv"
	_ "tfhpc/internal/rpc"
	_ "tfhpc/internal/serving"
	_ "tfhpc/internal/serving/controlplane"
)

func TestMetricNamesAndHelp(t *testing.T) {
	nameRE := regexp.MustCompile(telemetry.MetricNamePattern)
	ms := telemetry.Metrics()
	if len(ms) == 0 {
		t.Fatal("registry empty — instrumented packages did not register")
	}
	kinds := map[string]telemetry.MetricKind{}
	helps := map[string]string{}
	for _, m := range ms {
		if !nameRE.MatchString(m.Name) {
			t.Errorf("metric %q violates %s", m.Name, telemetry.MetricNamePattern)
		}
		if strings.TrimSpace(m.Help) == "" {
			t.Errorf("metric %q has no help text", m.Name)
		}
		if k, ok := kinds[m.Name]; ok && k != m.Kind {
			t.Errorf("metric %q registered as both %v and %v", m.Name, k, m.Kind)
		}
		kinds[m.Name] = m.Kind
		if h, ok := helps[m.Name]; ok && h != m.Help {
			t.Errorf("metric %q has two help strings: %q vs %q", m.Name, h, m.Help)
		}
		helps[m.Name] = m.Help
		for _, l := range m.Labels {
			if l.Key == "" || l.Value == "" {
				t.Errorf("metric %q has empty label pair %q=%q", m.Name, l.Key, l.Value)
			}
		}
	}
}

// TestCuratedSetPresent pins the cross-tier metric catalogue: if an
// instrumentation site is deleted or renamed, the curated name disappears
// from the registry and this list catches it.
func TestCuratedSetPresent(t *testing.T) {
	want := []string{
		// batcher
		"tfhpc_batcher_rows_total",
		"tfhpc_batcher_batches_total",
		"tfhpc_batcher_rejected_total",
		"tfhpc_batcher_expired_total",
		"tfhpc_batcher_queue_depth",
		"tfhpc_batcher_queue_wait_seconds",
		"tfhpc_batcher_batch_rows",
		// router
		"tfhpc_router_routed_total",
		"tfhpc_router_retries_total",
		"tfhpc_router_failovers_total",
		"tfhpc_router_outstanding",
		"tfhpc_router_replicas",
		// collective + fusion
		"tfhpc_collective_allreduce_total",
		"tfhpc_collective_allreduce_bytes",
		"tfhpc_collective_allreduce_seconds",
		"tfhpc_fusion_flush_triggers_total",
		"tfhpc_fusion_pending_bytes",
		"tfhpc_fusion_flush_bytes",
		// rpc transport
		"tfhpc_rpc_calls_total",
		"tfhpc_rpc_call_errors_total",
		"tfhpc_rpc_served_total",
		"tfhpc_stream_credit_stalls_total",
		"tfhpc_stream_credit_stall_seconds",
		// control plane
		"tfhpc_autoscaler_scale_ups_total",
		"tfhpc_autoscaler_scale_downs_total",
		"tfhpc_autoscaler_flaps_total",
		"tfhpc_autoscaler_desired_replicas",
		"tfhpc_autoscaler_actual_replicas",
		"tfhpc_monitor_requests_total",
		"tfhpc_monitor_errors_total",
		"tfhpc_monitor_latency_seconds",
		"tfhpc_rollout_transitions_total",
	}
	have := map[string]bool{}
	for _, m := range telemetry.Metrics() {
		have[m.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("curated metric %q not registered", name)
		}
	}
}
