// Package queue implements the FIFO queue of the TensorFlow Queue API: a
// bounded buffer of tensor tuples with blocking enqueue/dequeue and close
// semantics. Queues are the paper's dataflow mechanism for reductions
// (Fig. 5) and for streaming result tiles from workers to reducers (Fig. 4).
package queue

import (
	"errors"
	"fmt"
	"sync"

	"tfhpc/internal/tensor"
)

// ErrClosed is returned by Enqueue after Close, and by Dequeue once the
// queue is closed and drained.
var ErrClosed = errors.New("queue: closed")

// Item is one queue element: a tuple of tensors (e.g. a target index plus a
// result tile).
type Item = []*tensor.Tensor

// FIFO is a threadsafe bounded queue of Items.
type FIFO struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	capacity int // 0 = unbounded
	items    []Item
	closed   bool

	enqueued int64
	dequeued int64
}

// New creates a FIFO with the given capacity; 0 means unbounded.
func New(capacity int) *FIFO {
	if capacity < 0 {
		panic(fmt.Sprintf("queue: negative capacity %d", capacity))
	}
	q := &FIFO{capacity: capacity}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Capacity returns the configured bound (0 = unbounded).
func (q *FIFO) Capacity() int { return q.capacity }

// Size returns the current number of buffered items.
func (q *FIFO) Size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Stats returns the lifetime enqueue/dequeue counts.
func (q *FIFO) Stats() (enqueued, dequeued int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.enqueued, q.dequeued
}

// Enqueue appends item, blocking while the queue is full. Returns ErrClosed
// if the queue is (or becomes) closed.
func (q *FIFO) Enqueue(item Item) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.capacity > 0 && len(q.items) >= q.capacity && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, item)
	q.enqueued++
	q.notEmpty.Signal()
	return nil
}

// Dequeue removes and returns the oldest item, blocking while empty.
// Returns ErrClosed once the queue is closed and drained.
func (q *FIFO) Dequeue() (Item, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.items) == 0 {
		return nil, ErrClosed
	}
	item := q.items[0]
	q.items = q.items[1:]
	q.dequeued++
	q.notFull.Signal()
	return item, nil
}

// TryDequeue removes the oldest item without blocking; ok is false when the
// queue is empty.
func (q *FIFO) TryDequeue() (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil, false
	}
	item := q.items[0]
	q.items = q.items[1:]
	q.dequeued++
	q.notFull.Signal()
	return item, true
}

// Close marks the queue closed and wakes all waiters. Buffered items remain
// dequeueable.
func (q *FIFO) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
	return nil
}

// Closed reports whether Close was called.
func (q *FIFO) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Registry is a threadsafe name->queue map, one per task, created on first
// use with the capacity requested by the first creator.
type Registry struct {
	mu     sync.Mutex
	queues map[string]*FIFO
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{queues: make(map[string]*FIFO)}
}

// Get returns the named queue, creating it with the given capacity if absent.
func (r *Registry) Get(name string, capacity int) *FIFO {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[name]
	if !ok {
		q = New(capacity)
		r.queues[name] = q
	}
	return q
}

// Names returns all registered queue names (unsorted).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.queues))
	for n := range r.queues {
		out = append(out, n)
	}
	return out
}
