package queue

import (
	"sync"
	"testing"
	"time"

	"tfhpc/internal/tensor"
)

func item(v int64) Item { return Item{tensor.ScalarI64(v)} }

func TestFIFOOrder(t *testing.T) {
	q := New(0)
	for i := int64(0); i < 10; i++ {
		if err := q.Enqueue(item(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 10; i++ {
		it, err := q.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if it[0].ScalarInt() != i {
			t.Fatalf("out of order: got %d want %d", it[0].ScalarInt(), i)
		}
	}
}

func TestCapacityBlocksEnqueue(t *testing.T) {
	q := New(2)
	q.Enqueue(item(1))
	q.Enqueue(item(2))
	unblocked := make(chan struct{})
	go func() {
		q.Enqueue(item(3)) // must block until a dequeue
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("enqueue should have blocked at capacity")
	case <-time.After(30 * time.Millisecond):
	}
	if _, err := q.Dequeue(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unblocked:
	case <-time.After(time.Second):
		t.Fatal("enqueue never unblocked")
	}
}

func TestDequeueBlocksUntilEnqueue(t *testing.T) {
	q := New(0)
	got := make(chan int64, 1)
	go func() {
		it, err := q.Dequeue()
		if err != nil {
			t.Error(err)
			return
		}
		got <- it[0].ScalarInt()
	}()
	time.Sleep(10 * time.Millisecond)
	q.Enqueue(item(42))
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("dequeue never unblocked")
	}
}

func TestCloseSemantics(t *testing.T) {
	q := New(0)
	q.Enqueue(item(1))
	q.Close()
	if err := q.Enqueue(item(2)); err != ErrClosed {
		t.Fatalf("enqueue after close = %v", err)
	}
	// Buffered items drain.
	if it, err := q.Dequeue(); err != nil || it[0].ScalarInt() != 1 {
		t.Fatalf("drain failed: %v", err)
	}
	if _, err := q.Dequeue(); err != ErrClosed {
		t.Fatalf("dequeue after drain = %v", err)
	}
	if !q.Closed() {
		t.Fatal("Closed() false")
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	q := New(1)
	q.Enqueue(item(1))
	errs := make(chan error, 2)
	go func() { errs <- q.Enqueue(item(2)) }() // blocked on full
	q2 := New(0)
	go func() { _, err := q2.Dequeue(); errs <- err }() // blocked on empty
	time.Sleep(10 * time.Millisecond)
	q.Close()
	q2.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != ErrClosed {
				t.Fatalf("want ErrClosed, got %v", err)
			}
		case <-time.After(time.Second):
			t.Fatal("waiter never unblocked by Close")
		}
	}
}

func TestTryDequeue(t *testing.T) {
	q := New(0)
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue on empty should fail")
	}
	q.Enqueue(item(5))
	it, ok := q.TryDequeue()
	if !ok || it[0].ScalarInt() != 5 {
		t.Fatal("TryDequeue failed")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New(8)
	const producers, perProducer = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < perProducer; i++ {
				q.Enqueue(item(base*1000 + i))
			}
		}(int64(p))
	}
	var mu sync.Mutex
	seen := map[int64]bool{}
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				it, err := q.Dequeue()
				if err == ErrClosed {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				v := it[0].ScalarInt()
				if seen[v] {
					t.Errorf("duplicate %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("saw %d items, want %d", len(seen), producers*perProducer)
	}
	enq, deq := q.Stats()
	if enq != producers*perProducer || deq != producers*perProducer {
		t.Fatalf("stats: %d/%d", enq, deq)
	}
}

func TestRegistrySharing(t *testing.T) {
	r := NewRegistry()
	a := r.Get("q", 4)
	b := r.Get("q", 99) // capacity from first creation wins
	if a != b {
		t.Fatal("registry should return the same queue")
	}
	if a.Capacity() != 4 {
		t.Fatalf("capacity %d", a.Capacity())
	}
	if len(r.Names()) != 1 {
		t.Fatal("names wrong")
	}
}

// Per-producer FIFO: items from one producer stay ordered even with
// concurrent consumers pulling from a shared queue (the matmul reducer
// relies on accumulation being order-independent, but the queue itself must
// not reorder a single producer's stream).
func TestPerProducerOrderPreserved(t *testing.T) {
	q := New(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := int64(-1)
		for {
			it, err := q.Dequeue()
			if err == ErrClosed {
				return
			}
			v := it[0].ScalarInt()
			if v <= last {
				t.Errorf("reordered: %d after %d", v, last)
				return
			}
			last = v
		}
	}()
	for i := int64(0); i < 200; i++ {
		q.Enqueue(item(i))
	}
	q.Close()
	<-done
}
