// Package vars implements mutable variables — the tf.Variable analogue —
// and the store that hosts them on a task (the parameter-server role).
// Variables keep state across Session.Run calls, which is how the CG solver
// carries vectors between iterations without re-feeding them (avoiding the
// 2 GiB unrolled-graph problem the paper describes).
package vars

import (
	"fmt"
	"sort"
	"sync"

	"tfhpc/internal/tensor"
)

// Variable is one named mutable tensor with its own lock.
type Variable struct {
	name string
	mu   sync.Mutex
	val  *tensor.Tensor
}

// Name returns the variable's name.
func (v *Variable) Name() string { return v.name }

// Initialized reports whether the variable holds a value.
func (v *Variable) Initialized() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.val != nil
}

// Read returns the current value (shared, callers must not mutate), or an
// error if the variable is uninitialized.
func (v *Variable) Read() (*tensor.Tensor, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.val == nil {
		return nil, fmt.Errorf("vars: %q used before initialization", v.name)
	}
	return v.val, nil
}

// Assign replaces the value. The first assignment fixes dtype and shape;
// later assignments must match them (as TF enforces).
func (v *Variable) Assign(t *tensor.Tensor) error {
	if t == nil {
		return fmt.Errorf("vars: assigning nil to %q", v.name)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.val != nil {
		if v.val.DType() != t.DType() {
			return fmt.Errorf("vars: %q dtype change %v -> %v", v.name, v.val.DType(), t.DType())
		}
		if !v.val.Shape().Equal(t.Shape()) {
			return fmt.Errorf("vars: %q shape change %v -> %v", v.name, v.val.Shape(), t.Shape())
		}
	}
	v.val = t.Clone()
	return nil
}

// AssignAdd accumulates t into the value in place.
func (v *Variable) AssignAdd(t *tensor.Tensor) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.val == nil {
		return fmt.Errorf("vars: %q used before initialization", v.name)
	}
	if v.val.DType() != t.DType() || !v.val.Shape().Equal(t.Shape()) {
		return fmt.Errorf("vars: %q AssignAdd mismatch: have %v%v, got %v%v",
			v.name, v.val.DType(), v.val.Shape(), t.DType(), t.Shape())
	}
	switch v.val.DType() {
	case tensor.Float32:
		a, b := v.val.F32(), t.F32()
		for i := range a {
			a[i] += b[i]
		}
	case tensor.Float64:
		a, b := v.val.F64(), t.F64()
		for i := range a {
			a[i] += b[i]
		}
	case tensor.Complex128:
		a, b := v.val.C128(), t.C128()
		for i := range a {
			a[i] += b[i]
		}
	case tensor.Int64:
		a, b := v.val.I64(), t.I64()
		for i := range a {
			a[i] += b[i]
		}
	default:
		return fmt.Errorf("vars: %q AssignAdd unsupported dtype %v", v.name, v.val.DType())
	}
	return nil
}

// Store is a threadsafe collection of variables, one per task.
type Store struct {
	mu   sync.Mutex
	vars map[string]*Variable
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{vars: make(map[string]*Variable)}
}

// Get returns the named variable, creating an uninitialized one on first
// use (matching TF's deferred variable creation).
func (s *Store) Get(name string) *Variable {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vars[name]
	if !ok {
		v = &Variable{name: name}
		s.vars[name] = v
	}
	return v
}

// Names returns the sorted names of all variables that hold values.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name, v := range s.vars {
		if v.Initialized() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a deep copy of every initialized variable, for
// checkpointing.
func (s *Store) Snapshot() map[string]*tensor.Tensor {
	s.mu.Lock()
	vs := make([]*Variable, 0, len(s.vars))
	for _, v := range s.vars {
		vs = append(vs, v)
	}
	s.mu.Unlock()
	out := make(map[string]*tensor.Tensor)
	for _, v := range vs {
		if t, err := v.Read(); err == nil {
			out[v.name] = t.Clone()
		}
	}
	return out
}

// Restore assigns every entry of the snapshot into the store, creating
// variables as needed.
func (s *Store) Restore(snap map[string]*tensor.Tensor) error {
	for name, t := range snap {
		if err := s.Get(name).Assign(t); err != nil {
			return err
		}
	}
	return nil
}
