package vars

import (
	"strings"
	"sync"
	"testing"

	"tfhpc/internal/tensor"
)

func TestUninitializedRead(t *testing.T) {
	s := NewStore()
	v := s.Get("w")
	if v.Initialized() {
		t.Fatal("fresh variable should be uninitialized")
	}
	if _, err := v.Read(); err == nil {
		t.Fatal("read before init should error")
	}
	if err := v.AssignAdd(tensor.ScalarF64(1)); err == nil {
		t.Fatal("AssignAdd before init should error")
	}
}

func TestAssignReadRoundTrip(t *testing.T) {
	s := NewStore()
	v := s.Get("w")
	val := tensor.FromF64(tensor.Shape{2}, []float64{1, 2})
	if err := v.Assign(val); err != nil {
		t.Fatal(err)
	}
	got, err := v.Read()
	if err != nil || !got.Equal(val) {
		t.Fatalf("read: %v", err)
	}
	// Assign copies: mutating the source must not change the variable.
	val.F64()[0] = 99
	got, _ = v.Read()
	if got.F64()[0] == 99 {
		t.Fatal("Assign should deep copy")
	}
}

func TestAssignShapeDTypeLocked(t *testing.T) {
	s := NewStore()
	v := s.Get("w")
	v.Assign(tensor.FromF64(tensor.Shape{2}, []float64{1, 2}))
	if err := v.Assign(tensor.FromF64(tensor.Shape{3}, []float64{1, 2, 3})); err == nil {
		t.Fatal("shape change should error")
	}
	if err := v.Assign(tensor.FromF32(tensor.Shape{2}, []float32{1, 2})); err == nil {
		t.Fatal("dtype change should error")
	}
	if err := v.AssignAdd(tensor.FromF32(tensor.Shape{2}, []float32{1, 2})); err == nil {
		t.Fatal("AssignAdd dtype change should error")
	}
}

func TestAssignAddAccumulates(t *testing.T) {
	s := NewStore()
	v := s.Get("acc")
	v.Assign(tensor.FromF64(tensor.Shape{3}, []float64{0, 0, 0}))
	for i := 0; i < 5; i++ {
		if err := v.AssignAdd(tensor.FromF64(tensor.Shape{3}, []float64{1, 2, 3})); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := v.Read()
	if got.F64()[0] != 5 || got.F64()[1] != 10 || got.F64()[2] != 15 {
		t.Fatalf("accumulated %v", got.F64())
	}
}

func TestAssignAddConcurrent(t *testing.T) {
	s := NewStore()
	v := s.Get("acc")
	v.Assign(tensor.ScalarF64(0))
	var wg sync.WaitGroup
	const n = 100
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.AssignAdd(tensor.ScalarF64(1))
		}()
	}
	wg.Wait()
	got, _ := v.Read()
	if got.ScalarFloat() != n {
		t.Fatalf("lost updates: %v", got.ScalarFloat())
	}
}

func TestStoreIdentityAndNames(t *testing.T) {
	s := NewStore()
	a := s.Get("x")
	b := s.Get("x")
	if a != b {
		t.Fatal("Get should return the same variable")
	}
	s.Get("y").Assign(tensor.ScalarF64(1))
	s.Get("a").Assign(tensor.ScalarF64(2))
	names := s.Names()
	if strings.Join(names, ",") != "a,y" {
		t.Fatalf("Names = %v (want initialized only, sorted)", names)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewStore()
	s.Get("x").Assign(tensor.FromF64(tensor.Shape{2}, []float64{1, 2}))
	s.Get("i").Assign(tensor.ScalarI64(7))
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	// Snapshot is deep: later mutation must not affect it.
	s.Get("x").AssignAdd(tensor.FromF64(tensor.Shape{2}, []float64{10, 10}))
	if snap["x"].F64()[0] != 1 {
		t.Fatal("snapshot aliases live state")
	}
	fresh := NewStore()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, _ := fresh.Get("x").Read()
	if got.F64()[1] != 2 {
		t.Fatalf("restored %v", got.F64())
	}
	if v, _ := fresh.Get("i").Read(); v.ScalarInt() != 7 {
		t.Fatal("restored int wrong")
	}
}

func TestComplexAssignAdd(t *testing.T) {
	s := NewStore()
	v := s.Get("c")
	v.Assign(tensor.FromC128(tensor.Shape{1}, []complex128{1 + 1i}))
	v.AssignAdd(tensor.FromC128(tensor.Shape{1}, []complex128{2 - 3i}))
	got, _ := v.Read()
	if got.C128()[0] != 3-2i {
		t.Fatalf("complex AssignAdd = %v", got.C128()[0])
	}
}
