// Package npy reads and writes NumPy .npy files (format version 1.0) for
// the dtypes the applications use: <f4, <f8, <i8 and <c16. The paper's
// matmul and FFT applications pre-process their inputs into .npy tile files
// ("Tile_1_2.npy, ...") that workers stream from the parallel filesystem;
// this package is the moral equivalent of the numpy.save/load pair, byte
// compatible with NumPy for supported dtypes.
package npy

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"tfhpc/internal/tensor"
)

var magic = []byte("\x93NUMPY")

func descrFor(dt tensor.DType) (string, error) {
	switch dt {
	case tensor.Float32:
		return "<f4", nil
	case tensor.Float64:
		return "<f8", nil
	case tensor.Int64:
		return "<i8", nil
	case tensor.Complex128:
		return "<c16", nil
	}
	return "", fmt.Errorf("npy: unsupported dtype %v", dt)
}

func dtypeFor(descr string) (tensor.DType, error) {
	switch descr {
	case "<f4", "|f4", "f4":
		return tensor.Float32, nil
	case "<f8", "|f8", "f8":
		return tensor.Float64, nil
	case "<i8", "|i8", "i8":
		return tensor.Int64, nil
	case "<c16", "|c16", "c16":
		return tensor.Complex128, nil
	}
	return tensor.Invalid, fmt.Errorf("npy: unsupported descr %q", descr)
}

// Write serializes t to w in .npy v1.0 format.
func Write(w io.Writer, t *tensor.Tensor) error {
	descr, err := descrFor(t.DType())
	if err != nil {
		return err
	}
	dims := make([]string, t.Rank())
	for i, d := range t.Shape() {
		dims[i] = strconv.Itoa(d)
	}
	shapeStr := strings.Join(dims, ", ")
	if t.Rank() == 1 {
		shapeStr += ","
	}
	header := fmt.Sprintf("{'descr': '%s', 'fortran_order': False, 'shape': (%s), }", descr, shapeStr)
	// Pad with spaces so that magic+version+len+header is a multiple of 64,
	// ending in newline (the NumPy convention).
	unpadded := len(magic) + 2 + 2 + len(header) + 1
	pad := (64 - unpadded%64) % 64
	header += strings.Repeat(" ", pad) + "\n"

	if _, err := w.Write(magic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{1, 0}); err != nil { // version 1.0
		return err
	}
	var hlen [2]byte
	binary.LittleEndian.PutUint16(hlen[:], uint16(len(header)))
	if _, err := w.Write(hlen[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	return writePayload(w, t)
}

func writePayload(w io.Writer, t *tensor.Tensor) error {
	buf := make([]byte, 0, t.ByteSize())
	switch t.DType() {
	case tensor.Float32:
		for _, v := range t.F32() {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	case tensor.Float64:
		for _, v := range t.F64() {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	case tensor.Int64:
		for _, v := range t.I64() {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	case tensor.Complex128:
		for _, v := range t.C128() {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(v)))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(v)))
		}
	}
	_, err := w.Write(buf)
	return err
}

// Read parses one .npy v1.x file from r.
func Read(r io.Reader) (*tensor.Tensor, error) {
	head := make([]byte, 8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("npy: short magic: %w", err)
	}
	if string(head[:6]) != string(magic) {
		return nil, fmt.Errorf("npy: bad magic %q", head[:6])
	}
	major := head[6]
	var hlen int
	switch major {
	case 1:
		var b [2]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, err
		}
		hlen = int(binary.LittleEndian.Uint16(b[:]))
	case 2, 3:
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, err
		}
		hlen = int(binary.LittleEndian.Uint32(b[:]))
	default:
		return nil, fmt.Errorf("npy: unsupported version %d.%d", head[6], head[7])
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	descr, fortran, shape, err := parseHeader(string(hdr))
	if err != nil {
		return nil, err
	}
	if fortran {
		return nil, fmt.Errorf("npy: fortran_order arrays are not supported")
	}
	dt, err := dtypeFor(descr)
	if err != nil {
		return nil, err
	}
	t := tensor.New(dt, shape...)
	payload := make([]byte, t.ByteSize())
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("npy: short payload: %w", err)
	}
	switch dt {
	case tensor.Float32:
		d := t.F32()
		for i := range d {
			d[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
		}
	case tensor.Float64:
		d := t.F64()
		for i := range d {
			d[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	case tensor.Int64:
		d := t.I64()
		for i := range d {
			d[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	case tensor.Complex128:
		d := t.C128()
		for i := range d {
			re := math.Float64frombits(binary.LittleEndian.Uint64(payload[i*16:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(payload[i*16+8:]))
			d[i] = complex(re, im)
		}
	}
	return t, nil
}

// parseHeader extracts the three fields from the Python dict literal NumPy
// writes. The parser is deliberately narrow: it handles exactly the grammar
// numpy.save produces (and that Write above produces).
func parseHeader(h string) (descr string, fortran bool, shape tensor.Shape, err error) {
	get := func(key string) (string, bool) {
		i := strings.Index(h, "'"+key+"'")
		if i < 0 {
			return "", false
		}
		rest := h[i+len(key)+2:]
		j := strings.Index(rest, ":")
		if j < 0 {
			return "", false
		}
		rest = strings.TrimSpace(rest[j+1:])
		return rest, true
	}
	dv, ok := get("descr")
	if !ok || len(dv) < 2 || dv[0] != '\'' {
		return "", false, nil, fmt.Errorf("npy: header missing descr: %q", h)
	}
	end := strings.IndexByte(dv[1:], '\'')
	if end < 0 {
		return "", false, nil, fmt.Errorf("npy: unterminated descr: %q", h)
	}
	descr = dv[1 : 1+end]

	fv, ok := get("fortran_order")
	if !ok {
		return "", false, nil, fmt.Errorf("npy: header missing fortran_order: %q", h)
	}
	fortran = strings.HasPrefix(fv, "True")

	sv, ok := get("shape")
	if !ok || len(sv) == 0 || sv[0] != '(' {
		return "", false, nil, fmt.Errorf("npy: header missing shape: %q", h)
	}
	close := strings.IndexByte(sv, ')')
	if close < 0 {
		return "", false, nil, fmt.Errorf("npy: unterminated shape: %q", h)
	}
	for _, part := range strings.Split(sv[1:close], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil || d < 0 {
			return "", false, nil, fmt.Errorf("npy: bad shape dim %q", part)
		}
		shape = append(shape, d)
	}
	return descr, fortran, shape, nil
}

// Save writes t to the named file.
func Save(path string, t *tensor.Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a tensor from the named file.
func Load(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
