package npy

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"tfhpc/internal/tensor"
)

func roundTrip(t *testing.T, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

func TestRoundTripDTypes(t *testing.T) {
	cases := []*tensor.Tensor{
		tensor.FromF32(tensor.Shape{2, 3}, []float32{1, 2, 3, 4, 5, 6}),
		tensor.FromF64(tensor.Shape{4}, []float64{1.5, -2.5, 0, 1e300}),
		tensor.FromI64(tensor.Shape{3}, []int64{-1, 0, 1 << 40}),
		tensor.FromC128(tensor.Shape{2}, []complex128{1 + 2i, -3 - 4i}),
		tensor.ScalarF64(42),
		tensor.RandomUniform(tensor.Float32, 9, 16, 16),
	}
	for _, in := range cases {
		out := roundTrip(t, in)
		if !in.Equal(out) {
			t.Fatalf("round trip mismatch for %v", in)
		}
	}
}

func TestHeaderIsNumPyCompatible(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, tensor.FromF32(tensor.Shape{4096}, make([]float32, 4096))); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if string(b[:6]) != "\x93NUMPY" {
		t.Fatalf("magic = %q", b[:6])
	}
	if b[6] != 1 || b[7] != 0 {
		t.Fatalf("version = %d.%d", b[6], b[7])
	}
	hlen := int(b[8]) | int(b[9])<<8
	// Total header must be 64-byte aligned per the format spec.
	if (10+hlen)%64 != 0 {
		t.Fatalf("header not 64-aligned: %d", 10+hlen)
	}
	hdr := string(b[10 : 10+hlen])
	for _, want := range []string{"'descr': '<f4'", "'fortran_order': False", "'shape': (4096,)"} {
		if !bytes.Contains([]byte(hdr), []byte(want)) {
			t.Fatalf("header missing %q: %q", want, hdr)
		}
	}
	if hdr[len(hdr)-1] != '\n' {
		t.Fatal("header must end in newline")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("notnumpy"))); err == nil {
		t.Fatal("bad magic should error")
	}
	var buf bytes.Buffer
	Write(&buf, tensor.ScalarF64(1))
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func TestSaveLoadFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "Tile_1_2.npy")
	in := tensor.RandomUniform(tensor.Float32, 3, 64, 64)
	if err := Save(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(out) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := Load(filepath.Join(dir, "missing.npy")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(vals []float64) bool {
		tt := tensor.FromF64(tensor.Shape{len(vals)}, vals)
		var buf bytes.Buffer
		if err := Write(&buf, tt); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		if !out.Shape().Equal(tt.Shape()) {
			return false
		}
		a, b := tt.F64(), out.F64()
		for i := range a {
			// Bit-exact, including NaN.
			x, y := a[i], b[i]
			if x != y && !(x != x && y != y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseHeaderVariants(t *testing.T) {
	// Header as NumPy itself writes it (single quotes, trailing comma).
	descr, fortran, shape, err := parseHeader("{'descr': '<f8', 'fortran_order': False, 'shape': (3, 4), }        \n")
	if err != nil {
		t.Fatal(err)
	}
	if descr != "<f8" || fortran || !shape.Equal(tensor.Shape{3, 4}) {
		t.Fatalf("parsed %q %v %v", descr, fortran, shape)
	}
	// Scalar shape.
	_, _, shape, err = parseHeader("{'descr': '<f4', 'fortran_order': False, 'shape': (), }\n")
	if err != nil || len(shape) != 0 {
		t.Fatalf("scalar shape: %v %v", shape, err)
	}
	// Fortran order rejected at Read level but parsed here.
	_, fortran, _, err = parseHeader("{'descr': '<f4', 'fortran_order': True, 'shape': (2,), }\n")
	if err != nil || !fortran {
		t.Fatal("fortran flag lost")
	}
}
