package sim

import "fmt"

// Resource is a counted resource with FIFO admission: a GPU compute engine,
// a PCIe link, a NIC. Acquire blocks while all slots are busy; Release frees
// a slot and hands it to the longest-waiting process (strict FIFO, so
// simulations are deterministic and starvation-free).
type Resource struct {
	eng     *Engine
	name    string
	cap     int
	inUse   int
	waiters []*resWaiter

	// Utilisation accounting.
	busyTime  float64
	lastStamp float64
	acquired  int64
}

type resWaiter struct {
	p       *Process
	granted bool
}

// NewResource creates a resource with the given concurrency capacity.
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity must be positive", name))
	}
	return &Resource{eng: e, name: name, cap: capacity}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// InUse returns the number of currently-held slots.
func (r *Resource) InUse() int { return r.inUse }

// Acquired returns the total number of successful acquisitions.
func (r *Resource) Acquired() int64 { return r.acquired }

func (r *Resource) stamp() {
	now := r.eng.now
	r.busyTime += float64(r.inUse) * (now - r.lastStamp)
	r.lastStamp = now
}

// Utilisation returns average busy slots × time / (capacity × elapsed) since
// engine start; a number in [0, 1].
func (r *Resource) Utilisation() float64 {
	r.stamp()
	if r.eng.now == 0 {
		return 0
	}
	return r.busyTime / (float64(r.cap) * r.eng.now)
}

// Acquire obtains one slot, blocking in FIFO order while none is free.
func (r *Resource) Acquire(p *Process) {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		r.acquired++
		return
	}
	w := &resWaiter{p: p}
	r.waiters = append(r.waiters, w)
	for !w.granted {
		p.block(fmt.Sprintf("acquire %s", r.name))
	}
	r.acquired++
}

// Release frees one slot, waking the head waiter if any. Ownership transfers
// directly so a late arriver cannot jump the queue.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	r.stamp()
	r.inUse--
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		w.granted = true
		r.stamp()
		r.inUse++
		r.eng.schedule(r.eng.now, w.p, nil)
	}
}

// Use acquires the resource, holds it for duration d of virtual time, then
// releases it. This is the common pattern for modelling a compute kernel or
// a bus transfer with exclusive occupancy.
func (r *Resource) Use(p *Process, d float64) {
	r.Acquire(p)
	p.Wait(d)
	r.Release()
}
