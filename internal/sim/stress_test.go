package sim

import (
	"testing"
	"testing/quick"
)

// Property: events never run at decreasing virtual times, whatever mix of
// waits, resources and stores a workload uses.
func TestTimeNeverDecreasesQuick(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 || len(seeds) > 24 {
			return true
		}
		e := New()
		r := e.NewResource("r", 2)
		s := e.NewStore("s", 4)
		last := -1.0
		monotone := true
		check := func(p *Process) {
			if p.Now() < last {
				monotone = false
			}
			last = p.Now()
		}
		producers := 0
		for i, b := range seeds {
			d := float64(b%7) / 10
			switch i % 3 {
			case 0:
				producers++
				e.Go("p", func(p *Process) {
					p.Wait(d)
					check(p)
					r.Use(p, d/2+0.01)
					check(p)
					s.Put(p, i)
				})
			case 1:
				e.Go("c", func(p *Process) {
					if _, err := s.Get(p); err != nil {
						return
					}
					check(p)
					p.Wait(d)
					check(p)
				})
			default:
				e.Go("w", func(p *Process) {
					p.Wait(d)
					check(p)
				})
			}
		}
		// Balance consumers/producers to avoid intentional deadlock: close
		// the store once all producers are done.
		e.Go("closer", func(p *Process) {
			p.Wait(10)
			s.Close()
		})
		_, err := e.Run()
		// Deadlock-free by construction thanks to the closer.
		return err == nil && monotone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// A saturated pipeline with hundreds of processes must complete and keep
// resource accounting consistent.
func TestLargePipelineStress(t *testing.T) {
	e := New()
	nic := e.NewResource("nic", 2)
	gpu := e.NewResource("gpu", 8)
	store := e.NewStore("q", 8)
	const producers, items = 16, 20
	for w := 0; w < producers; w++ {
		e.Go("prod", func(p *Process) {
			for i := 0; i < items; i++ {
				nic.Use(p, 0.001)
				gpu.Use(p, 0.004)
				if store.Put(p, i) != nil {
					return
				}
			}
		})
	}
	consumed := 0
	e.Go("cons", func(p *Process) {
		for {
			if _, err := store.Get(p); err != nil {
				return
			}
			consumed++
			p.Wait(0.0005)
		}
	})
	e.Go("closer", func(p *Process) {
		// Close after all producers are done: total produce time bounded by
		// serialised GPU occupancy; a generous wait is deterministic here.
		p.Wait(1000)
		store.Close()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if consumed != producers*items {
		t.Fatalf("consumed %d of %d", consumed, producers*items)
	}
	if nic.InUse() != 0 || gpu.InUse() != 0 {
		t.Fatal("resources leaked")
	}
	if got := nic.Acquired(); got != producers*items {
		t.Fatalf("nic acquisitions %d", got)
	}
}
