// Package sim implements a deterministic discrete-event simulation engine
// with cooperatively-scheduled processes, counted resources and FIFO stores.
// The virtual cluster uses it to execute the paper's experiments at scale
// (65536² matrices, 16 GPUs, InfiniBand links) on a laptop: application
// driver loops run as sim processes, and every compute kernel, PCIe copy and
// network transfer advances virtual time according to the hardware models in
// internal/hw and internal/simnet.
//
// Exactly one process (or the engine itself) runs at any instant; the engine
// hands control to a process and waits for it to block or finish before
// advancing the clock, so simulations are fully deterministic: same inputs,
// same event order, same virtual timings, on every run and platform.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Engine is a discrete-event scheduler. Create with New, add processes with
// Go, then call Run from the host goroutine.
type Engine struct {
	now     float64
	seq     int64
	events  eventHeap
	yield   chan struct{}
	live    int
	blocked map[*Process]string // blocked process -> reason, for deadlock reports
	panicV  any
}

type event struct {
	t   float64
	seq int64
	p   *Process
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Process is a unit of concurrent simulated activity. Its methods must only
// be called from inside its own body function.
type Process struct {
	eng         *Engine
	name        string
	resume      chan struct{}
	done        bool
	doneWaiters []*Process
}

// New returns an empty engine at virtual time zero.
func New() *Engine {
	return &Engine{
		yield:   make(chan struct{}),
		blocked: make(map[*Process]string),
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Live returns the number of processes that have started and not finished.
func (e *Engine) Live() int { return e.live }

func (e *Engine) schedule(t float64, p *Process, fn func()) {
	e.seq++
	heap.Push(&e.events, &event{t: t, seq: e.seq, p: p, fn: fn})
}

// After runs fn at virtual time Now()+d in engine context (not a process).
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, nil, fn)
}

// Go spawns a new process that starts at the current virtual time. It may be
// called before Run or from inside another process.
func (e *Engine) Go(name string, body func(*Process)) *Process {
	p := &Process{eng: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && e.panicV == nil {
				e.panicV = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
			}
			p.done = true
			for _, w := range p.doneWaiters {
				e.schedule(e.now, w, nil)
			}
			p.doneWaiters = nil
			e.live--
			e.yield <- struct{}{}
		}()
		body(p)
	}()
	e.schedule(e.now, p, nil)
	return p
}

// Run executes events until none remain. It returns the final virtual time.
// If processes remain blocked with no pending events (a deadlock, e.g. a
// queue consumer waiting on a producer that already exited), Run returns an
// error naming them.
func (e *Engine) Run() (float64, error) {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.t < e.now {
			return e.now, fmt.Errorf("sim: time went backwards: %g < %g", ev.t, e.now)
		}
		e.now = ev.t
		if ev.fn != nil {
			ev.fn()
			if e.panicV != nil {
				panic(e.panicV)
			}
			continue
		}
		if ev.p == nil || ev.p.done {
			continue
		}
		delete(e.blocked, ev.p)
		ev.p.resume <- struct{}{}
		<-e.yield
		if e.panicV != nil {
			panic(e.panicV)
		}
	}
	if e.live > 0 {
		names := make([]string, 0, len(e.blocked))
		for p, why := range e.blocked {
			names = append(names, fmt.Sprintf("%s (%s)", p.name, why))
		}
		sort.Strings(names)
		return e.now, fmt.Errorf("sim: deadlock: %d process(es) blocked forever: %v", e.live, names)
	}
	return e.now, nil
}

// block suspends the process until something schedules a wake for it.
func (p *Process) block(reason string) {
	p.eng.blocked[p] = reason
	p.eng.yield <- struct{}{}
	<-p.resume
	delete(p.eng.blocked, p)
}

// Name returns the process name given to Go.
func (p *Process) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Process) Now() float64 { return p.eng.now }

// Engine returns the owning engine.
func (p *Process) Engine() *Engine { return p.eng }

// Wait advances the process's virtual time by d seconds.
func (p *Process) Wait(d float64) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, p, nil)
	p.block(fmt.Sprintf("sleeping %.3gs", d))
}

// Join blocks until all the given processes have finished.
func (p *Process) Join(procs ...*Process) {
	for _, q := range procs {
		if q.done {
			continue
		}
		q.doneWaiters = append(q.doneWaiters, p)
		p.block(fmt.Sprintf("join %s", q.name))
	}
}

// Event is a one-shot latch processes can wait on (similar to simpy events).
type Event struct {
	eng     *Engine
	fired   bool
	waiters []*Process
}

// NewEvent returns an unfired event.
func (e *Engine) NewEvent() *Event { return &Event{eng: e} }

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Fire releases all current and future waiters. Idempotent. May be called
// from any process or from engine context.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		ev.eng.schedule(ev.eng.now, w, nil)
	}
	ev.waiters = nil
}

// Wait blocks the process until the event fires (returns immediately if it
// already has).
func (ev *Event) Wait(p *Process) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.block("event wait")
}
