package sim

import (
	"errors"
	"fmt"
)

// ErrClosed is returned by Store operations after Close once drained.
var ErrClosed = errors.New("sim: store is closed")

// Store is a bounded FIFO of arbitrary items with blocking Put/Get — the
// simulated twin of the runtime's FIFOQueue (TensorFlow Queue API). Items
// hand off directly between blocked producers and consumers, preserving
// strict FIFO order.
type Store struct {
	eng     *Engine
	name    string
	cap     int // 0 = unbounded
	items   []any
	getters []*storeGetter
	putters []*storePutter
	closed  bool

	puts   int64
	gets   int64
	maxLen int
}

type storeGetter struct {
	p     *Process
	item  any
	ready bool
	err   error
}

type storePutter struct {
	p    *Process
	item any
	done bool
}

// NewStore creates a FIFO store. capacity 0 means unbounded.
func (e *Engine) NewStore(name string, capacity int) *Store {
	if capacity < 0 {
		panic(fmt.Sprintf("sim: store %q capacity must be >= 0", name))
	}
	return &Store{eng: e, name: name, cap: capacity}
}

// Name returns the store's name.
func (s *Store) Name() string { return s.name }

// Len returns the number of buffered items.
func (s *Store) Len() int { return len(s.items) }

// MaxLen returns the high-water mark of the buffer.
func (s *Store) MaxLen() int { return s.maxLen }

// Puts returns the number of completed Put operations.
func (s *Store) Puts() int64 { return s.puts }

// Gets returns the number of completed Get operations.
func (s *Store) Gets() int64 { return s.gets }

func (s *Store) buffer(v any) {
	s.items = append(s.items, v)
	if len(s.items) > s.maxLen {
		s.maxLen = len(s.items)
	}
}

// Put appends v, blocking while the store is full. Returns ErrClosed if the
// store was closed.
func (s *Store) Put(p *Process, v any) error {
	if s.closed {
		return ErrClosed
	}
	// Direct hand-off to a waiting getter.
	if len(s.getters) > 0 {
		g := s.getters[0]
		s.getters = s.getters[1:]
		g.item = v
		g.ready = true
		s.eng.schedule(s.eng.now, g.p, nil)
		s.puts++
		s.gets++ // the paired get completes now
		return nil
	}
	if s.cap == 0 || len(s.items) < s.cap {
		s.buffer(v)
		s.puts++
		return nil
	}
	w := &storePutter{p: p, item: v}
	s.putters = append(s.putters, w)
	for !w.done {
		p.block(fmt.Sprintf("put %s (full)", s.name))
		if s.closed && !w.done {
			return ErrClosed
		}
	}
	s.puts++
	return nil
}

// Get removes and returns the oldest item, blocking while the store is
// empty. Returns ErrClosed once the store is closed and drained.
func (s *Store) Get(p *Process) (any, error) {
	for {
		if len(s.items) > 0 {
			v := s.items[0]
			s.items = s.items[1:]
			// Admit a blocked putter into the freed space.
			if len(s.putters) > 0 {
				w := s.putters[0]
				s.putters = s.putters[1:]
				s.buffer(w.item)
				w.done = true
				s.eng.schedule(s.eng.now, w.p, nil)
			}
			s.gets++
			return v, nil
		}
		if len(s.putters) > 0 { // cap could be 0-sized rendezvous in theory
			w := s.putters[0]
			s.putters = s.putters[1:]
			w.done = true
			s.eng.schedule(s.eng.now, w.p, nil)
			s.gets++
			return w.item, nil
		}
		if s.closed {
			return nil, ErrClosed
		}
		g := &storeGetter{p: p}
		s.getters = append(s.getters, g)
		p.block(fmt.Sprintf("get %s (empty)", s.name))
		if g.ready {
			return g.item, nil
		}
		if g.err != nil {
			return nil, g.err
		}
		// Woken by Close with nothing delivered: loop re-checks state.
	}
}

// Close marks the store closed: pending and future Puts fail, Gets drain the
// buffer then fail with ErrClosed.
func (s *Store) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, g := range s.getters {
		if len(s.items) == 0 {
			g.err = ErrClosed
		}
		s.eng.schedule(s.eng.now, g.p, nil)
	}
	s.getters = nil
	for _, w := range s.putters {
		s.eng.schedule(s.eng.now, w.p, nil)
	}
	s.putters = nil
}

// Closed reports whether Close has been called.
func (s *Store) Closed() bool { return s.closed }
