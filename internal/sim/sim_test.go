package sim

import (
	"strings"
	"testing"
)

func TestSingleProcessWait(t *testing.T) {
	e := New()
	var seen []float64
	e.Go("p", func(p *Process) {
		seen = append(seen, p.Now())
		p.Wait(1.5)
		seen = append(seen, p.Now())
		p.Wait(0.5)
		seen = append(seen, p.Now())
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 2.0 {
		t.Fatalf("end time %v, want 2.0", end)
	}
	want := []float64{0, 1.5, 2.0}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen %v, want %v", seen, want)
		}
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := New()
		var order []string
		e.Go("a", func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Wait(1)
				order = append(order, "a")
			}
		})
		e.Go("b", func(p *Process) {
			for i := 0; i < 2; i++ {
				p.Wait(1.5)
				order = append(order, "b")
			}
		})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	want := "a b a b a" // t=1 a, 1.5 b, 2 a, 3 a&b with a scheduled first
	got := strings.Join(first, " ")
	if got != want && got != "a b a a b" {
		t.Fatalf("order %q", got)
	}
	for i := 0; i < 10; i++ {
		again := strings.Join(run(), " ")
		if again != got {
			t.Fatalf("non-deterministic: %q vs %q", again, got)
		}
	}
}

func TestAfterCallback(t *testing.T) {
	e := New()
	fired := -1.0
	e.After(3, func() { fired = e.Now() })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("fired at %v", fired)
	}
}

func TestEventWaitAndFire(t *testing.T) {
	e := New()
	ev := e.NewEvent()
	var wokenAt float64
	e.Go("waiter", func(p *Process) {
		ev.Wait(p)
		wokenAt = p.Now()
	})
	e.Go("firer", func(p *Process) {
		p.Wait(2)
		ev.Fire()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt != 2 {
		t.Fatalf("woken at %v", wokenAt)
	}
	if !ev.Fired() {
		t.Fatal("event should be fired")
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	e := New()
	ev := e.NewEvent()
	ev.Fire()
	ok := false
	e.Go("late", func(p *Process) {
		ev.Wait(p) // must not block
		ok = true
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("late waiter blocked on fired event")
	}
}

func TestJoin(t *testing.T) {
	e := New()
	var joinedAt float64
	var c1, c2 *Process
	e.Go("parent", func(p *Process) {
		c1 = e.Go("c1", func(q *Process) { q.Wait(5) })
		c2 = e.Go("c2", func(q *Process) { q.Wait(3) })
		p.Join(c1, c2)
		joinedAt = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if joinedAt != 5 {
		t.Fatalf("joined at %v, want 5", joinedAt)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := New()
	r := e.NewResource("gpu", 1)
	var ends []float64
	for i := 0; i < 3; i++ {
		e.Go("user", func(p *Process) {
			r.Use(p, 2)
			ends = append(ends, p.Now())
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 6 {
		t.Fatalf("end %v, want 6 (3 serialized uses of 2s)", end)
	}
	want := []float64{2, 4, 6}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends %v", ends)
		}
	}
	if r.Acquired() != 3 {
		t.Fatalf("acquired %d", r.Acquired())
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := New()
	r := e.NewResource("link", 2)
	var maxInUse int
	for i := 0; i < 4; i++ {
		e.Go("user", func(p *Process) {
			r.Acquire(p)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Wait(1)
			r.Release()
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 2 {
		t.Fatalf("end %v, want 2 (4 jobs, 2 wide)", end)
	}
	if maxInUse != 2 {
		t.Fatalf("maxInUse %d", maxInUse)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := New()
	r := e.NewResource("r", 1)
	var order []string
	spawn := func(name string, delay float64) {
		e.Go(name, func(p *Process) {
			p.Wait(delay)
			r.Acquire(p)
			order = append(order, name)
			p.Wait(10)
			r.Release()
		})
	}
	spawn("first", 0)
	spawn("second", 1)
	spawn("third", 2)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "first,second,third" {
		t.Fatalf("order %v", order)
	}
}

func TestResourceUtilisation(t *testing.T) {
	e := New()
	r := e.NewResource("gpu", 1)
	e.Go("u", func(p *Process) {
		r.Use(p, 3)
		p.Wait(1) // idle tail
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	u := r.Utilisation()
	if u < 0.74 || u > 0.76 {
		t.Fatalf("utilisation %v, want 0.75", u)
	}
}

func TestStorePutGetFIFO(t *testing.T) {
	e := New()
	s := e.NewStore("q", 0)
	var got []int
	e.Go("producer", func(p *Process) {
		for i := 0; i < 5; i++ {
			p.Wait(1)
			if err := s.Put(p, i); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		s.Close()
	})
	e.Go("consumer", func(p *Process) {
		for {
			v, err := s.Get(p)
			if err == ErrClosed {
				return
			}
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			got = append(got, v.(int))
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
	if s.Gets() != 5 || s.Puts() != 5 {
		t.Fatalf("counters: gets=%d puts=%d", s.Gets(), s.Puts())
	}
}

func TestStoreCapacityBlocksProducer(t *testing.T) {
	e := New()
	s := e.NewStore("q", 2)
	var lastPut float64
	e.Go("producer", func(p *Process) {
		for i := 0; i < 4; i++ {
			if err := s.Put(p, i); err != nil {
				t.Errorf("put: %v", err)
			}
			lastPut = p.Now()
		}
	})
	e.Go("consumer", func(p *Process) {
		for i := 0; i < 4; i++ {
			p.Wait(10)
			if _, err := s.Get(p); err != nil {
				t.Errorf("get: %v", err)
			}
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Producer's 4th put must wait until consumer frees space at t=20.
	if lastPut != 20 {
		t.Fatalf("last put at %v, want 20", lastPut)
	}
	if s.MaxLen() != 2 {
		t.Fatalf("max len %d, want 2", s.MaxLen())
	}
}

func TestStoreGetBlocksUntilPut(t *testing.T) {
	e := New()
	s := e.NewStore("q", 0)
	var gotAt float64
	e.Go("consumer", func(p *Process) {
		v, err := s.Get(p)
		if err != nil || v.(string) != "x" {
			t.Errorf("get: %v %v", v, err)
		}
		gotAt = p.Now()
	})
	e.Go("producer", func(p *Process) {
		p.Wait(7)
		s.Put(p, "x")
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAt != 7 {
		t.Fatalf("got at %v", gotAt)
	}
}

func TestStoreCloseUnblocksGetters(t *testing.T) {
	e := New()
	s := e.NewStore("q", 0)
	var gotErr error
	e.Go("consumer", func(p *Process) {
		_, gotErr = s.Get(p)
	})
	e.Go("closer", func(p *Process) {
		p.Wait(1)
		s.Close()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr != ErrClosed {
		t.Fatalf("err %v, want ErrClosed", gotErr)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	s := e.NewStore("q", 0)
	e.Go("stuck", func(p *Process) {
		s.Get(p) // nobody will ever put
	})
	_, err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("error should name the process: %v", err)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(error).Error(), "boom") {
			t.Fatalf("want propagated panic, got %v", r)
		}
	}()
	e := New()
	e.Go("bad", func(p *Process) {
		p.Wait(1)
		panic("boom")
	})
	e.Run()
}

func TestManyProcessesScale(t *testing.T) {
	e := New()
	r := e.NewResource("nic", 4)
	n := 500
	done := 0
	for i := 0; i < n; i++ {
		e.Go("w", func(p *Process) {
			r.Use(p, 0.001)
			done++
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done %d", done)
	}
	wantEnd := float64(n) * 0.001 / 4
	if end < wantEnd*0.99 || end > wantEnd*1.01 {
		t.Fatalf("end %v, want ~%v", end, wantEnd)
	}
}
