package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 300)
	e.Int(2, -42)
	e.Bool(3, true)
	e.Double(4, math.Pi)
	e.Float(5, 2.5)
	e.String(6, "worker")
	e.BytesField(7, []byte{0, 1, 2})

	d := NewDecoder(e.Bytes())
	expect := func(wantField int, wantWT WireType) {
		f, wt, err := d.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if f != wantField || wt != wantWT {
			t.Fatalf("field %d/%v, want %d/%v", f, wt, wantField, wantWT)
		}
	}
	expect(1, TVarint)
	if v, _ := d.Uint(); v != 300 {
		t.Fatalf("Uint = %d", v)
	}
	expect(2, TVarint)
	if v, _ := d.Int(); v != -42 {
		t.Fatalf("Int = %d", v)
	}
	expect(3, TVarint)
	if v, _ := d.Bool(); !v {
		t.Fatal("Bool")
	}
	expect(4, TFixed64)
	if v, _ := d.Double(); v != math.Pi {
		t.Fatalf("Double = %v", v)
	}
	expect(5, TFixed32)
	if v, _ := d.Float(); v != 2.5 {
		t.Fatalf("Float = %v", v)
	}
	expect(6, TBytes)
	if v, _ := d.StringVal(); v != "worker" {
		t.Fatalf("String = %q", v)
	}
	expect(7, TBytes)
	if v, _ := d.Bytes(); !bytes.Equal(v, []byte{0, 1, 2}) {
		t.Fatalf("Bytes = %v", v)
	}
	if _, _, err := d.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestNestedMessage(t *testing.T) {
	e := NewEncoder()
	e.Message(1, func(sub *Encoder) {
		sub.String(1, "ps")
		sub.Uint(2, 8888)
	})
	e.Uint(2, 99)

	d := NewDecoder(e.Bytes())
	f, wt, _ := d.Next()
	if f != 1 || wt != TBytes {
		t.Fatalf("outer field %d/%v", f, wt)
	}
	inner, err := d.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	sd := NewDecoder(inner)
	sd.Next()
	if s, _ := sd.StringVal(); s != "ps" {
		t.Fatalf("inner string %q", s)
	}
	sd.Next()
	if v, _ := sd.Uint(); v != 8888 {
		t.Fatalf("inner uint %d", v)
	}
	f, _, _ = d.Next()
	if f != 2 {
		t.Fatalf("second outer field %d", f)
	}
	if v, _ := d.Uint(); v != 99 {
		t.Fatal("outer uint")
	}
}

func TestSkipUnknownFields(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 5)
	e.Double(2, 1.5)
	e.String(3, "xyz")
	e.Float(4, 1)
	e.Uint(5, 10)

	d := NewDecoder(e.Bytes())
	// Skip everything except field 5.
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			t.Fatal("field 5 not found")
		}
		if f == 5 {
			v, err := d.Uint()
			if err != nil || v != 10 {
				t.Fatalf("field 5 = %d, %v", v, err)
			}
			return
		}
		if err := d.Skip(wt); err != nil {
			t.Fatalf("skip: %v", err)
		}
	}
}

func TestZigZagQuick(t *testing.T) {
	f := func(v int64) bool {
		e := NewEncoder()
		e.Int(1, v)
		d := NewDecoder(e.Bytes())
		d.Next()
		got, err := d.Int()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleQuick(t *testing.T) {
	f := func(v float64) bool {
		e := NewEncoder()
		e.Double(1, v)
		d := NewDecoder(e.Bytes())
		d.Next()
		got, err := d.Double()
		return err == nil && math.Float64bits(got) == math.Float64bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{7}, 100000),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: %d vs %d bytes", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("hello world"))
	trunc := buf.Bytes()[:8]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame should error")
	}
}

func TestDecoderTruncationErrors(t *testing.T) {
	e := NewEncoder()
	e.Double(1, 1)
	full := e.Bytes()
	d := NewDecoder(full[:len(full)-2])
	d.Next()
	if _, err := d.Double(); err == nil {
		t.Fatal("truncated double should error")
	}

	e2 := NewEncoder()
	e2.BytesField(1, []byte("abcdef"))
	full2 := e2.Bytes()
	d2 := NewDecoder(full2[:len(full2)-3])
	d2.Next()
	if _, err := d2.Bytes(); err == nil {
		t.Fatal("truncated bytes should error")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder()
	e.Uint(1, 1)
	if e.Len() == 0 {
		t.Fatal("expected bytes")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("Reset should clear")
	}
}
