package wire

import (
	"bytes"
	"io"
	"testing"
)

// seedMessages is the fuzz seed corpus: well-formed encodings of each wire
// type plus known-nasty shapes (truncated varints, huge length prefixes).
func seedMessages() [][]byte {
	var seeds [][]byte
	e := NewEncoder()
	e.Uint(1, 0)
	e.Uint(2, 1<<63)
	e.Int(3, -1)
	e.Bool(4, true)
	e.Double(5, 3.25)
	e.Float(6, -0.5)
	e.BytesField(7, []byte("payload"))
	e.String(8, "name")
	e.Message(9, func(sub *Encoder) { sub.Uint(1, 42) })
	seeds = append(seeds, append([]byte(nil), e.Bytes()...))
	seeds = append(seeds,
		nil,
		[]byte{0x08}, // tag then nothing
		[]byte{0x80}, // unterminated varint
		[]byte{0x12, 0xff, 0xff, 0xff, 0xff, 0x7f},   // bytes field longer than the buffer
		[]byte{0x0a, 0x02, 0x01},                     // nested message truncated
		bytes.Repeat([]byte{0x80}, 16),               // varint overlong
		[]byte{0x19, 1, 2, 3},                        // fixed64 truncated
		[]byte{0x3d, 1, 2},                           // fixed32 truncated
		append([]byte{0x0a, 0x03}, []byte("abc")...), // exact-fit bytes
	)
	return seeds
}

// FuzzDecoder walks arbitrary bytes through the field decoder. Malformed
// input must surface as an error from Next/Skip — never a panic or an
// infinite loop — and whatever decodes must re-encode to the same bytes the
// decoder consumed (the round-trip property the RPC layer relies on).
func FuzzDecoder(f *testing.F) {
	for _, s := range seedMessages() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		e := NewEncoder()
		for {
			field, wt, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed: an error is the contract
			}
			switch wt {
			case TVarint:
				v, err := d.Uint()
				if err != nil {
					return
				}
				e.Uint(field, v)
			case TFixed64:
				v, err := d.Double()
				if err != nil {
					return
				}
				e.Double(field, v)
			case TFixed32:
				v, err := d.Float()
				if err != nil {
					return
				}
				e.Float(field, v)
			case TBytes:
				b, err := d.Bytes()
				if err != nil {
					return
				}
				e.BytesField(field, b)
			default:
				if d.Skip(wt) == nil {
					t.Fatalf("Skip accepted unknown wire type %d", wt)
				}
				return
			}
		}
		// Everything decoded cleanly: the re-encoding is canonical (the input
		// may have used overlong varints), so decoding it again and
		// re-encoding must be a fixed point — any drift means a field was
		// mangled in one direction or the other.
		again, ok := reencode(e.Bytes())
		if !ok {
			t.Fatalf("re-encoded message failed to decode: %x", e.Bytes())
		}
		if !bytes.Equal(again, e.Bytes()) {
			t.Fatalf("canonical encoding not a fixed point:\n in  %x\n out %x", e.Bytes(), again)
		}
	})
}

// reencode decodes a message and encodes it back field by field.
func reencode(data []byte) ([]byte, bool) {
	d := NewDecoder(data)
	e := NewEncoder()
	for {
		field, wt, err := d.Next()
		if err == io.EOF {
			return e.Bytes(), true
		}
		if err != nil {
			return nil, false
		}
		switch wt {
		case TVarint:
			v, err := d.Uint()
			if err != nil {
				return nil, false
			}
			e.Uint(field, v)
		case TFixed64:
			v, err := d.Double()
			if err != nil {
				return nil, false
			}
			e.Double(field, v)
		case TFixed32:
			v, err := d.Float()
			if err != nil {
				return nil, false
			}
			e.Float(field, v)
		case TBytes:
			b, err := d.Bytes()
			if err != nil {
				return nil, false
			}
			e.BytesField(field, b)
		default:
			return nil, false
		}
	}
}

// FuzzFrameRoundTrip frames arbitrary payloads and reads them back through
// every frame reader; all three must agree with the original bytes.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, s := range seedMessages() {
		f.Add(s)
	}
	f.Add(bytes.Repeat([]byte{0xa5}, 1<<12))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		framed := buf.Bytes()

		got, err := ReadFrame(bytes.NewReader(framed))
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("ReadFrame: %v (got %d bytes, want %d)", err, len(got), len(payload))
		}
		pooled, err := ReadFramePooled(bytes.NewReader(framed))
		if err != nil || !bytes.Equal(pooled, payload) {
			t.Fatalf("ReadFramePooled: %v", err)
		}
		PutBuf(pooled)
		reused, err := ReadFrameInto(bytes.NewReader(framed), make([]byte, 0, 16))
		if err != nil || !bytes.Equal(reused, payload) {
			t.Fatalf("ReadFrameInto: %v", err)
		}
	})
}

// FuzzReadFrame feeds raw bytes to the frame readers: truncated headers,
// bogus lengths and short payloads must error, never panic, and the pooled
// and plain readers must agree on accept/reject.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})    // length far past the 2 GiB cap
	f.Add([]byte{0x80, 0x00, 0x00, 0x01, 1}) // 2 GiB + 1
	f.Add([]byte{0, 0, 0, 5, 1, 2, 3})       // payload shorter than header
	f.Add([]byte{0, 0, 0, 2, 9, 8, 7})       // trailing garbage after frame
	f.Fuzz(func(t *testing.T, data []byte) {
		plain, errPlain := ReadFrame(bytes.NewReader(data))
		pooled, errPooled := ReadFramePooled(bytes.NewReader(data))
		if (errPlain == nil) != (errPooled == nil) {
			t.Fatalf("readers disagree: plain err=%v pooled err=%v", errPlain, errPooled)
		}
		if errPlain == nil {
			if !bytes.Equal(plain, pooled) {
				t.Fatalf("readers decoded different payloads")
			}
			PutBuf(pooled)
		}
	})
}
