// Package wire implements the ProtoBuf-style binary encoding used by the
// runtime for RPC messages, GraphDefs and checkpoints: varint-tagged fields
// with the standard four wire types, plus length-prefixed framing for
// streams. It enforces the 2 GiB message ceiling that the paper identifies
// as a practical limitation of serialized TensorFlow graphs.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// WireType mirrors ProtoBuf's on-the-wire value kinds.
type WireType int

const (
	TVarint  WireType = 0
	TFixed64 WireType = 1
	TBytes   WireType = 2
	TFixed32 WireType = 5
)

// MaxMessageSize is the 2 GiB ProtoBuf-compatible limit on any one message.
const MaxMessageSize = int64(2) << 30

// ErrMessageTooLarge is returned when a frame or message exceeds
// MaxMessageSize. The CG section of the paper discusses hitting exactly this
// ceiling with unrolled-loop graphs.
var ErrMessageTooLarge = fmt.Errorf("wire: message exceeds 2 GiB limit")

// Encoder accumulates tagged fields into a byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded message. The slice aliases internal storage.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) tag(field int, wt WireType) {
	e.buf = binary.AppendUvarint(e.buf, uint64(field)<<3|uint64(wt))
}

// Uint encodes an unsigned varint field.
func (e *Encoder) Uint(field int, v uint64) {
	e.tag(field, TVarint)
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Int encodes a signed varint field with zig-zag encoding.
func (e *Encoder) Int(field int, v int64) {
	e.Uint(field, uint64((v<<1)^(v>>63)))
}

// Bool encodes a boolean varint field.
func (e *Encoder) Bool(field int, v bool) {
	b := uint64(0)
	if v {
		b = 1
	}
	e.Uint(field, b)
}

// Double encodes a float64 as fixed64.
func (e *Encoder) Double(field int, v float64) {
	e.tag(field, TFixed64)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Float encodes a float32 as fixed32.
func (e *Encoder) Float(field int, v float32) {
	e.tag(field, TFixed32)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(v))
}

// Bytes encodes a length-delimited byte field.
func (e *Encoder) BytesField(field int, b []byte) {
	e.tag(field, TBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String encodes a length-delimited string field.
func (e *Encoder) String(field int, s string) {
	e.tag(field, TBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Message encodes a nested message built by fn as a length-delimited field.
func (e *Encoder) Message(field int, fn func(*Encoder)) {
	sub := NewEncoder()
	fn(sub)
	e.BytesField(field, sub.Bytes())
}

// Decoder walks the fields of an encoded message.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps buf for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// More reports whether any bytes remain.
func (d *Decoder) More() bool { return d.off < len(d.buf) }

// Next reads the next field tag. It returns io.EOF when the message is
// exhausted.
func (d *Decoder) Next() (field int, wt WireType, err error) {
	if !d.More() {
		return 0, 0, io.EOF
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("wire: bad tag varint at offset %d", d.off)
	}
	d.off += n
	return int(v >> 3), WireType(v & 7), nil
}

// Uint reads a varint value.
func (d *Decoder) Uint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

// Int reads a zig-zag encoded signed value.
func (d *Decoder) Int() (int64, error) {
	u, err := d.Uint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// Bool reads a boolean varint value.
func (d *Decoder) Bool() (bool, error) {
	u, err := d.Uint()
	return u != 0, err
}

// Double reads a fixed64 float.
func (d *Decoder) Double() (float64, error) {
	if d.off+8 > len(d.buf) {
		return 0, fmt.Errorf("wire: truncated fixed64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v, nil
}

// Float reads a fixed32 float.
func (d *Decoder) Float() (float32, error) {
	if d.off+4 > len(d.buf) {
		return 0, fmt.Errorf("wire: truncated fixed32")
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(d.buf[d.off:]))
	d.off += 4
	return v, nil
}

// Bytes reads a length-delimited field. The returned slice aliases the
// decoder's buffer.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.Uint()
	if err != nil {
		return nil, err
	}
	if int64(n) > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	if d.off+int(n) > len(d.buf) {
		return nil, fmt.Errorf("wire: truncated bytes field: want %d, have %d", n, len(d.buf)-d.off)
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// StringVal reads a length-delimited field as a string.
func (d *Decoder) StringVal() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// Skip discards a field of the given wire type.
func (d *Decoder) Skip(wt WireType) error {
	switch wt {
	case TVarint:
		_, err := d.Uint()
		return err
	case TFixed64:
		_, err := d.Double()
		return err
	case TFixed32:
		_, err := d.Float()
		return err
	case TBytes:
		_, err := d.Bytes()
		return err
	}
	return fmt.Errorf("wire: unknown wire type %d", wt)
}

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if int64(len(payload)) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
