package wire

import (
	"encoding/binary"
	"io"
	"math/bits"
	"sync"
)

// Frame buffer pool. The transport hot loops (stream frames, collective
// chunks, serving requests) read one frame per message; without reuse every
// frame is a fresh allocation sized by the peer. Buffers are pooled in
// power-of-two size classes behind a plain mutex-guarded free list rather
// than sync.Pool: Put of a []byte through an interface forces the slice
// header to escape, which would put an allocation back on the very path the
// pool exists to clear.
//
// Ownership contract: GetBuf transfers ownership to the caller; PutBuf
// transfers it back. A buffer must not be touched after PutBuf, and PutBuf
// must be called at most once per GetBuf. Buffers from elsewhere may be
// handed to PutBuf too — odd capacities are simply dropped.
const (
	minBufClass = 8  // 256 B: below this pooling costs more than malloc
	maxBufClass = 22 // 4 MiB: above this, buffers are left to the GC
	maxPerClass = 64 // bound per-class retention at a few hundred MiB total
)

var bufClasses [maxBufClass + 1]struct {
	mu   sync.Mutex
	free [][]byte
}

// GetBuf returns a buffer of length n with unspecified contents, drawn from
// the pool when a large-enough buffer is available.
func GetBuf(n int) []byte {
	c := sizeClass(n)
	if c > maxBufClass {
		return make([]byte, n)
	}
	bc := &bufClasses[c]
	bc.mu.Lock()
	if k := len(bc.free); k > 0 {
		b := bc.free[k-1]
		bc.free[k-1] = nil
		bc.free = bc.free[:k-1]
		bc.mu.Unlock()
		return b[:n]
	}
	bc.mu.Unlock()
	return make([]byte, n, 1<<c)
}

// PutBuf returns a buffer obtained from GetBuf (or any buffer the caller is
// done with) to the pool. The caller must not use b afterwards.
func PutBuf(b []byte) {
	c := capClass(cap(b))
	if c < 0 {
		return
	}
	bc := &bufClasses[c]
	bc.mu.Lock()
	if len(bc.free) < maxPerClass {
		bc.free = append(bc.free, b[:0])
	}
	bc.mu.Unlock()
}

// sizeClass returns the smallest class whose buffers hold n bytes.
func sizeClass(n int) int {
	if n <= 1<<minBufClass {
		return minBufClass
	}
	return bits.Len(uint(n - 1))
}

// capClass returns the largest class a buffer of capacity c can serve, or -1
// if it is too small to pool.
func capClass(c int) int {
	k := bits.Len(uint(c)) - 1
	if k < minBufClass {
		return -1
	}
	if k > maxBufClass {
		return maxBufClass
	}
	return k
}

// ReadFramePooled reads one length-prefixed frame into a pooled buffer. The
// caller owns the result and should hand it back with PutBuf once consumed.
func ReadFramePooled(r io.Reader) ([]byte, error) {
	n, err := readFrameLen(r)
	if err != nil {
		return nil, err
	}
	buf := GetBuf(n)
	if _, err := io.ReadFull(r, buf); err != nil {
		PutBuf(buf)
		return nil, err
	}
	return buf, nil
}

// ReadFrameInto reads one length-prefixed frame, reusing buf's capacity when
// it suffices; the result aliases buf only in that case.
func ReadFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	n, err := readFrameLen(r)
	if err != nil {
		return nil, err
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	_, err = io.ReadFull(r, buf)
	return buf, err
}

// readFrameLen reads the 4-byte length prefix. The scratch comes from the
// buffer pool: a stack array would escape to the heap through the
// io.ReadFull interface call, putting an allocation on every frame.
func readFrameLen(r io.Reader) (int, error) {
	hdr := GetBuf(4)
	_, err := io.ReadFull(r, hdr)
	n := binary.BigEndian.Uint32(hdr)
	PutBuf(hdr)
	if err != nil {
		return 0, err
	}
	if int64(n) > MaxMessageSize {
		return 0, ErrMessageTooLarge
	}
	return int(n), nil
}
