package ops

import (
	"math"
	"testing"
	"testing/quick"

	"tfhpc/internal/tensor"
)

// naiveMatMul is the reference O(n³) triple loop.
func naiveMatMul(a, b *tensor.Tensor) *tensor.Tensor {
	m, k := a.Shape()[0], a.Shape()[1]
	n := b.Shape()[1]
	out := tensor.New(tensor.Float64, m, n)
	av, bv, cv := a.F64(), b.F64(), out.F64()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += av[i*k+kk] * bv[kk*n+j]
			}
			cv[i*n+j] = s
		}
	}
	return out
}

func randMat(seed uint64, m, n int) *tensor.Tensor {
	return tensor.RandomUniform(tensor.Float64, seed, m, n)
}

func TestMatMulMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {17, 31, 13}, {64, 32, 48}} {
		a := randMat(1, dims[0], dims[1])
		b := randMat(2, dims[1], dims[2])
		got := run(t, "MatMul", nil, a, b)
		want := naiveMatMul(a, b)
		if !got.ApproxEqual(want, 1e-10) {
			t.Fatalf("MatMul %v mismatch", dims)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	n := 16
	eye := tensor.New(tensor.Float64, n, n)
	for i := 0; i < n; i++ {
		eye.F64()[i*n+i] = 1
	}
	a := randMat(3, n, n)
	got := run(t, "MatMul", nil, a, eye)
	if !got.ApproxEqual(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	got = run(t, "MatMul", nil, eye, a)
	if !got.ApproxEqual(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulTransposeAttrs(t *testing.T) {
	a := randMat(4, 6, 3)
	b := randMat(5, 6, 4) // use Aᵀ·B with A 6x3 -> 3x6
	got := run(t, "MatMul", map[string]any{"transpose_a": true}, a, b)
	at := run(t, "Transpose", nil, a)
	want := run(t, "MatMul", nil, at, b)
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatal("transpose_a mismatch")
	}
	c := randMat(6, 4, 3)
	got = run(t, "MatMul", map[string]any{"transpose_b": true}, a.Clone(), c)
	// a is 6x3, cᵀ is 3x4 -> 6x4
	ct := run(t, "Transpose", nil, c)
	want = run(t, "MatMul", nil, a, ct)
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatal("transpose_b mismatch")
	}
}

// Property: (AB)ᵀ == BᵀAᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := randMat(seed+1, m, k)
		b := randMat(seed+2, k, n)
		ab, err := Run("MatMul", &Context{}, []*tensor.Tensor{a, b})
		if err != nil {
			return false
		}
		abT, _ := Run("Transpose", &Context{}, []*tensor.Tensor{ab})
		bT, _ := Run("Transpose", &Context{}, []*tensor.Tensor{b})
		aT, _ := Run("Transpose", &Context{}, []*tensor.Tensor{a})
		want, err := Run("MatMul", &Context{}, []*tensor.Tensor{bT, aT})
		if err != nil {
			return false
		}
		return abT.ApproxEqual(want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: tiled matmul equals direct matmul — the correctness core of the
// paper's tiled application.
func TestTiledMatMulEqualsDirect(t *testing.T) {
	n, tile := 32, 8
	a := randMat(7, n, n)
	b := randMat(8, n, n)
	want := run(t, "MatMul", nil, a, b)

	tiles := n / tile
	acc := tensor.New(tensor.Float64, n, n)
	getTile := func(src *tensor.Tensor, ti, tj int) *tensor.Tensor {
		out := tensor.New(tensor.Float64, tile, tile)
		for i := 0; i < tile; i++ {
			copy(out.F64()[i*tile:(i+1)*tile],
				src.F64()[(ti*tile+i)*n+tj*tile:(ti*tile+i)*n+tj*tile+tile])
		}
		return out
	}
	for ti := 0; ti < tiles; ti++ {
		for tj := 0; tj < tiles; tj++ {
			for tk := 0; tk < tiles; tk++ {
				p := run(t, "MatMul", nil, getTile(a, ti, tk), getTile(b, tk, tj))
				for i := 0; i < tile; i++ {
					for j := 0; j < tile; j++ {
						acc.F64()[(ti*tile+i)*n+tj*tile+j] += p.F64()[i*tile+j]
					}
				}
			}
		}
	}
	if !acc.ApproxEqual(want, 1e-9) {
		t.Fatal("tiled != direct")
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := randMat(1, 2, 3)
	b := randMat(2, 4, 2)
	if runErr(t, "MatMul", nil, a, b) == nil {
		t.Fatal("inner dim mismatch should error")
	}
	v := tensor.New(tensor.Float64, 3)
	if runErr(t, "MatMul", nil, a, v) == nil {
		t.Fatal("rank mismatch should error")
	}
}

func TestMatMulFloat32(t *testing.T) {
	a := tensor.RandomUniform(tensor.Float32, 1, 8, 8)
	b := tensor.RandomUniform(tensor.Float32, 2, 8, 8)
	got := run(t, "MatMul", nil, a, b)
	// Check one element against a float64 recomputation.
	var want float64
	for k := 0; k < 8; k++ {
		want += float64(a.F32()[k]) * float64(b.F32()[k*8])
	}
	if math.Abs(float64(got.F32()[0])-want) > 1e-4 {
		t.Fatalf("f32 MatMul[0,0] = %v, want %v", got.F32()[0], want)
	}
}

func TestMatVec(t *testing.T) {
	a := randMat(9, 5, 3)
	x := tensor.RandomUniform(tensor.Float64, 10, 3)
	got := run(t, "MatVec", nil, a, x)
	if !got.Shape().Equal(tensor.Shape{5}) {
		t.Fatalf("shape %v", got.Shape())
	}
	for i := 0; i < 5; i++ {
		var want float64
		for j := 0; j < 3; j++ {
			want += a.F64()[i*3+j] * x.F64()[j]
		}
		if math.Abs(got.F64()[i]-want) > 1e-12 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, got.F64()[i], want)
		}
	}
	if runErr(t, "MatVec", nil, a, tensor.New(tensor.Float64, 4)) == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestMatVecEqualsMatMulColumn(t *testing.T) {
	a := randMat(11, 16, 16)
	x := tensor.RandomUniform(tensor.Float64, 12, 16)
	xm, _ := x.Reshape(16, 1)
	viaMM := run(t, "MatMul", nil, a, xm)
	viaMV := run(t, "MatVec", nil, a, x)
	flat, _ := viaMM.Reshape(16)
	if !flat.ApproxEqual(viaMV, 1e-12) {
		t.Fatal("MatVec disagrees with MatMul")
	}
}

func TestTransposeInvolution(t *testing.T) {
	a := randMat(13, 7, 11)
	tt := run(t, "Transpose", nil, run(t, "Transpose", nil, a))
	if !tt.Equal(a) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}
