package ops

import (
	"fmt"
	"math"

	"tfhpc/internal/gemm"
	"tfhpc/internal/tensor"
)

func init() {
	Register(&OpDef{Name: "Add", MinInputs: 2, MaxInputs: 2, GPUCapable: true, Kernel: addKernel})
	Register(&OpDef{Name: "Sub", MinInputs: 2, MaxInputs: 2, GPUCapable: true, Kernel: subKernel})
	Register(&OpDef{Name: "Mul", MinInputs: 2, MaxInputs: 2, GPUCapable: true, Kernel: mulKernel})
	Register(&OpDef{Name: "Div", MinInputs: 2, MaxInputs: 2, GPUCapable: true, Kernel: divKernel})
	Register(&OpDef{Name: "Neg", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: negKernel})
	Register(&OpDef{Name: "Sqrt", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: sqrtKernel})
	Register(&OpDef{Name: "AddN", MinInputs: 1, MaxInputs: -1, GPUCapable: true, Kernel: addNKernel})
	Register(&OpDef{Name: "Scale", MinInputs: 2, MaxInputs: 2, GPUCapable: true, Kernel: scaleKernel})
	Register(&OpDef{Name: "Axpy", MinInputs: 3, MaxInputs: 3, GPUCapable: true, Kernel: axpyKernel})
	Register(&OpDef{Name: "Dot", MinInputs: 2, MaxInputs: 2, GPUCapable: true, Kernel: dotKernel})
	Register(&OpDef{Name: "Sum", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: sumKernel})
	Register(&OpDef{Name: "Cast", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: castKernel})
}

func sameShapeDType(a, b *tensor.Tensor) error {
	if a.DType() != b.DType() {
		return fmt.Errorf("dtype mismatch: %v vs %v", a.DType(), b.DType())
	}
	if !a.Shape().Equal(b.Shape()) {
		return fmt.Errorf("shape mismatch: %v vs %v", a.Shape(), b.Shape())
	}
	return nil
}

// binary applies an elementwise combiner over two same-shaped tensors.
func binary(a, b *tensor.Tensor,
	f32 func(x, y float32) float32,
	f64 func(x, y float64) float64,
	c128 func(x, y complex128) complex128,
	i64 func(x, y int64) int64,
) (*tensor.Tensor, error) {
	if err := sameShapeDType(a, b); err != nil {
		return nil, err
	}
	out := tensor.New(a.DType(), a.Shape()...)
	switch a.DType() {
	case tensor.Float32:
		x, y, z := a.F32(), b.F32(), out.F32()
		parallelFor(len(z), 1<<14, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = f32(x[i], y[i])
			}
		})
	case tensor.Float64:
		x, y, z := a.F64(), b.F64(), out.F64()
		parallelFor(len(z), 1<<14, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = f64(x[i], y[i])
			}
		})
	case tensor.Complex128:
		x, y, z := a.C128(), b.C128(), out.C128()
		parallelFor(len(z), 1<<13, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = c128(x[i], y[i])
			}
		})
	case tensor.Int64:
		x, y, z := a.I64(), b.I64(), out.I64()
		for i := range z {
			z[i] = i64(x[i], y[i])
		}
	default:
		return nil, fmt.Errorf("unsupported dtype %v", a.DType())
	}
	return out, nil
}

func addKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return binary(in[0], in[1],
		func(x, y float32) float32 { return x + y },
		func(x, y float64) float64 { return x + y },
		func(x, y complex128) complex128 { return x + y },
		func(x, y int64) int64 { return x + y })
}

func subKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return binary(in[0], in[1],
		func(x, y float32) float32 { return x - y },
		func(x, y float64) float64 { return x - y },
		func(x, y complex128) complex128 { return x - y },
		func(x, y int64) int64 { return x - y })
}

func mulKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return binary(in[0], in[1],
		func(x, y float32) float32 { return x * y },
		func(x, y float64) float64 { return x * y },
		func(x, y complex128) complex128 { return x * y },
		func(x, y int64) int64 { return x * y })
}

func divKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return binary(in[0], in[1],
		func(x, y float32) float32 { return x / y },
		func(x, y float64) float64 { return x / y },
		func(x, y complex128) complex128 { return x / y },
		func(x, y int64) int64 { return x / y })
}

func negKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a := in[0]
	out := tensor.New(a.DType(), a.Shape()...)
	switch a.DType() {
	case tensor.Float32:
		x, z := a.F32(), out.F32()
		for i := range z {
			z[i] = -x[i]
		}
	case tensor.Float64:
		x, z := a.F64(), out.F64()
		for i := range z {
			z[i] = -x[i]
		}
	case tensor.Complex128:
		x, z := a.C128(), out.C128()
		for i := range z {
			z[i] = -x[i]
		}
	case tensor.Int64:
		x, z := a.I64(), out.I64()
		for i := range z {
			z[i] = -x[i]
		}
	default:
		return nil, fmt.Errorf("unsupported dtype %v", a.DType())
	}
	return out, nil
}

func sqrtKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a := in[0]
	out := tensor.New(a.DType(), a.Shape()...)
	switch a.DType() {
	case tensor.Float32:
		x, z := a.F32(), out.F32()
		for i := range z {
			z[i] = float32(math.Sqrt(float64(x[i])))
		}
	case tensor.Float64:
		x, z := a.F64(), out.F64()
		for i := range z {
			z[i] = math.Sqrt(x[i])
		}
	default:
		return nil, fmt.Errorf("Sqrt: unsupported dtype %v", a.DType())
	}
	return out, nil
}

func addNKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	acc := in[0].Clone()
	for _, t := range in[1:] {
		if err := sameShapeDType(acc, t); err != nil {
			return nil, err
		}
		switch acc.DType() {
		case tensor.Float32:
			a, b := acc.F32(), t.F32()
			for i := range a {
				a[i] += b[i]
			}
		case tensor.Float64:
			a, b := acc.F64(), t.F64()
			for i := range a {
				a[i] += b[i]
			}
		case tensor.Complex128:
			a, b := acc.C128(), t.C128()
			for i := range a {
				a[i] += b[i]
			}
		case tensor.Int64:
			a, b := acc.I64(), t.I64()
			for i := range a {
				a[i] += b[i]
			}
		default:
			return nil, fmt.Errorf("AddN: unsupported dtype %v", acc.DType())
		}
	}
	return acc, nil
}

// Scale multiplies tensor in[1] by scalar in[0] (the scalar's dtype must
// match or be the real part type of a complex tensor).
func scaleKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	s, a := in[0], in[1]
	if s.NumElements() != 1 {
		return nil, fmt.Errorf("Scale: first input must be a scalar, got shape %v", s.Shape())
	}
	out := tensor.New(a.DType(), a.Shape()...)
	switch a.DType() {
	case tensor.Float32:
		alpha := float32(s.ScalarFloat())
		x, z := a.F32(), out.F32()
		parallelFor(len(z), 1<<14, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = alpha * x[i]
			}
		})
	case tensor.Float64:
		alpha := s.ScalarFloat()
		x, z := a.F64(), out.F64()
		parallelFor(len(z), 1<<14, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = alpha * x[i]
			}
		})
	case tensor.Complex128:
		var alpha complex128
		if s.DType() == tensor.Complex128 {
			alpha = s.C128()[0]
		} else {
			alpha = complex(s.ScalarFloat(), 0)
		}
		x, z := a.C128(), out.C128()
		for i := range z {
			z[i] = alpha * x[i]
		}
	default:
		return nil, fmt.Errorf("Scale: unsupported dtype %v", a.DType())
	}
	return out, nil
}

// Axpy computes alpha*x + y in one fused pass: the CG solver's workhorse.
func axpyKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	s, x, y := in[0], in[1], in[2]
	if s.NumElements() != 1 {
		return nil, fmt.Errorf("Axpy: first input must be a scalar")
	}
	if err := sameShapeDType(x, y); err != nil {
		return nil, err
	}
	out := tensor.New(x.DType(), x.Shape()...)
	switch x.DType() {
	case tensor.Float32:
		gemm.Axpy32(float32(s.ScalarFloat()), x.F32(), y.F32(), out.F32())
	case tensor.Float64:
		gemm.Axpy64(s.ScalarFloat(), x.F64(), y.F64(), out.F64())
	default:
		return nil, fmt.Errorf("Axpy: unsupported dtype %v", x.DType())
	}
	return out, nil
}

func dotKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a, b := in[0], in[1]
	if err := sameShapeDType(a, b); err != nil {
		return nil, err
	}
	switch a.DType() {
	case tensor.Float32:
		// gemm.Dot32 accumulates in double for stability.
		return tensor.ScalarF32(float32(gemm.Dot32(a.F32(), b.F32()))), nil
	case tensor.Float64:
		return tensor.ScalarF64(gemm.Dot64(a.F64(), b.F64())), nil
	case tensor.Complex128:
		x, y := a.C128(), b.C128()
		var s complex128
		for i := range x {
			s += x[i] * y[i]
		}
		return tensor.ScalarC128(s), nil
	}
	return nil, fmt.Errorf("Dot: unsupported dtype %v", a.DType())
}

func sumKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a := in[0]
	switch a.DType() {
	case tensor.Float32:
		var s float64
		for _, v := range a.F32() {
			s += float64(v)
		}
		return tensor.ScalarF32(float32(s)), nil
	case tensor.Float64:
		var s float64
		for _, v := range a.F64() {
			s += v
		}
		return tensor.ScalarF64(s), nil
	case tensor.Complex128:
		var s complex128
		for _, v := range a.C128() {
			s += v
		}
		return tensor.ScalarC128(s), nil
	case tensor.Int64:
		var s int64
		for _, v := range a.I64() {
			s += v
		}
		return tensor.ScalarI64(s), nil
	}
	return nil, fmt.Errorf("Sum: unsupported dtype %v", a.DType())
}

// Cast converts between real float dtypes (attr "dtype" is the target).
func castKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a := in[0]
	target := ctx.DTypeAttr("dtype", a.DType())
	if target == a.DType() {
		return a.Clone(), nil
	}
	out := tensor.New(target, a.Shape()...)
	get := func(i int) float64 {
		switch a.DType() {
		case tensor.Float32:
			return float64(a.F32()[i])
		case tensor.Float64:
			return a.F64()[i]
		case tensor.Int32:
			return float64(a.I32()[i])
		case tensor.Int64:
			return float64(a.I64()[i])
		}
		return math.NaN()
	}
	if !a.DType().IsFloat() && a.DType() != tensor.Int32 && a.DType() != tensor.Int64 {
		return nil, fmt.Errorf("Cast: unsupported source dtype %v", a.DType())
	}
	n := a.NumElements()
	switch target {
	case tensor.Float32:
		z := out.F32()
		for i := 0; i < n; i++ {
			z[i] = float32(get(i))
		}
	case tensor.Float64:
		z := out.F64()
		for i := 0; i < n; i++ {
			z[i] = get(i)
		}
	case tensor.Int64:
		z := out.I64()
		for i := 0; i < n; i++ {
			z[i] = int64(get(i))
		}
	case tensor.Complex128:
		z := out.C128()
		for i := 0; i < n; i++ {
			z[i] = complex(get(i), 0)
		}
	default:
		return nil, fmt.Errorf("Cast: unsupported target dtype %v", target)
	}
	return out, nil
}
