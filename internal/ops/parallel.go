package ops

import (
	"runtime"
	"sync"
)

// maxWorkers bounds kernel parallelism to the host's capacity.
var maxWorkers = runtime.NumCPU()

// parallelFor splits [0, n) into contiguous chunks of at least grain
// iterations and runs body(lo, hi) concurrently across them. Small ranges
// run inline to avoid goroutine overhead.
func parallelFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := n / grain
	if chunks > maxWorkers {
		chunks = maxWorkers
	}
	if chunks <= 1 {
		body(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
