package ops

import "tfhpc/internal/gemm"

// parallelFor splits [0, n) into contiguous chunks of at least grain
// iterations and runs body(lo, hi) concurrently on the persistent worker
// pool shared with the GEMM engine (no goroutines are spawned per call).
// The parallelism bound follows runtime.GOMAXPROCS(0) at call time, so
// tests and operators can bound kernel parallelism.
func parallelFor(n, grain int, body func(lo, hi int)) {
	gemm.ParallelFor(n, grain, body)
}
