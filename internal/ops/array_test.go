package ops

import (
	"testing"

	"tfhpc/internal/tensor"
)

func TestConstAndIdentity(t *testing.T) {
	v := tensor.FromF64(tensor.Shape{2}, []float64{1, 2})
	got := run(t, "Const", map[string]any{"value": v})
	if !got.Equal(v) {
		t.Fatal("Const mismatch")
	}
	if runErr(t, "Const", nil) == nil {
		t.Fatal("Const without value should error")
	}
	id := run(t, "Identity", nil, v)
	if !id.Equal(v) {
		t.Fatal("Identity mismatch")
	}
}

func TestPlaceholderUnfedErrors(t *testing.T) {
	if runErr(t, "Placeholder", map[string]any{"dtype": tensor.Float32}) == nil {
		t.Fatal("unfed placeholder must error")
	}
}

func TestRandomUniformFreshPerRun(t *testing.T) {
	attrs := map[string]any{"dtype": tensor.Float64, "shape": tensor.Shape{16}, "seed": 3}
	a := run(t, "RandomUniform", attrs)
	b := run(t, "RandomUniform", attrs)
	if a.Equal(b) {
		t.Fatal("successive draws should differ (per-node counter)")
	}
	for _, v := range a.F64() {
		if v < 0 || v >= 1 {
			t.Fatalf("out of range: %v", v)
		}
	}
}

func TestZerosAndFill(t *testing.T) {
	z := run(t, "Zeros", map[string]any{"dtype": tensor.Float64, "shape": tensor.Shape{3}})
	for _, v := range z.F64() {
		if v != 0 {
			t.Fatal("Zeros not zero")
		}
	}
	f := run(t, "Fill", map[string]any{"dtype": tensor.Float64, "shape": tensor.Shape{3}, "value": 2.5})
	for _, v := range f.F64() {
		if v != 2.5 {
			t.Fatal("Fill wrong")
		}
	}
	fc := run(t, "Fill", map[string]any{"dtype": tensor.Complex128, "shape": tensor.Shape{2}, "value": 1.0})
	if fc.C128()[0] != 1 {
		t.Fatal("complex Fill wrong")
	}
}

func TestReshapeOp(t *testing.T) {
	a := tensor.FromF64(tensor.Shape{2, 3}, []float64{1, 2, 3, 4, 5, 6})
	got := run(t, "Reshape", map[string]any{"shape": tensor.Shape{3, 2}}, a)
	if !got.Shape().Equal(tensor.Shape{3, 2}) {
		t.Fatalf("shape %v", got.Shape())
	}
	if runErr(t, "Reshape", map[string]any{"shape": tensor.Shape{4}}, a) == nil {
		t.Fatal("bad reshape should error")
	}
}

func TestSliceRows(t *testing.T) {
	a := tensor.FromF64(tensor.Shape{4, 2}, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	got := run(t, "SliceRows", map[string]any{"begin": 1, "size": 2}, a)
	if !got.Shape().Equal(tensor.Shape{2, 2}) {
		t.Fatalf("shape %v", got.Shape())
	}
	if got.F64()[0] != 3 || got.F64()[3] != 6 {
		t.Fatalf("data %v", got.F64())
	}
	// size -1 = to the end
	rest := run(t, "SliceRows", map[string]any{"begin": 2}, a)
	if !rest.Shape().Equal(tensor.Shape{2, 2}) || rest.F64()[0] != 5 {
		t.Fatal("open-ended slice wrong")
	}
	if runErr(t, "SliceRows", map[string]any{"begin": 3, "size": 2}, a) == nil {
		t.Fatal("out of range slice should error")
	}
}

func TestConcatRows(t *testing.T) {
	a := tensor.FromF64(tensor.Shape{1, 2}, []float64{1, 2})
	b := tensor.FromF64(tensor.Shape{2, 2}, []float64{3, 4, 5, 6})
	got := run(t, "ConcatRows", nil, a, b)
	if !got.Shape().Equal(tensor.Shape{3, 2}) {
		t.Fatalf("shape %v", got.Shape())
	}
	if got.F64()[0] != 1 || got.F64()[5] != 6 {
		t.Fatalf("data %v", got.F64())
	}
	// Split-and-concat round trip.
	top := run(t, "SliceRows", map[string]any{"begin": 0, "size": 1}, got)
	bottom := run(t, "SliceRows", map[string]any{"begin": 1, "size": 2}, got)
	rt := run(t, "ConcatRows", nil, top, bottom)
	if !rt.Equal(got) {
		t.Fatal("slice+concat should round trip")
	}
	c := tensor.FromF64(tensor.Shape{1, 3}, []float64{1, 2, 3})
	if runErr(t, "ConcatRows", nil, a, c) == nil {
		t.Fatal("mismatched trailing dims should error")
	}
}
