package ops

import (
	"fmt"

	"tfhpc/internal/tensor"
)

func init() {
	Register(&OpDef{Name: "Variable", MinInputs: 0, MaxInputs: 0, Stateful: true, Kernel: variableKernel})
	Register(&OpDef{Name: "Assign", MinInputs: 1, MaxInputs: 1, Stateful: true, Kernel: assignKernel})
	Register(&OpDef{Name: "AssignAdd", MinInputs: 1, MaxInputs: 1, Stateful: true, Kernel: assignAddKernel})
	Register(&OpDef{Name: "QueueEnqueue", MinInputs: 1, MaxInputs: -1, Stateful: true, Kernel: enqueueKernel})
	Register(&OpDef{Name: "QueueDequeue", MinInputs: 0, MaxInputs: 0, Stateful: true, Kernel: dequeueKernel})
	Register(&OpDef{Name: "DequeueComponent", MinInputs: 1, MaxInputs: 1, Stateful: true, Kernel: dequeueComponentKernel})
	Register(&OpDef{Name: "QueueClose", MinInputs: 0, MaxInputs: 0, Stateful: true, Kernel: queueCloseKernel})
	Register(&OpDef{Name: "QueueSize", MinInputs: 0, MaxInputs: 0, Stateful: true, Kernel: queueSizeKernel})
}

func (c *Context) variable() (VariableHandle, string, error) {
	name := c.StringAttr("var_name", "")
	if name == "" {
		return nil, "", fmt.Errorf("missing %q attribute", "var_name")
	}
	if c.Resources == nil {
		return nil, "", fmt.Errorf("no resource manager in this execution context")
	}
	v, err := c.Resources.Variable(name)
	return v, name, err
}

func (c *Context) queue() (QueueHandle, string, error) {
	name := c.StringAttr("queue", "")
	if name == "" {
		return nil, "", fmt.Errorf("missing %q attribute", "queue")
	}
	if c.Resources == nil {
		return nil, "", fmt.Errorf("no resource manager in this execution context")
	}
	q, err := c.Resources.Queue(name, c.IntAttr("capacity", 0))
	return q, name, err
}

// variableKernel reads the variable's current value (tf.Variable read).
func variableKernel(ctx *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	v, name, err := ctx.variable()
	if err != nil {
		return nil, err
	}
	t, err := v.Read()
	if err != nil {
		return nil, fmt.Errorf("variable %q: %w", name, err)
	}
	return t, nil
}

// assignKernel overwrites the variable and yields the new value.
func assignKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	v, name, err := ctx.variable()
	if err != nil {
		return nil, err
	}
	if err := v.Assign(in[0]); err != nil {
		return nil, fmt.Errorf("variable %q: %w", name, err)
	}
	return in[0], nil
}

// assignAddKernel accumulates into the variable and yields the new value —
// the operation at the centre of the STREAM benchmark.
func assignAddKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	v, name, err := ctx.variable()
	if err != nil {
		return nil, err
	}
	if err := v.AssignAdd(in[0]); err != nil {
		return nil, fmt.Errorf("variable %q: %w", name, err)
	}
	t, err := v.Read()
	if err != nil {
		return nil, fmt.Errorf("variable %q: %w", name, err)
	}
	return t, nil
}

// enqueueKernel pushes its input tuple into the named queue (blocking while
// full) and yields a dummy scalar.
func enqueueKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	q, name, err := ctx.queue()
	if err != nil {
		return nil, err
	}
	if err := q.Enqueue(in); err != nil {
		return nil, fmt.Errorf("queue %q: %w", name, err)
	}
	return tensor.ScalarI64(int64(len(in))), nil
}

// dequeueKernel pops one tuple (blocking while empty), stores the whole
// tuple in per-Run scratch for DequeueComponent readers, and yields
// component 0.
func dequeueKernel(ctx *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	q, name, err := ctx.queue()
	if err != nil {
		return nil, err
	}
	item, err := q.Dequeue()
	if err != nil {
		return nil, fmt.Errorf("queue %q: %w", name, err)
	}
	if len(item) == 0 {
		return nil, fmt.Errorf("queue %q: empty tuple", name)
	}
	if ctx.Scratch != nil {
		ctx.Scratch.Set(ctx.NodeName, item)
	}
	return item[0], nil
}

// dequeueComponentKernel reads tuple component "index" of its input
// QueueDequeue node from scratch.
func dequeueComponentKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	idx := ctx.IntAttr("index", 0)
	if len(ctx.InputNames) != 1 {
		return nil, fmt.Errorf("DequeueComponent: need the dequeue node as sole input")
	}
	if ctx.Scratch == nil {
		return nil, fmt.Errorf("DequeueComponent: no scratch space")
	}
	tuple, ok := ctx.Scratch.Get(ctx.InputNames[0])
	if !ok {
		return nil, fmt.Errorf("DequeueComponent: input %q did not record a tuple", ctx.InputNames[0])
	}
	if idx < 0 || idx >= len(tuple) {
		return nil, fmt.Errorf("DequeueComponent: index %d out of %d components", idx, len(tuple))
	}
	return tuple[idx], nil
}

func queueCloseKernel(ctx *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	q, name, err := ctx.queue()
	if err != nil {
		return nil, err
	}
	if err := q.Close(); err != nil {
		return nil, fmt.Errorf("queue %q: %w", name, err)
	}
	return tensor.ScalarI64(0), nil
}

func queueSizeKernel(ctx *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	q, _, err := ctx.queue()
	if err != nil {
		return nil, err
	}
	return tensor.ScalarI64(int64(q.Size())), nil
}
