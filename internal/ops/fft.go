package ops

import (
	"fmt"
	"math"

	"tfhpc/internal/fft"
	"tfhpc/internal/tensor"
)

func init() {
	Register(&OpDef{Name: "FFT", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: fftKernel})
	Register(&OpDef{Name: "IFFT", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: ifftKernel})
	Register(&OpDef{Name: "FFT2D", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: fft2dKernel})
	Register(&OpDef{Name: "IFFT2D", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: ifft2dKernel})
	Register(&OpDef{Name: "RFFT", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: rfftKernel})
	Register(&OpDef{Name: "IRFFT", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: irfftKernel})
}

func fftKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return fftOp(in[0], false)
}

func ifftKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return fftOp(in[0], true)
}

// fftOp transforms a rank-1 signal, or a rank-2 batch of signals one per
// row (the shape the distributed-FFT workers feed), through the planned
// engine in internal/fft.
func fftOp(t *tensor.Tensor, inverse bool) (*tensor.Tensor, error) {
	if t.DType() != tensor.Complex128 {
		return nil, fmt.Errorf("FFT: need complex128, got %v", t.DType())
	}
	var n int
	switch t.Rank() {
	case 1:
		n = t.Shape()[0]
	case 2:
		n = t.Shape()[1]
	default:
		return nil, fmt.Errorf("FFT: need rank-1 signal or rank-2 batch, got %v", t.Shape())
	}
	p, err := fft.PlanFor(n)
	if err != nil {
		return nil, err
	}
	out := t.Clone()
	if err := p.TransformBatch(out.C128(), inverse); err != nil {
		return nil, err
	}
	return out, nil
}

func fft2dKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return fft2dOp(in[0], false)
}

func ifft2dKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return fft2dOp(in[0], true)
}

func fft2dOp(t *tensor.Tensor, inverse bool) (*tensor.Tensor, error) {
	if t.DType() != tensor.Complex128 {
		return nil, fmt.Errorf("FFT2D: need complex128, got %v", t.DType())
	}
	if t.Rank() != 2 {
		return nil, fmt.Errorf("FFT2D: need rank-2, got %v", t.Shape())
	}
	out := t.Clone()
	if err := fft.FFT2D(out.C128(), t.Shape()[0], t.Shape()[1], inverse); err != nil {
		return nil, err
	}
	return out, nil
}

// rfftKernel transforms a rank-1 real signal into its n/2+1 half-spectrum.
func rfftKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	t := in[0]
	if t.DType() != tensor.Float64 {
		return nil, fmt.Errorf("RFFT: need float64, got %v", t.DType())
	}
	if t.Rank() != 1 {
		return nil, fmt.Errorf("RFFT: need rank-1, got %v", t.Shape())
	}
	spec, err := fft.RFFT(t.F64())
	if err != nil {
		return nil, err
	}
	return tensor.FromC128(tensor.Shape{len(spec)}, spec), nil
}

// irfftKernel reconstructs the 2·(len-1) real samples behind a rank-1
// half-spectrum.
func irfftKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	t := in[0]
	if t.DType() != tensor.Complex128 {
		return nil, fmt.Errorf("IRFFT: need complex128, got %v", t.DType())
	}
	if t.Rank() != 1 || t.Shape()[0] < 2 {
		return nil, fmt.Errorf("IRFFT: need a rank-1 half-spectrum, got %v", t.Shape())
	}
	n := 2 * (t.Shape()[0] - 1)
	x, err := fft.IRFFT(t.C128(), n)
	if err != nil {
		return nil, err
	}
	return tensor.FromF64(tensor.Shape{n}, x), nil
}

// FFTInPlace runs a planned in-place transform over a (whose length must be
// a power of two), forward or inverse. The inverse includes the 1/n
// normalisation. This is the compatibility entry point older callers use;
// it routes through the engine's plan cache, so — unlike the seed's
// radix-2 loop — it does not allocate or recompute twiddle tables per call.
func FFTInPlace(a []complex128, inverse bool) error {
	if len(a) == 0 {
		return nil
	}
	p, err := fft.PlanFor(len(a))
	if err != nil {
		return err
	}
	return p.Transform(a, inverse)
}

// NaiveDFT computes the O(n²) discrete Fourier transform, used as the
// reference in tests and for the merger's correctness checks.
func NaiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}
