package ops

import (
	"fmt"
	"math"

	"tfhpc/internal/tensor"
)

func init() {
	Register(&OpDef{Name: "FFT", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: fftKernel})
	Register(&OpDef{Name: "IFFT", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: ifftKernel})
}

func fftKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return fftOp(in[0], false)
}

func ifftKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return fftOp(in[0], true)
}

func fftOp(t *tensor.Tensor, inverse bool) (*tensor.Tensor, error) {
	if t.DType() != tensor.Complex128 {
		return nil, fmt.Errorf("FFT: need complex128, got %v", t.DType())
	}
	if t.Rank() != 1 {
		return nil, fmt.Errorf("FFT: need rank-1, got %v", t.Shape())
	}
	out := t.Clone()
	if err := FFTInPlace(out.C128(), inverse); err != nil {
		return nil, err
	}
	return out, nil
}

// FFTInPlace runs an iterative radix-2 Cooley-Tukey transform over a (whose
// length must be a power of two), forward or inverse. The inverse includes
// the 1/n normalisation. Twiddle factors come from a precomputed table, so
// accuracy does not degrade with n as it would with repeated multiplication.
func FFTInPlace(a []complex128, inverse bool) error {
	n := len(a)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("FFT: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	// Root table: roots[k] = exp(sign * 2πi k / n), k in [0, n/2).
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	roots := make([]complex128, n/2)
	for k := range roots {
		ang := sign * 2 * math.Pi * float64(k) / float64(n)
		roots[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		stride := n / length
		for start := 0; start < n; start += length {
			for j := 0; j < half; j++ {
				w := roots[j*stride]
				u := a[start+j]
				v := a[start+j+half] * w
				a[start+j] = u + v
				a[start+j+half] = u - v
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= inv
		}
	}
	return nil
}

// NaiveDFT computes the O(n²) discrete Fourier transform, used as the
// reference in tests and for the merger's correctness checks.
func NaiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}
