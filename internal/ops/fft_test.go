package ops

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"tfhpc/internal/tensor"
)

func randComplex(seed uint64, n int) []complex128 {
	r := tensor.NewRNG(seed)
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randComplex(uint64(n), n)
		in := tensor.FromC128(tensor.Shape{n}, append([]complex128(nil), x...))
		got := run(t, "FFT", nil, in)
		want := NaiveDFT(x, false)
		for i := range want {
			if cmplx.Abs(got.C128()[i]-want[i]) > 1e-8*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, got.C128()[i], want[i])
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 1 << (1 + r.Intn(10))
		x := randComplex(seed, n)
		in := tensor.FromC128(tensor.Shape{n}, append([]complex128(nil), x...))
		fwd, err := Run("FFT", &Context{}, []*tensor.Tensor{in})
		if err != nil {
			return false
		}
		back, err := Run("IFFT", &Context{}, []*tensor.Tensor{fwd})
		if err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(back.C128()[i]-x[i]) > 1e-9*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Parseval: sum |x|² == (1/n) sum |X|².
func TestFFTParseval(t *testing.T) {
	n := 1024
	x := randComplex(99, n)
	in := tensor.FromC128(tensor.Shape{n}, append([]complex128(nil), x...))
	out := run(t, "FFT", nil, in)
	var eTime, eFreq float64
	for i := range x {
		eTime += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		v := out.C128()[i]
		eFreq += real(v)*real(v) + imag(v)*imag(v)
	}
	eFreq /= float64(n)
	if math.Abs(eTime-eFreq) > 1e-8*eTime {
		t.Fatalf("Parseval violated: %v vs %v", eTime, eFreq)
	}
}

// Linearity: FFT(a·x + y) == a·FFT(x) + FFT(y).
func TestFFTLinearity(t *testing.T) {
	n := 128
	x := randComplex(1, n)
	y := randComplex(2, n)
	alpha := complex(2.5, -1.0)
	combo := make([]complex128, n)
	for i := range combo {
		combo[i] = alpha*x[i] + y[i]
	}
	fc := run(t, "FFT", nil, tensor.FromC128(tensor.Shape{n}, combo))
	fx := run(t, "FFT", nil, tensor.FromC128(tensor.Shape{n}, x))
	fy := run(t, "FFT", nil, tensor.FromC128(tensor.Shape{n}, y))
	for i := 0; i < n; i++ {
		want := alpha*fx.C128()[i] + fy.C128()[i]
		if cmplx.Abs(fc.C128()[i]-want) > 1e-9*float64(n) {
			t.Fatalf("linearity broken at %d", i)
		}
	}
}

// An impulse transforms to all-ones; a constant transforms to an impulse.
func TestFFTKnownSignals(t *testing.T) {
	n := 16
	impulse := make([]complex128, n)
	impulse[0] = 1
	out := run(t, "FFT", nil, tensor.FromC128(tensor.Shape{n}, impulse))
	for i, v := range out.C128() {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
	ones := make([]complex128, n)
	for i := range ones {
		ones[i] = 1
	}
	out = run(t, "FFT", nil, tensor.FromC128(tensor.Shape{n}, ones))
	if cmplx.Abs(out.C128()[0]-complex(float64(n), 0)) > 1e-12 {
		t.Fatalf("DC term = %v, want %d", out.C128()[0], n)
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(out.C128()[i]) > 1e-10 {
			t.Fatalf("non-DC term %d = %v, want 0", i, out.C128()[i])
		}
	}
}

// TestFFTBatchedRank2 checks that a rank-2 input transforms each row
// independently — the batched shape the distributed-FFT workers feed.
func TestFFTBatchedRank2(t *testing.T) {
	const n, rows = 64, 3
	flat := randComplex(21, n*rows)
	in := tensor.FromC128(tensor.Shape{rows, n}, append([]complex128(nil), flat...))
	got := run(t, "FFT", nil, in)
	if !got.Shape().Equal(tensor.Shape{rows, n}) {
		t.Fatalf("batched FFT shape = %v", got.Shape())
	}
	for r := 0; r < rows; r++ {
		want := NaiveDFT(flat[r*n:(r+1)*n], false)
		for i := range want {
			if cmplx.Abs(got.C128()[r*n+i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("row %d bin %d: %v, want %v", r, i, got.C128()[r*n+i], want[i])
			}
		}
	}
}

// TestRFFTOp checks the half-spectrum op against the complex FFT of the
// same real signal, and the IRFFT round trip.
func TestRFFTOp(t *testing.T) {
	const n = 128
	r := tensor.NewRNG(31)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	in := tensor.FromF64(tensor.Shape{n}, append([]float64(nil), x...))
	spec := run(t, "RFFT", nil, in)
	if !spec.Shape().Equal(tensor.Shape{n/2 + 1}) {
		t.Fatalf("RFFT shape = %v, want [%d]", spec.Shape(), n/2+1)
	}
	full := make([]complex128, n)
	for i, v := range x {
		full[i] = complex(v, 0)
	}
	want := NaiveDFT(full, false)
	for k := 0; k <= n/2; k++ {
		if cmplx.Abs(spec.C128()[k]-want[k]) > 1e-10*float64(n) {
			t.Fatalf("RFFT[%d] = %v, want %v", k, spec.C128()[k], want[k])
		}
	}
	back := run(t, "IRFFT", nil, spec)
	if !back.Shape().Equal(tensor.Shape{n}) {
		t.Fatalf("IRFFT shape = %v, want [%d]", back.Shape(), n)
	}
	for i := range x {
		if math.Abs(back.F64()[i]-x[i]) > 1e-12 {
			t.Fatalf("IRFFT round trip off at %d", i)
		}
	}
	if runErr(t, "RFFT", nil, tensor.New(tensor.Complex128, n)) == nil {
		t.Fatal("RFFT should reject complex input")
	}
}

// TestFFT2DOp checks the 2-D op against row-then-column naive DFTs and the
// IFFT2D round trip.
func TestFFT2DOp(t *testing.T) {
	const rows, cols = 8, 16
	flat := randComplex(41, rows*cols)
	in := tensor.FromC128(tensor.Shape{rows, cols}, append([]complex128(nil), flat...))
	got := run(t, "FFT2D", nil, in)
	want := make([]complex128, len(flat))
	for i := 0; i < rows; i++ {
		copy(want[i*cols:(i+1)*cols], NaiveDFT(flat[i*cols:(i+1)*cols], false))
	}
	col := make([]complex128, rows)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			col[i] = want[i*cols+j]
		}
		for i, v := range NaiveDFT(col, false) {
			want[i*cols+j] = v
		}
	}
	for i := range want {
		if cmplx.Abs(got.C128()[i]-want[i]) > 1e-9*float64(len(flat)) {
			t.Fatalf("FFT2D[%d] = %v, want %v", i, got.C128()[i], want[i])
		}
	}
	back := run(t, "IFFT2D", nil, got)
	for i := range flat {
		if cmplx.Abs(back.C128()[i]-flat[i]) > 1e-12 {
			t.Fatalf("IFFT2D round trip off at %d", i)
		}
	}
	if runErr(t, "FFT2D", nil, tensor.New(tensor.Complex128, 8)) == nil {
		t.Fatal("FFT2D should reject rank-1 input")
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	in := tensor.New(tensor.Complex128, 12)
	if runErr(t, "FFT", nil, in) == nil {
		t.Fatal("non-power-of-two length should error")
	}
	if runErr(t, "FFT", nil, tensor.New(tensor.Float64, 8)) == nil {
		t.Fatal("non-complex input should error")
	}
}

// The Cooley-Tukey decimation-in-time identity that the paper's distributed
// FFT relies on: splitting into even/odd interleaved halves, transforming
// each, and merging with twiddle factors reproduces the full FFT.
func TestCooleyTukeyMergeIdentity(t *testing.T) {
	n := 256
	x := randComplex(5, n)
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	fe := NaiveDFT(even, false)
	fo := NaiveDFT(odd, false)
	merged := make([]complex128, n)
	for k := 0; k < n/2; k++ {
		tw := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		merged[k] = fe[k] + tw*fo[k]
		merged[k+n/2] = fe[k] - tw*fo[k]
	}
	want := run(t, "FFT", nil, tensor.FromC128(tensor.Shape{n}, append([]complex128(nil), x...)))
	for i := range merged {
		if cmplx.Abs(merged[i]-want.C128()[i]) > 1e-8*float64(n) {
			t.Fatalf("merge identity broken at %d", i)
		}
	}
}
