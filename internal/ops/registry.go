// Package ops defines the operation registry and the CPU kernel
// implementations behind every graph node type: dense linear algebra
// (blocked parallel GEMM, matvec, fused vector ops), FFT, random generation,
// array manipulation, and the stateful variable/queue operations that the
// paper's data-driven applications are built from.
//
// Kernels are pure host-CPU implementations. On a simulated GPU device the
// same kernel computes the numbers while the session's cost model charges
// virtual time according to the hardware model — so results are always real
// and timings are always faithful to the modelled platform.
package ops

import (
	"fmt"
	"sync"

	"tfhpc/internal/tensor"
)

// VariableHandle is the access interface stateful variable kernels use; the
// session supplies an implementation backed by internal/vars.
type VariableHandle interface {
	Read() (*tensor.Tensor, error)
	Assign(*tensor.Tensor) error
	AssignAdd(*tensor.Tensor) error
}

// QueueHandle is the access interface queue kernels use; implementations
// may be local (internal/queue) or remote proxies (internal/cluster).
type QueueHandle interface {
	Enqueue(item []*tensor.Tensor) error
	Dequeue() ([]*tensor.Tensor, error)
	Close() error
	Size() int
}

// CollectiveHandle is the access interface collective kernels use: one
// rank's membership of a communication group (internal/collective provides
// the ring/tree implementations over loopback or TCP transports). key
// isolates concurrent collectives that share the group; kernels default it
// to the node name, which symmetric per-rank graphs give identical
// spellings. Beyond the synchronous trio, handles expose the v2 engine:
// ReduceScatter/AllGatherV (sharded reductions and uneven gathers),
// AllReduceFused (posts ride the group's fusion buffer and coalesce into
// one pass), and StartAllReduce/JoinAllReduce (named async handles that
// may span session Run boundaries for double-buffered overlap).
type CollectiveHandle interface {
	Rank() int
	Size() int
	AllReduce(key string, t *tensor.Tensor, op string) (*tensor.Tensor, error)
	AllGather(key string, t *tensor.Tensor) (*tensor.Tensor, error)
	Broadcast(key string, t *tensor.Tensor, root int) (*tensor.Tensor, error)
	ReduceScatter(key string, t *tensor.Tensor, op string) (*tensor.Tensor, error)
	AllGatherV(key string, t *tensor.Tensor) (*tensor.Tensor, error)
	AllReduceFused(key string, t *tensor.Tensor, op string) (*tensor.Tensor, error)
	StartAllReduce(handle, key string, t *tensor.Tensor, op string) error
	JoinAllReduce(handle string) (*tensor.Tensor, error)
}

// Resources resolves named stateful objects for kernels. The session
// provides it, routing to local state or to remote tasks.
type Resources interface {
	Variable(name string) (VariableHandle, error)
	Queue(name string, capacity int) (QueueHandle, error)
	Collective(name string) (CollectiveHandle, error)
}

// Context carries everything a kernel may need beyond its input tensors.
type Context struct {
	// NodeName is the executing node's name.
	NodeName string
	// Attrs are the node's attributes.
	Attrs map[string]any
	// InputNames are the producing nodes' names, index-aligned with inputs.
	InputNames []string
	// Resources resolves variables and queues; nil in pure-functional runs.
	Resources Resources
	// Scratch is per-Run storage shared between nodes of one execution, used
	// by tuple-producing ops (queue dequeue) and their component readers.
	Scratch *Scratch
}

// Scratch is threadsafe per-Run storage for tuple hand-off between nodes
// (executors may run independent nodes concurrently).
type Scratch struct {
	mu sync.Mutex
	m  map[string][]*tensor.Tensor
}

// NewScratch returns empty per-Run storage.
func NewScratch() *Scratch {
	return &Scratch{m: make(map[string][]*tensor.Tensor)}
}

// Set records a tuple under the producing node's name.
func (s *Scratch) Set(node string, tuple []*tensor.Tensor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[node] = tuple
}

// Get fetches a tuple recorded by Set.
func (s *Scratch) Get(node string) ([]*tensor.Tensor, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.m[node]
	return t, ok
}

// IntAttr fetches an integer attribute with a default.
func (c *Context) IntAttr(key string, def int) int {
	switch v := c.Attrs[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	}
	return def
}

// FloatAttr fetches a float attribute with a default.
func (c *Context) FloatAttr(key string, def float64) float64 {
	if v, ok := c.Attrs[key].(float64); ok {
		return v
	}
	return def
}

// BoolAttr fetches a boolean attribute with a default.
func (c *Context) BoolAttr(key string, def bool) bool {
	if v, ok := c.Attrs[key].(bool); ok {
		return v
	}
	return def
}

// StringAttr fetches a string attribute with a default.
func (c *Context) StringAttr(key, def string) string {
	if v, ok := c.Attrs[key].(string); ok {
		return v
	}
	return def
}

// DTypeAttr fetches a dtype attribute with a default.
func (c *Context) DTypeAttr(key string, def tensor.DType) tensor.DType {
	if v, ok := c.Attrs[key].(tensor.DType); ok {
		return v
	}
	return def
}

// ShapeAttr fetches a shape attribute (nil if absent).
func (c *Context) ShapeAttr(key string) tensor.Shape {
	if v, ok := c.Attrs[key].(tensor.Shape); ok {
		return v
	}
	return nil
}

// Kernel computes a node's output from its inputs.
type Kernel func(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error)

// OpDef describes a registered operation.
type OpDef struct {
	Name      string
	MinInputs int
	MaxInputs int // -1 = variadic
	// GPUCapable marks ops the placer may pin to GPU devices (the paper's
	// simple placement: "if an operation supports both CPU and GPU
	// execution, GPU devices will be chosen").
	GPUCapable bool
	// Stateful ops touch variables/queues and are never pruned or cached.
	Stateful bool
	Kernel   Kernel
}

var registry = map[string]*OpDef{}

// Register adds an op definition; panics on duplicates (registration is an
// init-time activity).
func Register(def *OpDef) {
	if def.Name == "" || def.Kernel == nil {
		panic("ops: Register needs name and kernel")
	}
	if _, dup := registry[def.Name]; dup {
		panic(fmt.Sprintf("ops: duplicate op %q", def.Name))
	}
	registry[def.Name] = def
}

// Lookup finds an op definition.
func Lookup(name string) (*OpDef, error) {
	def, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("ops: unknown op %q", name)
	}
	return def, nil
}

// Names returns all registered op names (unsorted).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

// checkInputs validates arity before a kernel runs.
func checkInputs(def *OpDef, n int) error {
	if n < def.MinInputs {
		return fmt.Errorf("ops: %s needs at least %d inputs, got %d", def.Name, def.MinInputs, n)
	}
	if def.MaxInputs >= 0 && n > def.MaxInputs {
		return fmt.Errorf("ops: %s accepts at most %d inputs, got %d", def.Name, def.MaxInputs, n)
	}
	return nil
}

// Run executes the named op with arity checking — the single entry point
// used by executors.
func Run(name string, ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	def, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := checkInputs(def, len(in)); err != nil {
		return nil, err
	}
	out, err := def.Kernel(ctx, in)
	if err != nil {
		return nil, fmt.Errorf("ops: %s (node %q): %w", name, ctx.NodeName, err)
	}
	return out, nil
}
