package ops

import (
	"fmt"
	"testing"

	"tfhpc/internal/tensor"
)

// fakeResources is a minimal in-memory ops.Resources for kernel tests.
type fakeResources struct {
	vars   map[string]*fakeVar
	queues map[string]*fakeQueue
}

type fakeVar struct{ val *tensor.Tensor }

func (v *fakeVar) Read() (*tensor.Tensor, error) {
	if v.val == nil {
		return nil, fmt.Errorf("uninitialized")
	}
	return v.val, nil
}
func (v *fakeVar) Assign(t *tensor.Tensor) error { v.val = t.Clone(); return nil }
func (v *fakeVar) AssignAdd(t *tensor.Tensor) error {
	if v.val == nil {
		return fmt.Errorf("uninitialized")
	}
	a, b := v.val.F64(), t.F64()
	for i := range a {
		a[i] += b[i]
	}
	return nil
}

type fakeQueue struct{ items [][]*tensor.Tensor }

func (q *fakeQueue) Enqueue(item []*tensor.Tensor) error { q.items = append(q.items, item); return nil }
func (q *fakeQueue) Dequeue() ([]*tensor.Tensor, error) {
	if len(q.items) == 0 {
		return nil, fmt.Errorf("empty")
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, nil
}
func (q *fakeQueue) Close() error { return nil }
func (q *fakeQueue) Size() int    { return len(q.items) }

func newFakeResources() *fakeResources {
	return &fakeResources{vars: map[string]*fakeVar{}, queues: map[string]*fakeQueue{}}
}

func (r *fakeResources) Variable(name string) (VariableHandle, error) {
	v, ok := r.vars[name]
	if !ok {
		v = &fakeVar{}
		r.vars[name] = v
	}
	return v, nil
}

func (r *fakeResources) Queue(name string, _ int) (QueueHandle, error) {
	q, ok := r.queues[name]
	if !ok {
		q = &fakeQueue{}
		r.queues[name] = q
	}
	return q, nil
}

func (r *fakeResources) Collective(name string) (CollectiveHandle, error) {
	return nil, fmt.Errorf("no collective group %q", name)
}

func ctxWith(res Resources, node string, attrs map[string]any) *Context {
	return &Context{NodeName: node, Attrs: attrs, Resources: res, Scratch: NewScratch()}
}

func TestVariableAssignReadAddCycle(t *testing.T) {
	res := newFakeResources()
	attrs := map[string]any{"var_name": "w"}
	v := tensor.FromF64(tensor.Shape{2}, []float64{1, 2})

	if _, err := Run("Variable", ctxWith(res, "r", attrs), nil); err == nil {
		t.Fatal("read before init should error")
	}
	out, err := Run("Assign", ctxWith(res, "a", attrs), []*tensor.Tensor{v})
	if err != nil || !out.Equal(v) {
		t.Fatalf("Assign: %v", err)
	}
	out, err = Run("AssignAdd", ctxWith(res, "aa", attrs), []*tensor.Tensor{v})
	if err != nil {
		t.Fatalf("AssignAdd: %v", err)
	}
	if out.F64()[0] != 2 || out.F64()[1] != 4 {
		t.Fatalf("AssignAdd result %v", out.F64())
	}
	out, err = Run("Variable", ctxWith(res, "r2", attrs), nil)
	if err != nil || out.F64()[1] != 4 {
		t.Fatalf("Variable read %v %v", out, err)
	}
}

func TestVariableMissingAttrOrResources(t *testing.T) {
	if _, err := Run("Variable", ctxWith(newFakeResources(), "n", nil), nil); err == nil {
		t.Fatal("missing var_name should error")
	}
	ctx := &Context{NodeName: "n", Attrs: map[string]any{"var_name": "w"}}
	if _, err := Run("Variable", ctx, nil); err == nil {
		t.Fatal("missing resources should error")
	}
}

func TestQueueEnqueueDequeueTuple(t *testing.T) {
	res := newFakeResources()
	attrs := map[string]any{"queue": "q0"}
	idx := tensor.ScalarI64(7)
	tile := tensor.FromF64(tensor.Shape{2}, []float64{1, 2})

	if _, err := Run("QueueEnqueue", ctxWith(res, "enq", attrs), []*tensor.Tensor{idx, tile}); err != nil {
		t.Fatal(err)
	}
	sz, err := Run("QueueSize", ctxWith(res, "sz", attrs), nil)
	if err != nil || sz.ScalarInt() != 1 {
		t.Fatalf("size = %v, %v", sz, err)
	}

	scratch := NewScratch()
	deqCtx := &Context{NodeName: "deq", Attrs: attrs, Resources: res, Scratch: scratch}
	first, err := Run("QueueDequeue", deqCtx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.ScalarInt() != 7 {
		t.Fatal("component 0 should be the index")
	}
	compCtx := &Context{
		NodeName: "comp", Attrs: map[string]any{"index": 1},
		InputNames: []string{"deq"}, Resources: res, Scratch: scratch,
	}
	second, err := Run("DequeueComponent", compCtx, []*tensor.Tensor{first})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Equal(tile) {
		t.Fatal("component 1 should be the tile")
	}
	// Out-of-range component.
	badCtx := &Context{
		NodeName: "comp2", Attrs: map[string]any{"index": 5},
		InputNames: []string{"deq"}, Resources: res, Scratch: scratch,
	}
	if _, err := Run("DequeueComponent", badCtx, []*tensor.Tensor{first}); err == nil {
		t.Fatal("component index out of range should error")
	}
}

func TestQueueClose(t *testing.T) {
	res := newFakeResources()
	attrs := map[string]any{"queue": "q1"}
	if _, err := Run("QueueClose", ctxWith(res, "c", attrs), nil); err != nil {
		t.Fatal(err)
	}
}
