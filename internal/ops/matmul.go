package ops

import (
	"fmt"

	"tfhpc/internal/gemm"
	"tfhpc/internal/tensor"
)

func init() {
	Register(&OpDef{Name: "MatMul", MinInputs: 2, MaxInputs: 2, GPUCapable: true, Kernel: matMulKernel})
	Register(&OpDef{Name: "MatVec", MinInputs: 2, MaxInputs: 2, GPUCapable: true, Kernel: matVecKernel})
	Register(&OpDef{Name: "Transpose", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: transposeKernel})
}

// matMulKernel computes C = op(A)·op(B) with optional "transpose_a" /
// "transpose_b" attributes, in float32 or float64, through the packed,
// register-blocked engine in internal/gemm. Transposition is absorbed into
// the engine's panel packing, so no transposed copy is ever materialized.
func matMulKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a, b := in[0], in[1]
	if a.DType() != b.DType() {
		return nil, fmt.Errorf("MatMul: dtype mismatch %v vs %v", a.DType(), b.DType())
	}
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("MatMul: need rank-2 inputs, got %v and %v", a.Shape(), b.Shape())
	}
	ta := ctx != nil && ctx.BoolAttr("transpose_a", false)
	tb := ctx != nil && ctx.BoolAttr("transpose_b", false)
	lda, ldb := a.Shape()[1], b.Shape()[1]
	m, k := a.Shape()[0], a.Shape()[1]
	if ta {
		m, k = k, m
	}
	kb, n := b.Shape()[0], b.Shape()[1]
	if tb {
		kb, n = n, kb
	}
	if k != kb {
		return nil, fmt.Errorf("MatMul: inner dimensions disagree: %v · %v (transpose_a=%v, transpose_b=%v)",
			a.Shape(), b.Shape(), ta, tb)
	}
	switch a.DType() {
	case tensor.Float32:
		out := tensor.New(tensor.Float32, m, n)
		gemm.Gemm32(ta, tb, m, n, k, a.F32(), lda, b.F32(), ldb, out.F32(), n)
		return out, nil
	case tensor.Float64:
		out := tensor.New(tensor.Float64, m, n)
		gemm.Gemm64(ta, tb, m, n, k, a.F64(), lda, b.F64(), ldb, out.F64(), n)
		return out, nil
	}
	return nil, fmt.Errorf("MatMul: unsupported dtype %v", a.DType())
}

// matVecKernel computes y = A·x for a rank-2 A and rank-1 x.
func matVecKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a, x := in[0], in[1]
	if a.DType() != x.DType() {
		return nil, fmt.Errorf("MatVec: dtype mismatch %v vs %v", a.DType(), x.DType())
	}
	if a.Rank() != 2 || x.Rank() != 1 {
		return nil, fmt.Errorf("MatVec: want matrix and vector, got %v and %v", a.Shape(), x.Shape())
	}
	m, n := a.Shape()[0], a.Shape()[1]
	if n != x.Shape()[0] {
		return nil, fmt.Errorf("MatVec: dimensions disagree: %v · %v", a.Shape(), x.Shape())
	}
	switch a.DType() {
	case tensor.Float32:
		out := tensor.New(tensor.Float32, m)
		gemm.MatVec32(m, n, a.F32(), n, x.F32(), out.F32())
		return out, nil
	case tensor.Float64:
		out := tensor.New(tensor.Float64, m)
		gemm.MatVec64(m, n, a.F64(), n, x.F64(), out.F64())
		return out, nil
	}
	return nil, fmt.Errorf("MatVec: unsupported dtype %v", a.DType())
}

func transpose2D(a *tensor.Tensor) (*tensor.Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("Transpose: need rank-2, got %v", a.Shape())
	}
	m, n := a.Shape()[0], a.Shape()[1]
	out := tensor.New(a.DType(), n, m)
	switch a.DType() {
	case tensor.Float32:
		gemm.Transpose32(m, n, a.F32(), out.F32())
	case tensor.Float64:
		gemm.Transpose64(m, n, a.F64(), out.F64())
	case tensor.Complex128:
		av, bv := a.C128(), out.C128()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				bv[j*m+i] = av[i*n+j]
			}
		}
	default:
		return nil, fmt.Errorf("Transpose: unsupported dtype %v", a.DType())
	}
	return out, nil
}

func transposeKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return transpose2D(in[0])
}
