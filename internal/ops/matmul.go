package ops

import (
	"fmt"

	"tfhpc/internal/tensor"
)

func init() {
	Register(&OpDef{Name: "MatMul", MinInputs: 2, MaxInputs: 2, GPUCapable: true, Kernel: matMulKernel})
	Register(&OpDef{Name: "MatVec", MinInputs: 2, MaxInputs: 2, GPUCapable: true, Kernel: matVecKernel})
	Register(&OpDef{Name: "Transpose", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: transposeKernel})
}

// matMulKernel computes C = op(A)·op(B) with optional "transpose_a" /
// "transpose_b" attributes, in float32 or float64, parallelized over
// row-blocks of C with an i-k-j loop order that streams B rows through the
// cache.
func matMulKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a, b := in[0], in[1]
	if a.DType() != b.DType() {
		return nil, fmt.Errorf("MatMul: dtype mismatch %v vs %v", a.DType(), b.DType())
	}
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("MatMul: need rank-2 inputs, got %v and %v", a.Shape(), b.Shape())
	}
	ta := ctx != nil && ctx.BoolAttr("transpose_a", false)
	tb := ctx != nil && ctx.BoolAttr("transpose_b", false)
	if ta {
		var err error
		if a, err = transpose2D(a); err != nil {
			return nil, err
		}
	}
	if tb {
		var err error
		if b, err = transpose2D(b); err != nil {
			return nil, err
		}
	}
	m, k := a.Shape()[0], a.Shape()[1]
	k2, n := b.Shape()[0], b.Shape()[1]
	if k != k2 {
		return nil, fmt.Errorf("MatMul: inner dimensions disagree: %v · %v", a.Shape(), b.Shape())
	}
	switch a.DType() {
	case tensor.Float32:
		out := tensor.New(tensor.Float32, m, n)
		av, bv, cv := a.F32(), b.F32(), out.F32()
		parallelFor(m, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ci := cv[i*n : (i+1)*n]
				ai := av[i*k : (i+1)*k]
				for kk := 0; kk < k; kk++ {
					aik := ai[kk]
					if aik == 0 {
						continue
					}
					bk := bv[kk*n : (kk+1)*n]
					for j := range ci {
						ci[j] += aik * bk[j]
					}
				}
			}
		})
		return out, nil
	case tensor.Float64:
		out := tensor.New(tensor.Float64, m, n)
		av, bv, cv := a.F64(), b.F64(), out.F64()
		parallelFor(m, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ci := cv[i*n : (i+1)*n]
				ai := av[i*k : (i+1)*k]
				for kk := 0; kk < k; kk++ {
					aik := ai[kk]
					if aik == 0 {
						continue
					}
					bk := bv[kk*n : (kk+1)*n]
					for j := range ci {
						ci[j] += aik * bk[j]
					}
				}
			}
		})
		return out, nil
	}
	return nil, fmt.Errorf("MatMul: unsupported dtype %v", a.DType())
}

// matVecKernel computes y = A·x for a rank-2 A and rank-1 x.
func matVecKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a, x := in[0], in[1]
	if a.DType() != x.DType() {
		return nil, fmt.Errorf("MatVec: dtype mismatch %v vs %v", a.DType(), x.DType())
	}
	if a.Rank() != 2 || x.Rank() != 1 {
		return nil, fmt.Errorf("MatVec: want matrix and vector, got %v and %v", a.Shape(), x.Shape())
	}
	m, n := a.Shape()[0], a.Shape()[1]
	if n != x.Shape()[0] {
		return nil, fmt.Errorf("MatVec: dimensions disagree: %v · %v", a.Shape(), x.Shape())
	}
	switch a.DType() {
	case tensor.Float32:
		out := tensor.New(tensor.Float32, m)
		av, xv, yv := a.F32(), x.F32(), out.F32()
		parallelFor(m, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := av[i*n : (i+1)*n]
				var s float64
				for j, v := range row {
					s += float64(v) * float64(xv[j])
				}
				yv[i] = float32(s)
			}
		})
		return out, nil
	case tensor.Float64:
		out := tensor.New(tensor.Float64, m)
		av, xv, yv := a.F64(), x.F64(), out.F64()
		parallelFor(m, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := av[i*n : (i+1)*n]
				var s float64
				for j, v := range row {
					s += v * xv[j]
				}
				yv[i] = s
			}
		})
		return out, nil
	}
	return nil, fmt.Errorf("MatVec: unsupported dtype %v", a.DType())
}

func transpose2D(a *tensor.Tensor) (*tensor.Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("Transpose: need rank-2, got %v", a.Shape())
	}
	m, n := a.Shape()[0], a.Shape()[1]
	out := tensor.New(a.DType(), n, m)
	const blk = 32 // cache-blocked transpose
	switch a.DType() {
	case tensor.Float32:
		av, bv := a.F32(), out.F32()
		for ii := 0; ii < m; ii += blk {
			for jj := 0; jj < n; jj += blk {
				for i := ii; i < ii+blk && i < m; i++ {
					for j := jj; j < jj+blk && j < n; j++ {
						bv[j*m+i] = av[i*n+j]
					}
				}
			}
		}
	case tensor.Float64:
		av, bv := a.F64(), out.F64()
		for ii := 0; ii < m; ii += blk {
			for jj := 0; jj < n; jj += blk {
				for i := ii; i < ii+blk && i < m; i++ {
					for j := jj; j < jj+blk && j < n; j++ {
						bv[j*m+i] = av[i*n+j]
					}
				}
			}
		}
	case tensor.Complex128:
		av, bv := a.C128(), out.C128()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				bv[j*m+i] = av[i*n+j]
			}
		}
	default:
		return nil, fmt.Errorf("Transpose: unsupported dtype %v", a.DType())
	}
	return out, nil
}

func transposeKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return transpose2D(in[0])
}
