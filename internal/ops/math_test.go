package ops

import (
	"math"
	"testing"
	"testing/quick"

	"tfhpc/internal/tensor"
)

func run(t *testing.T, op string, attrs map[string]any, in ...*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out, err := Run(op, &Context{NodeName: "test", Attrs: attrs}, in)
	if err != nil {
		t.Fatalf("%s: %v", op, err)
	}
	return out
}

func runErr(t *testing.T, op string, attrs map[string]any, in ...*tensor.Tensor) error {
	t.Helper()
	_, err := Run(op, &Context{NodeName: "test", Attrs: attrs}, in)
	return err
}

func TestAddSubMulDiv(t *testing.T) {
	a := tensor.FromF64(tensor.Shape{3}, []float64{1, 2, 3})
	b := tensor.FromF64(tensor.Shape{3}, []float64{4, 5, 6})
	if got := run(t, "Add", nil, a, b).F64(); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := run(t, "Sub", nil, b, a).F64(); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := run(t, "Mul", nil, a, b).F64(); got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := run(t, "Div", nil, b, a).F64(); got[2] != 2 {
		t.Fatalf("Div = %v", got)
	}
}

func TestBinaryOpMismatches(t *testing.T) {
	a := tensor.FromF64(tensor.Shape{3}, []float64{1, 2, 3})
	b := tensor.FromF64(tensor.Shape{2}, []float64{1, 2})
	if runErr(t, "Add", nil, a, b) == nil {
		t.Fatal("shape mismatch should error")
	}
	c := tensor.FromF32(tensor.Shape{3}, []float32{1, 2, 3})
	if runErr(t, "Add", nil, a, c) == nil {
		t.Fatal("dtype mismatch should error")
	}
	if runErr(t, "Add", nil, a) == nil {
		t.Fatal("arity should be checked")
	}
}

func TestComplexArithmetic(t *testing.T) {
	a := tensor.FromC128(tensor.Shape{2}, []complex128{1 + 2i, 3 - 1i})
	b := tensor.FromC128(tensor.Shape{2}, []complex128{2 - 1i, 1 + 1i})
	got := run(t, "Mul", nil, a, b).C128()
	if got[0] != (1+2i)*(2-1i) || got[1] != (3-1i)*(1+1i) {
		t.Fatalf("complex Mul = %v", got)
	}
}

func TestNegSqrt(t *testing.T) {
	a := tensor.FromF64(tensor.Shape{2}, []float64{4, 9})
	if got := run(t, "Sqrt", nil, a).F64(); got[0] != 2 || got[1] != 3 {
		t.Fatalf("Sqrt = %v", got)
	}
	if got := run(t, "Neg", nil, a).F64(); got[0] != -4 {
		t.Fatalf("Neg = %v", got)
	}
}

func TestAddN(t *testing.T) {
	mk := func(v float64) *tensor.Tensor {
		return tensor.FromF64(tensor.Shape{2}, []float64{v, 2 * v})
	}
	got := run(t, "AddN", nil, mk(1), mk(2), mk(3)).F64()
	if got[0] != 6 || got[1] != 12 {
		t.Fatalf("AddN = %v", got)
	}
	// AddN must not mutate its first input.
	a := mk(1)
	run(t, "AddN", nil, a, mk(5))
	if a.F64()[0] != 1 {
		t.Fatal("AddN mutated input")
	}
}

func TestScaleAxpy(t *testing.T) {
	x := tensor.FromF64(tensor.Shape{3}, []float64{1, 2, 3})
	y := tensor.FromF64(tensor.Shape{3}, []float64{10, 20, 30})
	alpha := tensor.ScalarF64(2)
	if got := run(t, "Scale", nil, alpha, x).F64(); got[2] != 6 {
		t.Fatalf("Scale = %v", got)
	}
	got := run(t, "Axpy", nil, alpha, x, y).F64()
	if got[0] != 12 || got[1] != 24 || got[2] != 36 {
		t.Fatalf("Axpy = %v", got)
	}
	if runErr(t, "Axpy", nil, x, x, y) == nil {
		t.Fatal("non-scalar alpha should error")
	}
}

func TestDotAndSum(t *testing.T) {
	a := tensor.FromF64(tensor.Shape{3}, []float64{1, 2, 3})
	b := tensor.FromF64(tensor.Shape{3}, []float64{4, 5, 6})
	if got := run(t, "Dot", nil, a, b).ScalarFloat(); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := run(t, "Sum", nil, a).ScalarFloat(); got != 6 {
		t.Fatalf("Sum = %v", got)
	}
	c := tensor.FromC128(tensor.Shape{2}, []complex128{1 + 1i, 2 - 1i})
	if got := run(t, "Sum", nil, c).C128()[0]; got != 3 {
		t.Fatalf("complex Sum = %v", got)
	}
}

func TestDotMatchesQuick(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		// Clamp values so products stay finite.
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.Abs(xs[i]) > 1e100 {
				xs[i] = 1
			}
		}
		a := tensor.FromF64(tensor.Shape{len(xs)}, xs)
		got, err := Run("Dot", &Context{}, []*tensor.Tensor{a, a})
		if err != nil {
			return false
		}
		var want float64
		for _, v := range xs {
			want += v * v
		}
		diff := math.Abs(got.ScalarFloat() - want)
		return diff <= 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCast(t *testing.T) {
	a := tensor.FromF32(tensor.Shape{2}, []float32{1.5, -2})
	got := run(t, "Cast", map[string]any{"dtype": tensor.Float64}, a)
	if got.DType() != tensor.Float64 || got.F64()[0] != 1.5 {
		t.Fatalf("Cast f32->f64 = %v", got)
	}
	back := run(t, "Cast", map[string]any{"dtype": tensor.Float32}, got)
	if back.F32()[1] != -2 {
		t.Fatalf("Cast f64->f32 = %v", back)
	}
	ci := run(t, "Cast", map[string]any{"dtype": tensor.Complex128},
		tensor.FromI64(tensor.Shape{1}, []int64{3}))
	if ci.C128()[0] != 3 {
		t.Fatalf("Cast i64->c128 = %v", ci)
	}
}
