package ops

import (
	"fmt"

	"tfhpc/internal/tensor"
)

func init() {
	// Collective ops are stateful (they synchronise with other ranks and
	// must never be pruned, cached or reordered across control deps) and
	// GPU-capable: the placer may pin them next to the compute they feed,
	// exactly as TensorFlow places Horovod's allreduce. They BLOCK until
	// peers issue the matching call, so sessions running graphs with K
	// independent collective nodes must not cap Options.Parallelism below
	// K (0 = unlimited is safe; see session.Options).
	Register(&OpDef{Name: "AllReduce", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Stateful: true, Kernel: allReduceKernel})
	Register(&OpDef{Name: "AllGather", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Stateful: true, Kernel: allGatherKernel})
	Register(&OpDef{Name: "Broadcast", MinInputs: 0, MaxInputs: 1, GPUCapable: true, Stateful: true, Kernel: broadcastKernel})
	Register(&OpDef{Name: "ReduceScatter", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Stateful: true, Kernel: reduceScatterKernel})
	Register(&OpDef{Name: "AllGatherV", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Stateful: true, Kernel: allGatherVKernel})
	Register(&OpDef{Name: "AllReduceFused", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Stateful: true, Kernel: allReduceFusedKernel})
	Register(&OpDef{Name: "AllReduceStart", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Stateful: true, Kernel: allReduceStartKernel})
	Register(&OpDef{Name: "AllReduceJoin", MinInputs: 0, MaxInputs: 0, GPUCapable: true, Stateful: true, Kernel: allReduceJoinKernel})
}

// collective resolves the node's group handle from the "group" attribute.
func (c *Context) collective() (CollectiveHandle, string, error) {
	name := c.StringAttr("group", "")
	if name == "" {
		return nil, "", fmt.Errorf("missing %q attribute", "group")
	}
	if c.Resources == nil {
		return nil, "", fmt.Errorf("no resource manager in this execution context")
	}
	h, err := c.Resources.Collective(name)
	return h, name, err
}

// collKey is the match key for one collective node: the "key" attribute, or
// the node name — identical across ranks when graphs are built symmetrically.
func (c *Context) collKey() string { return c.StringAttr("key", c.NodeName) }

// allReduceKernel sums (or max-reduces, attr "reduce") its input across all
// ranks of the group; attr "average" divides the sum by the group size,
// which is the data-parallel gradient-averaging convention.
func allReduceKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	out, err := h.AllReduce(ctx.collKey(), in[0], ctx.StringAttr("reduce", "sum"))
	if err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	return maybeAverage(ctx, h, name, out)
}

// maybeAverage divides an allreduced sum by the group size when the node
// carries the data-parallel gradient-averaging attribute.
func maybeAverage(ctx *Context, h CollectiveHandle, name string, out *tensor.Tensor) (*tensor.Tensor, error) {
	if !ctx.BoolAttr("average", false) {
		return out, nil
	}
	inv := 1.0 / float64(h.Size())
	switch out.DType() {
	case tensor.Float32:
		d := out.F32()
		for i := range d {
			d[i] *= float32(inv)
		}
	case tensor.Float64:
		d := out.F64()
		for i := range d {
			d[i] *= inv
		}
	default:
		return nil, fmt.Errorf("group %q: average needs a float tensor, got %v", name, out.DType())
	}
	return out, nil
}

// reduceScatterKernel reduces across ranks and keeps only this rank's
// segment of the result (flat rank-1) — half an allreduce, for consumers
// that shard the reduced value anyway.
func reduceScatterKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	out, err := h.ReduceScatter(ctx.collKey(), in[0], ctx.StringAttr("reduce", "sum"))
	if err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	return out, nil
}

// allGatherVKernel concatenates per-rank inputs of differing leading
// dimension along axis 0.
func allGatherVKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	out, err := h.AllGatherV(ctx.collKey(), in[0])
	if err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	return out, nil
}

// allReduceFusedKernel posts its input to the group's fusion buffer:
// independent fused nodes dispatched concurrently by the executor coalesce
// into one collective pass (Horovod tensor fusion). Attributes match
// AllReduce ("reduce", "average").
func allReduceFusedKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	out, err := h.AllReduceFused(ctx.collKey(), in[0], ctx.StringAttr("reduce", "sum"))
	if err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	return maybeAverage(ctx, h, name, out)
}

// allReduceStartKernel begins an asynchronous allreduce under the named
// handle (attr "handle", default the collective key) and returns its input
// unchanged, so downstream nodes may keep using the local value. The
// reduction proceeds in the background — across session Run boundaries —
// until an AllReduceJoin with the same handle claims it.
func allReduceStartKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	key := ctx.collKey()
	if err := h.StartAllReduce(ctx.StringAttr("handle", key), key, in[0], ctx.StringAttr("reduce", "sum")); err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	return in[0], nil
}

// allReduceJoinKernel blocks on the named handle's in-flight allreduce and
// returns the reduced tensor ("average" supported as on AllReduce).
func allReduceJoinKernel(ctx *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	out, err := h.JoinAllReduce(ctx.StringAttr("handle", ctx.collKey()))
	if err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	return maybeAverage(ctx, h, name, out)
}

// allGatherKernel concatenates the per-rank inputs along the leading axis.
func allGatherKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	out, err := h.AllGather(ctx.collKey(), in[0])
	if err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	return out, nil
}

// broadcastKernel replicates the root rank's input (attr "root", default 0)
// to every rank; non-root ranks may omit the input.
func broadcastKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	root := ctx.IntAttr("root", 0)
	var t *tensor.Tensor
	if len(in) > 0 {
		t = in[0]
	}
	if h.Rank() == root && t == nil {
		return nil, fmt.Errorf("group %q: broadcast root needs an input", name)
	}
	out, err := h.Broadcast(ctx.collKey(), t, root)
	if err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	return out, nil
}
