package ops

import (
	"fmt"

	"tfhpc/internal/tensor"
)

func init() {
	// Collective ops are stateful (they synchronise with other ranks and
	// must never be pruned, cached or reordered across control deps) and
	// GPU-capable: the placer may pin them next to the compute they feed,
	// exactly as TensorFlow places Horovod's allreduce.
	Register(&OpDef{Name: "AllReduce", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Stateful: true, Kernel: allReduceKernel})
	Register(&OpDef{Name: "AllGather", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Stateful: true, Kernel: allGatherKernel})
	Register(&OpDef{Name: "Broadcast", MinInputs: 0, MaxInputs: 1, GPUCapable: true, Stateful: true, Kernel: broadcastKernel})
}

// collective resolves the node's group handle from the "group" attribute.
func (c *Context) collective() (CollectiveHandle, string, error) {
	name := c.StringAttr("group", "")
	if name == "" {
		return nil, "", fmt.Errorf("missing %q attribute", "group")
	}
	if c.Resources == nil {
		return nil, "", fmt.Errorf("no resource manager in this execution context")
	}
	h, err := c.Resources.Collective(name)
	return h, name, err
}

// collKey is the match key for one collective node: the "key" attribute, or
// the node name — identical across ranks when graphs are built symmetrically.
func (c *Context) collKey() string { return c.StringAttr("key", c.NodeName) }

// allReduceKernel sums (or max-reduces, attr "reduce") its input across all
// ranks of the group; attr "average" divides the sum by the group size,
// which is the data-parallel gradient-averaging convention.
func allReduceKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	out, err := h.AllReduce(ctx.collKey(), in[0], ctx.StringAttr("reduce", "sum"))
	if err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	if ctx.BoolAttr("average", false) {
		inv := 1.0 / float64(h.Size())
		switch out.DType() {
		case tensor.Float32:
			d := out.F32()
			for i := range d {
				d[i] *= float32(inv)
			}
		case tensor.Float64:
			d := out.F64()
			for i := range d {
				d[i] *= inv
			}
		default:
			return nil, fmt.Errorf("group %q: average needs a float tensor, got %v", name, out.DType())
		}
	}
	return out, nil
}

// allGatherKernel concatenates the per-rank inputs along the leading axis.
func allGatherKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	out, err := h.AllGather(ctx.collKey(), in[0])
	if err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	return out, nil
}

// broadcastKernel replicates the root rank's input (attr "root", default 0)
// to every rank; non-root ranks may omit the input.
func broadcastKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	h, name, err := ctx.collective()
	if err != nil {
		return nil, err
	}
	root := ctx.IntAttr("root", 0)
	var t *tensor.Tensor
	if len(in) > 0 {
		t = in[0]
	}
	if h.Rank() == root && t == nil {
		return nil, fmt.Errorf("group %q: broadcast root needs an input", name)
	}
	out, err := h.Broadcast(ctx.collKey(), t, root)
	if err != nil {
		return nil, fmt.Errorf("group %q: %w", name, err)
	}
	return out, nil
}
