package ops

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	f := func(nRaw uint16, grainRaw uint8) bool {
		n := int(nRaw % 5000)
		grain := int(grainRaw)
		hits := make([]int32, n)
		parallelFor(n, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForEdgeCases(t *testing.T) {
	called := false
	parallelFor(0, 10, func(lo, hi int) { called = true })
	if called {
		t.Fatal("empty range should not invoke body")
	}
	var total int32
	parallelFor(1, 1000, func(lo, hi int) { atomic.AddInt32(&total, int32(hi-lo)) })
	if total != 1 {
		t.Fatalf("single element covered %d times", total)
	}
	// Negative grain is clamped.
	total = 0
	parallelFor(10, -5, func(lo, hi int) { atomic.AddInt32(&total, int32(hi-lo)) })
	if total != 10 {
		t.Fatalf("covered %d of 10", total)
	}
}

func TestParallelForChunksAreDisjointOrdered(t *testing.T) {
	type span struct{ lo, hi int }
	ch := make(chan span, 64)
	parallelFor(1000, 10, func(lo, hi int) { ch <- span{lo, hi} })
	close(ch)
	seen := make([]bool, 1000)
	for s := range ch {
		if s.lo >= s.hi {
			t.Fatalf("empty span %+v", s)
		}
		for i := s.lo; i < s.hi; i++ {
			if seen[i] {
				t.Fatalf("index %d covered twice", i)
			}
			seen[i] = true
		}
	}
}
