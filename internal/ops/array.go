package ops

import (
	"fmt"
	"sync"

	"tfhpc/internal/tensor"
)

func init() {
	Register(&OpDef{Name: "Const", MinInputs: 0, MaxInputs: 0, Kernel: constKernel})
	Register(&OpDef{Name: "Placeholder", MinInputs: 0, MaxInputs: 0, Kernel: placeholderKernel})
	Register(&OpDef{Name: "Identity", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: identityKernel})
	Register(&OpDef{Name: "NoOp", MinInputs: 0, MaxInputs: -1, Kernel: noOpKernel})
	Register(&OpDef{Name: "RandomUniform", MinInputs: 0, MaxInputs: 0, GPUCapable: true, Stateful: true, Kernel: randomUniformKernel})
	Register(&OpDef{Name: "Zeros", MinInputs: 0, MaxInputs: 0, GPUCapable: true, Kernel: zerosKernel})
	Register(&OpDef{Name: "Fill", MinInputs: 0, MaxInputs: 0, GPUCapable: true, Kernel: fillKernel})
	Register(&OpDef{Name: "Reshape", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: reshapeKernel})
	Register(&OpDef{Name: "SliceRows", MinInputs: 1, MaxInputs: 1, GPUCapable: true, Kernel: sliceRowsKernel})
	Register(&OpDef{Name: "ConcatRows", MinInputs: 1, MaxInputs: -1, GPUCapable: true, Kernel: concatRowsKernel})
}

func constKernel(ctx *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	v, ok := ctx.Attrs["value"].(*tensor.Tensor)
	if !ok {
		return nil, fmt.Errorf("Const: missing tensor attribute %q", "value")
	}
	return v, nil
}

func placeholderKernel(ctx *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	return nil, fmt.Errorf("Placeholder %q was not fed", ctx.NodeName)
}

func identityKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	return in[0], nil
}

func noOpKernel(_ *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.ScalarI64(0), nil
}

// randomUniformKernel draws a fresh tensor per execution; "seed" pins the
// stream for reproducibility, combined with a per-node counter so repeated
// session runs see fresh values (as tf.random_uniform does).
var (
	randomMu       sync.Mutex
	randomCounters = map[string]uint64{}
)

func randomUniformKernel(ctx *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	dt := ctx.DTypeAttr("dtype", tensor.Float32)
	shape := ctx.ShapeAttr("shape")
	seed := uint64(ctx.IntAttr("seed", 0))
	// A per-node sequence number mixes into the seed so repeated runs of the
	// same node yield fresh (but reproducible) draws.
	randomMu.Lock()
	randomCounters[ctx.NodeName]++
	seq := randomCounters[ctx.NodeName]
	randomMu.Unlock()
	r := tensor.NewRNG(seed*0x9e3779b9 + seq)
	t := tensor.New(dt, shape...)
	tensor.FillUniform(t, r)
	return t, nil
}

func zerosKernel(ctx *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	dt := ctx.DTypeAttr("dtype", tensor.Float32)
	return tensor.New(dt, ctx.ShapeAttr("shape")...), nil
}

func fillKernel(ctx *Context, _ []*tensor.Tensor) (*tensor.Tensor, error) {
	dt := ctx.DTypeAttr("dtype", tensor.Float32)
	v := ctx.FloatAttr("value", 0)
	t := tensor.New(dt, ctx.ShapeAttr("shape")...)
	switch dt {
	case tensor.Float32:
		d := t.F32()
		for i := range d {
			d[i] = float32(v)
		}
	case tensor.Float64:
		d := t.F64()
		for i := range d {
			d[i] = v
		}
	case tensor.Complex128:
		d := t.C128()
		for i := range d {
			d[i] = complex(v, 0)
		}
	case tensor.Int64:
		d := t.I64()
		for i := range d {
			d[i] = int64(v)
		}
	default:
		return nil, fmt.Errorf("Fill: unsupported dtype %v", dt)
	}
	return t, nil
}

func reshapeKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	shape := ctx.ShapeAttr("shape")
	return in[0].Reshape(shape...)
}

// sliceRowsKernel extracts rows [begin, begin+size) of a rank>=1 tensor.
func sliceRowsKernel(ctx *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	a := in[0]
	begin := ctx.IntAttr("begin", 0)
	size := ctx.IntAttr("size", -1)
	if a.Rank() < 1 {
		return nil, fmt.Errorf("SliceRows: need rank >= 1")
	}
	rows := a.Shape()[0]
	if size < 0 {
		size = rows - begin
	}
	if begin < 0 || begin+size > rows {
		return nil, fmt.Errorf("SliceRows: [%d, %d) out of %d rows", begin, begin+size, rows)
	}
	rowElems := a.NumElements() / max(rows, 1)
	outShape := a.Shape().Clone()
	outShape[0] = size
	out := tensor.New(a.DType(), outShape...)
	lo, hi := begin*rowElems, (begin+size)*rowElems
	switch a.DType() {
	case tensor.Float32:
		copy(out.F32(), a.F32()[lo:hi])
	case tensor.Float64:
		copy(out.F64(), a.F64()[lo:hi])
	case tensor.Complex128:
		copy(out.C128(), a.C128()[lo:hi])
	case tensor.Int64:
		copy(out.I64(), a.I64()[lo:hi])
	default:
		return nil, fmt.Errorf("SliceRows: unsupported dtype %v", a.DType())
	}
	return out, nil
}

// concatRowsKernel stacks its inputs along axis 0.
func concatRowsKernel(_ *Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
	first := in[0]
	totalRows := 0
	for _, t := range in {
		if t.DType() != first.DType() {
			return nil, fmt.Errorf("ConcatRows: dtype mismatch")
		}
		if t.Rank() != first.Rank() {
			return nil, fmt.Errorf("ConcatRows: rank mismatch")
		}
		for d := 1; d < t.Rank(); d++ {
			if t.Shape()[d] != first.Shape()[d] {
				return nil, fmt.Errorf("ConcatRows: trailing dims mismatch: %v vs %v", t.Shape(), first.Shape())
			}
		}
		totalRows += t.Shape()[0]
	}
	outShape := first.Shape().Clone()
	outShape[0] = totalRows
	out := tensor.New(first.DType(), outShape...)
	off := 0
	for _, t := range in {
		n := t.NumElements()
		switch first.DType() {
		case tensor.Float32:
			copy(out.F32()[off:], t.F32())
		case tensor.Float64:
			copy(out.F64()[off:], t.F64())
		case tensor.Complex128:
			copy(out.C128()[off:], t.C128())
		case tensor.Int64:
			copy(out.I64()[off:], t.I64())
		default:
			return nil, fmt.Errorf("ConcatRows: unsupported dtype %v", first.DType())
		}
		off += n
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
