package pprofsrv

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"tfhpc/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeExposesProfiles(t *testing.T) {
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, "http://"+addr+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Fatalf("goroutine profile status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("goroutine profile body looks wrong: %.80s", body)
	}
}

func TestServeExposesMetricz(t *testing.T) {
	c := telemetry.NewCounter("tfhpc_pprofsrv_test_total", "Test counter for the debug server.")
	c.Inc()
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, "http://"+addr+"/metricz")
	if code != http.StatusOK {
		t.Fatalf("/metricz status %d", code)
	}
	if !strings.Contains(body, "# TYPE tfhpc_pprofsrv_test_total counter") {
		t.Fatalf("/metricz missing TYPE line:\n%.200s", body)
	}
	if !strings.Contains(body, "tfhpc_pprofsrv_test_total 1") {
		t.Fatalf("/metricz missing counter sample:\n%.200s", body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad"); err == nil {
		t.Fatal("nonsense address should fail")
	}
}

// TestServeBindConflict proves a bind failure surfaces as an error return, not
// a background panic: the debug server must refuse a port someone else holds.
func TestServeBindConflict(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := Serve(ln.Addr().String()); err == nil {
		t.Fatalf("binding %s twice should fail", ln.Addr())
	}
}

// TestServeUnroutableHost covers the resolver-level failure mode (a host that
// is not an address on this machine) as distinct from a malformed port.
func TestServeUnroutableHost(t *testing.T) {
	if _, err := Serve("203.0.113.7:0"); err == nil {
		t.Skip("environment allows binding TEST-NET-3; nothing to assert")
	}
}
