package pprofsrv

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeExposesProfiles(t *testing.T) {
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("goroutine profile status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("goroutine profile body looks wrong: %.80s", body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad"); err == nil {
		t.Fatal("nonsense address should fail")
	}
}
