// Package pprofsrv exposes the process debug surface — the net/http/pprof
// profiling endpoints plus the telemetry registry's /metricz — on a
// dedicated listener, so the long-running servers (tfserver, tfserve) can
// opt into heap/CPU/goroutine profiling and metric scrapes with a flag:
//
//	tfserve -listen :8500 -synthetic demo -pprof 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/allocs
//	curl http://127.0.0.1:6060/metricz
//
// The handlers are mounted on their own mux, never the default one: the
// serving HTTP front end must not grow debug routes as a side effect of
// an import.
package pprofsrv

import (
	"net"
	"net/http"
	"net/http/pprof"

	"tfhpc/internal/telemetry"
)

// Serve starts the debug listener on addr (host:port, port 0 picks)
// and returns the bound address. The server runs until process exit —
// debug endpoints have no graceful-shutdown story worth the plumbing.
func Serve(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metricz", telemetry.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // exits with the process
	return ln.Addr().String(), nil
}
