// Package pprofsrv exposes the net/http/pprof profiling endpoints on a
// dedicated listener, so the long-running servers (tfserver, tfserve) can
// opt into heap/CPU/goroutine profiling with a flag — the alloc sweeps CI
// gates are then reproducible against a live process:
//
//	tfserve -listen :8500 -synthetic demo -pprof 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/allocs
//
// The handlers are mounted on their own mux, never the default one: the
// serving HTTP front end must not grow debug routes as a side effect of
// an import.
package pprofsrv

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve starts the profiling listener on addr (host:port, port 0 picks)
// and returns the bound address. The server runs until process exit —
// profiling endpoints have no graceful-shutdown story worth the plumbing.
func Serve(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // exits with the process
	return ln.Addr().String(), nil
}
