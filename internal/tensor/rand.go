package tensor

import "math"

// RNG is a small, fast, deterministic SplitMix64 generator. The runtime uses
// it everywhere randomness is needed (random_uniform kernels, workload
// generators) so that experiments are reproducible across runs and platforms.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. The same seed always yields the same stream.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// RandomUniform allocates a tensor filled with uniform values in [0, 1) for
// float dtypes, uniformly random phases on the unit circle for complex
// dtypes, and uniform values in [0, 100) for integer dtypes. It is the
// kernel behind the random_uniform op (Listing 1 of the paper).
func RandomUniform(dt DType, seed uint64, shape ...int) *Tensor {
	t := New(dt, shape...)
	r := NewRNG(seed)
	FillUniform(t, r)
	return t
}

// FillUniform overwrites t in place with uniform pseudo-random values drawn
// from r.
func FillUniform(t *Tensor, r *RNG) {
	switch t.DType() {
	case Float32:
		d := t.F32()
		for i := range d {
			d[i] = r.Float32()
		}
	case Float64:
		d := t.F64()
		for i := range d {
			d[i] = r.Float64()
		}
	case Complex64:
		d := t.C64()
		for i := range d {
			d[i] = complex(r.Float32(), r.Float32())
		}
	case Complex128:
		d := t.C128()
		for i := range d {
			d[i] = complex(r.Float64(), r.Float64())
		}
	case Int32:
		d := t.I32()
		for i := range d {
			d[i] = int32(r.Intn(100))
		}
	case Int64:
		d := t.I64()
		for i := range d {
			d[i] = int64(r.Intn(100))
		}
	case Bool:
		d := t.Bools()
		for i := range d {
			d[i] = r.Uint64()&1 == 1
		}
	}
}
