// Package tensor implements dense n-rank tensors, the fundamental value type
// that flows along graph edges in the runtime. A tensor has a data type
// (DType), a shape, and a flat row-major backing slice. Mirrors the semantics
// of TensorFlow tensors: immutable by convention (kernels allocate outputs),
// with tf.Variable mutability layered on top in internal/vars.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// DType enumerates the element types supported by the runtime.
type DType int

const (
	Invalid DType = iota
	Float32
	Float64
	Complex64
	Complex128
	Int32
	Int64
	Bool
)

var dtypeNames = map[DType]string{
	Invalid:    "invalid",
	Float32:    "float32",
	Float64:    "float64",
	Complex64:  "complex64",
	Complex128: "complex128",
	Int32:      "int32",
	Int64:      "int64",
	Bool:       "bool",
}

func (d DType) String() string {
	if s, ok := dtypeNames[d]; ok {
		return s
	}
	return fmt.Sprintf("dtype(%d)", int(d))
}

// Size returns the number of bytes used by one element of the type.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Float64, Int64, Complex64:
		return 8
	case Complex128:
		return 16
	case Bool:
		return 1
	}
	return 0
}

// IsFloat reports whether d is a real floating point type.
func (d DType) IsFloat() bool { return d == Float32 || d == Float64 }

// IsComplex reports whether d is a complex type.
func (d DType) IsComplex() bool { return d == Complex64 || d == Complex128 }

// IsNumeric reports whether arithmetic kernels accept the type.
func (d DType) IsNumeric() bool {
	return d.IsFloat() || d.IsComplex() || d == Int32 || d == Int64
}

// Shape describes the extent of each tensor dimension. A nil or empty shape
// is a scalar (rank 0).
type Shape []int

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// NumElements returns the total element count, 1 for scalars.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	if s == nil {
		return nil
	}
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Valid reports whether every dimension is non-negative.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d < 0 {
			return false
		}
	}
	return true
}

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Offset computes the row-major flat offset of the given multi-index.
func (s Shape) Offset(idx ...int) int {
	if len(idx) != len(s) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape rank %d", len(idx), len(s)))
	}
	off := 0
	for i, d := range s {
		if idx[i] < 0 || idx[i] >= d {
			panic(fmt.Sprintf("tensor: index %d out of bounds for dim %d of size %d", idx[i], i, d))
		}
		off = off*d + idx[i]
	}
	return off
}

// Tensor is a dense, row-major n-dimensional array.
type Tensor struct {
	dtype DType
	shape Shape
	data  any // one of []float32, []float64, []complex64, []complex128, []int32, []int64, []bool
}

// New allocates a zero-filled tensor of the given type and shape.
func New(dt DType, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	n := s.NumElements()
	t := &Tensor{dtype: dt, shape: s}
	switch dt {
	case Float32:
		t.data = make([]float32, n)
	case Float64:
		t.data = make([]float64, n)
	case Complex64:
		t.data = make([]complex64, n)
	case Complex128:
		t.data = make([]complex128, n)
	case Int32:
		t.data = make([]int32, n)
	case Int64:
		t.data = make([]int64, n)
	case Bool:
		t.data = make([]bool, n)
	default:
		panic(fmt.Sprintf("tensor: cannot allocate dtype %v", dt))
	}
	return t
}

// FromF32 wraps vals (not copied) as a tensor with the given shape.
func FromF32(shape Shape, vals []float32) *Tensor {
	checkLen(shape, len(vals))
	return &Tensor{dtype: Float32, shape: shape.Clone(), data: vals}
}

// FromF64 wraps vals (not copied) as a tensor with the given shape.
func FromF64(shape Shape, vals []float64) *Tensor {
	checkLen(shape, len(vals))
	return &Tensor{dtype: Float64, shape: shape.Clone(), data: vals}
}

// FromC64 wraps vals (not copied) as a tensor with the given shape.
func FromC64(shape Shape, vals []complex64) *Tensor {
	checkLen(shape, len(vals))
	return &Tensor{dtype: Complex64, shape: shape.Clone(), data: vals}
}

// FromC128 wraps vals (not copied) as a tensor with the given shape.
func FromC128(shape Shape, vals []complex128) *Tensor {
	checkLen(shape, len(vals))
	return &Tensor{dtype: Complex128, shape: shape.Clone(), data: vals}
}

// FromI64 wraps vals (not copied) as a tensor with the given shape.
func FromI64(shape Shape, vals []int64) *Tensor {
	checkLen(shape, len(vals))
	return &Tensor{dtype: Int64, shape: shape.Clone(), data: vals}
}

// FromI32 wraps vals (not copied) as a tensor with the given shape.
func FromI32(shape Shape, vals []int32) *Tensor {
	checkLen(shape, len(vals))
	return &Tensor{dtype: Int32, shape: shape.Clone(), data: vals}
}

// FromBool wraps vals (not copied) as a tensor with the given shape.
func FromBool(shape Shape, vals []bool) *Tensor {
	checkLen(shape, len(vals))
	return &Tensor{dtype: Bool, shape: shape.Clone(), data: vals}
}

func checkLen(shape Shape, n int) {
	if shape.NumElements() != n {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, shape.NumElements(), n))
	}
}

// ScalarF32 returns a rank-0 float32 tensor.
func ScalarF32(v float32) *Tensor { return FromF32(nil, []float32{v}) }

// ScalarF64 returns a rank-0 float64 tensor.
func ScalarF64(v float64) *Tensor { return FromF64(nil, []float64{v}) }

// ScalarI64 returns a rank-0 int64 tensor.
func ScalarI64(v int64) *Tensor { return FromI64(nil, []int64{v}) }

// ScalarC128 returns a rank-0 complex128 tensor.
func ScalarC128(v complex128) *Tensor { return FromC128(nil, []complex128{v}) }

// DType returns the element type.
func (t *Tensor) DType() DType { return t.dtype }

// Shape returns the tensor's shape. Callers must not mutate it.
func (t *Tensor) Shape() Shape { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return t.shape.Rank() }

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return t.shape.NumElements() }

// ByteSize returns the size of the payload in bytes.
func (t *Tensor) ByteSize() int64 { return int64(t.NumElements()) * int64(t.dtype.Size()) }

// F32 returns the backing slice; panics if the dtype is not float32.
func (t *Tensor) F32() []float32 { return t.data.([]float32) }

// F64 returns the backing slice; panics if the dtype is not float64.
func (t *Tensor) F64() []float64 { return t.data.([]float64) }

// C64 returns the backing slice; panics if the dtype is not complex64.
func (t *Tensor) C64() []complex64 { return t.data.([]complex64) }

// C128 returns the backing slice; panics if the dtype is not complex128.
func (t *Tensor) C128() []complex128 { return t.data.([]complex128) }

// I32 returns the backing slice; panics if the dtype is not int32.
func (t *Tensor) I32() []int32 { return t.data.([]int32) }

// I64 returns the backing slice; panics if the dtype is not int64.
func (t *Tensor) I64() []int64 { return t.data.([]int64) }

// Bools returns the backing slice; panics if the dtype is not bool.
func (t *Tensor) Bools() []bool { return t.data.([]bool) }

// ScalarFloat returns the single element of a rank-0 (or one-element) real
// tensor as float64.
func (t *Tensor) ScalarFloat() float64 {
	if t.NumElements() != 1 {
		panic(fmt.Sprintf("tensor: ScalarFloat on tensor with %d elements", t.NumElements()))
	}
	switch t.dtype {
	case Float32:
		return float64(t.F32()[0])
	case Float64:
		return t.F64()[0]
	case Int32:
		return float64(t.I32()[0])
	case Int64:
		return float64(t.I64()[0])
	}
	panic(fmt.Sprintf("tensor: ScalarFloat on dtype %v", t.dtype))
}

// ScalarInt returns the single element of a one-element integer tensor.
func (t *Tensor) ScalarInt() int64 {
	if t.NumElements() != 1 {
		panic(fmt.Sprintf("tensor: ScalarInt on tensor with %d elements", t.NumElements()))
	}
	switch t.dtype {
	case Int32:
		return int64(t.I32()[0])
	case Int64:
		return t.I64()[0]
	}
	panic(fmt.Sprintf("tensor: ScalarInt on dtype %v", t.dtype))
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.dtype, t.shape...)
	switch t.dtype {
	case Float32:
		copy(c.F32(), t.F32())
	case Float64:
		copy(c.F64(), t.F64())
	case Complex64:
		copy(c.C64(), t.C64())
	case Complex128:
		copy(c.C128(), t.C128())
	case Int32:
		copy(c.I32(), t.I32())
	case Int64:
		copy(c.I64(), t.I64())
	case Bool:
		copy(c.Bools(), t.Bools())
	}
	return c
}

// Reshape returns a view of the tensor with a new shape; the element count
// must be unchanged. The backing storage is shared.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	s := Shape(shape)
	if !s.Valid() {
		return nil, fmt.Errorf("tensor: invalid shape %v", s)
	}
	if s.NumElements() != t.NumElements() {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, t.NumElements(), s, s.NumElements())
	}
	return &Tensor{dtype: t.dtype, shape: s.Clone(), data: t.data}, nil
}

// Equal reports exact equality of dtype, shape and every element.
func (t *Tensor) Equal(o *Tensor) bool {
	if t.dtype != o.dtype || !t.shape.Equal(o.shape) {
		return false
	}
	switch t.dtype {
	case Float32:
		a, b := t.F32(), o.F32()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	case Float64:
		a, b := t.F64(), o.F64()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	case Complex64:
		a, b := t.C64(), o.C64()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	case Complex128:
		a, b := t.C128(), o.C128()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	case Int32:
		a, b := t.I32(), o.I32()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	case Int64:
		a, b := t.I64(), o.I64()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	case Bool:
		a, b := t.Bools(), o.Bools()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// ApproxEqual reports whether two real/complex tensors agree element-wise
// within absolute-or-relative tolerance tol.
func (t *Tensor) ApproxEqual(o *Tensor, tol float64) bool {
	if t.dtype != o.dtype || !t.shape.Equal(o.shape) {
		return false
	}
	close := func(a, b float64) bool {
		d := math.Abs(a - b)
		return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
	}
	switch t.dtype {
	case Float32:
		a, b := t.F32(), o.F32()
		for i := range a {
			if !close(float64(a[i]), float64(b[i])) {
				return false
			}
		}
		return true
	case Float64:
		a, b := t.F64(), o.F64()
		for i := range a {
			if !close(a[i], b[i]) {
				return false
			}
		}
		return true
	case Complex128:
		a, b := t.C128(), o.C128()
		for i := range a {
			if !close(real(a[i]), real(b[i])) || !close(imag(a[i]), imag(b[i])) {
				return false
			}
		}
		return true
	case Complex64:
		a, b := t.C64(), o.C64()
		for i := range a {
			if !close(float64(real(a[i])), float64(real(b[i]))) ||
				!close(float64(imag(a[i])), float64(imag(b[i]))) {
				return false
			}
		}
		return true
	}
	return t.Equal(o)
}

// String renders a short human-readable summary (dtype, shape, a few leading
// values), never the full payload.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor<%v %v>", t.dtype, t.shape)
	n := t.NumElements()
	show := n
	if show > 8 {
		show = 8
	}
	sb.WriteString("{")
	for i := 0; i < show; i++ {
		if i > 0 {
			sb.WriteString(" ")
		}
		switch t.dtype {
		case Float32:
			fmt.Fprintf(&sb, "%g", t.F32()[i])
		case Float64:
			fmt.Fprintf(&sb, "%g", t.F64()[i])
		case Complex64:
			fmt.Fprintf(&sb, "%v", t.C64()[i])
		case Complex128:
			fmt.Fprintf(&sb, "%v", t.C128()[i])
		case Int32:
			fmt.Fprintf(&sb, "%d", t.I32()[i])
		case Int64:
			fmt.Fprintf(&sb, "%d", t.I64()[i])
		case Bool:
			fmt.Fprintf(&sb, "%t", t.Bools()[i])
		}
	}
	if show < n {
		fmt.Fprintf(&sb, " ... (%d total)", n)
	}
	sb.WriteString("}")
	return sb.String()
}
