package tensor

import "sync"

// Rank-1 tensor pool for the transport hot paths. Collective chunk relay
// and streaming predict decode one tensor per message; recycling them keeps
// the steady state allocation-free. Pooling is exact-size (dtype, elems)
// keyed — transport chunks repeat the same few sizes thousands of times —
// and guarded by a plain mutex for the same escape-analysis reason the wire
// buffer pool avoids sync.Pool.
//
// Ownership contract: GetPooled transfers ownership to the caller; contents
// are unspecified and must be fully overwritten. Recycle transfers it back;
// the tensor (and any view of its backing slice) must not be used after.
// Recycling is always optional — a tensor that escapes to application code
// is simply left to the GC.

type poolKey struct {
	dt DType
	n  int // rank-1 length; -1 keys rank-0 scalars (which also hold 1 element)
}

const (
	maxPooledPerClass = 64
	maxPooledBytes    = 8 << 20
)

var tpool = struct {
	mu   sync.Mutex
	free map[poolKey][]*Tensor
}{free: make(map[poolKey][]*Tensor)}

// GetPooled returns a rank-1 [n] tensor of dt with unspecified contents,
// reusing a recycled one when available.
func GetPooled(dt DType, n int) *Tensor {
	k := poolKey{dt: dt, n: n}
	tpool.mu.Lock()
	if s := tpool.free[k]; len(s) > 0 {
		t := s[len(s)-1]
		s[len(s)-1] = nil
		tpool.free[k] = s[:len(s)-1]
		tpool.mu.Unlock()
		return t
	}
	tpool.mu.Unlock()
	return New(dt, n)
}

// GetPooledScalar returns a rank-0 scalar tensor of dt with unspecified
// contents — the per-row result shape of streaming predict.
func GetPooledScalar(dt DType) *Tensor {
	k := poolKey{dt: dt, n: -1}
	tpool.mu.Lock()
	if s := tpool.free[k]; len(s) > 0 {
		t := s[len(s)-1]
		s[len(s)-1] = nil
		tpool.free[k] = s[:len(s)-1]
		tpool.mu.Unlock()
		return t
	}
	tpool.mu.Unlock()
	return New(dt)
}

// Recycle offers t back to the pool. Only rank-0 and rank-1 tensors of
// modest size are retained; anything else is dropped for the GC to take.
func Recycle(t *Tensor) {
	if t == nil || len(t.shape) > 1 || t.ByteSize() > maxPooledBytes {
		return
	}
	k := poolKey{dt: t.dtype, n: -1}
	if len(t.shape) == 1 {
		k.n = t.shape[0]
	}
	tpool.mu.Lock()
	if len(tpool.free[k]) < maxPooledPerClass {
		tpool.free[k] = append(tpool.free[k], t)
	}
	tpool.mu.Unlock()
}
