package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary tensor encoding used on the wire and in checkpoints:
//
//	u8   dtype
//	uvarint rank
//	uvarint dims[rank]
//	raw little-endian payload
//
// It is the moral equivalent of TensorFlow's TensorProto: self-describing,
// platform independent, and bounded by the same 2 GiB limit the paper
// discusses for serialized graphs.

// MaxEncodedBytes is the 2 GiB serialization ceiling, mirroring the ProtoBuf
// limitation that the paper calls out for graph and tensor messages.
const MaxEncodedBytes = int64(2) << 30

// ErrTooLarge is returned when a tensor exceeds MaxEncodedBytes serialized.
var ErrTooLarge = fmt.Errorf("tensor: encoded size exceeds 2 GiB ProtoBuf-style limit")

// EncodedSize returns the exact number of bytes Encode will produce.
func (t *Tensor) EncodedSize() int64 {
	n := int64(1) // dtype byte
	var tmp [binary.MaxVarintLen64]byte
	n += int64(binary.PutUvarint(tmp[:], uint64(t.Rank())))
	for _, d := range t.shape {
		n += int64(binary.PutUvarint(tmp[:], uint64(d)))
	}
	return n + t.ByteSize()
}

// Encode appends the binary form of t to dst and returns the result.
func (t *Tensor) Encode(dst []byte) ([]byte, error) {
	if t.EncodedSize() > MaxEncodedBytes {
		return dst, ErrTooLarge
	}
	dst = append(dst, byte(t.dtype))
	dst = binary.AppendUvarint(dst, uint64(t.Rank()))
	for _, d := range t.shape {
		dst = binary.AppendUvarint(dst, uint64(d))
	}
	switch t.dtype {
	case Float32:
		for _, v := range t.F32() {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	case Float64:
		for _, v := range t.F64() {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case Complex64:
		for _, v := range t.C64() {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(real(v)))
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(imag(v)))
		}
	case Complex128:
		for _, v := range t.C128() {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(real(v)))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(imag(v)))
		}
	case Int32:
		for _, v := range t.I32() {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
	case Int64:
		for _, v := range t.I64() {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case Bool:
		for _, v := range t.Bools() {
			if v {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	default:
		return dst, fmt.Errorf("tensor: cannot encode dtype %v", t.dtype)
	}
	return dst, nil
}

// Decode parses one tensor from the front of src and returns it along with
// the remaining bytes.
func Decode(src []byte) (*Tensor, []byte, error) { return decode(src, false) }

// DecodePooled parses one tensor like Decode but draws rank-1 outputs from
// the tensor pool — the shape every transport chunk has — so the decode
// itself allocates nothing in steady state. The caller owns the result and
// should Recycle it once consumed.
func DecodePooled(src []byte) (*Tensor, []byte, error) { return decode(src, true) }

func decode(src []byte, pooled bool) (*Tensor, []byte, error) {
	if len(src) < 1 {
		return nil, src, fmt.Errorf("tensor: truncated header")
	}
	dt := DType(src[0])
	if dt.Size() == 0 {
		return nil, src, fmt.Errorf("tensor: bad dtype byte %d", src[0])
	}
	src = src[1:]
	rank, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, src, fmt.Errorf("tensor: truncated rank")
	}
	src = src[n:]
	if rank > 32 {
		return nil, src, fmt.Errorf("tensor: implausible rank %d", rank)
	}
	var t *Tensor
	var elems int
	if rank == 0 {
		// Scalars are the streaming-predict per-row result shape; pool them
		// like flat chunks so that decode path stays allocation-free too.
		elems = 1
		if pooled {
			t = GetPooledScalar(dt)
		} else {
			t = New(dt)
		}
	} else if rank == 1 {
		// Flat tensors skip the Shape allocation entirely and may come from
		// the pool: this is the chunk-relay fast path.
		d, n := binary.Uvarint(src)
		if n <= 0 {
			return nil, src, fmt.Errorf("tensor: truncated shape")
		}
		src = src[n:]
		if d > uint64(MaxEncodedBytes)/uint64(dt.Size()) {
			return nil, src, ErrTooLarge
		}
		elems = int(d)
		if pooled {
			t = GetPooled(dt, elems)
		} else {
			t = New(dt, elems)
		}
	} else {
		shape := make(Shape, rank)
		for i := range shape {
			d, n := binary.Uvarint(src)
			if n <= 0 {
				return nil, src, fmt.Errorf("tensor: truncated shape")
			}
			shape[i] = int(d)
			src = src[n:]
		}
		elems = shape.NumElements()
		if int64(elems)*int64(dt.Size()) > MaxEncodedBytes {
			return nil, src, ErrTooLarge
		}
		t = New(dt, shape...)
	}
	need := elems * dt.Size()
	if len(src) < need {
		if pooled {
			Recycle(t)
		}
		return nil, src, fmt.Errorf("tensor: payload truncated: need %d bytes, have %d", need, len(src))
	}
	buf := src[:need]
	switch dt {
	case Float32:
		d := t.F32()
		for i := range d {
			d[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
	case Float64:
		d := t.F64()
		for i := range d {
			d[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	case Complex64:
		d := t.C64()
		for i := range d {
			re := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8:]))
			im := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8+4:]))
			d[i] = complex(re, im)
		}
	case Complex128:
		d := t.C128()
		for i := range d {
			re := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*16:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*16+8:]))
			d[i] = complex(re, im)
		}
	case Int32:
		d := t.I32()
		for i := range d {
			d[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
		}
	case Int64:
		d := t.I64()
		for i := range d {
			d[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	case Bool:
		d := t.Bools()
		for i := range d {
			d[i] = buf[i] != 0
		}
	}
	return t, src[need:], nil
}
