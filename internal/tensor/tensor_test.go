package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeNumElements(t *testing.T) {
	cases := []struct {
		shape Shape
		want  int
	}{
		{nil, 1},
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{3, 4}, 12},
		{Shape{2, 3, 4}, 24},
		{Shape{0, 7}, 0},
	}
	for _, c := range cases {
		if got := c.shape.NumElements(); got != c.want {
			t.Errorf("NumElements(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestShapeEqualClone(t *testing.T) {
	s := Shape{2, 3}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatalf("clone not equal: %v vs %v", s, c)
	}
	c[0] = 9
	if s[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if s.Equal(Shape{2}) || s.Equal(Shape{2, 4}) {
		t.Fatal("Equal false positives")
	}
}

func TestShapeOffset(t *testing.T) {
	s := Shape{2, 3, 4}
	if got := s.Offset(0, 0, 0); got != 0 {
		t.Errorf("offset(0,0,0)=%d", got)
	}
	if got := s.Offset(1, 2, 3); got != 23 {
		t.Errorf("offset(1,2,3)=%d, want 23", got)
	}
	if got := s.Offset(0, 1, 2); got != 6 {
		t.Errorf("offset(0,1,2)=%d, want 6", got)
	}
}

func TestShapeOffsetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	Shape{2, 2}.Offset(2, 0)
}

func TestDTypeSizes(t *testing.T) {
	want := map[DType]int{
		Float32: 4, Float64: 8, Complex64: 8, Complex128: 16,
		Int32: 4, Int64: 8, Bool: 1, Invalid: 0,
	}
	for dt, sz := range want {
		if got := dt.Size(); got != sz {
			t.Errorf("%v.Size() = %d, want %d", dt, got, sz)
		}
	}
}

func TestNewZeroFilled(t *testing.T) {
	for _, dt := range []DType{Float32, Float64, Complex64, Complex128, Int32, Int64, Bool} {
		tt := New(dt, 3, 2)
		if tt.NumElements() != 6 {
			t.Fatalf("%v: wrong elem count", dt)
		}
		if tt.DType() != dt {
			t.Fatalf("%v: wrong dtype", dt)
		}
	}
	z := New(Float64, 4)
	for _, v := range z.F64() {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
}

func TestFromWrappers(t *testing.T) {
	f := FromF32(Shape{2, 2}, []float32{1, 2, 3, 4})
	if f.F32()[3] != 4 {
		t.Fatal("FromF32 data mismatch")
	}
	d := FromF64(Shape{3}, []float64{1, 2, 3})
	if d.ByteSize() != 24 {
		t.Fatalf("ByteSize = %d", d.ByteSize())
	}
	c := FromC128(Shape{1}, []complex128{2 + 3i})
	if c.C128()[0] != 2+3i {
		t.Fatal("FromC128 mismatch")
	}
	i := FromI64(Shape{2}, []int64{7, 8})
	if i.I64()[1] != 8 {
		t.Fatal("FromI64 mismatch")
	}
	b := FromBool(Shape{2}, []bool{true, false})
	if !b.Bools()[0] || b.Bools()[1] {
		t.Fatal("FromBool mismatch")
	}
}

func TestFromPanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromF32(Shape{3}, []float32{1, 2})
}

func TestScalars(t *testing.T) {
	if ScalarF64(2.5).ScalarFloat() != 2.5 {
		t.Fatal("ScalarF64 round trip")
	}
	if ScalarF32(1.5).ScalarFloat() != 1.5 {
		t.Fatal("ScalarF32 round trip")
	}
	if ScalarI64(42).ScalarInt() != 42 {
		t.Fatal("ScalarI64 round trip")
	}
	if ScalarC128(1 + 2i).C128()[0] != 1+2i {
		t.Fatal("ScalarC128 round trip")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromF64(Shape{2}, []float64{1, 2})
	b := a.Clone()
	b.F64()[0] = 99
	if a.F64()[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone should equal original")
	}
}

func TestReshape(t *testing.T) {
	a := FromF32(Shape{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Shape().Equal(Shape{3, 2}) {
		t.Fatalf("shape %v", b.Shape())
	}
	// Storage shared.
	b.F32()[0] = 42
	if a.F32()[0] != 42 {
		t.Fatal("reshape should share storage")
	}
	if _, err := a.Reshape(4, 2); err == nil {
		t.Fatal("expected error for bad reshape")
	}
}

func TestEqualAndApprox(t *testing.T) {
	a := FromF64(Shape{3}, []float64{1, 2, 3})
	b := FromF64(Shape{3}, []float64{1, 2, 3.0000001})
	if a.Equal(b) {
		t.Fatal("Equal should be exact")
	}
	if !a.ApproxEqual(b, 1e-5) {
		t.Fatal("ApproxEqual should tolerate 1e-7 relative error")
	}
	if a.ApproxEqual(b, 1e-12) {
		t.Fatal("ApproxEqual with tight tol should fail")
	}
	c := FromC128(Shape{1}, []complex128{1 + 1i})
	d := FromC128(Shape{1}, []complex128{1 + 1.0000001i})
	if !c.ApproxEqual(d, 1e-5) {
		t.Fatal("complex ApproxEqual")
	}
}

func TestStringSummary(t *testing.T) {
	a := New(Float32, 100)
	s := a.String()
	if len(s) == 0 || len(s) > 200 {
		t.Fatalf("String() length unreasonable: %q", s)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical stream")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

func TestRNGNormal(t *testing.T) {
	r := NewRNG(42)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestRandomUniformAllTypes(t *testing.T) {
	for _, dt := range []DType{Float32, Float64, Complex64, Complex128, Int32, Int64, Bool} {
		tt := RandomUniform(dt, 5, 4, 4)
		if tt.NumElements() != 16 {
			t.Fatalf("%v wrong count", dt)
		}
	}
	a := RandomUniform(Float64, 11, 8)
	b := RandomUniform(Float64, 11, 8)
	if !a.Equal(b) {
		t.Fatal("RandomUniform must be deterministic per seed")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tensors := []*Tensor{
		ScalarF64(3.14),
		FromF32(Shape{2, 3}, []float32{1, -2, 3, -4, 5, -6}),
		FromF64(Shape{4}, []float64{math.Pi, math.Inf(1), -0.0, 1e-300}),
		FromC128(Shape{2}, []complex128{1 + 2i, -3 - 4i}),
		FromI64(Shape{3}, []int64{-1, 0, math.MaxInt64}),
		FromI32(Shape{2}, []int32{-7, 7}),
		FromBool(Shape{3}, []bool{true, false, true}),
		RandomUniform(Complex64, 3, 5),
		New(Float32, 0), // empty tensor
	}
	for _, orig := range tensors {
		buf, err := orig.Encode(nil)
		if err != nil {
			t.Fatalf("encode %v: %v", orig, err)
		}
		if int64(len(buf)) != orig.EncodedSize() {
			t.Fatalf("EncodedSize %d != actual %d", orig.EncodedSize(), len(buf))
		}
		got, rest, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("leftover bytes: %d", len(rest))
		}
		if !orig.Equal(got) {
			t.Fatalf("round trip mismatch: %v vs %v", orig, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("empty input should error")
	}
	if _, _, err := Decode([]byte{200}); err == nil {
		t.Fatal("bad dtype should error")
	}
	good, _ := FromF64(Shape{4}, []float64{1, 2, 3, 4}).Encode(nil)
	if _, _, err := Decode(good[:len(good)-3]); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(vals []float64, seed uint64) bool {
		tt := FromF64(Shape{len(vals)}, vals)
		buf, err := tt.Encode(nil)
		if err != nil {
			return false
		}
		got, rest, err := Decode(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		// NaN != NaN under Equal, so compare bit patterns.
		a, b := tt.F64(), got.F64()
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatDecodeStream(t *testing.T) {
	a := FromF32(Shape{2}, []float32{1, 2})
	b := FromI64(Shape{1}, []int64{9})
	buf, _ := a.Encode(nil)
	buf, _ = b.Encode(buf)
	gotA, rest, err := Decode(buf)
	if err != nil || !gotA.Equal(a) {
		t.Fatalf("first decode: %v", err)
	}
	gotB, rest, err := Decode(rest)
	if err != nil || !gotB.Equal(b) || len(rest) != 0 {
		t.Fatalf("second decode: %v", err)
	}
}
