// Package timeline collects per-op execution events and renders them in the
// Chrome trace-event JSON format — the analogue of the TensorFlow Timeline
// tool the paper uses (Fig. 3) to inspect parallel execution across devices.
// Load the output in chrome://tracing or Perfetto.
package timeline

import (
	"encoding/json"
	"os"
	"sort"
	"sync"
	"time"
)

// Event is one completed op execution on one device.
type Event struct {
	Name   string  // node name
	Op     string  // op type
	Device string  // canonical device string
	Start  float64 // seconds since trace start
	End    float64 // seconds since trace start
}

// Trace is a threadsafe event collector.
type Trace struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
	// VirtualNow, when set, supplies timestamps from a simulation clock
	// instead of the wall clock.
	VirtualNow func() float64
	// Observer, when set, sees every event as it is recorded (after it is
	// stored; invoked outside the trace lock so it may call back into the
	// trace). The telemetry tier binds one to lift op events into
	// distributed-trace child spans. Set it before the first Add; it is
	// only read under the trace lock.
	Observer func(Event)
}

// New returns an empty trace anchored at the current wall time.
func New() *Trace {
	return &Trace{start: time.Now()}
}

// Start returns the wall-clock anchor trace-relative timestamps count from.
func (t *Trace) Start() time.Time { return t.start }

// Now returns the trace-relative timestamp in seconds.
func (t *Trace) Now() float64 {
	if t.VirtualNow != nil {
		return t.VirtualNow()
	}
	return time.Since(t.start).Seconds()
}

// Add records one event.
func (t *Trace) Add(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	obs := t.Observer
	t.mu.Unlock()
	if obs != nil {
		obs(ev)
	}
}

// AddSpan records an op that ran from start to end (trace-relative seconds).
func (t *Trace) AddSpan(name, op, device string, start, end float64) {
	t.Add(Event{Name: name, Op: op, Device: device, Start: start, End: end})
}

// Events returns a copy of all recorded events, ordered by start time.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeEvent is the trace-event JSON schema (subset).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// MarshalChrome renders the trace as Chrome trace-event JSON, one "thread"
// lane per device.
func (t *Trace) MarshalChrome() ([]byte, error) {
	events := t.Events()
	deviceLane := map[string]int{}
	var lanes []string
	for _, ev := range events {
		if _, ok := deviceLane[ev.Device]; !ok {
			deviceLane[ev.Device] = len(lanes)
			lanes = append(lanes, ev.Device)
		}
	}
	var out []chromeEvent
	for i, dev := range lanes {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: i,
			Args: map[string]string{"name": dev},
		})
	}
	for _, ev := range events {
		out = append(out, chromeEvent{
			Name: ev.Name,
			Cat:  "op",
			Ph:   "X",
			Ts:   ev.Start * 1e6,
			Dur:  (ev.End - ev.Start) * 1e6,
			PID:  1,
			TID:  deviceLane[ev.Device],
			Args: map[string]string{"op": ev.Op},
		})
	}
	return json.MarshalIndent(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out}, "", "  ")
}

// WriteFile writes the Chrome JSON form to path.
func (t *Trace) WriteFile(path string) error {
	b, err := t.MarshalChrome()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
