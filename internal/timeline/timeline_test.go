package timeline

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestAddAndOrderedEvents(t *testing.T) {
	tr := New()
	tr.AddSpan("b", "MatMul", "/device:GPU:0", 2.0, 3.0)
	tr.AddSpan("a", "RandomUniform", "/device:CPU:0", 0.5, 1.0)
	if tr.Len() != 2 {
		t.Fatalf("len %d", tr.Len())
	}
	evs := tr.Events()
	if evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatalf("events not ordered by start: %+v", evs)
	}
}

func TestVirtualClock(t *testing.T) {
	tr := New()
	now := 0.0
	tr.VirtualNow = func() float64 { return now }
	if tr.Now() != 0 {
		t.Fatal("virtual clock ignored")
	}
	now = 42.5
	if tr.Now() != 42.5 {
		t.Fatal("virtual clock not live")
	}
}

func TestWallClockMonotone(t *testing.T) {
	tr := New()
	a := tr.Now()
	b := tr.Now()
	if b < a {
		t.Fatal("wall clock went backwards")
	}
}

func TestChromeJSONStructure(t *testing.T) {
	tr := New()
	tr.AddSpan("mm", "MatMul", "/device:GPU:0", 0.001, 0.003)
	tr.AddSpan("ru", "RandomUniform", "/device:CPU:0", 0.000, 0.001)
	buf, err := tr.MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 device metadata records + 2 spans.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events %d", len(doc.TraceEvents))
	}
	var lanes, spans int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			lanes++
		case "X":
			spans++
			if ev["dur"].(float64) <= 0 {
				t.Fatal("span without duration")
			}
		}
	}
	if lanes != 2 || spans != 2 {
		t.Fatalf("lanes=%d spans=%d", lanes, spans)
	}
}

func TestWriteFile(t *testing.T) {
	tr := New()
	tr.AddSpan("x", "Add", "/device:CPU:0", 0, 1)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Re-read through the JSON parser.
	tr2 := New()
	_ = tr2
	b, err := tr.MarshalChrome()
	if err != nil || !strings.Contains(string(b), "Add") {
		t.Fatal("file content wrong")
	}
}

func TestConcurrentAdds(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.AddSpan("op", "Add", "/device:CPU:0", float64(i), float64(i)+1)
		}(i)
	}
	wg.Wait()
	if tr.Len() != 50 {
		t.Fatalf("lost events: %d", tr.Len())
	}
}
