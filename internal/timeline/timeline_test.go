package timeline

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestAddAndOrderedEvents(t *testing.T) {
	tr := New()
	tr.AddSpan("b", "MatMul", "/device:GPU:0", 2.0, 3.0)
	tr.AddSpan("a", "RandomUniform", "/device:CPU:0", 0.5, 1.0)
	if tr.Len() != 2 {
		t.Fatalf("len %d", tr.Len())
	}
	evs := tr.Events()
	if evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatalf("events not ordered by start: %+v", evs)
	}
}

func TestVirtualClock(t *testing.T) {
	tr := New()
	now := 0.0
	tr.VirtualNow = func() float64 { return now }
	if tr.Now() != 0 {
		t.Fatal("virtual clock ignored")
	}
	now = 42.5
	if tr.Now() != 42.5 {
		t.Fatal("virtual clock not live")
	}
}

func TestWallClockMonotone(t *testing.T) {
	tr := New()
	a := tr.Now()
	b := tr.Now()
	if b < a {
		t.Fatal("wall clock went backwards")
	}
}

func TestChromeJSONStructure(t *testing.T) {
	tr := New()
	tr.AddSpan("mm", "MatMul", "/device:GPU:0", 0.001, 0.003)
	tr.AddSpan("ru", "RandomUniform", "/device:CPU:0", 0.000, 0.001)
	buf, err := tr.MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 device metadata records + 2 spans.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events %d", len(doc.TraceEvents))
	}
	var lanes, spans int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			lanes++
		case "X":
			spans++
			if ev["dur"].(float64) <= 0 {
				t.Fatal("span without duration")
			}
		}
	}
	if lanes != 2 || spans != 2 {
		t.Fatalf("lanes=%d spans=%d", lanes, spans)
	}
}

func TestWriteFile(t *testing.T) {
	tr := New()
	tr.AddSpan("x", "Add", "/device:CPU:0", 0, 1)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Re-read through the JSON parser.
	tr2 := New()
	_ = tr2
	b, err := tr.MarshalChrome()
	if err != nil || !strings.Contains(string(b), "Add") {
		t.Fatal("file content wrong")
	}
}

func TestConcurrentAdds(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.AddSpan("op", "Add", "/device:CPU:0", float64(i), float64(i)+1)
		}(i)
	}
	wg.Wait()
	if tr.Len() != 50 {
		t.Fatalf("lost events: %d", tr.Len())
	}
}

// TestConcurrentSessionsShareTrace models several session.Run loops feeding
// one shared trace from distinct device sets at once — the multi-session
// shape the paper's Timeline figures come from. Every event must survive and
// every device must get exactly one lane in the Chrome rendering.
func TestConcurrentSessionsShareTrace(t *testing.T) {
	tr := New()
	const sessions, opsPer = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			dev := "/job:worker/task:" + string(rune('0'+s)) + "/device:CPU:0"
			for i := 0; i < opsPer; i++ {
				start := float64(s*opsPer + i)
				tr.AddSpan("op", "MatMul", dev, start, start+0.5)
			}
		}(s)
	}
	wg.Wait()
	if got := tr.Len(); got != sessions*opsPer {
		t.Fatalf("lost events: %d of %d", got, sessions*opsPer)
	}
	buf, err := tr.MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	lanes := map[string]bool{}
	spans := 0
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			name := ev["args"].(map[string]any)["name"].(string)
			if lanes[name] {
				t.Fatalf("device %q got two lanes", name)
			}
			lanes[name] = true
		case "X":
			spans++
		}
	}
	if len(lanes) != sessions || spans != sessions*opsPer {
		t.Fatalf("lanes=%d spans=%d", len(lanes), spans)
	}
}

// TestConcurrentVirtualAndWallTraces runs a virtual-clock trace and a
// wall-clock trace side by side under concurrent writers: the clocks must not
// bleed into each other (session isolation is per-Trace state, not global).
func TestConcurrentVirtualAndWallTraces(t *testing.T) {
	virt, wall := New(), New()
	virt.VirtualNow = func() float64 { return 1000 }
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			now := virt.Now()
			virt.AddSpan("v", "Add", "/device:CPU:0", now, now+1)
			wall.AddSpan("w", "Add", "/device:CPU:0", wall.Now(), wall.Now())
		}(i)
	}
	wg.Wait()
	if virt.Len() != 50 || wall.Len() != 50 {
		t.Fatalf("lost events: virt=%d wall=%d", virt.Len(), wall.Len())
	}
	for _, ev := range virt.Events() {
		if ev.Start != 1000 {
			t.Fatalf("virtual trace saw non-virtual timestamp %v", ev.Start)
		}
	}
	for _, ev := range wall.Events() {
		if ev.Start >= 1000 {
			t.Fatalf("wall trace saw virtual timestamp %v", ev.Start)
		}
	}
}

// TestObserverUnderConcurrency pins the Observer contract: it sees exactly
// one callback per Add, outside the trace lock (calling back into the trace
// must not deadlock), even with many concurrent recorders.
func TestObserverUnderConcurrency(t *testing.T) {
	tr := New()
	var seen sync.Map
	var calls, reentrant int64
	var mu sync.Mutex
	tr.Observer = func(ev Event) {
		mu.Lock()
		calls++
		reentrant = int64(tr.Len()) // would deadlock if invoked under tr.mu
		mu.Unlock()
		seen.Store(ev.Start, true)
	}
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.AddSpan("op", "Add", "/device:CPU:0", float64(i), float64(i)+1)
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if calls != 100 {
		t.Fatalf("observer called %d times, want 100", calls)
	}
	if reentrant == 0 {
		t.Fatal("observer never re-entered the trace")
	}
	for i := 0; i < 100; i++ {
		if _, ok := seen.Load(float64(i)); !ok {
			t.Fatalf("observer missed event %d", i)
		}
	}
}
