package collective_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/hw"
	"tfhpc/internal/rpc"
	"tfhpc/internal/simnet"
	"tfhpc/internal/tensor"
)

// runAll drives fn concurrently on every rank and returns the per-rank
// results, failing the test on any error.
func runAll(t *testing.T, groups []*collective.Group,
	fn func(g *collective.Group) (*tensor.Tensor, error)) []*tensor.Tensor {
	t.Helper()
	outs, errs := runAllErr(groups, fn)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return outs
}

func runAllErr(groups []*collective.Group,
	fn func(g *collective.Group) (*tensor.Tensor, error)) ([]*tensor.Tensor, []error) {
	p := len(groups)
	outs := make([]*tensor.Tensor, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], errs[r] = fn(groups[r])
		}(r)
	}
	wg.Wait()
	return outs, errs
}

// tcpGroups boots p rpc servers hosting hubs and returns TCP-backed groups
// (plus a closer).
func tcpGroups(t *testing.T, p int, opts collective.Options, timeout time.Duration) []*collective.Group {
	t.Helper()
	hubs := make([]*collective.Hub, p)
	servers := make([]*rpc.Server, p)
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		hubs[i] = collective.NewHub()
		servers[i] = rpc.NewServer()
		servers[i].Handle("CollSend", hubs[i].HandleSend)
		servers[i].HandleStream(collective.StreamMethod, hubs[i].HandleStream)
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}
	groups := make([]*collective.Group, p)
	for i := 0; i < p; i++ {
		tr, err := collective.NewTCPTransport("test", i, addrs, hubs[i], timeout, 1)
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = collective.NewGroup(tr, opts)
	}
	t.Cleanup(func() {
		for i := 0; i < p; i++ {
			groups[i].Close()
			servers[i].Close()
		}
	})
	return groups
}

func randVec(seed uint64, n int) *tensor.Tensor {
	r := tensor.NewRNG(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Float64()*2 - 1
	}
	return tensor.FromF64(tensor.Shape{n}, v)
}

// TestRingMatchesNaive is the acceptance property: on both transports, over
// group sizes and lengths that exercise uneven segments and sub-chunking,
// ring allreduce must agree with the serial gather-reduce-broadcast
// reference to tight tolerance.
func TestRingMatchesNaive(t *testing.T) {
	for _, transport := range []string{"loopback", "tcp"} {
		for _, p := range []int{1, 2, 3, 4, 7} {
			for _, n := range []int{1, 5, 64, 1023, 4096} {
				name := fmt.Sprintf("%s/p%d/n%d", transport, p, n)
				t.Run(name, func(t *testing.T) {
					// Tiny chunks force multi-chunk pipelining even at small n;
					// the algorithm is pinned so this stays the chunked-ring
					// property test (the picker would route small payloads to
					// doubling, covered by TestAlgorithmsMatchNaive).
					opts := collective.Options{ChunkBytes: 512, Algorithm: collective.AlgoRing}
					var groups []*collective.Group
					if transport == "tcp" {
						if testing.Short() && p > 4 {
							t.Skip("short mode")
						}
						groups = tcpGroups(t, p, opts, 10*time.Second)
					} else {
						groups = collective.NewLoopbackGroups(p, opts)
					}
					ins := make([]*tensor.Tensor, p)
					for r := 0; r < p; r++ {
						ins[r] = randVec(uint64(1000*p+r), n)
					}
					ring := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
						return g.AllReduce("ar", ins[g.Rank()], collective.OpSum)
					})
					naive := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
						return g.NaiveAllReduce("naive", ins[g.Rank()], collective.OpSum)
					})
					for r := 0; r < p; r++ {
						if !ring[r].ApproxEqual(naive[r], 1e-12) {
							t.Fatalf("rank %d: ring and naive disagree", r)
						}
						// Every rank must hold the identical ring result.
						if !ring[r].Equal(ring[0]) {
							t.Fatalf("rank %d: ring results differ between ranks", r)
						}
					}
				})
			}
		}
	}
}

// TestRingBitExactOnIntegers: with integer-valued float64 inputs every
// addition is exact, so the ring must match the serial reference
// bit-for-bit regardless of summation order.
func TestRingBitExactOnIntegers(t *testing.T) {
	p, n := 5, 777
	groups := collective.NewLoopbackGroups(p, collective.Options{ChunkBytes: 256, Algorithm: collective.AlgoRing})
	ins := make([]*tensor.Tensor, p)
	for r := 0; r < p; r++ {
		rng := tensor.NewRNG(uint64(r + 1))
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(rng.Intn(1000) - 500)
		}
		ins[r] = tensor.FromF64(tensor.Shape{n}, v)
	}
	ring := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.AllReduce("ar", ins[g.Rank()], collective.OpSum)
	})
	naive := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.NaiveAllReduce("naive", ins[g.Rank()], collective.OpSum)
	})
	for r := 0; r < p; r++ {
		if !ring[r].Equal(naive[r]) {
			t.Fatalf("rank %d: integer-valued allreduce not bit-exact", r)
		}
	}
}

func TestAllReduceDTypesAndMax(t *testing.T) {
	p := 4
	groups := collective.NewLoopbackGroups(p, collective.Options{})
	t.Run("int64-sum", func(t *testing.T) {
		outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
			v := tensor.FromI64(tensor.Shape{3}, []int64{int64(g.Rank()), 1, 10})
			return g.AllReduce("i64", v, collective.OpSum)
		})
		want := []int64{0 + 1 + 2 + 3, 4, 40}
		for i, w := range want {
			if outs[0].I64()[i] != w {
				t.Fatalf("elem %d = %d, want %d", i, outs[0].I64()[i], w)
			}
		}
	})
	t.Run("f32-max", func(t *testing.T) {
		outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
			v := tensor.FromF32(tensor.Shape{2}, []float32{float32(g.Rank()), -float32(g.Rank())})
			return g.AllReduce("f32max", v, collective.OpMax)
		})
		if outs[1].F32()[0] != 3 || outs[1].F32()[1] != 0 {
			t.Fatalf("max wrong: %v", outs[1])
		}
	})
	t.Run("unsupported", func(t *testing.T) {
		_, errs := runAllErr(groups, func(g *collective.Group) (*tensor.Tensor, error) {
			return g.AllReduce("bad", tensor.New(tensor.Complex128, 4), collective.OpSum)
		})
		for _, err := range errs {
			if err == nil {
				t.Fatal("complex allreduce should fail")
			}
		}
	})
}

func TestAllGather(t *testing.T) {
	for _, p := range []int{1, 3, 4} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			groups := collective.NewLoopbackGroups(p, collective.Options{ChunkBytes: 128})
			rows := 5
			outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
				v := make([]float64, rows)
				for i := range v {
					v[i] = float64(g.Rank()*100 + i)
				}
				return g.AllGather("ag", tensor.FromF64(tensor.Shape{rows}, v))
			})
			for r := 0; r < p; r++ {
				got := outs[r]
				if got.NumElements() != p*rows {
					t.Fatalf("rank %d: %d elements, want %d", r, got.NumElements(), p*rows)
				}
				for s := 0; s < p; s++ {
					for i := 0; i < rows; i++ {
						if got.F64()[s*rows+i] != float64(s*100+i) {
							t.Fatalf("rank %d: segment %d elem %d = %g", r, s, i, got.F64()[s*rows+i])
						}
					}
				}
			}
		})
	}
}

func TestAllGatherScalars(t *testing.T) {
	p := 4
	groups := collective.NewLoopbackGroups(p, collective.Options{})
	outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.AllGather("ag0", tensor.ScalarF64(float64(g.Rank())))
	})
	if !outs[2].Shape().Equal(tensor.Shape{p}) {
		t.Fatalf("scalar gather shape = %v", outs[2].Shape())
	}
	for i := 0; i < p; i++ {
		if outs[2].F64()[i] != float64(i) {
			t.Fatalf("elem %d = %g", i, outs[2].F64()[i])
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		for root := 0; root < p; root++ {
			t.Run(fmt.Sprintf("p%d/root%d", p, root), func(t *testing.T) {
				groups := collective.NewLoopbackGroups(p, collective.Options{ChunkBytes: 64})
				src := randVec(99, 301)
				outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
					if g.Rank() == root {
						return g.Broadcast("bc", src, root)
					}
					return g.Broadcast("bc", nil, root)
				})
				for r := 0; r < p; r++ {
					if !outs[r].Equal(src) {
						t.Fatalf("rank %d: broadcast mismatch", r)
					}
				}
			})
		}
	}
}

func TestBarrier(t *testing.T) {
	p := 6
	groups := collective.NewLoopbackGroups(p, collective.Options{})
	// Every rank increments before the barrier; after it, all must see p.
	var mu sync.Mutex
	entered := 0
	_, errs := runAllErr(groups, func(g *collective.Group) (*tensor.Tensor, error) {
		mu.Lock()
		entered++
		mu.Unlock()
		if err := g.Barrier("b"); err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if entered != p {
			return nil, fmt.Errorf("rank %d passed barrier with %d/%d entered", g.Rank(), entered, p)
		}
		return nil, nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestConcurrentKeys runs two independent collectives per rank concurrently
// under distinct keys on one shared group — the executor does exactly this
// when a graph holds independent collective nodes with an agreed order per
// key but races between keys.
func TestConcurrentKeys(t *testing.T) {
	p, n := 4, 2048
	groups := collective.NewLoopbackGroups(p, collective.Options{ChunkBytes: 256})
	var wg sync.WaitGroup
	errs := make(chan error, 2*p)
	for r := 0; r < p; r++ {
		for _, key := range []string{"left", "right"} {
			wg.Add(1)
			go func(r int, key string) {
				defer wg.Done()
				for iter := 0; iter < 10; iter++ {
					in := randVec(uint64(r+1), n)
					out, err := groups[r].AllReduce(key, in, collective.OpSum)
					if err != nil {
						errs <- fmt.Errorf("rank %d key %s iter %d: %w", r, key, iter, err)
						return
					}
					if out.NumElements() != n {
						errs <- fmt.Errorf("rank %d key %s: bad length", r, key)
						return
					}
				}
			}(r, key)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// --- fault injection (satellite: simnet faults under -race) ---

func faultyGroups(p int, plans []simnet.FaultPlan, opts collective.Options) []*collective.Group {
	eps := collective.NewLoopback(p)
	groups := make([]*collective.Group, p)
	for i, ep := range eps {
		groups[i] = collective.NewGroup(collective.NewFaulty(ep, plans[i]), opts)
	}
	return groups
}

func plansFor(p int, plan simnet.FaultPlan) []simnet.FaultPlan {
	plans := make([]simnet.FaultPlan, p)
	for i := range plans {
		plans[i] = plan
	}
	return plans
}

// TestFaultLatency: with model-derived link latency on every hop the
// collective still completes and stays correct.
func TestFaultLatency(t *testing.T) {
	p, n := 4, 512
	plan := simnet.NewFaultPlan()
	// Tegner's gRPC path for a chunk-sized message, compressed 100×.
	plan.LinkDelay = simnet.ModelLinkDelay(hw.Tegner, hw.Tegner.NodeTypes["k420"], simnet.GRPC, 4096, 0.01)
	if plan.LinkDelay <= 0 {
		t.Fatalf("model delay = %v, want > 0", plan.LinkDelay)
	}
	groups := faultyGroups(p, plansFor(p, plan), collective.Options{ChunkBytes: 1024})
	ins := make([]*tensor.Tensor, p)
	for r := range ins {
		ins[r] = randVec(uint64(r+7), n)
	}
	ring := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.AllReduce("lat", ins[g.Rank()], collective.OpSum)
	})
	naive := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.NaiveAllReduce("latn", ins[g.Rank()], collective.OpSum)
	})
	for r := 0; r < p; r++ {
		if !ring[r].ApproxEqual(naive[r], 1e-12) {
			t.Fatalf("rank %d: latency run corrupted the reduction", r)
		}
	}
}

// TestFaultSlowPeer: one straggler serialises the ring but must not corrupt
// it; the whole collective simply runs at the straggler's pace.
func TestFaultSlowPeer(t *testing.T) {
	p, n := 4, 256
	plan := simnet.NewFaultPlan()
	plan.SlowRank = 2
	plan.SlowBy = 2 * time.Millisecond
	groups := faultyGroups(p, plansFor(p, plan), collective.Options{ChunkBytes: 512, Algorithm: collective.AlgoRing})
	ins := make([]*tensor.Tensor, p)
	want := make([]float64, n)
	for r := range ins {
		ins[r] = randVec(uint64(r+11), n)
		for i, v := range ins[r].F64() {
			want[i] += v
		}
	}
	start := time.Now()
	outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.AllReduce("slow", ins[g.Rank()], collective.OpSum)
	})
	elapsed := time.Since(start)
	if !outs[0].ApproxEqual(tensor.FromF64(tensor.Shape{n}, want), 1e-12) {
		t.Fatal("slow-peer run corrupted the reduction")
	}
	// The straggler sends at least p-1 delayed messages on the critical path.
	if minWait := time.Duration(p-1) * plan.SlowBy; elapsed < minWait {
		t.Fatalf("finished in %v, impossible with a straggler slower than %v", elapsed, minWait)
	}
}

// TestFaultDroppedTask: a task dying mid-allreduce must surface an error on
// every rank — the dropped one and, through poisoned lanes, its peers.
func TestFaultDroppedTask(t *testing.T) {
	p, n := 4, 4096
	plans := plansFor(p, simnet.NewFaultPlan())
	plans[1].DropRank = 1
	plans[1].DropAfterSends = 3
	// Pin the ring: the drop budget is tuned to its chunk schedule (the
	// doubling path sends fewer, larger messages; its drop coverage lives in
	// TestDoublingDroppedTask).
	groups := faultyGroups(p, plans, collective.Options{ChunkBytes: 512, Algorithm: collective.AlgoRing})
	ins := make([]*tensor.Tensor, p)
	for r := range ins {
		ins[r] = randVec(uint64(r+13), n)
	}
	done := make(chan []error, 1)
	go func() {
		_, errs := runAllErr(groups, func(g *collective.Group) (*tensor.Tensor, error) {
			return g.AllReduce("drop", ins[g.Rank()], collective.OpSum)
		})
		done <- errs
	}()
	select {
	case errs := <-done:
		for r, err := range errs {
			if err == nil {
				t.Fatalf("rank %d: no error despite dropped task", r)
			}
		}
		if !strings.Contains(errs[1].Error(), "injected fault") {
			t.Fatalf("dropped rank error = %v", errs[1])
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dropped task hung the collective instead of erroring")
	}
}

// TestTCPDroppedTask: over TCP a dead peer is detected by the receive
// timeout (its server is gone, so sends also fail fast).
func TestTCPDroppedTask(t *testing.T) {
	p := 3
	groups := tcpGroups(t, p, collective.Options{ChunkBytes: 1 << 20}, 500*time.Millisecond)
	ins := make([]*tensor.Tensor, p)
	for r := range ins {
		ins[r] = randVec(uint64(r+17), 64)
	}
	// Rank 1 never joins; the others must error out, not hang.
	done := make(chan error, 2)
	for _, r := range []int{0, 2} {
		go func(r int) {
			_, err := groups[r].AllReduce("tcpdrop", ins[r], collective.OpSum)
			done <- err
		}(r)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("allreduce succeeded without rank 1")
			}
		case <-time.After(30 * time.Second):
			t.Fatal("missing rank hung the collective instead of timing out")
		}
	}
}
