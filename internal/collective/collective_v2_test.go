package collective_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/simnet"
	"tfhpc/internal/tensor"
)

// groupSizes is the rank-count sweep of the v2 property tests. The CI
// collective-matrix job pins one size per matrix leg via TFHPC_COLL_RANKS
// (odd and non-power-of-two sizes exercise the doubling fold/unfold and the
// tree's ragged last level); unset, the local run sweeps them all.
func groupSizes(t *testing.T) []int {
	if s := os.Getenv("TFHPC_COLL_RANKS"); s != "" {
		var ps []int
		for _, f := range strings.Split(s, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || p < 1 {
				t.Fatalf("bad TFHPC_COLL_RANKS %q", s)
			}
			ps = append(ps, p)
		}
		return ps
	}
	return []int{1, 2, 3, 4, 5}
}

// intVec returns a deterministic integer-valued float64 vector: sums of
// such values are exact in IEEE arithmetic, so every algorithm must agree
// with the serial reference bit-for-bit regardless of combination order.
func intVec(seed uint64, n int) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(rng.Intn(2000) - 1000)
	}
	return tensor.FromF64(tensor.Shape{n}, v)
}

func intVecAs(dt tensor.DType, seed uint64, n int) *tensor.Tensor {
	f := intVec(seed, n).F64()
	out := tensor.New(dt, n)
	switch dt {
	case tensor.Float32:
		d := out.F32()
		for i := range d {
			d[i] = float32(f[i])
		}
	case tensor.Float64:
		copy(out.F64(), f)
	case tensor.Int32:
		d := out.I32()
		for i := range d {
			d[i] = int32(f[i])
		}
	case tensor.Int64:
		d := out.I64()
		for i := range d {
			d[i] = int64(f[i])
		}
	}
	return out
}

// TestAlgorithmsMatchNaive is the v2 acceptance property: recursive
// doubling and the auto picker must match the serial gather-to-root
// reference bit-exactly on integer-valued inputs — every dtype, both
// reduction ops, both transports, group sizes including odd and
// non-power-of-two, lengths that exercise the fold/unfold paths.
func TestAlgorithmsMatchNaive(t *testing.T) {
	dtypes := []tensor.DType{tensor.Float32, tensor.Float64, tensor.Int32, tensor.Int64}
	for _, transport := range []string{"loopback", "tcp"} {
		for _, p := range groupSizes(t) {
			for _, alg := range []string{collective.AlgoDoubling, collective.AlgoAuto} {
				name := fmt.Sprintf("%s/p%d/%s", transport, p, alg)
				t.Run(name, func(t *testing.T) {
					if transport == "tcp" && testing.Short() && p > 4 {
						t.Skip("short mode")
					}
					var groups []*collective.Group
					opts := collective.Options{ChunkBytes: 512}
					if transport == "tcp" {
						groups = tcpGroups(t, p, opts, 20*time.Second)
					} else {
						groups = collective.NewLoopbackGroups(p, opts)
					}
					for _, n := range []int{1, 3, 64, 1023} {
						for _, dt := range dtypes {
							for _, op := range []string{collective.OpSum, collective.OpMax} {
								key := fmt.Sprintf("v2/%d/%v/%s", n, dt, op)
								ins := make([]*tensor.Tensor, p)
								for r := 0; r < p; r++ {
									ins[r] = intVecAs(dt, uint64(31*p+7*r+n), n)
								}
								got := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
									return g.AllReduceAlg(key, ins[g.Rank()], op, alg)
								})
								want := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
									return g.NaiveAllReduce("ref/"+key, ins[g.Rank()], op)
								})
								for r := 0; r < p; r++ {
									if !got[r].Equal(want[r]) {
										t.Fatalf("%s n=%d %v %s: rank %d differs from reference", name, n, dt, op, r)
									}
									if !got[r].Equal(got[0]) {
										t.Fatalf("%s n=%d %v %s: rank %d differs from rank 0", name, n, dt, op, r)
									}
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestDoublingBitIdenticalAcrossRanks: the doubling combination tree
// depends only on p, so even with arbitrary (non-integer) floats every
// rank must end with bit-identical results — the property the fusion
// buffer's fused-equals-unfused guarantee rests on.
func TestDoublingBitIdenticalAcrossRanks(t *testing.T) {
	for _, p := range groupSizes(t) {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			groups := collective.NewLoopbackGroups(p, collective.Options{})
			ins := make([]*tensor.Tensor, p)
			for r := 0; r < p; r++ {
				ins[r] = randVec(uint64(101*p+r), 777)
			}
			outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
				return g.AllReduceAlg("bits", ins[g.Rank()], collective.OpSum, collective.AlgoDoubling)
			})
			for r := 1; r < p; r++ {
				if !outs[r].Equal(outs[0]) {
					t.Fatalf("rank %d not bit-identical to rank 0", r)
				}
			}
		})
	}
}

// countingTransport counts Send calls so tests can observe which algorithm
// actually ran.
type countingTransport struct {
	collective.Transport
	sends *atomic.Int64
}

func (c *countingTransport) Send(to int, key string, tg uint64, t *tensor.Tensor) error {
	c.sends.Add(1)
	return c.Transport.Send(to, key, tg, t)
}

// TestPickerSwitchesAlgorithms verifies the bytes/p keying end to end: at
// p=4 a doubling allreduce sends log2(4)=2 messages per rank while the ring
// sends 2(p−1)=6 chunks, so the per-rank send count identifies the
// algorithm the picker chose on either side of the threshold.
func TestPickerSwitchesAlgorithms(t *testing.T) {
	const p = 4
	build := func(switchBytes int) ([]*collective.Group, *atomic.Int64) {
		eps := collective.NewLoopback(p)
		var sends atomic.Int64
		groups := make([]*collective.Group, p)
		for i, ep := range eps {
			groups[i] = collective.NewGroup(&countingTransport{ep, &sends},
				collective.Options{SwitchBytes: switchBytes, ChunkBytes: 1 << 30})
		}
		return groups, &sends
	}
	in := func(r int) *tensor.Tensor { return intVec(uint64(r), 1024) } // 8 KiB, 2 KiB/rank

	groups, sends := build(4 << 10) // threshold above 2 KiB/rank -> doubling
	runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.AllReduce("auto", in(g.Rank()), collective.OpSum)
	})
	if got := sends.Load(); got != 2*p {
		t.Fatalf("small payload: %d sends, want %d (doubling)", got, 2*p)
	}

	groups, sends = build(1 << 10) // threshold below 2 KiB/rank -> ring
	runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.AllReduce("auto", in(g.Rank()), collective.OpSum)
	})
	if got := sends.Load(); got != 6*p {
		t.Fatalf("large payload: %d sends, want %d (ring)", got, 6*p)
	}
}

// TestTreeBroadcast covers the binomial tree (now the default) across group
// sizes, roots and chunking; TestRingBroadcastPinned keeps the relay
// covered under its explicit option.
func TestTreeBroadcast(t *testing.T) {
	for _, p := range groupSizes(t) {
		for _, root := range []int{0, p - 1, p / 2} {
			t.Run(fmt.Sprintf("p%d/root%d", p, root), func(t *testing.T) {
				groups := collective.NewLoopbackGroups(p, collective.Options{ChunkBytes: 64})
				src := randVec(77, 301)
				outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
					if g.Rank() == root {
						return g.Broadcast("tb", src, root)
					}
					return g.Broadcast("tb", nil, root)
				})
				for r := 0; r < p; r++ {
					if !outs[r].Equal(src) {
						t.Fatalf("rank %d: tree broadcast mismatch", r)
					}
				}
			})
		}
	}
}

func TestRingBroadcastPinned(t *testing.T) {
	p := 5
	groups := collective.NewLoopbackGroups(p, collective.Options{ChunkBytes: 64, Algorithm: collective.AlgoRing})
	src := randVec(78, 130)
	outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
		if g.Rank() == 2 {
			return g.Broadcast("rb", src, 2)
		}
		return g.Broadcast("rb", nil, 2)
	})
	for r := 0; r < p; r++ {
		if !outs[r].Equal(src) {
			t.Fatalf("rank %d: ring broadcast mismatch", r)
		}
	}
}

// TestReduceScatter: rank r must end with exactly segment r (SegBounds
// split) of the full reduction, bit-exact on integer-valued inputs.
func TestReduceScatter(t *testing.T) {
	for _, transport := range []string{"loopback", "tcp"} {
		for _, p := range groupSizes(t) {
			// n < p cases leave some ranks with empty segments — they must
			// still flow through the relay schedule.
			for _, n := range []int{1, 7, 64, 1023} {
				t.Run(fmt.Sprintf("%s/p%d/n%d", transport, p, n), func(t *testing.T) {
					if transport == "tcp" && testing.Short() && p > 4 {
						t.Skip("short mode")
					}
					opts := collective.Options{ChunkBytes: 128}
					var groups []*collective.Group
					if transport == "tcp" {
						groups = tcpGroups(t, p, opts, 20*time.Second)
					} else {
						groups = collective.NewLoopbackGroups(p, opts)
					}
					ins := make([]*tensor.Tensor, p)
					want := make([]float64, n)
					for r := 0; r < p; r++ {
						ins[r] = intVec(uint64(13*p+r+n), n)
						for i, v := range ins[r].F64() {
							want[i] += v
						}
					}
					outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
						return g.ReduceScatter("rs", ins[g.Rank()], collective.OpSum)
					})
					for r := 0; r < p; r++ {
						lo, hi := collective.SegBounds(n, p, r)
						if outs[r].NumElements() != hi-lo {
							t.Fatalf("rank %d: segment has %d elements, want %d", r, outs[r].NumElements(), hi-lo)
						}
						for i, v := range outs[r].F64() {
							if v != want[lo+i] {
								t.Fatalf("rank %d: elem %d = %g, want %g", r, lo+i, v, want[lo+i])
							}
						}
					}
				})
			}
		}
	}
}

// TestAllGatherV gathers uneven per-rank shards — including an empty one —
// and checks rank-order concatenation, higher-rank trailing dims, and the
// complex dtype the FFT tiles ride on.
func TestAllGatherV(t *testing.T) {
	for _, p := range groupSizes(t) {
		t.Run(fmt.Sprintf("p%d/f64", p), func(t *testing.T) {
			groups := collective.NewLoopbackGroups(p, collective.Options{ChunkBytes: 64})
			lens := make([]int, p)
			for r := range lens {
				lens[r] = 3*r + 1
			}
			if p >= 3 {
				lens[1] = 0 // empty shard must flow through
			}
			outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
				r := g.Rank()
				v := make([]float64, lens[r])
				for i := range v {
					v[i] = float64(1000*r + i)
				}
				return g.AllGatherV("agv", tensor.FromF64(tensor.Shape{lens[r]}, v))
			})
			total := 0
			for _, l := range lens {
				total += l
			}
			for r := 0; r < p; r++ {
				if outs[r].NumElements() != total {
					t.Fatalf("rank %d: %d elements, want %d", r, outs[r].NumElements(), total)
				}
				pos := 0
				for s := 0; s < p; s++ {
					for i := 0; i < lens[s]; i++ {
						if outs[r].F64()[pos] != float64(1000*s+i) {
							t.Fatalf("rank %d: flat elem %d = %g, want %g", r, pos, outs[r].F64()[pos], float64(1000*s+i))
						}
						pos++
					}
				}
			}
		})
		t.Run(fmt.Sprintf("p%d/c128rows", p), func(t *testing.T) {
			groups := collective.NewLoopbackGroups(p, collective.Options{})
			const cols = 3
			outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
				r := g.Rank()
				rows := r + 1
				v := make([]complex128, rows*cols)
				for i := range v {
					v[i] = complex(float64(r), float64(i))
				}
				return g.AllGatherV("agvc", tensor.FromC128(tensor.Shape{rows, cols}, v))
			})
			wantRows := p * (p + 1) / 2
			for r := 0; r < p; r++ {
				if !outs[r].Shape().Equal(tensor.Shape{wantRows, cols}) {
					t.Fatalf("rank %d: shape %v, want [%d %d]", r, outs[r].Shape(), wantRows, cols)
				}
				if !outs[r].Equal(outs[0]) {
					t.Fatalf("rank %d: gathered rows differ from rank 0", r)
				}
			}
		})
	}
}

// TestAllGatherVTrailingMismatch: differing trailing dims must error on
// every rank, not hang or mis-concatenate.
func TestAllGatherVTrailingMismatch(t *testing.T) {
	p := 2
	groups := collective.NewLoopbackGroups(p, collective.Options{})
	_, errs := runAllErr(groups, func(g *collective.Group) (*tensor.Tensor, error) {
		cols := 2 + g.Rank() // 2 on rank 0, 3 on rank 1
		return g.AllGatherV("bad", tensor.New(tensor.Float64, 2, cols))
	})
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("trailing-dim mismatch went undetected")
	}
}

// TestAsyncHandles drives the Start/Join pair the AllReduceStart/Join ops
// ride on: two handles in flight at once (the double-buffer shape), joined
// out of order, plus the duplicate-start and missing-join error paths.
func TestAsyncHandles(t *testing.T) {
	p := 3
	groups := collective.NewLoopbackGroups(p, collective.Options{})
	a := make([]*tensor.Tensor, p)
	b := make([]*tensor.Tensor, p)
	for r := 0; r < p; r++ {
		a[r] = intVec(uint64(r+1), 64)
		b[r] = intVec(uint64(r+100), 64)
	}
	sum := func(ins []*tensor.Tensor) []float64 {
		out := make([]float64, ins[0].NumElements())
		for _, in := range ins {
			for i, v := range in.F64() {
				out[i] += v
			}
		}
		return out
	}
	wantA, wantB := sum(a), sum(b)

	_, errs := runAllErr(groups, func(g *collective.Group) (*tensor.Tensor, error) {
		r := g.Rank()
		if err := g.StartAllReduce("even", "ka", a[r], collective.OpSum); err != nil {
			return nil, err
		}
		if err := g.StartAllReduce("odd", "kb", b[r], collective.OpSum); err != nil {
			return nil, err
		}
		if err := g.StartAllReduce("even", "kc", a[r], collective.OpSum); err == nil {
			return nil, fmt.Errorf("duplicate start on handle accepted")
		}
		gotB, err := g.JoinAllReduce("odd")
		if err != nil {
			return nil, err
		}
		gotA, err := g.JoinAllReduce("even")
		if err != nil {
			return nil, err
		}
		for i := range wantA {
			if gotA.F64()[i] != wantA[i] || gotB.F64()[i] != wantB[i] {
				return nil, fmt.Errorf("async result mismatch at %d", i)
			}
		}
		if _, err := g.JoinAllReduce("even"); err == nil {
			return nil, fmt.Errorf("join of consumed handle accepted")
		}
		return nil, nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestAllReduceAsyncOrdering issues two asyncs under one key back to back:
// the sequence slot is reserved at call time, so results must match call
// order on every rank even though both collectives are in flight together.
func TestAllReduceAsyncOrdering(t *testing.T) {
	p := 4
	groups := collective.NewLoopbackGroups(p, collective.Options{})
	_, errs := runAllErr(groups, func(g *collective.Group) (*tensor.Tensor, error) {
		r := g.Rank()
		first := g.AllReduceAsync("k", intVec(uint64(r+1), 32), collective.OpSum)
		second := g.AllReduceAsync("k", intVec(uint64(r+50), 32), collective.OpSum)
		f, err := first.Wait()
		if err != nil {
			return nil, err
		}
		s, err := second.Wait()
		if err != nil {
			return nil, err
		}
		var wantF, wantS float64
		for q := 0; q < p; q++ {
			wantF += intVec(uint64(q+1), 32).F64()[0]
			wantS += intVec(uint64(q+50), 32).F64()[0]
		}
		if f.F64()[0] != wantF || s.F64()[0] != wantS {
			return nil, fmt.Errorf("async ordering broke: got (%g,%g) want (%g,%g)",
				f.F64()[0], s.F64()[0], wantF, wantS)
		}
		return nil, nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestDoublingDroppedTask: a task dying mid-butterfly must never hang the
// group. Unlike the ring — where every rank relays every segment — the
// butterfly lets ranks whose exchanges all preceded the failure finish with
// the complete result, so the contract is: the dropped rank and every rank
// still owed one of its messages error out, and any rank that does return
// holds the full, correct reduction.
func TestDoublingDroppedTask(t *testing.T) {
	p, n := 4, 4096
	plans := plansFor(p, simnet.NewFaultPlan())
	plans[1].DropRank = 1
	plans[1].DropAfterSends = 1
	groups := faultyGroups(p, plans, collective.Options{Algorithm: collective.AlgoDoubling})
	ins := make([]*tensor.Tensor, p)
	want := make([]float64, n)
	for r := range ins {
		ins[r] = randVec(uint64(r+13), n)
		for i, v := range ins[r].F64() {
			want[i] += v
		}
	}
	type result struct {
		outs []*tensor.Tensor
		errs []error
	}
	done := make(chan result, 1)
	go func() {
		outs, errs := runAllErr(groups, func(g *collective.Group) (*tensor.Tensor, error) {
			return g.AllReduce("drop2", ins[g.Rank()], collective.OpSum)
		})
		done <- result{outs, errs}
	}()
	select {
	case res := <-done:
		if res.errs[1] == nil {
			t.Fatal("dropped rank returned no error")
		}
		failed := 0
		wantT := tensor.FromF64(tensor.Shape{n}, want)
		for r, err := range res.errs {
			if err != nil {
				failed++
				continue
			}
			if !res.outs[r].ApproxEqual(wantT, 1e-12) {
				t.Fatalf("rank %d returned success with a corrupt reduction", r)
			}
		}
		if failed < 2 {
			t.Fatalf("only %d ranks errored; the rank owed the dropped message must fail too", failed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dropped task hung the doubling collective instead of erroring")
	}
}

// TestConcurrentKeysAcrossAlgorithms stresses mixed in-flight algorithms on
// one group: doubling, ring and reduce-scatter traffic under distinct keys
// at once, repeatedly, under -race.
func TestConcurrentKeysAcrossAlgorithms(t *testing.T) {
	p := 4
	groups := collective.NewLoopbackGroups(p, collective.Options{ChunkBytes: 256})
	var wg sync.WaitGroup
	errs := make(chan error, 3*p)
	for r := 0; r < p; r++ {
		for _, job := range []string{"small", "large", "rs"} {
			wg.Add(1)
			go func(r int, job string) {
				defer wg.Done()
				for iter := 0; iter < 8; iter++ {
					in := intVec(uint64(r+1), 512)
					var err error
					switch job {
					case "small":
						_, err = groups[r].AllReduceAlg(job, in, collective.OpSum, collective.AlgoDoubling)
					case "large":
						_, err = groups[r].AllReduceAlg(job, in, collective.OpSum, collective.AlgoRing)
					case "rs":
						_, err = groups[r].ReduceScatter(job, in, collective.OpSum)
					}
					if err != nil {
						errs <- fmt.Errorf("rank %d %s iter %d: %w", r, job, iter, err)
						return
					}
				}
			}(r, job)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
