package collective

import (
	"fmt"
	"io"
	"sync"
	"time"

	"tfhpc/internal/rpc"
	"tfhpc/internal/tensor"
	"tfhpc/internal/wire"
)

// DefaultRecvTimeout bounds how long a TCP Recv waits for a peer before
// declaring it lost. Collectives are bulk-synchronous, so a peer that stays
// silent this long has almost certainly died rather than fallen behind.
const DefaultRecvTimeout = 2 * time.Minute

// Hub is the server side of the TCP transport: the inbox a task exposes over
// internal/rpc. Register HandleSend under the "CollSend" method; every
// TCPTransport on the task then drains its group's lanes from here.
type Hub struct {
	mu     sync.Mutex
	groups map[string]*hubGroup
	closed bool
}

type hubGroup struct {
	mu    sync.Mutex
	lanes map[int]*lane
}

func (g *hubGroup) lane(from int) *lane {
	g.mu.Lock()
	defer g.mu.Unlock()
	l, ok := g.lanes[from]
	if !ok {
		l = newLane()
		g.lanes[from] = l
	}
	return l
}

func (g *hubGroup) fail(err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, l := range g.lanes {
		l.fail(err)
	}
}

// NewHub returns an empty inbox registry.
func NewHub() *Hub {
	return &Hub{groups: make(map[string]*hubGroup)}
}

// group returns the named group's inbox, creating it on first use — a peer's
// first chunk may arrive before the local transport is constructed.
func (h *Hub) group(name string) (*hubGroup, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("collective: hub is closed")
	}
	g, ok := h.groups[name]
	if !ok {
		g = &hubGroup{lanes: make(map[int]*lane)}
		h.groups[name] = g
	}
	return g, nil
}

// CloseGroup poisons one group's lanes (receivers fail fast) and forgets it.
func (h *Hub) CloseGroup(name string) {
	h.mu.Lock()
	g := h.groups[name]
	delete(h.groups, name)
	h.mu.Unlock()
	if g != nil {
		g.fail(fmt.Errorf("collective: group %q closed", name))
	}
}

// Close poisons every group; registered after-the-fact groups fail too.
func (h *Hub) Close() {
	h.mu.Lock()
	groups := h.groups
	h.groups = make(map[string]*hubGroup)
	h.closed = true
	h.mu.Unlock()
	for name, g := range groups {
		g.fail(fmt.Errorf("collective: group %q closed", name))
	}
}

// HandleSend is the rpc.Handler for incoming chunks. Request encoding:
//
//	1 group, 2 from rank, 3 key, 4 tag, 5 tensor bytes
func (h *Hub) HandleSend(req []byte) ([]byte, error) {
	var group, key string
	var from int
	var tg uint64
	var t *tensor.Tensor
	d := wire.NewDecoder(req)
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			if group, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 2:
			v, err := d.Int()
			if err != nil {
				return nil, err
			}
			from = int(v)
		case 3:
			if key, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 4:
			if tg, err = d.Uint(); err != nil {
				return nil, err
			}
		case 5:
			tb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			if t, _, err = tensor.Decode(tb); err != nil {
				return nil, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
		}
	}
	if group == "" || t == nil {
		return nil, fmt.Errorf("collective: malformed CollSend")
	}
	g, err := h.group(group)
	if err != nil {
		return nil, err
	}
	g.lane(from).put(message{key: key, tag: tg, t: t})
	return nil, nil
}

func encodeSend(group string, from int, key string, tg uint64, t *tensor.Tensor) ([]byte, error) {
	tb, err := t.Encode(nil)
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder()
	e.String(1, group)
	e.Int(2, int64(from))
	e.String(3, key)
	e.Uint(4, tg)
	e.BytesField(5, tb)
	return e.Bytes(), nil
}

// TCPTransport is one rank's endpoint of a TCP group: it dials peers through
// pooled internal/rpc clients and drains its own traffic from the task's Hub.
type TCPTransport struct {
	group   string
	rank    int
	addrs   []string
	hub     *Hub
	timeout time.Duration
	// epoch fences group incarnations: it prefixes every message key, so a
	// chunk still in flight from an aborted run can never match a collective
	// of the membership that replaced it (all ranks of one incarnation must
	// share the epoch — CollInit distributes it).
	epoch string

	mu      sync.Mutex
	clients map[int]*rpc.Client
	closed  bool
}

// NewTCPTransport builds rank's endpoint for the named group over the given
// task addresses (one per rank, e.g. a cluster.Spec job). timeout bounds each
// Recv; 0 applies DefaultRecvTimeout. epoch identifies the group incarnation
// and must be identical on every rank.
func NewTCPTransport(group string, rank int, addrs []string, hub *Hub, timeout time.Duration, epoch uint64) (*TCPTransport, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("collective: rank %d outside %d addresses", rank, len(addrs))
	}
	if timeout <= 0 {
		timeout = DefaultRecvTimeout
	}
	return &TCPTransport{
		group:   group,
		rank:    rank,
		addrs:   append([]string(nil), addrs...),
		hub:     hub,
		timeout: timeout,
		epoch:   fmt.Sprintf("%d\x00", epoch),
		clients: make(map[int]*rpc.Client),
	}, nil
}

// Rank returns this endpoint's position in the group.
func (t *TCPTransport) Rank() int { return t.rank }

// Size returns the group size.
func (t *TCPTransport) Size() int { return len(t.addrs) }

func (t *TCPTransport) client(to int) (*rpc.Client, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("collective: rank %d is closed", t.rank)
	}
	c, ok := t.clients[to]
	if !ok {
		c = rpc.Dial(t.addrs[to])
		t.clients[to] = c
	}
	return c, nil
}

// Send ships one chunk to the peer's hub.
func (t *TCPTransport) Send(to int, key string, tg uint64, ten *tensor.Tensor) error {
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("collective: destination rank %d out of %d", to, len(t.addrs))
	}
	c, err := t.client(to)
	if err != nil {
		return err
	}
	req, err := encodeSend(t.group, t.rank, t.epoch+key, tg, ten)
	if err != nil {
		return err
	}
	if _, err := c.Call("CollSend", req); err != nil {
		return fmt.Errorf("collective: send to rank %d (%s): %w", to, t.addrs[to], err)
	}
	return nil
}

// Recv blocks for the matching chunk from the given sender, up to the
// transport's receive timeout.
func (t *TCPTransport) Recv(from int, key string, tg uint64) (*tensor.Tensor, error) {
	if from < 0 || from >= len(t.addrs) {
		return nil, fmt.Errorf("collective: source rank %d out of %d", from, len(t.addrs))
	}
	g, err := t.hub.group(t.group)
	if err != nil {
		return nil, err
	}
	return g.lane(from).take(t.epoch+key, tg, t.timeout)
}

// Close releases peer connections and poisons the local group inbox.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	clients := t.clients
	t.clients = nil
	t.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	t.hub.CloseGroup(t.group)
	return nil
}
