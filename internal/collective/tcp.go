package collective

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tfhpc/internal/rpc"
	"tfhpc/internal/telemetry"
	"tfhpc/internal/tensor"
	"tfhpc/internal/wire"
)

// DefaultRecvTimeout bounds how long a TCP Recv waits for a peer before
// declaring it lost. Collectives are bulk-synchronous, so a peer that stays
// silent this long has almost certainly died rather than fallen behind.
const DefaultRecvTimeout = 2 * time.Minute

// Hub is the server side of the TCP transport: the inbox a task exposes over
// internal/rpc. Register HandleSend under the "CollSend" method; every
// TCPTransport on the task then drains its group's lanes from here.
type Hub struct {
	mu     sync.Mutex
	groups map[string]*hubGroup
	closed bool
}

type hubGroup struct {
	epoch uint64
	mu    sync.Mutex
	lanes map[int]*lane
}

func (g *hubGroup) lane(from int) *lane {
	g.mu.Lock()
	defer g.mu.Unlock()
	l, ok := g.lanes[from]
	if !ok {
		l = newLane()
		g.lanes[from] = l
	}
	return l
}

func (g *hubGroup) fail(err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, l := range g.lanes {
		l.fail(err)
	}
}

// NewHub returns an empty inbox registry.
func NewHub() *Hub {
	return &Hub{groups: make(map[string]*hubGroup)}
}

// groupAt returns the named group's inbox for one epoch, creating it on
// first use — a peer's first chunk may arrive before the local transport is
// constructed. Epochs fence incarnations: a caller carrying an older epoch
// than the group's current one gets a StaleEpochError, and a caller carrying
// a newer one supersedes the group — the old inbox is poisoned with the
// typed rejection (so its blocked receivers fail fast) and a fresh one is
// installed at the new epoch.
func (h *Hub) groupAt(name string, epoch uint64) (*hubGroup, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, fmt.Errorf("collective: hub is closed")
	}
	g, ok := h.groups[name]
	if ok && epoch == g.epoch {
		h.mu.Unlock()
		return g, nil
	}
	if ok && epoch < g.epoch {
		cur := g.epoch
		h.mu.Unlock()
		return nil, &StaleEpochError{Group: name, Have: epoch, Current: cur}
	}
	old := g // nil unless superseding
	g = &hubGroup{epoch: epoch, lanes: make(map[int]*lane)}
	h.groups[name] = g
	h.mu.Unlock()
	if old != nil {
		old.fail(&StaleEpochError{Group: name, Have: old.epoch, Current: epoch})
	}
	return g, nil
}

// CloseGroup poisons one group's lanes (receivers fail fast) and forgets it,
// whatever its epoch — the abort path.
func (h *Hub) CloseGroup(name string) {
	h.mu.Lock()
	g := h.groups[name]
	delete(h.groups, name)
	h.mu.Unlock()
	if g != nil {
		g.fail(fmt.Errorf("collective: group %q closed", name))
	}
}

// CloseGroupEpoch poisons and forgets the group only while it is still at
// the given epoch. Transports close through this so a superseded
// incarnation's Close — CollInit replacement installs the new membership
// before closing the old — cannot tear down the group that replaced it.
func (h *Hub) CloseGroupEpoch(name string, epoch uint64) {
	h.mu.Lock()
	g := h.groups[name]
	if g == nil || g.epoch != epoch {
		h.mu.Unlock()
		return
	}
	delete(h.groups, name)
	h.mu.Unlock()
	g.fail(fmt.Errorf("collective: group %q closed", name))
}

// Close poisons every group; registered after-the-fact groups fail too.
func (h *Hub) Close() {
	h.mu.Lock()
	groups := h.groups
	h.groups = make(map[string]*hubGroup)
	h.closed = true
	h.mu.Unlock()
	for name, g := range groups {
		g.fail(fmt.Errorf("collective: group %q closed", name))
	}
}

// HandleSend is the rpc.Handler for incoming chunks. Request encoding:
//
//	1 group, 2 from rank, 3 key, 4 tag, 5 tensor bytes, 6 epoch
//
// A chunk carrying an older epoch than the group's current incarnation is
// rejected with a StaleEpochError; its text crosses the wire as the rpc
// remote error, so the zombie sender sees the typed rejection.
func (h *Hub) HandleSend(req []byte) ([]byte, error) {
	var group, key string
	var from int
	var tg, epoch uint64
	var t *tensor.Tensor
	d := wire.NewDecoder(req)
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			if group, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 2:
			v, err := d.Int()
			if err != nil {
				return nil, err
			}
			from = int(v)
		case 3:
			if key, err = d.StringVal(); err != nil {
				return nil, err
			}
		case 4:
			if tg, err = d.Uint(); err != nil {
				return nil, err
			}
		case 5:
			tb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			if t, _, err = tensor.Decode(tb); err != nil {
				return nil, err
			}
		case 6:
			if epoch, err = d.Uint(); err != nil {
				return nil, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
		}
	}
	if group == "" || t == nil {
		return nil, fmt.Errorf("collective: malformed CollSend")
	}
	return nil, h.deliver(group, epoch, from, message{key: key, tag: tg, t: t})
}

// deliver lands one message in the group's epoch incarnation: the lookup
// runs per message because a CollInit replacement swaps the group object
// out, and a lane cached at edge setup would feed the poisoned old one.
// The lookup is two map hits under short mutexes — no allocation.
func (h *Hub) deliver(group string, epoch uint64, from int, m message) error {
	g, err := h.groupAt(group, epoch)
	if err != nil {
		return err
	}
	g.lane(from).put(m)
	return nil
}

// failLane poisons the sender's lane in the group's epoch incarnation. A
// stale epoch is a no-op: a dying zombie edge must not poison the lane of
// the membership that replaced it.
func (h *Hub) failLane(group string, epoch uint64, from int, err error) {
	g, gerr := h.groupAt(group, epoch)
	if gerr != nil {
		return
	}
	g.lane(from).fail(err)
}

func encodeSend(group string, epoch uint64, from int, key string, tg uint64, t *tensor.Tensor) ([]byte, error) {
	tb, err := t.Encode(nil)
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder()
	e.String(1, group)
	e.Int(2, int64(from))
	e.String(3, key)
	e.Uint(4, tg)
	e.BytesField(5, tb)
	e.Uint(6, epoch)
	return e.Bytes(), nil
}

// StreamMethod is the rpc stream method name for persistent collective
// edges; register Hub.HandleStream under it next to "CollSend".
const StreamMethod = "CollStream"

// parseChunk decodes one relay record — the unit both stream edges and
// shared-memory rings carry:
//
//	uvarint key length | key | uvarint tag | tensor encoding
//
// The returned key aliases b; the tensor comes from the rank-1 pool.
func parseChunk(b []byte) ([]byte, uint64, *tensor.Tensor, error) {
	kl, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < kl {
		return nil, 0, nil, fmt.Errorf("collective: malformed chunk record key")
	}
	key := b[n : n+int(kl)]
	b = b[n+int(kl):]
	tg, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, nil, fmt.Errorf("collective: malformed chunk record tag")
	}
	ten, rest, err := tensor.DecodePooled(b[n:])
	if err != nil {
		return nil, 0, nil, err
	}
	if len(rest) != 0 {
		tensor.Recycle(ten)
		return nil, 0, nil, fmt.Errorf("collective: %d trailing bytes in chunk record", len(rest))
	}
	return key, tg, ten, nil
}

// appendChunk is parseChunk's inverse.
func appendChunk(b []byte, key string, tg uint64, t *tensor.Tensor) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(key)))
	b = append(b, key...)
	b = binary.AppendUvarint(b, tg)
	return t.Encode(b)
}

// HandleStream is the rpc.StreamHandler for StreamMethod: one persistent
// inbound edge from a peer rank. The first frame identifies the edge
// (uvarint group length | group | uvarint sender rank | uvarint epoch);
// every later frame is one chunk record. Chunks land in the same lanes
// CollSend fills, so receivers are transport-agnostic. An edge that ends
// abnormally poisons the sender's lane, cascading the failure to blocked
// receivers instead of leaving them to wait out the receive timeout. An edge
// whose epoch has been superseded gets a StaleEpochError back instead: the
// handler error resets the stream, the zombie's next Send fails with the
// rejection text, and the new incarnation's lanes are left alone.
//
// The loop is allocation-free in the steady state: frames recycle through
// the wire buffer pool, tensors through the rank-1 pool, and the interned
// key string is reused while consecutive chunks carry the same key (they do,
// within one collective).
func (h *Hub) HandleStream(st *rpc.Stream) error {
	buf, err := st.Recv(nil)
	if err != nil {
		return fmt.Errorf("collective: edge header: %w", err)
	}
	gl, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < gl {
		return fmt.Errorf("collective: malformed edge header")
	}
	group := string(buf[n : n+int(gl)])
	rest := buf[n+int(gl):]
	from64, k := binary.Uvarint(rest)
	if k <= 0 {
		return fmt.Errorf("collective: malformed edge header rank")
	}
	from := int(from64)
	epoch, k2 := binary.Uvarint(rest[k:])
	if k2 <= 0 {
		return fmt.Errorf("collective: malformed edge header epoch")
	}
	// Optional trailing trace/span ids (absent on headers from older
	// senders): under tracing, accepting an edge records a span in the
	// dialing rank's trace, joined by a flow arrow across the processes.
	if tail := rest[k+k2:]; len(tail) > 0 {
		if tr, n3 := binary.Uvarint(tail); n3 > 0 {
			if spn, n4 := binary.Uvarint(tail[n3:]); n4 > 0 {
				esc := telemetry.SpanContext{Trace: tr, Span: spn}
				if esc.Valid() {
					if s := telemetry.StartChild(esc, "collective_edge_accept"); s != nil {
						s.Arg("group", group).Arg("from", strconv.Itoa(from))
						s.FlowIn(telemetry.FlowID(esc.Trace, esc.Span))
						s.End()
					}
				}
			}
		}
	}
	var keyBuf []byte
	var key string
	for {
		b, err := st.Recv(buf)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			h.failLane(group, epoch, from, fmt.Errorf("collective: edge from rank %d lost: %w", from, err))
			return err
		}
		buf = b
		kb, tg, ten, err := parseChunk(b)
		if err != nil {
			h.failLane(group, epoch, from, err)
			return err
		}
		if !bytes.Equal(kb, keyBuf) {
			keyBuf = append(keyBuf[:0], kb...)
			key = string(kb)
		}
		if err := h.deliver(group, epoch, from, message{key: key, tag: tg, t: ten}); err != nil {
			tensor.Recycle(ten)
			return err
		}
	}
}

// clonePooled copies t into a pooled tensor when its shape allows, so the
// receiving side can recycle the copy instead of allocating per message.
func clonePooled(t *tensor.Tensor) *tensor.Tensor {
	if t.Rank() != 1 {
		return t.Clone()
	}
	c := tensor.GetPooled(t.DType(), t.NumElements())
	if err := copyFlatRange(c, 0, t, 0, t.NumElements()); err != nil {
		return t.Clone()
	}
	return c
}

// TransportMode selects how chunks leave a task over the network.
type TransportMode int

const (
	// ModeStream ships chunks over one persistent rpc stream per edge — the
	// default. The connection is dialed once at construction, frames flow
	// under credit-based flow control, and the per-chunk cost is one framed
	// write with no response round-trip.
	ModeStream TransportMode = iota
	// ModeCall round-trips one "CollSend" rpc per chunk — the legacy
	// transport, kept as the baseline the streaming path is benchmarked
	// against.
	ModeCall
)

// TransportConfig tunes NewNetTransport beyond the defaults.
type TransportConfig struct {
	// Mode picks the network edge flavor (default ModeStream).
	Mode TransportMode
	// DisableShm forces network edges even to co-located peers. Set it for
	// apples-to-apples network benchmarks; it must be uniform across the
	// group (a mixed group would stream into rings nobody drains). The
	// TFHPC_NO_SHM environment variable disables shm process-wide.
	DisableShm bool
}

// edge is one rank's sending half of a peer link. key is the full
// epoch-fenced key; the tensor is only read during the call.
type edge interface {
	send(key string, tg uint64, t *tensor.Tensor) error
	close()
}

// streamEdge ships chunk records over one persistent rpc stream.
type streamEdge struct {
	c    *rpc.Client
	addr string

	mu  sync.Mutex
	st  *rpc.Stream
	buf []byte
}

func newStreamEdge(addr, group string, from int, epoch uint64) (*streamEdge, error) {
	e := &streamEdge{c: rpc.Dial(addr), addr: addr}
	st, err := e.c.OpenStream(StreamMethod)
	if err != nil {
		e.c.Close()
		return nil, fmt.Errorf("collective: open edge to %s: %w", addr, err)
	}
	span := telemetry.StartRoot("collective_edge_open")
	span.Arg("peer", addr).Arg("group", group)
	sc := span.Context()
	hdr := binary.AppendUvarint(nil, uint64(len(group)))
	hdr = append(hdr, group...)
	hdr = binary.AppendUvarint(hdr, uint64(from))
	hdr = binary.AppendUvarint(hdr, epoch)
	// Trailing trace/span ids (zero bytes when untraced): the accepting
	// rank's edge-accept span joins this trace.
	hdr = binary.AppendUvarint(hdr, sc.Trace)
	hdr = binary.AppendUvarint(hdr, sc.Span)
	if err := st.Send(hdr); err != nil {
		span.End()
		st.Close()
		e.c.Close()
		return nil, fmt.Errorf("collective: edge header to %s: %w", addr, err)
	}
	span.FlowOut(telemetry.FlowID(sc.Trace, sc.Span))
	span.End()
	e.st = st
	return e, nil
}

func (e *streamEdge) send(key string, tg uint64, t *tensor.Tensor) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.st == nil {
		return fmt.Errorf("collective: edge to %s closed", e.addr)
	}
	b, err := appendChunk(e.buf[:0], key, tg, t)
	if cap(b) > cap(e.buf) {
		e.buf = b
	}
	if err != nil {
		return err
	}
	if err := e.st.Send(b); err != nil {
		return fmt.Errorf("collective: stream send to %s: %w", e.addr, err)
	}
	return nil
}

func (e *streamEdge) close() {
	e.mu.Lock()
	st := e.st
	e.st = nil
	e.mu.Unlock()
	if st != nil {
		st.CloseSend()
		st.Close()
	}
	e.c.Close()
}

// callEdge round-trips one rpc per chunk (ModeCall).
type callEdge struct {
	c     *rpc.Client
	addr  string
	group string
	from  int
	epoch uint64
}

func (e *callEdge) send(key string, tg uint64, t *tensor.Tensor) error {
	req, err := encodeSend(e.group, e.epoch, e.from, key, tg, t)
	if err != nil {
		return err
	}
	if _, err := e.c.Call("CollSend", req); err != nil {
		return fmt.Errorf("collective: send to %s: %w", e.addr, err)
	}
	return nil
}

func (e *callEdge) close() { e.c.Close() }

// selfEdge hands chunks straight to the local hub.
type selfEdge struct {
	hub   *Hub
	group string
	from  int
	epoch uint64
}

func (e *selfEdge) send(key string, tg uint64, t *tensor.Tensor) error {
	c := clonePooled(t)
	if err := e.hub.deliver(e.group, e.epoch, e.from, message{key: key, tag: tg, t: c}); err != nil {
		tensor.Recycle(c)
		return err
	}
	return nil
}

func (e *selfEdge) close() {}

// TCPTransport is one rank's endpoint of a networked group. Every peer edge
// is established eagerly and concurrently at construction — there is no
// lazy dial under a lock on the send path — and each edge picks the fastest
// available fabric: in-process shared memory when the peer's address is
// registered in this process, a persistent rpc stream otherwise (or one rpc
// call per chunk in ModeCall). Inbound traffic from all fabrics drains into
// the task Hub's lanes, so Recv never cares how a chunk arrived.
type TCPTransport struct {
	group   string
	rank    int
	addrs   []string
	hub     *Hub
	timeout time.Duration
	// epoch fences group incarnations: it prefixes every message key, so a
	// chunk still in flight from an aborted run can never match a collective
	// of the membership that replaced it (all ranks of one incarnation must
	// share the epoch — CollInit distributes it).
	epoch  string
	epochN uint64

	// keys interns epoch-prefixed keys so the per-chunk Send/Recv path does
	// not re-concatenate (and so re-allocate) the same string.
	keys struct {
		sync.Mutex
		m map[string]string
	}

	edges    []edge
	closed   atomic.Bool
	myInbox  *ShmInbox
	shmFroms []int
	drains   sync.WaitGroup
}

// NewTCPTransport builds rank's endpoint for the named group over the given
// task addresses (one per rank, e.g. a cluster.Spec job) with the default
// configuration: streaming edges, shared-memory fast path to co-located
// peers. timeout bounds each Recv; 0 applies DefaultRecvTimeout. epoch
// identifies the group incarnation and must be identical on every rank.
func NewTCPTransport(group string, rank int, addrs []string, hub *Hub, timeout time.Duration, epoch uint64) (*TCPTransport, error) {
	return NewNetTransport(group, rank, addrs, hub, timeout, epoch, TransportConfig{})
}

// NewNetTransport is NewTCPTransport with explicit edge configuration.
func NewNetTransport(group string, rank int, addrs []string, hub *Hub, timeout time.Duration, epoch uint64, cfg TransportConfig) (*TCPTransport, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("collective: rank %d outside %d addresses", rank, len(addrs))
	}
	if timeout <= 0 {
		timeout = DefaultRecvTimeout
	}
	t := &TCPTransport{
		group:   group,
		rank:    rank,
		addrs:   append([]string(nil), addrs...),
		hub:     hub,
		timeout: timeout,
		epoch:   fmt.Sprintf("%d\x00", epoch),
		epochN:  epoch,
		edges:   make([]edge, len(addrs)),
	}
	t.keys.m = make(map[string]string)

	// Install this incarnation in the hub up front: a newer epoch supersedes
	// (and poisons) the previous one, and a stale re-init fails fast here
	// instead of producing an endpoint every peer would reject.
	if _, err := hub.groupAt(group, epoch); err != nil {
		return nil, err
	}

	shmOK := !cfg.DisableShm && os.Getenv("TFHPC_NO_SHM") == ""
	var ownInbox *ShmInbox
	if shmOK {
		ownInbox = lookupShm(t.addrs[rank])
	}
	if ownInbox != nil {
		// Fence the inbox: rings of older incarnations are poisoned with the
		// typed stale-epoch rejection and can never be re-created, so a
		// zombie sender cannot write into (or silently re-open) them.
		ownInbox.Fence(group, epoch)
	}

	// Establish all edges up front, dialing network peers concurrently.
	var wg sync.WaitGroup
	errs := make([]error, len(t.addrs))
	for to := range t.addrs {
		if to == rank {
			t.edges[to] = &selfEdge{hub: hub, group: group, from: rank, epoch: epoch}
			continue
		}
		if ownInbox != nil {
			if peer := lookupShm(t.addrs[to]); peer != nil {
				ring, err := peer.ring(group, epoch, rank)
				if err != nil {
					errs[to] = err
					continue
				}
				t.edges[to] = &shmEdge{ring: ring}
				continue
			}
		}
		wg.Add(1)
		go func(to int) {
			defer wg.Done()
			if cfg.Mode == ModeCall {
				t.edges[to] = &callEdge{c: rpc.Dial(t.addrs[to]), addr: t.addrs[to], group: group, from: rank, epoch: epoch}
				return
			}
			t.edges[to], errs[to] = newStreamEdge(t.addrs[to], group, rank, epoch)
		}(to)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.teardown()
			return nil, err
		}
	}

	// Receiving side of the shm fast path: drain a ring per co-located peer
	// into the hub lanes. Peers choose shm by the same registry lookup, so
	// "its address is registered here" predicts "it will write to our ring".
	if ownInbox != nil {
		t.myInbox = ownInbox
		for from := range t.addrs {
			if from == rank || lookupShm(t.addrs[from]) == nil {
				continue
			}
			ring, err := ownInbox.ring(group, epoch, from)
			if err != nil {
				t.teardown()
				return nil, err
			}
			t.shmFroms = append(t.shmFroms, from)
			t.drains.Add(1)
			go t.drainShm(from, ring)
		}
	}
	return t, nil
}

// drainShm pumps one co-located peer's ring into its hub lane.
func (t *TCPTransport) drainShm(from int, ring *shmRing) {
	defer t.drains.Done()
	var rec, keyBuf []byte
	var key string
	for {
		var err error
		rec, err = ring.pop(rec)
		if err != nil {
			// The ring only fails when one side closed; the closing
			// transport poisons the group by name itself, so a stale fail
			// into a replacement incarnation is not needed (or wanted).
			return
		}
		kb, tg, ten, err := parseChunk(rec)
		if err != nil {
			t.hub.failLane(t.group, t.epochN, from, fmt.Errorf("collective: bad shm record from rank %d: %w", from, err))
			return
		}
		if !bytes.Equal(kb, keyBuf) {
			keyBuf = append(keyBuf[:0], kb...)
			key = string(kb)
		}
		if err := t.hub.deliver(t.group, t.epochN, from, message{key: key, tag: tg, t: ten}); err != nil {
			tensor.Recycle(ten)
			return
		}
	}
}

// Rank returns this endpoint's position in the group.
func (t *TCPTransport) Rank() int { return t.rank }

// Size returns the group size.
func (t *TCPTransport) Size() int { return len(t.addrs) }

// fullKey returns the interned epoch-prefixed key.
func (t *TCPTransport) fullKey(key string) string {
	t.keys.Lock()
	full, ok := t.keys.m[key]
	if !ok {
		full = t.epoch + key
		t.keys.m[key] = full
	}
	t.keys.Unlock()
	return full
}

// Send ships one chunk to the peer over its edge.
func (t *TCPTransport) Send(to int, key string, tg uint64, ten *tensor.Tensor) error {
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("collective: destination rank %d out of %d", to, len(t.addrs))
	}
	if t.closed.Load() {
		return fmt.Errorf("collective: rank %d is closed", t.rank)
	}
	if err := t.edges[to].send(t.fullKey(key), tg, ten); err != nil {
		return fmt.Errorf("collective: send to rank %d: %w", to, err)
	}
	return nil
}

// Recv blocks for the matching chunk from the given sender, up to the
// transport's receive timeout. Once a newer incarnation has superseded this
// endpoint's epoch, Recv fails fast with the typed stale-epoch rejection
// instead of waiting out the timeout.
func (t *TCPTransport) Recv(from int, key string, tg uint64) (*tensor.Tensor, error) {
	if from < 0 || from >= len(t.addrs) {
		return nil, fmt.Errorf("collective: source rank %d out of %d", from, len(t.addrs))
	}
	g, err := t.hub.groupAt(t.group, t.epochN)
	if err != nil {
		return nil, err
	}
	return g.lane(from).take(t.fullKey(key), tg, t.timeout)
}

func (t *TCPTransport) teardown() {
	for _, e := range t.edges {
		if e != nil {
			e.close()
		}
	}
	if t.myInbox != nil {
		for _, from := range t.shmFroms {
			t.myInbox.dropRing(t.group, t.epochN, from,
				fmt.Errorf("collective: group %q rank %d closed", t.group, t.rank))
		}
	}
	t.drains.Wait()
}

// Close releases peer edges, stops the shm drainers, and poisons the local
// group inbox — but only this epoch's incarnation of it: when a CollInit
// replacement has already installed a newer membership under the same name,
// closing the superseded transport must leave the new inbox untouched.
func (t *TCPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.teardown()
	t.hub.CloseGroupEpoch(t.group, t.epochN)
	return nil
}
