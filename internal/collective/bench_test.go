package collective_test

import (
	"fmt"
	"sync"
	"testing"

	"tfhpc/internal/collective"
	"tfhpc/internal/tensor"
)

func benchAllReduce(b *testing.B, naive bool) {
	const p, n = 4, 1 << 20
	groups := collective.NewLoopbackGroups(p, collective.Options{})
	ins := make([]*tensor.Tensor, p)
	for r := range ins {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64((i + r) % 97)
		}
		ins[r] = tensor.FromF64(tensor.Shape{n}, v)
	}
	b.SetBytes(int64(2 * (p - 1) * n * 8 / p))
	b.ResetTimer()
	for rep := 0; rep < b.N; rep++ {
		var wg sync.WaitGroup
		errs := make([]error, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				key := fmt.Sprintf("bench%d", rep)
				if naive {
					_, errs[r] = groups[r].NaiveAllReduce(key, ins[r], collective.OpSum)
				} else {
					_, errs[r] = groups[r].AllReduce(key, ins[r], collective.OpSum)
				}
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRingAllReduce(b *testing.B)  { benchAllReduce(b, false) }
func BenchmarkNaiveAllReduce(b *testing.B) { benchAllReduce(b, true) }

// BenchmarkDoublingAllReduceSmall is the latency-bound regime the picker
// routes to recursive doubling: a tiny per-rank payload where the ring's
// 2(p−1) steps dominate.
func BenchmarkDoublingAllReduceSmall(b *testing.B) {
	const p, n = 4, 512
	groups := collective.NewLoopbackGroups(p, collective.Options{})
	ins := make([]*tensor.Tensor, p)
	for r := range ins {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64((i + r) % 97)
		}
		ins[r] = tensor.FromF64(tensor.Shape{n}, v)
	}
	b.SetBytes(int64(2 * (p - 1) * n * 8 / p))
	b.ResetTimer()
	for rep := 0; rep < b.N; rep++ {
		var wg sync.WaitGroup
		errs := make([]error, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				_, errs[r] = groups[r].AllReduceAlg(fmt.Sprintf("bench%d", rep), ins[r],
					collective.OpSum, collective.AlgoDoubling)
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFusedAllReduce posts K small tensors per rank through the fusion
// buffer per iteration — the multi-parameter-tensor SGD shape.
func BenchmarkFusedAllReduce(b *testing.B) {
	const p, K, n = 4, 16, 128
	groups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{FlushTensors: K},
	})
	ins := make([]*tensor.Tensor, p)
	for r := range ins {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64((i + r) % 97)
		}
		ins[r] = tensor.FromF64(tensor.Shape{n}, v)
	}
	b.SetBytes(int64(2 * (p - 1) * K * n * 8 / p))
	b.ResetTimer()
	for rep := 0; rep < b.N; rep++ {
		var wg sync.WaitGroup
		errs := make([]error, p*K)
		for r := 0; r < p; r++ {
			for k := 0; k < K; k++ {
				wg.Add(1)
				go func(r, k int) {
					defer wg.Done()
					_, errs[r*K+k] = groups[r].AllReduceFused(
						fmt.Sprintf("bench%d/%d", rep, k), ins[r], collective.OpSum)
				}(r, k)
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRingAllGather(b *testing.B) {
	const p, n = 4, 1 << 18
	groups := collective.NewLoopbackGroups(p, collective.Options{})
	ins := make([]*tensor.Tensor, p)
	for r := range ins {
		ins[r] = tensor.New(tensor.Float64, n)
	}
	b.SetBytes(int64((p - 1) * n * 8))
	b.ResetTimer()
	for rep := 0; rep < b.N; rep++ {
		var wg sync.WaitGroup
		errs := make([]error, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				_, errs[r] = groups[r].AllGather(fmt.Sprintf("bench%d", rep), ins[r])
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
