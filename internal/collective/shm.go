package collective

import (
	"encoding/binary"
	"fmt"
	"sync"

	"tfhpc/internal/tensor"
)

// Shared-memory fast path. When two ranks of a group live in one process —
// the default in tests, benchmarks, and packed single-node deployments —
// shipping chunks through the loopback TCP stack costs two syscalls, two
// copies, and the kernel socket buffers per chunk. This file replaces that
// with a bounded byte ring in process memory: the sender frames a chunk
// record into the receiver's ring (one memcpy), the receiver's drainer pops
// it into a pooled tensor (one memcpy) and lands it in the same hub lane
// TCP traffic uses. Semantics match the network edges exactly: ordered
// per-sender delivery, bounded buffering with sender back-pressure, and
// poisoning on close so blocked peers fail fast.
//
// Discovery is by address: a task registers its ShmInbox under every address
// it answers on (RegisterShm, done by cluster.Server); a transport whose own
// and peer addresses both resolve in the registry wires a shm edge instead
// of dialing. Setting TFHPC_NO_SHM=1 disables the fast path process-wide.

// shmRingSize bounds per-(group, sender) buffering. Records larger than the
// ring still flow through: push and pop move bytes in pieces, so a jumbo
// record streams through the ring like a pipe.
const shmRingSize = 1 << 20

// shmRing is a byte ring carrying length-prefixed records from one sender
// to one receiver. Writes block while the ring is full; reads block while
// it is empty; fail poisons both sides.
type shmRing struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
	head int // index of the next byte to read
	used int
	err  error
}

func newShmRing(size int) *shmRing {
	r := &shmRing{buf: make([]byte, size)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// write copies all of p into the ring, blocking for space as needed.
func (r *shmRing) write(p []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(p) > 0 {
		for r.used == len(r.buf) && r.err == nil {
			r.cond.Wait()
		}
		if r.err != nil {
			return r.err
		}
		n := min(len(p), len(r.buf)-r.used)
		w := (r.head + r.used) % len(r.buf)
		k := copy(r.buf[w:], p[:n])
		if k < n {
			copy(r.buf, p[k:n])
		}
		r.used += n
		p = p[n:]
		r.cond.Broadcast()
	}
	return nil
}

// read fills all of p from the ring, blocking for data as needed. Buffered
// bytes are still delivered after a poison; the error surfaces only once
// the ring is dry.
func (r *shmRing) read(p []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(p) > 0 {
		for r.used == 0 && r.err == nil {
			r.cond.Wait()
		}
		if r.used == 0 {
			return r.err
		}
		n := min(len(p), r.used)
		end := r.head + n
		if end > len(r.buf) {
			end = len(r.buf)
		}
		k := copy(p, r.buf[r.head:end])
		if k < n {
			copy(p[k:n], r.buf)
		}
		r.head = (r.head + n) % len(r.buf)
		r.used -= n
		p = p[n:]
		r.cond.Broadcast()
	}
	return nil
}

// pop reads one length-prefixed record, reusing dst's capacity when it
// suffices.
func (r *shmRing) pop(dst []byte) ([]byte, error) {
	if cap(dst) < 4 {
		dst = make([]byte, 0, 512)
	}
	hdr := dst[:4]
	if err := r.read(hdr); err != nil {
		return dst, err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	if err := r.read(dst); err != nil {
		return dst, err
	}
	return dst, nil
}

// fail poisons the ring: blocked writers fail now, readers once drained.
func (r *shmRing) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// shmEdge is the sending half of a shared-memory peer link: it frames chunk
// records straight into the receiver's ring.
type shmEdge struct {
	ring *shmRing

	mu  sync.Mutex
	buf []byte
}

func (e *shmEdge) send(key string, tg uint64, t *tensor.Tensor) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := append(e.buf[:0], 0, 0, 0, 0) // record length, patched below
	b, err := appendChunk(b, key, tg, t)
	if cap(b) > cap(e.buf) {
		e.buf = b
	}
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	if err := e.ring.write(b); err != nil {
		return fmt.Errorf("collective: shm send: %w", err)
	}
	return nil
}

// close is a no-op: rings belong to the receiving inbox, which poisons them
// when its transport or server goes away.
func (e *shmEdge) close() {}

// shmKey identifies one inbound ring: traffic is segregated by group and
// epoch as well as sender, so a ring can never carry bytes across group
// incarnations.
type shmKey struct {
	group string
	epoch uint64
	from  int
}

// ShmInbox is the receiving side of a task's shared-memory fast path: one
// ring per (group, epoch, sender). Senders create rings on demand — a peer
// may construct its transport before ours exists — and the owning
// transport's drainers pump them into hub lanes. A per-group epoch fence
// (Fence, raised when a newer incarnation's transport constructs) rejects
// stale senders with the typed StaleEpochError.
type ShmInbox struct {
	mu     sync.Mutex
	rings  map[shmKey]*shmRing
	min    map[string]uint64 // per-group minimum admissible epoch
	closed bool
}

// NewShmInbox returns an empty inbox.
func NewShmInbox() *ShmInbox {
	return &ShmInbox{rings: make(map[shmKey]*shmRing), min: make(map[string]uint64)}
}

// ring returns the ring for (group, epoch, from), creating it on first use.
// Epochs below the group's fence are rejected, so a zombie sender can
// neither reach nor silently re-create a superseded incarnation's ring.
func (ib *ShmInbox) ring(group string, epoch uint64, from int) (*shmRing, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return nil, fmt.Errorf("collective: shm inbox is closed")
	}
	if minE := ib.min[group]; epoch < minE {
		return nil, &StaleEpochError{Group: group, Have: epoch, Current: minE}
	}
	k := shmKey{group: group, epoch: epoch, from: from}
	r, ok := ib.rings[k]
	if !ok {
		r = newShmRing(shmRingSize)
		ib.rings[k] = r
	}
	return r, nil
}

// Fence raises the group's minimum admissible epoch: rings of older
// incarnations are poisoned with a StaleEpochError — blocked zombie writers
// fail with the typed rejection — and forgotten, and ring() refuses to
// re-create them.
func (ib *ShmInbox) Fence(group string, epoch uint64) {
	ib.mu.Lock()
	if ib.closed || ib.min[group] >= epoch {
		ib.mu.Unlock()
		return
	}
	ib.min[group] = epoch
	type staleRing struct {
		r    *shmRing
		have uint64
	}
	var stale []staleRing
	for k, r := range ib.rings {
		if k.group == group && k.epoch < epoch {
			stale = append(stale, staleRing{r: r, have: k.epoch})
			delete(ib.rings, k)
		}
	}
	ib.mu.Unlock()
	for _, s := range stale {
		s.r.fail(&StaleEpochError{Group: group, Have: s.have, Current: epoch})
	}
}

// dropRing poisons and forgets one ring.
func (ib *ShmInbox) dropRing(group string, epoch uint64, from int, err error) {
	k := shmKey{group: group, epoch: epoch, from: from}
	ib.mu.Lock()
	r := ib.rings[k]
	delete(ib.rings, k)
	ib.mu.Unlock()
	if r != nil {
		r.fail(err)
	}
}

// Close poisons every ring; blocked senders and drainers fail fast.
func (ib *ShmInbox) Close() {
	ib.mu.Lock()
	rings := ib.rings
	ib.rings = make(map[shmKey]*shmRing)
	ib.closed = true
	ib.mu.Unlock()
	for _, r := range rings {
		r.fail(fmt.Errorf("collective: shm inbox closed"))
	}
}

// Process-global address registry: addr → inbox of the task answering there.
var shmReg = struct {
	mu sync.Mutex
	m  map[string]*ShmInbox
}{m: make(map[string]*ShmInbox)}

// RegisterShm publishes ib as the shared-memory inbox for addr. Transports
// constructed in this process route traffic for addr through ib instead of
// dialing it. Register every address a task answers on (bound and
// advertised forms).
func RegisterShm(addr string, ib *ShmInbox) {
	shmReg.mu.Lock()
	shmReg.m[addr] = ib
	shmReg.mu.Unlock()
}

// UnregisterShm removes addr's registration if it still points at ib.
func UnregisterShm(addr string, ib *ShmInbox) {
	shmReg.mu.Lock()
	if shmReg.m[addr] == ib {
		delete(shmReg.m, addr)
	}
	shmReg.mu.Unlock()
}

func lookupShm(addr string) *ShmInbox {
	shmReg.mu.Lock()
	ib := shmReg.m[addr]
	shmReg.mu.Unlock()
	return ib
}
