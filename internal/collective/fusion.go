package collective

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"tfhpc/internal/telemetry"
	"tfhpc/internal/tensor"
)

// FusionOptions tune a group's fusion buffer.
type FusionOptions struct {
	// FlushBytes triggers a fused pass once this many payload bytes are
	// pending. Default 64 KiB — comfortably inside the doubling regime, so
	// fused passes keep the latency-optimal algorithm.
	FlushBytes int64
	// FlushTensors triggers a fused pass once this many tensors are pending
	// (0 = no count trigger). Workloads that post a fixed set per step set
	// this to the set size for a deterministic, timer-free flush.
	FlushTensors int
	// FlushInterval is the deadline flush: whenever tensors are pending, a
	// pass fires at most this long after the first post — the guarantee
	// that a rank whose peers flushed early (byte threshold) joins their
	// negotiation instead of deadlocking them. Default 1ms.
	FlushInterval time.Duration
}

// DefaultFlushBytes and DefaultFlushInterval apply where FusionOptions
// leaves the zero value.
const (
	DefaultFlushBytes    = 64 << 10
	DefaultFlushInterval = time.Millisecond
)

// fusionReserved prefixes the buffer's internal negotiation and data keys;
// user collective keys must not start with it.
const fusionReserved = "\x00fuse/"

// fusionWaiter is one posted tensor: its identity, payload, and the channel
// its caller blocks on.
type fusionWaiter struct {
	key  string
	hash uint64
	t    *tensor.Tensor
	op   string
	done chan pendingResult
}

// Fusion is the Horovod-style tensor-fusion buffer: many goroutines post
// small allreduces (AllReduce blocks each poster), and a single flusher per
// rank coalesces them into one collective pass — one negotiation round that
// agrees on membership across ranks, then one packed allreduce per
// (dtype, op) bucket. Small-tensor workloads (per-parameter gradients) thus
// pay one log2(p)-step latency instead of one per tensor.
//
// Membership negotiation makes the buffer robust to timing skew: each round
// allgathers every rank's pending set and fuses exactly the tensors pending
// on all p ranks; stragglers stay buffered for the next round (armed by the
// deadline timer). The bulk-synchronous contract still applies in the
// large: every rank must eventually post the same tensors.
//
// Numerics: the fused pass reduces the packed payload with the same
// algorithm the unfused tensors would pick (small payloads → recursive
// doubling, whose combination tree depends only on p, not on element
// offset), so fused results are bit-identical to unfused ones — the
// property scripts/ci_smoke.sh asserts end-to-end on SGD weights.
type Fusion struct {
	g    *Group
	opts FusionOptions

	mu      sync.Mutex
	pending map[string]*fusionWaiter
	bytes   int64
	closed  error
	timer   *time.Timer
	started bool

	// roundMu serialises flush rounds: rounds are numbered by the reserved
	// keys' sequence counters, so every rank must run them one at a time.
	roundMu sync.Mutex
	kick    chan struct{}
	quit    chan struct{}
}

func newFusion(g *Group, opts FusionOptions) *Fusion {
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = DefaultFlushBytes
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	return &Fusion{
		g:       g,
		opts:    opts,
		pending: make(map[string]*fusionWaiter),
		kick:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
}

func fusionHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

func fusionOpCode(op string) (int64, error) {
	switch op {
	case "", OpSum:
		return 0, nil
	case OpMax:
		return 1, nil
	}
	return 0, fmt.Errorf("collective: unknown reduction op %q (want sum|max)", op)
}

func fusionOpName(code int64) string {
	if code == 1 {
		return OpMax
	}
	return OpSum
}

// AllReduce posts one tensor and blocks until the fused pass carrying it
// completes. Keys identify tensors across ranks (like plain collective
// keys); a key may not be re-posted while its previous post is pending.
func (f *Fusion) AllReduce(key string, t *tensor.Tensor, op string) (*tensor.Tensor, error) {
	if _, err := fusionOpCode(op); err != nil {
		return nil, err
	}
	switch t.DType() {
	case tensor.Float32, tensor.Float64, tensor.Int32, tensor.Int64:
	default:
		return nil, fmt.Errorf("collective: fused allreduce does not support dtype %v", t.DType())
	}
	if f.g.Size() == 1 {
		return t.Clone(), nil
	}
	// Payloads at or above the picker threshold bypass the buffer (the
	// exact complement of the picker's strict-below doubling branch): they
	// are bandwidth-bound, so coalescing buys nothing, and reducing them
	// right here — through the same picker an unfused call would hit —
	// keeps the fused-equals-unfused bit-identity unconditional (the
	// buffered path below pins doubling, which only matches the unfused
	// choice for payloads under the threshold). Sizes agree across ranks
	// by the collective contract, so every rank takes the same branch.
	if t.ByteSize()/int64(f.g.Size()) >= int64(f.g.opts.SwitchBytes) {
		return f.g.AllReduce(key, t, op)
	}
	w := &fusionWaiter{key: key, hash: fusionHash(key), t: t, op: op, done: make(chan pendingResult, 1)}

	f.mu.Lock()
	if f.closed != nil {
		err := f.closed
		f.mu.Unlock()
		return nil, err
	}
	if _, dup := f.pending[key]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("collective: fusion key %q already pending (one post per key per pass)", key)
	}
	for _, other := range f.pending {
		if other.hash == w.hash {
			f.mu.Unlock()
			return nil, fmt.Errorf("collective: fusion keys %q and %q collide; rename one", other.key, key)
		}
	}
	if !f.started {
		f.started = true
		go f.flushLoop()
	}
	f.pending[key] = w
	f.bytes += t.ByteSize()
	mFusionPendingBytes.Add(t.ByteSize())
	byBytes := f.bytes >= f.opts.FlushBytes
	byCount := f.opts.FlushTensors > 0 && len(f.pending) >= f.opts.FlushTensors
	if f.timer == nil {
		f.timer = time.AfterFunc(f.opts.FlushInterval, f.timerFlush)
	}
	f.mu.Unlock()

	if byBytes || byCount {
		if byBytes {
			mFusionTriggerBytes.Inc()
		} else {
			mFusionTriggerCount.Inc()
		}
		f.kickFlush()
	}
	res := <-w.done
	return res.t, res.err
}

// Flush runs one fused pass synchronously — the flush-on-barrier policy.
// It must be called from a goroutine that has no post of its own blocked in
// AllReduce (the pass would wait for itself).
func (f *Fusion) Flush() {
	mFusionTriggerExplicit.Inc()
	f.flushRound()
}

// timerFlush is the deadline-expiry kick, counted under its own cause.
func (f *Fusion) timerFlush() {
	mFusionTriggerTimer.Inc()
	f.kickFlush()
}

// Close fails every pending waiter and rejects future posts. The group
// calls it on teardown; transport poisoning surfaces the same way.
func (f *Fusion) Close() {
	f.mu.Lock()
	if f.closed == nil {
		f.closed = fmt.Errorf("collective: fusion buffer closed")
	}
	err := f.closed
	waiters := f.pending
	f.pending = make(map[string]*fusionWaiter)
	mFusionPendingBytes.Add(-f.bytes)
	f.bytes = 0
	if f.timer != nil {
		f.timer.Stop()
		f.timer = nil
	}
	started := f.started
	f.started = false
	f.mu.Unlock()
	if started {
		close(f.quit)
	}
	for _, w := range waiters {
		w.done <- pendingResult{nil, err}
	}
}

func (f *Fusion) kickFlush() {
	select {
	case f.kick <- struct{}{}:
	default:
	}
}

func (f *Fusion) flushLoop() {
	for {
		select {
		case <-f.kick:
			f.flushRound()
		case <-f.quit:
			return
		}
	}
}

// fail delivers err to every pending waiter and closes the buffer: a failed
// negotiation or fused pass means the group's bulk-synchronous state is
// unrecoverable (the transport is already poisoned by Group.fatal).
func (f *Fusion) fail(err error) {
	f.mu.Lock()
	if f.closed == nil {
		f.closed = err
	}
	waiters := f.pending
	f.pending = make(map[string]*fusionWaiter)
	mFusionPendingBytes.Add(-f.bytes)
	f.bytes = 0
	if f.timer != nil {
		f.timer.Stop()
		f.timer = nil
	}
	f.mu.Unlock()
	for _, w := range waiters {
		w.done <- pendingResult{nil, err}
	}
}

// flushRound is one fused pass: snapshot, negotiate membership, pack,
// reduce, unpack, deliver.
func (f *Fusion) flushRound() {
	f.roundMu.Lock()
	defer f.roundMu.Unlock()

	f.mu.Lock()
	if f.closed != nil || len(f.pending) == 0 {
		f.mu.Unlock()
		return
	}
	snapshot := make([]*fusionWaiter, 0, len(f.pending))
	for _, w := range f.pending {
		snapshot = append(snapshot, w)
	}
	// Disarm the deadline: it re-arms below if stragglers remain.
	if f.timer != nil {
		f.timer.Stop()
		f.timer = nil
	}
	f.mu.Unlock()

	sort.Slice(snapshot, func(i, j int) bool { return snapshot[i].hash < snapshot[j].hash })

	span := telemetry.StartRoot("fusion_round")
	defer span.End()

	// Negotiation: allgather every rank's pending set as (hash, dtype,
	// elems, op) quadruples. Keys are unique per rank, so a quadruple seen
	// p times is pending everywhere and may fuse; the rest wait.
	neg := make([]int64, 0, 4*len(snapshot))
	for _, w := range snapshot {
		opCode, _ := fusionOpCode(w.op)
		neg = append(neg, int64(w.hash), int64(w.t.DType()), int64(w.t.NumElements()), opCode)
	}
	negSpan := span.Child("fusion_negotiate")
	all, err := f.g.AllGatherV(fusionReserved+"neg", tensor.FromI64(tensor.Shape{len(neg)}, neg))
	negSpan.End()
	if err != nil {
		f.fail(err)
		return
	}
	flat := all.I64()
	if len(flat)%4 != 0 {
		f.fail(fmt.Errorf("collective: malformed fusion negotiation payload"))
		return
	}
	counts := make(map[[4]int64]int, len(flat)/4)
	byHash := make(map[int64][4]int64, len(flat)/4)
	for i := 0; i+4 <= len(flat); i += 4 {
		var q [4]int64
		copy(q[:], flat[i:i+4])
		// Two quadruples sharing a key hash but disagreeing on dtype,
		// element count or op mean the ranks posted mismatched tensors
		// under one key (or, vanishingly, two keys collided): without this
		// check the members' counts never reach p and every rank would
		// re-negotiate on the deadline timer forever instead of surfacing
		// the misuse the way a plain AllReduce does.
		if prev, seen := byHash[q[0]]; seen && prev != q {
			f.fail(fmt.Errorf("collective: fusion key (hash %#x) posted with mismatched dtype/shape/op across ranks: (%v,%d,%s) vs (%v,%d,%s)",
				uint64(q[0]), tensor.DType(prev[1]), prev[2], fusionOpName(prev[3]),
				tensor.DType(q[1]), q[2], fusionOpName(q[3])))
			return
		}
		byHash[q[0]] = q
		counts[q]++
	}
	p := f.g.Size()
	var members []*fusionWaiter
	for _, w := range snapshot {
		opCode, _ := fusionOpCode(w.op)
		q := [4]int64{int64(w.hash), int64(w.t.DType()), int64(w.t.NumElements()), opCode}
		if counts[q] == p {
			members = append(members, w)
		}
	}
	if len(members) == 0 {
		f.rearmIfPending()
		return
	}
	var passBytes int64
	for _, w := range members {
		passBytes += w.t.ByteSize()
	}
	mFusionFlushBytes.Observe(float64(passBytes))
	mFusionFusedTensors.Add(int64(len(members)))

	// One packed allreduce per (dtype, op) bucket, buckets and members in
	// deterministic order so every rank issues identical collectives.
	type bucketKey struct {
		dt tensor.DType
		op string
	}
	buckets := make(map[bucketKey][]*fusionWaiter)
	var order []bucketKey
	for _, w := range members {
		bk := bucketKey{w.t.DType(), fusionOpName(mustOpCode(w.op))}
		if _, ok := buckets[bk]; !ok {
			order = append(order, bk)
		}
		buckets[bk] = append(buckets[bk], w)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].dt != order[j].dt {
			return order[i].dt < order[j].dt
		}
		return order[i].op < order[j].op
	})

	for _, bk := range order {
		ws := buckets[bk]
		total := 0
		for _, w := range ws {
			total += w.t.NumElements()
		}
		packed := tensor.New(bk.dt, total)
		off := 0
		for _, w := range ws {
			if err := copyFlatRange(packed, off, w.t, 0, w.t.NumElements()); err != nil {
				f.fail(err)
				return
			}
			off += w.t.NumElements()
		}
		// The packed pass pins recursive doubling rather than going through
		// the picker: packing K small tensors can push the payload past the
		// ring threshold, and the ring's segment-dependent combination
		// order would silently break the fused-equals-unfused bit-identity
		// guarantee. Doubling's tree depends only on p, never on offset or
		// payload size, so pinning it preserves the contract at any pack
		// size — and the small-tensor regime the buffer exists for is
		// doubling territory anyway.
		red, err := f.g.AllReduceAlg(fmt.Sprintf("%sdata/%d/%s", fusionReserved, bk.dt, bk.op), packed, bk.op, AlgoDoubling)
		if err != nil {
			f.fail(err)
			return
		}
		off = 0
		for _, w := range ws {
			n := w.t.NumElements()
			out := tensor.New(bk.dt, w.t.Shape()...)
			if err := copyFlatRange(out, 0, red, off, off+n); err != nil {
				f.fail(err)
				return
			}
			off += n
			f.mu.Lock()
			delete(f.pending, w.key)
			f.bytes -= w.t.ByteSize()
			mFusionPendingBytes.Add(-w.t.ByteSize())
			f.mu.Unlock()
			w.done <- pendingResult{out, nil}
		}
	}
	f.rearmIfPending()
}

// rearmIfPending re-arms the deadline timer when stragglers stayed behind,
// so the next negotiation round is guaranteed without another post.
func (f *Fusion) rearmIfPending() {
	f.mu.Lock()
	if f.closed == nil && len(f.pending) > 0 && f.timer == nil {
		f.timer = time.AfterFunc(f.opts.FlushInterval, f.timerFlush)
	}
	f.mu.Unlock()
}

func mustOpCode(op string) int64 {
	c, _ := fusionOpCode(op)
	return c
}
