package collective

import (
	"errors"
	"fmt"
	"strings"
)

// Epoch fencing. Every group incarnation carries an epoch (CollInit
// distributes it; in-process runners pick their own), and each transport
// tier — hub lanes, stream edges, shared-memory rings, the loopback fabric —
// rejects traffic from an older incarnation with a StaleEpochError instead
// of hanging or silently mixing data. This is what makes elastic membership
// safe: after a rebuild, a zombie rank still holding the previous epoch's
// endpoint cannot corrupt the group that replaced it.

// staleEpochMarker is the substring every stale-epoch rejection carries. It
// is part of the error contract: rejections cross process boundaries as
// strings (rpc remote errors, stream resets), so IsStaleEpoch matches on it
// when the typed value has been flattened away.
const staleEpochMarker = "stale epoch"

// StaleEpochError is the typed rejection a superseded group incarnation
// gets: the sender (or receiver) holds epoch Have, but the group has moved
// on to Current.
type StaleEpochError struct {
	Group   string
	Have    uint64
	Current uint64
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("collective: %s %d for group %q (current epoch %d)",
		staleEpochMarker, e.Have, e.Group, e.Current)
}

// IsStaleEpoch reports whether err is a stale-epoch rejection — either the
// typed error itself or its string form after crossing a process boundary
// (rpc remote error, stream reset text).
func IsStaleEpoch(err error) bool {
	if err == nil {
		return false
	}
	var se *StaleEpochError
	if errors.As(err, &se) {
		return true
	}
	return strings.Contains(err.Error(), staleEpochMarker)
}
