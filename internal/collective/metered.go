package collective

import (
	"sync"
	"time"

	"tfhpc/internal/tensor"
)

// Metered wraps a transport with a wire-occupancy model: every Send holds
// the endpoint's single modelled NIC for cost(bytes) before delivering, so
// a rank's sends serialise through its NIC — across goroutines too, the
// way concurrent collectives contend for one physical link — while
// different ranks' transfers overlap. Exactly the property that separates
// a ring allreduce (every NIC busy) from a gather-to-root (the root's NIC
// is the bottleneck), and that makes coalescing many small messages into
// one fused pass pay off. The payloads and reductions stay real; only the
// wire is virtual, like every other experiment on the repo's simulated
// platform.
type Metered struct {
	inner Transport
	cost  func(bytes int64) time.Duration
	// nic serialises modelled wire occupancy: one transfer on the link at
	// a time per endpoint.
	nic sync.Mutex
}

// NewMetered wraps inner; cost maps a message size to its wire time
// (internal/simnet's TransferTime is the natural source).
func NewMetered(inner Transport, cost func(bytes int64) time.Duration) *Metered {
	return &Metered{inner: inner, cost: cost}
}

// Rank returns the inner endpoint's rank.
func (m *Metered) Rank() int { return m.inner.Rank() }

// Size returns the group size.
func (m *Metered) Size() int { return m.inner.Size() }

// Send occupies the modelled NIC for the wire time, then delivers.
func (m *Metered) Send(to int, key string, tg uint64, t *tensor.Tensor) error {
	if d := m.cost(t.ByteSize()); d > 0 {
		m.nic.Lock()
		time.Sleep(d)
		m.nic.Unlock()
	}
	return m.inner.Send(to, key, tg, t)
}

// Recv delegates to the inner endpoint.
func (m *Metered) Recv(from int, key string, tg uint64) (*tensor.Tensor, error) {
	return m.inner.Recv(from, key, tg)
}

// Close closes the inner endpoint.
func (m *Metered) Close() error { return m.inner.Close() }
