package collective

import (
	"time"

	"tfhpc/internal/tensor"
)

// Metered wraps a transport with a wire-occupancy model: every Send sleeps
// for cost(bytes) before delivering, so a rank's consecutive sends serialise
// through its modelled NIC while different ranks' transfers overlap —
// exactly the property that separates a ring allreduce (every NIC busy) from
// a gather-to-root (the root's NIC is the bottleneck). The payloads and
// reductions stay real; only the wire is virtual, like every other
// experiment on the repo's simulated platform.
type Metered struct {
	inner Transport
	cost  func(bytes int64) time.Duration
}

// NewMetered wraps inner; cost maps a message size to its wire time
// (internal/simnet's TransferTime is the natural source).
func NewMetered(inner Transport, cost func(bytes int64) time.Duration) *Metered {
	return &Metered{inner: inner, cost: cost}
}

// Rank returns the inner endpoint's rank.
func (m *Metered) Rank() int { return m.inner.Rank() }

// Size returns the group size.
func (m *Metered) Size() int { return m.inner.Size() }

// Send charges the modelled wire time, then delivers.
func (m *Metered) Send(to int, key string, tg uint64, t *tensor.Tensor) error {
	if d := m.cost(t.ByteSize()); d > 0 {
		time.Sleep(d)
	}
	return m.inner.Send(to, key, tg, t)
}

// Recv delegates to the inner endpoint.
func (m *Metered) Recv(from int, key string, tg uint64) (*tensor.Tensor, error) {
	return m.inner.Recv(from, key, tg)
}

// Close closes the inner endpoint.
func (m *Metered) Close() error { return m.inner.Close() }
