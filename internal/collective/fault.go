package collective

import (
	"fmt"
	"sync"
	"time"

	"tfhpc/internal/simnet"
	"tfhpc/internal/tensor"
)

// Faulty wraps a transport with a simnet.FaultPlan: every send pays the
// plan's injected latency (plus the straggler surcharge for the slow rank),
// and the drop rank's endpoint closes itself mid-collective after its send
// budget — which must surface as an error on every rank, not a hang.
type Faulty struct {
	inner Transport
	plan  simnet.FaultPlan

	mu    sync.Mutex
	sends int
	recvs int
}

// NewFaulty wraps inner under the given plan.
func NewFaulty(inner Transport, plan simnet.FaultPlan) *Faulty {
	return &Faulty{inner: inner, plan: plan}
}

// Rank returns the inner endpoint's rank.
func (f *Faulty) Rank() int { return f.inner.Rank() }

// Size returns the group size.
func (f *Faulty) Size() int { return f.inner.Size() }

// Send injects the plan's delay, then either delivers or — once the drop
// budget is spent — closes the endpoint and fails.
func (f *Faulty) Send(to int, key string, tg uint64, t *tensor.Tensor) error {
	f.mu.Lock()
	f.sends++
	n := f.sends
	f.mu.Unlock()
	if f.plan.ShouldDrop(f.Rank(), n) {
		f.inner.Close()
		return fmt.Errorf("collective: injected fault: rank %d dropped after %d sends", f.Rank(), n-1)
	}
	if d := f.plan.SendDelay(f.Rank()); d > 0 {
		time.Sleep(d)
	}
	return f.inner.Send(to, key, tg, t)
}

// Recv delegates to the inner endpoint unless the plan's recv-side drop
// budget is spent, in which case the endpoint closes itself and fails —
// modelling a task that dies while waiting on inbound traffic.
func (f *Faulty) Recv(from int, key string, tg uint64) (*tensor.Tensor, error) {
	f.mu.Lock()
	f.recvs++
	n := f.recvs
	f.mu.Unlock()
	if f.plan.ShouldDropRecv(f.Rank(), n) {
		f.inner.Close()
		return nil, fmt.Errorf("collective: injected fault: rank %d dropped after %d recvs", f.Rank(), n-1)
	}
	return f.inner.Recv(from, key, tg)
}

// Close closes the inner endpoint.
func (f *Faulty) Close() error { return f.inner.Close() }
