package collective_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/rpc"
	"tfhpc/internal/simnet"
	"tfhpc/internal/tensor"
)

// Stale-epoch fencing tests: every transport tier must reject a superseded
// incarnation's traffic with the typed StaleEpochError — fail fast and typed,
// never hang, never silently mix chunks across memberships. This is the
// transport contract the elastic training layer (apps/sgd) builds on.

// TestStaleEpochErrorContract pins the rejection's identity across a process
// boundary: the typed value matches errors.As, and its flattened string form
// (rpc remote errors, stream reset text) still matches IsStaleEpoch.
func TestStaleEpochErrorContract(t *testing.T) {
	typed := &collective.StaleEpochError{Group: "g", Have: 3, Current: 7}
	if !collective.IsStaleEpoch(typed) {
		t.Fatal("typed error not recognised")
	}
	var se *collective.StaleEpochError
	if !errors.As(fmt.Errorf("wrap: %w", typed), &se) || se.Current != 7 {
		t.Fatal("typed error lost through wrapping")
	}
	flattened := errors.New("rpc: remote error: " + typed.Error())
	if !collective.IsStaleEpoch(flattened) {
		t.Fatal("string-flattened rejection not recognised")
	}
	if collective.IsStaleEpoch(nil) || collective.IsStaleEpoch(errors.New("collective: rank 1 is closed")) {
		t.Fatal("false positive")
	}
}

// TestLoopbackFence: fencing the in-process fabric fails every endpoint's
// Send and Recv with the typed rejection, and wakes receivers already blocked.
func TestLoopbackFence(t *testing.T) {
	eps := collective.NewLoopback(2)
	if err := eps[0].Send(1, "pre", 1, randVec(1, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[1].Recv(0, "pre", 1); err != nil {
		t.Fatal(err)
	}

	blocked := make(chan error, 1)
	go func() {
		_, err := eps[1].Recv(0, "never", 2)
		blocked <- err
	}()
	time.Sleep(10 * time.Millisecond)
	eps[0].Fence("loop", 1, 2)

	select {
	case err := <-blocked:
		var se *collective.StaleEpochError
		if !errors.As(err, &se) || se.Have != 1 || se.Current != 2 {
			t.Fatalf("blocked recv woke with %v, want typed stale-epoch 1->2", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked recv hung through the fence")
	}
	if err := eps[0].Send(1, "post", 3, randVec(2, 8)); !collective.IsStaleEpoch(err) {
		t.Fatalf("send after fence: %v, want stale-epoch", err)
	}
	if _, err := eps[1].Recv(0, "post", 3); !collective.IsStaleEpoch(err) {
		t.Fatalf("recv after fence: %v, want stale-epoch", err)
	}
}

// epochHarness boots p rpc servers hosting hubs (optionally with shm inboxes
// registered) and hands back what a transport constructor needs.
type epochHarness struct {
	hubs    []*collective.Hub
	addrs   []string
	servers []*rpc.Server
	inboxes []*collective.ShmInbox
}

func newEpochHarness(t *testing.T, p int, shm bool) *epochHarness {
	t.Helper()
	h := &epochHarness{
		hubs:    make([]*collective.Hub, p),
		addrs:   make([]string, p),
		servers: make([]*rpc.Server, p),
		inboxes: make([]*collective.ShmInbox, p),
	}
	for i := 0; i < p; i++ {
		h.hubs[i] = collective.NewHub()
		h.servers[i] = rpc.NewServer()
		h.servers[i].Handle("CollSend", h.hubs[i].HandleSend)
		h.servers[i].HandleStream(collective.StreamMethod, h.hubs[i].HandleStream)
		addr, err := h.servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		h.addrs[i] = addr
		if shm {
			h.inboxes[i] = collective.NewShmInbox()
			collective.RegisterShm(addr, h.inboxes[i])
		}
	}
	t.Cleanup(func() {
		for i := 0; i < p; i++ {
			if h.inboxes[i] != nil {
				collective.UnregisterShm(h.addrs[i], h.inboxes[i])
				h.inboxes[i].Close()
			}
			h.servers[i].Close()
		}
	})
	return h
}

func (h *epochHarness) transport(t *testing.T, rank int, epoch uint64, cfg collective.TransportConfig) *collective.TCPTransport {
	t.Helper()
	tr, err := collective.NewNetTransport("elastic", rank, h.addrs, h.hubs[rank], 3*time.Second, epoch, cfg)
	if err != nil {
		t.Fatalf("rank %d epoch %d: %v", rank, epoch, err)
	}
	return tr
}

// relay pushes one chunk sender→receiver and checks it lands intact.
func relay(t *testing.T, send, recv *collective.TCPTransport, key string, tg uint64) {
	t.Helper()
	in := randVec(tg, 64)
	if err := send.Send(recv.Rank(), key, tg, in); err != nil {
		t.Fatalf("send %q: %v", key, err)
	}
	got, err := recv.Recv(send.Rank(), key, tg)
	if err != nil {
		t.Fatalf("recv %q: %v", key, err)
	}
	requireSameF64(t, key, in, got)
}

// TestEpochSupersede drives the full zombie scenario over every networked
// fabric: a group re-forms at a higher epoch while the old incarnation's
// endpoints are still alive. The old receiver must fail fast and typed, the
// old sender must get the typed rejection (not a hang, not silent delivery
// into the new group), a stale re-init must be refused at construction, and
// the superseded endpoints' Close must leave the new incarnation untouched.
func TestEpochSupersede(t *testing.T) {
	variants := []struct {
		name string
		shm  bool
		cfg  collective.TransportConfig
	}{
		{name: "stream"},
		{name: "call", cfg: collective.TransportConfig{Mode: collective.ModeCall}},
		{name: "shm", shm: true},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			if v.shm {
				skipIfNoShm(t)
			}
			h := newEpochHarness(t, 2, v.shm)
			old0 := h.transport(t, 0, 1, v.cfg)
			old1 := h.transport(t, 1, 1, v.cfg)
			relay(t, old0, old1, "gen1", 1)

			// The group re-forms at epoch 2 on both tasks.
			new0 := h.transport(t, 0, 2, v.cfg)
			new1 := h.transport(t, 1, 2, v.cfg)
			defer new0.Close()
			defer new1.Close()

			// Old receiver: fail fast with the typed value, not a timeout.
			start := time.Now()
			_, err := old1.Recv(0, "gen1", 2)
			var se *collective.StaleEpochError
			if !errors.As(err, &se) || se.Have != 1 || se.Current != 2 {
				t.Fatalf("superseded recv: %v, want typed stale-epoch 1->2", err)
			}
			if d := time.Since(start); d > time.Second {
				t.Fatalf("superseded recv took %v — it waited out a timeout instead of failing fast", d)
			}

			// Zombie sender: the rejection crosses the fabric. Streaming edges
			// buffer, so the first few sends may land in flight before the
			// reset text bounces back — loop until the error surfaces.
			err = nil
			for i := 0; i < 100 && err == nil; i++ {
				err = old0.Send(1, "zombie", uint64(i), randVec(9, 64))
				time.Sleep(time.Millisecond)
			}
			if !collective.IsStaleEpoch(err) {
				t.Fatalf("zombie send: %v, want stale-epoch rejection", err)
			}

			// Re-initialising at the dead epoch is refused at construction.
			if _, err := collective.NewNetTransport("elastic", 1, h.addrs, h.hubs[1], time.Second, 1, v.cfg); !collective.IsStaleEpoch(err) {
				t.Fatalf("stale re-init: %v, want stale-epoch", err)
			}

			// The new incarnation is untouched by all of the above, and by the
			// zombies' Close (epoch-gated group teardown).
			relay(t, new0, new1, "gen2", 7)
			old0.Close()
			old1.Close()
			relay(t, new1, new0, "gen2-after-close", 8)
		})
	}
}

// TestShmFencePoisonsStaleRing: fencing an inbox wakes a zombie blocked
// mid-write with the typed rejection and refuses to re-create the old ring.
func TestShmFencePoisonsStaleRing(t *testing.T) {
	skipIfNoShm(t)
	h := newEpochHarness(t, 2, true)
	old0 := h.transport(t, 0, 1, collective.TransportConfig{})
	defer old0.Close()

	// Rank 1's transport is never constructed, so nothing drains its inbound
	// ring: the sender fills the 1 MiB ring and blocks inside a write —
	// exactly where a zombie sits when the group re-forms without it.
	blocked := make(chan error, 1)
	go func() {
		payload := randVec(3, (256<<10)/8)
		var err error
		for i := 0; i < 64 && err == nil; i++ {
			err = old0.Send(1, "bulk", uint64(i), payload)
		}
		blocked <- err
	}()
	time.Sleep(50 * time.Millisecond)
	h.inboxes[1].Fence("elastic", 2)

	select {
	case err := <-blocked:
		if !collective.IsStaleEpoch(err) {
			t.Fatalf("zombie shm writer: %v, want stale-epoch", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("zombie shm writer hung through the fence")
	}
	// The poisoned ring stays poisoned for the zombie's edge...
	if err := old0.Send(1, "again", 99, randVec(4, 8)); !collective.IsStaleEpoch(err) {
		t.Fatalf("send on poisoned ring: %v, want stale-epoch", err)
	}
	// ...and cannot be re-created at the fenced-out epoch.
	if _, err := collective.NewNetTransport("elastic", 0, h.addrs, h.hubs[0], time.Second, 1, collective.TransportConfig{}); !collective.IsStaleEpoch(err) {
		t.Fatalf("stale ring re-creation: %v, want stale-epoch", err)
	}
}

// TestFaultRecvDrop: a rank dying while blocked on inbound traffic (recv-side
// drop) must error on every rank, not hang the survivors.
func TestFaultRecvDrop(t *testing.T) {
	p, n := 3, 2048
	plans := plansFor(p, simnet.NewFaultPlan())
	plans[1].RecvDropRank = 1
	plans[1].RecvDropAfter = 1
	groups := faultyGroups(p, plans, collective.Options{ChunkBytes: 512, Algorithm: collective.AlgoRing})
	ins := make([]*tensor.Tensor, p)
	for r := range ins {
		ins[r] = randVec(uint64(r+29), n)
	}
	done := make(chan []error, 1)
	go func() {
		_, errs := runAllErr(groups, func(g *collective.Group) (*tensor.Tensor, error) {
			return g.AllReduce("rdrop", ins[g.Rank()], collective.OpSum)
		})
		done <- errs
	}()
	select {
	case errs := <-done:
		for r, err := range errs {
			if err == nil {
				t.Fatalf("rank %d: no error despite recv-side drop", r)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("recv-side drop hung the collective")
	}
}
