package collective_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/rpc"
	"tfhpc/internal/tensor"
)

// netGroups boots p rpc servers hosting hubs and returns groups over
// NewNetTransport with the given config. When register is true every task's
// address is published in the shm registry, so all peer edges take the
// shared-memory fast path; ranks listed in netOnly stay unregistered and
// keep network edges (mixed-fabric coverage).
func netGroups(t *testing.T, p int, opts collective.Options, cfg collective.TransportConfig, register bool, netOnly map[int]bool) []*collective.Group {
	t.Helper()
	hubs := make([]*collective.Hub, p)
	servers := make([]*rpc.Server, p)
	inboxes := make([]*collective.ShmInbox, p)
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		hubs[i] = collective.NewHub()
		servers[i] = rpc.NewServer()
		servers[i].Handle("CollSend", hubs[i].HandleSend)
		servers[i].HandleStream(collective.StreamMethod, hubs[i].HandleStream)
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		if register && !netOnly[i] {
			inboxes[i] = collective.NewShmInbox()
			collective.RegisterShm(addr, inboxes[i])
		}
	}
	groups := make([]*collective.Group, p)
	for i := 0; i < p; i++ {
		tr, err := collective.NewNetTransport("test", i, addrs, hubs[i], 10*time.Second, 1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = collective.NewGroup(tr, opts)
	}
	t.Cleanup(func() {
		for _, g := range groups {
			g.Close()
		}
		for i := 0; i < p; i++ {
			if inboxes[i] != nil {
				collective.UnregisterShm(addrs[i], inboxes[i])
				inboxes[i].Close()
			}
			servers[i].Close()
		}
	})
	return groups
}

func skipIfNoShm(t *testing.T) {
	t.Helper()
	if os.Getenv("TFHPC_NO_SHM") != "" {
		t.Skip("TFHPC_NO_SHM set")
	}
}

// transportVariants runs the same property over every edge fabric the net
// transport can assemble.
func transportVariants(t *testing.T, opts collective.Options, fn func(t *testing.T, groups []*collective.Group, p int)) {
	variants := []struct {
		name     string
		register bool
		netOnly  map[int]bool
		cfg      collective.TransportConfig
	}{
		{name: "stream"},
		{name: "call", cfg: collective.TransportConfig{Mode: collective.ModeCall}},
		{name: "shm", register: true},
		{name: "mixed", register: true, netOnly: map[int]bool{1: true, 3: true}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			if v.register {
				skipIfNoShm(t)
			}
			for _, p := range []int{2, 4} {
				groups := netGroups(t, p, opts, v.cfg, v.register, v.netOnly)
				fn(t, groups, p)
			}
		})
	}
}

// TestTransportFabricsMatch checks allreduce, allgather, and broadcast over
// every fabric against the loopback reference.
func TestTransportFabricsMatch(t *testing.T) {
	opts := collective.Options{ChunkBytes: 512, Algorithm: collective.AlgoRing}
	transportVariants(t, opts, func(t *testing.T, groups []*collective.Group, p int) {
		n := 1023
		ins := make([]*tensor.Tensor, p)
		for r := 0; r < p; r++ {
			ins[r] = randVec(uint64(4000*p+r), n)
		}
		ref := collective.NewLoopbackGroups(p, opts)
		want := runAll(t, ref, func(g *collective.Group) (*tensor.Tensor, error) {
			return g.AllReduce("ar", ins[g.Rank()], collective.OpSum)
		})
		got := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
			return g.AllReduce("ar", ins[g.Rank()], collective.OpSum)
		})
		for r := 0; r < p; r++ {
			requireSameF64(t, fmt.Sprintf("allreduce p=%d rank %d", p, r), want[r], got[r])
		}

		wantG := runAll(t, ref, func(g *collective.Group) (*tensor.Tensor, error) {
			return g.AllGather("ag", ins[g.Rank()])
		})
		gotG := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
			return g.AllGather("ag", ins[g.Rank()])
		})
		for r := 0; r < p; r++ {
			requireSameF64(t, fmt.Sprintf("allgather p=%d rank %d", p, r), wantG[r], gotG[r])
		}

		gotB := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
			var in *tensor.Tensor
			if g.Rank() == 0 {
				in = ins[0]
			}
			return g.Broadcast("bc", in, 0)
		})
		for r := 0; r < p; r++ {
			requireSameF64(t, fmt.Sprintf("broadcast p=%d rank %d", p, r), ins[0], gotB[r])
		}

		_, errs := runAllErr(groups, func(g *collective.Group) (*tensor.Tensor, error) {
			return nil, g.Barrier("bar")
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("barrier p=%d rank %d: %v", p, r, err)
			}
		}
	})
}

// requireSameF64 asserts bit-identical float64 payloads.
func requireSameF64(t *testing.T, label string, want, got *tensor.Tensor) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil result", label)
	}
	w, g := want.F64(), got.F64()
	if len(w) != len(g) {
		t.Fatalf("%s: length %d, want %d", label, len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: element %d = %v, want %v", label, i, g[i], w[i])
		}
	}
}

// TestShmSenderFailsAfterReceiverClose checks shm back-pressure poisoning:
// once the receiving transport goes away, a blocked or future shm send
// errors instead of hanging.
func TestShmSenderFailsAfterReceiverClose(t *testing.T) {
	skipIfNoShm(t)
	opts := collective.Options{ChunkBytes: 1 << 20}
	groups := netGroups(t, 2, opts, collective.TransportConfig{}, true, nil)
	// Receiver leaves.
	if err := groups[1].Close(); err != nil {
		t.Fatal(err)
	}
	tr := groups[0].Transport()
	payload := randVec(1, 1<<16)
	deadline := time.After(5 * time.Second)
	done := make(chan error, 1)
	go func() {
		// The ring holds 1 MiB; pushing past it must fail once poisoned, and
		// the first send may still succeed into the buffered ring.
		var err error
		for i := 0; i < 8 && err == nil; i++ {
			err = tr.Send(1, "k", uint64(i), payload)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("send to closed shm receiver succeeded")
		}
	case <-deadline:
		t.Fatal("send to closed shm receiver hung")
	}
}

// TestShmJumboRecord pushes a tensor bigger than the ring through it: the
// record must stream through in pieces rather than deadlock or truncate.
func TestShmJumboRecord(t *testing.T) {
	skipIfNoShm(t)
	opts := collective.Options{ChunkBytes: 64 << 20} // one chunk: 2 MiB record through a 1 MiB ring
	groups := netGroups(t, 2, opts, collective.TransportConfig{}, true, nil)
	n := (2 << 20) / 8
	in := randVec(99, n)
	done := make(chan error, 1)
	go func() {
		done <- groups[0].Transport().Send(1, "jumbo", 1, in)
	}()
	got, err := groups[1].Transport().Recv(0, "jumbo", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	requireSameF64(t, "jumbo", in, got)
}

// TestChunkRelayAllocs is the transport-tier allocation gate: a steady-state
// send → stream → hub → recv round trip may not allocate. Frames recycle
// through the wire buffer pool, tensors through the rank-1 pool, keys are
// interned, and the lane timer is reused — one allocation anywhere on the
// path fails this test.
func TestChunkRelayAllocs(t *testing.T) {
	opts := collective.Options{}
	groups := netGroups(t, 2, opts, collective.TransportConfig{}, false, nil)
	send, recv := groups[0].Transport(), groups[1].Transport()
	payload := randVec(7, 512)
	relay := func() {
		if err := send.Send(1, "k", 7, payload); err != nil {
			t.Fatal(err)
		}
		got, err := recv.Recv(0, "k", 7)
		if err != nil {
			t.Fatal(err)
		}
		tensor.Recycle(got)
	}
	for i := 0; i < 200; i++ {
		relay()
	}
	if avg := testing.AllocsPerRun(300, relay); avg != 0 {
		t.Fatalf("chunk relay allocates %.2f allocs/op, want 0", avg)
	}
}

// TestShmRelayAllocs is the same gate over the shared-memory fast path.
func TestShmRelayAllocs(t *testing.T) {
	skipIfNoShm(t)
	groups := netGroups(t, 2, collective.Options{}, collective.TransportConfig{}, true, nil)
	send, recv := groups[0].Transport(), groups[1].Transport()
	payload := randVec(8, 512)
	relay := func() {
		if err := send.Send(1, "k", 9, payload); err != nil {
			t.Fatal(err)
		}
		got, err := recv.Recv(0, "k", 9)
		if err != nil {
			t.Fatal(err)
		}
		tensor.Recycle(got)
	}
	for i := 0; i < 200; i++ {
		relay()
	}
	if avg := testing.AllocsPerRun(300, relay); avg != 0 {
		t.Fatalf("shm relay allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkChunkRelay measures the one-chunk round trip per fabric.
func BenchmarkChunkRelay(b *testing.B) {
	for _, mode := range []string{"stream", "call", "shm"} {
		b.Run(mode, func(b *testing.B) {
			p := 2
			hubs := make([]*collective.Hub, p)
			servers := make([]*rpc.Server, p)
			inboxes := make([]*collective.ShmInbox, p)
			addrs := make([]string, p)
			for i := 0; i < p; i++ {
				hubs[i] = collective.NewHub()
				servers[i] = rpc.NewServer()
				servers[i].Handle("CollSend", hubs[i].HandleSend)
				servers[i].HandleStream(collective.StreamMethod, hubs[i].HandleStream)
				addr, err := servers[i].Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				addrs[i] = addr
				if mode == "shm" {
					inboxes[i] = collective.NewShmInbox()
					collective.RegisterShm(addr, inboxes[i])
				}
			}
			cfg := collective.TransportConfig{DisableShm: mode != "shm"}
			if mode == "call" {
				cfg.Mode = collective.ModeCall
			}
			trs := make([]*collective.TCPTransport, p)
			for i := 0; i < p; i++ {
				tr, err := collective.NewNetTransport("bench", i, addrs, hubs[i], 10*time.Second, 1, cfg)
				if err != nil {
					b.Fatal(err)
				}
				trs[i] = tr
			}
			defer func() {
				for i := 0; i < p; i++ {
					trs[i].Close()
					if inboxes[i] != nil {
						collective.UnregisterShm(addrs[i], inboxes[i])
						inboxes[i].Close()
					}
					servers[i].Close()
				}
			}()
			payload := randVec(3, 4096/8)
			b.SetBytes(4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := trs[0].Send(1, "k", uint64(i), payload); err != nil {
					b.Fatal(err)
				}
				got, err := trs[1].Recv(0, "k", uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				tensor.Recycle(got)
			}
		})
	}
}
