package collective

import (
	"fmt"
	"sync"

	"tfhpc/internal/tensor"
)

// loopbackFabric is the shared state of one in-process group: a full mesh of
// per-(receiver, sender) lanes plus liveness flags.
type loopbackFabric struct {
	size  int
	lanes [][]*lane // lanes[to][from]

	mu     sync.Mutex
	down   []bool
	fenced error // non-nil once a newer incarnation superseded this fabric
}

// Loopback is one rank's endpoint of an in-process group.
type Loopback struct {
	fabric *loopbackFabric
	rank   int
}

// NewLoopback builds an in-process transport fabric for p ranks and returns
// one endpoint per rank. Tensors are deep-copied on send, so both sides keep
// ownership of their buffers.
func NewLoopback(p int) []*Loopback {
	if p <= 0 {
		panic("collective: loopback needs at least one rank")
	}
	f := &loopbackFabric{size: p, down: make([]bool, p)}
	f.lanes = make([][]*lane, p)
	for to := range f.lanes {
		f.lanes[to] = make([]*lane, p)
		for from := range f.lanes[to] {
			f.lanes[to][from] = newLane()
		}
	}
	eps := make([]*Loopback, p)
	for r := range eps {
		eps[r] = &Loopback{fabric: f, rank: r}
	}
	return eps
}

// Rank returns this endpoint's position in the group.
func (l *Loopback) Rank() int { return l.rank }

// Size returns the group size.
func (l *Loopback) Size() int { return l.fabric.size }

func (l *Loopback) checkPeer(peer string, r int) error {
	if r < 0 || r >= l.fabric.size {
		return fmt.Errorf("collective: %s rank %d out of %d", peer, r, l.fabric.size)
	}
	l.fabric.mu.Lock()
	defer l.fabric.mu.Unlock()
	if l.fabric.fenced != nil {
		return l.fabric.fenced
	}
	if l.fabric.down[l.rank] {
		return fmt.Errorf("collective: rank %d is closed", l.rank)
	}
	if l.fabric.down[r] {
		return fmt.Errorf("collective: %s rank %d is down", peer, r)
	}
	return nil
}

// Send delivers a copy of t to the peer's inbox; it never blocks.
func (l *Loopback) Send(to int, key string, tg uint64, t *tensor.Tensor) error {
	if err := l.checkPeer("destination", to); err != nil {
		return err
	}
	l.fabric.lanes[to][l.rank].put(message{key: key, tag: tg, t: clonePooled(t)})
	return nil
}

// Recv blocks for the matching message from the given sender.
func (l *Loopback) Recv(from int, key string, tg uint64) (*tensor.Tensor, error) {
	if err := l.checkPeer("source", from); err != nil {
		return nil, err
	}
	return l.fabric.lanes[l.rank][from].take(key, tg, 0)
}

// Close marks this rank down and poisons every lane it feeds or drains, so
// peers blocked on its traffic fail fast instead of hanging — the behaviour
// a dropped task must have mid-collective.
func (l *Loopback) Close() error {
	f := l.fabric
	f.mu.Lock()
	if f.down[l.rank] {
		f.mu.Unlock()
		return nil
	}
	f.down[l.rank] = true
	f.mu.Unlock()
	err := fmt.Errorf("collective: rank %d left the group", l.rank)
	for to := 0; to < f.size; to++ {
		f.lanes[to][l.rank].fail(err)
	}
	for from := 0; from < f.size; from++ {
		f.lanes[l.rank][from].fail(err)
	}
	return nil
}

// Fence marks the whole fabric superseded by a newer group incarnation:
// every endpoint's Send and Recv — including sends into still-healthy lanes,
// which would otherwise be dropped silently — fails with the typed
// StaleEpochError from now on, and blocked receivers wake with it. Calling
// Fence on any endpoint fences all of them; they share one fabric.
func (l *Loopback) Fence(group string, have, current uint64) {
	f := l.fabric
	f.mu.Lock()
	if f.fenced != nil {
		f.mu.Unlock()
		return
	}
	err := &StaleEpochError{Group: group, Have: have, Current: current}
	f.fenced = err
	f.mu.Unlock()
	for to := range f.lanes {
		for from := range f.lanes[to] {
			f.lanes[to][from].fail(err)
		}
	}
}
