// Package collective is the runtime's collective-communication engine — the
// Horovod-style MPI collectives (allreduce, allgather, broadcast, barrier)
// that Section VIII of the paper points to as the scalable alternative to
// parameter-server reductions. Operations run over a ring: allreduce is the
// bandwidth-optimal reduce-scatter + allgather decomposition, chunked and
// pipelined so communication of one chunk overlaps the reduction of the
// next, with reductions fanned across the shared gemm worker pool.
//
// Two transports implement the same interface: an in-process loopback (tests
// and single-node runs) and TCP over the internal/rpc framed-message layer
// using the addresses of a cluster spec (each task dials its peers, every
// task hosts a Hub inbox).
package collective

import (
	"fmt"
	"sync"
	"time"

	"tfhpc/internal/tensor"
)

// Transport moves tagged tensor messages between the ranks of one group.
// Send may deliver to any peer (the ring algorithms only dial neighbours;
// the gather-to-root baseline dials the root). Recv blocks for the message
// with the given key and tag from one sender — matching is exact, so
// concurrent collectives with distinct keys share a transport safely.
type Transport interface {
	Rank() int
	Size() int
	Send(to int, key string, tag uint64, t *tensor.Tensor) error
	Recv(from int, key string, tag uint64) (*tensor.Tensor, error)
	// Close tears the endpoint down; peers blocked on Recv from this rank
	// fail fast on loopback and time out on TCP.
	Close() error
}

// tag packs (sequence, phase, step, subchunk) into one uint64. The sequence
// number is per (group, key), so repeated collectives under one key never
// collide; phases separate reduce-scatter / allgather / gather / broadcast
// traffic inside one operation.
func tag(seq uint64, phase, step, sub int) uint64 {
	return seq<<32 | uint64(phase&0xf)<<28 | uint64(step&0x3fff)<<14 | uint64(sub&0x3fff)
}

const (
	phaseReduceScatter = iota
	phaseAllGather
	phaseGather
	phaseBroadcast
	phaseDouble  // recursive-doubling exchange steps
	phaseTree    // binomial-tree broadcast
	phaseRS      // standalone reduce-scatter
	phaseGatherV // allgatherv size-exchange + data circulation
)

// message is one in-flight tensor with its match labels.
type message struct {
	key string
	tag uint64
	t   *tensor.Tensor
}

// lane is the per-sender inbox: an unbounded FIFO with tag-matched takes.
// Puts never block, so senders cannot deadlock against receivers.
type lane struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message
	err  error
	// timer is the lane's single reusable timeout timer: take re-arms it
	// instead of allocating one per wait, keeping the timed receive path
	// allocation-free. timerAt is when it is armed to fire (zero = unarmed).
	timer   *time.Timer
	timerAt time.Time
}

func newLane() *lane {
	l := &lane{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *lane) put(m message) {
	l.mu.Lock()
	if l.err == nil {
		l.msgs = append(l.msgs, m)
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// fail poisons the lane: pending and future takes return err.
func (l *lane) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// take removes and returns the message matching (key, tag), waiting up to
// timeout (0 = wait forever). Waiters share the lane's one timer: each
// checks its own deadline against the wall clock on wakeup and keeps the
// timer pointed at the earliest outstanding deadline.
func (l *lane) take(key string, tg uint64, timeout time.Duration) (*tensor.Tensor, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for i, m := range l.msgs {
			if m.key == key && m.tag == tg {
				l.msgs = append(l.msgs[:i], l.msgs[i+1:]...)
				return m.t, nil
			}
		}
		if l.err != nil {
			return nil, l.err
		}
		if !deadline.IsZero() {
			now := time.Now()
			if !now.Before(deadline) {
				return nil, fmt.Errorf("collective: timed out after %v waiting for %q tag %#x", timeout, key, tg)
			}
			l.armLocked(now, deadline)
		}
		l.cond.Wait()
	}
}

// armLocked points the lane timer at deadline unless it is already armed to
// fire no later.
func (l *lane) armLocked(now time.Time, deadline time.Time) {
	if !l.timerAt.IsZero() && l.timerAt.After(now) && !l.timerAt.After(deadline) {
		return
	}
	l.timerAt = deadline
	if l.timer == nil {
		l.timer = time.AfterFunc(deadline.Sub(now), l.onTimer)
	} else {
		l.timer.Reset(deadline.Sub(now))
	}
}

// onTimer wakes every waiter; each re-checks its own deadline and re-arms
// as needed.
func (l *lane) onTimer() {
	l.mu.Lock()
	l.timerAt = time.Time{}
	l.mu.Unlock()
	l.cond.Broadcast()
}
