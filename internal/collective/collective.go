package collective

import (
	"fmt"
	"sync"
	"time"

	"tfhpc/internal/gemm"
	"tfhpc/internal/telemetry"
	"tfhpc/internal/tensor"
)

// Reduction op names accepted by AllReduce.
const (
	OpSum = "sum"
	OpMax = "max"
)

// Options tune a group. Every rank of one group must be constructed with
// identical options — the algorithm choice and thresholds shape the message
// pattern, so they are part of the bulk-synchronous contract.
type Options struct {
	// ChunkBytes is the pipelining granularity: each ring segment is split
	// into chunks of at most this many bytes, so transmission of chunk k
	// overlaps the reduction of chunk k-1. Default 256 KiB.
	ChunkBytes int
	// Algorithm forces one allreduce/broadcast algorithm ("ring",
	// "doubling"); "" or "auto" picks per call by payload size.
	Algorithm string
	// SwitchBytes is the picker threshold: allreduces whose per-rank payload
	// (bytes/p) is strictly below it run recursive doubling, the rest run
	// the ring (the threshold records the measured crossover, where the
	// ring already wins). 0 = DefaultSwitchBytes.
	SwitchBytes int
	// Fusion tunes the group's fusion buffer (AllReduceFused).
	Fusion FusionOptions
}

// DefaultChunkBytes is the pipelining granularity when Options leaves it 0.
const DefaultChunkBytes = 256 << 10

// Group binds collective operations to one rank's transport endpoint. A
// group may run concurrent collectives only under distinct keys; calls that
// share a key must be issued in the same order on every rank (the usual
// bulk-synchronous contract, enforced by Horovod with a coordinator and here
// by symmetric graph construction).
type Group struct {
	tr   Transport
	opts Options

	mu  sync.Mutex
	seq map[string]uint64

	fuMu   sync.Mutex
	fusion *Fusion

	pendMu   sync.Mutex
	pendings map[string]*Pending
}

// NewGroup wraps a transport endpoint.
func NewGroup(tr Transport, opts Options) *Group {
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = DefaultChunkBytes
	}
	if opts.SwitchBytes <= 0 {
		opts.SwitchBytes = DefaultSwitchBytes
	}
	return &Group{tr: tr, opts: opts, seq: make(map[string]uint64), pendings: make(map[string]*Pending)}
}

// NewLoopbackGroups is the single-call constructor tests and in-process runs
// use: p endpoints over a fresh loopback fabric, one group per rank.
func NewLoopbackGroups(p int, opts Options) []*Group {
	eps := NewLoopback(p)
	gs := make([]*Group, p)
	for i, ep := range eps {
		gs[i] = NewGroup(ep, opts)
	}
	return gs
}

// Rank returns this member's rank.
func (g *Group) Rank() int { return g.tr.Rank() }

// Size returns the group size.
func (g *Group) Size() int { return g.tr.Size() }

// Transport exposes the underlying endpoint (tests, diagnostics).
func (g *Group) Transport() Transport { return g.tr }

// Close tears down the underlying transport endpoint, failing the fusion
// buffer's waiters and any unjoined async handles along the way.
func (g *Group) Close() error {
	g.fuMu.Lock()
	f := g.fusion
	g.fuMu.Unlock()
	if f != nil {
		f.Close()
	}
	return g.tr.Close()
}

func (g *Group) nextSeq(key string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq[key]++
	return g.seq[key]
}

// fatal records an unrecoverable mid-protocol failure: the group's
// bulk-synchronous state cannot be resynchronised, so the endpoint is
// closed, which poisons the local inbox and (on loopback) the peers' lanes.
// Ring neighbours therefore cascade the error instead of hanging on traffic
// that will never arrive.
func (g *Group) fatal(err error) error {
	g.tr.Close()
	return err
}

func (g *Group) chunkElems(dt tensor.DType) int {
	c := g.opts.ChunkBytes / dt.Size()
	if c < 1 {
		c = 1
	}
	return c
}

// SegBounds splits n elements into p contiguous near-equal segments — the
// first n%p segments carry one extra element — and returns segment s's
// half-open bounds. It is the ring algorithms' segment layout and the
// split ReduceScatter's output follows, exported so consumers (sgd's
// parameter-tensor chunking, shard assembly) can mirror it without
// duplicating the arithmetic.
func SegBounds(n, p, s int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = s*base + min(s, rem)
	size := base
	if s < rem {
		size++
	}
	return lo, lo + size
}

// slicer adapts the generic ring code to one element type.
type slicer[T any] struct {
	wrap func(tensor.Shape, []T) *tensor.Tensor
	data func(*tensor.Tensor) []T
}

var (
	slF32  = slicer[float32]{tensor.FromF32, (*tensor.Tensor).F32}
	slF64  = slicer[float64]{tensor.FromF64, (*tensor.Tensor).F64}
	slI32  = slicer[int32]{tensor.FromI32, (*tensor.Tensor).I32}
	slI64  = slicer[int64]{tensor.FromI64, (*tensor.Tensor).I64}
	slC64  = slicer[complex64]{tensor.FromC64, (*tensor.Tensor).C64}
	slC128 = slicer[complex128]{tensor.FromC128, (*tensor.Tensor).C128}
	slBool = slicer[bool]{tensor.FromBool, (*tensor.Tensor).Bools}
)

// reduceGrain is the minimum per-chunk work before a reduction fans out
// across the gemm worker pool.
const reduceGrain = 1 << 13

func sumOf[T interface {
	~float32 | ~float64 | ~int32 | ~int64
}](dst, a, b []T) {
	gemm.ParallelFor(len(dst), reduceGrain, func(lo, hi int) {
		d, x, y := dst[lo:hi], a[lo:hi], b[lo:hi]
		for i := range d {
			d[i] = x[i] + y[i]
		}
	})
}

func maxOf[T interface {
	~float32 | ~float64 | ~int32 | ~int64
}](dst, a, b []T) {
	gemm.ParallelFor(len(dst), reduceGrain, func(lo, hi int) {
		d, x, y := dst[lo:hi], a[lo:hi], b[lo:hi]
		for i := range d {
			if y[i] > x[i] {
				d[i] = y[i]
			} else {
				d[i] = x[i]
			}
		}
	})
}

// combinerFor returns the fused ternary kernel dst = a ⊕ b.
func combinerFor[T interface {
	~float32 | ~float64 | ~int32 | ~int64
}](op string) (func(dst, a, b []T), error) {
	switch op {
	case "", OpSum:
		return sumOf[T], nil
	case OpMax:
		return maxOf[T], nil
	}
	return nil, fmt.Errorf("collective: unknown reduction op %q (want sum|max)", op)
}

// AllReduce combines equal-shaped tensors element-wise across all ranks and
// returns the full result on every rank. The algorithm is picked per call
// (Options.Algorithm, or by payload size under "auto"): the bandwidth-optimal
// ring — a reduce-scatter pass leaves each rank owning one fully-reduced
// segment, then an allgather pass circulates the finished segments, 2(p−1)
// steps moving n/p elements each, so the per-rank traffic is 2n(p−1)/p no
// matter how large the group — for large payloads, and the latency-optimal
// recursive doubling (log2(p) full-vector exchanges) below the SwitchBytes
// per-rank threshold. key isolates concurrent collectives; ranks must call
// with the same key in the same order.
func (g *Group) AllReduce(key string, t *tensor.Tensor, op string) (*tensor.Tensor, error) {
	seq := g.nextSeq(key)
	return g.allReduceSeq(key, seq, t, op, g.pickAlgorithm(t.ByteSize()))
}

// Pending is an in-flight asynchronous collective: the handle side of
// AllReduceAsync / StartAllReduce.
type Pending struct {
	ch chan pendingResult
}

type pendingResult struct {
	t   *tensor.Tensor
	err error
}

// Wait blocks until the collective finishes and returns its result. Wait
// may be called once.
func (p *Pending) Wait() (*tensor.Tensor, error) {
	r := <-p.ch
	return r.t, r.err
}

// AllReduceAsync issues an allreduce without blocking: the sequence slot is
// reserved synchronously — so the cross-rank issue order under one key is
// the call order, exactly as for AllReduce — but the wire work runs on a
// goroutine and the result is claimed via Pending.Wait. This is the
// double-buffering primitive: start step k's reduction, keep computing, and
// join it while step k+1's traffic is already in flight under another key.
func (g *Group) AllReduceAsync(key string, t *tensor.Tensor, op string) *Pending {
	seq := g.nextSeq(key)
	alg := g.pickAlgorithm(t.ByteSize())
	p := &Pending{ch: make(chan pendingResult, 1)}
	go func() {
		out, err := g.allReduceSeq(key, seq, t, op, alg)
		p.ch <- pendingResult{out, err}
	}()
	return p
}

// StartAllReduce issues an asynchronous allreduce and parks it under a
// named handle for a later JoinAllReduce — the op-kernel form of
// AllReduceAsync, usable across session Run boundaries (start the loss
// reduction in step k's Run, join it in step k+1's while k+1's own traffic
// overlaps). A handle admits one in-flight collective at a time.
func (g *Group) StartAllReduce(handle, key string, t *tensor.Tensor, op string) error {
	g.pendMu.Lock()
	if _, busy := g.pendings[handle]; busy {
		g.pendMu.Unlock()
		return fmt.Errorf("collective: async handle %q already has an unjoined collective", handle)
	}
	pend := g.AllReduceAsync(key, t, op)
	g.pendings[handle] = pend
	g.pendMu.Unlock()
	return nil
}

// JoinAllReduce claims the named handle's result, blocking until the
// collective finishes.
func (g *Group) JoinAllReduce(handle string) (*tensor.Tensor, error) {
	g.pendMu.Lock()
	pend, ok := g.pendings[handle]
	delete(g.pendings, handle)
	g.pendMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("collective: async handle %q has no started collective", handle)
	}
	return pend.Wait()
}

// AllReduceFused posts one tensor to the group's fusion buffer and blocks
// until the coalesced collective that carries it completes — many small
// concurrent posts ride a single fused pass (see Fusion).
func (g *Group) AllReduceFused(key string, t *tensor.Tensor, op string) (*tensor.Tensor, error) {
	return g.Fusion().AllReduce(key, t, op)
}

// Fusion returns the group's fusion buffer, creating it on first use with
// the group's Options.Fusion.
func (g *Group) Fusion() *Fusion {
	g.fuMu.Lock()
	defer g.fuMu.Unlock()
	if g.fusion == nil {
		g.fusion = newFusion(g, g.opts.Fusion)
	}
	return g.fusion
}

func ringAllReduce[T interface {
	~float32 | ~float64 | ~int32 | ~int64
}](g *Group, key string, seq uint64, in *tensor.Tensor, sl slicer[T], op string, span *telemetry.Span) (*tensor.Tensor, error) {
	combine, err := combinerFor[T](op)
	if err != nil {
		return nil, err
	}
	p, r := g.Size(), g.Rank()
	if p == 1 {
		return in.Clone(), nil
	}
	src := sl.data(in)
	n := len(src)
	out := tensor.New(in.DType(), in.Shape()...)
	data := sl.data(out)
	next, prev := (r+1)%p, (r-1+p)%p
	chunk := g.chunkElems(in.DType())

	for phase := 0; phase < 2; phase++ {
		phaseName := "reduce_scatter"
		if phase != phaseReduceScatter {
			phaseName = "allgather"
		}
		phaseSpan := span.Child(phaseName)
		for step := 0; step < p-1; step++ {
			var sendSeg, recvSeg int
			if phase == phaseReduceScatter {
				sendSeg = (r - step + p) % p
				recvSeg = (r - step - 1 + p) % p
			} else {
				sendSeg = (r + 1 - step + 2*p) % p
				recvSeg = (r - step + p) % p
			}
			sLo, sHi := SegBounds(n, p, sendSeg)
			rLo, rHi := SegBounds(n, p, recvSeg)

			// The first reduce-scatter step ships the raw input segment;
			// every later send ships a segment this rank finished writing in
			// an earlier step. The output is therefore written exactly once
			// per segment per phase and the input is never cloned.
			sendBuf := data
			if phase == phaseReduceScatter && step == 0 {
				sendBuf = src
			}

			// The sender runs asynchronously: while chunk k is in flight the
			// receive loop below is still reducing chunk k-1. The segments
			// are disjoint, so there is no aliasing.
			errc := make(chan error, 1)
			go func(buf []T, lo, hi, phase, step int) {
				for k, off := 0, lo; off < hi; k, off = k+1, off+chunk {
					end := min(off+chunk, hi)
					// A view, not a copy: Send consumes the payload before
					// returning (loopback clones, TCP serialises), and this
					// segment is not mutated again until after the step's
					// receive completes.
					payload := sl.wrap(tensor.Shape{end - off}, buf[off:end:end])
					if err := g.tr.Send(next, key, tag(seq, phase, step, k), payload); err != nil {
						errc <- err
						return
					}
				}
				errc <- nil
			}(sendBuf, sLo, sHi, phase, step)

			var recvErr error
			for k, off := 0, rLo; off < rHi; k, off = k+1, off+chunk {
				end := min(off+chunk, rHi)
				msg, err := g.tr.Recv(prev, key, tag(seq, phase, step, k))
				if err != nil {
					recvErr = err
					break
				}
				if msg.DType() != in.DType() || msg.NumElements() != end-off {
					recvErr = fmt.Errorf("collective: %q: peer %d sent %v%v, want %d %v elements (mismatched inputs?)",
						key, prev, msg.DType(), msg.Shape(), end-off, in.DType())
					break
				}
				got := sl.data(msg)
				if phase == phaseReduceScatter {
					// Fused first touch: out = in ⊕ incoming (each segment is
					// received exactly once per phase, so there is no prior
					// partial to preserve).
					combine(data[off:end], src[off:end], got)
				} else {
					copy(data[off:end], got)
				}
				tensor.Recycle(msg)
			}
			// Always join the sender before surfacing any receive error.
			if err := <-errc; err != nil {
				return nil, g.fatal(err)
			}
			if recvErr != nil {
				return nil, g.fatal(recvErr)
			}
		}
		phaseSpan.End()
	}
	return out, nil
}

// AllGather concatenates equal-shaped per-rank tensors along a new leading
// slot: rank-0 inputs produce a [p] vector, rank-k inputs a tensor whose
// first dimension is p times larger. The ring circulates each rank's
// segment p−1 hops, chunked like AllReduce.
func (g *Group) AllGather(key string, t *tensor.Tensor) (*tensor.Tensor, error) {
	switch t.DType() {
	case tensor.Float32:
		return ringAllGather(g, key, t, slF32)
	case tensor.Float64:
		return ringAllGather(g, key, t, slF64)
	case tensor.Int32:
		return ringAllGather(g, key, t, slI32)
	case tensor.Int64:
		return ringAllGather(g, key, t, slI64)
	case tensor.Complex64:
		return ringAllGather(g, key, t, slC64)
	case tensor.Complex128:
		return ringAllGather(g, key, t, slC128)
	case tensor.Bool:
		return ringAllGather(g, key, t, slBool)
	}
	return nil, fmt.Errorf("collective: allgather does not support dtype %v", t.DType())
}

// gatherShape is the output shape of an allgather over p ranks.
func gatherShape(in tensor.Shape, p int) tensor.Shape {
	if in.Rank() == 0 {
		return tensor.Shape{p}
	}
	out := in.Clone()
	out[0] *= p
	return out
}

func ringAllGather[T any](g *Group, key string, in *tensor.Tensor, sl slicer[T]) (*tensor.Tensor, error) {
	p, r := g.Size(), g.Rank()
	m := in.NumElements()
	out := tensor.New(in.DType(), gatherShape(in.Shape(), p)...)
	data := sl.data(out)
	copy(data[r*m:(r+1)*m], sl.data(in))
	if p == 1 {
		return out, nil
	}
	seq := g.nextSeq(key)
	next, prev := (r+1)%p, (r-1+p)%p
	chunk := g.chunkElems(in.DType())

	for step := 0; step < p-1; step++ {
		sendSeg := (r - step + p) % p
		recvSeg := (r - step - 1 + p) % p
		sLo, rLo := sendSeg*m, recvSeg*m

		errc := make(chan error, 1)
		go func(lo, step int) {
			for k, off := 0, lo; off < lo+m; k, off = k+1, off+chunk {
				end := min(off+chunk, lo+m)
				payload := sl.wrap(tensor.Shape{end - off}, data[off:end:end])
				if err := g.tr.Send(next, key, tag(seq, phaseAllGather, step, k), payload); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(sLo, step)

		var recvErr error
		for k, off := 0, rLo; off < rLo+m; k, off = k+1, off+chunk {
			end := min(off+chunk, rLo+m)
			msg, err := g.tr.Recv(prev, key, tag(seq, phaseAllGather, step, k))
			if err != nil {
				recvErr = err
				break
			}
			if msg.DType() != in.DType() || msg.NumElements() != end-off {
				recvErr = fmt.Errorf("collective: %q: peer %d sent %v%v, want %d %v elements (mismatched inputs?)",
					key, prev, msg.DType(), msg.Shape(), end-off, in.DType())
				break
			}
			copy(data[off:end], sl.data(msg))
			tensor.Recycle(msg)
		}
		if err := <-errc; err != nil {
			return nil, g.fatal(err)
		}
		if recvErr != nil {
			return nil, g.fatal(recvErr)
		}
	}
	return out, nil
}

// Broadcast replicates root's tensor to every rank. The default algorithm
// is the binomial tree (depth ⌈log2 p⌉, chunks pipelined down the levels);
// Options.Algorithm "ring" selects the chunk relay around the ring, whose
// p−1 hop latency only pays off when per-hop forwarding fully overlaps on
// real NICs. Non-root ranks may pass t == nil; the broadcast carries dtype
// and shape. The algorithm cannot be picked per call by payload size: only
// the root knows the size before the first message, and the two algorithms
// give every rank a different parent to listen to.
func (g *Group) Broadcast(key string, t *tensor.Tensor, root int) (*tensor.Tensor, error) {
	p, r := g.Size(), g.Rank()
	if root < 0 || root >= p {
		return nil, fmt.Errorf("collective: broadcast root %d out of %d", root, p)
	}
	if r == root && t == nil {
		return nil, fmt.Errorf("collective: broadcast root needs a tensor")
	}
	if p == 1 {
		return t.Clone(), nil
	}
	seq := g.nextSeq(key)
	if g.opts.Algorithm != AlgoRing {
		return g.treeBroadcast(key, seq, t, root)
	}
	return g.ringBroadcast(key, seq, t, root)
}

// ringBroadcast relays chunks around the ring so downstream forwarding
// overlaps upstream reception.
func (g *Group) ringBroadcast(key string, seq uint64, t *tensor.Tensor, root int) (*tensor.Tensor, error) {
	p, r := g.Size(), g.Rank()
	next, prev := (r+1)%p, (r-1+p)%p

	if r == root {
		// Header: dtype + shape, then the flat payload in chunks.
		if err := g.tr.Send(next, key, tag(seq, phaseBroadcast, 0, 0), broadcastHeader(t)); err != nil {
			return nil, g.fatal(err)
		}
		flat, err := t.Reshape(t.NumElements())
		if err != nil {
			return nil, g.fatal(err)
		}
		chunk := g.chunkElems(t.DType())
		n := t.NumElements()
		for k, off := 0, 0; off < n; k, off = k+1, off+chunk {
			end := min(off+chunk, n)
			piece, err := sliceFlat(flat, off, end)
			if err != nil {
				return nil, g.fatal(err)
			}
			if err := g.tr.Send(next, key, tag(seq, phaseBroadcast, 1, k), piece); err != nil {
				return nil, g.fatal(err)
			}
		}
		return t.Clone(), nil
	}

	hdrT, err := g.tr.Recv(prev, key, tag(seq, phaseBroadcast, 0, 0))
	if err != nil {
		return nil, g.fatal(err)
	}
	out, err := tensorFromBroadcastHeader(key, hdrT)
	if err != nil {
		return nil, g.fatal(err)
	}
	forward := next != root
	if forward {
		if err := g.tr.Send(next, key, tag(seq, phaseBroadcast, 0, 0), hdrT); err != nil {
			return nil, g.fatal(err)
		}
	}
	// Send consumes its payload before returning, so the header (and below,
	// each relayed chunk) can go back to the pool once forwarded.
	tensor.Recycle(hdrT)
	dt := out.DType()
	flat, err := out.Reshape(out.NumElements())
	if err != nil {
		return nil, g.fatal(err)
	}
	chunk := g.chunkElems(dt)
	n := out.NumElements()
	for k, off := 0, 0; off < n; k, off = k+1, off+chunk {
		end := min(off+chunk, n)
		msg, err := g.tr.Recv(prev, key, tag(seq, phaseBroadcast, 1, k))
		if err != nil {
			return nil, g.fatal(err)
		}
		if msg.DType() != dt || msg.NumElements() != end-off {
			return nil, g.fatal(fmt.Errorf("collective: %q: broadcast chunk %d has %v%v, want %d %v elements",
				key, k, msg.DType(), msg.Shape(), end-off, dt))
		}
		if err := copyFlat(flat, off, msg); err != nil {
			return nil, g.fatal(err)
		}
		if forward {
			if err := g.tr.Send(next, key, tag(seq, phaseBroadcast, 1, k), msg); err != nil {
				return nil, g.fatal(err)
			}
		}
		tensor.Recycle(msg)
	}
	return out, nil
}

// Barrier blocks until every rank has entered. It rides an allreduce over a
// p-element vector so every ring segment is non-empty and each rank's exit
// transitively depends on every other rank's entry.
func (g *Group) Barrier(key string) error {
	token := tensor.New(tensor.Int64, g.Size())
	token.I64()[g.Rank()] = 1
	_, err := g.AllReduce(key, token, OpSum)
	return err
}

// NaiveAllReduce is the gather-to-root baseline the paper's parameter-server
// formulation amounts to: every rank ships its whole tensor to rank 0, which
// reduces serially in rank order and broadcasts the result back. It is both
// the semantic reference for the ring (left-fold in rank order) and the
// bandwidth strawman tfbench compares against.
func (g *Group) NaiveAllReduce(key string, t *tensor.Tensor, op string) (*tensor.Tensor, error) {
	start := time.Now()
	span := telemetry.StartRoot("collective_allreduce")
	span.Arg("algo", "naive").Arg("key", key)
	defer span.End()
	out, err := g.naiveAllReduce(key, t, op)
	if err == nil {
		m := mAllReduce["naive"]
		m.ops.Inc()
		m.bytes.Add(t.ByteSize())
		m.secs.ObserveSince(start)
	}
	return out, err
}

func (g *Group) naiveAllReduce(key string, t *tensor.Tensor, op string) (*tensor.Tensor, error) {
	p, r := g.Size(), g.Rank()
	if p == 1 {
		return t.Clone(), nil
	}
	seq := g.nextSeq(key)
	if r != 0 {
		if err := g.tr.Send(0, key, tag(seq, phaseGather, r, 0), t); err != nil {
			return nil, g.fatal(err)
		}
		out, err := g.tr.Recv(0, key, tag(seq, phaseBroadcast, r, 0))
		if err != nil {
			return nil, g.fatal(err)
		}
		return out, nil
	}
	acc := t.Clone()
	for from := 1; from < p; from++ {
		msg, err := g.tr.Recv(from, key, tag(seq, phaseGather, from, 0))
		if err != nil {
			return nil, g.fatal(err)
		}
		if err := reduceTensor(acc, msg, op); err != nil {
			return nil, g.fatal(err)
		}
		tensor.Recycle(msg)
	}
	for to := 1; to < p; to++ {
		if err := g.tr.Send(to, key, tag(seq, phaseBroadcast, to, 0), acc); err != nil {
			return nil, g.fatal(err)
		}
	}
	return acc, nil
}

// reduceTensor folds src into dst element-wise — serially, on the calling
// goroutine: this is the gather-to-root strawman, whose root does all the
// arithmetic itself while p−1 peers wait.
func reduceTensor(dst, src *tensor.Tensor, op string) error {
	if dst.DType() != src.DType() || dst.NumElements() != src.NumElements() {
		return fmt.Errorf("collective: reduce mismatch: %v%v vs %v%v",
			dst.DType(), dst.Shape(), src.DType(), src.Shape())
	}
	switch dst.DType() {
	case tensor.Float32:
		return serialReduce(dst.F32(), src.F32(), op)
	case tensor.Float64:
		return serialReduce(dst.F64(), src.F64(), op)
	case tensor.Int32:
		return serialReduce(dst.I32(), src.I32(), op)
	case tensor.Int64:
		return serialReduce(dst.I64(), src.I64(), op)
	}
	return fmt.Errorf("collective: reduce does not support dtype %v", dst.DType())
}

func serialReduce[T interface {
	~float32 | ~float64 | ~int32 | ~int64
}](dst, src []T, op string) error {
	switch op {
	case "", OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	default:
		return fmt.Errorf("collective: unknown reduction op %q (want sum|max)", op)
	}
	return nil
}

// sliceFlat copies [lo,hi) of a rank-1 tensor into a fresh tensor.
func sliceFlat(flat *tensor.Tensor, lo, hi int) (*tensor.Tensor, error) {
	out := tensor.New(flat.DType(), hi-lo)
	if err := copyFlatRange(out, 0, flat, lo, hi); err != nil {
		return nil, err
	}
	return out, nil
}

// copyFlat copies all of src into flat at offset off.
func copyFlat(flat *tensor.Tensor, off int, src *tensor.Tensor) error {
	return copyFlatRange(flat, off, src, 0, src.NumElements())
}

func copyFlatRange(dst *tensor.Tensor, dOff int, src *tensor.Tensor, lo, hi int) error {
	if dst.DType() != src.DType() {
		return fmt.Errorf("collective: dtype mismatch %v vs %v", dst.DType(), src.DType())
	}
	switch dst.DType() {
	case tensor.Float32:
		copy(dst.F32()[dOff:], src.F32()[lo:hi])
	case tensor.Float64:
		copy(dst.F64()[dOff:], src.F64()[lo:hi])
	case tensor.Complex64:
		copy(dst.C64()[dOff:], src.C64()[lo:hi])
	case tensor.Complex128:
		copy(dst.C128()[dOff:], src.C128()[lo:hi])
	case tensor.Int32:
		copy(dst.I32()[dOff:], src.I32()[lo:hi])
	case tensor.Int64:
		copy(dst.I64()[dOff:], src.I64()[lo:hi])
	case tensor.Bool:
		copy(dst.Bools()[dOff:], src.Bools()[lo:hi])
	default:
		return fmt.Errorf("collective: cannot copy dtype %v", dst.DType())
	}
	return nil
}
