package collective_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/tensor"
)

// fusedExpected computes the reference sum for one fusion key's inputs.
func fusedExpected(ins []*tensor.Tensor) []float64 {
	out := make([]float64, ins[0].NumElements())
	for _, in := range ins {
		for i, v := range in.F64() {
			out[i] += v
		}
	}
	return out
}

// TestFusionCoalesces: every rank posts K small tensors from K goroutines;
// with FlushTensors=K they must ride one negotiated pass and come back with
// the correct per-key reduction.
func TestFusionCoalesces(t *testing.T) {
	const p, K, n = 3, 16, 32
	groups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{FlushTensors: K, FlushInterval: time.Hour, FlushBytes: 1 << 30},
	})
	ins := make([][]*tensor.Tensor, K) // ins[k][r]
	for k := range ins {
		ins[k] = make([]*tensor.Tensor, p)
		for r := 0; r < p; r++ {
			ins[k][r] = randVec(uint64(100*k+r+1), n)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, p*K)
	for r := 0; r < p; r++ {
		for k := 0; k < K; k++ {
			wg.Add(1)
			go func(r, k int) {
				defer wg.Done()
				out, err := groups[r].AllReduceFused(fmt.Sprintf("g%d", k), ins[k][r], collective.OpSum)
				if err != nil {
					errs <- fmt.Errorf("rank %d key %d: %w", r, k, err)
					return
				}
				want := fusedExpected(ins[k])
				for i := range want {
					if d := out.F64()[i] - want[i]; d > 1e-12 || d < -1e-12 {
						errs <- fmt.Errorf("rank %d key %d: elem %d = %g, want %g", r, k, i, out.F64()[i], want[i])
						return
					}
				}
			}(r, k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFusionBitIdenticalToUnfused is the numerics contract behind the CI
// smoke assertion: small tensors reduced through the fusion buffer must be
// bit-identical to the same tensors reduced one by one, because both paths
// pick recursive doubling below the threshold and the doubling tree does
// not depend on element offset — packing cannot reassociate anything.
func TestFusionBitIdenticalToUnfused(t *testing.T) {
	const p, K, n = 4, 8, 97
	fusedGroups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{FlushTensors: K, FlushInterval: time.Hour, FlushBytes: 1 << 30},
	})
	plainGroups := collective.NewLoopbackGroups(p, collective.Options{})
	ins := make([][]*tensor.Tensor, K)
	for k := range ins {
		ins[k] = make([]*tensor.Tensor, p)
		for r := 0; r < p; r++ {
			ins[k][r] = randVec(uint64(7*k+r+3), n) // arbitrary floats: rounding matters
		}
	}
	fused := make([][]*tensor.Tensor, K) // fused[k][r]
	for k := range fused {
		fused[k] = make([]*tensor.Tensor, p)
	}
	var wg sync.WaitGroup
	errc := make(chan error, p*K)
	for r := 0; r < p; r++ {
		for k := 0; k < K; k++ {
			wg.Add(1)
			go func(r, k int) {
				defer wg.Done()
				out, err := fusedGroups[r].AllReduceFused(fmt.Sprintf("g%d", k), ins[k][r], collective.OpSum)
				if err != nil {
					errc <- err
					return
				}
				fused[k][r] = out
			}(r, k)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for k := 0; k < K; k++ {
		plain := runAll(t, plainGroups, func(g *collective.Group) (*tensor.Tensor, error) {
			return g.AllReduce(fmt.Sprintf("u%d", k), ins[k][g.Rank()], collective.OpSum)
		})
		for r := 0; r < p; r++ {
			if !fused[k][r].Equal(plain[r]) {
				t.Fatalf("key %d rank %d: fused result not bit-identical to unfused", k, r)
			}
		}
	}
}

// TestFusionBitIdenticalWhenPackCrossesThreshold: tensors that pick
// doubling individually can pack past the ring threshold; the fused pass
// pins doubling regardless, so bit-identity must survive any pack size
// (regression: the packed pass once went through the picker and flipped to
// the ring's offset-dependent combination order).
func TestFusionBitIdenticalWhenPackCrossesThreshold(t *testing.T) {
	const p, K, n = 4, 8, 3000 // 24 KB each (6 KB/rank -> doubling); 192 KB packed
	fusedGroups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{FlushTensors: K, FlushInterval: time.Hour, FlushBytes: 1 << 30},
	})
	plainGroups := collective.NewLoopbackGroups(p, collective.Options{})
	ins := make([][]*tensor.Tensor, K)
	for k := range ins {
		ins[k] = make([]*tensor.Tensor, p)
		for r := 0; r < p; r++ {
			ins[k][r] = randVec(uint64(13*k+r+5), n)
		}
	}
	fused := make([][]*tensor.Tensor, K)
	for k := range fused {
		fused[k] = make([]*tensor.Tensor, p)
	}
	var wg sync.WaitGroup
	errc := make(chan error, p*K)
	for r := 0; r < p; r++ {
		for k := 0; k < K; k++ {
			wg.Add(1)
			go func(r, k int) {
				defer wg.Done()
				out, err := fusedGroups[r].AllReduceFused(fmt.Sprintf("g%d", k), ins[k][r], collective.OpSum)
				if err != nil {
					errc <- err
					return
				}
				fused[k][r] = out
			}(r, k)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for k := 0; k < K; k++ {
		plain := runAll(t, plainGroups, func(g *collective.Group) (*tensor.Tensor, error) {
			return g.AllReduce(fmt.Sprintf("u%d", k), ins[k][g.Rank()], collective.OpSum)
		})
		for r := 0; r < p; r++ {
			if !fused[k][r].Equal(plain[r]) {
				t.Fatalf("key %d rank %d: threshold-crossing pack broke fused bit-identity", k, r)
			}
		}
	}
}

// TestFusionBypassesLargeTensors: a tensor above the picker threshold
// skips the buffer entirely and reduces exactly as an unfused call would
// (ring), keeping the bit-identity unconditional without dragging a
// bandwidth-bound payload through doubling.
func TestFusionBypassesLargeTensors(t *testing.T) {
	const p, n = 4, 1 << 15 // 256 KB: 64 KB/rank, well past the threshold
	fusedGroups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{FlushInterval: time.Hour, FlushBytes: 1 << 30},
	})
	plainGroups := collective.NewLoopbackGroups(p, collective.Options{})
	ins := make([]*tensor.Tensor, p)
	for r := 0; r < p; r++ {
		ins[r] = randVec(uint64(r+31), n)
	}
	fused := runAll(t, fusedGroups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.AllReduceFused("big", ins[g.Rank()], collective.OpSum)
	})
	plain := runAll(t, plainGroups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.AllReduce("big", ins[g.Rank()], collective.OpSum)
	})
	for r := 0; r < p; r++ {
		if !fused[r].Equal(plain[r]) {
			t.Fatalf("rank %d: bypassed large tensor differs from plain allreduce", r)
		}
	}
}

// TestFusionMismatchedPostsError: ranks posting one key with different
// shapes must get a loud error, not an eternal renegotiation loop.
func TestFusionMismatchedPostsError(t *testing.T) {
	const p = 2
	groups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{FlushInterval: time.Millisecond},
	})
	done := make(chan error, p)
	for r := 0; r < p; r++ {
		go func(r int) {
			_, err := groups[r].AllReduceFused("g", intVec(uint64(r+1), 100+r), collective.OpSum)
			done <- err
		}(r)
	}
	for i := 0; i < p; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("mismatched fused posts returned success")
			}
			if !strings.Contains(err.Error(), "mismatched") {
				t.Fatalf("error does not explain the mismatch: %v", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("mismatched fused posts hung instead of erroring")
		}
	}
}

// TestFusionConcurrency is the satellite race test: many goroutines posting
// small tensors across several steps with a byte threshold small enough to
// force mid-step flushes, so negotiation rounds race fresh posts and the
// deadline timer races the byte trigger. Run under -race in the normal test
// job.
func TestFusionConcurrency(t *testing.T) {
	const p, K, steps, n = 3, 24, 5, 16
	groups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{
			FlushBytes:    4 * n * 8, // ~4 tensors per pass: flushes race the posts
			FlushInterval: 2 * time.Millisecond,
		},
	})
	for step := 0; step < steps; step++ {
		ins := make([][]*tensor.Tensor, K)
		for k := range ins {
			ins[k] = make([]*tensor.Tensor, p)
			for r := 0; r < p; r++ {
				ins[k][r] = intVec(uint64(1000*step+10*k+r), n)
			}
		}
		var wg sync.WaitGroup
		wg.Add(p * K)
		errs := make(chan error, p*K)
		for r := 0; r < p; r++ {
			// Jitter the per-rank posting order and timing so ranks disagree
			// about what is pending at each negotiation.
			rng := rand.New(rand.NewSource(int64(97*step + r)))
			for _, k := range rng.Perm(K) {
				go func(r, k int, delay time.Duration) {
					defer wg.Done()
					time.Sleep(delay)
					out, err := groups[r].AllReduceFused(fmt.Sprintf("s%d/g%d", step, k), ins[k][r], collective.OpSum)
					if err != nil {
						errs <- fmt.Errorf("step %d rank %d key %d: %w", step, r, k, err)
						return
					}
					want := fusedExpected(ins[k])
					for i := range want {
						if out.F64()[i] != want[i] { // integer-valued: exact
							errs <- fmt.Errorf("step %d rank %d key %d: elem %d = %g, want %g",
								step, r, k, i, out.F64()[i], want[i])
							return
						}
					}
				}(r, k, time.Duration(rng.Intn(1500))*time.Microsecond)
			}
		}
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}
}

// TestFusionDeadlineFlush: with no byte or count trigger reachable, the
// deadline timer alone must flush.
func TestFusionDeadlineFlush(t *testing.T) {
	const p, n = 2, 8
	groups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{FlushBytes: 1 << 30, FlushInterval: time.Millisecond},
	})
	start := time.Now()
	outs := runAll(t, groups, func(g *collective.Group) (*tensor.Tensor, error) {
		return g.AllReduceFused("lonely", intVec(uint64(g.Rank()+1), n), collective.OpSum)
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline flush took %v", elapsed)
	}
	want := fusedExpected([]*tensor.Tensor{intVec(1, n), intVec(2, n)})
	for i := range want {
		if outs[0].F64()[i] != want[i] {
			t.Fatalf("elem %d = %g, want %g", i, outs[0].F64()[i], want[i])
		}
	}
}

// TestFusionSkewedRounds: ranks post two tensors in opposite order with the
// byte threshold at one tensor, so the first negotiation on each side sees
// disjoint-looking sets; the straggler intersection must resolve over
// subsequent rounds instead of fusing mismatched members or deadlocking.
func TestFusionSkewedRounds(t *testing.T) {
	const p, n = 2, 64
	groups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{FlushBytes: n * 8, FlushInterval: time.Millisecond},
	})
	ins := map[string][]*tensor.Tensor{
		"a": {intVec(11, n), intVec(21, n)},
		"b": {intVec(12, n), intVec(22, n)},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			keys := []string{"a", "b"}
			if r == 1 {
				keys = []string{"b", "a"}
			}
			var inner sync.WaitGroup
			for i, key := range keys {
				inner.Add(1)
				go func(key string, delay time.Duration) {
					defer inner.Done()
					time.Sleep(delay)
					out, err := groups[r].AllReduceFused(key, ins[key][r], collective.OpSum)
					if err != nil {
						errs <- fmt.Errorf("rank %d key %s: %w", r, key, err)
						return
					}
					want := fusedExpected(ins[key])
					for j := range want {
						if out.F64()[j] != want[j] {
							errs <- fmt.Errorf("rank %d key %s: elem %d mismatch", r, key, j)
							return
						}
					}
				}(key, time.Duration(i)*500*time.Microsecond)
			}
			inner.Wait()
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFusionFlushBarrier: with every automatic trigger out of reach except
// a long fallback deadline, an explicit Flush on each rank must drive the
// pass — the flush-on-barrier policy.
func TestFusionFlushBarrier(t *testing.T) {
	const p, n = 2, 16
	groups := collective.NewLoopbackGroups(p, collective.Options{
		Fusion: collective.FusionOptions{FlushBytes: 1 << 30, FlushInterval: 30 * time.Second},
	})
	var wg sync.WaitGroup
	errs := make(chan error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out, err := groups[r].AllReduceFused("k", intVec(uint64(r+1), n), collective.OpSum)
			if err != nil {
				errs <- err
				return
			}
			want := fusedExpected([]*tensor.Tensor{intVec(1, n), intVec(2, n)})
			if out.F64()[0] != want[0] {
				errs <- fmt.Errorf("rank %d: wrong fused result", r)
			}
		}(r)
	}
	time.Sleep(20 * time.Millisecond) // let both posts land
	var fw sync.WaitGroup
	for r := 0; r < p; r++ {
		fw.Add(1)
		go func(r int) {
			defer fw.Done()
			groups[r].Fusion().Flush()
		}(r)
	}
	fw.Wait()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFusionOverTCP runs the coalescing path across real rpc servers.
func TestFusionOverTCP(t *testing.T) {
	const p, K, n = 3, 6, 32
	groups := tcpGroups(t, p, collective.Options{
		Fusion: collective.FusionOptions{FlushTensors: K, FlushInterval: 5 * time.Millisecond},
	}, 20*time.Second)
	ins := make([][]*tensor.Tensor, K)
	for k := range ins {
		ins[k] = make([]*tensor.Tensor, p)
		for r := 0; r < p; r++ {
			ins[k][r] = intVec(uint64(50*k+r), n)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, p*K)
	for r := 0; r < p; r++ {
		for k := 0; k < K; k++ {
			wg.Add(1)
			go func(r, k int) {
				defer wg.Done()
				out, err := groups[r].AllReduceFused(fmt.Sprintf("g%d", k), ins[k][r], collective.OpSum)
				if err != nil {
					errs <- fmt.Errorf("rank %d key %d: %w", r, k, err)
					return
				}
				want := fusedExpected(ins[k])
				for i := range want {
					if out.F64()[i] != want[i] {
						errs <- fmt.Errorf("rank %d key %d: elem %d mismatch", r, k, i)
						return
					}
				}
			}(r, k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFusionErrors covers the local contract violations: duplicate pending
// key, unsupported dtype, posts after close.
func TestFusionErrors(t *testing.T) {
	groups := collective.NewLoopbackGroups(2, collective.Options{
		Fusion: collective.FusionOptions{FlushBytes: 1 << 30, FlushInterval: time.Hour},
	})
	g := groups[0]
	if _, err := g.AllReduceFused("c", tensor.New(tensor.Complex128, 4), collective.OpSum); err == nil {
		t.Fatal("complex fused allreduce should fail")
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.AllReduceFused("dup", intVec(1, 4), collective.OpSum)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the first post park
	if _, err := g.AllReduceFused("dup", intVec(2, 4), collective.OpSum); err == nil {
		t.Fatal("duplicate pending key should fail")
	}
	groups[0].Close()
	groups[1].Close()
	if err := <-done; err == nil {
		t.Fatal("close should fail the parked waiter")
	}
	if _, err := g.AllReduceFused("after", intVec(3, 4), collective.OpSum); err == nil {
		t.Fatal("post after close should fail")
	}
}
