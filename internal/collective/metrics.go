package collective

import "tfhpc/internal/telemetry"

// allReduceMetrics is one algorithm's registry view: calls, payload bytes
// and end-to-end duration. One handle set per algorithm label — static
// labels keep the hot-path update a single atomic op.
type allReduceMetrics struct {
	ops   *telemetry.Counter
	bytes *telemetry.Counter
	secs  *telemetry.Histogram
}

func newAllReduceMetrics(algo string) *allReduceMetrics {
	return &allReduceMetrics{
		ops: telemetry.NewCounter("tfhpc_collective_allreduce_total",
			"Allreduce passes completed, by algorithm.", "algo", algo),
		bytes: telemetry.NewCounter("tfhpc_collective_allreduce_bytes",
			"Payload bytes carried by completed allreduces, by algorithm.", "algo", algo),
		secs: telemetry.NewHistogram("tfhpc_collective_allreduce_seconds",
			"End-to-end allreduce duration, by algorithm.", telemetry.DurationBuckets, "algo", algo),
	}
}

var mAllReduce = map[string]*allReduceMetrics{
	AlgoRing:     newAllReduceMetrics(AlgoRing),
	AlgoDoubling: newAllReduceMetrics(AlgoDoubling),
	"naive":      newAllReduceMetrics("naive"),
}

func newFusionTrigger(cause string) *telemetry.Counter {
	return telemetry.NewCounter("tfhpc_fusion_flush_triggers_total",
		"Fusion-buffer flush triggers, by cause.", "cause", cause)
}

var (
	mFusionTriggerBytes    = newFusionTrigger("bytes")
	mFusionTriggerCount    = newFusionTrigger("count")
	mFusionTriggerTimer    = newFusionTrigger("timer")
	mFusionTriggerExplicit = newFusionTrigger("explicit")

	mFusionPendingBytes = telemetry.NewGauge("tfhpc_fusion_pending_bytes",
		"Payload bytes buffered in the fusion buffer right now.")
	mFusionFlushBytes = telemetry.NewHistogram("tfhpc_fusion_flush_bytes",
		"Packed payload bytes per fused pass.", telemetry.SizeBuckets)
	mFusionFusedTensors = telemetry.NewCounter("tfhpc_fusion_fused_tensors_total",
		"Tensors carried by fused passes.")
)
