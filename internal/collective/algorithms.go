package collective

import (
	"fmt"
	"strconv"
	"time"

	"tfhpc/internal/telemetry"
	"tfhpc/internal/tensor"
)

// Algorithm names accepted by Options.Algorithm and AllReduceAlg.
const (
	AlgoAuto     = "auto"     // pick per call by bytes/p against SwitchBytes
	AlgoRing     = "ring"     // bandwidth-optimal reduce-scatter + allgather
	AlgoDoubling = "doubling" // recursive doubling, latency-optimal log2(p) steps
)

// DefaultSwitchBytes is the picker threshold when Options leaves it 0: calls
// whose per-rank payload (bytes/p) is strictly below it run recursive
// doubling, the rest run the ring. The value is data-derived: bench.Collective()
// sweeps algorithm × payload on loopback and records the measured
// ring/doubling crossover in the committed baseline (the "crossover_bytes"
// field under "collective" in scripts/bench_baseline.json, 16 KiB/rank on
// the reference container — i.e. the threshold sits at the measured
// crossover, with doubling winning ~1.4–3× through the swept payloads
// below it). Jitter on small hosts moves the measured point between runs;
// the baseline records what the committed numbers were taken under.
const DefaultSwitchBytes = 16 << 10

// pickAlgorithm is the per-call picker: explicit Options.Algorithm wins,
// otherwise key on bytes/p — the same quantity Horovod's fusion threshold
// uses — because the ring's per-step message is n/p while its step count
// grows with p, so small per-rank payloads are exactly where the ring's
// 2(p−1) latency terms dominate and doubling's log2(p) steps win. The
// comparison is strict: SwitchBytes records the measured crossover, i.e.
// the smallest per-rank payload at which the ring is already at least as
// fast, so the boundary payload itself belongs to the ring.
func (g *Group) pickAlgorithm(bytes int64) string {
	switch g.opts.Algorithm {
	case "", AlgoAuto:
	default:
		return g.opts.Algorithm
	}
	if bytes/int64(g.Size()) < int64(g.opts.SwitchBytes) {
		return AlgoDoubling
	}
	return AlgoRing
}

// AllReduceAlg is AllReduce with an explicit algorithm (benchmarks, tests);
// alg "" or "auto" defers to the picker.
func (g *Group) AllReduceAlg(key string, t *tensor.Tensor, op, alg string) (*tensor.Tensor, error) {
	if alg == "" || alg == AlgoAuto {
		alg = g.pickAlgorithm(t.ByteSize())
	}
	seq := g.nextSeq(key)
	return g.allReduceSeq(key, seq, t, op, alg)
}

// allReduceSeq dispatches one already-sequenced allreduce. Separating seq
// reservation from execution lets AllReduceAsync fix the cross-rank issue
// order at call time even though the collective itself runs on a goroutine.
//
// Every completed pass updates the per-algorithm registry handles, and under
// tracing each pass is one span per rank, stitched across ranks by flow
// events whose ids every rank derives from (key, seq, rank) — rank r's
// outgoing arrow terminates in its ring successor's span, so the p per-rank
// (per-process) spans render as one connected allreduce in Perfetto.
func (g *Group) allReduceSeq(key string, seq uint64, t *tensor.Tensor, op, alg string) (*tensor.Tensor, error) {
	start := time.Now()
	span := telemetry.StartRoot("collective_allreduce")
	if span != nil {
		span.Arg("algo", alg).Arg("key", key).Arg("bytes", strconv.FormatInt(t.ByteSize(), 10))
		if g.Size() > 1 {
			span.FlowOut(telemetry.FlowID(telemetry.HashString(key), seq, uint64(g.Rank())))
		}
	}
	out, err := g.allReduceDispatch(key, seq, t, op, alg, span)
	if err == nil {
		if span != nil && g.Size() > 1 {
			prev := (g.Rank() - 1 + g.Size()) % g.Size()
			span.FlowIn(telemetry.FlowID(telemetry.HashString(key), seq, uint64(prev)))
		}
		if m := mAllReduce[alg]; m != nil {
			m.ops.Inc()
			m.bytes.Add(t.ByteSize())
			m.secs.ObserveSince(start)
		}
	}
	span.End()
	return out, err
}

func (g *Group) allReduceDispatch(key string, seq uint64, t *tensor.Tensor, op, alg string, span *telemetry.Span) (*tensor.Tensor, error) {
	switch alg {
	case AlgoRing:
		switch t.DType() {
		case tensor.Float32:
			return ringAllReduce(g, key, seq, t, slF32, op, span)
		case tensor.Float64:
			return ringAllReduce(g, key, seq, t, slF64, op, span)
		case tensor.Int32:
			return ringAllReduce(g, key, seq, t, slI32, op, span)
		case tensor.Int64:
			return ringAllReduce(g, key, seq, t, slI64, op, span)
		}
	case AlgoDoubling:
		switch t.DType() {
		case tensor.Float32:
			return doublingAllReduce(g, key, seq, t, slF32, op)
		case tensor.Float64:
			return doublingAllReduce(g, key, seq, t, slF64, op)
		case tensor.Int32:
			return doublingAllReduce(g, key, seq, t, slI32, op)
		case tensor.Int64:
			return doublingAllReduce(g, key, seq, t, slI64, op)
		}
	default:
		return nil, fmt.Errorf("collective: unknown algorithm %q (want auto|ring|doubling)", alg)
	}
	return nil, fmt.Errorf("collective: allreduce does not support dtype %v", t.DType())
}

// foldedRank maps a doubling-phase virtual rank back to its physical rank
// when p is not a power of two: the first 2·rem physical ranks fold into
// rem virtual ranks (the odd one of each pair participates), the rest shift
// down by rem.
func foldedRank(virtual, rem int) int {
	if virtual < rem {
		return 2*virtual + 1
	}
	return virtual + rem
}

// doublingAllReduce is the latency-optimal allreduce: log2(p) exchange
// steps, each pairing ranks across a doubling mask and combining full
// vectors. Non-power-of-two groups fold the first p−2^⌊log2 p⌋ rank pairs
// into single virtual ranks before the butterfly and unfold afterwards.
//
// Unlike the ring, the combination tree is identical for every element and
// every rank — it depends only on p — so with a commutative element op
// (sum, max are commutative in IEEE; only associativity fails) all ranks
// produce bit-identical results, and a fused (packed) payload reduces each
// element through exactly the same tree as an unfused one. The fusion
// buffer's fused-equals-unfused guarantee rests on this property.
func doublingAllReduce[T interface {
	~float32 | ~float64 | ~int32 | ~int64
}](g *Group, key string, seq uint64, in *tensor.Tensor, sl slicer[T], op string) (*tensor.Tensor, error) {
	combine, err := combinerFor[T](op)
	if err != nil {
		return nil, err
	}
	p, r := g.Size(), g.Rank()
	if p == 1 {
		return in.Clone(), nil
	}
	out := in.Clone()
	data := sl.data(out)
	n := len(data)
	check := func(msg *tensor.Tensor, from int) error {
		if msg.DType() != in.DType() || msg.NumElements() != n {
			return fmt.Errorf("collective: %q: peer %d sent %v%v, want %d %v elements (mismatched inputs?)",
				key, from, msg.DType(), msg.Shape(), n, in.DType())
		}
		return nil
	}

	pow2 := 1
	for pow2*2 <= p {
		pow2 *= 2
	}
	rem := p - pow2

	// Fold: pairs (2i, 2i+1) for i < rem merge onto the odd rank; the even
	// rank sits out the butterfly and receives the finished result at the
	// end.
	virtual := -1
	switch {
	case r < 2*rem && r%2 == 0:
		if err := g.tr.Send(r+1, key, tag(seq, phaseDouble, 0, 0), out); err != nil {
			return nil, g.fatal(err)
		}
		msg, err := g.tr.Recv(r+1, key, tag(seq, phaseDouble, 0, 1))
		if err != nil {
			return nil, g.fatal(err)
		}
		if err := check(msg, r+1); err != nil {
			return nil, g.fatal(err)
		}
		copy(data, sl.data(msg))
		tensor.Recycle(msg)
		return out, nil
	case r < 2*rem:
		msg, err := g.tr.Recv(r-1, key, tag(seq, phaseDouble, 0, 0))
		if err != nil {
			return nil, g.fatal(err)
		}
		if err := check(msg, r-1); err != nil {
			return nil, g.fatal(err)
		}
		// Canonical operand order (lower physical rank first) keeps the
		// tree deterministic even for non-commutative corner cases (NaN
		// payload propagation follows the first operand on most targets).
		combine(data, sl.data(msg), data)
		tensor.Recycle(msg)
		virtual = r / 2
	default:
		virtual = r - rem
	}

	for mask, step := 1, 1; mask < pow2; mask, step = mask<<1, step+1 {
		partner := foldedRank(virtual^mask, rem)
		// Send completes before the matching Recv+combine mutates out
		// (loopback clones, TCP serialises), so no defensive copy is needed.
		if err := g.tr.Send(partner, key, tag(seq, phaseDouble, step, 0), out); err != nil {
			return nil, g.fatal(err)
		}
		msg, err := g.tr.Recv(partner, key, tag(seq, phaseDouble, step, 0))
		if err != nil {
			return nil, g.fatal(err)
		}
		if err := check(msg, partner); err != nil {
			return nil, g.fatal(err)
		}
		if partner < r {
			combine(data, sl.data(msg), data)
		} else {
			combine(data, data, sl.data(msg))
		}
		tensor.Recycle(msg)
	}

	// Unfold: hand the finished vector back to the folded even ranks.
	if r < 2*rem && r%2 == 1 {
		if err := g.tr.Send(r-1, key, tag(seq, phaseDouble, 0, 1), out); err != nil {
			return nil, g.fatal(err)
		}
	}
	return out, nil
}

// treeBroadcast replicates root's tensor down a binomial tree: depth
// ⌈log2 p⌉ instead of the ring relay's p−1 hops, so small broadcasts pay
// O(log p) latency. Chunks are forwarded to every child as soon as they
// arrive, so large payloads still pipeline down the levels.
func (g *Group) treeBroadcast(key string, seq uint64, t *tensor.Tensor, root int) (*tensor.Tensor, error) {
	p, r := g.Size(), g.Rank()
	rel := (r - root + p) % p

	// children enumerates this node's binomial subtree roots, highest mask
	// first — the order the sends must go out so the deepest subtree starts
	// earliest.
	childMasks := func(recvMask int) []int {
		var ms []int
		for m := recvMask >> 1; m >= 1; m >>= 1 {
			if rel+m < p {
				ms = append(ms, m)
			}
		}
		return ms
	}

	if rel == 0 { // root
		topMask := 1
		for topMask < p {
			topMask <<= 1
		}
		kids := childMasks(topMask)
		hdr := broadcastHeader(t)
		for _, m := range kids {
			if err := g.tr.Send((rel+m+root)%p, key, tag(seq, phaseTree, 0, 0), hdr); err != nil {
				return nil, g.fatal(err)
			}
		}
		flat, err := t.Reshape(t.NumElements())
		if err != nil {
			return nil, g.fatal(err)
		}
		chunk := g.chunkElems(t.DType())
		n := t.NumElements()
		for k, off := 0, 0; off < n; k, off = k+1, off+chunk {
			end := min(off+chunk, n)
			piece, err := sliceFlat(flat, off, end)
			if err != nil {
				return nil, g.fatal(err)
			}
			for _, m := range kids {
				if err := g.tr.Send((rel+m+root)%p, key, tag(seq, phaseTree, 1, k), piece); err != nil {
					return nil, g.fatal(err)
				}
			}
		}
		return t.Clone(), nil
	}

	// Non-root: the parent is rel with its lowest set bit cleared.
	low := rel & (-rel)
	parent := (rel - low + root) % p
	hdrT, err := g.tr.Recv(parent, key, tag(seq, phaseTree, 0, 0))
	if err != nil {
		return nil, g.fatal(err)
	}
	out, err := tensorFromBroadcastHeader(key, hdrT)
	if err != nil {
		return nil, g.fatal(err)
	}
	kids := childMasks(low)
	for _, m := range kids {
		if err := g.tr.Send((rel+m+root)%p, key, tag(seq, phaseTree, 0, 0), hdrT); err != nil {
			return nil, g.fatal(err)
		}
	}
	tensor.Recycle(hdrT)
	flat, err := out.Reshape(out.NumElements())
	if err != nil {
		return nil, g.fatal(err)
	}
	chunk := g.chunkElems(out.DType())
	n := out.NumElements()
	for k, off := 0, 0; off < n; k, off = k+1, off+chunk {
		end := min(off+chunk, n)
		msg, err := g.tr.Recv(parent, key, tag(seq, phaseTree, 1, k))
		if err != nil {
			return nil, g.fatal(err)
		}
		if msg.DType() != out.DType() || msg.NumElements() != end-off {
			return nil, g.fatal(fmt.Errorf("collective: %q: broadcast chunk %d has %v%v, want %d %v elements",
				key, k, msg.DType(), msg.Shape(), end-off, out.DType()))
		}
		if err := copyFlat(flat, off, msg); err != nil {
			return nil, g.fatal(err)
		}
		for _, m := range kids {
			if err := g.tr.Send((rel+m+root)%p, key, tag(seq, phaseTree, 1, k), msg); err != nil {
				return nil, g.fatal(err)
			}
		}
		tensor.Recycle(msg)
	}
	return out, nil
}

// broadcastHeader packs dtype + shape into the int64 header tensor both
// broadcast algorithms lead with.
func broadcastHeader(t *tensor.Tensor) *tensor.Tensor {
	hdr := make([]int64, 1+t.Rank())
	hdr[0] = int64(t.DType())
	for i, d := range t.Shape() {
		hdr[1+i] = int64(d)
	}
	return tensor.FromI64(tensor.Shape{len(hdr)}, hdr)
}

// tensorFromBroadcastHeader validates a received header and allocates the
// destination tensor it describes.
func tensorFromBroadcastHeader(key string, hdrT *tensor.Tensor) (*tensor.Tensor, error) {
	if hdrT.DType() != tensor.Int64 || hdrT.NumElements() < 1 {
		return nil, fmt.Errorf("collective: %q: malformed broadcast header", key)
	}
	hdr := hdrT.I64()
	dt := tensor.DType(hdr[0])
	shape := make(tensor.Shape, len(hdr)-1)
	for i := range shape {
		shape[i] = int(hdr[1+i])
	}
	if !shape.Valid() || dt.Size() == 0 {
		return nil, fmt.Errorf("collective: %q: invalid broadcast header %v/%v", key, dt, shape)
	}
	return tensor.New(dt, shape...), nil
}

// ReduceScatter combines equal-shaped tensors element-wise across all ranks
// and leaves rank r holding segment r of the result (SegBounds split, MPI
// convention) as a flat rank-1 tensor — the first half of the ring
// allreduce at half the traffic, for consumers that shard the reduced
// value anyway. Pair with AllGatherV to reassemble the full tensor.
func (g *Group) ReduceScatter(key string, t *tensor.Tensor, op string) (*tensor.Tensor, error) {
	switch t.DType() {
	case tensor.Float32:
		return ringReduceScatter(g, key, t, slF32, op)
	case tensor.Float64:
		return ringReduceScatter(g, key, t, slF64, op)
	case tensor.Int32:
		return ringReduceScatter(g, key, t, slI32, op)
	case tensor.Int64:
		return ringReduceScatter(g, key, t, slI64, op)
	}
	return nil, fmt.Errorf("collective: reduce-scatter does not support dtype %v", t.DType())
}

func ringReduceScatter[T interface {
	~float32 | ~float64 | ~int32 | ~int64
}](g *Group, key string, in *tensor.Tensor, sl slicer[T], op string) (*tensor.Tensor, error) {
	combine, err := combinerFor[T](op)
	if err != nil {
		return nil, err
	}
	p, r := g.Size(), g.Rank()
	src := sl.data(in)
	n := len(src)
	if p == 1 {
		out := tensor.New(in.DType(), n)
		copy(sl.data(out), src)
		return out, nil
	}
	seq := g.nextSeq(key)
	// scratch holds partially reduced segments in transit; only segment r
	// survives into the returned tensor.
	scratch := make([]T, n)
	next, prev := (r+1)%p, (r-1+p)%p
	chunk := g.chunkElems(in.DType())

	// Segment schedule: rank r relays segment (r+p-1-step) and receives
	// (r+p-2-step); after p−1 steps the last received segment is r itself,
	// fully reduced.
	for step := 0; step < p-1; step++ {
		sendSeg := (r + p - 1 - step) % p
		recvSeg := (r + p - 2 - step) % p
		sLo, sHi := SegBounds(n, p, sendSeg)
		rLo, rHi := SegBounds(n, p, recvSeg)

		sendBuf := scratch
		if step == 0 {
			sendBuf = src
		}
		errc := make(chan error, 1)
		go func(buf []T, lo, hi, step int) {
			for k, off := 0, lo; off < hi; k, off = k+1, off+chunk {
				end := min(off+chunk, hi)
				payload := sl.wrap(tensor.Shape{end - off}, buf[off:end:end])
				if err := g.tr.Send(next, key, tag(seq, phaseRS, step, k), payload); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(sendBuf, sLo, sHi, step)

		var recvErr error
		for k, off := 0, rLo; off < rHi; k, off = k+1, off+chunk {
			end := min(off+chunk, rHi)
			msg, err := g.tr.Recv(prev, key, tag(seq, phaseRS, step, k))
			if err != nil {
				recvErr = err
				break
			}
			if msg.DType() != in.DType() || msg.NumElements() != end-off {
				recvErr = fmt.Errorf("collective: %q: peer %d sent %v%v, want %d %v elements (mismatched inputs?)",
					key, prev, msg.DType(), msg.Shape(), end-off, in.DType())
				break
			}
			combine(scratch[off:end], src[off:end], sl.data(msg))
			tensor.Recycle(msg)
		}
		if err := <-errc; err != nil {
			return nil, g.fatal(err)
		}
		if recvErr != nil {
			return nil, g.fatal(recvErr)
		}
	}
	lo, hi := SegBounds(n, p, r)
	out := tensor.New(in.DType(), hi-lo)
	copy(sl.data(out), scratch[lo:hi])
	return out, nil
}

// AllGatherV concatenates per-rank tensors of differing leading dimension
// along axis 0 (rank-0 inputs count as one row of one element). Trailing
// dimensions and dtype must agree across ranks; a size-exchange round
// precedes the data ring, so callers never pre-negotiate shard sizes —
// exactly what uneven SegBounds shards and per-worker tile sets need.
func (g *Group) AllGatherV(key string, t *tensor.Tensor) (*tensor.Tensor, error) {
	switch t.DType() {
	case tensor.Float32:
		return ringAllGatherV(g, key, t, slF32)
	case tensor.Float64:
		return ringAllGatherV(g, key, t, slF64)
	case tensor.Int32:
		return ringAllGatherV(g, key, t, slI32)
	case tensor.Int64:
		return ringAllGatherV(g, key, t, slI64)
	case tensor.Complex64:
		return ringAllGatherV(g, key, t, slC64)
	case tensor.Complex128:
		return ringAllGatherV(g, key, t, slC128)
	case tensor.Bool:
		return ringAllGatherV(g, key, t, slBool)
	}
	return nil, fmt.Errorf("collective: allgatherv does not support dtype %v", t.DType())
}

func ringAllGatherV[T any](g *Group, key string, in *tensor.Tensor, sl slicer[T]) (*tensor.Tensor, error) {
	p, r := g.Size(), g.Rank()
	lead := 1
	rowElems := in.NumElements()
	if in.Rank() >= 1 {
		lead = in.Shape()[0]
		rowElems = 1
		for _, d := range in.Shape()[1:] {
			rowElems *= d
		}
	}
	seq := g.nextSeq(key)
	next, prev := (r+1)%p, (r-1+p)%p

	// Size-exchange round: circulate (lead, rowElems) so every rank can lay
	// out the output and validate geometry before any payload moves.
	leads := make([]int, p)
	leads[r] = lead
	if p > 1 {
		for step := 0; step < p-1; step++ {
			sendSeg := (r - step + p) % p
			if err := g.tr.Send(next, key, tag(seq, phaseGatherV, step, 0),
				tensor.FromI64(tensor.Shape{2}, []int64{int64(leads[sendSeg]), int64(rowElems)})); err != nil {
				return nil, g.fatal(err)
			}
			recvSeg := (r - step - 1 + p) % p
			msg, err := g.tr.Recv(prev, key, tag(seq, phaseGatherV, step, 0))
			if err != nil {
				return nil, g.fatal(err)
			}
			if msg.DType() != tensor.Int64 || msg.NumElements() != 2 {
				return nil, g.fatal(fmt.Errorf("collective: %q: malformed allgatherv size header", key))
			}
			got := msg.I64()
			if got[1] != int64(rowElems) {
				return nil, g.fatal(fmt.Errorf("collective: %q: rank %d rows have %d elements, rank %d has %d (trailing dims must match)",
					key, recvSeg, got[1], r, rowElems))
			}
			if got[0] < 0 {
				return nil, g.fatal(fmt.Errorf("collective: %q: negative shard size from rank %d", key, recvSeg))
			}
			leads[recvSeg] = int(got[0])
			tensor.Recycle(msg)
		}
	}

	totalLead := 0
	offs := make([]int, p+1)
	for s := 0; s < p; s++ {
		offs[s] = totalLead * rowElems
		totalLead += leads[s]
	}
	offs[p] = totalLead * rowElems

	outShape := tensor.Shape{totalLead}
	if in.Rank() >= 1 {
		outShape = append(tensor.Shape{totalLead}, in.Shape()[1:]...)
	}
	out := tensor.New(in.DType(), outShape...)
	data := sl.data(out)
	copy(data[offs[r]:offs[r+1]], sl.data(in))
	if p == 1 {
		return out, nil
	}
	chunk := g.chunkElems(in.DType())

	for step := 0; step < p-1; step++ {
		sendSeg := (r - step + p) % p
		recvSeg := (r - step - 1 + p) % p
		sLo, sHi := offs[sendSeg], offs[sendSeg+1]
		rLo, rHi := offs[recvSeg], offs[recvSeg+1]

		errc := make(chan error, 1)
		go func(lo, hi, step int) {
			for k, off := 0, lo; off < hi; k, off = k+1, off+chunk {
				end := min(off+chunk, hi)
				payload := sl.wrap(tensor.Shape{end - off}, data[off:end:end])
				if err := g.tr.Send(next, key, tag(seq, phaseGatherV, step, k+1), payload); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(sLo, sHi, step)

		var recvErr error
		for k, off := 0, rLo; off < rHi; k, off = k+1, off+chunk {
			end := min(off+chunk, rHi)
			msg, err := g.tr.Recv(prev, key, tag(seq, phaseGatherV, step, k+1))
			if err != nil {
				recvErr = err
				break
			}
			if msg.DType() != in.DType() || msg.NumElements() != end-off {
				recvErr = fmt.Errorf("collective: %q: peer %d sent %v%v, want %d %v elements (mismatched inputs?)",
					key, prev, msg.DType(), msg.Shape(), end-off, in.DType())
				break
			}
			copy(data[off:end], sl.data(msg))
			tensor.Recycle(msg)
		}
		if err := <-errc; err != nil {
			return nil, g.fatal(err)
		}
		if recvErr != nil {
			return nil, g.fatal(recvErr)
		}
	}
	return out, nil
}
