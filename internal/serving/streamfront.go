package serving

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"tfhpc/internal/rpc"
	"tfhpc/internal/telemetry"
	"tfhpc/internal/tensor"
)

// Streaming predict: one persistent rpc stream carries many predict
// request/response pairs, replacing the per-request call round-trip (frame,
// dispatch, handler goroutine, response frame) with two data frames on an
// already-open channel. Requests on one stream are served in order; routers
// keep a small pool of streams per replica for concurrency.
//
// Request frame:
//
//	uvarint reqID | uvarint budget µs (0 = none) | uvarint trace | uvarint span | uvarint len(model) | model | tensor
//
// trace/span are the caller's telemetry ids (0 when untraced — one zero byte
// each, so the untraced hot path stays allocation-free and cheap).
//
// Response frame:
//
//	uvarint reqID | status byte | payload
//
// where status 0 carries the result tensor and any other status an optional
// error text. reqIDs increase per stream; a response with an old id is a
// late answer to a request whose client-side deadline already expired, and
// is skipped. The status byte — not error-string matching — carries the
// canonical outcome across the wire, so classification is exact.
const PredictStreamMethod = "ServingPredictStream"

// Streaming predict status bytes.
const (
	stOK         = 0
	stNotFound   = 1
	stOverloaded = 2
	stDeadline   = 3
	stBadInput   = 4
	stClosed     = 5
	stError      = 6 // payload = error text
)

// statusOf maps a predict outcome onto its wire status byte.
func statusOf(err error) byte {
	switch {
	case err == nil:
		return stOK
	case errors.Is(err, ErrNotFound):
		return stNotFound
	case errors.Is(err, ErrOverloaded):
		return stOverloaded
	case errors.Is(err, ErrDeadline):
		return stDeadline
	case errors.Is(err, ErrBadInput):
		return stBadInput
	case errors.Is(err, ErrClosed):
		return stClosed
	default:
		return stError
	}
}

// errOfStatus is the client-side inverse: canonical statuses return the
// canonical error values themselves (no allocation), stError rebuilds a
// remote-tagged error from the payload text.
func errOfStatus(status byte, text []byte) error {
	switch status {
	case stNotFound:
		return ErrNotFound
	case stOverloaded:
		return ErrOverloaded
	case stDeadline:
		return ErrDeadline
	case stBadInput:
		return ErrBadInput
	case stClosed:
		return ErrClosed
	default:
		if len(text) > 0 {
			return fmt.Errorf("serving: remote predict error: %s", text)
		}
		return errors.New("serving: remote predict error")
	}
}

// StreamRPCMux is an RPCMux that can also host streaming methods — an
// rpc.Server or cluster.Server. Attach registers the streaming predict
// endpoint when the mux supports it, so plain-call-only muxes keep working.
type StreamRPCMux interface {
	RPCMux
	HandleStream(method string, h rpc.StreamHandler)
}

// servePredictStream serves one client's predict stream until it closes.
// Everything per-request is reused across the loop: the receive buffer, the
// response scratch, the interned model name, and the fast-path output
// tensor — with a RowPredictor behind it, the steady state allocates
// nothing.
func servePredictStream(p Predictor, st *rpc.Stream) error {
	rows, _ := p.(RowPredictor)
	var (
		buf, resp []byte
		modelBuf  []byte
		model     string
		scratch   *tensor.Tensor // fast-path row output; nil until first use
		scratchOK bool           // scratch matches the current model
	)
	for {
		var err error
		buf, err = st.Recv(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		reqID, budget, tsc, mb, tb, perr := parseStreamPredict(buf)
		if perr != nil {
			return perr // protocol violation: reset the stream
		}
		if !bytes.Equal(mb, modelBuf) {
			modelBuf = append(modelBuf[:0], mb...)
			model = string(mb)
			scratch, scratchOK = nil, false
		}
		var deadline time.Time
		if budget > 0 {
			deadline = time.Now().Add(time.Duration(budget) * time.Microsecond)
		}
		var span *telemetry.Span
		if tsc.Valid() {
			span = telemetry.StartChild(tsc, "stream_predict_serve")
			span.FlowIn(telemetry.FlowID(tsc.Trace, tsc.Span, reqID))
		}

		resp = binary.AppendUvarint(resp[:0], reqID)
		idLen := len(resp)
		in, rest, derr := tensor.DecodePooled(tb)
		if derr != nil || len(rest) != 0 {
			resp = appendStatus(resp, ErrBadInput)
		} else if out, fastErr, fast := rowFastPath(rows, model, in, deadline, &scratch, &scratchOK); fast {
			// Fast path took it (ok or a definite outcome); the input row is
			// ours again.
			tensor.Recycle(in)
			if fastErr != nil {
				resp = appendStatus(resp, fastErr)
			} else {
				resp = append(resp, stOK)
				if resp, err = out.Encode(resp); err != nil {
					resp = appendStatus(resp[:idLen], err)
				}
			}
		} else {
			// Batcher / general path. The input is NOT recycled: on a
			// deadline the batcher's runner may still hold the row.
			out, perr := p.Predict(model, in, deadline)
			if perr != nil {
				resp = appendStatus(resp, perr)
			} else {
				resp = append(resp, stOK)
				if resp, err = out.Encode(resp); err != nil {
					resp = appendStatus(resp[:idLen], err)
				}
			}
		}
		err = st.Send(resp)
		span.End()
		if err != nil {
			return err
		}
	}
}

// rowFastPath tries the RowPredictor route for a rank-1 request. fast=false
// means "not handled here, use Predict"; fast=true means the outcome (out or
// err) is final. The caller's scratch output is (re)built on model change or
// after a hot-swap invalidates its shape.
func rowFastPath(rows RowPredictor, model string, in *tensor.Tensor, deadline time.Time,
	scratch **tensor.Tensor, scratchOK *bool) (*tensor.Tensor, error, bool) {
	if rows == nil || in == nil || in.Rank() != 1 {
		return nil, nil, false
	}
	for attempt := 0; attempt < 2; attempt++ {
		if *scratch == nil {
			if *scratchOK {
				return nil, nil, false // memoized: model has no fast path
			}
			sc, err := rows.NewRowOutput(model)
			*scratchOK = true
			if err != nil {
				return nil, nil, false
			}
			*scratch = sc
		}
		err := rows.PredictRowInto(model, in, *scratch, deadline)
		if errors.Is(err, errNoFastPath) {
			// Hot-swap made the scratch stale (or removed the kernel):
			// rebuild once, then give up to the general path.
			*scratch, *scratchOK = nil, false
			continue
		}
		return *scratch, err, true
	}
	return nil, nil, false
}

// parseStreamPredict splits one request frame; all byte slices alias b.
func parseStreamPredict(b []byte) (reqID, budget uint64, tsc telemetry.SpanContext, model, tb []byte, err error) {
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, tsc, nil, nil, errors.New("serving: malformed stream predict id")
	}
	b = b[n:]
	bud, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, tsc, nil, nil, errors.New("serving: malformed stream predict budget")
	}
	b = b[n:]
	tsc.Trace, n = binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, tsc, nil, nil, errors.New("serving: malformed stream predict trace id")
	}
	b = b[n:]
	tsc.Span, n = binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, tsc, nil, nil, errors.New("serving: malformed stream predict span id")
	}
	b = b[n:]
	ml, n := binary.Uvarint(b)
	if n <= 0 || ml > uint64(len(b)-n) {
		return 0, 0, tsc, nil, nil, errors.New("serving: malformed stream predict model")
	}
	b = b[n:]
	return id, bud, tsc, b[:ml], b[ml:], nil
}

// appendStatus appends an error's status byte plus, for non-canonical
// errors, its text.
func appendStatus(resp []byte, err error) []byte {
	s := statusOf(err)
	resp = append(resp, s)
	if s == stError {
		resp = append(resp, err.Error()...)
	}
	return resp
}

// errStreamGone marks a PredictStream whose underlying stream already
// failed; callers open a fresh one.
var errStreamGone = errors.New("serving: predict stream is broken")

// PredictStream is one client endpoint of a streaming predict channel. One
// request is in flight at a time (Predict serializes); concurrency comes
// from pooling several streams, which the Router does per replica.
type PredictStream struct {
	mu     sync.Mutex
	st     *rpc.Stream
	nextID uint64
	wbuf   []byte
	rbuf   []byte
	broken bool
}

// OpenPredictStream opens a streaming predict channel on the client's mux
// connection.
func OpenPredictStream(c *rpc.Client) (*PredictStream, error) {
	st, err := c.OpenStream(PredictStreamMethod)
	if err != nil {
		return nil, err
	}
	return &PredictStream{st: st}, nil
}

// Close tears the stream down.
func (ps *PredictStream) Close() error { return ps.st.Close() }

// Broken reports whether the stream has failed and should be discarded.
// A deadline expiry does not break the stream: the late response is skipped
// by the next request's id check.
func (ps *PredictStream) Broken() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.broken
}

// Predict issues one predict over the stream and waits for its answer.
// Results may come from the tensor pool; callers done with one before it
// escapes may Recycle it. Canonical serving errors come back as their
// canonical values (exact status bytes, not string matching).
func (ps *PredictStream) Predict(model string, in *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	return ps.PredictTraced(telemetry.SpanContext{}, model, in, deadline)
}

// PredictTraced is Predict with the caller's span context riding the request
// frame: the server's per-request span joins the caller's trace, linked by a
// flow id derived from (trace, span, reqID) on both ends. A zero context
// costs two zero bytes on the wire and nothing else.
func (ps *PredictStream) PredictTraced(tsc telemetry.SpanContext, model string, in *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.broken {
		return nil, errStreamGone
	}
	span := telemetry.StartChild(tsc, "stream_predict")
	if !tsc.Valid() {
		span = nil // untraced caller: no client-side span either
	}
	defer span.End()
	tsc = span.Context()
	ps.nextID++
	id := ps.nextID
	b := binary.AppendUvarint(ps.wbuf[:0], id)
	var budget uint64
	if !deadline.IsZero() {
		us := time.Until(deadline).Microseconds()
		if us <= 0 {
			return nil, ErrDeadline
		}
		budget = uint64(us)
	}
	b = binary.AppendUvarint(b, budget)
	b = binary.AppendUvarint(b, tsc.Trace)
	b = binary.AppendUvarint(b, tsc.Span)
	b = binary.AppendUvarint(b, uint64(len(model)))
	b = append(b, model...)
	b, err := in.Encode(b)
	ps.wbuf = b
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if err := ps.st.Send(b); err != nil {
		ps.broken = true
		return nil, err
	}
	span.FlowOut(telemetry.FlowID(tsc.Trace, tsc.Span, id))
	ps.st.SetRecvDeadline(deadline)
	for {
		rb, err := ps.st.Recv(ps.rbuf)
		if err != nil {
			if err == rpc.ErrStreamTimeout {
				// The server will still answer; the id check on the next
				// request skips the late response. The stream stays usable.
				return nil, ErrDeadline
			}
			ps.broken = true
			if err == io.EOF {
				return nil, fmt.Errorf("%w (stream)", ErrClosed)
			}
			return nil, err
		}
		ps.rbuf = rb
		respID, n := binary.Uvarint(rb)
		if n <= 0 || n >= len(rb) {
			ps.broken = true
			return nil, errors.New("serving: malformed stream predict response")
		}
		if respID < id {
			continue // late answer to a timed-out predecessor
		}
		if respID != id {
			ps.broken = true
			return nil, errors.New("serving: stream predict response id skew")
		}
		status, payload := rb[n], rb[n+1:]
		if status != stOK {
			return nil, errOfStatus(status, payload)
		}
		out, rest, derr := tensor.DecodePooled(payload)
		if derr != nil || len(rest) != 0 {
			ps.broken = true
			return nil, fmt.Errorf("serving: bad stream predict payload: %v", derr)
		}
		return out, nil
	}
}

// isNoStreamHandlerErr detects a replica that does not serve the streaming
// method (an older build): the router falls back to the call path for it
// rather than benching a healthy replica.
func isNoStreamHandlerErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no stream handler")
}
