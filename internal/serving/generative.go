package serving

import (
	"errors"
	"fmt"

	"tfhpc/internal/checkpoint"
	"tfhpc/internal/serving/generate"
	"tfhpc/internal/tensor"
	"tfhpc/internal/vars"
)

// GenerativeGraphID tags checkpoints holding a servable autoregressive model
// (variable "w", decode step y = h·w with tanh feedback) — the format
// tfsgd -gen-checkpoint writes and tfserve -genmodel loads, extending the
// train → checkpoint → serve loop to token streaming.
const GenerativeGraphID = "tfhpc/serving/generative"

// Generator is the generative front-end contract, the sequence-streaming
// sibling of Predictor: both a local Service (engine per model) and a Router
// (remote relay with failover) implement it, so the HTTP and binary
// front-ends serve either interchangeably.
type Generator interface {
	// Generate admits one request and returns its token stream. The request
	// deadline bounds time-to-first-token; errors are the canonical serving
	// set (ErrNotFound/ErrOverloaded/ErrDeadline/ErrBadInput/ErrClosed).
	Generate(model string, req generate.Request) (generate.Stream, error)
}

// mapGenErr maps the generate package's sentinels onto the serving canonical
// set, so HTTP codes and wire status bytes stay exact for generative
// outcomes too.
func mapGenErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, generate.ErrOverloaded):
		return ErrOverloaded
	case errors.Is(err, generate.ErrDeadline):
		return ErrDeadline
	case errors.Is(err, generate.ErrClosed):
		return ErrClosed
	case errors.Is(err, generate.ErrBadRequest):
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	default:
		return err
	}
}

// mappedStream wraps an engine stream so Finish reports serving-canonical
// errors.
type mappedStream struct {
	generate.Stream
}

func (ms mappedStream) Finish() (generate.FinishReason, error) {
	reason, err := ms.Stream.Finish()
	return reason, mapGenErr(err)
}

// genEntry is one served generative model: its engine plus the version tag
// for the status endpoints.
type genEntry struct {
	eng     *generate.Engine
	version int
}

// ServeGenerative installs (or hot-swaps in) a generative model: a trained
// weight vector w served by a continuous-batching engine. The replaced
// engine, if any, is closed — its in-flight sequences finish with ErrClosed,
// the generative analogue of a batcher swap.
func (s *Service) ServeGenerative(name string, version int, w *tensor.Tensor, opts generate.Options) error {
	if w == nil || w.Rank() != 1 {
		return fmt.Errorf("%w: generative model needs a rank-1 weight vector, got %v", ErrBadInput, shapeOf(w))
	}
	var wd []float64
	if w.DType() == tensor.Float32 {
		f := w.F32()
		wd = make([]float64, len(f))
		for i, v := range f {
			wd[i] = float64(v)
		}
	} else {
		wd = append([]float64(nil), w.F64()...)
	}
	m, err := generate.NewModel(name, wd)
	if err != nil {
		return mapGenErr(err)
	}
	eng := generate.NewEngine(m, opts)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		eng.Close()
		return ErrClosed
	}
	if s.gens == nil {
		s.gens = make(map[string]*genEntry)
	}
	old := s.gens[name]
	s.gens[name] = &genEntry{eng: eng, version: version}
	s.mu.Unlock()
	if old != nil {
		old.eng.Close()
	}
	return nil
}

// Generate implements Generator on the local service.
func (s *Service) Generate(model string, req generate.Request) (generate.Stream, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	g := s.gens[model]
	s.mu.Unlock()
	if g == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, model)
	}
	st, err := g.eng.Submit(req)
	if err != nil {
		return nil, mapGenErr(err)
	}
	return mappedStream{st}, nil
}

// genModels lists generative models for the status endpoints.
func (s *Service) genModels() []ModelStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ModelStatus, 0, len(s.gens))
	for name, g := range s.gens {
		out = append(out, ModelStatus{Name: name, Version: g.version, State: "active", Ready: !s.closed})
	}
	return out
}

// genStats snapshots every generative engine's counters (the /statsz view).
func (s *Service) genStats() []generate.Stats {
	s.mu.Lock()
	engs := make([]*generate.Engine, 0, len(s.gens))
	for _, g := range s.gens {
		engs = append(engs, g.eng)
	}
	s.mu.Unlock()
	out := make([]generate.Stats, 0, len(engs))
	for _, eng := range engs {
		out = append(out, eng.Stats())
	}
	return out
}

// SaveGenerative checkpoints a trained weight vector in the servable
// generative format; step becomes the model version on load.
func SaveGenerative(path string, step int64, w *tensor.Tensor) error {
	if w == nil || w.Rank() != 1 {
		return fmt.Errorf("serving: generative checkpoint needs a rank-1 weight vector, got %v", shapeOf(w))
	}
	store := vars.NewStore()
	if err := store.Get("w").Assign(w); err != nil {
		return err
	}
	return checkpoint.Capture(GenerativeGraphID, step, store).Save(path)
}

// LoadGenerative loads a generative checkpoint written by SaveGenerative.
// version <= 0 takes the checkpoint's step as the version.
func LoadGenerative(path string, version int) (*tensor.Tensor, int, error) {
	c, err := checkpoint.Load(path)
	if err != nil {
		return nil, 0, err
	}
	if c.GraphID != GenerativeGraphID {
		return nil, 0, fmt.Errorf("serving: checkpoint %s has graph id %q, want %q", path, c.GraphID, GenerativeGraphID)
	}
	w, ok := c.Vars["w"]
	if !ok {
		return nil, 0, fmt.Errorf("serving: checkpoint %s has no variable %q", path, "w")
	}
	if version <= 0 {
		version = int(c.Step)
		if version <= 0 {
			version = 1
		}
	}
	return w, version, nil
}
