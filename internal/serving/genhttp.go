package serving

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"tfhpc/internal/serving/generate"
)

// generateRequest is the POST /v1/models/<name>:generate body.
type generateRequest struct {
	// Prompt is the initial sequence state (length = model feature width).
	Prompt []float64 `json:"prompt"`
	// MaxTokens caps the generated sequence; <=0 takes the server cap.
	MaxTokens int `json:"max_tokens"`
	// StopBelow, when positive, is the EOS threshold: |token| < StopBelow
	// ends the sequence.
	StopBelow float64 `json:"stop_below"`
}

// serveGenerate streams one generation as server-sent events. Each token is
// one `data:` event; a final event carries the finish reason. Errors before
// the first byte map to the usual JSON error + status; once streaming, an
// `event: error` frame ends the stream instead (the status line is spent).
// A client disconnect cancels the sequence, freeing its decode slot.
func serveGenerate(w http.ResponseWriter, r *http.Request, g Generator, model string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadInput, err))
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, fmt.Errorf("%w: body over %d bytes", ErrOverloaded, maxBodyBytes))
		return
	}
	var req generateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadInput, err))
		return
	}
	if len(req.Prompt) == 0 {
		writeError(w, fmt.Errorf("%w: missing prompt", ErrBadInput))
		return
	}
	var deadline time.Time
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil || ms <= 0 {
			writeError(w, fmt.Errorf("%w: bad X-Deadline-Ms %q", ErrBadInput, h))
			return
		}
		deadline = time.Now().Add(time.Duration(ms) * time.Millisecond)
	}

	st, err := g.Generate(model, generate.Request{
		Prompt:    req.Prompt,
		MaxTokens: req.MaxTokens,
		StopBelow: req.StopBelow,
		Deadline:  deadline,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	// From here the sequence owns a queue position (and soon a slot):
	// whatever exit path the handler takes, the engine must hear about a
	// gone consumer, or its slot leaks until MaxTokens.
	stop := context.AfterFunc(r.Context(), st.Cancel)
	defer stop()
	defer st.Cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	buf := make([]byte, 0, 128)
	tokens := 0
	for {
		tok, ok := st.Next()
		if !ok {
			break
		}
		tokens++
		// Hand-rolled event body: FormatFloat 'g'/-1 round-trips the exact
		// float64 bits, which the smoke client asserts token for token.
		buf = append(buf[:0], `data: {"index":`...)
		buf = strconv.AppendInt(buf, int64(tok.Index), 10)
		buf = append(buf, `,"token":`...)
		buf = strconv.AppendFloat(buf, tok.Value, 'g', -1, 64)
		buf = append(buf, `,"step":`...)
		buf = strconv.AppendUint(buf, tok.Step, 10)
		buf = append(buf, "}\n\n"...)
		if _, err := w.Write(buf); err != nil {
			return // client gone; the deferred Cancel frees the slot
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	reason, ferr := st.Finish()
	if ferr != nil {
		fmt.Fprintf(w, "event: error\ndata: {\"error\":%q,\"status\":%d}\n\n", ferr.Error(), HTTPStatus(ferr))
	} else {
		fmt.Fprintf(w, "data: {\"done\":true,\"finish_reason\":%q,\"tokens\":%d}\n\n", reason, tokens)
	}
	if flusher != nil {
		flusher.Flush()
	}
}
