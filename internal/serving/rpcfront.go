package serving

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"tfhpc/internal/rpc"
	"tfhpc/internal/tensor"
	"tfhpc/internal/wire"
)

// RPCMux is anything serving methods can be registered on: an rpc.Server,
// or a cluster.Server — which is how model replicas are co-hosted on
// cluster worker tasks next to their training-side variables and
// collectives.
type RPCMux interface {
	HandleCtx(method string, h rpc.CtxHandler)
}

// Attach registers the framed binary serving endpoint on mux:
//
//	ServingPredict  req: 1=model, 2=tensor bytes ([d] row or [n,d] batch)
//	                resp: tensor bytes. Deadline rides the rpc frame.
//	ServingModels   resp: JSON []ModelStatus
//	ServingStats    resp: the same JSON payload as /statsz
//
// The per-call deadline arrives through the handler context (rpc
// CallContext budget), so a serving timeout set by a router propagates to
// the replica's admission queue instead of blocking forever.
func Attach(mux RPCMux, p Predictor) {
	mux.HandleCtx("ServingPredict", func(ctx context.Context, req []byte) ([]byte, error) {
		model, in, err := decodePredict(req)
		if err != nil {
			return nil, err
		}
		var deadline time.Time
		if dl, ok := ctx.Deadline(); ok {
			deadline = dl
		}
		out, err := p.Predict(model, in, deadline)
		if err != nil {
			return nil, err
		}
		return out.Encode(nil)
	})
	mux.HandleCtx("ServingModels", func(context.Context, []byte) ([]byte, error) {
		return marshalModels(p.Models())
	})
	mux.HandleCtx("ServingStats", func(context.Context, []byte) ([]byte, error) {
		return p.StatsJSON()
	})
	// Muxes that can host streams also get the persistent streaming predict
	// endpoint (ServingPredictStream); call-only muxes keep working without.
	if sm, ok := mux.(StreamRPCMux); ok {
		sm.HandleStream(PredictStreamMethod, func(st *rpc.Stream) error {
			return servePredictStream(p, st)
		})
		// Predictors that also generate get the sequence-streaming endpoint.
		if g, ok := p.(Generator); ok {
			sm.HandleStream(GenerateStreamMethod, func(st *rpc.Stream) error {
				return serveGenerateStream(g, st)
			})
		}
	}
}

// EncodePredict builds a ServingPredict request frame.
func EncodePredict(model string, in *tensor.Tensor) ([]byte, error) {
	tb, err := in.Encode(nil)
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder()
	e.String(1, model)
	e.BytesField(2, tb)
	return e.Bytes(), nil
}

func decodePredict(req []byte) (model string, in *tensor.Tensor, err error) {
	d := wire.NewDecoder(req)
	for {
		f, wt, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", nil, err
		}
		switch f {
		case 1:
			if model, err = d.StringVal(); err != nil {
				return "", nil, err
			}
		case 2:
			tb, err := d.Bytes()
			if err != nil {
				return "", nil, err
			}
			if in, _, err = tensor.Decode(tb); err != nil {
				return "", nil, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return "", nil, err
			}
		}
	}
	if model == "" || in == nil {
		return "", nil, fmt.Errorf("%w: malformed ServingPredict request", ErrBadInput)
	}
	return model, in, nil
}

// PredictRemote issues one binary predict against a replica. The ctx
// deadline propagates in the frame; remote serving errors are mapped back
// to their canonical values so callers can classify outcomes as if local.
func PredictRemote(ctx context.Context, c *rpc.Client, model string, in *tensor.Tensor) (*tensor.Tensor, error) {
	req, err := EncodePredict(model, in)
	if err != nil {
		return nil, err
	}
	resp, err := c.CallContext(ctx, "ServingPredict", req)
	if err != nil {
		return nil, mapRemoteErr(err)
	}
	out, _, err := tensor.Decode(resp)
	return out, err
}

// mapRemoteErr recovers the canonical serving error from a remote error's
// message, so ErrOverloaded/ErrDeadline/... survive the wire round-trip.
func mapRemoteErr(err error) error {
	if !rpc.IsRemote(err) {
		// A client-side deadline while waiting on the replica is a deadline
		// outcome: the budget is spent, failover cannot help.
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("%w: %v", ErrDeadline, err)
		}
		return err
	}
	msg := err.Error()
	for _, canon := range []error{ErrNotFound, ErrOverloaded, ErrDeadline, ErrBadInput, ErrClosed} {
		if strings.Contains(msg, canon.Error()) {
			return fmt.Errorf("%w (remote)", canon)
		}
	}
	if strings.Contains(msg, context.DeadlineExceeded.Error()) {
		return fmt.Errorf("%w (remote)", ErrDeadline)
	}
	return err
}

// isTransportErr reports whether err means the replica itself failed (dial
// refused, conn reset, local deadline while waiting) rather than answering
// with an application error — the failover-worthy class.
func isTransportErr(err error) bool {
	if err == nil || rpc.IsRemote(err) {
		return false
	}
	// Canonical serving errors mapped back from the remote side are
	// application outcomes, not replica failures.
	for _, canon := range []error{ErrNotFound, ErrOverloaded, ErrDeadline, ErrBadInput, ErrClosed} {
		if errors.Is(err, canon) {
			return false
		}
	}
	return true
}
