package serving

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"tfhpc/internal/rpc"
	"tfhpc/internal/tensor"
)

// startStreamServer hosts one Service behind a plain rpc.Server with both
// the call and streaming predict endpoints attached.
func startStreamServer(t testing.TB, d int, scale float64) (string, *Service) {
	t.Helper()
	srv := rpc.NewServer()
	svc := NewService(NewRegistry(), BatchOptions{MaxBatch: 8, Timeout: time.Millisecond})
	mv, err := NewLinear("lin", 1, linearWeights(d, scale))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ServeModel(mv); err != nil {
		t.Fatal(err)
	}
	Attach(srv, svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		svc.Close()
		srv.Close()
	})
	return addr, svc
}

// TestStreamPredictMatchesLocal drives rows and a batch through the
// streaming endpoint and checks bit-identity with the local batcher path.
func TestStreamPredictMatchesLocal(t *testing.T) {
	const d = 32
	addr, svc := startStreamServer(t, d, 1)
	c := rpc.Dial(addr)
	defer c.Close()
	ps, err := OpenPredictStream(c)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	for k := 0; k < 20; k++ {
		row := sliceRow(randRows(1, d, uint64(100+k)), 0)
		got, err := ps.Predict("lin", row, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := svc.Predict("lin", row, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if got.F64()[0] != want.F64()[0] {
			t.Fatalf("row %d: stream %v != local %v", k, got.F64()[0], want.F64()[0])
		}
	}

	// A rank-2 batch rides the same stream through the general path.
	batch := randRows(5, d, 777)
	got, err := ps.Predict("lin", batch, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.Predict("lin", batch, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.F64()) != 5 {
		t.Fatalf("batch result length %d, want 5", len(got.F64()))
	}
	for i := range want.F64() {
		if got.F64()[i] != want.F64()[i] {
			t.Fatalf("batch row %d: stream %v != local %v", i, got.F64()[i], want.F64()[i])
		}
	}

	// Float32 rows take the same fast path in the model's native dtype.
	mv32, err := NewLinear("lin32", 1, tensor.RandomUniform(tensor.Float32, 5, d))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ServeModel(mv32); err != nil {
		t.Fatal(err)
	}
	row32 := tensor.RandomUniform(tensor.Float32, 9, d)
	got32, err := ps.Predict("lin32", row32, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	want32, err := svc.Predict("lin32", row32, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if got32.F32()[0] != want32.F32()[0] {
		t.Fatalf("f32 row: stream %v != local %v", got32.F32()[0], want32.F32()[0])
	}
}

// TestStreamPredictErrors checks the canonical outcomes cross the stream as
// their exact error values.
func TestStreamPredictErrors(t *testing.T) {
	const d = 8
	addr, _ := startStreamServer(t, d, 1)
	c := rpc.Dial(addr)
	defer c.Close()
	ps, err := OpenPredictStream(c)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	if _, err := ps.Predict("nosuch", sliceRow(randRows(1, d, 1), 0), time.Time{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown model: %v, want ErrNotFound", err)
	}
	if _, err := ps.Predict("lin", sliceRow(randRows(1, d+3, 2), 0), time.Time{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("wrong width: %v, want ErrBadInput", err)
	}
	if _, err := ps.Predict("lin", tensor.New(tensor.Int32, d), time.Time{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("non-float row: %v, want ErrBadInput", err)
	}
	// A spent budget resolves client-side, before any frame goes out.
	if _, err := ps.Predict("lin", sliceRow(randRows(1, d, 3), 0), time.Now().Add(-time.Millisecond)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired deadline: %v, want ErrDeadline", err)
	}
	// The stream survives all of the above.
	if _, err := ps.Predict("lin", sliceRow(randRows(1, d, 4), 0), time.Time{}); err != nil {
		t.Fatalf("stream broken after application errors: %v", err)
	}
}

// TestStreamPredictStatusRoundTrip pins the status-byte mapping: every
// canonical error survives the wire exactly.
func TestStreamPredictStatusRoundTrip(t *testing.T) {
	for _, canon := range []error{ErrNotFound, ErrOverloaded, ErrDeadline, ErrBadInput, ErrClosed} {
		st := statusOf(fmt.Errorf("wrapped: %w", canon))
		back := errOfStatus(st, nil)
		if !errors.Is(back, canon) {
			t.Fatalf("status %d decoded to %v, want %v", st, back, canon)
		}
		if isTransportErr(back) {
			t.Fatalf("%v classified as transport error", back)
		}
	}
	other := errors.New("kernel exploded")
	back := errOfStatus(statusOf(other), []byte(other.Error()))
	if back == nil || back.Error() != "serving: remote predict error: kernel exploded" {
		t.Fatalf("opaque error round trip: %v", back)
	}
}

// TestStreamPredictHotSwap checks that an open stream tracks a hot-swap: the
// fast-path kernel must come from the swapped-in version.
func TestStreamPredictHotSwap(t *testing.T) {
	const d = 16
	addr, svc := startStreamServer(t, d, 1)
	c := rpc.Dial(addr)
	defer c.Close()
	ps, err := OpenPredictStream(c)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	row := sliceRow(randRows(1, d, 42), 0)
	before, err := ps.Predict("lin", row, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	mv2, err := NewLinear("lin", 2, linearWeights(d, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ServeModel(mv2); err != nil {
		t.Fatal(err)
	}
	after, err := ps.Predict("lin", row, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if after.F64()[0] == before.F64()[0] {
		t.Fatal("stream still answers with the retired version after a hot-swap")
	}
	want, err := svc.Predict("lin", row, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if after.F64()[0] != want.F64()[0] {
		t.Fatalf("post-swap result %v, want %v", after.F64()[0], want.F64()[0])
	}
}

// TestRouterStreamingMatchesCalls runs the same traffic through a streaming
// router and a call-only router: identical results, and the streaming one
// must actually have pooled streams afterwards.
func TestRouterStreamingMatchesCalls(t *testing.T) {
	const replicas, d = 2, 24
	l, _ := startReplicaFleet(t, replicas, d)
	stream, err := NewRouter(l.Spec()["worker"], RouterOptions{DefaultDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	calls, err := NewRouter(l.Spec()["worker"], RouterOptions{DefaultDeadline: 5 * time.Second, DisableStreaming: true})
	if err != nil {
		t.Fatal(err)
	}
	defer calls.Close()

	for k := 0; k < 30; k++ {
		row := sliceRow(randRows(1, d, uint64(900+k)), 0)
		a, err := stream.Predict("lin", row, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := calls.Predict("lin", row, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if a.F64()[0] != b.F64()[0] {
			t.Fatalf("row %d: streaming %v != calls %v", k, a.F64()[0], b.F64()[0])
		}
	}
	pooled := 0
	for _, rep := range stream.replicas {
		pooled += len(rep.streams)
	}
	if pooled == 0 {
		t.Fatal("streaming router pooled no predict streams")
	}
}

// TestStreamPredictAllocs is the serving-tier allocation gate: a steady-state
// streaming predict round trip — client encode, stream frames both ways, the
// server's decode + row kernel + response encode — may not allocate on
// either side.
func TestStreamPredictAllocs(t *testing.T) {
	const d = 256
	addr, _ := startStreamServer(t, d, 1)
	c := rpc.Dial(addr)
	defer c.Close()
	ps, err := OpenPredictStream(c)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	row := sliceRow(randRows(1, d, 5), 0)
	predict := func() {
		out, err := ps.Predict("lin", row, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		tensor.Recycle(out)
	}
	for i := 0; i < 200; i++ {
		predict()
	}
	if avg := testing.AllocsPerRun(300, predict); avg != 0 {
		t.Fatalf("streaming predict allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkPredictTransport compares the per-call and streaming predict
// paths over real TCP loopback.
func BenchmarkPredictTransport(b *testing.B) {
	const d = 64
	addr, _ := startStreamServer(b, d, 1)
	row := sliceRow(randRows(1, d, 6), 0)

	b.Run("call", func(b *testing.B) {
		c := rpc.Dial(addr)
		defer c.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := PredictRemote(context.Background(), c, "lin", row); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		c := rpc.Dial(addr)
		defer c.Close()
		ps, err := OpenPredictStream(c)
		if err != nil {
			b.Fatal(err)
		}
		defer ps.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := ps.Predict("lin", row, time.Time{})
			if err != nil {
				b.Fatal(err)
			}
			tensor.Recycle(out)
		}
	})
}
