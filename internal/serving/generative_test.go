package serving

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tfhpc/internal/rpc"
	"tfhpc/internal/serving/generate"
	"tfhpc/internal/telemetry"
	"tfhpc/internal/tensor"
)

func genWeights(d int) *tensor.Tensor {
	w := make([]float64, d)
	for i := range w {
		w[i] = 0.1 + 0.05*float64(i%7)
	}
	return tensor.FromF64(tensor.Shape{d}, w)
}

func genPrompt(rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = rng.Float64()*2 - 1
	}
	return p
}

func genService(t testing.TB, d int) *Service {
	t.Helper()
	svc := NewService(NewRegistry(), BatchOptions{})
	// MaxTokens must exceed what TCP buffers can absorb: the disconnect and
	// cancel tests hold streams with a 1<<20 budget and need them to still be
	// decoding when the cancel lands, not finished into the socket buffer.
	if err := svc.ServeGenerative("gen", 3, genWeights(d), generate.Options{
		MaxSlots: 4, DefaultDeadline: 10 * time.Second, MaxTokens: 1 << 20,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func genReference(d int, prompt []float64, maxTokens int) []float64 {
	m, _ := generate.NewModel("ref", genWeights(d).F64())
	out, _ := m.Reference(prompt, maxTokens, 0)
	return out
}

func TestServiceGenerateAndStatus(t *testing.T) {
	const d = 16
	svc := genService(t, d)
	if !svc.Ready() {
		t.Fatal("service with a generative model should be ready")
	}
	found := false
	for _, m := range svc.Models() {
		if m.Name == "gen" && m.Version == 3 && m.Ready {
			found = true
		}
	}
	if !found {
		t.Fatalf("generative model missing from Models(): %+v", svc.Models())
	}
	prompt := genPrompt(rand.New(rand.NewSource(1)), d)
	st, err := svc.Generate("gen", generate.Request{Prompt: prompt, MaxTokens: 20})
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for {
		tok, ok := st.Next()
		if !ok {
			break
		}
		got = append(got, tok.Value)
	}
	want := genReference(d, prompt, 20)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("token %d diverged", i)
		}
	}
	buf, err := svc.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var payload map[string]json.RawMessage
	if err := json.Unmarshal(buf, &payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := payload["generate"]; !ok {
		t.Fatalf("statsz payload missing generate section: %s", buf)
	}
	if _, err := svc.Generate("nope", generate.Request{Prompt: prompt}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown model: got %v, want ErrNotFound", err)
	}
}

// sseTokens reads data: events off an SSE body, returning token values and
// steps plus the final event's raw JSON.
func sseTokens(t *testing.T, body *bufio.Reader) (vals []float64, steps []uint64, final map[string]any) {
	t.Helper()
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			t.Fatalf("sse read: %v (so far %d tokens)", err, len(vals))
		}
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Token  *float64 `json:"token"`
			Step   uint64   `json:"step"`
			Done   bool     `json:"done"`
			Reason string   `json:"finish_reason"`
			Tokens int      `json:"tokens"`
		}
		payload := strings.TrimPrefix(line, "data: ")
		if err := json.Unmarshal([]byte(payload), &ev); err != nil {
			t.Fatalf("sse event %q: %v", payload, err)
		}
		if ev.Done {
			final = map[string]any{"finish_reason": ev.Reason, "tokens": float64(ev.Tokens)}
			return vals, steps, final
		}
		if ev.Token == nil {
			t.Fatalf("sse event %q has no token", payload)
		}
		vals = append(vals, *ev.Token)
		steps = append(steps, ev.Step)
	}
}

func TestHTTPGenerateSSE(t *testing.T) {
	const d = 16
	svc := genService(t, d)
	ts := httptest.NewServer(NewHTTPHandler(svc))
	defer ts.Close()

	prompt := genPrompt(rand.New(rand.NewSource(2)), d)
	body, _ := json.Marshal(map[string]any{"prompt": prompt, "max_tokens": 25})
	resp, err := http.Post(ts.URL+"/v1/models/gen:generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	vals, _, final := sseTokens(t, bufio.NewReader(resp.Body))
	want := genReference(d, prompt, 25)
	if len(vals) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(vals), len(want))
	}
	for i := range vals {
		if math.Float64bits(vals[i]) != math.Float64bits(want[i]) {
			t.Fatalf("token %d: JSON round-trip not exact (%v != %v)", i, vals[i], want[i])
		}
	}
	if final["finish_reason"] != string(generate.FinishLength) {
		t.Fatalf("finish reason %v", final["finish_reason"])
	}

	// Error mapping before the stream starts: unknown model → 404 JSON.
	resp2, err := http.Post(ts.URL+"/v1/models/nope:generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status %d, want 404", resp2.StatusCode)
	}
}

func TestHTTPGenerateDisconnectFreesSlot(t *testing.T) {
	const d = 16
	svc := genService(t, d)
	ts := httptest.NewServer(NewHTTPHandler(svc))
	defer ts.Close()

	prompt := genPrompt(rand.New(rand.NewSource(3)), d)
	body, _ := json.Marshal(map[string]any{"prompt": prompt, "max_tokens": 1 << 20})
	resp, err := http.Post(ts.URL+"/v1/models/gen:generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(resp.Body)
	for i := 0; i < 3; i++ {
		if _, err := r.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close() // client walks away mid-stream

	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats struct {
			Generate []generate.Stats `json:"generate"`
		}
		buf, err := svc.StatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(buf, &stats); err != nil {
			t.Fatal(err)
		}
		if len(stats.Generate) == 1 && stats.Generate[0].Active == 0 {
			if stats.Generate[0].SlotLeaks != 0 {
				t.Fatalf("slot leaks: %d", stats.Generate[0].SlotLeaks)
			}
			if stats.Generate[0].Cancelled == 0 {
				t.Fatal("disconnect did not cancel the sequence")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot not freed after disconnect: %+v", stats.Generate)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func startGenServer(t testing.TB, d int) (string, *Service) {
	t.Helper()
	srv := rpc.NewServer()
	svc := genService(t, d)
	Attach(srv, svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, svc
}

func TestGenerateStreamWireRoundTrip(t *testing.T) {
	const d = 16
	addr, _ := startGenServer(t, d)
	c := rpc.Dial(addr)
	defer c.Close()

	prompt := genPrompt(rand.New(rand.NewSource(4)), d)
	gs, err := OpenGenerateStream(c, telemetry.SpanContext{}, "gen", generate.Request{Prompt: prompt, MaxTokens: 30})
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	lastIndex := -1
	for {
		tok, ok := gs.Next()
		if !ok {
			break
		}
		if tok.Index != lastIndex+1 {
			t.Fatalf("token index %d after %d", tok.Index, lastIndex)
		}
		lastIndex = tok.Index
		got = append(got, tok.Value)
	}
	reason, ferr := gs.Finish()
	if reason != generate.FinishLength || ferr != nil {
		t.Fatalf("finish (%s, %v)", reason, ferr)
	}
	want := genReference(d, prompt, 30)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("token %d diverged over the wire", i)
		}
	}

	// Canonical error over the wire: unknown model → ErrNotFound exactly.
	gs2, err := OpenGenerateStream(c, telemetry.SpanContext{}, "nope", generate.Request{Prompt: prompt, MaxTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := gs2.Next(); ok {
		t.Fatal("unknown model produced a token")
	}
	if _, ferr := gs2.Finish(); !errors.Is(ferr, ErrNotFound) {
		t.Fatalf("remote unknown model: got %v, want ErrNotFound", ferr)
	}
}

func TestGenerateStreamCancelFreesRemoteSlot(t *testing.T) {
	const d = 16
	addr, svc := startGenServer(t, d)
	c := rpc.Dial(addr)
	defer c.Close()

	prompt := genPrompt(rand.New(rand.NewSource(5)), d)
	gs, err := OpenGenerateStream(c, telemetry.SpanContext{}, "gen", generate.Request{Prompt: prompt, MaxTokens: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := gs.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	gs.Cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats struct {
			Generate []generate.Stats `json:"generate"`
		}
		buf, _ := svc.StatsJSON()
		if err := json.Unmarshal(buf, &stats); err != nil {
			t.Fatal(err)
		}
		if len(stats.Generate) == 1 && stats.Generate[0].Active == 0 && stats.Generate[0].Cancelled > 0 {
			if stats.Generate[0].SlotLeaks != 0 {
				t.Fatalf("slot leaks: %d", stats.Generate[0].SlotLeaks)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote cancel did not free the slot: %+v", stats.Generate)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRouterGenerateFailsOverDeadReplica(t *testing.T) {
	const d = 16
	addr, _ := startGenServer(t, d)
	// A dead address that answers nothing: dialing it fails at first use.
	r, err := NewRouter([]string{"127.0.0.1:1", addr}, RouterOptions{DefaultDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rng := rand.New(rand.NewSource(6))
	// Drive enough sequences that least-outstanding picks the dead replica
	// at least once before it lands on the bench.
	for k := 0; k < 4; k++ {
		prompt := genPrompt(rng, d)
		st, err := r.Generate("gen", generate.Request{Prompt: prompt, MaxTokens: 15})
		if err != nil {
			t.Fatalf("request %d: %v", k, err)
		}
		var got []float64
		for {
			tok, ok := st.Next()
			if !ok {
				break
			}
			got = append(got, tok.Value)
		}
		if reason, ferr := st.Finish(); reason != generate.FinishLength || ferr != nil {
			t.Fatalf("request %d finish (%s, %v)", k, reason, ferr)
		}
		want := genReference(d, prompt, 15)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("request %d token %d diverged through the router", k, i)
			}
		}
	}
	if r.Outstanding() != 0 {
		t.Fatalf("outstanding not released: %d", r.Outstanding())
	}
	// Application outcomes do not fail over: unknown model is ErrNotFound,
	// not an all-replicas-failed wrap.
	if _, err := r.Generate("nope", generate.Request{Prompt: genPrompt(rng, d), MaxTokens: 5}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown model through router: %v", err)
	}
}

func TestGenerativeCheckpointRoundTrip(t *testing.T) {
	const d = 8
	path := filepath.Join(t.TempDir(), "gen.ckpt")
	if err := SaveGenerative(path, 7, genWeights(d)); err != nil {
		t.Fatal(err)
	}
	w, version, err := LoadGenerative(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if version != 7 {
		t.Fatalf("version %d, want 7", version)
	}
	if got, want := w.F64(), genWeights(d).F64(); len(got) != len(want) {
		t.Fatalf("weights length %d, want %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("weight %d diverged", i)
			}
		}
	}
	// A linear checkpoint is not a generative one.
	linPath := filepath.Join(t.TempDir(), "lin.ckpt")
	if err := SaveLinear(linPath, 1, genWeights(d)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadGenerative(linPath, 0); err == nil || !strings.Contains(err.Error(), "graph id") {
		t.Fatalf("graph id check missing: %v", err)
	}
}

func TestGenerativeHotSwapClosesOldEngine(t *testing.T) {
	const d = 8
	svc := genService(t, d)
	prompt := genPrompt(rand.New(rand.NewSource(8)), d)
	st, err := svc.Generate("gen", generate.Request{Prompt: prompt, MaxTokens: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("no first token")
	}
	if err := svc.ServeGenerative("gen", 4, genWeights(d), generate.Options{MaxSlots: 2}); err != nil {
		t.Fatal(err)
	}
	// The old engine closed under the in-flight sequence.
	for {
		if _, ok := st.Next(); !ok {
			break
		}
	}
	if reason, ferr := st.Finish(); reason != generate.FinishClosed || !errors.Is(ferr, ErrClosed) {
		t.Fatalf("swapped-out sequence finish (%s, %v)", reason, ferr)
	}
	// The new engine serves, with the new version visible.
	st2, err := svc.Generate("gen", generate.Request{Prompt: prompt, MaxTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := st2.Next(); !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("post-swap decode yielded %d tokens, want 5", n)
	}
	for _, m := range svc.Models() {
		if m.Name == "gen" && m.Version != 4 {
			t.Fatalf("post-swap version %d, want 4", m.Version)
		}
	}
}
