// Package serving is the online-inference subsystem: it turns trained
// dataflow graphs into network services, the deployment mode the TensorFlow
// system papers pair with training. The pieces compose the way a production
// model server (TF Serving, KServe) does:
//
//   - Registry: versioned, immutable ModelVersions with concurrent hot-swap
//     and graceful drain — traffic never sees torn weights and in-flight
//     requests survive a swap.
//   - Batcher: a dynamic micro-batcher that coalesces concurrent single-row
//     Predict requests into one batched session run along the leading
//     dimension, so the packed GEMM engine runs at matrix — not vector —
//     arithmetic intensity. Flushes on max-batch-size or a small timeout.
//   - Admission control: bounded per-model queues with backpressure and
//     per-request deadlines. The precedence is reject > queue > time out,
//     and all three outcomes are counted.
//   - Front-ends: a KServe-style HTTP/JSON predictor API and a framed
//     binary endpoint over internal/rpc, both driving the same Service.
//   - Router: spreads requests across model replicas hosted on cluster
//     worker tasks — least-loaded pick, failure-aware retry.
//
// Per-row results are bit-for-bit identical whether a row is served alone
// or inside a coalesced batch: the MatVec/MatMul kernels compute each output
// row with a fixed per-row reduction order that does not depend on the
// leading dimension. The CI smoke asserts this end-to-end over HTTP.
package serving

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// Canonical request-outcome errors. Front-ends map them onto protocol
// status codes (HTTP 404/429/504, rpc error strings) and the router maps
// them back after a remote hop, so the classification survives the wire.
var (
	// ErrNotFound: no model (or no active version) under that name.
	ErrNotFound = errors.New("serving: model not found")
	// ErrOverloaded: the model's admission queue is full — backpressure;
	// the caller should shed or retry elsewhere. Counted as rejected.
	ErrOverloaded = errors.New("serving: overloaded, request rejected")
	// ErrDeadline: the request's deadline passed before a prediction was
	// produced. Counted as expired.
	ErrDeadline = errors.New("serving: deadline exceeded")
	// ErrBadInput: the request tensor does not match the model signature.
	ErrBadInput = errors.New("serving: bad input")
	// ErrClosed: the service is shutting down.
	ErrClosed = errors.New("serving: closed")
)

// Signature is a model's single-tensor predict interface: feed a
// [batch, features] tensor to the input placeholder, fetch the output node,
// whose leading dimension is the batch.
type Signature struct {
	InputName  string       `json:"input"`
	OutputName string       `json:"output"`
	Features   int          `json:"features"`
	DType      tensor.DType `json:"-"`
}

// ModelVersion is one immutable loaded version: a graph bound to its own
// resources (weights assigned once at load, never reassigned), plus the
// drain state the registry uses for hot-swap. All methods are safe for
// concurrent use; Predict may run many batches at once.
type ModelVersion struct {
	model   string
	version int
	sig     Signature
	sess    *session.Session

	// rowKernel, when set, computes one row's outputs directly into a
	// caller-owned tensor of shape rowOutShape — the streaming front-end's
	// allocation-free fast path. It must be bit-identical to a 1-row batch
	// through the session (the linear model's dot product is the MatVec
	// kernel's own per-row reduction). Versions without one serve rows
	// through the batcher only.
	rowKernel   func(row, out *tensor.Tensor)
	rowOutShape tensor.Shape

	mu       sync.Mutex
	inflight int
	draining bool
	drained  chan struct{}
}

// NewModelVersion loads a version: the weights are assigned into a fresh
// variable store exactly once, making the version immutable from then on.
func NewModelVersion(model string, version int, g *graph.Graph, sig Signature,
	weights map[string]*tensor.Tensor) (*ModelVersion, error) {
	if model == "" {
		return nil, fmt.Errorf("serving: model name required")
	}
	if sig.Features <= 0 {
		return nil, fmt.Errorf("serving: signature needs a positive feature count")
	}
	if sig.DType != tensor.Float32 && sig.DType != tensor.Float64 {
		return nil, fmt.Errorf("serving: unsupported signature dtype %v", sig.DType)
	}
	if g.Lookup(sig.InputName) == nil {
		return nil, fmt.Errorf("serving: graph has no input node %q", sig.InputName)
	}
	if g.Lookup(sig.OutputName) == nil {
		return nil, fmt.Errorf("serving: graph has no output node %q", sig.OutputName)
	}
	res := session.NewResources()
	for name, t := range weights {
		if err := res.Vars.Get(name).Assign(t); err != nil {
			return nil, fmt.Errorf("serving: load %s v%d: %w", model, version, err)
		}
	}
	sess, err := session.New(g, res, session.Options{})
	if err != nil {
		return nil, err
	}
	return &ModelVersion{
		model: model, version: version, sig: sig, sess: sess,
		drained: make(chan struct{}),
	}, nil
}

// Model returns the model name this version belongs to.
func (mv *ModelVersion) Model() string { return mv.model }

// Version returns the version number.
func (mv *ModelVersion) Version() int { return mv.version }

// Signature returns the predict interface.
func (mv *ModelVersion) Signature() Signature { return mv.sig }

// State reports "active", "draining" or "unloaded" (draining complete).
func (mv *ModelVersion) State() string {
	mv.mu.Lock()
	defer mv.mu.Unlock()
	if !mv.draining {
		return "active"
	}
	if mv.inflight > 0 {
		return "draining"
	}
	return "unloaded"
}

// Predict runs one batched inference: in must be [n, features] of the
// signature dtype; the result's leading dimension is n. Callers going
// through the Registry must hold an acquire ref (Registry.Acquire) so a
// concurrent hot-swap drains gracefully instead of unloading underneath us.
func (mv *ModelVersion) Predict(in *tensor.Tensor) (*tensor.Tensor, error) {
	if in == nil || in.Rank() != 2 || in.Shape()[1] != mv.sig.Features {
		return nil, fmt.Errorf("%w: want [n, %d], got %v", ErrBadInput, mv.sig.Features, shapeOf(in))
	}
	if in.DType() != mv.sig.DType {
		return nil, fmt.Errorf("%w: want %v, got %v", ErrBadInput, mv.sig.DType, in.DType())
	}
	out, err := mv.sess.Run(map[string]*tensor.Tensor{mv.sig.InputName: in},
		[]string{mv.sig.OutputName}, nil)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

func shapeOf(t *tensor.Tensor) tensor.Shape {
	if t == nil {
		return nil
	}
	return t.Shape()
}

// acquire takes an in-flight ref; it fails once draining has started.
func (mv *ModelVersion) acquire() bool {
	mv.mu.Lock()
	defer mv.mu.Unlock()
	if mv.draining {
		return false
	}
	mv.inflight++
	return true
}

// release drops an in-flight ref, completing a drain at zero.
func (mv *ModelVersion) release() {
	mv.mu.Lock()
	mv.inflight--
	done := mv.draining && mv.inflight == 0
	mv.mu.Unlock()
	if done {
		close(mv.drained)
	}
}

// startDrain stops new acquires; Drained fires once in-flight work ends.
func (mv *ModelVersion) startDrain() {
	mv.mu.Lock()
	if mv.draining {
		mv.mu.Unlock()
		return
	}
	mv.draining = true
	done := mv.inflight == 0
	mv.mu.Unlock()
	if done {
		close(mv.drained)
	}
}

// Drained is closed once the version is retired and idle.
func (mv *ModelVersion) Drained() <-chan struct{} { return mv.drained }

// Stats is one model's request-outcome counters (all atomically updated).
type Stats struct {
	rows, batches, batchedRows atomic.Int64
	maxBatch                   atomic.Int64
	rejected, expired          atomic.Int64
	errs, swaps                atomic.Int64
}

func (s *Stats) recordBatch(n int) {
	s.batches.Add(1)
	s.rows.Add(int64(n))
	if n > 1 {
		s.batchedRows.Add(int64(n))
	}
	for {
		cur := s.maxBatch.Load()
		if int64(n) <= cur || s.maxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// StatsSnapshot is the JSON form served by /statsz and the ServingStats RPC.
type StatsSnapshot struct {
	Model   string `json:"model"`
	Version int    `json:"version"`
	State   string `json:"state"`
	// Rows is the number of rows predicted; Batches the number of session
	// runs they were coalesced into. MeanBatch = Rows/Batches is the
	// micro-batcher's achieved coalescing; BatchedRows counts rows that
	// shared a run with at least one other row.
	Rows        int64   `json:"rows"`
	Batches     int64   `json:"batches"`
	BatchedRows int64   `json:"batched_rows"`
	MeanBatch   float64 `json:"mean_batch"`
	MaxBatch    int64   `json:"max_batch"`
	Rejected    int64   `json:"rejected"`
	Expired     int64   `json:"expired"`
	Errors      int64   `json:"errors"`
	Swaps       int64   `json:"swaps"`
	Pending     int     `json:"pending"`
}

// ModelStatus is the /v1/models view of one model.
type ModelStatus struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	State   string `json:"state"`
	Ready   bool   `json:"ready"`
}
