package serving

import "tfhpc/internal/telemetry"

// Registry handles for the serving tier. These are process-global sums
// (every batcher and router in the process feeds the same handle) and back
// /metricz; the per-model Stats atomics stay as the per-instance view behind
// /statsz. Every update below is a single atomic op, so the streaming
// predict AllocsPerRun==0 gate holds with metrics enabled.
var (
	mBatchRows = telemetry.NewCounter("tfhpc_batcher_rows_total",
		"Rows answered successfully through batched session runs.")
	mBatchBatches = telemetry.NewCounter("tfhpc_batcher_batches_total",
		"Coalesced batches executed.")
	mBatchRejected = telemetry.NewCounter("tfhpc_batcher_rejected_total",
		"Rows rejected at admission (queue full).")
	mBatchExpired = telemetry.NewCounter("tfhpc_batcher_expired_total",
		"Rows that missed their deadline before or during execution.")
	mBatchErrors = telemetry.NewCounter("tfhpc_batcher_errors_total",
		"Rows answered with a model or validation error.")
	mBatchQueueDepth = telemetry.NewGauge("tfhpc_batcher_queue_depth",
		"Rows sitting in admission queues right now (all models).")
	mBatchQueueWait = telemetry.NewHistogram("tfhpc_batcher_queue_wait_seconds",
		"Time rows waited in the admission queue before their batch formed.", telemetry.DurationBuckets)
	mBatchSizeRows = telemetry.NewHistogram("tfhpc_batcher_batch_rows",
		"Live rows per executed batch.", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256})

	mRouted = telemetry.NewCounter("tfhpc_router_routed_total",
		"Requests answered by a replica via the router.")
	mRetries = telemetry.NewCounter("tfhpc_router_retries_total",
		"Additional replica attempts after the first failed.")
	mFailovers = telemetry.NewCounter("tfhpc_router_failovers_total",
		"Transport failures that benched a replica and failed the request over.")
	mUnbenches = telemetry.NewCounter("tfhpc_router_unbenches_total",
		"Benched replicas returned to the pick set by health probes.")
	mBenchEvents = telemetry.NewCounter("tfhpc_router_bench_events_total",
		"Bench decisions taken against replicas (one per transport failure).")
	mRouterOutstanding = telemetry.NewGauge("tfhpc_router_outstanding",
		"Requests in flight to replicas right now.")
	mRouterReplicas = telemetry.NewGauge("tfhpc_router_replicas",
		"Replicas currently routed (including benched and draining).")
)
