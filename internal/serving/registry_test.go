package serving

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tfhpc/internal/tensor"
)

// constWeights is a weight vector of d copies of v — version v's prediction
// of the all-ones row is exactly d*v, so any torn mix of two versions'
// weights produces a value outside the valid set and is caught.
func constWeights(d int, v float64) *tensor.Tensor {
	w := make([]float64, d)
	for i := range w {
		w[i] = v
	}
	return tensor.FromF64(tensor.Shape{d}, w)
}

// TestHotSwapUnderLoad is the checkpoint-hot-swap contract: concurrent
// Predict traffic while the registry swaps versions must never see torn
// weights and never drop an in-flight request. Run under -race this also
// proves the swap path is data-race-free.
func TestHotSwapUnderLoad(t *testing.T) {
	const (
		d        = 64
		clients  = 8
		versions = 12
	)
	svc := NewService(NewRegistry(), BatchOptions{MaxBatch: 8, Timeout: 500 * time.Microsecond})
	defer svc.Close()
	mv, err := NewLinear("m", 1, constWeights(d, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ServeModel(mv); err != nil {
		t.Fatal(err)
	}

	ones := constWeights(d, 1) // the all-ones feature row
	valid := make(map[float64]int)
	for v := 1; v <= versions; v++ {
		valid[float64(d*v)] = v
	}

	var stop atomic.Bool
	var predicts atomic.Int64
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				out, err := svc.Predict("m", ones, time.Now().Add(5*time.Second))
				if err != nil {
					errCh <- err
					return
				}
				if _, ok := valid[out.F64()[0]]; !ok {
					t.Errorf("torn or corrupt prediction %v (valid: multiples of %d)", out.F64()[0], d)
					errCh <- nil
					return
				}
				predicts.Add(1)
			}
		}()
	}

	// waitProgress interleaves swaps with real traffic: each swap only
	// fires after more predictions have completed, so retired versions
	// genuinely drain under load.
	waitProgress := func(n int64) {
		target := predicts.Load() + n
		deadline := time.Now().Add(10 * time.Second)
		for predicts.Load() < target {
			if time.Now().After(deadline) {
				t.Fatal("prediction traffic stalled")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Swap through the versions under full traffic, awaiting each retired
	// version's drain: a drain that never completes is a leaked ref.
	for v := 2; v <= versions; v++ {
		waitProgress(25)
		mv, err := NewLinear("m", v, constWeights(d, float64(v)))
		if err != nil {
			t.Fatal(err)
		}
		old, err := svc.ServeModel(mv)
		if err != nil {
			t.Fatal(err)
		}
		if old == nil {
			t.Fatal("swap returned no previous version")
		}
		select {
		case <-old.Drained():
		case <-time.After(10 * time.Second):
			t.Fatalf("version %d did not drain under load", old.Version())
		}
		if st := old.State(); st != "unloaded" {
			t.Fatalf("drained version state %q, want unloaded", st)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatalf("predict failed during swaps: %v", err)
		}
	}
	if predicts.Load() == 0 {
		t.Fatal("no predictions completed during the swap storm")
	}

	// After the last swap, traffic must land on the final version.
	out, err := svc.Predict("m", ones, time.Now().Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.F64()[0], float64(d*versions); got != want {
		t.Fatalf("post-swap prediction %v, want %v", got, want)
	}
	snap := svc.Snapshots()[0]
	if snap.Swaps != versions-1 {
		t.Fatalf("swap counter %d, want %d", snap.Swaps, versions-1)
	}
	if snap.Version != versions {
		t.Fatalf("active version %d, want %d", snap.Version, versions)
	}
}

func TestRegistryAcquireDuringSwapRace(t *testing.T) {
	reg := NewRegistry()
	const d = 8
	mv1, _ := NewLinear("m", 1, constWeights(d, 1))
	reg.Serve(mv1)

	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 2; !stop.Load(); v++ {
			mv, _ := NewLinear("m", v, constWeights(d, float64(v)))
			reg.Serve(mv)
		}
	}()
	for i := 0; i < 2000; i++ {
		mv, release, err := reg.Acquire("m")
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if mv.State() == "unloaded" {
			t.Fatalf("acquired an unloaded version")
		}
		release()
	}
	stop.Store(true)
	wg.Wait()
}

func TestUnloadDrains(t *testing.T) {
	reg := NewRegistry()
	mv, _ := NewLinear("m", 1, constWeights(4, 1))
	reg.Serve(mv)
	got, release, err := reg.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	old := reg.Unload("m")
	if old != got {
		t.Fatal("unload returned a different version")
	}
	select {
	case <-old.Drained():
		t.Fatal("drained while a ref was held")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case <-old.Drained():
	case <-time.After(time.Second):
		t.Fatal("drain did not complete after release")
	}
	if _, _, err := reg.Acquire("m"); err != ErrNotFound {
		t.Fatalf("want ErrNotFound after unload, got %v", err)
	}
}
