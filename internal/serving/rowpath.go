package serving

import (
	"errors"
	"time"

	"tfhpc/internal/tensor"
)

// errNoFastPath reports that a model (or its current version) has no direct
// row kernel; callers fall back to the batcher path. It is a routing signal,
// not a request outcome, so it never crosses the wire.
var errNoFastPath = errors.New("serving: no row fast path")

// RowPredictor is the streaming front-end's allocation-free fast path: a
// predictor that can answer one row synchronously into a caller-owned output
// tensor, bypassing the batcher queue. Results must be bit-identical to the
// same row served through Predict. A local Service implements it; a Router
// does not (its rows cross the wire anyway).
type RowPredictor interface {
	// NewRowOutput returns a fresh tensor shaped and typed like one row's
	// output, for reuse across PredictRowInto calls. errNoFastPath (an
	// unexported sentinel — treat any error as "use Predict") means the
	// model's current version cannot serve rows directly.
	NewRowOutput(model string) (*tensor.Tensor, error)
	// PredictRowInto serves one [features] row into out. The row and out
	// tensors stay caller-owned. Deadline semantics match Predict except
	// that a zero deadline means "no deadline" (the caller is already
	// synchronous, there is no queue to bound).
	PredictRowInto(model string, row, out *tensor.Tensor, deadline time.Time) error
}

// NewRowOutput implements RowPredictor.
func (s *Service) NewRowOutput(model string) (*tensor.Tensor, error) {
	mv := s.reg.Active(model)
	if mv == nil {
		return nil, ErrNotFound
	}
	if mv.rowKernel == nil {
		return nil, errNoFastPath
	}
	return tensor.New(mv.sig.DType, mv.rowOutShape...), nil
}

// PredictRowInto implements RowPredictor: validate, pin the version, run its
// row kernel. The whole path is allocation-free — acquireRef instead of
// Acquire's release closure, no goroutines, no channels — which is what lets
// the streaming front-end's steady state stay at zero allocs per request.
func (s *Service) PredictRowInto(model string, row, out *tensor.Tensor, deadline time.Time) error {
	b, err := s.batcher(model)
	if err != nil {
		return err
	}
	mv, err := s.reg.acquireRef(model)
	if err != nil {
		return err
	}
	if mv.rowKernel == nil {
		mv.release()
		return errNoFastPath
	}
	sig := mv.sig
	if row == nil || row.Rank() != 1 || row.Shape()[0] != sig.Features || row.DType() != sig.DType {
		// Rows needing dtype conversion take the batcher path, which owns
		// that deterministic conversion; the fast path serves wire-native
		// rows only.
		mv.release()
		if row == nil || row.Rank() != 1 || row.Shape()[0] != sig.Features || !row.DType().IsFloat() {
			return ErrBadInput
		}
		return errNoFastPath
	}
	if out == nil || out.DType() != sig.DType || !out.Shape().Equal(mv.rowOutShape) {
		mv.release()
		return errNoFastPath // stale scratch after a hot-swap: caller refreshes
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		mv.release()
		b.stats.expired.Add(1)
		return ErrDeadline
	}
	mv.rowKernel(row, out)
	mv.release()
	b.stats.recordBatch(1)
	return nil
}
