package serving

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tfhpc/internal/tensor"
)

// newLinearService serves a fresh linear model and returns it plus its
// registry.
func newLinearService(t *testing.T, d int, opts BatchOptions) (*Service, *tensor.Tensor) {
	t.Helper()
	w := linearWeights(d, 1)
	svc := NewService(NewRegistry(), opts)
	mv, err := NewLinear("lin", 1, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ServeModel(mv); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, w
}

// TestBatcherCoalescesAndPreservesAssociation drives concurrent single-row
// predicts and checks (a) rows coalesce into multi-row session runs and
// (b) every caller gets exactly its own row's answer, bit-identical to an
// unbatched run.
func TestBatcherCoalescesAndPreservesAssociation(t *testing.T) {
	const d, clients, perClient = 48, 16, 40
	svc, w := newLinearService(t, d, BatchOptions{MaxBatch: 16, Timeout: 2 * time.Millisecond})
	ref := NewLinearMust(t, w)

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				in := randRows(1, d, uint64(c*1000+k))
				row := sliceRow(in, 0)
				got, err := svc.Predict("lin", row, time.Now().Add(5*time.Second))
				if err != nil {
					errs[c] = err
					return
				}
				want, err := ref.Predict(in)
				if err != nil {
					errs[c] = err
					return
				}
				if got.F64()[0] != want.F64()[0] {
					errs[c] = errors.New("batched result differs from unbatched")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	snaps := svc.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("want 1 model snapshot, got %d", len(snaps))
	}
	s := snaps[0]
	if s.Rows != clients*perClient {
		t.Fatalf("rows %d, want %d", s.Rows, clients*perClient)
	}
	if s.MaxBatch < 2 {
		t.Fatalf("no coalescing happened (max batch %d) with %d concurrent clients", s.MaxBatch, clients)
	}
	if s.Batches >= s.Rows {
		t.Fatalf("batches %d not fewer than rows %d — batching ineffective", s.Batches, s.Rows)
	}
}

func TestBatcherDeadline(t *testing.T) {
	svc, _ := newLinearService(t, 8, BatchOptions{})
	in := randRows(1, 8, 1)
	// A deadline already in the past must resolve as ErrDeadline, counted.
	_, err := svc.Predict("lin", sliceRow(in, 0), time.Now().Add(-time.Second))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if s := svc.Snapshots()[0]; s.Expired == 0 {
		t.Fatalf("expired not counted: %+v", s)
	}
}

func TestBatcherBackpressure(t *testing.T) {
	// Queue depth 1 and one runner: a burst of concurrent predicts must see
	// rejections (admission control prefers rejecting to unbounded queueing).
	svc, _ := newLinearService(t, 2048, BatchOptions{
		MaxBatch: 1, QueueDepth: 1, Runners: 1, DefaultDeadline: 5 * time.Second,
	})
	const burst = 400
	var wg sync.WaitGroup
	var mu sync.Mutex
	var rejected, ok int
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := randRows(1, 2048, uint64(i))
			_, err := svc.Predict("lin", sliceRow(in, 0), time.Time{})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrOverloaded):
				rejected++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if rejected == 0 {
		t.Fatalf("no rejections from a %d-burst against queue depth 1", burst)
	}
	if ok == 0 {
		t.Fatalf("everything rejected — admission never admits")
	}
	if s := svc.Snapshots()[0]; s.Rejected != int64(rejected) {
		t.Fatalf("rejected counter %d, callers saw %d", s.Rejected, rejected)
	}
}

func TestBatcherBadRowDoesNotPoisonBatch(t *testing.T) {
	const d = 16
	svc, w := newLinearService(t, d, BatchOptions{MaxBatch: 8, Timeout: 20 * time.Millisecond})
	ref := NewLinearMust(t, w)

	var wg sync.WaitGroup
	var badErr, goodErr error
	var got, want *tensor.Tensor
	wg.Add(2)
	go func() { // malformed row: wrong width
		defer wg.Done()
		_, badErr = svc.Predict("lin", tensor.New(tensor.Float64, d+1), time.Now().Add(2*time.Second))
	}()
	go func() { // well-formed row sharing the coalescing window
		defer wg.Done()
		in := randRows(1, d, 5)
		var err error
		got, err = svc.Predict("lin", sliceRow(in, 0), time.Now().Add(2*time.Second))
		if err != nil {
			goodErr = err
			return
		}
		want, goodErr = ref.Predict(in)
	}()
	wg.Wait()
	if !errors.Is(badErr, ErrBadInput) {
		t.Fatalf("bad row: want ErrBadInput, got %v", badErr)
	}
	if goodErr != nil {
		t.Fatalf("good row poisoned by batch-mate: %v", goodErr)
	}
	if got.F64()[0] != want.F64()[0] {
		t.Fatalf("good row answer wrong after sharing a batch with a bad row")
	}
}

func TestServiceMultiRowRequest(t *testing.T) {
	const d, n = 24, 9
	svc, w := newLinearService(t, d, BatchOptions{MaxBatch: 4, Timeout: time.Millisecond})
	ref := NewLinearMust(t, w)
	in := randRows(n, d, 21)
	got, err := svc.Predict("lin", in, time.Now().Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("multi-row request: got %v want %v", got, want)
	}
}

func TestServiceUnknownModel(t *testing.T) {
	svc, _ := newLinearService(t, 4, BatchOptions{})
	if _, err := svc.Predict("nope", tensor.New(tensor.Float64, 4), time.Time{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestServiceNonFloatInput(t *testing.T) {
	// Wire clients can send any dtype; a non-float batch must come back as
	// ErrBadInput, not panic in the row slicer.
	svc, _ := newLinearService(t, 4, BatchOptions{})
	for _, in := range []*tensor.Tensor{
		tensor.New(tensor.Int32, 2, 4),
		tensor.New(tensor.Int64, 4),
		tensor.New(tensor.Complex128, 2, 4),
	} {
		if _, err := svc.Predict("lin", in, time.Time{}); !errors.Is(err, ErrBadInput) {
			t.Fatalf("%v input: want ErrBadInput, got %v", in.DType(), err)
		}
	}
}
