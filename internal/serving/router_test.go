package serving

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/tensor"
)

// startReplicaFleet hosts one serving replica on each worker task of an
// in-process cluster — the deployment shape the router is built for: the
// same cluster.Server that executes training ops co-hosts the predict
// endpoint.
func startReplicaFleet(t *testing.T, replicas, d int) (*cluster.Local, []*Service) {
	t.Helper()
	l, err := cluster.StartLocal(map[string]int{"worker": replicas})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	svcs := make([]*Service, replicas)
	for i := 0; i < replicas; i++ {
		svc := NewService(NewRegistry(), BatchOptions{MaxBatch: 8, Timeout: time.Millisecond})
		mv, err := NewLinear("lin", 1, linearWeights(d, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.ServeModel(mv); err != nil {
			t.Fatal(err)
		}
		Attach(l.Server("worker", i), svc)
		svcs[i] = svc
		t.Cleanup(svc.Close)
	}
	return l, svcs
}

func TestRouterSpreadsLoad(t *testing.T) {
	const replicas, d = 3, 32
	l, svcs := startReplicaFleet(t, replicas, d)
	r, err := NewRouter(l.Spec()["worker"], RouterOptions{DefaultDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ref := NewLinearMust(t, linearWeights(d, 1))
	const clients, perClient = 12, 30
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				in := randRows(1, d, uint64(c*331+k))
				out, err := r.Predict("lin", sliceRow(in, 0), time.Time{})
				if err != nil {
					errs[c] = err
					return
				}
				want, _ := ref.Predict(in)
				if out.F64()[0] != want.F64()[0] {
					errs[c] = fmt.Errorf("routed result differs from reference")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	// Least-loaded spreading: with 12 concurrent clients every replica
	// must have seen real traffic.
	served := 0
	var total int64
	for i, svc := range svcs {
		rows := svc.Snapshots()[0].Rows
		total += rows
		if rows > 0 {
			served++
		}
		t.Logf("replica %d served %d rows", i, rows)
	}
	if served < 2 {
		t.Fatalf("traffic not spread: only %d of %d replicas served", served, replicas)
	}
	if total != clients*perClient {
		t.Fatalf("fleet served %d rows, want %d", total, clients*perClient)
	}
}

func TestRouterFailover(t *testing.T) {
	const replicas, d = 3, 16
	l, _ := startReplicaFleet(t, replicas, d)
	r, err := NewRouter(l.Spec()["worker"], RouterOptions{DefaultDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	in := randRows(1, d, 1)
	row := sliceRow(in, 0)
	if _, err := r.Predict("lin", row, time.Time{}); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	// Kill one replica: every subsequent request must still succeed via
	// failover onto the survivors.
	l.Server("worker", 0).Close()
	for k := 0; k < 30; k++ {
		if _, err := r.Predict("lin", row, time.Time{}); err != nil {
			t.Fatalf("predict %d after replica loss: %v", k, err)
		}
	}

	var st struct {
		Router RouterStats `json:"router"`
	}
	buf, err := r.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &st); err != nil {
		t.Fatal(err)
	}
	if st.Router.Failovers == 0 {
		t.Fatalf("no failovers recorded after killing a replica: %+v", st.Router)
	}
	if len(st.Router.Replicas) != replicas {
		t.Fatalf("replica stats: %+v", st.Router)
	}
}

func TestRouterApplicationErrorsDoNotFailover(t *testing.T) {
	const replicas, d = 2, 8
	l, svcs := startReplicaFleet(t, replicas, d)
	r, err := NewRouter(l.Spec()["worker"], RouterOptions{DefaultDeadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Unknown model: a deterministic application error — retrying it on
	// another replica of the same fleet is pointless and must not happen.
	if _, err := r.Predict("nope", tensor.New(tensor.Float64, d), time.Time{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound through the router, got %v", err)
	}
	var st struct {
		Router RouterStats `json:"router"`
	}
	buf, _ := r.StatsJSON()
	json.Unmarshal(buf, &st)
	if st.Router.Failovers != 0 || st.Router.Retries != 0 {
		t.Fatalf("application error triggered failover: %+v", st.Router)
	}

	// Wrong feature width maps to ErrBadInput remotely.
	if _, err := r.Predict("lin", tensor.New(tensor.Float64, d+3), time.Time{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput through the router, got %v", err)
	}

	// A non-float tensor over the wire must fail the call cleanly — and
	// must not kill the replica (the follow-up predict proves it's alive).
	if _, err := r.Predict("lin", tensor.New(tensor.Int32, 2, d), time.Time{}); err == nil {
		t.Fatal("int32 batch accepted")
	}
	in := randRows(1, d, 3)
	if _, err := r.Predict("lin", sliceRow(in, 0), time.Time{}); err != nil {
		t.Fatalf("replica dead after malformed request: %v", err)
	}
	_ = svcs
}

func TestRouterModelsAndReady(t *testing.T) {
	const replicas, d = 2, 8
	l, _ := startReplicaFleet(t, replicas, d)
	r, err := NewRouter(l.Spec()["worker"], RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ms := r.Models()
	if len(ms) != 1 || ms[0].Name != "lin" {
		t.Fatalf("router models: %+v", ms)
	}
	if !r.Ready() {
		t.Fatal("router not ready with healthy replicas")
	}
}

func TestRouterAllReplicasDown(t *testing.T) {
	l, _ := startReplicaFleet(t, 2, 8)
	addrs := append([]string(nil), l.Spec()["worker"]...)
	r, err := NewRouter(addrs, RouterOptions{DefaultDeadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	l.Close()
	in := tensor.New(tensor.Float64, 8)
	if _, err := r.Predict("lin", in, time.Time{}); err == nil {
		t.Fatal("predict succeeded with every replica down")
	}
}

// The split is a deterministic stride, so over whole cycles of 100 the
// canary arm takes exactly its percentage — no sampling error for the
// rollout controller's SLO window to argue with.
func TestRouterSplitExactProportions(t *testing.T) {
	const d = 8
	l, svcs := startReplicaFleet(t, 1, d)
	mv, err := NewLinear("lin2", 2, linearWeights(d, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svcs[0].ServeModel(mv); err != nil {
		t.Fatal(err)
	}

	var def, canary int
	r, err := NewRouter(l.Spec()["worker"], RouterOptions{
		DefaultDeadline: 5 * time.Second,
		Observer: func(model string, isCanary bool, latency time.Duration, err error) {
			if model != "lin" {
				t.Errorf("observer saw model %q, want the requested name lin", model)
			}
			if err != nil {
				t.Errorf("observer saw error: %v", err)
			}
			if isCanary {
				canary++
			} else {
				def++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.SetSplit("lin", "lin2", 30); err != nil {
		t.Fatal(err)
	}
	if c, pct, ok := r.SplitOf("lin"); !ok || c != "lin2" || pct != 30 {
		t.Fatalf("SplitOf = (%q, %d, %v)", c, pct, ok)
	}
	row := sliceRow(randRows(1, d, 3), 0)
	for k := 0; k < 200; k++ {
		if _, err := r.Predict("lin", row, time.Time{}); err != nil {
			t.Fatalf("predict %d: %v", k, err)
		}
	}
	if canary != 60 || def != 140 {
		t.Fatalf("30%% split over 200 requests gave canary=%d default=%d, want exactly 60/140", canary, def)
	}

	r.ClearSplit("lin")
	for k := 0; k < 100; k++ {
		if _, err := r.Predict("lin", row, time.Time{}); err != nil {
			t.Fatalf("post-clear predict %d: %v", k, err)
		}
	}
	if canary != 60 {
		t.Fatalf("canary arm still taking traffic after ClearSplit: %d", canary)
	}

	// Guardrails: invalid percents and degenerate names are refused.
	if err := r.SetSplit("lin", "lin", 10); err == nil {
		t.Fatal("split onto itself was accepted")
	}
	if err := r.SetSplit("lin", "lin2", 101); err == nil {
		t.Fatal("percent 101 was accepted")
	}
}

// Membership is dynamic under live traffic: added replicas start serving,
// removed ones drain first — nothing fails over or drops on either edge.
func TestRouterDynamicMembership(t *testing.T) {
	const d = 8
	l, svcs := startReplicaFleet(t, 3, d)
	addrs := l.Spec()["worker"]
	r, err := NewRouter(addrs[:1], RouterOptions{DefaultDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.AddReplica(addrs[0]); err == nil {
		t.Fatal("duplicate AddReplica was accepted")
	}
	if _, err := r.RemoveReplica("127.0.0.1:1", time.Millisecond); err == nil {
		t.Fatal("removing a non-member was accepted")
	}

	var stop, failed int32
	var wg sync.WaitGroup
	row := sliceRow(randRows(1, d, 5), 0)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for atomic.LoadInt32(&stop) == 0 {
				if _, err := r.Predict("lin", row, time.Now().Add(2*time.Second)); err != nil {
					atomic.AddInt32(&failed, 1)
					return
				}
			}
		}()
	}

	for _, a := range addrs[1:] {
		if err := r.AddReplica(a); err != nil {
			t.Fatalf("add %s: %v", a, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := r.NumReplicas(); n != 3 {
		t.Fatalf("NumReplicas = %d, want 3", n)
	}
	clean, err := r.RemoveReplica(addrs[0], 2*time.Second)
	if err != nil {
		t.Fatalf("remove: %v", err)
	}
	if !clean {
		t.Fatal("drain did not complete cleanly")
	}
	time.Sleep(20 * time.Millisecond)
	atomic.StoreInt32(&stop, 1)
	wg.Wait()
	if failed != 0 {
		t.Fatalf("%d requests failed across membership changes", failed)
	}
	// The removed replica must get no traffic after its drain: its rows
	// counter freezes.
	frozen := svcs[0].Snapshots()[0].Rows
	for k := 0; k < 50; k++ {
		if _, err := r.Predict("lin", row, time.Time{}); err != nil {
			t.Fatalf("predict after removal: %v", err)
		}
	}
	if got := svcs[0].Snapshots()[0].Rows; got != frozen {
		t.Fatalf("removed replica served %d more rows", got-frozen)
	}
}

// BenchUntilHealthy pins a failed replica on the bench past any backoff;
// only Unbench — the health-probe path — paroles it, after which it serves
// again.
func TestRouterBenchUntilHealthyAndUnbench(t *testing.T) {
	const d = 8
	l, _ := startReplicaFleet(t, 2, d)
	addrs := l.Spec()["worker"]
	r, err := NewRouter(addrs, RouterOptions{
		DefaultDeadline:   5 * time.Second,
		FailBackoff:       10 * time.Millisecond,
		BenchUntilHealthy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	row := sliceRow(randRows(1, d, 7), 0)
	l.Server("worker", 0).Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(r.Benched()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead replica never benched")
		}
		if _, err := r.Predict("lin", row, time.Time{}); err != nil {
			t.Fatalf("failover predict: %v", err)
		}
	}
	// Far past FailBackoff, the bench must hold: recovery is health-driven.
	time.Sleep(50 * time.Millisecond)
	if got := r.Benched(); len(got) != 1 || got[0] != addrs[0] {
		t.Fatalf("bench did not hold: %v", got)
	}

	// Bring a fresh server up on the same address and parole the replica.
	srv := cluster.NewServer("worker", 0)
	if _, err := srv.Start(addrs[0]); err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srv.Close()
	svc := NewService(NewRegistry(), BatchOptions{MaxBatch: 8, Timeout: time.Millisecond})
	defer svc.Close()
	mv, err := NewLinear("lin", 1, linearWeights(d, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ServeModel(mv); err != nil {
		t.Fatal(err)
	}
	Attach(srv, svc)

	r.Unbench(addrs[0])
	if len(r.Benched()) != 0 {
		t.Fatalf("still benched after Unbench: %v", r.Benched())
	}
	for k := 0; k < 100; k++ {
		if _, err := r.Predict("lin", row, time.Time{}); err != nil {
			t.Fatalf("predict after parole: %v", err)
		}
	}
	if rows := svc.Snapshots()[0].Rows; rows == 0 {
		t.Fatal("paroled replica got no traffic")
	}
}
